(* Quickstart: the paper's headline result in thirty lines.

   Build a Maekawa-style grid coterie over 25 sites, run the delay-optimal
   algorithm and Maekawa's algorithm under identical heavy load, and watch
   the synchronization delay drop from 2T to T (and throughput rise
   accordingly).

     dune exec examples/quickstart.exe
*)

module Engine = Dmx_sim.Engine
module Summary = Dmx_sim.Stats.Summary

let () =
  let n = 25 in
  (* request sets: one quorum per site; any construction from
     Dmx_quorum.Builder works (the algorithm is quorum-independent) *)
  let req_sets = Dmx_quorum.Builder.req_sets Grid ~n in

  (* a scenario: all 25 sites permanently contend; message delay is the
     unit of time (T = 1); each CS takes 2T *)
  let scenario =
    {
      (Engine.default ~n) with
      max_executions = 500;
      warmup = 50;
      cs_duration = 2.0;
    }
  in

  (* the paper's algorithm *)
  let module Proposed = Engine.Make (Dmx_core.Delay_optimal) in
  let proposed = Proposed.run scenario (Dmx_core.Delay_optimal.config req_sets) in

  (* the baseline it improves *)
  let module Maekawa = Engine.Make (Dmx_baselines.Maekawa_me) in
  let maekawa = Maekawa.run scenario { Dmx_baselines.Maekawa_me.req_sets } in

  let show (r : Engine.report) =
    Printf.printf
      "%-14s  sync delay = %.2f T   messages/CS = %4.1f   throughput = %.3f/T\n"
      r.Engine.protocol
      (Summary.mean r.Engine.sync_delay)
      r.Engine.messages_per_cs
      (r.Engine.throughput *. r.Engine.mean_delay)
  in
  print_endline "heavy load, N=25, grid quorums (K=9), CS duration 2T:";
  show maekawa;
  show proposed;
  Printf.printf
    "\nThe proposed algorithm forwards permissions directly from the exiting\n\
     site to the next entrant, so the handoff costs one message delay (T)\n\
     instead of Maekawa's release-then-reply round (2T).\n";
  assert (proposed.Engine.violations = 0 && maekawa.Engine.violations = 0)
