(* Fault tolerance (paper Section 6): service survives the crash of the
   most critical site.

   With Agrawal–El Abbadi tree quorums over 15 sites, the ROOT belongs to
   every failure-free quorum. We crash it mid-run: the fault-tolerant
   delay-optimal algorithm detects the failure, every requester re-runs
   the quorum construction (substituting root-to-leaf paths through the
   dead node), arbiters purge the dead site's requests and reclaim
   permissions it held — and the critical section keeps being granted.

     dune exec examples/failover.exe
*)

module Engine = Dmx_sim.Engine
module Trace = Dmx_sim.Trace
module FT = Dmx_core.Ft_delay_optimal

let () =
  let n = 15 in
  let crash_time = 40.0 in
  let trace = Trace.create ~enabled:true () in
  let scenario =
    {
      (Engine.default ~n) with
      max_executions = 300;
      warmup = 0;
      cs_duration = 1.0;
      delay = Dmx_sim.Network.Uniform { lo = 0.5; hi = 1.5 };
      crashes = [ (crash_time, 0) ];  (* kill the tree root *)
      detector = Engine.Oracle 3.0;
      max_time = 1.0e6;
    }
  in
  let module M = Engine.Make (FT) in
  let report =
    M.run ~trace_sink:trace scenario
      (FT.config_of_kind Tree ~n ~broadcast:true)
  in

  (* How long was service interrupted around the crash? *)
  let entries =
    List.filter_map
      (fun e ->
        match e.Trace.kind with
        | Trace.Enter_cs -> Some e.Trace.time
        | _ -> None)
      (Trace.entries trace)
  in
  let before = List.filter (fun t -> t <= crash_time) entries in
  let after = List.filter (fun t -> t > crash_time) entries in
  let last_before = List.fold_left Float.max 0.0 before in
  let first_after = List.fold_left Float.min infinity after in

  Printf.printf "tree quorums over %d sites; root crashed at t=%.0f\n" n
    crash_time;
  Printf.printf "  CS executions served:      %d (all requested)\n"
    report.Engine.executions;
  Printf.printf "  safety violations:         %d\n" report.Engine.violations;
  Printf.printf "  last grant before crash:   t=%.2f\n" last_before;
  Printf.printf "  first grant after crash:   t=%.2f\n" first_after;
  Printf.printf "  service gap across crash:  %.2f T (detection latency 3.0)\n"
    (first_after -. last_before);
  Printf.printf "  grants before / after:     %d / %d\n" (List.length before)
    (List.length after);
  if report.Engine.deadlocked || report.Engine.violations > 0 then begin
    print_endline "FAILOVER FAILED";
    exit 1
  end
  else print_endline "failover succeeded: mutual exclusion survived the root"
