(* Contention study: how each algorithm's cost moves between the paper's
   two regimes (Section 5.1 light load, Section 5.2 heavy load), on one
   shared scenario sweep.

   For each offered load we print messages per CS and mean response time
   for the delay-optimal algorithm and three baselines. Watch for:
   - delay-optimal: 3(K-1) -> ~5(K-1) messages, response dominated by the
     T-handoff pipeline at saturation;
   - Maekawa: same message band but the 2T handoff doubles queueing;
   - Ricart-Agrawala: flat 2(N-1) messages at every load;
   - Suzuki-Kasami: cheap at low load (token sticks), N at saturation.

     dune exec examples/contention_study.exe
*)

module Engine = Dmx_sim.Engine
module R = Dmx_baselines.Runner
module S = Dmx_sim.Stats.Summary

let () =
  let n = 25 in
  let algos =
    [
      R.delay_optimal ~n ();
      R.maekawa ~n ();
      R.ricart_agrawala ~n;
      R.suzuki_kasami ~n;
    ]
  in
  Printf.printf "N=%d, grid quorums K=9, CS = 1T, Poisson arrivals per site\n\n" n;
  Printf.printf "%10s" "rate/site";
  List.iter (fun r -> Printf.printf " | %-21s" r.R.name) algos;
  print_newline ();
  Printf.printf "%10s" "";
  List.iter (fun _ -> Printf.printf " | %9s %11s" "msgs/CS" "response/T") algos;
  print_newline ();
  List.iter
    (fun rate ->
      Printf.printf "%10.4f" rate;
      List.iter
        (fun runner ->
          let cfg =
            {
              (Engine.default ~n) with
              workload = Dmx_sim.Workload.Poisson { rate_per_site = rate };
              max_executions = 250;
              warmup = 25;
              cs_duration = 1.0;
              max_time = 1.0e9;
            }
          in
          let r = runner.R.run cfg in
          assert (r.Engine.violations = 0);
          Printf.printf " | %9.1f %11.1f" r.Engine.messages_per_cs
            (S.mean r.Engine.response_time))
        algos;
      print_newline ())
    [ 0.0005; 0.002; 0.005; 0.01; 0.02; 0.05; 0.1 ];
  print_newline ();
  print_endline
    "At saturation the delay-optimal column shows the paper's tradeoff: a\n\
     few more messages than Maekawa (the transfer machinery) buys half the\n\
     synchronization delay, so its response time stays well below Maekawa's."
