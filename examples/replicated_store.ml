(* Replicated data management — the application the paper's introduction
   motivates ("replicated data, atomic commitment, distributed shared
   memory ... require that a resource be allocated to a single process at
   a time").

   Each site holds a replica of a register. A write must be globally
   exclusive: the writer acquires the distributed mutex, applies its write
   locally and propagates it to every replica before releasing. We replay
   the CS schedule produced by the delay-optimal algorithm from the
   execution trace and verify that (a) writes never overlapped and (b) all
   replicas converge to the same final history — i.e. the mutex really
   serialized the writers.

     dune exec examples/replicated_store.exe
*)

module Engine = Dmx_sim.Engine
module Trace = Dmx_sim.Trace

type write = { writer : int; start : float; finish : float }

let () =
  let n = 16 in
  let req_sets = Dmx_quorum.Builder.req_sets Grid ~n in
  let trace = Trace.create ~enabled:true () in
  let scenario =
    {
      (Engine.default ~n) with
      workload = Dmx_sim.Workload.Poisson { rate_per_site = 0.05 };
      max_executions = 200;
      warmup = 0;
      cs_duration = 0.8;
      delay = Dmx_sim.Network.Uniform { lo = 0.5; hi = 1.5 };
      max_time = 1.0e7;
    }
  in
  let module M = Engine.Make (Dmx_core.Delay_optimal) in
  let report = M.run ~trace_sink:trace scenario (Dmx_core.Delay_optimal.config req_sets) in

  (* Reconstruct the write schedule from the CS entries/exits. *)
  let writes =
    let open_cs = Hashtbl.create 8 in
    List.fold_left
      (fun acc e ->
        match e.Trace.kind with
        | Trace.Enter_cs ->
          Hashtbl.replace open_cs e.Trace.site e.Trace.time;
          acc
        | Trace.Exit_cs ->
          let start = Hashtbl.find open_cs e.Trace.site in
          Hashtbl.remove open_cs e.Trace.site;
          { writer = e.Trace.site; start; finish = e.Trace.time } :: acc
        | _ -> acc)
      [] (Trace.entries trace)
    |> List.rev
  in

  (* (a) exclusivity: no two writes overlap in time *)
  let sorted = List.sort (fun a b -> Float.compare a.start b.start) writes in
  let rec overlaps = function
    | a :: (b :: _ as rest) -> a.finish > b.start || overlaps rest
    | _ -> false
  in

  (* (b) every replica applies the same write sequence: writers propagate
     inside the CS, so the globally ordered log IS the replica history *)
  let replicas = Array.make n [] in
  List.iter
    (fun w ->
      for replica = 0 to n - 1 do
        replicas.(replica) <- w.writer :: replicas.(replica)
      done)
    sorted;
  let reference = replicas.(0) in
  let converged = Array.for_all (fun h -> h = reference) replicas in

  Printf.printf "replicated register over %d sites\n" n;
  Printf.printf "  writes committed:   %d\n" (List.length writes);
  Printf.printf "  overlapping writes: %s\n"
    (if overlaps sorted then "YES (broken!)" else "none");
  Printf.printf "  replicas converged: %b\n" converged;
  Printf.printf "  mutex violations:   %d\n" report.Engine.violations;
  let writers = List.sort_uniq compare (List.map (fun w -> w.writer) writes) in
  Printf.printf "  distinct writers:   %d of %d sites\n" (List.length writers) n;

  (* Part two — Section 7's replica control: instead of propagating every
     write to all N replicas, write only to the writer's WRITE quorum and
     read from (smaller) READ quorums; quorum intersection alone must keep
     reads fresh, even with a site down. *)
  let module RW = Dmx_quorum.Rw_quorum in
  let rw = RW.create RW.Grid_rw ~n in
  (match RW.validate rw with Ok () -> () | Error e -> failwith e);
  let version = Array.make n 0 in
  let stale = ref 0 in
  List.iteri
    (fun i w ->
      let v = i + 1 in
      List.iter (fun rep -> version.(rep) <- v) rw.RW.writes.(w.writer);
      (* interleave a read from an unrelated site after every write *)
      let reader = (w.writer + 5) mod n in
      let seen =
        List.fold_left (fun acc rep -> max acc version.(rep)) 0
          rw.RW.reads.(reader)
      in
      if seen <> v then incr stale)
    sorted;
  Printf.printf
    "  quorum replica control: writes touch %.0f replicas, reads %.0f; \
     stale reads: %d\n"
    (RW.write_size rw) (RW.read_size rw) !stale;

  if
    overlaps sorted || (not converged) || report.Engine.violations > 0
    || !stale > 0
  then begin
    print_endline "CONSISTENCY FAILURE";
    exit 1
  end
  else print_endline "all writes serialized; store is consistent"
