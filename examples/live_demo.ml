(* Real parallelism: the same protocol module that runs in the simulator
   executes here on OCaml 5 domains — one OS-scheduled domain per site plus
   a postman delivering messages after genuine wall-clock delays. An atomic
   occupancy counter cross-checks mutual exclusion the instant it would be
   violated.

     dune exec examples/live_demo.exe
*)

module Live = Dmx_runtime.Live

let run_live name (report : Live.report) =
  Printf.printf
    "%-14s  %3d CS executions on %d domains, %4d real messages, %.0f ms \
     wall, violations: %d (max occupancy %d)\n"
    name report.Live.executions
    (Array.length report.Live.per_site)
    report.Live.messages
    (report.Live.wall_seconds *. 1000.0)
    report.Live.violations report.Live.max_occupancy

let () =
  let n = 4 in
  let rounds = 8 in
  let cfg =
    {
      (Live.default ~n) with
      rounds_per_site = rounds;
      cs_duration = 0.002;
      min_delay = 0.0003;
      max_delay = 0.0015;
    }
  in
  print_endline
    "running the delay-optimal algorithm and two baselines on real domains\n\
     (4 sites, 8 CS rounds each, 0.3-1.5 ms message delays, 2 ms CS):\n";

  let module DO = Live.Make (Dmx_core.Delay_optimal) in
  let req_sets = Dmx_quorum.Builder.req_sets Grid ~n in
  let r = DO.run cfg (Dmx_core.Delay_optimal.config req_sets) in
  run_live "delay-optimal" r;
  assert (r.Live.violations = 0);

  let module MK = Live.Make (Dmx_baselines.Maekawa_me) in
  let r = MK.run cfg { Dmx_baselines.Maekawa_me.req_sets } in
  run_live "maekawa" r;
  assert (r.Live.violations = 0);

  let module RA = Live.Make (Dmx_baselines.Ricart_agrawala) in
  let r = RA.run cfg () in
  run_live "ricart-agrawala" r;
  assert (r.Live.violations = 0);

  (* and a real failover: one domain fail-stops 15 ms in; the
     fault-tolerant variant's survivors rebuild and keep going *)
  let module FT = Live.Make (Dmx_core.Ft_delay_optimal) in
  let r =
    FT.run
      { cfg with crashes = [ (0.015, 3) ]; detection_delay = 0.005 }
      (Dmx_core.Ft_delay_optimal.config_of_kind Tree ~n ~broadcast:false)
  in
  run_live "ft + crash" r;
  assert (r.Live.violations = 0);
  Printf.printf "  (site 3 fail-stopped mid-run; survivors each finished all %d rounds)\n"
    rounds;

  print_endline
    "\nall runs completed with occupancy never exceeding one: the protocols\n\
     hold up under true concurrency, not just under the simulator's\n\
     deterministic schedules."
