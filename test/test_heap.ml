(* Binary heap: ordering, growth, filtering. *)

module Heap = Dmx_sim.Heap

let make_int_heap () = Heap.create ~cmp:Int.compare ()

let drain h =
  let rec loop acc =
    match Heap.pop h with None -> List.rev acc | Some x -> loop (x :: acc)
  in
  loop []

let test_empty () =
  let h = make_int_heap () in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check int) "length" 0 (Heap.length h);
  Alcotest.(check (option int)) "peek" None (Heap.peek h);
  Alcotest.(check (option int)) "pop" None (Heap.pop h)

let test_peek_pop_exn_on_empty () =
  let h = make_int_heap () in
  Alcotest.check_raises "peek_exn" (Invalid_argument "Heap.peek_exn: empty heap")
    (fun () -> ignore (Heap.peek_exn h));
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

let test_sorted_drain () =
  let h = make_int_heap () in
  List.iter (Heap.add h) [ 5; 1; 4; 1; 5; 9; 2; 6; 5; 3 ];
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 5; 5; 6; 9 ] (drain h)

let test_interleaved_add_pop () =
  let h = make_int_heap () in
  Heap.add h 3;
  Heap.add h 1;
  Alcotest.(check int) "min is 1" 1 (Heap.pop_exn h);
  Heap.add h 0;
  Heap.add h 2;
  Alcotest.(check int) "min is 0" 0 (Heap.pop_exn h);
  Alcotest.(check int) "then 2" 2 (Heap.pop_exn h);
  Alcotest.(check int) "then 3" 3 (Heap.pop_exn h)

let test_growth () =
  let h = make_int_heap () in
  for i = 1000 downto 1 do
    Heap.add h i
  done;
  Alcotest.(check int) "length" 1000 (Heap.length h);
  Alcotest.(check (list int)) "sorted drain" (List.init 1000 (fun i -> i + 1)) (drain h)

let test_clear () =
  let h = make_int_heap () in
  List.iter (Heap.add h) [ 3; 1; 2 ];
  Heap.clear h;
  Alcotest.(check bool) "empty after clear" true (Heap.is_empty h);
  Heap.add h 42;
  Alcotest.(check int) "usable after clear" 42 (Heap.pop_exn h)

let test_filter_in_place () =
  let h = make_int_heap () in
  List.iter (Heap.add h) [ 1; 2; 3; 4; 5; 6 ];
  Heap.filter_in_place h (fun x -> x mod 2 = 0);
  Alcotest.(check (list int)) "evens remain sorted" [ 2; 4; 6 ] (drain h)

let test_filter_in_place_all_dropped () =
  let h = make_int_heap () in
  List.iter (Heap.add h) [ 3; 1; 2 ];
  Heap.filter_in_place h (fun _ -> false);
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Heap.add h 7;
  Alcotest.(check int) "usable afterwards" 7 (Heap.pop_exn h)

let test_filter_in_place_none_dropped () =
  let h = make_int_heap () in
  List.iter (Heap.add h) [ 4; 2; 8; 6 ];
  Heap.filter_in_place h (fun _ -> true);
  Alcotest.(check (list int)) "unchanged" [ 2; 4; 6; 8 ] (drain h)

let qcheck_filter_in_place =
  QCheck.Test.make ~name:"filter_in_place = sorted List.filter" ~count:300
    QCheck.(pair (list small_int) small_int)
    (fun (xs, m) ->
      let keep x = x mod (1 + m) <> 0 in
      let h = make_int_heap () in
      List.iter (Heap.add h) xs;
      Heap.filter_in_place h keep;
      drain h = List.sort Int.compare (List.filter keep xs))

let test_exists () =
  let h = make_int_heap () in
  List.iter (Heap.add h) [ 10; 20; 30 ];
  Alcotest.(check bool) "exists 20" true (Heap.exists h (fun x -> x = 20));
  Alcotest.(check bool) "no 15" false (Heap.exists h (fun x -> x = 15))

let test_custom_order () =
  let h = Heap.create ~cmp:(fun a b -> Int.compare b a) () in
  List.iter (Heap.add h) [ 2; 9; 4 ];
  Alcotest.(check int) "max-heap pops max" 9 (Heap.pop_exn h)

let qcheck_drain_sorted =
  QCheck.Test.make ~name:"heap drains sorted" ~count:300
    QCheck.(list int)
    (fun xs ->
      let h = make_int_heap () in
      List.iter (Heap.add h) xs;
      drain h = List.sort Int.compare xs)

let qcheck_to_list_multiset =
  QCheck.Test.make ~name:"to_list preserves multiset" ~count:300
    QCheck.(list small_int)
    (fun xs ->
      let h = make_int_heap () in
      List.iter (Heap.add h) xs;
      List.sort compare (Heap.to_list h) = List.sort compare xs)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("empty heap", test_empty);
      ("exn accessors on empty", test_peek_pop_exn_on_empty);
      ("drains sorted", test_sorted_drain);
      ("interleaved add/pop", test_interleaved_add_pop);
      ("growth to 1000", test_growth);
      ("clear", test_clear);
      ("filter_in_place", test_filter_in_place);
      ("filter_in_place drops all", test_filter_in_place_all_dropped);
      ("filter_in_place keeps all", test_filter_in_place_none_dropped);
      ("exists", test_exists);
      ("custom comparator", test_custom_order);
    ]
  @ [
      QCheck_alcotest.to_alcotest qcheck_drain_sorted;
      QCheck_alcotest.to_alcotest qcheck_to_list_multiset;
      QCheck_alcotest.to_alcotest qcheck_filter_in_place;
    ]
