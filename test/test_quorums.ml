(* Every quorum construction: intersection property across many universe
   sizes, expected quorum sizes, failure substitution, availability. *)

module B = Dmx_quorum.Builder
module Ct = Dmx_quorum.Coterie
module Grid = Dmx_quorum.Grid
module Fpp = Dmx_quorum.Fpp
module Tree = Dmx_quorum.Tree_quorum
module Maj = Dmx_quorum.Majority
module Hqc = Dmx_quorum.Hqc
module Av = Dmx_quorum.Availability

let check_valid kind n =
  match B.validate ~n (B.req_sets kind ~n) with
  | Ok () -> ()
  | Error e ->
    Alcotest.fail (Printf.sprintf "%s n=%d invalid: %s" (B.kind_name kind) n e)

let test_intersection_all_kinds () =
  (* every kind over every size it supports, up to 64 *)
  List.iter
    (fun kind ->
      for n = 1 to 64 do
        if B.supports kind ~n then check_valid kind n
      done)
    (B.all_kinds ~group:4)

let test_self_membership_where_expected () =
  (* grid, fpp, majority and hqc put every site inside its own quorum *)
  List.iter
    (fun (kind, ns) ->
      List.iter
        (fun n ->
          let rs = B.req_sets kind ~n in
          Array.iteri
            (fun i q ->
              Alcotest.(check bool)
                (Printf.sprintf "%s n=%d: %d in own set" (B.kind_name kind) n i)
                true (List.mem i q))
            rs)
        ns)
    [
      (B.Grid, [ 4; 9; 10; 16; 25 ]);
      (B.Fpp, [ 7; 13; 31 ]);
      (B.Majority, [ 3; 4; 5; 8 ]);
      (B.Hqc, [ 3; 9; 27 ]);
      (B.Tree, [ 3; 7; 15 ]);
    ]

let test_grid_sizes () =
  (* perfect square: K = 2√N − 1 *)
  List.iter
    (fun n ->
      let root = int_of_float (sqrt (float_of_int n)) in
      let stats = B.size_stats (B.req_sets B.Grid ~n) in
      Alcotest.(check int)
        (Printf.sprintf "grid %d" n)
        ((2 * root) - 1)
        stats.B.k_max)
    [ 4; 9; 16; 25; 36; 49; 64; 81; 100 ]

let test_grid_positions () =
  let g = Grid.create ~n:12 in
  Alcotest.(check int) "cols = ceil sqrt 12" 4 (Grid.cols g);
  Alcotest.(check int) "rows" 3 (Grid.rows g);
  Alcotest.(check (pair int int)) "position of 7" (1, 3) (Grid.position g 7)

let test_fpp_orders () =
  Alcotest.(check (option int)) "7 = 2^2+2+1" (Some 2) (Fpp.order_for 7);
  Alcotest.(check (option int)) "13" (Some 3) (Fpp.order_for 13);
  (* 21 = 4^2+4+1 but 4 is not prime *)
  Alcotest.(check (option int)) "21 unsupported" None (Fpp.order_for 21);
  Alcotest.(check (option int)) "31 = 5^2+5+1" (Some 5) (Fpp.order_for 31);
  Alcotest.(check (option int)) "12 unsupported" None (Fpp.order_for 12);
  Alcotest.(check (list int)) "sizes to 60" [ 7; 13; 31; 57 ]
    (Fpp.supported_sizes ~max:60)

let test_fpp_line_structure () =
  List.iter
    (fun n ->
      let t = Fpp.create ~n in
      let q = Fpp.order t in
      let lines = Fpp.lines t in
      Alcotest.(check int) "as many lines as points" n (List.length lines);
      List.iter
        (fun l ->
          Alcotest.(check int) "line size q+1" (q + 1) (List.length l))
        lines;
      (* any two distinct lines meet in exactly one point *)
      let rec pairs = function
        | [] -> ()
        | l :: rest ->
          List.iter
            (fun m ->
              Alcotest.(check int) "exactly one common point" 1
                (List.length (Ct.quorum_inter l m)))
            rest;
          pairs rest
      in
      pairs lines)
    [ 7; 13; 31 ]

let test_fpp_every_point_covered () =
  let t = Fpp.create ~n:13 in
  for s = 0 to 12 do
    Alcotest.(check bool) "req_set contains site" true (List.mem s (Fpp.req_set t s))
  done

let test_tree_sizes () =
  (* complete tree of 2^k − 1 nodes: failure-free quorum size = k *)
  List.iter
    (fun (n, k) ->
      let stats = B.size_stats (B.req_sets B.Tree ~n) in
      Alcotest.(check int) (Printf.sprintf "tree %d" n) k stats.B.k_max)
    [ (3, 2); (7, 3); (15, 4); (31, 5); (63, 6) ]

let test_tree_substitution () =
  let t = Tree.create ~n:7 in
  (* all alive: root-to-leaf path *)
  (match Tree.quorum t ~available:(fun _ -> true) with
  | Some q -> Alcotest.(check int) "path length 3" 3 (List.length q)
  | None -> Alcotest.fail "quorum expected");
  (* root dead: both subtrees *)
  (match Tree.quorum_avoiding t ~avoid:[ 0 ] with
  | Some q ->
    Alcotest.(check bool) "root absent" false (List.mem 0 q);
    Alcotest.(check int) "two paths of 2" 4 (List.length q)
  | None -> Alcotest.fail "substitution expected");
  (* substitution recurses: root and both children dead still leaves the
     four leaves as a quorum *)
  (match Tree.quorum_avoiding t ~avoid:[ 0; 1; 2 ] with
  | Some q -> Alcotest.(check (list int)) "all leaves" [ 3; 4; 5; 6 ] q
  | None -> Alcotest.fail "leaf quorum expected");
  (* but a dead leaf under a dead spine is fatal on that side *)
  Alcotest.(check bool) "unavailable" true
    (Tree.quorum_avoiding t ~avoid:[ 0; 1; 3 ] = None)

let test_tree_family_intersects () =
  List.iter
    (fun n ->
      let t = Tree.create ~n in
      let family = Tree.quorum_family t in
      Alcotest.(check bool) "family nonempty" true (family <> []);
      let c = Ct.make ~n family in
      Alcotest.(check bool)
        (Printf.sprintf "tree family n=%d intersects" n)
        true (Ct.intersecting c))
    [ 3; 7; 15; 10; 12 ]

let test_majority_sizes () =
  Alcotest.(check int) "5 -> 3" 3 (Maj.quorum_size ~n:5);
  Alcotest.(check int) "6 -> 4" 4 (Maj.quorum_size ~n:6);
  Alcotest.(check int) "1 -> 1" 1 (Maj.quorum_size ~n:1);
  Alcotest.(check bool) "window is quorum" true
    (Maj.is_quorum ~n:5 (Maj.req_set ~n:5 3))

let test_majority_availability_exact () =
  (* n=3, majority 2: availability = p^3 + 3 p^2 (1-p) *)
  let p = 0.9 in
  let expect = (p ** 3.0) +. (3.0 *. p *. p *. (1.0 -. p)) in
  Alcotest.(check (float 1e-9)) "closed form" expect (Maj.availability ~n:3 ~p_up:p);
  Alcotest.(check (float 1e-9)) "p=1" 1.0 (Maj.availability ~n:7 ~p_up:1.0);
  Alcotest.(check (float 1e-9)) "p=0" 0.0 (Maj.availability ~n:7 ~p_up:0.0)

let test_hqc_sizes () =
  List.iter
    (fun (n, k) ->
      let t = Hqc.create ~n in
      Alcotest.(check int) (Printf.sprintf "hqc %d" n) k (Hqc.quorum_size t))
    [ (3, 2); (9, 4); (27, 8); (81, 16) ]

let test_hqc_branching () =
  let t = Hqc.create_branching [ 5; 3 ] in
  Alcotest.(check int) "n = 15" 15 (Hqc.n t);
  Alcotest.(check int) "k = 3*2" 6 (Hqc.quorum_size t);
  let rs = Array.init 15 (Hqc.req_set t) in
  match B.validate ~n:15 rs with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_hqc_rejects_non_powers () =
  Alcotest.(check bool) "10 rejected" true
    (try ignore (Hqc.create ~n:10); false with Invalid_argument _ -> true)

let test_grouped_sizes_vs_paper () =
  (* RST: ((G+1)/2)·(2√(N/G)−1); Grid-set: ((N/G+1)/2)·(2√G−1) — check the
     estimates track the real constructions. *)
  let n = 64 and g = 4 in
  let rst = Dmx_quorum.Rst.create ~n ~group:g in
  let stats = B.size_stats (B.req_sets (B.Rst g) ~n) in
  Alcotest.(check bool)
    (Printf.sprintf "rst estimate %d vs max %d"
       (Dmx_quorum.Rst.quorum_size_estimate rst)
       stats.B.k_max)
    true
    (abs (Dmx_quorum.Rst.quorum_size_estimate rst - stats.B.k_max) <= 2);
  let gs = Dmx_quorum.Grid_set.create ~n ~group:g in
  let stats = B.size_stats (B.req_sets (B.Grid_set g) ~n) in
  Alcotest.(check bool) "grid-set estimate tracks" true
    (abs (Dmx_quorum.Grid_set.quorum_size_estimate gs - stats.B.k_max) <= 4)

let test_parse_kind () =
  List.iter
    (fun k ->
      match B.parse_kind (B.kind_name k) with
      | Ok k' -> Alcotest.(check string) "roundtrip" (B.kind_name k) (B.kind_name k')
      | Error e -> Alcotest.fail e)
    (B.all_kinds ~group:4);
  Alcotest.(check bool) "garbage rejected" true
    (match B.parse_kind "nonsense" with Error _ -> true | Ok _ -> false)

let test_availability_exact_vs_monte_carlo () =
  (* where we have closed forms, the MC estimate must agree *)
  List.iter
    (fun (kind, n) ->
      List.iter
        (fun p ->
          match Av.exact kind ~n ~p_up:p with
          | Some exact ->
            let mc = Av.monte_carlo kind ~n ~p_up:p ~trials:20_000 ~seed:5 in
            Alcotest.(check bool)
              (Printf.sprintf "%s n=%d p=%.1f exact %.4f mc %.4f"
                 (B.kind_name kind) n p exact mc)
              true
              (abs_float (exact -. mc) < 0.02)
          | None -> Alcotest.fail "exact expected")
        [ 0.5; 0.8; 0.95 ])
    [ (B.Majority, 9); (B.Tree, 7); (B.Hqc, 9) ]

let test_availability_monotone_in_p () =
  List.iter
    (fun kind ->
      let n = if B.supports kind ~n:16 then 16 else 13 in
      let av p = Av.estimate kind ~n ~p_up:p ~trials:4_000 in
      Alcotest.(check bool)
        (Printf.sprintf "%s availability grows with p" (B.kind_name kind))
        true
        (av 0.95 >= av 0.5 && av 0.5 >= av 0.2))
    [ B.Grid; B.Fpp; B.Majority ]

let test_tree_beats_all_and_single () =
  (* at p=0.9, tree availability sits between 'all sites' and majority *)
  let p = 0.9 and n = 15 in
  let tree = Av.estimate B.Tree ~n ~p_up:p in
  let all = Av.estimate B.All ~n ~p_up:p in
  let maj = Av.estimate B.Majority ~n ~p_up:p in
  Alcotest.(check bool) "tree > all-sites" true (tree > all);
  Alcotest.(check bool) "majority >= tree" true (maj >= tree -. 0.02)

let test_oracle_consistency () =
  (* has_live_quorum must agree with "some request set fully alive" for the
     static constructions (grid/fpp: the oracle covers exactly the coterie) *)
  let rng = Dmx_sim.Rng.create 11 in
  List.iter
    (fun (kind, n) ->
      let rs = B.req_sets kind ~n in
      for _ = 1 to 200 do
        let up = Array.init n (fun _ -> Dmx_sim.Rng.bool rng) in
        let by_sets =
          Array.exists (fun q -> List.for_all (fun s -> up.(s)) q) rs
        in
        let by_oracle = B.has_live_quorum kind ~n ~up in
        (* the oracle may know MORE quorums than the per-site assignment
           (e.g. all grid row/col pairs), never fewer *)
        if by_sets && not by_oracle then
          Alcotest.fail (Printf.sprintf "%s oracle misses a live assignment" (B.kind_name kind))
      done)
    [ (B.Grid, 12); (B.Fpp, 13); (B.Majority, 9); (B.Tree, 15); (B.Hqc, 9) ]

let qcheck_grid_any_n =
  QCheck.Test.make ~name:"grid coterie intersects for any n" ~count:80
    QCheck.(int_range 1 120)
    (fun n -> B.validate ~n (B.req_sets B.Grid ~n) = Ok ())

let qcheck_tree_any_n =
  QCheck.Test.make ~name:"tree coterie intersects for any n" ~count:80
    QCheck.(int_range 1 120)
    (fun n -> B.validate ~n (B.req_sets B.Tree ~n) = Ok ())

let qcheck_grouped_any_shape =
  QCheck.Test.make ~name:"grid-set and rst intersect for any (n, g)" ~count:80
    QCheck.(pair (int_range 2 80) (int_range 1 12))
    (fun (n, g) ->
      let g = min g n in
      B.validate ~n (B.req_sets (B.Grid_set g) ~n) = Ok ()
      && B.validate ~n (B.req_sets (B.Rst g) ~n) = Ok ())

let qcheck_tree_substitution_sound =
  (* any quorum the tree yields under failures must intersect every member
     of the full (failure-free reachable) family *)
  QCheck.Test.make ~name:"tree substitution preserves intersection" ~count:100
    QCheck.(pair (int_range 3 31) (list (int_range 0 30)))
    (fun (n, dead) ->
      let t = Tree.create ~n in
      let dead = List.filter (fun s -> s < n) dead in
      match Tree.quorum_avoiding t ~avoid:dead with
      | None -> true
      | Some q ->
        List.for_all (fun s -> not (List.mem s dead)) q
        && List.for_all
             (fun fam -> Ct.quorum_inter q fam <> [])
             (Tree.quorum_family t))

(* ---- large-N sampled properties ----

   The exhaustive pairwise check above stops at n=64 because it is
   O(N^2 K); at a few thousand sites (majority: K > 1000) that blows up.
   Random pair sampling keeps the same three paper properties —
   intersection, no-superset minimality, K tracking the closed form —
   testable at universe sizes in the thousands. Pair choice is seeded
   from n, so failures replay. *)

let sorted_sets kind ~n =
  Array.map (fun q -> List.sort_uniq compare q) (B.req_sets kind ~n)

(* both sorted ascending *)
let rec intersects a b =
  match (a, b) with
  | [], _ | _, [] -> false
  | x :: xs, y :: ys ->
    if x = y then true else if x < y then intersects xs b else intersects a ys

let rec subset a b =
  match (a, b) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs, y :: ys ->
    if x = y then subset xs ys else if x > y then subset a ys else false

let sampled_pairs ~n ~count rng =
  List.init count (fun _ -> (Dmx_sim.Rng.int rng n, Dmx_sim.Rng.int rng n))

(* map a drawn size to one the construction supports, near it *)
let supported_size kind n =
  match kind with
  | B.Fpp -> (
    match List.rev (Fpp.supported_sizes ~max:(max 7 n)) with
    | largest :: _ -> largest
    | [] -> 7)
  | B.Hqc ->
    let s = ref 3 in
    while !s * 3 <= n do s := !s * 3 done;
    !s
  | _ -> n

let large_kinds =
  [ B.Grid; B.Fpp; B.Tree; B.Majority; B.Hqc; B.Grid_set 4 ]

let qcheck_large_n_intersection =
  QCheck.Test.make ~name:"sampled pairwise intersection, n up to 2500" ~count:10
    QCheck.(int_range 200 2500)
    (fun n ->
      let rng = Dmx_sim.Rng.create (1_000 + n) in
      List.for_all
        (fun kind ->
          let n = supported_size kind n in
          let rs = sorted_sets kind ~n in
          List.for_all
            (fun (i, j) -> intersects rs.(i) rs.(j))
            (sampled_pairs ~n ~count:150 rng))
        large_kinds)

let qcheck_large_n_minimality =
  (* no quorum strictly contains another — on the regular shapes where
     the paper constructions are minimal (ragged grids are not: a short
     last row can embed one row-column cross inside another) *)
  QCheck.Test.make ~name:"sampled no-superset minimality, n up to 2500"
    ~count:10
    QCheck.(int_range 200 2500)
    (fun n ->
      let rng = Dmx_sim.Rng.create (2_000 + n) in
      List.for_all
        (fun kind ->
          let n =
            match kind with
            | B.Grid ->
              let r = int_of_float (Float.round (sqrt (float_of_int n))) in
              r * r
            | _ -> supported_size kind n
          in
          let rs = sorted_sets kind ~n in
          List.for_all
            (fun (i, j) ->
              rs.(i) = rs.(j)
              || (not (subset rs.(i) rs.(j)))
                 && not (subset rs.(j) rs.(i)))
            (sampled_pairs ~n ~count:150 rng))
        [ B.Grid; B.Fpp; B.Tree; B.Majority; B.Hqc ])

let qcheck_large_n_sizes_track_formulas =
  (* K follows each construction's closed form far beyond the tabulated
     sizes: grid 2 sqrt(N)-1, majority floor(N/2)+1, fpp q+1 at
     N=q^2+q+1, hqc 2^k at N=3^k, tree log2(N+1) on complete trees *)
  QCheck.Test.make ~name:"quorum size formulas, n up to ~2500" ~count:10
    QCheck.(int_range 15 50)
    (fun root ->
      let ok got want = got = want in
      let grid =
        let n = root * root in
        ok (B.size_stats (B.req_sets B.Grid ~n)).B.k_max ((2 * root) - 1)
      in
      let majority =
        let n = (root * root) + (root mod 2) in
        let st = B.size_stats (B.req_sets B.Majority ~n) in
        ok st.B.k_max ((n / 2) + 1) && ok st.B.k_min ((n / 2) + 1)
      in
      let tree =
        let k = 8 + (root mod 4) in
        let n = (1 lsl k) - 1 in
        ok (B.size_stats (B.req_sets B.Tree ~n)).B.k_max k
      in
      let hqc =
        let k = 5 + (root mod 3) in
        let n = int_of_float (3.0 ** float_of_int k) in
        ok (B.size_stats (B.req_sets B.Hqc ~n)).B.k_max (1 lsl k)
      in
      let fpp =
        let n = supported_size B.Fpp (root * root) in
        let q =
          int_of_float (Float.round (sqrt (float_of_int n)))
        in
        (* n = q^2+q+1 for some prime q near sqrt n; recover q exactly *)
        let q = if (q * q) + q + 1 = n then q else q - 1 in
        ok (B.size_stats (B.req_sets B.Fpp ~n)).B.k_max (q + 1)
      in
      grid && majority && tree && hqc && fpp)

(* ---- lazy assignment equivalence (the huge-N interface) ----

   Builder.assignment generates site i's quorum on demand from the
   construction's structure; it must agree site-for-site with the
   materialized reference wherever the latter is affordable, and uphold the
   paper's intersection/minimality properties at N up to 10^6 without
   materializing anything. *)

let qcheck_lazy_matches_materialized =
  QCheck.Test.make ~name:"lazy quorum_of = materialized req_sets, n <= 400"
    ~count:60
    QCheck.(int_range 1 400)
    (fun n ->
      List.for_all
        (fun kind ->
          (not (B.supports kind ~n))
          ||
          let rs = B.req_sets kind ~n in
          let a = B.assignment kind ~n in
          let ok = ref true in
          for i = 0 to n - 1 do
            if Ct.quorum_of a i <> rs.(i) then ok := false
          done;
          !ok)
        (B.all_kinds ~group:4))

let qcheck_lazy_stats_match_materialized =
  QCheck.Test.make ~name:"assignment_stats = size_stats below max_exact"
    ~count:40
    QCheck.(int_range 1 300)
    (fun n ->
      List.for_all
        (fun kind ->
          (not (B.supports kind ~n))
          || B.assignment_stats (B.assignment kind ~n)
             = B.size_stats (B.req_sets kind ~n))
        (B.all_kinds ~group:4))

let qcheck_huge_n_lazy_properties =
  (* intersection, self-membership, and no-superset minimality from sampled
     pairs alone — no O(N) structure is ever built. Grid is rounded to a
     perfect square (ragged grids are legitimately non-minimal); majority
     samples fewer pairs because each quorum is N/2+1 sites long. *)
  QCheck.Test.make ~name:"lazy sampled intersection+minimality, n up to 10^6"
    ~count:6
    QCheck.(int_range 100_000 1_000_000)
    (fun n ->
      List.for_all
        (fun kind ->
          let n =
            match kind with
            | B.Grid ->
              let r = int_of_float (Float.round (sqrt (float_of_int n))) in
              r * r
            | _ -> supported_size kind n
          in
          let a = B.assignment kind ~n in
          let rng = Dmx_sim.Rng.create (3_000 + n) in
          let pairs = if kind = B.Majority then 6 else 40 in
          List.for_all
            (fun (i, j) ->
              let qi = List.sort_uniq compare (Ct.quorum_of a i)
              and qj = List.sort_uniq compare (Ct.quorum_of a j) in
              List.mem i qi
              && intersects qi qj
              && (qi = qj || ((not (subset qi qj)) && not (subset qj qi))))
            (sampled_pairs ~n ~count:pairs rng))
        [ B.Grid; B.Fpp; B.Tree; B.Majority; B.Hqc ])

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("intersection: all kinds, n<=64", test_intersection_all_kinds);
      ("self membership", test_self_membership_where_expected);
      ("grid sizes", test_grid_sizes);
      ("grid positions", test_grid_positions);
      ("fpp orders", test_fpp_orders);
      ("fpp line structure", test_fpp_line_structure);
      ("fpp covers every point", test_fpp_every_point_covered);
      ("tree sizes", test_tree_sizes);
      ("tree substitution", test_tree_substitution);
      ("tree family intersects", test_tree_family_intersects);
      ("majority sizes", test_majority_sizes);
      ("majority availability closed form", test_majority_availability_exact);
      ("hqc sizes", test_hqc_sizes);
      ("hqc custom branching", test_hqc_branching);
      ("hqc rejects non powers of 3", test_hqc_rejects_non_powers);
      ("grouped sizes vs paper", test_grouped_sizes_vs_paper);
      ("kind parsing roundtrip", test_parse_kind);
      ("availability exact vs monte carlo", test_availability_exact_vs_monte_carlo);
      ("availability monotone in p", test_availability_monotone_in_p);
      ("tree between all and majority", test_tree_beats_all_and_single);
      ("live-quorum oracle consistency", test_oracle_consistency);
    ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        qcheck_grid_any_n;
        qcheck_tree_any_n;
        qcheck_grouped_any_shape;
        qcheck_tree_substitution_sound;
        qcheck_large_n_intersection;
        qcheck_large_n_minimality;
        qcheck_large_n_sizes_track_formulas;
        qcheck_lazy_matches_materialized;
        qcheck_lazy_stats_match_materialized;
        qcheck_huge_n_lazy_properties;
      ]
