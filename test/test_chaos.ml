(* Unit tests for the deterministic chaos shim: pure per-frame fault
   decisions (the same-seed determinism guarantee), plan validation and
   serialization, and the shim's behaviour over a recording fake
   transport — loss/duplication accounting, partition windows, reorder
   holdback, supervisor-link exemption. *)

module Chaos = Dmx_net.Chaos
module Sig = Dmx_net.Transport_sig
module Wire = Dmx_net.Wire

let base_plan =
  { Chaos.no_faults with Chaos.seed = 42; n = 5; loss = 0.2; duplication = 0.1 }

(* a transport that records every send, delivers nothing *)
let recording () =
  let sent = ref [] in
  ( sent,
    {
      Sig.send = (fun ~dst frame -> sent := (dst, frame) :: !sent);
      broadcast = (fun _ -> ());
      poll = (fun () -> None);
      stats = (fun () -> Sig.no_stats);
      close = (fun () -> ());
    } )

let frame i = Wire.Proto { src = 0; dst = 1; payload = string_of_int i }

let test_decision_deterministic () =
  let seq plan =
    List.init 500 (fun k ->
        let d = Chaos.decision plan ~src:0 ~dst:1 k in
        (d.Chaos.lose, d.Chaos.duplicate, d.Chaos.reorder))
  in
  Alcotest.(check bool) "same seed, same decisions" true
    (seq base_plan = seq { base_plan with Chaos.loss = base_plan.Chaos.loss });
  Alcotest.(check bool) "different seed, different decisions" true
    (seq base_plan <> seq { base_plan with Chaos.seed = 43 });
  Alcotest.(check bool) "different link, different decisions" true
    (List.init 500 (fun k -> (Chaos.decision base_plan ~src:0 ~dst:1 k).Chaos.lose)
    <> List.init 500 (fun k ->
           (Chaos.decision base_plan ~src:0 ~dst:2 k).Chaos.lose))

let test_decision_rates () =
  let n = 20_000 in
  let losses = ref 0 and dups = ref 0 in
  for k = 0 to n - 1 do
    let d = Chaos.decision base_plan ~src:1 ~dst:3 k in
    if d.Chaos.lose then incr losses;
    if d.Chaos.duplicate then incr dups
  done;
  let rate c = float_of_int !c /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "loss rate %.3f near 0.2" (rate losses))
    true
    (abs_float (rate losses -. 0.2) < 0.02);
  Alcotest.(check bool)
    (Printf.sprintf "dup rate %.3f near 0.1" (rate dups))
    true
    (abs_float (rate dups -. 0.1) < 0.02)

let test_plan_string_roundtrip () =
  let plan =
    {
      Chaos.seed = 7;
      n = 5;
      loss = 0.125;
      duplication = 0.0625;
      reorder = 0.3;
      reorder_hold = 4;
      delay_spikes = [ (0.5, 1.5, 0.25); (2.0, 3.0, 0.1) ];
      partitions =
        [
          { Chaos.from_t = 1.0; until = 2.0; groups = [ [ 0; 1 ]; [ 2; 3; 4 ] ] };
        ];
    }
  in
  let plan' = Chaos.plan_of_string (Chaos.plan_to_string plan) in
  Alcotest.(check bool) "round-trips" true (plan = plan');
  Alcotest.(check bool) "trivial round-trips" true
    (Chaos.plan_of_string (Chaos.plan_to_string Chaos.no_faults)
    = Chaos.no_faults)

let test_validation () =
  let bad p = match Chaos.validate p with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "loss >= 1 rejected" true
    (bad { base_plan with Chaos.loss = 1.0 });
  Alcotest.(check bool) "negative dup rejected" true
    (bad { base_plan with Chaos.duplication = -0.1 });
  Alcotest.(check bool) "empty spike window rejected" true
    (bad { base_plan with Chaos.delay_spikes = [ (2.0, 1.0, 0.1) ] });
  Alcotest.(check bool) "out-of-range partition site rejected" true
    (bad
       {
         base_plan with
         Chaos.partitions =
           [ { Chaos.from_t = 0.0; until = 1.0; groups = [ [ 0; 9 ] ] } ];
       });
  Alcotest.(check bool) "site in two groups rejected" true
    (bad
       {
         base_plan with
         Chaos.partitions =
           [ { Chaos.from_t = 0.0; until = 1.0; groups = [ [ 0 ]; [ 0; 1 ] ] } ];
       });
  Alcotest.(check bool) "good plan accepted" true (not (bad base_plan))

let test_loss_accounting () =
  let sent, inner = recording () in
  let c = Chaos.create base_plan ~self:0 ~peers:[ 1; 5 ] ~inner in
  let h = Chaos.handle c in
  let n = 1000 in
  for i = 0 to n - 1 do
    h.Sig.send ~dst:1 (frame i)
  done;
  let lost =
    match List.assoc_opt "chaos.lost" (Chaos.stats_alist c) with
    | Some v -> v
    | None -> 0
  in
  let dup =
    match List.assoc_opt "chaos.duplicated" (Chaos.stats_alist c) with
    | Some v -> v
    | None -> 0
  in
  Alcotest.(check bool) "some frames lost" true (lost > 0);
  Alcotest.(check bool) "some frames duplicated" true (dup > 0);
  (* every offered frame is accounted for: delivered = offered - lost + dup
     (no reorder/spikes in this plan, so nothing is still held back) *)
  Alcotest.(check int) "conservation" (n - lost + dup) (List.length !sent);
  (* determinism end to end: a second shim over the same plan loses the
     same count *)
  let sent2, inner2 = recording () in
  let c2 = Chaos.create base_plan ~self:0 ~peers:[ 1; 5 ] ~inner:inner2 in
  let h2 = Chaos.handle c2 in
  for i = 0 to n - 1 do
    h2.Sig.send ~dst:1 (frame i)
  done;
  Alcotest.(check int) "identical fault decisions on re-run"
    (List.length !sent) (List.length !sent2);
  Alcotest.(check bool) "identical surviving frame sequence" true
    (!sent = !sent2)

let test_supervisor_exempt () =
  let sent, inner = recording () in
  let c = Chaos.create base_plan ~self:0 ~peers:[ 1; 5 ] ~inner in
  let h = Chaos.handle c in
  for i = 0 to 199 do
    h.Sig.send ~dst:5 (frame i) (* dst = n: the supervisor link *)
  done;
  Alcotest.(check int) "no supervisor frame lost" 200 (List.length !sent);
  Alcotest.(check (list (pair string int))) "no chaos counted" []
    (Chaos.stats_alist c)

let test_partition_window () =
  let plan =
    {
      Chaos.no_faults with
      Chaos.seed = 1;
      n = 5;
      partitions =
        [
          { Chaos.from_t = 0.0; until = 3600.0; groups = [ [ 0; 1 ]; [ 2; 3; 4 ] ] };
        ];
    }
  in
  let sent, inner = recording () in
  let c = Chaos.create plan ~self:0 ~peers:[ 1; 2; 5 ] ~inner in
  let h = Chaos.handle c in
  (* before set_zero the window is inactive: everything passes *)
  h.Sig.send ~dst:2 (frame 0);
  Alcotest.(check int) "window inactive before epoch" 1 (List.length !sent);
  Chaos.set_zero c (Unix.gettimeofday ());
  h.Sig.send ~dst:1 (frame 1);
  h.Sig.send ~dst:2 (frame 2);
  h.Sig.send ~dst:5 (frame 3);
  (* same group (1) and supervisor (5) pass; cross-group (2) is dropped *)
  Alcotest.(check int) "cross-group dropped" 3 (List.length !sent);
  Alcotest.(check (option int)) "partition drop counted" (Some 1)
    (List.assoc_opt "chaos.partition_dropped" (Chaos.stats_alist c))

let test_reorder_holdback () =
  (* find a seed whose first frame on (0,1) is reordered and the next few
     are not — pure search over the decision function *)
  let reorder_only = { Chaos.no_faults with Chaos.n = 5; reorder = 0.3 } in
  let seed =
    let rec find s =
      if s > 100_000 then Alcotest.fail "no such seed"
      else
        let p = { reorder_only with Chaos.seed = s } in
        let d k = Chaos.decision p ~src:0 ~dst:1 k in
        if
          (d 0).Chaos.reorder
          && not (List.exists (fun k -> (d k).Chaos.reorder) [ 1; 2; 3; 4; 5 ])
        then s
        else find (s + 1)
    in
    find 1
  in
  let plan = { reorder_only with Chaos.seed = seed } in
  let sent, inner = recording () in
  let c = Chaos.create plan ~self:0 ~peers:[ 1 ] ~inner in
  let h = Chaos.handle c in
  for i = 0 to 5 do
    h.Sig.send ~dst:1 (frame i)
  done;
  (* frame 0 was held back past reorder_hold (3) subsequent frames *)
  let order =
    List.rev_map
      (function
        | _, Wire.Proto { payload; _ } -> int_of_string payload
        | _ -> -1)
      !sent
  in
  Alcotest.(check int) "all frames delivered" 6 (List.length order);
  Alcotest.(check bool)
    (Printf.sprintf "frame 0 delivered late (order %s)"
       (String.concat "," (List.map string_of_int order)))
    true
    (match order with 0 :: _ -> false | _ -> List.mem 0 order)

let suite =
  [
    Alcotest.test_case "fault decisions are seed-deterministic" `Quick
      test_decision_deterministic;
    Alcotest.test_case "fault decision rates match probabilities" `Quick
      test_decision_rates;
    Alcotest.test_case "plan string round-trips" `Quick
      test_plan_string_roundtrip;
    Alcotest.test_case "malformed plans rejected" `Quick test_validation;
    Alcotest.test_case "loss/duplication accounting + re-run determinism"
      `Quick test_loss_accounting;
    Alcotest.test_case "supervisor links exempt" `Quick test_supervisor_exempt;
    Alcotest.test_case "partition window drops cross-group frames" `Quick
      test_partition_window;
    Alcotest.test_case "reorder holds a frame back" `Quick
      test_reorder_holdback;
  ]
