(* The arbiter's priority queue of request timestamps. *)

module Ts = Dmx_sim.Timestamp
module Q = Dmx_core.Ts_queue

let ts sn site = { Ts.sn; site }

let test_priority_order () =
  let q = Q.create () in
  Q.insert q (ts 3 1);
  Q.insert q (ts 1 2);
  Q.insert q (ts 2 0);
  Alcotest.(check bool) "head is (1,2)" true
    (match Q.head q with Some h -> Ts.equal h (ts 1 2) | None -> false);
  Alcotest.(check (list string)) "full order"
    [ "(1,2)"; "(2,0)"; "(3,1)" ]
    (List.map (Format.asprintf "%a" Ts.pp) (Q.to_list q))

let test_same_site_replaces () =
  let q = Q.create () in
  Q.insert q (ts 5 3);
  Q.insert q (ts 9 3);
  Alcotest.(check int) "one entry" 1 (Q.length q);
  Alcotest.(check bool) "newest kept" true
    (match Q.head q with Some h -> Ts.equal h (ts 9 3) | None -> false)

let test_stale_insert_dropped () =
  (* an out-of-order re-enqueue of a superseded request must not clobber
     the site's newer entry *)
  let q = Q.create () in
  Q.insert q (ts 9 3);
  Q.insert q (ts 5 3);
  Alcotest.(check int) "one entry" 1 (Q.length q);
  Alcotest.(check bool) "newer survives" true
    (match Q.head q with Some h -> Ts.equal h (ts 9 3) | None -> false)

let test_pop () =
  let q = Q.create () in
  Q.insert q (ts 2 2);
  Q.insert q (ts 1 1);
  Alcotest.(check bool) "pop best" true
    (match Q.pop q with Some h -> Ts.equal h (ts 1 1) | None -> false);
  Alcotest.(check int) "one left" 1 (Q.length q);
  Alcotest.(check bool) "empty pop" true (Q.pop q <> None && Q.pop q = None)

let test_remove_site () =
  let q = Q.create () in
  Q.insert q (ts 1 1);
  Q.insert q (ts 2 2);
  Alcotest.(check bool) "removed" true (Q.remove_site q 1);
  Alcotest.(check bool) "absent now" false (Q.mem_site q 1);
  Alcotest.(check bool) "remove missing" false (Q.remove_site q 9)

let test_remove_ts_exact () =
  let q = Q.create () in
  Q.insert q (ts 7 4);
  (* removing an OLD timestamp of the same site must not touch the newer *)
  Alcotest.(check bool) "old ts not present" false (Q.remove_ts q (ts 3 4));
  Alcotest.(check bool) "still queued" true (Q.mem_site q 4);
  Alcotest.(check bool) "exact removes" true (Q.remove_ts q (ts 7 4));
  Alcotest.(check bool) "gone" true (Q.is_empty q)

let test_find_site () =
  let q = Q.create () in
  Q.insert q (ts 6 2);
  Alcotest.(check bool) "found" true
    (match Q.find_site q 2 with Some t -> Ts.equal t (ts 6 2) | None -> false);
  Alcotest.(check bool) "missing" true (Q.find_site q 5 = None)

let test_clear () =
  let q = Q.create () in
  Q.insert q (ts 1 1);
  Q.clear q;
  Alcotest.(check bool) "empty" true (Q.is_empty q)

let qcheck_sorted =
  QCheck.Test.make ~name:"ts_queue keeps priority order" ~count:300
    QCheck.(list (pair (int_range 0 20) (int_range 0 10)))
    (fun entries ->
      let q = Q.create () in
      List.iter (fun (sn, site) -> Q.insert q (ts sn site)) entries;
      let l = Q.to_list q in
      (* sorted by priority *)
      let rec sorted = function
        | a :: (b :: _ as rest) -> Ts.compare a b < 0 && sorted rest
        | _ -> true
      in
      (* at most one entry per site *)
      let sites = List.map (fun (t : Ts.t) -> t.site) l in
      sorted l && List.length sites = List.length (List.sort_uniq compare sites))

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("priority order", test_priority_order);
      ("same site replaces", test_same_site_replaces);
      ("stale insert dropped", test_stale_insert_dropped);
      ("pop", test_pop);
      ("remove by site", test_remove_site);
      ("remove exact timestamp", test_remove_ts_exact);
      ("find_site", test_find_site);
      ("clear", test_clear);
    ]
  @ [ QCheck_alcotest.to_alcotest qcheck_sorted ]
