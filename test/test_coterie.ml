(* Coterie predicates: the Section 2 definitions. *)

module Ct = Dmx_quorum.Coterie

let mk n qs = Ct.make ~n qs

let test_paper_example () =
  (* C = {{a,b},{b,c}} over U = {a,b,c} is the paper's example coterie. *)
  let c = mk 3 [ [ 0; 1 ]; [ 1; 2 ] ] in
  Alcotest.(check bool) "intersecting" true (Ct.intersecting c);
  Alcotest.(check bool) "minimal" true (Ct.minimal c);
  Alcotest.(check bool) "is coterie" true (Ct.is_coterie c)

let test_disjoint_fails_intersection () =
  let c = mk 4 [ [ 0; 1 ]; [ 2; 3 ] ] in
  Alcotest.(check bool) "not intersecting" false (Ct.intersecting c);
  Alcotest.(check bool) "not a coterie" false (Ct.is_coterie c)

let test_subset_fails_minimality () =
  let c = mk 3 [ [ 0; 1; 2 ]; [ 0; 1 ] ] in
  Alcotest.(check bool) "intersecting" true (Ct.intersecting c);
  Alcotest.(check bool) "not minimal" false (Ct.minimal c)

let test_make_normalizes () =
  let c = mk 3 [ [ 2; 0; 2; 1 ]; [ 1; 0; 2 ] ] in
  Alcotest.(check int) "duplicates collapse" 1 (List.length (Ct.quorums c))

let test_make_validates () =
  Alcotest.(check bool) "empty quorum rejected" true
    (try ignore (mk 3 [ [] ]); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "out-of-range site rejected" true
    (try ignore (mk 3 [ [ 5 ] ]); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "n must be positive" true
    (try ignore (mk 0 []); false with Invalid_argument _ -> true)

let test_domination () =
  (* {{a}} dominates {{a,b},{a,c}} *)
  let small = mk 3 [ [ 0 ] ] in
  let big = mk 3 [ [ 0; 1 ]; [ 0; 2 ] ] in
  Alcotest.(check bool) "small dominates big" true (Ct.dominates small big);
  Alcotest.(check bool) "big does not dominate small" false (Ct.dominates big small);
  Alcotest.(check bool) "no self domination" false (Ct.dominates small small)

let test_quorum_ops () =
  Alcotest.(check bool) "mem" true (Ct.quorum_mem 2 [ 1; 2; 3 ]);
  Alcotest.(check bool) "not mem" false (Ct.quorum_mem 4 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "inter" [ 2; 3 ] (Ct.quorum_inter [ 1; 2; 3 ] [ 2; 3; 4 ]);
  Alcotest.(check (list int)) "empty inter" [] (Ct.quorum_inter [ 1 ] [ 2 ]);
  Alcotest.(check bool) "subset" true (Ct.quorum_subset [ 1; 3 ] [ 1; 2; 3 ]);
  Alcotest.(check bool) "not subset" false (Ct.quorum_subset [ 1; 4 ] [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "normalize" [ 1; 2; 3 ] (Ct.normalize_quorum [ 3; 1; 2; 1 ])

let test_majority_coterie_is_coterie () =
  (* all 3-subsets of 5 sites *)
  let rec subsets k lo =
    if k = 0 then [ [] ]
    else
      List.concat_map
        (fun x -> List.map (fun rest -> x :: rest) (subsets (k - 1) (x + 1)))
        (List.init (5 - lo) (fun i -> lo + i))
  in
  let c = mk 5 (subsets 3 0) in
  Alcotest.(check bool) "majority-3-of-5 is a coterie" true (Ct.is_coterie c)

let qcheck_inter_commutative =
  QCheck.Test.make ~name:"quorum_inter is commutative and subset of both" ~count:300
    QCheck.(pair (list (int_range 0 15)) (list (int_range 0 15)))
    (fun (a, b) ->
      let a = Ct.normalize_quorum a and b = Ct.normalize_quorum b in
      let i1 = Ct.quorum_inter a b and i2 = Ct.quorum_inter b a in
      i1 = i2 && Ct.quorum_subset i1 a && Ct.quorum_subset i1 b)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("paper example", test_paper_example);
      ("disjoint quorums rejected", test_disjoint_fails_intersection);
      ("subset breaks minimality", test_subset_fails_minimality);
      ("make normalizes", test_make_normalizes);
      ("make validates", test_make_validates);
      ("domination", test_domination);
      ("quorum set operations", test_quorum_ops);
      ("majority coterie", test_majority_coterie_is_coterie);
    ]
  @ [ QCheck_alcotest.to_alcotest qcheck_inter_commutative ]
