(* Determinism and statistical sanity of the from-scratch xoshiro256++. *)

module Rng = Dmx_sim.Rng

let check = Alcotest.check

let test_same_seed_same_stream () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_different_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.int64 a) (Rng.int64 b) then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_copy_preserves_stream () =
  let a = Rng.create 7 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  for _ = 1 to 50 do
    check Alcotest.int64 "copy equals original" (Rng.int64 a) (Rng.int64 b)
  done

let test_split_independence () =
  (* Consuming the child must not perturb the parent: the parent's stream
     after a split equals the stream of a twin that split and discarded. *)
  let a = Rng.create 99 and b = Rng.create 99 in
  let ca = Rng.split a and cb = Rng.split b in
  for _ = 1 to 10 do
    ignore (Rng.int64 ca)
  done;
  ignore cb;
  for _ = 1 to 50 do
    check Alcotest.int64 "parent unperturbed" (Rng.int64 a) (Rng.int64 b)
  done

let test_int_bounds () =
  let r = Rng.create 5 in
  for _ = 1 to 10_000 do
    let x = Rng.int r 7 in
    Alcotest.(check bool) "0 <= x < 7" true (x >= 0 && x < 7)
  done

let test_int_rejects_nonpositive () =
  let r = Rng.create 5 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_float_bounds () =
  let r = Rng.create 11 in
  for _ = 1 to 10_000 do
    let x = Rng.float r 2.5 in
    Alcotest.(check bool) "0 <= x < 2.5" true (x >= 0.0 && x < 2.5)
  done

let test_uniform_mean () =
  let r = Rng.create 17 in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.uniform r ~lo:1.0 ~hi:3.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 2.0" true (abs_float (mean -. 2.0) < 0.02)

let test_exponential_mean () =
  let r = Rng.create 23 in
  let n = 200_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:4.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean near 4.0 (got %f)" mean)
    true
    (abs_float (mean -. 4.0) < 0.05)

let test_exponential_nonnegative () =
  let r = Rng.create 29 in
  for _ = 1 to 10_000 do
    Alcotest.(check bool) "exp >= 0" true (Rng.exponential r ~mean:1.0 >= 0.0)
  done

let test_bool_balance () =
  let r = Rng.create 31 in
  let t = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Rng.bool r then incr t
  done;
  let frac = float_of_int !t /. float_of_int n in
  Alcotest.(check bool) "fair coin" true (abs_float (frac -. 0.5) < 0.01)

let test_shuffle_permutes () =
  let r = Rng.create 37 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check
    Alcotest.(array int)
    "same multiset" (Array.init 50 Fun.id) sorted

let test_pick_uniformish () =
  let r = Rng.create 41 in
  let counts = Array.make 4 0 in
  for _ = 1 to 40_000 do
    let x = Rng.pick r [| 0; 1; 2; 3 |] in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "roughly uniform" true (c > 9_000 && c < 11_000))
    counts

let test_pick_empty () =
  let r = Rng.create 43 in
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick r [||]))

let test_chi_square_uniformity () =
  (* 16 buckets, 160k draws: chi-square statistic for a uniform die with
     15 degrees of freedom should be far below 60 (p < 1e-6 territory) *)
  let r = Rng.create 1234 in
  let buckets = 16 in
  let draws = 160_000 in
  let counts = Array.make buckets 0 in
  for _ = 1 to draws do
    let x = Rng.int r buckets in
    counts.(x) <- counts.(x) + 1
  done;
  let expect = float_of_int draws /. float_of_int buckets in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expect in
        acc +. (d *. d /. expect))
      0.0 counts
  in
  Alcotest.(check bool)
    (Printf.sprintf "chi-square %.1f < 60" chi2)
    true (chi2 < 60.0)

let test_split_streams_uncorrelated () =
  (* crude cross-correlation between sibling streams must be tiny *)
  let parent = Rng.create 99 in
  let a = Rng.split parent and b = Rng.split parent in
  let m = 50_000 in
  let dot = ref 0 in
  for _ = 1 to m do
    let xa = if Rng.bool a then 1 else -1 in
    let xb = if Rng.bool b then 1 else -1 in
    dot := !dot + (xa * xb)
  done;
  let corr = float_of_int !dot /. float_of_int m in
  Alcotest.(check bool)
    (Printf.sprintf "correlation %.4f small" corr)
    true
    (abs_float corr < 0.02)

let qcheck_int_in_bounds =
  QCheck.Test.make ~name:"rng int always within bound" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let x = Rng.int r bound in
      x >= 0 && x < bound)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("same seed, same stream", test_same_seed_same_stream);
      ("different seeds differ", test_different_seeds_differ);
      ("copy preserves stream", test_copy_preserves_stream);
      ("split independence", test_split_independence);
      ("int bounds", test_int_bounds);
      ("int rejects non-positive bound", test_int_rejects_nonpositive);
      ("float bounds", test_float_bounds);
      ("uniform mean", test_uniform_mean);
      ("exponential mean", test_exponential_mean);
      ("exponential non-negative", test_exponential_nonnegative);
      ("bool is balanced", test_bool_balance);
      ("shuffle permutes", test_shuffle_permutes);
      ("pick is uniformish", test_pick_uniformish);
      ("pick on empty raises", test_pick_empty);
      ("chi-square uniformity", test_chi_square_uniformity);
      ("split streams uncorrelated", test_split_streams_uncorrelated);
    ]
  @ [ QCheck_alcotest.to_alcotest qcheck_int_in_bounds ]
