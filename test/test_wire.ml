(* Wire-codec round-trip and corruption-rejection tests.

   Every [Dmx_core.Messages.t] constructor, every [Dmx_sim.Trace.kind]
   constructor and every [Dmx_net.Wire.frame] constructor must survive
   encode/decode unchanged — including the recursive reliability envelope,
   sentinel values ([Timestamp.infinity], [neg_infinity] incarnations) and
   max-size payloads. Decoding must be total: any truncation or corruption
   yields [Error], never an exception or a silently wrong value. *)

module M = Dmx_core.Messages
module Ts = Dmx_sim.Timestamp
module Trace = Dmx_sim.Trace
module Wire = Dmx_net.Wire

(* ---- generators ---- *)

let ts_gen =
  QCheck.Gen.(
    frequency
      [
        ( 8,
          map2
            (fun sn site -> { Ts.sn; site })
            (int_range 0 1_000_000) (int_range 0 64) );
        (1, return Ts.infinity);
      ])

let small_string_gen = QCheck.Gen.(string_size ~gen:char (int_range 0 64))

let float_gen =
  QCheck.Gen.(
    frequency
      [
        (8, float);
        (1, return neg_infinity);
        (1, return 0.0);
        (1, return infinity);
      ])

let msg_gen : M.t QCheck.Gen.t =
  let open QCheck.Gen in
  let base =
    frequency
      [
        (3, map (fun ts -> M.Request ts) ts_gen);
        ( 3,
          map3
            (fun arbiter for_req next -> M.Reply { arbiter; for_req; next })
            (int_range 0 64) ts_gen (option ts_gen) );
        ( 3,
          map2
            (fun of_req forwarded_to -> M.Release { of_req; forwarded_to })
            ts_gen (option ts_gen) );
        ( 3,
          map2 (fun target inquire -> M.Transfer { target; inquire }) ts_gen bool
        );
        (1, return M.Fail);
        (2, map (fun of_req -> M.Yield { of_req }) ts_gen);
        (2, map (fun s -> M.Failure_note s) (int_range 0 64));
        (1, return M.Hello);
        ( 2,
          map2 (fun of_inc upto -> M.Ack { of_inc; upto }) float_gen
            (int_range 0 1_000_000) );
      ]
  in
  (* wrap roughly a third of messages in one or two Data envelopes, so the
     recursive case is exercised *)
  let rec wrap depth m =
    if depth = 0 then return m
    else
      float_gen >>= fun inc ->
      float_gen >>= fun dst_inc ->
      int_range 0 10_000 >>= fun seq ->
      int_range 0 10_000 >>= fun base ->
      bool >>= fun retx ->
      wrap (depth - 1) (M.Data { inc; dst_inc; seq; base; retx; payload = m })
  in
  base >>= fun m ->
  int_range 0 2 >>= fun depth -> wrap depth m

let kind_gen : Trace.kind QCheck.Gen.t =
  let open QCheck.Gen in
  frequency
    [
      ( 3,
        map2
          (fun dst msg -> Trace.Send { dst; msg })
          (int_range 0 64) small_string_gen );
      ( 3,
        map2
          (fun src msg -> Trace.Receive { src; msg })
          (int_range 0 64) small_string_gen );
      (2, return Trace.Enter_cs);
      (2, return Trace.Exit_cs);
      (1, map (fun t -> Trace.Timer t) (int_range 0 128));
      (1, return Trace.Crash);
      (1, return Trace.Recover);
      ( 1,
        map2
          (fun dst reason -> Trace.Drop { dst; reason })
          (int_range 0 64) small_string_gen );
      (1, map (fun dst -> Trace.Duplicate { dst }) (int_range 0 64));
      (1, map (fun heal -> Trace.Partition { heal }) bool);
      (1, map (fun s -> Trace.Suspect s) (int_range 0 64));
      (1, map (fun s -> Trace.Trust s) (int_range 0 64));
      (1, map (fun s -> Trace.Note s) small_string_gen);
      (2, return Trace.Request);
      ( 1,
        map
          (fun q -> Trace.Adopt_quorum q)
          (list_size (int_range 0 12) (int_range 0 64)) );
      (1, map (fun arbiter -> Trace.Acquire { arbiter }) (int_range 0 64));
      (1, map (fun arbiter -> Trace.Cede { arbiter }) (int_range 0 64));
      ( 1,
        map2
          (fun arbiter to_ -> Trace.Forward { arbiter; to_ })
          (int_range 0 64) (int_range 0 64) );
      (1, map (fun to_ -> Trace.Grant { to_ }) (int_range 0 64));
    ]

let entry_gen : Trace.entry QCheck.Gen.t =
  QCheck.Gen.(
    map3
      (fun time site kind -> { Trace.time; site; kind })
      (float_range 0.0 1000.0) (int_range 0 64) kind_gen)

(* index-unique names keep [Snapshot.normalize] from seeing duplicate
   (name, labels) keys; the decoder re-normalizes, so round-trip equality
   needs a canonical input *)
let snapshot_gen : Dmx_obs.Snapshot.t QCheck.Gen.t =
  let open QCheck.Gen in
  let value_gen =
    frequency
      [
        (4, map (fun v -> Dmx_obs.Snapshot.Counter v) (int_range 0 1_000_000));
        ( 2,
          map
            (fun v -> Dmx_obs.Snapshot.Gauge v)
            (int_range (-1_000) 1_000_000) );
        ( 2,
          map3
            (fun buckets (count, sum) max ->
              Dmx_obs.Snapshot.Histogram
                { buckets = Array.of_list buckets; count; sum; max })
            (list_size (int_range 0 64) (int_range 0 10_000))
            (pair (int_range 0 10_000) (int_range 0 1_000_000))
            (int_range 0 1_000_000) );
      ]
  in
  let series_gen i =
    map2
      (fun labeled value ->
        Dmx_obs.Snapshot.series
          ~name:(Printf.sprintf "metric.%d" i)
          ~labels:
            (if labeled then [ ("shard", string_of_int (i mod 4)) ] else [])
          value)
      bool value_gen
  in
  int_range 0 8 >>= fun n ->
  flatten_l (List.init n series_gen) >>= fun raw ->
  return (Dmx_obs.Snapshot.normalize raw)

let frame_gen : Wire.frame QCheck.Gen.t =
  let open QCheck.Gen in
  frequency
    [
      ( 2,
        map2
          (fun site inc -> Wire.Hello { site; inc })
          (int_range 0 64) float_gen );
      ( 2,
        map2
          (fun site time -> Wire.Heartbeat { site; time })
          (int_range 0 64) float_gen );
      ( 4,
        map3
          (fun src dst m ->
            Wire.Proto { src; dst; payload = Wire.encode_message m })
          (int_range 0 64) (int_range 0 64) msg_gen );
      ( 1,
        map3
          (fun rounds cs_duration since ->
            Wire.Workload { rounds; cs_duration; since })
          (int_range 0 10_000) (float_range 0.0 10.0) (float_range 0.0 100.0)
      );
      ( 3,
        map2
          (fun site entries -> Wire.Trace_batch { site; entries })
          (int_range 0 64)
          (list_size (int_range 0 32) entry_gen) );
      ( 2,
        map3
          (fun site (executions, sent, received) (kinds, reliable) ->
            Wire.Metrics { site; executions; sent; received; kinds; reliable })
          (int_range 0 64)
          (triple (int_range 0 100_000) (int_range 0 100_000)
             (int_range 0 100_000))
          (pair
             (list_size (int_range 0 10)
                (pair small_string_gen (int_range 0 100_000)))
             (list_size (int_range 0 10)
                (pair small_string_gen (int_range 0 100_000)))) );
      (1, return Wire.Shutdown);
      ( 2,
        map2
          (fun session inc -> Wire.Open_session { session; inc })
          (int_range 0 1_000_000) float_gen );
      ( 2,
        map3
          (fun session lock req -> Wire.Acquire { session; lock; req })
          (int_range 0 1_000_000) small_string_gen (int_range 0 1_000_000) );
      ( 1,
        map3
          (fun session lock req -> Wire.Release_lock { session; lock; req })
          (int_range 0 1_000_000) small_string_gen (int_range 0 1_000_000) );
      ( 1,
        map3
          (fun session lock req -> Wire.Renew { session; lock; req })
          (int_range 0 1_000_000) small_string_gen (int_range 0 1_000_000) );
      ( 2,
        map3
          (fun session (lock, req) deadline ->
            Wire.Grant { session; lock; req; deadline })
          (int_range 0 1_000_000)
          (pair small_string_gen (int_range 0 1_000_000))
          float_gen );
      ( 1,
        map3
          (fun session (lock, req) reason ->
            Wire.Deny { session; lock; req; reason })
          (int_range 0 1_000_000)
          (pair small_string_gen (int_range 0 1_000_000))
          small_string_gen );
      ( 1,
        map3
          (fun session lock req -> Wire.Expire { session; lock; req })
          (int_range 0 1_000_000) small_string_gen (int_range 0 1_000_000) );
      ( 2,
        map3
          (fun shard (src, dst) m ->
            Wire.Sproto { shard; src; dst; payload = Wire.encode_message m })
          (int_range 0 64)
          (pair (int_range 0 64) (int_range 0 64))
          msg_gen );
      ( 2,
        map3
          (fun shard site entries -> Wire.Strace { shard; site; entries })
          (int_range 0 64) (int_range 0 64)
          (list_size (int_range 0 32) entry_gen) );
      ( 2,
        map2
          (fun site snapshot -> Wire.Metrics_v2 { site; snapshot })
          (int_range 0 64) snapshot_gen );
    ]

(* ---- printers (shrunk output readability) ---- *)

let msg_print m = Format.asprintf "%a" M.pp m

let frame_print = function
  | Wire.Hello { site; inc } -> Printf.sprintf "Hello{site=%d;inc=%h}" site inc
  | Wire.Heartbeat { site; time } ->
    Printf.sprintf "Heartbeat{site=%d;time=%h}" site time
  | Wire.Proto { src; dst; payload } ->
    Printf.sprintf "Proto{src=%d;dst=%d;%d bytes}" src dst
      (String.length payload)
  | Wire.Workload { rounds; cs_duration; since } ->
    Printf.sprintf "Workload{rounds=%d;cs=%h;since=%h}" rounds cs_duration since
  | Wire.Trace_batch { site; entries } ->
    Printf.sprintf "Trace_batch{site=%d;%d entries}" site (List.length entries)
  | Wire.Metrics { site; executions; _ } ->
    Printf.sprintf "Metrics{site=%d;executions=%d}" site executions
  | Wire.Shutdown -> "Shutdown"
  | Wire.Open_session { session; inc } ->
    Printf.sprintf "Open_session{session=%d;inc=%h}" session inc
  | Wire.Acquire { session; lock; req } ->
    Printf.sprintf "Acquire{session=%d;lock=%S;req=%d}" session lock req
  | Wire.Release_lock { session; lock; req } ->
    Printf.sprintf "Release_lock{session=%d;lock=%S;req=%d}" session lock req
  | Wire.Renew { session; lock; req } ->
    Printf.sprintf "Renew{session=%d;lock=%S;req=%d}" session lock req
  | Wire.Grant { session; lock; req; deadline } ->
    Printf.sprintf "Grant{session=%d;lock=%S;req=%d;deadline=%h}" session lock
      req deadline
  | Wire.Deny { session; lock; req; reason } ->
    Printf.sprintf "Deny{session=%d;lock=%S;req=%d;reason=%S}" session lock req
      reason
  | Wire.Expire { session; lock; req } ->
    Printf.sprintf "Expire{session=%d;lock=%S;req=%d}" session lock req
  | Wire.Sproto { shard; src; dst; payload } ->
    Printf.sprintf "Sproto{shard=%d;src=%d;dst=%d;%d bytes}" shard src dst
      (String.length payload)
  | Wire.Strace { shard; site; entries } ->
    Printf.sprintf "Strace{shard=%d;site=%d;%d entries}" shard site
      (List.length entries)
  | Wire.Metrics_v2 { site; snapshot } ->
    Printf.sprintf "Metrics_v2{site=%d;%d series}" site (List.length snapshot)

(* ---- properties ---- *)

let prop_msg_roundtrip =
  QCheck.Test.make ~count:2000 ~name:"message round-trip"
    (QCheck.make ~print:msg_print msg_gen) (fun m ->
      match Wire.decode_message (Wire.encode_message m) with
      | Ok m' -> m = m'
      | Error e -> QCheck.Test.fail_reportf "decode error: %s" e)

let prop_frame_roundtrip =
  QCheck.Test.make ~count:2000 ~name:"frame round-trip"
    (QCheck.make ~print:frame_print frame_gen) (fun f ->
      match Wire.decode (Wire.encode f) with
      | Ok f' -> f = f'
      | Error e -> QCheck.Test.fail_reportf "decode error: %s" e)

let prop_truncation_rejected =
  QCheck.Test.make ~count:500 ~name:"every strict prefix rejected"
    (QCheck.make ~print:frame_print frame_gen) (fun f ->
      let enc = Wire.encode f in
      let ok = ref true in
      for len = 0 to String.length enc - 1 do
        match Wire.decode (String.sub enc 0 len) with
        | Error _ -> ()
        | Ok _ -> ok := false
      done;
      !ok)

let prop_trailing_rejected =
  QCheck.Test.make ~count:500 ~name:"trailing bytes rejected"
    (QCheck.make ~print:frame_print frame_gen) (fun f ->
      match Wire.decode (Wire.encode f ^ "\x00") with
      | Error _ -> true
      | Ok _ -> false)

let prop_corrupt_never_raises =
  (* flip one byte anywhere: decode must return, not raise; if it returns
     Ok, re-encoding must reproduce the corrupted input (i.e. the flip hit
     a don't-care position — which the exact-consumption decoder makes
     impossible except inside string payloads or numeric fields, where the
     decoded value legitimately differs but stays well-formed). *)
  QCheck.Test.make ~count:1000 ~name:"single-byte corruption never raises"
    (QCheck.make
       ~print:(fun (f, pos, byte) ->
         Printf.sprintf "%s / flip pos %d to %d" (frame_print f) pos byte)
       QCheck.Gen.(triple frame_gen (int_range 0 1_000_000) (int_range 0 255)))
    (fun (f, pos, byte) ->
      let enc = Bytes.of_string (Wire.encode f) in
      let pos = pos mod Bytes.length enc in
      Bytes.set_uint8 enc pos byte;
      match Wire.decode (Bytes.to_string enc) with
      | Ok _ | Error _ -> true)

(* ---- datagram-shaped corruption ----

   On the UDP path there is no length prefix: one datagram IS one frame
   payload, so the decoder's exact-consumption rule is the only framing.
   Model the datagram failure modes directly: two frames fused into one
   datagram, a datagram truncated in flight, and random noise. (Truncation
   of a single frame and single-byte flips are covered above; duplicated
   datagrams decode independently, which the round-trip property covers.) *)

let prop_fused_datagram_rejected =
  QCheck.Test.make ~count:500 ~name:"two frames fused into one datagram rejected"
    (QCheck.make
       ~print:(fun (a, b) ->
         Printf.sprintf "%s ++ %s" (frame_print a) (frame_print b))
       QCheck.Gen.(pair frame_gen frame_gen))
    (fun (a, b) ->
      match Wire.decode (Wire.encode a ^ Wire.encode b) with
      | Error _ -> true
      | Ok _ -> false)

let prop_noise_never_raises =
  QCheck.Test.make ~count:2000 ~name:"random datagram noise never raises"
    (QCheck.make
       ~print:(fun s -> Printf.sprintf "%d noise bytes" (String.length s))
       QCheck.Gen.(string_size ~gen:char (int_range 0 512)))
    (fun s -> match Wire.decode s with Ok _ | Error _ -> true)

let prop_oversize_batch_stays_in_datagram =
  (* the node daemon chunks trace batches at 96 entries; any such chunk
     must fit a single UDP datagram with room to spare *)
  QCheck.Test.make ~count:100 ~name:"96-entry trace batch fits a datagram"
    (QCheck.make
       ~print:(fun es -> Printf.sprintf "%d entries" (List.length es))
       QCheck.Gen.(list_size (return 96) entry_gen))
    (fun entries ->
      let enc = Wire.encode (Wire.Trace_batch { site = 0; entries }) in
      String.length enc <= Dmx_net.Udp.max_datagram)

(* ---- unit cases: sentinels, max sizes, version gate, framed IO ---- *)

let check_msg m =
  match Wire.decode_message (Wire.encode_message m) with
  | Ok m' ->
    Alcotest.(check bool) (msg_print m) true (m = m')
  | Error e -> Alcotest.failf "decode_message %s: %s" (msg_print m) e

let test_sentinels () =
  check_msg (M.Request Ts.infinity);
  check_msg
    (M.Reply { arbiter = 0; for_req = Ts.infinity; next = Some Ts.infinity });
  check_msg
    (M.Data
       {
         inc = neg_infinity;
         dst_inc = neg_infinity;
         seq = max_int;
         base = 0;
         retx = true;
         payload = M.Hello;
       });
  check_msg (M.Ack { of_inc = nan; upto = 0 }
             |> fun m ->
             (* NaN <> NaN structurally; round-trip bit-exactness instead *)
             (match Wire.decode_message (Wire.encode_message m) with
              | Ok (M.Ack { of_inc; _ }) ->
                Alcotest.(check bool) "nan preserved" true (Float.is_nan of_inc)
              | Ok _ | Error _ -> Alcotest.fail "nan ack decode");
             M.Hello)

let test_max_payload () =
  (* a Proto frame carrying a near-max_frame opaque payload round-trips *)
  let payload = String.make (Wire.max_frame - 64) 'x' in
  let f = Wire.Proto { src = 1; dst = 2; payload } in
  match Wire.decode (Wire.encode f) with
  | Ok (Wire.Proto { payload = p'; _ }) ->
    Alcotest.(check int) "payload length" (String.length payload)
      (String.length p')
  | Ok _ -> Alcotest.fail "wrong frame"
  | Error e -> Alcotest.failf "decode: %s" e

let test_version_rejected () =
  let enc = Bytes.of_string (Wire.encode Wire.Shutdown) in
  Bytes.set_uint8 enc 0 (Wire.version + 1);
  match Wire.decode (Bytes.to_string enc) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "future version accepted"

let test_bad_tag_rejected () =
  let b = Buffer.create 4 in
  Buffer.add_uint8 b Wire.version;
  Buffer.add_uint8 b 250;
  (match Wire.decode (Buffer.contents b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad frame tag accepted");
  match Wire.decode_message "\xfa" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad message tag accepted"

let test_framed_io () =
  (* write_frame/read_frame over a pipe, several frames back-to-back *)
  let frames =
    [
      Wire.Hello { site = 3; inc = 1.5 };
      Wire.Proto
        { src = 0; dst = 4; payload = Wire.encode_message (M.Request { Ts.sn = 7; site = 0 }) };
      Wire.Trace_batch
        {
          site = 2;
          entries =
            [
              { Trace.time = 0.25; site = 2; kind = Trace.Request };
              { Trace.time = 0.5; site = 2; kind = Trace.Enter_cs };
            ];
        };
      Wire.Shutdown;
    ]
  in
  let rd, wr = Unix.pipe () in
  List.iter (Wire.write_frame wr) frames;
  Unix.close wr;
  List.iter
    (fun expect ->
      match Wire.read_frame rd with
      | Ok got -> Alcotest.(check bool) (frame_print expect) true (got = expect)
      | Error e -> Alcotest.failf "read_frame: %s" e)
    frames;
  (match Wire.read_frame rd with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "read past EOF succeeded");
  Unix.close rd

let test_oversize_length_rejected () =
  let rd, wr = Unix.pipe () in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int (Wire.max_frame + 1));
  ignore (Unix.write wr hdr 0 4);
  Unix.close wr;
  (match Wire.read_frame rd with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversize frame accepted");
  Unix.close rd

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_msg_roundtrip;
      prop_frame_roundtrip;
      prop_truncation_rejected;
      prop_trailing_rejected;
      prop_corrupt_never_raises;
      prop_fused_datagram_rejected;
      prop_noise_never_raises;
      prop_oversize_batch_stays_in_datagram;
    ]
  @ [
      Alcotest.test_case "sentinel values round-trip" `Quick test_sentinels;
      Alcotest.test_case "max-size payload round-trips" `Quick test_max_payload;
      Alcotest.test_case "future version rejected" `Quick test_version_rejected;
      Alcotest.test_case "unknown tags rejected" `Quick test_bad_tag_rejected;
      Alcotest.test_case "framed io over a pipe" `Quick test_framed_io;
      Alcotest.test_case "oversize length prefix rejected" `Quick
        test_oversize_length_rejected;
    ]
