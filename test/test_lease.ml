(* The lease state machine, driven through a stub io with a manual
   clock — the same capability-record pattern as the Reliable tests.
   Covered: the grant/release cycle, expiry when the holder goes silent,
   the renewal/release and renewal/expiry races, batching bounded per
   tenure, idempotent duplicate acquires, incarnation voiding (the
   restart-evidence path used by session re-homing), and the
   single-timer-chain discipline. *)

module L = Dmx_core.Lease

let stub ?(duration = 2.0) ?(max_batch = 8) () =
  let now = ref 0.0 in
  let timers = ref [] in
  let io =
    {
      L.now = (fun () -> !now);
      set_timer = (fun ~delay -> timers := (!now +. delay) :: !timers);
    }
  in
  let t = L.create { L.duration; max_batch } ~io in
  (t, now, timers)

let kind = function
  | L.Grant _ -> "grant"
  | L.Expire _ -> "expire"
  | L.Request_cs -> "request"
  | L.Release_cs -> "release"

let kinds actions = List.map kind actions

let check_kinds what expected actions =
  Alcotest.(check (list string)) what expected (kinds actions)

(* Fire the armed timer chain once: pop the earliest pending arm, move
   the clock there, deliver. *)
let fire t now timers =
  match List.sort compare !timers with
  | [] -> Alcotest.fail "no timer armed"
  | at :: rest ->
    timers := rest;
    now := Float.max !now at;
    L.on_timer t

let test_grant_release_cycle () =
  let t, _now, _timers = stub () in
  check_kinds "acquire requests the CS" [ "request" ]
    (L.acquire t ~session:1 ~req:1);
  Alcotest.(check bool) "requested" true (L.requested t);
  check_kinds "tenure grants the head of the queue" [ "grant" ]
    (L.granted t);
  Alcotest.(check (option (pair int int)))
    "holder" (Some (1, 1)) (L.holder t);
  check_kinds "release with an empty queue gives the CS back"
    [ "release" ]
    (L.release t ~session:1 ~req:1);
  Alcotest.(check bool) "out of cs" false (L.in_cs t);
  Alcotest.(check int) "one tenure" 1 (L.stats t).L.tenures

let test_expiry_frees_the_shard () =
  (* the holder vanishes (client crash / partition): the timer expires
     the hold and the next waiter is granted within the same tenure *)
  let t, now, timers = stub ~duration:1.0 () in
  check_kinds "request" [ "request" ] (L.acquire t ~session:1 ~req:1);
  ignore (L.acquire t ~session:2 ~req:1);
  check_kinds "grant session 1" [ "grant" ] (L.granted t);
  let actions = fire t now timers in
  check_kinds "expiry hands over to session 2" [ "expire"; "grant" ] actions;
  (match actions with
  | L.Expire { session = 1; req = 1 } :: _ -> ()
  | _ -> Alcotest.fail "expected session 1 to expire");
  Alcotest.(check (option (pair int int)))
    "session 2 now holds" (Some (2, 1)) (L.holder t);
  Alcotest.(check int) "one expiry" 1 (L.stats t).L.expiries

let test_renewal_slides_the_deadline () =
  let t, now, timers = stub ~duration:1.0 () in
  ignore (L.acquire t ~session:1 ~req:1);
  ignore (L.granted t);
  now := 0.6;
  (match L.renew t ~session:1 ~req:1 with
  | [ L.Grant { session = 1; req = 1; deadline } ] ->
    Alcotest.(check (float 1e-9)) "deadline slid" 1.6 deadline
  | _ -> Alcotest.fail "renewal should re-grant");
  (* the original timer fires at the old deadline, sees the pushed-out
     one and re-arms instead of expiring *)
  check_kinds "stale timer is harmless" [] (fire t now timers);
  Alcotest.(check (option (pair int int)))
    "still held" (Some (1, 1)) (L.holder t);
  (* the re-armed timer finds the true deadline gone *)
  check_kinds "then the real expiry" [ "expire"; "release" ]
    (fire t now timers);
  Alcotest.(check int) "one renewal" 1 (L.stats t).L.renewals

let test_renewal_after_release_expires () =
  (* the renew/release race: a renewal that loses against the client's
     own release must answer Expire, not resurrect the hold *)
  let t, _now, _timers = stub () in
  ignore (L.acquire t ~session:1 ~req:1);
  ignore (L.granted t);
  ignore (L.release t ~session:1 ~req:1);
  check_kinds "late renewal answers expire" [ "expire" ]
    (L.renew t ~session:1 ~req:1);
  Alcotest.(check (option (pair int int))) "no holder" None (L.holder t)

let test_batching_bounded_per_tenure () =
  let t, _now, _timers = stub ~max_batch:2 () in
  ignore (L.acquire t ~session:1 ~req:1);
  ignore (L.acquire t ~session:2 ~req:1);
  ignore (L.acquire t ~session:3 ~req:1);
  check_kinds "grant first" [ "grant" ] (L.granted t);
  check_kinds "second grant within the tenure" [ "grant" ]
    (L.release t ~session:1 ~req:1);
  (* batch exhausted: give the CS back and re-request for session 3 *)
  check_kinds "then yield and re-request" [ "release"; "request" ]
    (L.release t ~session:2 ~req:1);
  check_kinds "fresh tenure serves the rest" [ "grant" ] (L.granted t);
  Alcotest.(check int) "two tenures" 2 (L.stats t).L.tenures

let test_duplicate_acquire_is_idempotent () =
  let t, _now, _timers = stub () in
  check_kinds "first acquire requests" [ "request" ]
    (L.acquire t ~session:1 ~req:1);
  check_kinds "duplicate while queued says nothing" []
    (L.acquire t ~session:1 ~req:1);
  ignore (L.granted t);
  (* duplicate from the current holder: the Grant was lost in flight —
     re-ack without touching the deadline *)
  check_kinds "duplicate from the holder re-grants" [ "grant" ]
    (L.acquire t ~session:1 ~req:1);
  Alcotest.(check int) "one real grant counted" 1 (L.stats t).L.grants

let test_incarnation_voids_stale_hold () =
  (* a restarted client re-opens with a larger incarnation: the host
     calls void_session, which must free the hold immediately instead of
     running out the lease clock *)
  let t, _now, _timers = stub () in
  ignore (L.acquire t ~session:1 ~req:1);
  ignore (L.acquire t ~session:2 ~req:1);
  ignore (L.granted t);
  check_kinds "void frees the hold and grants the next waiter"
    [ "grant" ]
    (L.void_session t ~session:1);
  Alcotest.(check (option (pair int int)))
    "session 2 holds" (Some (2, 1)) (L.holder t);
  Alcotest.(check int) "voided counts the hold" 1 (L.stats t).L.voided;
  (* voiding a queued request only prunes the queue *)
  ignore (L.acquire t ~session:3 ~req:1);
  check_kinds "voiding a waiter is silent" [] (L.void_session t ~session:3)

let test_single_timer_chain () =
  (* consecutive grants while a timer is already armed must not arm a
     second chain; the live daemon's timer heap would otherwise grow by
     one stale entry per grant *)
  let t, now, timers = stub ~duration:1.0 () in
  ignore (L.acquire t ~session:1 ~req:1);
  ignore (L.acquire t ~session:2 ~req:1);
  ignore (L.granted t);
  Alcotest.(check (list (float 1e-9)))
    "one arm after first grant" [ 1.0 ] !timers;
  now := 0.5;
  ignore (L.release t ~session:1 ~req:1);
  (* session 2 granted within the tenure (deadline 1.5); chain already
     armed, so no second arm *)
  Alcotest.(check (list (float 1e-9))) "still one pending arm" [ 1.0 ] !timers;
  (* the chain fires at the old deadline, finds the live hold and
     re-arms for it *)
  now := 1.0;
  timers := [];
  ignore (L.on_timer t);
  Alcotest.(check (list (float 1e-9)))
    "re-armed for the live hold" [ 1.5 ] !timers;
  Alcotest.(check (option (pair int int)))
    "session 2 survives" (Some (2, 1)) (L.holder t)

let test_release_withdraws_queued_request () =
  let t, _now, _timers = stub () in
  ignore (L.acquire t ~session:1 ~req:1);
  ignore (L.acquire t ~session:2 ~req:1);
  (* session 2 gives up before being served *)
  check_kinds "withdrawal is silent" [] (L.release t ~session:2 ~req:1);
  check_kinds "grant goes to session 1" [ "grant" ] (L.granted t);
  check_kinds "queue empty afterwards" [ "release" ]
    (L.release t ~session:1 ~req:1)

let test_config_validation () =
  let io = { L.now = (fun () -> 0.0); set_timer = (fun ~delay:_ -> ()) } in
  Alcotest.check_raises "zero duration"
    (Invalid_argument "Lease: duration must be positive") (fun () ->
      ignore (L.create { L.duration = 0.0; max_batch = 1 } ~io));
  Alcotest.check_raises "zero batch"
    (Invalid_argument "Lease: max_batch must be >= 1") (fun () ->
      ignore (L.create { L.duration = 1.0; max_batch = 0 } ~io))

let suite =
  [
    Alcotest.test_case "grant/release cycle" `Quick test_grant_release_cycle;
    Alcotest.test_case "expiry frees the shard" `Quick
      test_expiry_frees_the_shard;
    Alcotest.test_case "renewal slides the deadline" `Quick
      test_renewal_slides_the_deadline;
    Alcotest.test_case "renewal after release expires" `Quick
      test_renewal_after_release_expires;
    Alcotest.test_case "batching bounded per tenure" `Quick
      test_batching_bounded_per_tenure;
    Alcotest.test_case "duplicate acquire idempotent" `Quick
      test_duplicate_acquire_is_idempotent;
    Alcotest.test_case "incarnation voids stale hold" `Quick
      test_incarnation_voids_stale_hold;
    Alcotest.test_case "single timer chain" `Quick test_single_timer_chain;
    Alcotest.test_case "release withdraws queued request" `Quick
      test_release_withdraws_queued_request;
    Alcotest.test_case "config validation" `Quick test_config_validation;
  ]
