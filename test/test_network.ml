(* Network model: FIFO channels, delay distributions, crash semantics. *)

module Net = Dmx_sim.Network
module Rng = Dmx_sim.Rng

let make ?(n = 4) delay = Net.create ~n ~delay ~rng:(Rng.create 1) ()

let test_constant_delay () =
  let net = make (Net.Constant 2.0) in
  match Net.delivery_time net ~src:0 ~dst:1 ~now:10.0 with
  | Some t -> Alcotest.(check (float 1e-9)) "10 + 2" 12.0 t
  | None -> Alcotest.fail "expected delivery"

let test_mean_delay () =
  Alcotest.(check (float 1e-9)) "constant" 3.0 (Net.mean_delay (Net.Constant 3.0));
  Alcotest.(check (float 1e-9)) "uniform" 2.0
    (Net.mean_delay (Net.Uniform { lo = 1.0; hi = 3.0 }));
  Alcotest.(check (float 1e-9)) "exp" 1.5
    (Net.mean_delay (Net.Exponential { mean = 1.5 }));
  Alcotest.(check (float 1e-9)) "shifted" 2.5
    (Net.mean_delay (Net.Shifted_exponential { base = 1.0; extra_mean = 1.5 }))

let test_fifo_per_channel () =
  let net = make (Net.Exponential { mean = 1.0 }) in
  let last = ref 0.0 in
  for i = 0 to 999 do
    match Net.delivery_time net ~src:0 ~dst:1 ~now:(float_of_int i *. 0.01) with
    | Some t ->
      Alcotest.(check bool) "non-decreasing" true (t >= !last);
      last := t
    | None -> Alcotest.fail "up sites must deliver"
  done

let test_channels_independent () =
  (* FIFO watermark of channel (0,1) must not constrain (1,0) or (0,2). *)
  let net = make (Net.Constant 5.0) in
  ignore (Net.delivery_time net ~src:0 ~dst:1 ~now:100.0);
  (match Net.delivery_time net ~src:0 ~dst:2 ~now:0.0 with
  | Some t -> Alcotest.(check (float 1e-9)) "fresh channel" 5.0 t
  | None -> Alcotest.fail "delivery expected");
  match Net.delivery_time net ~src:1 ~dst:0 ~now:0.0 with
  | Some t -> Alcotest.(check (float 1e-9)) "reverse direction fresh" 5.0 t
  | None -> Alcotest.fail "delivery expected"

let test_crash_drops () =
  let net = make (Net.Constant 1.0) in
  Net.crash net 2;
  Alcotest.(check bool) "to dead" true
    (Net.delivery_time net ~src:0 ~dst:2 ~now:0.0 = None);
  Alcotest.(check bool) "from dead" true
    (Net.delivery_time net ~src:2 ~dst:0 ~now:0.0 = None);
  Alcotest.(check bool) "bystanders fine" true
    (Net.delivery_time net ~src:0 ~dst:1 ~now:0.0 <> None)

let test_up_sites () =
  let net = make (Net.Constant 1.0) in
  Net.crash net 1;
  Net.crash net 3;
  Alcotest.(check (list int)) "up" [ 0; 2 ] (Net.up_sites net);
  Alcotest.(check bool) "is_up" false (Net.is_up net 1);
  Net.recover net 1;
  Alcotest.(check (list int)) "recovered" [ 0; 1; 2 ] (Net.up_sites net)

let test_uniform_within_bounds () =
  let net = make (Net.Uniform { lo = 0.5; hi = 1.5 }) in
  for _ = 1 to 1_000 do
    match Net.delivery_time net ~src:2 ~dst:3 ~now:1000.0 with
    | Some t ->
      (* monotone watermark can only push later, never earlier *)
      Alcotest.(check bool) "at least lo" true (t >= 1000.5)
    | None -> Alcotest.fail "delivery expected"
  done

let test_out_of_range () =
  let net = make (Net.Constant 1.0) in
  Alcotest.(check bool) "src range" true
    (try
       ignore (Net.delivery_time net ~src:9 ~dst:0 ~now:0.0);
       false
     with Invalid_argument _ -> true)

(* ---- fault injection ---- *)

let fmake ?(n = 4) ?(fault_seed = 7) faults delay =
  Net.create ~faults ~fault_rng:(Rng.create fault_seed) ~n ~delay
    ~rng:(Rng.create 1) ()

let test_recover_resets_watermarks () =
  (* Regression: a rejoined site must not have its first messages delayed
     behind pre-crash FIFO watermarks. *)
  let net = make (Net.Constant 5.0) in
  ignore (Net.delivery_time net ~src:0 ~dst:1 ~now:100.0);
  ignore (Net.delivery_time net ~src:1 ~dst:0 ~now:100.0);
  ignore (Net.delivery_time net ~src:0 ~dst:2 ~now:100.0);
  Net.crash net 1;
  Net.recover net 1;
  (match Net.delivery_time net ~src:0 ~dst:1 ~now:0.0 with
  | Some t -> Alcotest.(check (float 1e-9)) "to rejoined site" 5.0 t
  | None -> Alcotest.fail "delivery expected");
  (match Net.delivery_time net ~src:1 ~dst:0 ~now:0.0 with
  | Some t -> Alcotest.(check (float 1e-9)) "from rejoined site" 5.0 t
  | None -> Alcotest.fail "delivery expected");
  (* a pair not touching the crashed site keeps its watermark *)
  match Net.delivery_time net ~src:0 ~dst:2 ~now:0.0 with
  | Some t -> Alcotest.(check (float 1e-9)) "bystander watermark kept" 105.0 t
  | None -> Alcotest.fail "delivery expected"

let test_partition_blocks_cross_group () =
  let faults =
    {
      Net.no_faults with
      partitions =
        [ { Net.from_t = 50.0; until = 150.0; groups = [ [ 0; 1 ]; [ 2 ] ] } ];
    }
  in
  let net = fmake faults (Net.Constant 2.0) in
  (match Net.transmit net ~src:0 ~dst:2 ~now:60.0 with
  | Net.Lost `Partitioned -> ()
  | _ -> Alcotest.fail "cross-group message must drop");
  (* site 3 is in no listed group: it forms the implicit rest-group with
     nobody else, so it is cut off from everyone *)
  (match Net.transmit net ~src:1 ~dst:3 ~now:60.0 with
  | Net.Lost `Partitioned -> ()
  | _ -> Alcotest.fail "rest-group is isolated");
  (match Net.transmit net ~src:0 ~dst:1 ~now:60.0 with
  | Net.Delivered [ t ] -> Alcotest.(check (float 1e-9)) "same group" 62.0 t
  | _ -> Alcotest.fail "same-group message must deliver");
  (match Net.transmit net ~src:0 ~dst:2 ~now:40.0 with
  | Net.Delivered _ -> ()
  | _ -> Alcotest.fail "before the split");
  (match Net.transmit net ~src:0 ~dst:2 ~now:150.0 with
  | Net.Delivered _ -> ()
  | _ -> Alcotest.fail "after the heal");
  Alcotest.(check (list (pair (float 1e-9) bool)))
    "edges" [ (50.0, false); (150.0, true) ] (Net.partition_edges net)

let test_lost_message_keeps_watermark () =
  (* A dropped message must not advance the FIFO watermark: the channel
     behaves as if it was never sent. *)
  let faults =
    {
      Net.no_faults with
      partitions =
        [ { Net.from_t = 50.0; until = 150.0; groups = [ [ 0 ]; [ 1 ] ] } ];
    }
  in
  let net = fmake ~n:2 faults (Net.Constant 2.0) in
  (match Net.transmit net ~src:0 ~dst:1 ~now:100.0 with
  | Net.Lost `Partitioned -> ()
  | _ -> Alcotest.fail "expected partition drop");
  match Net.delivery_time net ~src:0 ~dst:1 ~now:0.0 with
  | Some t -> Alcotest.(check (float 1e-9)) "watermark untouched" 2.0 t
  | None -> Alcotest.fail "delivery expected"

let test_loss_rate () =
  let faults = { Net.no_faults with loss = 0.3 } in
  let net = fmake faults (Net.Constant 1.0) in
  let lost = ref 0 in
  let sent = 4_000 in
  for i = 1 to sent do
    match Net.transmit net ~src:0 ~dst:1 ~now:(float_of_int i) with
    | Net.Lost `Faulty -> incr lost
    | Net.Delivered _ -> ()
    | Net.Lost _ -> Alcotest.fail "only injected loss expected"
  done;
  let rate = float_of_int !lost /. float_of_int sent in
  Alcotest.(check bool)
    (Printf.sprintf "loss rate %.3f near 0.3" rate)
    true
    (rate > 0.25 && rate < 0.35)

let test_duplication () =
  let faults = { Net.no_faults with duplication = 0.5 } in
  let net = fmake faults (Net.Constant 1.0) in
  let dups = ref 0 in
  let sent = 2_000 in
  for i = 1 to sent do
    match Net.transmit net ~src:0 ~dst:1 ~now:(float_of_int i) with
    | Net.Delivered [ _ ] -> ()
    | Net.Delivered [ a; b ] ->
      incr dups;
      Alcotest.(check bool) "copies ordered" true (b >= a)
    | _ -> Alcotest.fail "expected one or two copies"
  done;
  let rate = float_of_int !dups /. float_of_int sent in
  Alcotest.(check bool)
    (Printf.sprintf "dup rate %.3f near 0.5" rate)
    true
    (rate > 0.45 && rate < 0.55)

let test_delay_spike () =
  let faults = { Net.no_faults with delay_spikes = [ (10.0, 20.0, 3.0) ] } in
  let net = fmake faults (Net.Constant 2.0) in
  (match Net.transmit net ~src:0 ~dst:1 ~now:0.0 with
  | Net.Delivered [ t ] -> Alcotest.(check (float 1e-9)) "outside" 2.0 t
  | _ -> Alcotest.fail "delivery expected");
  match Net.transmit net ~src:0 ~dst:1 ~now:15.0 with
  | Net.Delivered [ t ] -> Alcotest.(check (float 1e-9)) "tripled" 21.0 t
  | _ -> Alcotest.fail "delivery expected"

let test_fault_determinism () =
  let faults =
    { Net.no_faults with loss = 0.2; duplication = 0.1 }
  in
  let play () =
    let net = fmake faults (Net.Uniform { lo = 0.5; hi = 1.5 }) in
    List.init 500 (fun i ->
        Net.transmit net ~src:(i mod 3) ~dst:3 ~now:(float_of_int i))
  in
  Alcotest.(check bool) "same seeds, same faults" true (play () = play ())

let test_fault_validation () =
  let bad faults =
    try
      ignore (fmake faults (Net.Constant 1.0));
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "loss = 1" true
    (bad { Net.no_faults with loss = 1.0 });
  Alcotest.(check bool) "negative dup" true
    (bad { Net.no_faults with duplication = -0.1 });
  Alcotest.(check bool) "overlapping groups" true
    (bad
       {
         Net.no_faults with
         partitions =
           [ { Net.from_t = 0.0; until = 1.0; groups = [ [ 0; 1 ]; [ 1 ] ] } ];
       });
  Alcotest.(check bool) "empty window" true
    (bad
       {
         Net.no_faults with
         partitions = [ { Net.from_t = 5.0; until = 5.0; groups = [ [ 0 ] ] } ];
       });
  Alcotest.(check bool) "zero spike factor" true
    (bad { Net.no_faults with delay_spikes = [ (0.0, 1.0, 0.0) ] })

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("constant delay", test_constant_delay);
      ("mean delay per model", test_mean_delay);
      ("FIFO per channel", test_fifo_per_channel);
      ("channels independent", test_channels_independent);
      ("crash drops both directions", test_crash_drops);
      ("up_sites / recover", test_up_sites);
      ("uniform respects bounds", test_uniform_within_bounds);
      ("site range checked", test_out_of_range);
      ("recover resets watermarks", test_recover_resets_watermarks);
      ("partition blocks cross-group", test_partition_blocks_cross_group);
      ("lost message keeps watermark", test_lost_message_keeps_watermark);
      ("loss rate near nominal", test_loss_rate);
      ("duplication delivers ordered copies", test_duplication);
      ("delay spike multiplies", test_delay_spike);
      ("fault injection deterministic", test_fault_determinism);
      ("fault plans validated", test_fault_validation);
    ]
