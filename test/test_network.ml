(* Network model: FIFO channels, delay distributions, crash semantics. *)

module Net = Dmx_sim.Network
module Rng = Dmx_sim.Rng

let make ?(n = 4) delay = Net.create ~n ~delay ~rng:(Rng.create 1)

let test_constant_delay () =
  let net = make (Net.Constant 2.0) in
  match Net.delivery_time net ~src:0 ~dst:1 ~now:10.0 with
  | Some t -> Alcotest.(check (float 1e-9)) "10 + 2" 12.0 t
  | None -> Alcotest.fail "expected delivery"

let test_mean_delay () =
  Alcotest.(check (float 1e-9)) "constant" 3.0 (Net.mean_delay (Net.Constant 3.0));
  Alcotest.(check (float 1e-9)) "uniform" 2.0
    (Net.mean_delay (Net.Uniform { lo = 1.0; hi = 3.0 }));
  Alcotest.(check (float 1e-9)) "exp" 1.5
    (Net.mean_delay (Net.Exponential { mean = 1.5 }));
  Alcotest.(check (float 1e-9)) "shifted" 2.5
    (Net.mean_delay (Net.Shifted_exponential { base = 1.0; extra_mean = 1.5 }))

let test_fifo_per_channel () =
  let net = make (Net.Exponential { mean = 1.0 }) in
  let last = ref 0.0 in
  for i = 0 to 999 do
    match Net.delivery_time net ~src:0 ~dst:1 ~now:(float_of_int i *. 0.01) with
    | Some t ->
      Alcotest.(check bool) "non-decreasing" true (t >= !last);
      last := t
    | None -> Alcotest.fail "up sites must deliver"
  done

let test_channels_independent () =
  (* FIFO watermark of channel (0,1) must not constrain (1,0) or (0,2). *)
  let net = make (Net.Constant 5.0) in
  ignore (Net.delivery_time net ~src:0 ~dst:1 ~now:100.0);
  (match Net.delivery_time net ~src:0 ~dst:2 ~now:0.0 with
  | Some t -> Alcotest.(check (float 1e-9)) "fresh channel" 5.0 t
  | None -> Alcotest.fail "delivery expected");
  match Net.delivery_time net ~src:1 ~dst:0 ~now:0.0 with
  | Some t -> Alcotest.(check (float 1e-9)) "reverse direction fresh" 5.0 t
  | None -> Alcotest.fail "delivery expected"

let test_crash_drops () =
  let net = make (Net.Constant 1.0) in
  Net.crash net 2;
  Alcotest.(check bool) "to dead" true
    (Net.delivery_time net ~src:0 ~dst:2 ~now:0.0 = None);
  Alcotest.(check bool) "from dead" true
    (Net.delivery_time net ~src:2 ~dst:0 ~now:0.0 = None);
  Alcotest.(check bool) "bystanders fine" true
    (Net.delivery_time net ~src:0 ~dst:1 ~now:0.0 <> None)

let test_up_sites () =
  let net = make (Net.Constant 1.0) in
  Net.crash net 1;
  Net.crash net 3;
  Alcotest.(check (list int)) "up" [ 0; 2 ] (Net.up_sites net);
  Alcotest.(check bool) "is_up" false (Net.is_up net 1);
  Net.recover net 1;
  Alcotest.(check (list int)) "recovered" [ 0; 1; 2 ] (Net.up_sites net)

let test_uniform_within_bounds () =
  let net = make (Net.Uniform { lo = 0.5; hi = 1.5 }) in
  for _ = 1 to 1_000 do
    match Net.delivery_time net ~src:2 ~dst:3 ~now:1000.0 with
    | Some t ->
      (* monotone watermark can only push later, never earlier *)
      Alcotest.(check bool) "at least lo" true (t >= 1000.5)
    | None -> Alcotest.fail "delivery expected"
  done

let test_out_of_range () =
  let net = make (Net.Constant 1.0) in
  Alcotest.(check bool) "src range" true
    (try
       ignore (Net.delivery_time net ~src:9 ~dst:0 ~now:0.0);
       false
     with Invalid_argument _ -> true)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("constant delay", test_constant_delay);
      ("mean delay per model", test_mean_delay);
      ("FIFO per channel", test_fifo_per_channel);
      ("channels independent", test_channels_independent);
      ("crash drops both directions", test_crash_drops);
      ("up_sites / recover", test_up_sites);
      ("uniform respects bounds", test_uniform_within_bounds);
      ("site range checked", test_out_of_range);
    ]
