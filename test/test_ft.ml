(* Fault tolerance (paper Section 6): crash injection against the FT
   variant with reconstruction-capable quorums.

   Model requirement (see Ft_delay_optimal doc): detection latency must
   exceed the maximum in-flight message delay, so all tests use bounded
   delay models with an oracle detection latency above the bound. *)

module E = Dmx_sim.Engine
module FT = Dmx_core.Ft_delay_optimal
module DO = Dmx_core.Delay_optimal
module B = Dmx_quorum.Builder
module W = Dmx_sim.Workload
module Eng = E.Make (FT)

let run ?inspect ?(n = 7) ?(kind = B.Tree) ?(crashes = []) ?(recoveries = [])
    ?(execs = 120) ?(contenders = None) ?(broadcast = false) ?(seed = 42) () =
  let cfg =
    {
      (E.default ~n) with
      seed;
      max_executions = execs;
      warmup = 0;
      cs_duration = 1.0;
      delay = Dmx_sim.Network.Uniform { lo = 0.5; hi = 1.5 };
      detector = E.Oracle 3.0;
      crashes;
      recoveries;
      workload =
        (match contenders with
        | Some c -> W.Saturated { contenders = c }
        | None -> W.Saturated { contenders = n });
      max_time = 100_000.0;
    }
  in
  Eng.run ?inspect cfg (FT.config_of_kind kind ~n ~broadcast)

let test_no_crash_behaves_like_base () =
  let r = run ~crashes:[] () in
  Alcotest.(check int) "safe" 0 r.E.violations;
  Alcotest.(check bool) "live" false r.E.deadlocked;
  Alcotest.(check int) "quota" 120 r.E.executions

let test_survives_leaf_crash () =
  (* a tree leaf dies mid-run; the other sites keep making progress *)
  let r = run ~crashes:[ (20.0, 6) ] () in
  Alcotest.(check int) "safe" 0 r.E.violations;
  Alcotest.(check bool) "live" false r.E.deadlocked;
  Alcotest.(check int) "quota completed despite crash" 120 r.E.executions

let test_survives_root_crash () =
  (* the tree root is in EVERY failure-free quorum: all sites must rebuild
     via the substitution paths *)
  let r = run ~crashes:[ (20.0, 0) ] () in
  Alcotest.(check int) "safe" 0 r.E.violations;
  Alcotest.(check bool) "live" false r.E.deadlocked;
  Alcotest.(check int) "quota" 120 r.E.executions

let test_survives_multiple_crashes () =
  let r = run ~n:15 ~crashes:[ (15.0, 0); (30.0, 3); (45.0, 12) ] ~execs:150 () in
  Alcotest.(check int) "safe" 0 r.E.violations;
  Alcotest.(check bool) "live" false r.E.deadlocked;
  Alcotest.(check int) "quota" 150 r.E.executions

let test_majority_quorum_crashes () =
  (* majority coterie tolerates any minority: kill 3 of 9 *)
  let r =
    run ~n:9 ~kind:B.Majority
      ~crashes:[ (10.0, 1); (25.0, 4); (40.0, 7) ]
      ~execs:150 ()
  in
  Alcotest.(check int) "safe" 0 r.E.violations;
  Alcotest.(check int) "quota" 150 r.E.executions

let test_grid_set_subgroup_crash () =
  let r = run ~n:16 ~kind:(B.Grid_set 4) ~crashes:[ (15.0, 5) ] ~execs:120 () in
  Alcotest.(check int) "safe" 0 r.E.violations;
  Alcotest.(check int) "quota" 120 r.E.executions

let test_fpp_crash_generic_rebuild () =
  (* FPP has no failure-aware construction: the generic fallback scans the
     coterie for a fully-live line *)
  let r = run ~n:7 ~kind:B.Fpp ~crashes:[ (15.0, 3) ] ~execs:120 () in
  Alcotest.(check int) "safe" 0 r.E.violations;
  Alcotest.(check int) "quota" 120 r.E.executions

let test_hqc_crash () =
  let r = run ~n:9 ~kind:B.Hqc ~crashes:[ (15.0, 4) ] ~execs:120 () in
  Alcotest.(check int) "safe" 0 r.E.violations;
  Alcotest.(check int) "quota" 120 r.E.executions

let test_rst_subgroup_crash () =
  (* RST tolerates a subgroup minority with no recovery at all *)
  let r = run ~n:16 ~kind:(B.Rst 4) ~crashes:[ (15.0, 5) ] ~execs:120 () in
  Alcotest.(check int) "safe" 0 r.E.violations;
  Alcotest.(check int) "quota" 120 r.E.executions

let test_crash_of_lock_holder_mid_wait () =
  (* crash a site while others wait on permissions it holds: Case 3 of the
     Section 6 arbiter cleanup (reclaim and re-grant) *)
  List.iter
    (fun seed ->
      let r = run ~seed ~crashes:[ (7.3, 2) ] ~execs:100 () in
      Alcotest.(check int) "safe" 0 r.E.violations;
      Alcotest.(check int) "quota" 100 r.E.executions)
    [ 1; 2; 3; 4; 5 ]

let test_dead_sites_tracked () =
  let tracked = ref [] in
  let _ =
    run
      ~inspect:(fun site st ->
        if site = 1 then tracked := FT.Internal.known_dead st)
      ~crashes:[ (10.0, 5) ] ~execs:60 ()
  in
  Alcotest.(check (list int)) "site 1 knows 5 died" [ 5 ] !tracked

let test_broadcast_failure_notes () =
  (* with broadcast on, failure(i) messages appear on the wire *)
  let r = run ~broadcast:true ~crashes:[ (10.0, 5) ] ~execs:60 () in
  Alcotest.(check int) "safe" 0 r.E.violations;
  Alcotest.(check bool) "failure notes broadcast" true
    (List.mem_assoc "failure" r.E.messages_by_kind)

let test_quorum_rebuilt_avoids_dead () =
  let quorums = ref [] in
  let _ =
    run
      ~inspect:(fun site st ->
        quorums :=
          (site, DO.Internal.quorum (FT.Internal.base_state st)) :: !quorums)
      ~crashes:[ (10.0, 0) ] ~execs:100 ()
  in
  List.iter
    (fun (site, q) ->
      if site <> 0 then
        Alcotest.(check bool)
          (Printf.sprintf "site %d quorum avoids dead root" site)
          false (List.mem 0 q))
    !quorums

let test_too_many_crashes_degrade_gracefully () =
  (* kill both children of the root plus the root: no tree quorum left.
     Requests cannot complete but nothing crashes or violates safety. *)
  let r =
    run
      ~crashes:[ (5.0, 0); (5.5, 1); (6.0, 2); (6.5, 3); (7.0, 4); (7.5, 5) ]
      ~execs:10_000 ()
  in
  Alcotest.(check int) "safe" 0 r.E.violations;
  Alcotest.(check bool) "did not finish quota" true (r.E.executions < 10_000)

let test_idle_site_refreshes_quorum_lazily () =
  (* a site idle during the crash must rebuild when it next requests:
     only site 6 requests after the crash of site 0 *)
  let n = 7 in
  let cfg =
    {
      (E.default ~n) with
      max_executions = 2;
      warmup = 0;
      delay = Dmx_sim.Network.Uniform { lo = 0.5; hi = 1.5 };
      detector = E.Oracle 3.0;
      crashes = [ (1.0, 0) ];
      workload = W.Burst { requesters = [ 6 ]; at = 30.0 };
      max_time = 1_000.0;
    }
  in
  let r = Eng.run cfg (FT.config_of_kind B.Tree ~n ~broadcast:false) in
  Alcotest.(check int) "safe" 0 r.E.violations;
  Alcotest.(check int) "late request served" 1 r.E.executions

let test_recovery_rejoins () =
  (* crash a tree leaf, recover it later: the system stays live throughout
     and survivors forget the death *)
  let dead_views = ref [] in
  let r =
    run
      ~inspect:(fun site st ->
        if site = 1 then dead_views := FT.Internal.known_dead st)
      ~crashes:[ (15.0, 6) ]
      ~recoveries:[ (60.0, 6) ]
      ~execs:200 ()
  in
  Alcotest.(check int) "safe" 0 r.E.violations;
  Alcotest.(check int) "quota" 200 r.E.executions;
  Alcotest.(check (list int)) "death forgotten after rejoin" [] !dead_views

let test_recovered_site_serves_again () =
  (* after rejoining, the recovered site completes its own CS requests *)
  let r =
    run ~crashes:[ (10.0, 6) ] ~recoveries:[ (40.0, 6) ] ~execs:250 ()
  in
  Alcotest.(check int) "safe" 0 r.E.violations;
  Alcotest.(check int) "quota" 250 r.E.executions;
  Alcotest.(check bool)
    (Printf.sprintf "site 6 served %d CS after rejoin"
       r.E.per_site_executions.(6))
    true
    (r.E.per_site_executions.(6) > 0)

let test_root_crash_and_recovery () =
  (* the hardest rejoin: the root dies (everyone rebuilds around it) and
     later returns with fresh state *)
  List.iter
    (fun seed ->
      let r =
        run ~seed ~crashes:[ (12.0, 0) ] ~recoveries:[ (50.0, 0) ] ~execs:250 ()
      in
      Alcotest.(check int) "safe" 0 r.E.violations;
      Alcotest.(check int) "quota" 250 r.E.executions;
      Alcotest.(check bool) "root active again" true
        (r.E.per_site_executions.(0) > 0))
    [ 1; 2; 3 ]

let test_repeated_crash_recover_cycles () =
  let r =
    run
      ~crashes:[ (10.0, 5); (70.0, 5) ]
      ~recoveries:[ (40.0, 5); (100.0, 5) ]
      ~execs:300 ()
  in
  Alcotest.(check int) "safe" 0 r.E.violations;
  Alcotest.(check int) "quota" 300 r.E.executions

let qcheck_random_crash_schedules =
  let arb =
    QCheck.make
      ~print:(fun (seed, t1, victim) ->
        Printf.sprintf "seed=%d t=%.1f victim=%d" seed t1 victim)
      QCheck.Gen.(
        let* seed = 0 -- 1000 in
        let* t = 5 -- 60 in
        let* victim = 0 -- 6 in
        return (seed, float_of_int t, victim))
  in
  QCheck.Test.make ~name:"random single crash: safe, live, quota met" ~count:40
    arb
    (fun (seed, t, victim) ->
      let r = run ~seed ~crashes:[ (t, victim) ] ~execs:80 () in
      r.E.violations = 0 && r.E.executions = 80)

let qcheck_random_crash_recover_schedules =
  let arb =
    QCheck.make
      ~print:(fun (seed, t, gap, victim) ->
        Printf.sprintf "seed=%d crash=%.1f rejoin=+%.1f victim=%d" seed t gap
          victim)
      QCheck.Gen.(
        let* seed = 0 -- 1000 in
        let* t = 5 -- 50 in
        let* gap = 10 -- 60 in
        let* victim = 0 -- 6 in
        return (seed, float_of_int t, float_of_int gap, victim))
  in
  QCheck.Test.make
    ~name:"random crash + rejoin: safe, live, quota met" ~count:30 arb
    (fun (seed, t, gap, victim) ->
      let r =
        run ~seed
          ~crashes:[ (t, victim) ]
          ~recoveries:[ (t +. gap, victim) ]
          ~execs:100 ()
      in
      r.E.violations = 0 && r.E.executions = 100)

(* ---- unreliable network: heartbeat detector + reliability layer ---- *)

let run_hb ?inspect ?(n = 7) ?(kind = B.Tree) ?(crashes = [])
    ?(recoveries = []) ?(faults = Dmx_sim.Network.no_faults) ?(execs = 100)
    ?(seed = 42) () =
  let cfg =
    {
      (E.default ~n) with
      seed;
      max_executions = execs;
      warmup = 0;
      cs_duration = 0.5;
      delay = Dmx_sim.Network.Uniform { lo = 0.5; hi = 1.5 };
      detector = E.Heartbeat { Dmx_sim.Detector.period = 2.0; timeout = 10.0 };
      faults;
      crashes;
      recoveries;
      max_time = 100_000.0;
    }
  in
  Eng.run ?inspect cfg
    (FT.config_of_kind ~reliability:Dmx_core.Reliable.default
       ~trust_detector:false kind ~n ~broadcast:false)

let test_heartbeat_loss_completes () =
  let faults = { Dmx_sim.Network.no_faults with loss = 0.05 } in
  let r = run_hb ~faults () in
  Alcotest.(check int) "safe" 0 r.E.violations;
  Alcotest.(check bool) "live" false r.E.deadlocked;
  Alcotest.(check int) "quota despite 5% loss" 100 r.E.executions;
  Alcotest.(check bool) "loss forced retransmissions" true
    (r.E.retransmissions > 0);
  Alcotest.(check bool) "acks flowed" true (r.E.acks > 0);
  Alcotest.(check bool) "heartbeats flowed" true (r.E.detector_messages > 0)

let test_reliability_masks_heavy_loss () =
  let faults = { Dmx_sim.Network.no_faults with loss = 0.15; duplication = 0.05 } in
  let r = run_hb ~execs:60 ~faults () in
  Alcotest.(check int) "safe" 0 r.E.violations;
  Alcotest.(check int) "quota despite 15% loss + dup" 60 r.E.executions

let test_partition_parks_and_heals () =
  (* split the tree in half for a while: minority-side requests park
     (reported as unavailability), and all complete after the heal *)
  let faults =
    {
      Dmx_sim.Network.no_faults with
      partitions =
        [
          {
            Dmx_sim.Network.from_t = 20.0;
            until = 60.0;
            groups = [ [ 0; 1; 3 ]; [ 2; 4; 5; 6 ] ];
          };
        ];
    }
  in
  let r =
    (* inspect fires at run end, after the heal: all suspicions revoked *)
    run_hb
      ~inspect:(fun _site st ->
        Alcotest.(check (list int)) "no standing suspects after heal" []
          (FT.Internal.suspects st))
      ~faults ~execs:100 ()
  in
  Alcotest.(check int) "safe" 0 r.E.violations;
  Alcotest.(check bool) "live after heal" false r.E.deadlocked;
  Alcotest.(check int) "quota" 100 r.E.executions;
  Alcotest.(check bool) "all suspicions were false" true
    (r.E.false_suspicions > 0 && r.E.false_suspicions = r.E.suspicions);
  Alcotest.(check bool) "unavailability windows reported" true
    (Dmx_sim.Stats.Summary.count r.E.unavailability > 0)

let test_heartbeat_crash_and_rejoin () =
  (* under the untrusted detector, arbiter cleanup waits for the restart
     evidence carried by the rejoined site's new incarnation *)
  let faults = { Dmx_sim.Network.no_faults with loss = 0.05 } in
  let r =
    run_hb ~faults
      ~crashes:[ (20.0, 3); (30.0, 0) ]
      ~recoveries:[ (60.0, 3); (75.0, 0) ]
      ~execs:100 ()
  in
  Alcotest.(check int) "safe" 0 r.E.violations;
  Alcotest.(check bool) "live" false r.E.deadlocked;
  Alcotest.(check int) "quota" 100 r.E.executions

let test_faulty_run_deterministic () =
  let go () =
    let faults =
      { Dmx_sim.Network.no_faults with loss = 0.08; duplication = 0.03 }
    in
    let r = run_hb ~faults ~crashes:[ (25.0, 2) ] ~recoveries:[ (55.0, 2) ] () in
    ( r.E.executions,
      r.E.total_messages,
      r.E.retransmissions,
      r.E.suspicions,
      r.E.sim_time )
  in
  let a = go () and b = go () in
  Alcotest.(check bool)
    (Printf.sprintf "identical replay (%d msgs)"
       (let _, m, _, _, _ = a in
        m))
    true (a = b)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("no crash: behaves like base", test_no_crash_behaves_like_base);
      ("survives leaf crash", test_survives_leaf_crash);
      ("survives root crash", test_survives_root_crash);
      ("survives multiple crashes", test_survives_multiple_crashes);
      ("majority quorums under crashes", test_majority_quorum_crashes);
      ("grid-set subgroup crash", test_grid_set_subgroup_crash);
      ("fpp crash via generic rebuild", test_fpp_crash_generic_rebuild);
      ("hqc crash", test_hqc_crash);
      ("rst subgroup crash", test_rst_subgroup_crash);
      ("lock-holder crash (Case 3)", test_crash_of_lock_holder_mid_wait);
      ("dead sites tracked", test_dead_sites_tracked);
      ("failure(i) broadcast", test_broadcast_failure_notes);
      ("rebuilt quorums avoid the dead", test_quorum_rebuilt_avoids_dead);
      ("graceful degradation past tolerance", test_too_many_crashes_degrade_gracefully);
      ("idle site rebuilds lazily", test_idle_site_refreshes_quorum_lazily);
      ("recovery: rejoin forgets the death", test_recovery_rejoins);
      ("recovery: rejoined site serves again", test_recovered_site_serves_again);
      ("recovery: root crash and return", test_root_crash_and_recovery);
      ("recovery: repeated cycles", test_repeated_crash_recover_cycles);
      ("heartbeat: 5% loss completes", test_heartbeat_loss_completes);
      ("heartbeat: heavy loss masked", test_reliability_masks_heavy_loss);
      ("heartbeat: partition parks and heals", test_partition_parks_and_heals);
      ("heartbeat: crash and rejoin", test_heartbeat_crash_and_rejoin);
      ("heartbeat: faulty run deterministic", test_faulty_run_deterministic);
    ]
  @ [
      QCheck_alcotest.to_alcotest qcheck_random_crash_schedules;
      QCheck_alcotest.to_alcotest qcheck_random_crash_recover_schedules;
    ]
