(* Shared helpers: run any protocol under a scenario and assert the two
   properties every mutual exclusion algorithm must have — safety (the
   engine observed no concurrent CS) and liveness (the run completed its
   execution quota without deadlocking). *)

module E = Dmx_sim.Engine
module DO = Dmx_core.Delay_optimal
module FT = Dmx_core.Ft_delay_optimal
module MK = Dmx_baselines.Maekawa_me
module LA = Dmx_baselines.Lamport
module RA = Dmx_baselines.Ricart_agrawala
module SD = Dmx_baselines.Singhal_dynamic
module SK = Dmx_baselines.Suzuki_kasami
module RY = Dmx_baselines.Raymond

type runner = { rname : string; run : E.config -> E.report }

let delay_optimal ~n =
  let req_sets = Dmx_quorum.Builder.req_sets Grid ~n in
  {
    rname = "delay-optimal";
    run =
      (fun cfg ->
        let module M = E.Make (DO) in
        M.run cfg (DO.config req_sets));
  }

let delay_optimal_with kind ~n =
  let req_sets = Dmx_quorum.Builder.req_sets kind ~n in
  {
    rname = "delay-optimal/" ^ Dmx_quorum.Builder.kind_name kind;
    run =
      (fun cfg ->
        let module M = E.Make (DO) in
        M.run cfg (DO.config req_sets));
  }

let maekawa ~n =
  let req_sets = Dmx_quorum.Builder.req_sets Grid ~n in
  {
    rname = "maekawa";
    run =
      (fun cfg ->
        let module M = E.Make (MK) in
        M.run cfg { MK.req_sets });
  }

let lamport ~n =
  ignore n;
  {
    rname = "lamport";
    run =
      (fun cfg ->
        let module M = E.Make (LA) in
        M.run cfg ());
  }

let ricart_agrawala ~n =
  ignore n;
  {
    rname = "ricart-agrawala";
    run =
      (fun cfg ->
        let module M = E.Make (RA) in
        M.run cfg ());
  }

let singhal ~n =
  ignore n;
  {
    rname = "singhal-dynamic";
    run =
      (fun cfg ->
        let module M = E.Make (SD) in
        M.run cfg ());
  }

let suzuki_kasami ~n =
  ignore n;
  {
    rname = "suzuki-kasami";
    run =
      (fun cfg ->
        let module M = E.Make (SK) in
        M.run cfg ());
  }

let singhal_heuristic ~n =
  ignore n;
  {
    rname = "singhal-heuristic";
    run =
      (fun cfg ->
        let module M = E.Make (Dmx_baselines.Singhal_heuristic) in
        M.run cfg ());
  }

let raymond ~n =
  {
    rname = "raymond";
    run =
      (fun cfg ->
        let module M = E.Make (RY) in
        M.run cfg (RY.binary_tree ~n));
  }

let all_runners ~n =
  [
    delay_optimal ~n;
    maekawa ~n;
    lamport ~n;
    ricart_agrawala ~n;
    singhal ~n;
    suzuki_kasami ~n;
    singhal_heuristic ~n;
    raymond ~n;
  ]

(* Assert safety and liveness of a finished run. *)
let assert_clean ?(liveness = true) label (r : E.report) =
  Alcotest.(check int) (label ^ ": no mutual exclusion violation") 0 r.E.violations;
  if liveness then begin
    Alcotest.(check bool) (label ^ ": no deadlock") false r.E.deadlocked;
    Alcotest.(check bool)
      (Printf.sprintf "%s: completed quota (got %d)" label r.E.executions)
      true
      (r.E.executions > 0)
  end

let run_clean ?liveness runner cfg =
  let r = runner.run cfg in
  assert_clean ?liveness
    (Printf.sprintf "%s n=%d seed=%d" runner.rname cfg.E.n cfg.E.seed)
    r;
  r

(* A standard heavy-load scenario in units of T. *)
let heavy ?(seed = 42) ?(execs = 150) ?(delay = Dmx_sim.Network.Constant 1.0) n =
  {
    (E.default ~n) with
    seed;
    delay;
    max_executions = execs;
    warmup = 20;
    cs_duration = 1.0;
  }

(* Light load: arrivals so rare that contention is negligible. *)
let light ?(seed = 42) ?(execs = 60) n =
  {
    (E.default ~n) with
    seed;
    max_executions = execs;
    warmup = 5;
    cs_duration = 1.0;
    workload = Dmx_sim.Workload.Poisson { rate_per_site = 0.0002 };
    max_time = 1.0e8;
  }
