(* Integration tests for the networked runtime: real node processes over
   localhost TCP, supervised by Dmx_net.Cluster, with the merged live
   trace checked by the same oracle the simulator uses.

   The default suite keeps to a quick 3-node run so `dune runtest` stays
   fast and robust. The full acceptance scenario — 5 sites under
   ft-delay-optimal, >= 20 CS entries per site, one kill plus restart
   mid-run — is gated behind DMX_CLUSTER_FULL=1 and run by the dedicated
   CI job, which uploads the merged trace as an artifact on failure
   (written to DMX_CLUSTER_TRACE_DIR). *)

module Cluster = Dmx_net.Cluster
module Oracle = Dmx_sim.Oracle
module E = Dmx_sim.Engine

let full_enabled = Sys.getenv_opt "DMX_CLUSTER_FULL" = Some "1"

let dump_trace_on_failure name entries =
  match Sys.getenv_opt "DMX_CLUSTER_TRACE_DIR" with
  | None -> ()
  | Some dir ->
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (EEXIST, _, _) -> ());
    let path = Filename.concat dir (name ^ ".trace") in
    let oc = open_out path in
    let ppf = Format.formatter_of_out_channel oc in
    List.iter
      (fun e -> Format.fprintf ppf "%a@." Dmx_sim.Trace.pp_entry e)
      entries;
    Format.pp_print_flush ppf ();
    close_out oc;
    Printf.eprintf "merged trace written to %s\n%!" path

let check_outcome name ~min_execs (o : Cluster.outcome) =
  let r = o.Cluster.report in
  let ok =
    r.E.violations = 0
    && Oracle.ok o.Cluster.verdict
    && r.E.executions >= min_execs
  in
  if not ok then begin
    dump_trace_on_failure name o.Cluster.entries;
    Format.eprintf "%a@." Cluster.pp_outcome o
  end;
  Alcotest.(check int) "mutual exclusion violations" 0 r.E.violations;
  Alcotest.(check bool) "oracle accepts the merged trace" true
    (Oracle.ok o.Cluster.verdict);
  Alcotest.(check bool)
    (Printf.sprintf "executions >= %d (got %d)" min_execs r.E.executions)
    true
    (r.E.executions >= min_execs)

let test_small_cluster () =
  let cfg =
    {
      (Cluster.default ~n:3) with
      Cluster.protocol = "delay-optimal";
      rounds = 5;
      timeout = 30.0;
    }
  in
  match Cluster.run cfg with
  | Error e -> Alcotest.fail e
  | Ok o -> check_outcome "small-cluster" ~min_execs:15 o

let test_full_ft_cluster () =
  if not full_enabled then
    Alcotest.skip ()
  else
    let cfg =
      {
        (Cluster.default ~n:5) with
        Cluster.protocol = "ft-delay-optimal";
        rounds = 20;
        kills = [ (2.0, 1) ];
        restarts = [ (4.0, 1) ];
        timeout = 120.0;
      }
    in
    match Cluster.run cfg with
    | Error e -> Alcotest.fail e
    | Ok o ->
      (* 4 surviving sites x 20 rounds, plus whatever the killed site's two
         lives completed: >= 20 per surviving site means >= 100 total with
         the restarted site's second life included *)
      check_outcome "full-ft-cluster" ~min_execs:100 o

let test_small_udp_cluster () =
  let cfg =
    {
      (Cluster.default ~n:3) with
      Cluster.protocol = "ft-delay-optimal";
      transport = "udp";
      rounds = 5;
      timeout = 30.0;
    }
  in
  match Cluster.run cfg with
  | Error e -> Alcotest.fail e
  | Ok o -> check_outcome "small-udp-cluster" ~min_execs:15 o

(* the acceptance scenario from the chaos harness: genuine datagram loss,
   duplication and a kill+restart, with the unmodified oracle on the
   merged trace and a nonzero live retransmission count *)
let test_chaos_udp_cluster () =
  if not full_enabled then
    Alcotest.skip ()
  else
    let cfg =
      {
        (Cluster.default ~n:5) with
        Cluster.protocol = "ft-delay-optimal";
        transport = "udp";
        chaos =
          {
            Dmx_net.Chaos.no_faults with
            Dmx_net.Chaos.loss = 0.2;
            duplication = 0.05;
          };
        rounds = 10;
        seed = 7;
        kills = [ (2.0, 1) ];
        restarts = [ (4.0, 1) ];
        timeout = 180.0;
      }
    in
    match Cluster.run cfg with
    | Error e -> Alcotest.fail e
    | Ok o ->
      check_outcome "chaos-udp-cluster" ~min_execs:40 o;
      let totals = Cluster.live_totals o in
      let get k = match List.assoc_opt k totals with Some v -> v | None -> 0 in
      Alcotest.(check bool)
        (Printf.sprintf "chaos really dropped frames (lost %d)"
           (get "chaos.lost"))
        true
        (get "chaos.lost" > 0);
      Alcotest.(check bool)
        (Printf.sprintf "reliability layer really retransmitted (retx %d)"
           (get "reliable.retransmits"))
        true
        (get "reliable.retransmits" > 0)

(* a node that cannot bind its port must fail the run quickly, by name —
   not wedge the supervisor until the global timeout *)
let test_bind_failure_names_the_node () =
  (* occupy a port, then force the cluster to assign it to site 1 *)
  let blocker = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close blocker)
    (fun () ->
      Unix.bind blocker (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      Unix.listen blocker 1;
      let taken =
        match Unix.getsockname blocker with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> assert false
      in
      let free () =
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
        let p =
          match Unix.getsockname fd with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> assert false
        in
        Unix.close fd;
        p
      in
      let ports = [ free (); taken; free (); free () ] in
      let cfg =
        {
          (Cluster.default ~n:3) with
          Cluster.protocol = "delay-optimal";
          rounds = 2;
          ports = Some ports;
          hello_timeout = 5.0;
          timeout = 30.0;
        }
      in
      let t0 = Unix.gettimeofday () in
      match Cluster.run cfg with
      | Ok _ -> Alcotest.fail "cluster came up on an occupied port"
      | Error msg ->
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
          at 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "error names node 1: %S" msg)
          true
          (contains msg "node 1" || contains msg "node(s) 1");
        Alcotest.(check bool) "failed fast, not at the global timeout" true
          (Unix.gettimeofday () -. t0 < cfg.Cluster.timeout))

let test_bad_configs () =
  let bad cfg = match Cluster.run cfg with Ok _ -> false | Error _ -> true in
  Alcotest.(check bool) "n too small" true
    (bad { (Cluster.default ~n:1) with Cluster.timeout = 5.0 });
  Alcotest.(check bool) "restart without kill" true
    (bad
       {
         (Cluster.default ~n:3) with
         Cluster.restarts = [ (1.0, 0) ];
         timeout = 5.0;
       });
  Alcotest.(check bool) "kill site out of range" true
    (bad
       {
         (Cluster.default ~n:3) with
         Cluster.kills = [ (1.0, 7) ];
         timeout = 5.0;
       });
  Alcotest.(check bool) "unknown protocol is rejected" true
    (bad
       {
         (Cluster.default ~n:3) with
         Cluster.protocol = "nope";
         timeout = 10.0;
       })

let suite =
  [
    Alcotest.test_case "3-node delay-optimal cluster" `Slow test_small_cluster;
    Alcotest.test_case "5-node ft cluster with kill+restart (DMX_CLUSTER_FULL)"
      `Slow test_full_ft_cluster;
    Alcotest.test_case "3-node ft cluster over UDP" `Slow test_small_udp_cluster;
    Alcotest.test_case
      "5-node UDP cluster under 20% loss + kill/restart (DMX_CLUSTER_FULL)"
      `Slow test_chaos_udp_cluster;
    Alcotest.test_case "bind failure fails fast and names the node" `Slow
      test_bind_failure_names_the_node;
    Alcotest.test_case "bad configurations rejected" `Quick test_bad_configs;
  ]
