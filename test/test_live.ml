(* The live (real-parallelism) runtime: the same protocol modules on OCaml
   domains with wall-clock message delays. Non-deterministic by nature, so
   these tests assert safety and completion, not numbers. *)

module Live = Dmx_runtime.Live

let assert_clean label (r : Live.report) ~expected =
  Alcotest.(check int) (label ^ ": executions") expected r.Live.executions;
  Alcotest.(check int) (label ^ ": violations") 0 r.Live.violations;
  Alcotest.(check int) (label ^ ": max occupancy") 1 r.Live.max_occupancy;
  Alcotest.(check bool) (label ^ ": messages flowed") true (r.Live.messages > 0)

let test_delay_optimal_live () =
  let module L = Live.Make (Dmx_core.Delay_optimal) in
  let n = 4 in
  let rounds = 6 in
  let req_sets = Dmx_quorum.Builder.req_sets Grid ~n in
  let r =
    L.run
      { (Live.default ~n) with rounds_per_site = rounds }
      (Dmx_core.Delay_optimal.config req_sets)
  in
  assert_clean "delay-optimal" r ~expected:(n * rounds);
  Array.iteri
    (fun site c ->
      Alcotest.(check int) (Printf.sprintf "site %d rounds" site) rounds c)
    r.Live.per_site

let test_maekawa_live () =
  let module L = Live.Make (Dmx_baselines.Maekawa_me) in
  let n = 4 in
  let req_sets = Dmx_quorum.Builder.req_sets Grid ~n in
  let r =
    L.run
      { (Live.default ~n) with rounds_per_site = 5 }
      { Dmx_baselines.Maekawa_me.req_sets }
  in
  assert_clean "maekawa" r ~expected:20

let test_ricart_agrawala_live () =
  let module L = Live.Make (Dmx_baselines.Ricart_agrawala) in
  let r = L.run { (Live.default ~n:3) with rounds_per_site = 5 } () in
  assert_clean "ricart-agrawala" r ~expected:15

let test_suzuki_kasami_live () =
  let module L = Live.Make (Dmx_baselines.Suzuki_kasami) in
  let r = L.run { (Live.default ~n:3) with rounds_per_site = 5 } () in
  assert_clean "suzuki-kasami" r ~expected:15

let test_longer_cs_live () =
  (* CS long relative to delays: the handoff machinery gets exercised while
     requests pile up at arbiters *)
  let module L = Live.Make (Dmx_core.Delay_optimal) in
  let n = 3 in
  let req_sets = Dmx_quorum.Builder.req_sets Grid ~n in
  let r =
    L.run
      {
        (Live.default ~n) with
        rounds_per_site = 4;
        cs_duration = 0.004;
        min_delay = 0.0001;
        max_delay = 0.0005;
      }
      (Dmx_core.Delay_optimal.config req_sets)
  in
  assert_clean "long CS" r ~expected:12

let test_ft_crash_on_domains () =
  (* a real domain fail-stops mid-run; the FT variant's survivors rebuild
     their quorums and finish every one of their own rounds *)
  let module L = Live.Make (Dmx_core.Ft_delay_optimal) in
  let n = 5 in
  let rounds = 6 in
  let r =
    L.run
      {
        (Live.default ~n) with
        rounds_per_site = rounds;
        crashes = [ (0.015, 4) ];
        detection_delay = 0.005;
      }
      (Dmx_core.Ft_delay_optimal.config_of_kind Tree ~n ~broadcast:false)
  in
  Alcotest.(check int) "violations" 0 r.Live.violations;
  Alcotest.(check int) "max occupancy" 1 r.Live.max_occupancy;
  for s = 0 to n - 2 do
    Alcotest.(check int)
      (Printf.sprintf "survivor %d finished" s)
      rounds r.Live.per_site.(s)
  done

let test_bad_config () =
  let module L = Live.Make (Dmx_core.Delay_optimal) in
  Alcotest.(check bool) "bad delays rejected" true
    (try
       ignore
         (L.run
            { (Live.default ~n:2) with min_delay = 0.5; max_delay = 0.1 }
            (Dmx_core.Delay_optimal.config
               (Dmx_quorum.Builder.req_sets Grid ~n:2)));
       false
     with Invalid_argument _ -> true)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("delay-optimal on domains", test_delay_optimal_live);
      ("maekawa on domains", test_maekawa_live);
      ("ricart-agrawala on domains", test_ricart_agrawala_live);
      ("suzuki-kasami on domains", test_suzuki_kasami_live);
      ("long CS on domains", test_longer_cs_live);
      ("ft crash on domains", test_ft_crash_on_domains);
      ("bad config rejected", test_bad_config);
    ]
