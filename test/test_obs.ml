(* lib/obs: instrument cells, registry semantics, snapshot algebra,
   export formats, the scrape listener, and the sim twin's bit-exact
   metrics reproducibility.

   The histogram properties are checked by qcheck over arbitrary
   observation lists (bucketing invariants, exact count/sum/max,
   quantile monotonicity); snapshot merge is checked associative and
   commutative, and diff is checked as merge's inverse on counters. The
   golden tests pin the Prometheus and JSON export formats byte for
   byte, and the scrape test runs a real HTTP round-trip over an
   ephemeral port. *)

module Metric = Dmx_obs.Metric
module Registry = Dmx_obs.Registry
module Snapshot = Dmx_obs.Snapshot
module Export = Dmx_obs.Export

(* ---- histogram properties ---- *)

let obs_list_gen = QCheck.Gen.(list_size (int_range 0 200) (int_range (-5) 100_000))

let hist_of obs =
  let h = Metric.Histogram.create () in
  List.iter (Metric.Histogram.observe h) obs;
  h

let prop_hist_conservation =
  QCheck.Test.make ~count:500 ~name:"histogram count/sum/max exact"
    (QCheck.make obs_list_gen) (fun obs ->
      let h = hist_of obs in
      Metric.Histogram.count h = List.length obs
      && Metric.Histogram.sum h = List.fold_left ( + ) 0 obs
      && Metric.Histogram.max h
         = List.fold_left (fun a v -> if v > a then v else a) 0 obs
      && Array.fold_left ( + ) 0 (Metric.Histogram.bucket_counts h)
         = List.length obs)

let prop_hist_bucketing =
  QCheck.Test.make ~count:1000 ~name:"bucket_of within bucket bounds"
    (QCheck.make QCheck.Gen.(int_range (-10) 10_000_000))
    (fun v ->
      let i = Metric.Histogram.bucket_of v in
      0 <= i
      && i < Metric.Histogram.buckets
      && (v <= 0) = (i = 0)
      && (i = 0 || v <= Metric.Histogram.bucket_upper i)
      && (i <= 1 || v > Metric.Histogram.bucket_upper (i - 1)))

let prop_hist_quantile_monotone =
  QCheck.Test.make ~count:500 ~name:"quantiles monotone, p100 = max"
    (QCheck.make obs_list_gen) (fun obs ->
      let h = hist_of obs in
      if obs = [] then Metric.Histogram.quantile h 50.0 = 0
      else
        let qs = List.map (Metric.Histogram.quantile h) [ 0.0; 50.0; 90.0; 99.0; 100.0 ] in
        let rec mono = function
          | a :: (b :: _ as rest) -> a <= b && mono rest
          | _ -> true
        in
        mono qs
        && Metric.Histogram.quantile h 100.0 = Metric.Histogram.max h)

let prop_hist_quantile_band =
  QCheck.Test.make ~count:500
    ~name:"bucketed p50 within 2x of exact p50 (positive obs)"
    (QCheck.make QCheck.Gen.(list_size (int_range 1 200) (int_range 1 100_000)))
    (fun obs ->
      let h = hist_of obs in
      let sorted = Array.of_list obs in
      Array.sort compare sorted;
      let exact =
        sorted.(Dmx_obs.Quantile.nearest_rank ~count:(Array.length sorted) 50.0)
      in
      let bucketed = Metric.Histogram.quantile h 50.0 in
      (* the bucketed readout is the containing bucket's upper bound,
         clamped to max: never below the exact value, never 2x above *)
      bucketed >= exact && bucketed < 2 * exact)

(* ---- snapshot algebra ---- *)

let snap_gen =
  let open QCheck.Gen in
  let series_gen i =
    map2
      (fun labeled v ->
        Snapshot.series
          ~name:(Printf.sprintf "m.%d" i)
          ~labels:(if labeled then [ ("k", "v") ] else [])
          (Snapshot.Counter v))
      bool (int_range 0 1_000)
  in
  int_range 0 6 >>= fun n ->
  flatten_l (List.init n series_gen) >>= fun raw ->
  return (Snapshot.normalize raw)

let prop_merge_comm =
  QCheck.Test.make ~count:500 ~name:"merge commutative"
    (QCheck.make QCheck.Gen.(pair snap_gen snap_gen))
    (fun (a, b) -> Snapshot.merge a b = Snapshot.merge b a)

let prop_merge_assoc =
  QCheck.Test.make ~count:500 ~name:"merge associative"
    (QCheck.make QCheck.Gen.(triple snap_gen snap_gen snap_gen))
    (fun (a, b, c) ->
      Snapshot.merge (Snapshot.merge a b) c
      = Snapshot.merge a (Snapshot.merge b c))

let prop_diff_inverts_merge =
  QCheck.Test.make ~count:500 ~name:"diff ~older:a ~newer:(merge a b) ~ b"
    (QCheck.make QCheck.Gen.(pair snap_gen snap_gen))
    (fun (a, b) ->
      (* counters only (snap_gen): every series of b reads back exactly,
         and series from a alone read back as zero *)
      let d = Snapshot.diff ~older:a ~newer:(Snapshot.merge a b) in
      List.for_all
        (fun (s : Snapshot.series) ->
          match Snapshot.find ~labels:s.labels b s.name with
          | Some v -> s.value = v
          | None -> s.value = Snapshot.Counter 0)
        d
      && List.for_all
           (fun (s : Snapshot.series) ->
             Snapshot.find ~labels:s.labels d s.name = Some s.value)
           b)

let test_diff_drops_older_only () =
  let a = Snapshot.normalize [ Snapshot.series ~name:"x" ~labels:[] (Snapshot.Counter 3) ] in
  Alcotest.(check int)
    "older-only series dropped" 0
    (List.length (Snapshot.diff ~older:a ~newer:[]))

let test_histogram_merge () =
  let h1 = hist_of [ 1; 2; 3 ] and h2 = hist_of [ 100; 200 ] in
  let s v = [ Snapshot.series ~name:"h" ~labels:[] v ] in
  let hd h =
    Snapshot.Histogram
      {
        buckets = Metric.Histogram.bucket_counts h;
        count = Metric.Histogram.count h;
        sum = Metric.Histogram.sum h;
        max = Metric.Histogram.max h;
      }
  in
  match Snapshot.merge (s (hd h1)) (s (hd h2)) with
  | [ { value = Snapshot.Histogram m; _ } ] ->
    Alcotest.(check int) "count adds" 5 m.count;
    Alcotest.(check int) "sum adds" 306 m.sum;
    Alcotest.(check int) "max of maxes" 200 m.max
  | _ -> Alcotest.fail "expected one merged histogram series"

(* ---- registry semantics ---- *)

let test_registry_family () =
  let reg = Registry.create () in
  let c1 = Registry.counter reg "hits" ~labels:[ ("shard", "0") ] in
  let c1' = Registry.counter reg "hits" ~labels:[ ("shard", "0") ] in
  let c2 = Registry.counter reg "hits" ~labels:[ ("shard", "1") ] in
  Metric.Counter.incr c1;
  Metric.Counter.add c1' 2;
  Metric.Counter.incr c2;
  let snap = Registry.snapshot reg in
  Alcotest.(check int)
    "same (name, labels) resolves to the same cell" 3
    (Snapshot.get snap "hits" ~labels:[ ("shard", "0") ]);
  Alcotest.(check int)
    "distinct label value is a distinct cell" 1
    (Snapshot.get snap "hits" ~labels:[ ("shard", "1") ]);
  Alcotest.(check int) "sum_matching spans the family" 4
    (Snapshot.sum_matching ~prefix:"hits" snap)

let test_registry_kind_clash () =
  let reg = Registry.create () in
  ignore (Registry.counter reg "x");
  Alcotest.check_raises "gauge under a counter name"
    (Invalid_argument
       "Obs.Registry: x already registered as a counter, not a gauge")
    (fun () -> ignore (Registry.gauge reg "x"))

let test_probe_polled_at_snapshot () =
  let reg = Registry.create () in
  let v = ref 1 in
  Registry.probe reg "polled" (fun () -> !v);
  let s1 = Registry.snapshot reg in
  v := 41;
  let s2 = Registry.snapshot reg in
  Alcotest.(check int) "first poll" 1 (Snapshot.get s1 "polled");
  Alcotest.(check int) "probe re-polled per snapshot" 41
    (Snapshot.get s2 "polled")

(* ---- export goldens ---- *)

let golden_registry () =
  let reg = Registry.create () in
  let c = Registry.counter reg "node.sent" in
  Metric.Counter.add c 7;
  let g = Registry.gauge reg "queue.depth" ~labels:[ ("shard", "2") ] in
  Metric.Gauge.set g 5;
  let h = Registry.histogram reg "acquire.latency" in
  List.iter (Metric.Histogram.observe h) [ 1; 3; 3; 900 ];
  reg

let test_prometheus_golden () =
  let expected =
    "# TYPE acquire_latency histogram\n\
     acquire_latency_bucket{le=\"0\"} 0\n\
     acquire_latency_bucket{le=\"1\"} 1\n\
     acquire_latency_bucket{le=\"3\"} 3\n\
     acquire_latency_bucket{le=\"1023\"} 4\n\
     acquire_latency_bucket{le=\"+Inf\"} 4\n\
     acquire_latency_sum 907\n\
     acquire_latency_count 4\n\
     # TYPE node_sent counter\n\
     node_sent 7\n\
     # TYPE queue_depth gauge\n\
     queue_depth{shard=\"2\"} 5\n"
  in
  Alcotest.(check string)
    "prometheus text" expected
    (Export.prometheus (Registry.snapshot (golden_registry ())))

let test_json_golden_roundtrip () =
  let snap = Registry.snapshot (golden_registry ()) in
  let body = Export.json snap in
  (* pinned fragments rather than the whole document: the schema tag and
     the derived readouts *)
  let contains sub =
    let n = String.length sub and len = String.length body in
    let rec go i = i + n <= len && (String.sub body i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "schema tag" true (contains "\"dmx-metrics/1\"");
  Alcotest.(check bool)
    "histogram readouts" true
    (contains "\"count\": 4, \"sum\": 907, \"max\": 900");
  (* and the export parses back to the same snapshot *)
  match Dmx_model.Metrics_json.parse body with
  | Ok snap' -> Alcotest.(check bool) "JSON round-trip" true (snap = snap')
  | Error e -> Alcotest.failf "parse: %s" e

(* ---- the scrape listener: real HTTP over an ephemeral port ---- *)

let test_scrape_roundtrip () =
  let reg = golden_registry () in
  let srv =
    Dmx_net.Scrape.start ~port:0 (fun () -> Registry.snapshot reg)
  in
  Fun.protect
    ~finally:(fun () -> Dmx_net.Scrape.stop srv)
    (fun () ->
      let port = Dmx_net.Scrape.port srv in
      (match Dmx_net.Scrape.http_get ~port "/metrics" with
      | Ok (200, body) ->
        Alcotest.(check string)
          "scraped text = exporter output"
          (Export.prometheus (Registry.snapshot reg))
          body
      | Ok (code, _) -> Alcotest.failf "/metrics: HTTP %d" code
      | Error e -> Alcotest.failf "/metrics: %s" e);
      (match Dmx_net.Scrape.http_get ~port "/metrics.json" with
      | Ok (200, body) -> (
        match Dmx_model.Metrics_json.parse body with
        | Ok snap ->
          Alcotest.(check int) "scraped counter" 7 (Snapshot.get snap "node.sent")
        | Error e -> Alcotest.failf "/metrics.json parse: %s" e)
      | Ok (code, _) -> Alcotest.failf "/metrics.json: HTTP %d" code
      | Error e -> Alcotest.failf "/metrics.json: %s" e);
      match Dmx_net.Scrape.http_get ~port "/nope" with
      | Ok (404, _) -> ()
      | Ok (code, _) -> Alcotest.failf "/nope: HTTP %d (want 404)" code
      | Error e -> Alcotest.failf "/nope: %s" e)

(* ---- sim-twin determinism: the snapshot is a function of the seed ---- *)

let sim_metrics_export seed =
  let cfg =
    {
      (Dmx_service.Sim_swarm.default ~n:4) with
      Dmx_service.Sim_swarm.clients = 16;
      rounds = 2;
      seed;
    }
  in
  match Dmx_service.Sim_swarm.run_named cfg with
  | Error e -> Alcotest.failf "sim-swarm: %s" e
  | Ok o ->
    Export.json
      (Snapshot.merge_all
         (o.Dmx_service.Swarm.driver_snapshot
         :: Array.to_list o.Dmx_service.Swarm.snapshots))

let test_sim_snapshot_deterministic () =
  let a = sim_metrics_export 7 and b = sim_metrics_export 7 in
  Alcotest.(check bool) "byte-identical export for equal seeds" true (a = b);
  Alcotest.(check bool)
    "acquire latency histogram present" true
    (let sub = "swarm.acquire_latency" in
     let n = String.length sub and len = String.length a in
     let rec go i = i + n <= len && (String.sub a i n = sub || go (i + 1)) in
     go 0);
  let c = sim_metrics_export 8 in
  Alcotest.(check bool) "different seed, different metrics" true (a <> c)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let suite =
  qsuite
    [
      prop_hist_conservation;
      prop_hist_bucketing;
      prop_hist_quantile_monotone;
      prop_hist_quantile_band;
      prop_merge_comm;
      prop_merge_assoc;
      prop_diff_inverts_merge;
    ]
  @ [
      Alcotest.test_case "diff drops older-only series" `Quick
        test_diff_drops_older_only;
      Alcotest.test_case "histogram merge adds bucketwise" `Quick
        test_histogram_merge;
      Alcotest.test_case "labeled family resolves per label set" `Quick
        test_registry_family;
      Alcotest.test_case "kind clash rejected" `Quick test_registry_kind_clash;
      Alcotest.test_case "probes polled at snapshot time" `Quick
        test_probe_polled_at_snapshot;
      Alcotest.test_case "prometheus export golden" `Quick
        test_prometheus_golden;
      Alcotest.test_case "json export golden + round-trip" `Quick
        test_json_golden_roundtrip;
      Alcotest.test_case "scrape endpoint round-trip" `Quick
        test_scrape_roundtrip;
      Alcotest.test_case "sim twin metrics bit-reproducible" `Quick
        test_sim_snapshot_deterministic;
    ]
