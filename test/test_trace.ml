(* Trace collector: enable flag, order, capacity trimming. *)

module Trace = Dmx_sim.Trace

let test_disabled_records_nothing () =
  let t = Trace.create () in
  Trace.record t ~time:1.0 ~site:0 Trace.Enter_cs;
  Alcotest.(check int) "nothing stored" 0 (Trace.length t);
  Alcotest.(check bool) "disabled" false (Trace.enabled t)

let test_chronological_entries () =
  let t = Trace.create ~enabled:true () in
  Trace.record t ~time:1.0 ~site:0 (Trace.Note "a");
  Trace.record t ~time:2.0 ~site:1 (Trace.Note "b");
  Trace.record t ~time:3.0 ~site:2 (Trace.Note "c");
  Alcotest.(check (list string)) "in order" [ "a"; "b"; "c" ]
    (List.map
       (fun e -> match e.Trace.kind with Trace.Note s -> s | _ -> "?")
       (Trace.entries t))

let test_capacity_trims_oldest () =
  let t = Trace.create ~enabled:true ~capacity:10 () in
  for i = 1 to 11 do
    Trace.record t ~time:(float_of_int i) ~site:0 (Trace.Note (string_of_int i))
  done;
  Alcotest.(check bool) "trimmed" true (Trace.length t <= 10);
  let times = List.map (fun e -> e.Trace.time) (Trace.entries t) in
  Alcotest.(check bool) "kept the newest" true (List.mem 11.0 times);
  Alcotest.(check bool) "dropped the oldest" false (List.mem 1.0 times)

let test_clear () =
  let t = Trace.create ~enabled:true () in
  Trace.record t ~time:1.0 ~site:0 Trace.Crash;
  Trace.clear t;
  Alcotest.(check int) "cleared" 0 (Trace.length t)

let test_truncated_flag () =
  let t = Trace.create ~enabled:true ~capacity:10 () in
  for i = 1 to 10 do
    Trace.record t ~time:(float_of_int i) ~site:0 (Trace.Note "x")
  done;
  Alcotest.(check bool) "complete while within capacity" false
    (Trace.truncated t);
  Trace.record t ~time:11.0 ~site:0 (Trace.Note "overflow");
  Alcotest.(check bool) "flagged once trimming discarded entries" true
    (Trace.truncated t);
  (* the flag is sticky for the rest of the run... *)
  Trace.record t ~time:12.0 ~site:0 (Trace.Note "later");
  Alcotest.(check bool) "sticky" true (Trace.truncated t);
  (* ...and resets with the collector *)
  Trace.clear t;
  Alcotest.(check bool) "cleared with the trace" false (Trace.truncated t)

let test_pp_entry () =
  let e = { Trace.time = 1.5; site = 3; kind = Trace.Send { dst = 7; msg = "hi" } } in
  let s = Format.asprintf "%a" Trace.pp_entry e in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec at i = i + nl <= sl && (String.sub s i nl = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "mentions the destination" true (contains "-> 7");
  Alcotest.(check bool) "mentions the payload" true (contains "hi")

let test_timeline () =
  let t = Trace.create ~enabled:true () in
  Trace.record t ~time:0.0 ~site:0 Trace.Enter_cs;
  Trace.record t ~time:5.0 ~site:0 Trace.Exit_cs;
  Trace.record t ~time:5.0 ~site:1 Trace.Enter_cs;
  Trace.record t ~time:10.0 ~site:1 Trace.Exit_cs;
  Trace.record t ~time:10.0 ~site:2 Trace.Crash;
  let s = Trace.timeline ~width:20 t ~n:3 in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "header + 3 lanes + trailing" 5 (List.length lines);
  let lane i = List.nth lines (i + 1) in
  Alcotest.(check bool) "site 0 in CS early" true
    (String.contains (lane 0) '#');
  Alcotest.(check bool) "site 2 crashed" true (String.contains (lane 2) 'X');
  (* site 0's lane must not show CS in its last quarter *)
  let l0 = lane 0 in
  let tail = String.sub l0 (String.length l0 - 5) 5 in
  Alcotest.(check bool) "site 0 idle at end" false (String.contains tail '#')

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("disabled records nothing", test_disabled_records_nothing);
      ("chronological entries", test_chronological_entries);
      ("capacity trims oldest", test_capacity_trims_oldest);
      ("clear", test_clear);
      ("truncated flag", test_truncated_flag);
      ("entry pretty-printer", test_pp_entry);
      ("timeline rendering", test_timeline);
    ]
