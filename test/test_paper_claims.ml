(* Quantitative claims of the paper, asserted as regression tests:
   Section 5.1 (light load), Section 5.2 (heavy load), Table 1 shape. *)

module E = Dmx_sim.Engine
module H = Harness
module S = Dmx_sim.Stats.Summary

let near ~tol expected actual = abs_float (expected -. actual) <= tol

(* ---- Section 5.1: light load ---- *)

let test_light_load_message_counts () =
  (* grid on n=9: K=5, so K-1=4 remote members.
     delay-optimal and Maekawa: 3(K-1)=12; Lamport: 3(N-1)=24;
     Ricart-Agrawala: 2(N-1)=16. Tiny tolerance for residual contention. *)
  let n = 9 in
  let expect =
    [
      (H.delay_optimal ~n, 12.0);
      (H.maekawa ~n, 12.0);
      (H.lamport ~n, 24.0);
      (H.ricart_agrawala ~n, 16.0);
    ]
  in
  List.iter
    (fun (runner, expected) ->
      let r = H.run_clean runner (H.light ~execs:50 n) in
      Alcotest.(check bool)
        (Printf.sprintf "%s light-load msgs/CS: expected %.0f, got %.2f"
           runner.H.rname expected r.E.messages_per_cs)
        true
        (near ~tol:0.8 expected r.E.messages_per_cs))
    expect

let test_light_load_response_time () =
  (* §5.1: response time at light load is 2T + E for any algorithm that
     needs a round trip; E = 1, T = 1 → 3. Token holders can be faster. *)
  let n = 9 in
  List.iter
    (fun runner ->
      let r = H.run_clean runner (H.light ~execs:50 n) in
      let resp = S.mean r.E.response_time +. 1.0 (* + E: entry-to-exit *) in
      ignore resp;
      Alcotest.(check bool)
        (Printf.sprintf "%s light-load response ~2T (got %.2f)" runner.H.rname
           (S.mean r.E.response_time))
        true
        (S.mean r.E.response_time <= 2.3))
    [ H.delay_optimal ~n; H.maekawa ~n; H.lamport ~n; H.ricart_agrawala ~n ]

let test_suzuki_kasami_light_messages () =
  (* 0 when holding the token, N when not; a single hot site converges to 0 *)
  let n = 9 in
  let cfg =
    {
      (E.default ~n) with
      workload = Dmx_sim.Workload.Saturated { contenders = 1 };
      max_executions = 50;
      warmup = 10;
    }
  in
  let r = H.run_clean (H.suzuki_kasami ~n) cfg in
  Alcotest.(check (float 0.01)) "token stays put" 0.0 r.E.messages_per_cs

(* ---- Section 5.2: heavy load ---- *)

let test_heavy_load_message_counts () =
  (* delay-optimal: between 4(K-1) and 6(K-1); Maekawa: ~5(K-1) worst case
     but at least 3(K-1); Lamport/RA stay at their fixed counts. *)
  let n = 9 in
  let k1 = 4.0 in
  let rd = H.run_clean (H.delay_optimal ~n) (H.heavy ~execs:200 n) in
  Alcotest.(check bool)
    (Printf.sprintf "delay-optimal heavy msgs in [3(K-1), 6(K-1)] (got %.2f)"
       rd.E.messages_per_cs)
    true
    (rd.E.messages_per_cs >= 3.0 *. k1 && rd.E.messages_per_cs <= 6.0 *. k1);
  let rm = H.run_clean (H.maekawa ~n) (H.heavy ~execs:200 n) in
  Alcotest.(check bool)
    (Printf.sprintf "maekawa heavy msgs in [3(K-1), 6(K-1)] (got %.2f)"
       rm.E.messages_per_cs)
    true
    (rm.E.messages_per_cs >= 3.0 *. k1 && rm.E.messages_per_cs <= 6.0 *. k1)

let test_sync_delay_T_vs_2T () =
  (* The headline claim. With constant unit delay and E large enough for
     transfers to land, delay-optimal hands off in exactly T while Maekawa
     needs exactly 2T. *)
  let n = 25 in
  let cfg = { (H.heavy ~execs:200 n) with cs_duration = 2.0 } in
  let rd = H.run_clean (H.delay_optimal ~n) cfg in
  let rm = H.run_clean (H.maekawa ~n) cfg in
  Alcotest.(check (float 0.05)) "delay-optimal sync = T" 1.0 (S.mean rd.E.sync_delay);
  Alcotest.(check (float 0.05)) "maekawa sync = 2T" 2.0 (S.mean rm.E.sync_delay)

let test_sync_delay_broadcast_baselines () =
  (* Lamport and Ricart-Agrawala already achieve T. *)
  let n = 9 in
  let cfg = { (H.heavy ~execs:150 n) with cs_duration = 2.0 } in
  List.iter
    (fun runner ->
      let r = H.run_clean runner cfg in
      Alcotest.(check (float 0.05))
        (runner.H.rname ^ " sync = T")
        1.0 (S.mean r.E.sync_delay))
    [ H.lamport ~n; H.ricart_agrawala ~n ]

let test_throughput_improvement () =
  (* §5.2: "the rate of CS execution is doubled" as E → 0. With E = 0.1 the
     ideal ratio is (2T+E)/(T+E) ≈ 1.9; require at least 1.4 measured. *)
  let n = 25 in
  let cfg = { (H.heavy ~execs:300 n) with cs_duration = 0.1 } in
  let rd = H.run_clean (H.delay_optimal ~n) cfg in
  let rm = H.run_clean (H.maekawa ~n) cfg in
  let ratio = rd.E.throughput /. rm.E.throughput in
  Alcotest.(check bool)
    (Printf.sprintf "throughput ratio %.2f >= 1.4" ratio)
    true (ratio >= 1.4)

let test_waiting_time_reduction () =
  (* §5.2: waiting time shrinks accordingly. *)
  let n = 25 in
  let cfg = { (H.heavy ~execs:300 n) with cs_duration = 0.1 } in
  let rd = H.run_clean (H.delay_optimal ~n) cfg in
  let rm = H.run_clean (H.maekawa ~n) cfg in
  let ratio = S.mean rd.E.response_time /. S.mean rm.E.response_time in
  Alcotest.(check bool)
    (Printf.sprintf "waiting ratio %.2f <= 0.75" ratio)
    true (ratio <= 0.75)

let test_raymond_delay_grows_with_tree () =
  (* Table 1: token walks make Raymond's delay O(log N)·T > T. *)
  let n = 15 in
  let r = H.run_clean (H.raymond ~n) { (H.heavy ~execs:150 n) with cs_duration = 0.2 } in
  Alcotest.(check bool)
    (Printf.sprintf "raymond sync > 1.2T (got %.2f)" (S.mean r.E.sync_delay))
    true
    (S.mean r.E.sync_delay > 1.2)

let test_singhal_between_n_minus_1_and_2n () =
  let n = 9 in
  let light = H.run_clean (H.singhal ~n) (H.light ~execs:50 n) in
  Alcotest.(check bool)
    (Printf.sprintf "singhal light <= 2(N-1) (got %.2f)" light.E.messages_per_cs)
    true
    (light.E.messages_per_cs <= 16.4);
  let heavy = H.run_clean (H.singhal ~n) (H.heavy ~execs:200 n) in
  Alcotest.(check bool)
    (Printf.sprintf "singhal heavy ~ 2(N-1) (got %.2f)" heavy.E.messages_per_cs)
    true
    (heavy.E.messages_per_cs >= 8.0 && heavy.E.messages_per_cs <= 17.0)

let test_message_scaling_with_n () =
  (* O(√N) vs O(N): quorum algorithms must beat broadcast ones by a growing
     factor. At n=49, grid K-1=12: DO ≤ 6·12 = 72 < 96 = RA's 2(N-1). *)
  let n = 49 in
  let rd = H.run_clean (H.delay_optimal ~n) (H.heavy ~execs:150 n) in
  let ra = H.run_clean (H.ricart_agrawala ~n) (H.heavy ~execs:150 n) in
  Alcotest.(check bool)
    (Printf.sprintf "O(sqrt N) wins at n=49: %.1f < %.1f" rd.E.messages_per_cs
       ra.E.messages_per_cs)
    true
    (rd.E.messages_per_cs < ra.E.messages_per_cs)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("light load: 3(K-1) / 3(N-1) / 2(N-1)", test_light_load_message_counts);
      ("light load: response time 2T+E", test_light_load_response_time);
      ("suzuki-kasami: token stays put", test_suzuki_kasami_light_messages);
      ("heavy load: 5(K-1)-6(K-1) band", test_heavy_load_message_counts);
      ("sync delay: T vs 2T (headline)", test_sync_delay_T_vs_2T);
      ("sync delay: broadcast baselines at T", test_sync_delay_broadcast_baselines);
      ("throughput improvement", test_throughput_improvement);
      ("waiting time reduction", test_waiting_time_reduction);
      ("raymond delay grows", test_raymond_delay_grows_with_tree);
      ("singhal message band", test_singhal_between_n_minus_1_and_2n);
      ("message scaling with N", test_message_scaling_with_n);
    ]
