(* Heartbeat/timeout failure detector: suspect and trust transitions. *)

module D = Dmx_sim.Detector

let cfg = { D.period = 2.0; timeout = 10.0 }

let test_all_trusted_initially () =
  let d = D.create cfg ~n:4 ~self:0 ~now:0.0 in
  Alcotest.(check (list int)) "no suspects" [] (D.suspects d);
  Alcotest.(check (list int)) "nothing new" [] (D.sweep d ~now:9.9)

let test_timeout_suspects () =
  let d = D.create cfg ~n:4 ~self:0 ~now:0.0 in
  ignore (D.heartbeat d ~src:2 ~now:5.0);
  (* at t=12: sites 1 and 3 are past 0 + timeout, site 2 is fresh *)
  Alcotest.(check (list int)) "newly suspected" [ 1; 3 ] (D.sweep d ~now:12.0);
  Alcotest.(check (list int)) "standing" [ 1; 3 ] (D.suspects d);
  Alcotest.(check bool) "site 2 trusted" false (D.suspected d 2);
  (* a second sweep must not re-report them *)
  Alcotest.(check (list int)) "no re-report" [] (D.sweep d ~now:13.0);
  (* site 2 expires later *)
  Alcotest.(check (list int)) "site 2 expires" [ 2 ] (D.sweep d ~now:15.1)

let test_self_never_suspected () =
  let d = D.create cfg ~n:3 ~self:1 ~now:0.0 in
  Alcotest.(check (list int)) "peers only" [ 0; 2 ] (D.sweep d ~now:100.0);
  Alcotest.(check bool) "not self" false (D.suspected d 1)

let test_trust_transition () =
  let d = D.create cfg ~n:3 ~self:0 ~now:0.0 in
  Alcotest.(check bool) "fresh heartbeat: no transition" false
    (D.heartbeat d ~src:1 ~now:1.0);
  ignore (D.sweep d ~now:20.0);
  Alcotest.(check bool) "suspected" true (D.suspected d 1);
  Alcotest.(check bool) "late heartbeat revokes" true
    (D.heartbeat d ~src:1 ~now:21.0);
  Alcotest.(check bool) "trusted again" false (D.suspected d 1);
  (* the deadline restarted from the heartbeat: site 1 is not immediately
     re-suspected (site 2, already reported at t=20, is never re-reported) *)
  Alcotest.(check (list int)) "not immediately re-suspected" []
    (D.sweep d ~now:22.0);
  Alcotest.(check (list int)) "re-suspected after timeout" [ 1 ]
    (D.sweep d ~now:31.1)

let test_reset () =
  let d = D.create cfg ~n:3 ~self:0 ~now:0.0 in
  ignore (D.sweep d ~now:50.0);
  Alcotest.(check (list int)) "both suspected" [ 1; 2 ] (D.suspects d);
  D.reset d ~now:50.0;
  Alcotest.(check (list int)) "all forgiven" [] (D.suspects d);
  Alcotest.(check (list int)) "deadlines restarted" [] (D.sweep d ~now:59.9);
  Alcotest.(check (list int)) "expire again" [ 1; 2 ] (D.sweep d ~now:60.1)

let test_config_validated () =
  let bad c =
    try
      ignore (D.create c ~n:3 ~self:0 ~now:0.0);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "zero period" true
    (bad { D.period = 0.0; timeout = 10.0 });
  Alcotest.(check bool) "timeout <= period" true
    (bad { D.period = 2.0; timeout = 2.0 })

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("all trusted initially", test_all_trusted_initially);
      ("timeout suspects silent peers", test_timeout_suspects);
      ("self never suspected", test_self_never_suspected);
      ("heartbeat revokes suspicion", test_trust_transition);
      ("reset forgives everyone", test_reset);
      ("config validated", test_config_validated);
    ]
