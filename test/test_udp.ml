(* Unit tests for the UDP datagram transport: loopback round-trips, the
   oversize send guard, undecodable-datagram resilience, and
   heartbeat-silence detection through the shared Peers machinery. *)

module Sig = Dmx_net.Transport_sig
module Udp = Dmx_net.Udp
module Wire = Dmx_net.Wire

let free_udp_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Unix.close fd;
  port

let addr port = Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let cfg ~self ~listen_port ~peers ?(hb_timeout = 10.0) ?(watch = []) () =
  {
    Sig.self;
    listen_port;
    peers;
    hb_period = 0.02;
    hb_timeout;
    watch;
    hello_inc = 0.0;
  }

(* drain [t]'s poll until [pred] accepts an event, or fail at deadline *)
let poll_for ?(timeout = 5.0) t pred what =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    match Udp.poll t with
    | Some ev when pred ev -> ev
    | _ ->
      if Unix.gettimeofday () > deadline then
        Alcotest.failf "timed out waiting for %s" what
      else begin
        Thread.delay 0.01;
        go ()
      end
  in
  go ()

let test_roundtrip () =
  let pa = free_udp_port () and pb = free_udp_port () in
  let a = Udp.create (cfg ~self:0 ~listen_port:pa ~peers:[ (1, addr pb) ] ()) in
  let b = Udp.create (cfg ~self:1 ~listen_port:pb ~peers:[ (0, addr pa) ] ()) in
  Fun.protect
    ~finally:(fun () ->
      Udp.close a;
      Udp.close b)
    (fun () ->
      Udp.send a ~dst:1 (Wire.Proto { src = 0; dst = 1; payload = "ping" });
      (match
         poll_for b
           (function Sig.Frame _ -> true | _ -> false)
           "frame at b"
       with
      | Sig.Frame { src; frame = Wire.Proto { payload; _ } } ->
        Alcotest.(check int) "src learned from frame" 0 src;
        Alcotest.(check string) "payload intact" "ping" payload
      | _ -> Alcotest.fail "unexpected event");
      Udp.send b ~dst:0 (Wire.Proto { src = 1; dst = 0; payload = "pong" });
      (match
         poll_for a
           (function Sig.Frame _ -> true | _ -> false)
           "frame at a"
       with
      | Sig.Frame { frame = Wire.Proto { payload; _ }; _ } ->
        Alcotest.(check string) "reply intact" "pong" payload
      | _ -> Alcotest.fail "unexpected event");
      let sa = Udp.stats a in
      Alcotest.(check bool) "a counted a send" true (sa.Sig.frames_sent >= 1);
      Alcotest.(check bool) "a counted a receive" true
        (sa.Sig.frames_received >= 1))

let test_broadcast () =
  let pa = free_udp_port ()
  and pb = free_udp_port ()
  and pc = free_udp_port () in
  let a =
    Udp.create
      (cfg ~self:0 ~listen_port:pa ~peers:[ (1, addr pb); (2, addr pc) ] ())
  in
  let b = Udp.create (cfg ~self:1 ~listen_port:pb ~peers:[ (0, addr pa) ] ()) in
  let c = Udp.create (cfg ~self:2 ~listen_port:pc ~peers:[ (0, addr pa) ] ()) in
  Fun.protect
    ~finally:(fun () ->
      Udp.close a;
      Udp.close b;
      Udp.close c)
    (fun () ->
      Udp.broadcast a (Wire.Heartbeat { site = 0; time = 0.0 });
      List.iter
        (fun t ->
          ignore
            (poll_for t
               (function
                 | Sig.Frame { frame = Wire.Heartbeat { site = 0; _ }; _ } ->
                   true
                 | _ -> false)
               "broadcast heartbeat"))
        [ b; c ])

let test_oversize_guard () =
  let pa = free_udp_port () and pb = free_udp_port () in
  let a = Udp.create (cfg ~self:0 ~listen_port:pa ~peers:[ (1, addr pb) ] ()) in
  let b = Udp.create (cfg ~self:1 ~listen_port:pb ~peers:[ (0, addr pa) ] ()) in
  Fun.protect
    ~finally:(fun () ->
      Udp.close a;
      Udp.close b)
    (fun () ->
      let huge = String.make (Udp.max_datagram + 1) 'x' in
      Udp.send a ~dst:1 (Wire.Proto { src = 0; dst = 1; payload = huge });
      Alcotest.(check int) "oversize counted, not sent" 1
        (Udp.stats a).Sig.oversize_dropped;
      Alcotest.(check int) "nothing went out" 0 (Udp.stats a).Sig.frames_sent;
      (* the link still works afterwards *)
      Udp.send a ~dst:1 (Wire.Proto { src = 0; dst = 1; payload = "ok" });
      ignore
        (poll_for b
           (function
             | Sig.Frame { frame = Wire.Proto { payload = "ok"; _ }; _ } -> true
             | _ -> false)
           "frame after oversize"))

let test_undecodable_dropped () =
  let pb = free_udp_port () in
  let b = Udp.create (cfg ~self:1 ~listen_port:pb ~peers:[] ()) in
  Fun.protect
    ~finally:(fun () -> Udp.close b)
    (fun () ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
      let junk = "\xff\x00garbage datagram" in
      ignore
        (Unix.sendto fd (Bytes.of_string junk) 0 (String.length junk) []
           (addr pb));
      Unix.close fd;
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec wait () =
        if (Udp.stats b).Sig.undecodable >= 1 then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "undecodable datagram never counted"
        else begin
          ignore (Udp.poll b);
          Thread.delay 0.01;
          wait ()
        end
      in
      wait ();
      Alcotest.(check int) "no frame surfaced" 0 (Udp.stats b).Sig.frames_received)

let test_silence_detection () =
  let pa = free_udp_port () and pb = free_udp_port () in
  let a = Udp.create (cfg ~self:0 ~listen_port:pa ~peers:[ (1, addr pb) ] ()) in
  let b =
    Udp.create
      (cfg ~self:1 ~listen_port:pb
         ~peers:[ (0, addr pa) ]
         ~hb_timeout:0.25 ~watch:[ 0 ] ())
  in
  Fun.protect
    ~finally:(fun () ->
      Udp.close a;
      Udp.close b)
    (fun () ->
      (* a speaks once, then goes silent: b must suspect it *)
      Udp.send a ~dst:1 (Wire.Heartbeat { site = 0; time = 0.0 });
      ignore
        (poll_for b (function Sig.Frame _ -> true | _ -> false) "first frame");
      (match poll_for b (function Sig.Peer_down 0 -> true | _ -> false)
               "Peer_down 0"
       with
      | Sig.Peer_down 0 -> ()
      | _ -> Alcotest.fail "unexpected event");
      (* a speaks again: suspicion is retracted *)
      Udp.send a ~dst:1 (Wire.Heartbeat { site = 0; time = 0.0 });
      match poll_for b (function Sig.Peer_up 0 -> true | _ -> false) "Peer_up 0"
      with
      | Sig.Peer_up 0 -> ()
      | _ -> Alcotest.fail "unexpected event")

let test_factory () =
  let pa = free_udp_port () in
  let c = cfg ~self:0 ~listen_port:pa ~peers:[] () in
  (match Dmx_net.Transports.create "udp" c with
  | Ok h -> h.Sig.close ()
  | Error e -> Alcotest.failf "udp factory failed: %s" e);
  (match Dmx_net.Transports.create "tcp" c with
  | Ok h -> h.Sig.close ()
  | Error e -> Alcotest.failf "tcp factory failed: %s" e);
  match Dmx_net.Transports.create "carrier-pigeon" c with
  | Ok _ -> Alcotest.fail "unknown transport accepted"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "loopback round-trip" `Quick test_roundtrip;
    Alcotest.test_case "broadcast reaches all peers" `Quick test_broadcast;
    Alcotest.test_case "oversize sends are refused and counted" `Quick
      test_oversize_guard;
    Alcotest.test_case "undecodable datagrams dropped cleanly" `Quick
      test_undecodable_dropped;
    Alcotest.test_case "heartbeat silence raises Peer_down/Peer_up" `Quick
      test_silence_detection;
    Alcotest.test_case "transport factory resolves names" `Quick test_factory;
  ]
