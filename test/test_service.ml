(* The sharded lock service: Shard_map properties, the Host driven
   through fake capabilities, the deterministic Sim_swarm (including
   replayability and kill/restart recovery), and — gated behind
   DMX_CLUSTER_FULL=1 like the heavy cluster scenarios — a live
   multi-process swarm with a mid-run kill and restart. *)

module SM = Dmx_service.Shard_map
module Swarm = Dmx_service.Swarm
module Sim_swarm = Dmx_service.Sim_swarm
module Wire = Dmx_net.Wire
module B = Dmx_quorum.Builder

let full_enabled = Sys.getenv_opt "DMX_CLUSTER_FULL" = Some "1"

(* ---- shard map ---- *)

let test_shard_map_ranges () =
  for i = 0 to 999 do
    let lock = Printf.sprintf "lock-%d" i in
    let s = SM.shard_of_lock ~shards:16 lock in
    Alcotest.(check bool) "in range" true (s >= 0 && s < 16);
    Alcotest.(check int) "stable" s (SM.shard_of_lock ~shards:16 lock)
  done;
  (* the rotation is a bijection both ways for every shard *)
  let n = 7 in
  for shard = 0 to 4 do
    for site = 0 to n - 1 do
      let node = SM.node_of_site ~shard ~n site in
      Alcotest.(check int) "round-trip" site (SM.site_of_node ~shard ~n node)
    done
  done;
  (* rotation spreads site 0 (the tree root / grid hot spot) over nodes *)
  let roots = List.init 5 (fun shard -> SM.node_of_site ~shard ~n 0) in
  Alcotest.(check (list int)) "root rotates" [ 0; 1; 2; 3; 4 ] roots

let test_shard_map_spread () =
  (* FNV over a realistic namespace should not collapse onto few shards:
     with 4096 keys over 16 shards, every shard gets a decent share *)
  let counts = Array.make 16 0 in
  for i = 0 to 4095 do
    let s = SM.shard_of_lock ~shards:16 (Printf.sprintf "user/%d/profile" i) in
    counts.(s) <- counts.(s) + 1
  done;
  Array.iteri
    (fun s c ->
      if c < 128 then
        Alcotest.failf "shard %d got only %d of 4096 keys (expected ~256)" s c)
    counts

(* ---- host, through fake capabilities ---- *)

module Host = Dmx_service.Host.Make (Dmx_core.Delay_optimal)

type fake = {
  mutable vnow : float;
  mutable client_out : Wire.frame list;  (* newest first *)
  mutable shard_out : (int * int * string) list;
  mutable timers : (float * int * int) list;  (* (at, shard, tag) *)
}

let make_host ?(n = 3) ?(shards = 2) ?(lease = 1.0) ?(max_batch = 8) ~self ()
    =
  let f = { vnow = 0.0; client_out = []; shard_out = []; timers = [] } in
  let caps =
    {
      Dmx_service.Host.now = (fun () -> f.vnow);
      send_shard =
        (fun ~shard ~dst_node payload ->
          f.shard_out <- (shard, dst_node, payload) :: f.shard_out);
      send_client = (fun fr -> f.client_out <- fr :: f.client_out);
      set_timer =
        (fun ~shard ~tag ~delay ->
          f.timers <- (f.vnow +. delay, shard, tag) :: f.timers);
    }
  in
  let host =
    Host.create ~caps
      ~codec:{ Host.encode = Wire.encode_message; decode = Wire.decode_message }
      ~self ~n ~shards
      ~lease:{ Dmx_core.Lease.duration = lease; max_batch }
      ~seed:1
      ~pconfig:(fun ~shard:_ ->
        Dmx_core.Delay_optimal.config (B.req_sets B.Star ~n))
  in
  (host, f)

(* Star quorum with rotation: shard s's arbiter (site 0) lives on node
   s. A host on node [self] can serve shard [self] entirely locally —
   which lets these tests reach a Grant without a network. *)
let local_lock host ~shard =
  let rec go i =
    if i > 10_000 then Alcotest.fail "no lock name hashed onto the shard"
    else
      let lock = Printf.sprintf "k%d" i in
      if SM.shard_of_lock ~shards:(Host.shard_count host) lock = shard then
        lock
      else go (i + 1)
  in
  go 0

(* self-arbitration needs the self-send queue drained a few times:
   request -> arbiter -> reply -> enter_cs *)
let drain_grant host =
  for _ = 1 to 4 do
    Host.tick host
  done

let test_host_grant_flow () =
  let self = 1 in
  let host, f = make_host ~self () in
  let lock = local_lock host ~shard:self in
  Host.open_session host ~session:7 ~inc:1.0;
  Host.acquire host ~session:7 ~lock ~req:1;
  drain_grant host;
  (match f.client_out with
  | [ Wire.Grant { session = 7; lock = l; req = 1; deadline } ] ->
    Alcotest.(check string) "lock echoed" lock l;
    Alcotest.(check (float 1e-9)) "deadline = now + lease" 1.0 deadline
  | other ->
    Alcotest.failf "expected exactly one Grant, got %d frame(s)"
      (List.length other));
  f.client_out <- [];
  (* release lets the next session in *)
  Host.open_session host ~session:8 ~inc:1.0;
  Host.acquire host ~session:8 ~lock ~req:1;
  Host.release host ~session:7 ~lock ~req:1;
  drain_grant host;
  (match f.client_out with
  | [ Wire.Grant { session = 8; _ } ] -> ()
  | _ -> Alcotest.fail "release should hand the lock to session 8");
  let stats = Host.lease_stats host in
  Alcotest.(check (option int))
    "two grants counted" (Some 2)
    (List.assoc_opt "lease.grants" stats)

let test_host_denies_unknown_session () =
  let host, f = make_host ~self:0 () in
  Host.acquire host ~session:9 ~lock:"x" ~req:1;
  (match f.client_out with
  | [ Wire.Deny { session = 9; reason = "no-session"; _ } ] -> ()
  | _ -> Alcotest.fail "expected Deny no-session");
  Alcotest.(check (option int))
    "deny counted" (Some 1)
    (List.assoc_opt "service.denies" (Host.lease_stats host))

let test_host_expiry_and_incarnation () =
  let self = 1 in
  let host, f = make_host ~self ~lease:1.0 () in
  let lock = local_lock host ~shard:self in
  Host.open_session host ~session:7 ~inc:1.0;
  Host.acquire host ~session:7 ~lock ~req:1;
  drain_grant host;
  f.client_out <- [];
  (* the lease timer fires past the deadline: the hold expires *)
  f.vnow <- 1.5;
  let due, rest =
    List.partition (fun (_, _, tag) -> tag = Dmx_core.Lease.timer_tag) f.timers
  in
  f.timers <- rest;
  Alcotest.(check int) "one lease timer armed" 1 (List.length due);
  List.iter (fun (_, shard, tag) -> Host.on_timer host ~shard ~tag) due;
  (match f.client_out with
  | [ Wire.Expire { session = 7; req = 1; _ } ] -> ()
  | _ -> Alcotest.fail "expected Expire for the silent holder");
  f.client_out <- [];
  (* a re-open with a larger incarnation voids what the old life held *)
  Host.acquire host ~session:7 ~lock ~req:2;
  drain_grant host;
  f.client_out <- [];
  Host.open_session host ~session:7 ~inc:2.0;
  Alcotest.(check (option int))
    "stale hold voided" (Some 1)
    (List.assoc_opt "lease.voided" (Host.lease_stats host))

(* ---- deterministic swarm ---- *)

let fingerprint (o : Swarm.outcome) =
  Format.asprintf "%a" Swarm.pp_outcome o

let test_sim_swarm_clean () =
  let cfg =
    {
      (Sim_swarm.default ~n:5) with
      Sim_swarm.clients = 40;
      shards = 4;
      rounds = 2;
      abandon = 0.25;
      lease = 0.4;
      seed = 23;
    }
  in
  match Sim_swarm.run_named cfg with
  | Error e -> Alcotest.fail e
  | Ok o ->
    Alcotest.(check bool) "all shards clean" true (Swarm.ok o);
    Alcotest.(check int) "all clients finished" 40 o.Swarm.completed_clients;
    let total_expiries =
      Array.fold_left (fun a s -> a + s.Swarm.expiries) 0 o.Swarm.per_shard
    in
    Alcotest.(check bool)
      "abandons were cleaned up by expiry" true (total_expiries > 0)

let test_sim_swarm_deterministic () =
  let cfg =
    {
      (Sim_swarm.default ~n:4) with
      Sim_swarm.clients = 24;
      shards = 3;
      rounds = 2;
      abandon = 0.2;
      lease = 0.3;
      quorum = B.Majority;
      seed = 77;
    }
  in
  match (Sim_swarm.run_named cfg, Sim_swarm.run_named cfg) with
  | Ok a, Ok b ->
    Alcotest.(check string)
      "same seed, same everything" (fingerprint a) (fingerprint b);
    (match Sim_swarm.run_named { cfg with Sim_swarm.seed = 78 } with
    | Ok c ->
      Alcotest.(check bool)
        "different seed, different run" true
        (fingerprint a <> fingerprint c)
    | Error e -> Alcotest.fail e)
  | Error e, _ | _, Error e -> Alcotest.fail e

let test_sim_swarm_kill_recovery () =
  (* kill one node mid-run without restart: its leases expire, its
     sessions re-home, every shard still finishes clean *)
  let cfg =
    {
      (Sim_swarm.default ~n:5) with
      Sim_swarm.clients = 30;
      shards = 4;
      rounds = 3;
      think = 0.2;
      lease = 0.5;
      kills = [ (0.3, 2) ];
      seed = 41;
    }
  in
  match Sim_swarm.run_named cfg with
  | Error e -> Alcotest.fail e
  | Ok o ->
    Alcotest.(check bool) "clean under a kill" true (Swarm.ok o);
    Alcotest.(check int) "all clients finished" 30 o.Swarm.completed_clients;
    Alcotest.(check bool)
      "sessions were re-homed" true
      (o.Swarm.rehomed_sessions > 0)

let test_swarm_validation () =
  let bad cfg what =
    match Swarm.validate cfg with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "expected %s to be rejected" what
  in
  let d = Swarm.default ~n:5 in
  bad { d with Swarm.n = 1 } "n=1";
  bad { d with Swarm.abandon = 1.5 } "abandon > 1";
  bad { d with Swarm.kills = [ (1.0, 9) ] } "kill out of range";
  bad
    { d with Swarm.restarts = [ (1.0, 2) ] }
    "restart without an earlier kill";
  bad
    {
      d with
      Swarm.kills = [ (0.1, 0); (0.1, 1); (0.1, 2); (0.1, 3); (0.1, 4) ];
    }
    "killing every node";
  bad { d with Swarm.protocol = "nope" } "unknown protocol";
  (match Swarm.validate d with
  | Ok () -> ()
  | Error e -> Alcotest.failf "default should validate: %s" e);
  match Sim_swarm.validate { (Sim_swarm.default ~n:5) with Sim_swarm.latency = 0.0 } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "zero latency should be rejected"

(* ---- live swarm (gated, like the heavy cluster scenarios) ---- *)

let test_live_swarm_kill_restart () =
  if not full_enabled then Alcotest.skip ()
  else
    let cfg =
      {
        (Swarm.default ~n:5) with
        Swarm.clients = 60;
        shards = 4;
        rounds = 3;
        think = 0.3;
        lease = 1.0;
        kills = [ (1.0, 1) ];
        restarts = [ (3.0, 1) ];
        timeout = 90.0;
        seed = 5;
      }
    in
    match Swarm.run cfg with
    | Error e -> Alcotest.fail e
    | Ok o ->
      if not (Swarm.ok o) then
        Alcotest.failf "live swarm not clean:@.%a" Swarm.pp_outcome o;
      Alcotest.(check int)
        "all clients finished" 60 o.Swarm.completed_clients;
      Alcotest.(check bool)
        "kill re-homed sessions" true
        (o.Swarm.rehomed_sessions > 0)

let suite =
  [
    Alcotest.test_case "shard map ranges and rotation" `Quick
      test_shard_map_ranges;
    Alcotest.test_case "shard map spread" `Quick test_shard_map_spread;
    Alcotest.test_case "host grant flow" `Quick test_host_grant_flow;
    Alcotest.test_case "host denies unknown session" `Quick
      test_host_denies_unknown_session;
    Alcotest.test_case "host expiry + incarnation voiding" `Quick
      test_host_expiry_and_incarnation;
    Alcotest.test_case "sim swarm clean with abandons" `Quick
      test_sim_swarm_clean;
    Alcotest.test_case "sim swarm deterministic" `Quick
      test_sim_swarm_deterministic;
    Alcotest.test_case "sim swarm kill recovery" `Quick
      test_sim_swarm_kill_recovery;
    Alcotest.test_case "config validation" `Quick test_swarm_validation;
    Alcotest.test_case "live swarm kill+restart (DMX_CLUSTER_FULL)" `Slow
      test_live_swarm_kill_restart;
  ]
