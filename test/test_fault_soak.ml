(* Randomized fault soak: many seeded fault schedules (loss, duplication,
   partitions, delay spikes, crash/recovery pairs) against the FT protocol
   with the heartbeat detector and the reliability layer. Every schedule
   must preserve safety (violations = 0) and liveness (the full execution
   quota completes after partitions heal — no deadlock).

   The schedule count defaults to a quick smoke and is raised in CI via
   DMX_SOAK_SEEDS (the ci fault-soak job runs 50 per coterie). *)

module E = Dmx_sim.Engine
module Net = Dmx_sim.Network
module W = Dmx_sim.Workload
module R = Dmx_baselines.Runner
module B = Dmx_quorum.Builder
module Rng = Dmx_sim.Rng

let seeds =
  match int_of_string_opt (try Sys.getenv "DMX_SOAK_SEEDS" with Not_found -> "")
  with
  | Some s when s > 0 -> s
  | _ -> 12

let quota = 60

(* Derive a deterministic fault schedule from the seed. Crashed sites
   always recover: under the untrusted detector a permanently crashed
   arbiter's lock tenure is never reclaimed (reclaiming on suspicion could
   violate safety), so permanent crashes are an oracle-detector scenario —
   see Ft_delay_optimal's doc. *)
let scenario ~n seed =
  let rng = Rng.create (1_000 + seed) in
  let loss = Rng.float rng 0.08 in
  let dup = if Rng.bool rng then Rng.float rng 0.03 else 0.0 in
  let partitions =
    if Rng.bool rng then begin
      let from_t = 20.0 +. Rng.float rng 20.0 in
      let span = 15.0 +. Rng.float rng 25.0 in
      let cut = 1 + Rng.int rng (n - 1) in
      [
        {
          Net.from_t;
          until = from_t +. span;
          groups = [ List.init cut Fun.id; List.init (n - cut) (fun i -> cut + i) ];
        };
      ]
    end
    else []
  in
  let delay_spikes =
    if Rng.bool rng then [ (10.0 +. Rng.float rng 30.0, 60.0, 2.0) ] else []
  in
  let crashes, recoveries =
    if Rng.bool rng then begin
      let site = Rng.int rng n in
      let at = 15.0 +. Rng.float rng 30.0 in
      ([ (at, site) ], [ (at +. 25.0 +. Rng.float rng 15.0, site) ])
    end
    else ([], [])
  in
  ( { Net.loss; duplication = dup; partitions; delay_spikes },
    crashes,
    recoveries )

let soak kind n () =
  for seed = 1 to seeds do
    let faults, crashes, recoveries = scenario ~n seed in
    let cfg =
      {
        (E.default ~n) with
        seed;
        max_executions = quota;
        warmup = 0;
        cs_duration = 0.5;
        delay = Net.Uniform { lo = 0.5; hi = 1.5 };
        detector = E.Heartbeat { Dmx_sim.Detector.period = 2.0; timeout = 10.0 };
        faults;
        crashes;
        recoveries;
        max_time = 1.0e6;
      }
    in
    let r =
      (R.ft_delay_optimal ~reliability:Dmx_core.Reliable.default
         ~trust_detector:false ~kind ~n ())
        .R.run cfg
    in
    let tag fmt =
      Printf.sprintf
        ("seed %d (loss=%.3f dup=%.3f partitions=%d crashes=%d): " ^^ fmt)
        seed faults.Net.loss faults.Net.duplication
        (List.length faults.Net.partitions)
        (List.length crashes)
    in
    Alcotest.(check int) (tag "violations") 0 r.E.violations;
    Alcotest.(check bool) (tag "deadlocked") false r.E.deadlocked;
    Alcotest.(check int) (tag "quota served") quota r.E.executions
  done

let suite =
  List.map
    (fun (name, kind, n) ->
      Alcotest.test_case
        (Printf.sprintf "%s n=%d x%d schedules" name n seeds)
        `Slow (soak kind n))
    [
      ("tree", B.Tree, 7);
      ("hqc", B.Hqc, 9);
      ("grid-set", B.Grid_set 3, 9);
      ("majority", B.Majority, 7);
    ]
