(* Aggregated alcotest runner for the whole repository. *)

(* The cluster integration tests re-execute this binary as the node
   image (see Dmx_net.Node.env_var); the trampoline must run first. *)
let () = Dmx_net.Node.run_as_child_if_requested ()
let () = Dmx_service.Snode.run_as_child_if_requested ()

let () =
  Alcotest.run "dmx"
    [
      ("rng", Test_rng.suite);
      ("pool", Test_pool.suite);
      ("heap", Test_heap.suite);
      ("event-queue", Test_event_queue.suite);
      ("network", Test_network.suite);
      ("detector", Test_detector.suite);
      ("reliable", Test_reliable.suite);
      ("stats", Test_stats.suite);
      ("timestamp", Test_timestamp.suite);
      ("trace", Test_trace.suite);
      ("workload", Test_workload.suite);
      ("engine", Test_engine.suite);
      ("coterie", Test_coterie.suite);
      ("quorums", Test_quorums.suite);
      ("rw-quorums", Test_rw_quorum.suite);
      ("ts-queue", Test_ts_queue.suite);
      ("delay-optimal", Test_delay_optimal.suite);
      ("model-check", Test_model_check.suite);
      ("protocols", Test_protocols.suite);
      ("paper-claims", Test_paper_claims.suite);
      ("model", Test_model.suite);
      ("snapshot", Test_snapshot.suite);
      ("baselines", Test_baselines.suite);
      ("fault-tolerance", Test_ft.suite);
      ("fault-soak", Test_fault_soak.suite);
      ("oracle", Test_oracle.suite);
      ("golden-replay", Test_golden.suite);
      ("fuzz", Test_fuzz.suite);
      ("live-runtime", Test_live.suite);
      ("obs", Test_obs.suite);
      ("wire", Test_wire.suite);
      ("chaos", Test_chaos.suite);
      ("udp", Test_udp.suite);
      ("cluster", Test_cluster.suite);
      ("lease", Test_lease.suite);
      ("service", Test_service.suite);
    ]
