(* The post-hoc trace oracle: hand-crafted traces exercising each invariant
   (mutex, quorum coverage, coterie intersection, permission custody, FIFO,
   fairness, message bounds, truncation refusal), then real runs of every
   protocol x quorum construction piped through it. *)

module T = Dmx_sim.Trace
module O = Dmx_sim.Oracle
module E = Dmx_sim.Engine
module W = Dmx_sim.Workload
module R = Dmx_baselines.Runner
module B = Dmx_quorum.Builder

let e time site kind = { T.time; site; kind }
let verdict ?(cfg = O.default ~n:4) entries = O.check cfg entries ~truncated:false

let has_violation prefix (v : O.verdict) =
  List.exists
    (fun (x : O.violation) ->
      String.length x.O.what >= String.length prefix
      && String.sub x.O.what 0 (String.length prefix) = prefix)
    v.O.violations

let check_clean label v =
  if not (O.ok v) then
    Alcotest.failf "%s: %a" label O.pp_verdict v

(* ---- hand-crafted traces ---- *)

let test_empty_trace () = check_clean "empty" (verdict [])

let test_mutex_violation () =
  let v =
    verdict
      [
        e 1.0 0 T.Enter_cs;
        e 2.0 1 T.Enter_cs;
        e 3.0 0 T.Exit_cs;
        e 4.0 1 T.Exit_cs;
      ]
  in
  Alcotest.(check bool) "flagged" true (has_violation "MUTEX" v);
  Alcotest.(check int) "exactly one" 1 (List.length v.O.violations)

let test_mutex_sequential_ok () =
  check_clean "sequential tenures"
    (verdict
       [
         e 1.0 0 T.Enter_cs;
         e 2.0 0 T.Exit_cs;
         e 2.0 1 T.Enter_cs;
         e 3.0 1 T.Exit_cs;
       ])

let test_crash_ends_tenure () =
  (* fail-stop inside the CS: the next entry is not a double-entry *)
  check_clean "crash frees the CS"
    (verdict
       [ e 1.0 0 T.Enter_cs; e 2.0 0 T.Crash; e 3.0 1 T.Enter_cs; e 4.0 1 T.Exit_cs ])

let test_quorum_coverage () =
  let missing =
    verdict
      [
        e 0.0 2 (T.Adopt_quorum [ 0; 1 ]);
        e 1.0 2 (T.Acquire { arbiter = 0 });
        e 2.0 2 T.Enter_cs;
      ]
  in
  Alcotest.(check bool) "entry without full quorum flagged" true
    (has_violation "QUORUM" missing);
  check_clean "entry with full quorum"
    (verdict
       [
         e 0.0 2 (T.Adopt_quorum [ 0; 1 ]);
         e 1.0 2 (T.Acquire { arbiter = 0 });
         e 1.5 2 (T.Acquire { arbiter = 1 });
         e 2.0 2 T.Enter_cs;
         e 3.0 2 T.Exit_cs;
       ])

let test_custody_no_duplication () =
  let v =
    verdict
      [ e 1.0 1 (T.Acquire { arbiter = 0 }); e 2.0 2 (T.Acquire { arbiter = 0 }) ]
  in
  Alcotest.(check bool) "second acquisition flagged" true
    (has_violation "CUSTODY" v);
  check_clean "cede before re-acquire"
    (verdict
       [
         e 1.0 1 (T.Acquire { arbiter = 0 });
         e 2.0 1 (T.Cede { arbiter = 0 });
         e 3.0 2 (T.Acquire { arbiter = 0 });
       ])

let test_custody_transfer_chain () =
  (* the delay-optimal direct transfer: holder forwards, successor acquires *)
  check_clean "forward chain conserves the permission"
    (verdict
       [
         e 1.0 1 (T.Acquire { arbiter = 0 });
         e 2.0 1 (T.Forward { arbiter = 0; to_ = 2 });
         e 3.0 2 (T.Acquire { arbiter = 0 });
       ]);
  let v = verdict [ e 1.0 1 (T.Forward { arbiter = 0; to_ = 2 }) ] in
  Alcotest.(check bool) "forwarding without possession flagged" true
    (has_violation "CUSTODY" v)

let test_custody_grant_while_held () =
  let v =
    verdict
      [ e 1.0 1 (T.Acquire { arbiter = 0 }); e 2.0 0 (T.Grant { to_ = 2 }) ]
  in
  Alcotest.(check bool) "double grant flagged" true (has_violation "CUSTODY" v);
  check_clean "grant after cede"
    (verdict
       [
         e 1.0 1 (T.Acquire { arbiter = 0 });
         e 2.0 1 (T.Cede { arbiter = 0 });
         e 3.0 0 (T.Grant { to_ = 2 });
       ])

let test_crash_voids_custody () =
  check_clean "permission of a dead holder is reclaimable"
    (verdict
       [
         e 1.0 1 (T.Acquire { arbiter = 0 });
         e 2.0 1 T.Crash;
         e 3.0 0 (T.Grant { to_ = 2 });
         e 4.0 2 (T.Acquire { arbiter = 0 });
       ])

let test_coterie_intersection () =
  let v =
    verdict
      [ e 1.0 0 (T.Adopt_quorum [ 0; 1 ]); e 2.0 1 (T.Adopt_quorum [ 2; 3 ]) ]
  in
  Alcotest.(check bool) "disjoint quorums flagged" true
    (has_violation "COTERIE" v);
  check_clean "intersecting quorums"
    (verdict
       [ e 1.0 0 (T.Adopt_quorum [ 0; 1 ]); e 2.0 1 (T.Adopt_quorum [ 1; 3 ]) ])

let test_fifo_order () =
  let cfg = O.default ~n:4 in
  let v =
    O.check cfg
      [
        e 1.0 0 (T.Send { dst = 1; msg = "a" });
        e 2.0 0 (T.Send { dst = 1; msg = "b" });
        e 3.0 1 (T.Receive { src = 0; msg = "b" });
        e 4.0 1 (T.Receive { src = 0; msg = "a" });
      ]
      ~truncated:false
  in
  Alcotest.(check bool) "reordered channel flagged" true (has_violation "FIFO" v);
  check_clean "in-order channel"
    (verdict
       [
         e 1.0 0 (T.Send { dst = 1; msg = "a" });
         e 2.0 0 (T.Send { dst = 1; msg = "b" });
         e 3.0 1 (T.Receive { src = 0; msg = "a" });
         e 4.0 1 (T.Receive { src = 0; msg = "b" });
       ])

let test_fifo_tolerates_faults () =
  (* loss leaves a gap; duplication repeats the last delivery: both legal *)
  check_clean "gap from a lost message"
    (verdict
       [
         e 1.0 0 (T.Send { dst = 1; msg = "a" });
         e 2.0 0 (T.Send { dst = 1; msg = "b" });
         e 3.0 1 (T.Receive { src = 0; msg = "b" });
       ]);
  check_clean "stutter from a duplicated message"
    (verdict
       [
         e 1.0 0 (T.Send { dst = 1; msg = "a" });
         e 2.0 1 (T.Receive { src = 0; msg = "a" });
         e 3.0 1 (T.Receive { src = 0; msg = "a" });
       ])

let test_fairness_bound () =
  let cfg = { (O.default ~n:4) with O.max_overtake = Some 1 } in
  let overtake_twice =
    [
      e 0.0 0 T.Request;
      e 1.0 1 T.Request;
      e 2.0 1 T.Enter_cs;
      e 3.0 1 T.Exit_cs;
      e 4.0 1 T.Request;
      e 5.0 1 T.Enter_cs;
      e 6.0 1 T.Exit_cs;
    ]
  in
  let v = O.check cfg overtake_twice ~truncated:false in
  Alcotest.(check bool) "second overtake exceeds bound 1" true
    (has_violation "FAIRNESS" v);
  (* one overtake is within the bound *)
  let v1 =
    O.check cfg
      [
        e 0.0 0 T.Request;
        e 1.0 1 T.Request;
        e 2.0 1 T.Enter_cs;
        e 3.0 1 T.Exit_cs;
        e 4.0 0 T.Enter_cs;
        e 5.0 0 T.Exit_cs;
      ]
      ~truncated:false
  in
  check_clean "single overtake within bound" v1

let test_message_bound () =
  let cfg = { (O.default ~n:4) with O.bound_per_cs = Some 1.0 } in
  let v =
    O.check cfg
      [
        e 0.0 0 (T.Send { dst = 1; msg = "a" });
        e 0.5 0 (T.Send { dst = 2; msg = "b" });
        e 1.0 0 T.Enter_cs;
        e 2.0 0 T.Exit_cs;
      ]
      ~truncated:false
  in
  Alcotest.(check bool) "2 messages for 1 CS exceeds bound 1" true
    (has_violation "BOUND" v)

let test_truncated_never_ok () =
  (* a clipped trace proves nothing: no violations, but not a pass either *)
  let v = O.check (O.default ~n:4) [ e 1.0 0 T.Enter_cs ] ~truncated:true in
  Alcotest.(check int) "nothing flagged" 0 (List.length v.O.violations);
  Alcotest.(check bool) "truncated recorded" true v.O.truncated;
  Alcotest.(check bool) "not ok" false (O.ok v)

(* ---- every protocol x quorum construction through the oracle ---- *)

let run_and_check ~algo ~kind ~n () =
  let runner =
    match R.of_algo ?kind algo ~n with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let cfg =
    {
      (E.default ~n) with
      seed = 11;
      max_executions = 40;
      warmup = 0;
      cs_duration = 1.0;
      delay = Dmx_sim.Network.Uniform { lo = 0.5; hi = 1.5 };
      workload = W.Saturated { contenders = n };
      max_time = 1.0e9;
    }
  in
  let sink = T.create ~enabled:true ~capacity:2_000_000 () in
  let r = runner.R.run_traced ~trace_sink:sink cfg in
  Alcotest.(check int) "engine violations" 0 r.E.violations;
  Alcotest.(check bool) "deadlocked" false r.E.deadlocked;
  let k =
    match kind with
    | Some kind -> (B.size_stats (B.req_sets kind ~n)).B.k_max
    | None -> n
  in
  let ocfg =
    {
      (O.default ~n) with
      O.max_overtake = O.fairness_bound ~algo ~n;
      bound_per_cs = O.expected_bound ~algo ~n ~k O.Heavy;
    }
  in
  let v = O.check_trace ocfg sink in
  check_clean (Printf.sprintf "%s/%s" algo runner.R.variant) v

let quorum_cases =
  (* the six constructions of the quorum chapter, each at a size it supports *)
  [
    (B.Grid, 9);
    (B.Fpp, 7);
    (B.Tree, 7);
    (B.Majority, 7);
    (B.Hqc, 9);
    (B.Star, 8);
  ]

let protocol_cases =
  List.concat_map
    (fun algo -> List.map (fun (k, n) -> (algo, Some k, n)) quorum_cases)
    [ "delay-optimal"; "ft-delay-optimal"; "maekawa" ]
  @ List.map
      (fun algo -> (algo, None, 9))
      [
        "lamport";
        "ricart-agrawala";
        "singhal-dynamic";
        "suzuki-kasami";
        "singhal-heuristic";
        "raymond";
      ]

let sweep_tests =
  List.map
    (fun (algo, kind, n) ->
      let label =
        match kind with
        | Some k -> Printf.sprintf "%s %s n=%d" algo (B.kind_name k) n
        | None -> Printf.sprintf "%s n=%d" algo n
      in
      Alcotest.test_case label `Quick (run_and_check ~algo ~kind ~n))
    protocol_cases

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("empty trace", test_empty_trace);
      ("mutex violation", test_mutex_violation);
      ("mutex sequential ok", test_mutex_sequential_ok);
      ("crash ends tenure", test_crash_ends_tenure);
      ("quorum coverage at entry", test_quorum_coverage);
      ("custody: no duplication", test_custody_no_duplication);
      ("custody: transfer chain", test_custody_transfer_chain);
      ("custody: grant while held", test_custody_grant_while_held);
      ("custody: crash voids possession", test_crash_voids_custody);
      ("coterie intersection", test_coterie_intersection);
      ("fifo order", test_fifo_order);
      ("fifo tolerates loss and dup", test_fifo_tolerates_faults);
      ("fairness bound", test_fairness_bound);
      ("message bound", test_message_bound);
      ("truncated trace never passes", test_truncated_never_ok);
    ]
  @ sweep_tests
