(* Timestamps: priority order, the (max,max) sentinel, Lamport clocks. *)

module Ts = Dmx_sim.Timestamp

let ts sn site = { Ts.sn; site }

let test_priority_order () =
  Alcotest.(check bool) "smaller sn wins" true Ts.(ts 1 5 < ts 2 0);
  Alcotest.(check bool) "tie: smaller site wins" true Ts.(ts 3 1 < ts 3 2);
  Alcotest.(check bool) "reflexive equal" true (Ts.equal (ts 4 4) (ts 4 4));
  Alcotest.(check bool) "gt" true Ts.(ts 9 0 > ts 1 9)

let test_infinity () =
  Alcotest.(check bool) "inf is inf" true (Ts.is_infinity Ts.infinity);
  Alcotest.(check bool) "real ts is not" false (Ts.is_infinity (ts 1 1));
  Alcotest.(check bool) "everything beats inf" true Ts.(ts max_int 0 < Ts.infinity)

let test_compare_consistency () =
  let a = ts 2 3 and b = ts 2 4 in
  Alcotest.(check bool) "antisymmetric" true
    (Ts.compare a b = -Ts.compare b a);
  Alcotest.(check int) "equal compares 0" 0 (Ts.compare a a)

let test_pp () =
  Alcotest.(check string) "regular" "(3,7)" (Format.asprintf "%a" Ts.pp (ts 3 7));
  Alcotest.(check string) "infinity" "(max,max)"
    (Format.asprintf "%a" Ts.pp Ts.infinity)

let test_clock_monotone () =
  let c = Ts.Clock.create () in
  let t1 = Ts.Clock.next c ~site:0 in
  let t2 = Ts.Clock.next c ~site:0 in
  Alcotest.(check bool) "strictly increasing" true (t2.Ts.sn > t1.Ts.sn)

let test_clock_observe () =
  let c = Ts.Clock.create () in
  Ts.Clock.observe c (ts 10 3);
  let t = Ts.Clock.next c ~site:0 in
  Alcotest.(check bool) "jumps past observed" true (t.Ts.sn > 10);
  (* observing an older value must not move the clock backwards *)
  Ts.Clock.observe c (ts 2 1);
  Alcotest.(check bool) "no regression" true (Ts.Clock.current c >= 11)

let test_clock_ignores_infinity () =
  let c = Ts.Clock.create () in
  Ts.Clock.observe c Ts.infinity;
  Alcotest.(check int) "unchanged" 0 (Ts.Clock.current c)

let qcheck_total_order =
  let gen = QCheck.(pair (pair small_nat small_nat) (pair small_nat small_nat)) in
  QCheck.Test.make ~name:"timestamp order is total and transitive-ish" ~count:500 gen
    (fun ((a1, a2), (b1, b2)) ->
      let a = ts a1 a2 and b = ts b1 b2 in
      let c = Ts.compare a b in
      (c = 0) = (a1 = b1 && a2 = b2)
      && (c < 0) = (a1 < b1 || (a1 = b1 && a2 < b2)))

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("priority order", test_priority_order);
      ("infinity sentinel", test_infinity);
      ("compare consistency", test_compare_consistency);
      ("pretty printing", test_pp);
      ("clock monotone", test_clock_monotone);
      ("clock observes", test_clock_observe);
      ("clock ignores infinity", test_clock_ignores_infinity);
    ]
  @ [ QCheck_alcotest.to_alcotest qcheck_total_order ]
