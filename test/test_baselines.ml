(* Per-baseline behaviours beyond the shared safety/liveness matrix. *)

module E = Dmx_sim.Engine
module H = Harness
module W = Dmx_sim.Workload
module S = Dmx_sim.Stats.Summary
module SD = Dmx_baselines.Singhal_dynamic
module RY = Dmx_baselines.Raymond

let test_lamport_message_kinds () =
  let r = H.run_clean (H.lamport ~n:5) (H.heavy ~execs:60 5) in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " present") true
        (List.mem_assoc k r.E.messages_by_kind))
    [ "request"; "reply"; "release" ];
  (* exactly N-1 of each per CS *)
  Alcotest.(check (float 0.5)) "3(N-1)" 12.0 r.E.messages_per_cs

let test_ricart_agrawala_heavy_count () =
  let r = H.run_clean (H.ricart_agrawala ~n:5) (H.heavy ~execs:60 5) in
  Alcotest.(check (float 0.5)) "2(N-1)" 8.0 r.E.messages_per_cs

let test_suzuki_kasami_bounded_by_n () =
  let n = 7 in
  let r = H.run_clean (H.suzuki_kasami ~n) (H.heavy ~execs:100 n) in
  Alcotest.(check bool)
    (Printf.sprintf "msgs <= N (got %.2f)" r.E.messages_per_cs)
    true
    (r.E.messages_per_cs <= float_of_int n +. 0.2)

let test_suzuki_kasami_token_travels () =
  let n = 5 in
  let r = H.run_clean (H.suzuki_kasami ~n) (H.heavy ~execs:60 n) in
  Alcotest.(check bool) "token messages flow" true
    (List.mem_assoc "token" r.E.messages_by_kind)

let test_raymond_chain_slower_than_tree () =
  (* Under saturation Raymond's token hops one edge per CS regardless of
     topology, so the topology cost shows at LIGHT load: the token must
     walk from wherever it rests to the requester. Compare response
     times. *)
  let n = 15 in
  let run config =
    let module M = E.Make (RY) in
    let r = M.run (H.light ~execs:50 n) config in
    Alcotest.(check int) "safe" 0 r.E.violations;
    r
  in
  let tree = run (RY.binary_tree ~n) in
  let chain = run (RY.chain ~n) in
  Alcotest.(check bool)
    (Printf.sprintf "chain response %.2f > tree response %.2f"
       (S.mean chain.E.response_time)
       (S.mean tree.E.response_time))
    true
    (S.mean chain.E.response_time > S.mean tree.E.response_time)

let test_raymond_messages_logarithmic () =
  (* binary tree of 63 sites: ~2·depth messages per CS, far below N *)
  let n = 63 in
  let r = H.run_clean (H.raymond ~n) (H.heavy ~execs:100 n) in
  Alcotest.(check bool)
    (Printf.sprintf "msgs %.2f well below N" r.E.messages_per_cs)
    true
    (r.E.messages_per_cs < 16.0)

let test_singhal_staircase_initial_sets () =
  (* site i initially consults exactly 0..i-1 *)
  let n = 6 in
  let module M = E.Make (SD) in
  let captured = Array.make n [] in
  let _ =
    M.run
      ~inspect:(fun site st -> captured.(site) <- SD.Internal.r_set st)
      {
        (E.default ~n) with
        workload = W.Burst { requesters = []; at = 0.0 };
        max_executions = 1;
        warmup = 0;
        max_time = 1.0;
      }
      ()
  in
  Array.iteri
    (fun i r_set ->
      Alcotest.(check (list int))
        (Printf.sprintf "site %d initial r_set" i)
        (List.init i Fun.id) r_set)
    captured

let test_singhal_pairwise_invariant_after_run () =
  (* safety invariant: every pair of sites, one consults the other *)
  let n = 7 in
  let module M = E.Make (SD) in
  let sets = Array.make n [] in
  let r =
    M.run
      ~inspect:(fun site st -> sets.(site) <- SD.Internal.r_set st)
      (H.heavy ~execs:80 n) ()
  in
  Alcotest.(check int) "safe" 0 r.E.violations;
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      Alcotest.(check bool)
        (Printf.sprintf "pair (%d,%d) covered" i j)
        true
        (List.mem j sets.(i) || List.mem i sets.(j))
    done
  done

let test_singhal_hot_site_sheds_messages () =
  (* a single repeat requester ends up asking almost nobody *)
  let n = 8 in
  let module M = E.Make (SD) in
  let r =
    M.run
      {
        (E.default ~n) with
        workload = W.Saturated { contenders = 1 };
        max_executions = 40;
        warmup = 20;
      }
      ()
  in
  Alcotest.(check (float 0.01)) "steady-state messages ~ 0" 0.0
    r.E.messages_per_cs

let test_singhal_heuristic_staircase_init () =
  (* site i initially consults exactly the lower-numbered sites *)
  let n = 6 in
  let module SH = Dmx_baselines.Singhal_heuristic in
  let module M = E.Make (SH) in
  let captured = Array.make n [] in
  let _ =
    M.run
      ~inspect:(fun site st -> captured.(site) <- SH.Internal.heuristic_set st)
      {
        (E.default ~n) with
        workload = W.Burst { requesters = []; at = 0.0 };
        max_executions = 1;
        warmup = 0;
        max_time = 1.0;
      }
      ()
  in
  Array.iteri
    (fun i set ->
      Alcotest.(check (list int))
        (Printf.sprintf "site %d initial heuristic set" i)
        (List.init i Fun.id) set)
    captured

let test_singhal_heuristic_bounded_by_n () =
  let n = 9 in
  let r = H.run_clean (H.singhal_heuristic ~n) (H.heavy ~execs:150 n) in
  Alcotest.(check bool)
    (Printf.sprintf "msgs <= N (got %.2f)" r.E.messages_per_cs)
    true
    (r.E.messages_per_cs <= float_of_int n +. 0.2);
  Alcotest.(check (float 0.05)) "sync = T" 1.0 (S.mean r.E.sync_delay)

let test_singhal_heuristic_hot_site_free () =
  (* a repeat requester that holds the token pays nothing *)
  let n = 8 in
  let module SH = Dmx_baselines.Singhal_heuristic in
  let module M = E.Make (SH) in
  let r =
    M.run
      {
        (E.default ~n) with
        workload = W.Saturated { contenders = 1 };
        max_executions = 40;
        warmup = 10;
      }
      ()
  in
  Alcotest.(check (float 0.01)) "token stays, zero messages" 0.0
    r.E.messages_per_cs

let test_singhal_heuristic_beats_broadcast_at_light_load () =
  (* the whole point of the heuristic: fewer than N-1 requests when the
     state vectors have learned the traffic pattern *)
  let n = 25 in
  let r = H.run_clean (H.singhal_heuristic ~n) (H.light ~execs:60 n) in
  Alcotest.(check bool)
    (Printf.sprintf "light-load msgs %.1f < N" r.E.messages_per_cs)
    true
    (r.E.messages_per_cs < float_of_int n)

let test_maekawa_handoff_is_release_then_reply () =
  let n = 9 in
  let r = H.run_clean (H.maekawa ~n) { (H.heavy ~execs:100 n) with cs_duration = 2.0 } in
  Alcotest.(check (float 1e-6)) "min handoff 2T" 2.0 (S.min r.E.sync_delay);
  Alcotest.(check bool) "release messages present" true
    (List.mem_assoc "release" r.E.messages_by_kind)

let test_maekawa_inquire_yield_under_inversion () =
  (* inversions need stale clocks: moderate Poisson load, random delays *)
  let n = 9 in
  let cfg =
    {
      (E.default ~n) with
      workload = W.Poisson { rate_per_site = 0.02 };
      delay = Dmx_sim.Network.Exponential { mean = 1.0 };
      max_executions = 400;
      warmup = 0;
      cs_duration = 0.5;
      seed = 3;
      max_time = 1.0e7;
    }
  in
  let r = H.run_clean (H.maekawa ~n) cfg in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " present") true
        (List.mem_assoc k r.E.messages_by_kind))
    [ "inquire"; "yield"; "fail" ]

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("lamport kinds and count", test_lamport_message_kinds);
      ("ricart-agrawala heavy count", test_ricart_agrawala_heavy_count);
      ("suzuki-kasami bounded by N", test_suzuki_kasami_bounded_by_n);
      ("suzuki-kasami token travels", test_suzuki_kasami_token_travels);
      ("raymond: chain slower than tree", test_raymond_chain_slower_than_tree);
      ("raymond: logarithmic messages", test_raymond_messages_logarithmic);
      ("singhal: initial staircase", test_singhal_staircase_initial_sets);
      ("singhal: pairwise invariant", test_singhal_pairwise_invariant_after_run);
      ("singhal: hot site sheds messages", test_singhal_hot_site_sheds_messages);
      ("singhal-heuristic: staircase init", test_singhal_heuristic_staircase_init);
      ("singhal-heuristic: bounded by N", test_singhal_heuristic_bounded_by_n);
      ("singhal-heuristic: hot site free", test_singhal_heuristic_hot_site_free);
      ( "singhal-heuristic: beats broadcast at light load",
        test_singhal_heuristic_beats_broadcast_at_light_load );
      ("maekawa: 2T handoff", test_maekawa_handoff_is_release_then_reply);
      ("maekawa: inquire/yield exercised", test_maekawa_inquire_yield_under_inversion);
    ]
