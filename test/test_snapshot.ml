(* The dependency-free JSON reader and the dmx-bench/1 snapshot
   validator: schema versioning, missing/mistyped fields, unknown-field
   warnings, corrupt-input rejection, and the consistency audit. *)

module J = Dmx_model.Json
module S = Dmx_model.Snapshot

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* replace the first occurrence of [needle] in [hay] with [sub] *)
let replace_once hay needle sub =
  let nh = String.length hay and nn = String.length needle in
  let rec find i =
    if i + nn > nh then Alcotest.fail ("replace_once: no " ^ needle)
    else if String.sub hay i nn = needle then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub hay 0 i ^ sub ^ String.sub hay (i + nn) (nh - i - nn)

let err = function
  | Error e -> e
  | Ok _ -> Alcotest.fail "parse unexpectedly succeeded"

let ok_snap = function
  | Ok (snap, warnings) -> (snap, warnings)
  | Error e -> Alcotest.fail ("parse failed: " ^ e)

(* ---- the JSON reader ---- *)

let test_json_values () =
  let p s = match J.parse s with
    | Ok v -> v
    | Error e -> Alcotest.fail (s ^ ": " ^ e)
  in
  Alcotest.(check bool) "null" true (p " null " = J.Null);
  Alcotest.(check bool) "bools" true
    (p "[true,false]" = J.List [ J.Bool true; J.Bool false ]);
  Alcotest.(check bool) "numbers" true
    (p "[0, -1.5, 2e3, 1.25e-2]"
     = J.List [ J.Number 0.0; J.Number (-1.5); J.Number 2000.0;
                J.Number 0.0125 ]);
  Alcotest.(check bool) "escapes" true
    (p {|"a\"b\\c\nd\tA"|} = J.String "a\"b\\c\nd\tA");
  Alcotest.(check bool) "nested object" true
    (p {|{"a":{"b":[1]},"c":""}|}
     = J.Obj [ ("a", J.Obj [ ("b", J.List [ J.Number 1.0 ]) ]);
               ("c", J.String "") ])

let test_json_rejects_bad_input () =
  let rejects name s sub =
    let e = err (J.parse s) in
    Alcotest.(check bool) (name ^ ": offset cited") true (contains e "offset");
    Alcotest.(check bool) (name ^ ": " ^ sub) true (contains e sub)
  in
  rejects "empty" "" "unexpected end of input";
  rejects "truncated object" {|{"a": 1|} "unterminated object";
  rejects "truncated string" {|"abc|} "unterminated string";
  rejects "bad escape" {|"\q"|} "escape";
  rejects "trailing garbage" "1 x" "trailing";
  rejects "bare word" "flase" "bad literal";
  rejects "missing colon" {|{"a" 1}|} "expected ':'"

(* ---- snapshot parsing ---- *)

let base_doc =
  {|{
  "schema": "dmx-bench/1",
  "quick": true,
  "jobs": 2,
  "experiments": [
    { "name": "table1", "wall_s": 0.5, "events": 1000,
      "events_per_sec": 2000.0, "ok": true },
    { "name": "light-load", "wall_s": 0.25, "events": 500,
      "events_per_sec": 2000.0, "ok": true }
  ],
  "total_wall_s": 0.75,
  "peak_heap_words": 120000,
  "oracle_rejected": 0
}|}

let test_snapshot_roundtrip () =
  let snap, warnings = ok_snap (S.parse base_doc) in
  Alcotest.(check (list string)) "no warnings" [] warnings;
  Alcotest.(check string) "schema" S.schema_version snap.S.schema;
  Alcotest.(check int) "jobs" 2 snap.S.jobs;
  Alcotest.(check int) "experiments" 2 (List.length snap.S.experiments);
  let e = List.hd snap.S.experiments in
  Alcotest.(check string) "name" "table1" e.S.name;
  Alcotest.(check int) "events" 1000 e.S.events;
  Alcotest.(check (list string)) "consistent" [] (S.consistency snap)

let test_snapshot_wrong_schema () =
  let e =
    err (S.parse (replace_once base_doc {|"dmx-bench/1"|} {|"dmx-bench/9"|}))
  in
  Alcotest.(check bool) "names the version" true (contains e "dmx-bench/9");
  Alcotest.(check bool) "says what it understands" true
    (contains e "this tool understands \"dmx-bench/1\"")

let test_snapshot_missing_field () =
  (* drop total_wall_s entirely *)
  let doc = replace_once base_doc "\"total_wall_s\": 0.75,\n" "" in
  let e = err (S.parse doc) in
  Alcotest.(check bool) "missing named" true
    (contains e {|missing field "total_wall_s"|})

let test_snapshot_wrong_type () =
  let e = err (S.parse (replace_once base_doc {|"quick": true|} {|"quick": "yes"|})) in
  Alcotest.(check bool) "type named" true
    (contains e {|field "quick" must be a boolean|})

let test_snapshot_unknown_field_warns () =
  let doc =
    replace_once base_doc "\"quick\": true,"
      "\"quick\": true,\n  \"future_field\": 1,"
  in
  let snap, warnings = ok_snap (S.parse doc) in
  Alcotest.(check int) "still parses" 2 (List.length snap.S.experiments);
  match warnings with
  | [ w ] ->
    Alcotest.(check bool) "warns by name" true
      (contains w {|unknown field "future_field"|});
    Alcotest.(check bool) "says ignored" true (contains w "ignored")
  | l -> Alcotest.fail (Printf.sprintf "expected 1 warning, got %d" (List.length l))

let test_snapshot_truncated_rejected () =
  let doc = String.sub base_doc 0 120 in
  let e = err (S.parse doc) in
  Alcotest.(check bool) "flagged as JSON-level" true
    (contains e "not valid JSON");
  Alcotest.(check bool) "offset cited" true (contains e "offset")

let test_snapshot_not_json_rejected () =
  let e = err (S.parse "algorithm,variant,n\ndelay-optimal,grid,9\n") in
  Alcotest.(check bool) "rejected cleanly" true (contains e "not valid JSON")

(* ---- consistency audit ---- *)

let parsed doc = fst (ok_snap (S.parse doc))

let test_consistency_flags_failures () =
  let snap = parsed (replace_once base_doc {|"ok": true },|} {|"ok": false },|}) in
  (match S.consistency snap with
  | [ issue ] ->
    Alcotest.(check bool) "names the experiment" true (contains issue "table1")
  | l -> Alcotest.fail (Printf.sprintf "expected 1 issue, got %d" (List.length l)));
  let snap = parsed (replace_once base_doc {|"oracle_rejected": 0|} {|"oracle_rejected": 3|}) in
  Alcotest.(check bool) "oracle rejections flagged" true
    (List.exists (fun i -> contains i "oracle") (S.consistency snap))

let test_consistency_flags_derived_field_drift () =
  (* events_per_sec recorded as 2000 but events/wall_s says 4000 *)
  let doc =
    replace_once base_doc {|"wall_s": 0.5, "events": 1000|}
      {|"wall_s": 0.25, "events": 1000|}
  in
  let issues = S.consistency (parsed doc) in
  Alcotest.(check bool) "drift flagged" true
    (List.exists (fun i -> contains i "events_per_sec") issues)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("json: values round-trip", test_json_values);
      ("json: bad input rejected with offsets", test_json_rejects_bad_input);
      ("snapshot: well-formed round-trip", test_snapshot_roundtrip);
      ("snapshot: unknown schema version", test_snapshot_wrong_schema);
      ("snapshot: missing field", test_snapshot_missing_field);
      ("snapshot: mistyped field", test_snapshot_wrong_type);
      ("snapshot: unknown field warns", test_snapshot_unknown_field_warns);
      ("snapshot: truncated file rejected", test_snapshot_truncated_rejected);
      ("snapshot: non-JSON rejected", test_snapshot_not_json_rejected);
      ("consistency: failed experiments flagged", test_consistency_flags_failures);
      ("consistency: derived-field drift flagged", test_consistency_flags_derived_field_drift);
    ]
