(* Golden deterministic-replay tests: one pinned seed per protocol. The
   same schedule must produce bit-identical reports on every run — and
   after a serialization round-trip through the .dmxrepro format, whose
   hex-float encoding exists precisely so this holds. The fingerprint uses
   %h so even last-ulp drift in the statistics would be caught. *)

module E = Dmx_sim.Engine
module Net = Dmx_sim.Network
module S = Dmx_sim.Stats.Summary
module Sch = Dmx_sim.Schedule
module R = Dmx_baselines.Runner

let fp (r : E.report) =
  Printf.sprintf
    "%s execs=%d msgs=%d sync=%h sync99=%h resp=%h tput=%h viol=%d dead=%b \
     retx=%d pending=%d"
    r.E.protocol r.E.executions r.E.total_messages (S.mean r.E.sync_delay)
    (S.percentile r.E.sync_delay 99.0)
    (S.mean r.E.response_time) r.E.throughput r.E.violations r.E.deadlocked
    r.E.retransmissions r.E.pending_at_end

let fp_of (s : Sch.t) =
  match R.run_schedule s with
  | Error e -> Alcotest.fail e
  | Ok (r, _) -> fp r

let check_deterministic label s =
  let a = fp_of s in
  let b = fp_of s in
  Alcotest.(check string) (label ^ ": bit-identical rerun") a b;
  match Sch.of_string (Sch.to_string s) with
  | Error e -> Alcotest.failf "%s: round-trip: %s" label e
  | Ok s' ->
    Alcotest.(check bool) (label ^ ": schedule round-trips exactly") true
      (s' = s);
    Alcotest.(check string)
      (label ^ ": bit-identical after serialization")
      a (fp_of s')

let golden (algo, quorum, n, seed) () =
  check_deterministic algo
    {
      (Sch.default ~algo ~n) with
      Sch.quorum;
      seed;
      execs = 40;
      cs = 0.7;
      delay = Net.Uniform { lo = 0.5; hi = 1.5 };
    }

let golden_cases =
  [
    ("delay-optimal", "grid", 9, 101);
    ("ft-delay-optimal", "tree", 7, 202);
    ("maekawa", "grid", 9, 303);
    ("lamport", "", 8, 404);
    ("ricart-agrawala", "", 8, 505);
    ("singhal-dynamic", "", 8, 606);
    ("suzuki-kasami", "", 8, 707);
    ("singhal-heuristic", "", 8, 808);
    ("raymond", "", 8, 909);
  ]

let test_golden_faulty () =
  (* the full fault machinery: loss, duplication, a healing partition, a
     delay spike, crash + recovery, heartbeat detection, retry/ack layer *)
  check_deterministic "ft-delay-optimal (faulty)"
    {
      (Sch.default ~algo:"ft-delay-optimal" ~n:7) with
      Sch.quorum = "tree";
      seed = 77;
      execs = 50;
      cs = 0.5;
      delay = Net.Uniform { lo = 0.5; hi = 1.5 };
      faults =
        {
          Net.loss = 0.05;
          duplication = 0.02;
          partitions =
            [
              {
                Net.from_t = 20.0;
                until = 45.0;
                groups = [ [ 0; 1; 2 ]; [ 3; 4; 5; 6 ] ];
              };
            ];
          delay_spikes = [ (10.0, 30.0, 2.0) ];
        };
      crashes = [ (30.0, 1) ];
      recoveries = [ (55.0, 1) ];
      detector = E.Heartbeat { Dmx_sim.Detector.period = 2.0; timeout = 10.0 };
      reliability = true;
    }

let test_minimal_file_defaults () =
  (* A hand-written reproducer that omits `workload` must mean "saturated,
     all sites" — the n-dependent default is re-derived after parsing, not
     frozen at the parser's n=0 seed. *)
  match Sch.of_string "dmxrepro v1\nalgo delay-optimal\nn 4\nexecs 5\n" with
  | Error e -> Alcotest.fail e
  | Ok s ->
    Alcotest.(check bool) "saturated all sites" true
      (s.Sch.workload = Dmx_sim.Workload.Saturated { contenders = 4 })

let test_huge_n_needs_explicit_workload () =
  (* the saturated-all default is a trap at huge N: it would instantiate
     every one of the million sites. The parser must reject it with a
     pointer at the fix, and accept the same file once a lazy-compatible
     workload line is present. *)
  (match Sch.of_string "dmxrepro v1\nalgo delay-optimal\nn 1000000\nexecs 5\n" with
  | Ok _ -> Alcotest.fail "huge-n schedule without workload must not parse"
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "error names the fix: %s" e)
      true
      (let contains hay needle =
         let nh = String.length hay and nn = String.length needle in
         let rec go i =
           i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
         in
         go 0
       in
       contains e "open-loop"));
  match
    Sch.of_string
      "dmxrepro v1\nalgo delay-optimal\nn 1000000\nexecs 5\nworkload \
       open-loop 8 0x1.4p-11\n"
  with
  | Error e -> Alcotest.fail e
  | Ok s ->
    Alcotest.(check bool) "open-loop parsed" true
      (s.Sch.workload
      = Dmx_sim.Workload.Open_loop { active = 8; rate_per_site = 0x1.4p-11 });
    (* and the lazy-compatible form round-trips bit-exactly like the rest *)
    (match Sch.of_string (Sch.to_string s) with
    | Error e -> Alcotest.fail e
    | Ok s' -> Alcotest.(check bool) "round-trips" true (s = s'))

let suite =
  List.map
    (fun ((algo, quorum, _, _) as case) ->
      let label =
        if quorum = "" then algo else Printf.sprintf "%s (%s)" algo quorum
      in
      Alcotest.test_case label `Quick (golden case))
    golden_cases
  @ [
      Alcotest.test_case "ft-delay-optimal under faults" `Quick
        test_golden_faulty;
      Alcotest.test_case "minimal .dmxrepro gets saturated-all default" `Quick
        test_minimal_file_defaults;
      Alcotest.test_case "huge-n .dmxrepro needs an explicit workload" `Quick
        test_huge_n_needs_explicit_workload;
    ]
