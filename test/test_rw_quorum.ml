(* Read/write quorums for replica control (paper Section 7). *)

module RW = Dmx_quorum.Rw_quorum

let schemes = [ RW.Rowa; RW.Majority_rw; RW.Grid_rw; RW.Tree_rw ]

let test_validate_all_schemes () =
  List.iter
    (fun scheme ->
      List.iter
        (fun n ->
          match RW.validate (RW.create scheme ~n) with
          | Ok () -> ()
          | Error e ->
            Alcotest.fail
              (Printf.sprintf "%s n=%d: %s" (RW.scheme_name scheme) n e))
        [ 1; 2; 3; 5; 9; 12; 16; 20; 25; 31 ])
    schemes

let test_rowa_shape () =
  let t = RW.create RW.Rowa ~n:7 in
  Alcotest.(check (float 1e-9)) "read size 1" 1.0 (RW.read_size t);
  Alcotest.(check (float 1e-9)) "write size N" 7.0 (RW.write_size t)

let test_majority_sizes () =
  let t = RW.create RW.Majority_rw ~n:9 in
  (* w = 5, r = 5 for odd n; r + w = 10 > 9 *)
  Alcotest.(check (float 1e-9)) "write majority" 5.0 (RW.write_size t);
  Alcotest.(check (float 1e-9)) "read complement" 5.0 (RW.read_size t);
  let t = RW.create RW.Majority_rw ~n:10 in
  Alcotest.(check (float 1e-9)) "even write" 6.0 (RW.write_size t);
  Alcotest.(check (float 1e-9)) "even read" 5.0 (RW.read_size t)

let test_grid_reads_cheaper () =
  let t = RW.create RW.Grid_rw ~n:25 in
  Alcotest.(check bool) "reads cheaper than writes" true
    (RW.read_size t < RW.write_size t);
  Alcotest.(check (float 1e-9)) "read = one row" 5.0 (RW.read_size t)

let test_rowa_availability () =
  let t = RW.create RW.Rowa ~n:5 in
  (* read survives any single site; write needs everyone *)
  let up = [| true; false; true; true; true |] in
  Alcotest.(check bool) "read ok" true (RW.read_available t ~up);
  Alcotest.(check bool) "write blocked" false (RW.write_available t ~up)

let test_read_write_tradeoff () =
  (* at fixed p, cheaper reads are more available than writes, and ROWA
     reads beat everything *)
  let p_up = 0.8 in
  let avail scheme =
    RW.availability (RW.create scheme ~n:16) ~p_up ~trials:10_000 ~seed:3
  in
  let rowa_r, rowa_w = avail RW.Rowa in
  let maj_r, maj_w = avail RW.Majority_rw in
  let grid_r, grid_w = avail RW.Grid_rw in
  Alcotest.(check bool) "rowa reads ~1" true (rowa_r > 0.999);
  Alcotest.(check bool) "rowa writes fragile" true (rowa_w < maj_w);
  Alcotest.(check bool) "reads >= writes (majority)" true (maj_r >= maj_w -. 0.02);
  Alcotest.(check bool) "reads >= writes (grid)" true (grid_r >= grid_w -. 0.02)

let qcheck_gifford_invariant =
  (* simulate versioned writes through write quorums and reads through
     read quorums: a read must always observe the newest version *)
  let arb =
    QCheck.make
      ~print:(fun (s, n, ops) ->
        Printf.sprintf "%s n=%d ops=%d"
          (RW.scheme_name (List.nth schemes s))
          n (List.length ops))
      QCheck.Gen.(
        let* s = 0 -- (List.length schemes - 1) in
        let* n = 2 -- 20 in
        let* ops = list_size (5 -- 40) (pair (0 -- 19) bool) in
        return (s, n, ops))
  in
  QCheck.Test.make ~name:"reads see the newest committed write" ~count:200 arb
    (fun (s, n, ops) ->
      let t = RW.create (List.nth schemes s) ~n in
      let version = Array.make n 0 in
      let latest = ref 0 in
      List.for_all
        (fun (site, is_write) ->
          let site = site mod n in
          if is_write then begin
            incr latest;
            List.iter (fun rep -> version.(rep) <- !latest) t.RW.writes.(site);
            true
          end
          else begin
            let seen =
              List.fold_left (fun acc rep -> max acc version.(rep)) 0
                t.RW.reads.(site)
            in
            seen = !latest
          end)
        ops)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("all schemes validate", test_validate_all_schemes);
      ("rowa shape", test_rowa_shape);
      ("majority r/w sizes", test_majority_sizes);
      ("grid reads cheaper", test_grid_reads_cheaper);
      ("rowa availability asymmetry", test_rowa_availability);
      ("read/write availability tradeoff", test_read_write_tradeoff);
    ]
  @ [ QCheck_alcotest.to_alcotest qcheck_gifford_invariant ]
