(* White-box tests of the delay-optimal protocol: end-of-run state
   invariants, transfer mechanics, message-kind coverage, and the
   adversarial races that motivated the DESIGN.md reconstruction notes. *)

module E = Dmx_sim.Engine
module DO = Dmx_core.Delay_optimal
module I = DO.Internal
module Ts = Dmx_sim.Timestamp
module W = Dmx_sim.Workload
module Net = Dmx_sim.Network
module Eng = E.Make (DO)

let grid_sets n = Dmx_quorum.Builder.req_sets Grid ~n

let run_inspect ?(n = 9) ?(cfgf = Fun.id) () =
  let states = ref [] in
  let cfg = cfgf (E.default ~n) in
  let r =
    Eng.run ~inspect:(fun site st -> states := (site, st) :: !states) cfg
      (DO.config (grid_sets n))
  in
  (r, List.rev !states)

(* After a run whose every request was served and quota reached, all
   protocol state must be quiescent except the stop-truncation artifacts:
   non-granted requests of still-contending sites. *)
let test_quiescent_state_after_burst () =
  let n = 9 in
  let r, states =
    run_inspect ~n
      ~cfgf:(fun c ->
        {
          c with
          workload = W.Burst { requesters = List.init n Fun.id; at = 0.0 };
          (* quota above the burst size: the run ends by draining the event
             queue, so every release has been delivered when we inspect *)
          max_executions = n + 1;
          warmup = 0;
        })
      ()
  in
  Alcotest.(check int) "all served" n r.E.executions;
  Alcotest.(check int) "no violations" 0 r.E.violations;
  List.iter
    (fun (site, st) ->
      Alcotest.(check bool)
        (Printf.sprintf "site %d: not in CS" site)
        false (I.in_cs st);
      Alcotest.(check bool)
        (Printf.sprintf "site %d: no outstanding request" site)
        true
        (I.request st = None);
      Alcotest.(check bool)
        (Printf.sprintf "site %d: tran_stack drained" site)
        true (I.tran_stack st = []);
      Alcotest.(check bool)
        (Printf.sprintf "site %d: holds no permissions" site)
        true
        (I.replied_from st = []))
    states;
  (* every arbiter lock is either free or held by... nobody: all done *)
  List.iter
    (fun (site, st) ->
      Alcotest.(check bool)
        (Printf.sprintf "site %d: lock freed" site)
        true
        (Ts.is_infinity (I.lock st));
      Alcotest.(check bool)
        (Printf.sprintf "site %d: queue empty" site)
        true
        (I.req_queue st = []))
    states

let test_message_kinds_under_contention () =
  (* heavy load must exercise the full §3.1 vocabulary *)
  let r, _ =
    run_inspect ~n:9
      ~cfgf:(fun c -> { c with max_executions = 300; warmup = 20 })
      ()
  in
  let kinds = List.map fst r.E.messages_by_kind in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " present") true (List.mem k kinds))
    [ "request"; "reply"; "release"; "transfer"; "fail" ];
  (* the delay-T mechanism is the forwarded reply: replies must outnumber
     direct grants (every handoff is a reply not preceded by a release) *)
  Alcotest.(check bool) "transfers actually used" true
    (List.assoc "transfer" r.E.messages_by_kind > 0)

let test_inquire_and_yield_under_inversion () =
  (* Priority inversion needs stale Lamport clocks: a site idle for a while
     issues a request whose sequence number outranks a permission granted
     meanwhile. Moderate Poisson load plus exponential delays produce
     plenty of inversions (saturated load keeps clocks synchronized and
     never inverts after startup). *)
  let n = 9 in
  let r, _ =
    run_inspect ~n
      ~cfgf:(fun c ->
        {
          c with
          workload = W.Poisson { rate_per_site = 0.02 };
          delay = Net.Exponential { mean = 1.0 };
          max_executions = 400;
          warmup = 0;
          cs_duration = 0.5;
          seed = 3;
          max_time = 1.0e7;
        })
      ()
  in
  let kinds = List.map fst r.E.messages_by_kind in
  Alcotest.(check bool) "inquire+transfer seen" true
    (List.mem "inquire+transfer" kinds);
  Alcotest.(check bool) "yield seen" true (List.mem "yield" kinds);
  Alcotest.(check int) "still safe" 0 r.E.violations

let test_reply_transfer_piggyback_used () =
  (* Granting after a yield or release(max) piggybacks the next waiter. *)
  let r, _ =
    run_inspect ~n:9
      ~cfgf:(fun c -> { c with max_executions = 300; warmup = 10 })
      ()
  in
  Alcotest.(check bool) "reply+transfer seen" true
    (List.mem_assoc "reply+transfer" r.E.messages_by_kind)

let test_sync_delay_is_exactly_T_with_long_cs () =
  let r, _ =
    run_inspect ~n:9
      ~cfgf:(fun c -> { c with cs_duration = 3.0; max_executions = 120 })
      ()
  in
  Alcotest.(check (float 1e-6)) "min sync = T" 1.0
    (Dmx_sim.Stats.Summary.min r.E.sync_delay);
  Alcotest.(check (float 1e-6)) "max sync = T" 1.0
    (Dmx_sim.Stats.Summary.max r.E.sync_delay)

let test_no_starvation_under_heavy_load () =
  (* With 9 saturated contenders and 9*40 executions, every site must get
     the CS about equally often (timestamps age into priority). We count
     executions per site via response-time observations being recorded --
     instead, track via per-site completion using a per-site contender
     workload and checking the quota completes. *)
  let n = 9 in
  let r, _ =
    run_inspect ~n
      ~cfgf:(fun c -> { c with max_executions = n * 40; warmup = 0 })
      ()
  in
  Alcotest.(check int) "all executions completed" (n * 40) r.E.executions;
  (* mean response bounded: nobody waited unboundedly long *)
  Alcotest.(check bool) "p99 response bounded" true
    (Dmx_sim.Stats.Summary.percentile r.E.response_time 99.0
    < 6.0 *. float_of_int n)

let test_star_quorum_centralized () =
  (* star coterie: site 0 arbitrates everything; delay-optimal still works
     and the sync delay is T (site-to-site forwarding). *)
  let n = 6 in
  let req_sets = Dmx_quorum.Builder.req_sets Star ~n in
  let r =
    Eng.run
      { (E.default ~n) with max_executions = 100; warmup = 10; cs_duration = 2.0 }
      (DO.config req_sets)
  in
  Alcotest.(check int) "safe" 0 r.E.violations;
  Alcotest.(check bool) "no deadlock" false r.E.deadlocked;
  Alcotest.(check (float 0.1)) "sync = T" 1.0
    (Dmx_sim.Stats.Summary.mean r.E.sync_delay)

let test_internal_introspection_coherent () =
  (* during a paused... we can only observe final states; check the
     introspectors do not contradict each other on a contended stop *)
  let _, states =
    run_inspect ~n:9
      ~cfgf:(fun c -> { c with max_executions = 47; warmup = 0 })
      ()
  in
  List.iter
    (fun (_, st) ->
      if I.in_cs st then
        Alcotest.(check bool) "in CS implies outstanding request" true
          (I.request st <> None);
      List.iter
        (fun a ->
          Alcotest.(check bool) "inq_queue entries are quorum arbiters" true
            (List.mem a (I.quorum st)))
        (I.inq_queue st);
      if I.request st = None then
        Alcotest.(check bool) "idle holds no permissions" true
          (I.replied_from st = []))
    states

let test_set_quorum () =
  (* used by the FT variant *)
  let _, states = run_inspect ~n:4 ~cfgf:(fun c -> { c with max_executions = 4; warmup = 0; workload = W.Burst { requesters = [ 0 ]; at = 0.0 } }) () in
  match states with
  | (_, st) :: _ ->
    I.set_quorum st [ 0; 1 ];
    Alcotest.(check (list int)) "quorum updated" [ 0; 1 ] (I.quorum st)
  | [] -> Alcotest.fail "no states"

let test_ablation_no_piggyback_still_correct () =
  (* disabling the piggybacked next hint costs messages, not correctness *)
  let n = 9 in
  let r =
    Eng.run
      { (E.default ~n) with max_executions = 200; warmup = 20 }
      (DO.config ~piggyback_next:false (grid_sets n))
  in
  Alcotest.(check int) "safe" 0 r.E.violations;
  Alcotest.(check bool) "live" false r.E.deadlocked;
  Alcotest.(check bool) "no piggybacked replies" false
    (List.mem_assoc "reply+transfer" r.E.messages_by_kind)

let test_ablation_ocr_rules_deadlock () =
  (* the OCR-literal A.2 rules (no fail to a best waiter behind the lock)
     must deadlock on at least one of these seeds — this is the regression
     test for DESIGN.md §3.7 *)
  let n = 25 in
  let stalled =
    List.exists
      (fun seed ->
        let r =
          Eng.run
            {
              (E.default ~n) with
              seed;
              delay = Net.Exponential { mean = 1.0 };
              max_executions = 150;
              warmup = 0;
              max_time = 20_000.0;
            }
            (DO.config ~eager_fails:false (grid_sets n))
        in
        Alcotest.(check int) "even broken rules stay safe" 0 r.E.violations;
        r.E.deadlocked || r.E.executions < 150)
      (List.init 20 (fun i -> i + 1))
  in
  Alcotest.(check bool) "OCR-literal rules stall somewhere" true stalled

let qcheck_forwarding_races =
  (* hammer the cross-channel races (forwardee release overtaking forwarder
     release) with highly variable delays *)
  let arb =
    QCheck.make
      ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
      QCheck.Gen.(pair (0 -- 5_000) (4 -- 13))
  in
  QCheck.Test.make ~name:"exponential-delay races stay safe and live" ~count:60 arb
    (fun (seed, n) ->
      let r =
        Eng.run
          {
            (E.default ~n) with
            seed;
            delay = Net.Exponential { mean = 1.0 };
            max_executions = 50;
            warmup = 0;
            cs_duration = 0.2;
          }
          (DO.config (grid_sets n))
      in
      r.E.violations = 0 && (not r.E.deadlocked) && r.E.executions = 50)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("quiescent state after burst", test_quiescent_state_after_burst);
      ("message kinds under contention", test_message_kinds_under_contention);
      ("inquire/yield under inversion", test_inquire_and_yield_under_inversion);
      ("reply+transfer piggyback", test_reply_transfer_piggyback_used);
      ("sync delay exactly T with long CS", test_sync_delay_is_exactly_T_with_long_cs);
      ("no starvation", test_no_starvation_under_heavy_load);
      ("star quorum (centralized)", test_star_quorum_centralized);
      ("introspection coherent", test_internal_introspection_coherent);
      ("set_quorum", test_set_quorum);
      ("ablation: no piggyback still correct", test_ablation_no_piggyback_still_correct);
      ("ablation: OCR-literal rules deadlock", test_ablation_ocr_rules_deadlock);
    ]
  @ [ QCheck_alcotest.to_alcotest qcheck_forwarding_races ]
