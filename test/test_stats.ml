(* Statistics: Welford moments, exact percentiles, counters. *)

module S = Dmx_sim.Stats.Summary
module C = Dmx_sim.Stats.Counter

let feed xs =
  let s = S.create () in
  List.iter (S.add s) xs;
  s

let test_empty_summary () =
  let s = S.create () in
  Alcotest.(check int) "count" 0 (S.count s);
  Alcotest.(check (float 0.0)) "mean" 0.0 (S.mean s);
  Alcotest.(check (float 0.0)) "variance" 0.0 (S.variance s);
  Alcotest.(check (float 0.0)) "p50" 0.0 (S.percentile s 50.0)

let test_mean_variance () =
  let s = feed [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  Alcotest.(check int) "count" 8 (S.count s);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (S.mean s);
  (* sample variance of this classic data set: 32 / 7 *)
  Alcotest.(check (float 1e-9)) "variance" (32.0 /. 7.0) (S.variance s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (S.min s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (S.max s)

let test_single_observation () =
  let s = feed [ 42.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 42.0 (S.mean s);
  Alcotest.(check (float 1e-9)) "variance" 0.0 (S.variance s);
  Alcotest.(check (float 1e-9)) "p99" 42.0 (S.percentile s 99.0)

let test_percentiles () =
  let s = feed (List.init 100 (fun i -> float_of_int (i + 1))) in
  Alcotest.(check (float 1e-9)) "p50" 50.0 (S.percentile s 50.0);
  Alcotest.(check (float 1e-9)) "p99" 99.0 (S.percentile s 99.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (S.percentile s 100.0);
  Alcotest.(check (float 1e-9)) "p1" 1.0 (S.percentile s 1.0)

let test_percentile_after_more_adds () =
  (* sorting must not corrupt the sample buffer for later adds *)
  let s = S.create () in
  List.iter (S.add s) [ 3.0; 1.0 ];
  ignore (S.percentile s 50.0);
  S.add s 2.0;
  Alcotest.(check (float 1e-9)) "p50 of {1,2,3}" 2.0 (S.percentile s 50.0);
  Alcotest.(check (float 1e-9)) "mean intact" 2.0 (S.mean s)

let test_percentile_extremes () =
  (* nearest-rank at the edges: p0 is the minimum, p100 the maximum *)
  let s = feed (List.init 100 (fun i -> float_of_int (i + 1))) in
  Alcotest.(check (float 1e-9)) "p0 = min" 1.0 (S.percentile s 0.0);
  Alcotest.(check (float 1e-9)) "p100 = max" 100.0 (S.percentile s 100.0);
  let one = feed [ 7.5 ] in
  Alcotest.(check (float 1e-9)) "single p0" 7.5 (S.percentile one 0.0);
  Alcotest.(check (float 1e-9)) "single p100" 7.5 (S.percentile one 100.0);
  let two = feed [ 20.0; 10.0 ] in
  Alcotest.(check (float 1e-9)) "two p0" 10.0 (S.percentile two 0.0);
  Alcotest.(check (float 1e-9)) "two p50" 10.0 (S.percentile two 50.0);
  Alcotest.(check (float 1e-9)) "two p51" 20.0 (S.percentile two 51.0);
  Alcotest.(check (float 1e-9)) "two p100" 20.0 (S.percentile two 100.0)

let test_empty_percentile_extremes () =
  (* an empty summary answers 0 for any percentile, even the edges *)
  let s = S.create () in
  Alcotest.(check (float 0.0)) "empty p0" 0.0 (S.percentile s 0.0);
  Alcotest.(check (float 0.0)) "empty p100" 0.0 (S.percentile s 100.0)

let test_percentile_bad_arg () =
  let s = feed [ 1.0 ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (S.percentile s 101.0);
       false
     with Invalid_argument _ -> true)

let test_welford_against_naive () =
  let xs = List.init 1000 (fun i -> sin (float_of_int i) *. 100.0) in
  let s = feed xs in
  let n = float_of_int (List.length xs) in
  let mean = List.fold_left ( +. ) 0.0 xs /. n in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. (n -. 1.0)
  in
  Alcotest.(check (float 1e-6)) "mean" mean (S.mean s);
  Alcotest.(check (float 1e-6)) "variance" var (S.variance s);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt var) (S.stddev s)

let test_counter () =
  let c = C.create () in
  C.incr c "request";
  C.incr c "request";
  C.incr ~by:3 c "reply";
  Alcotest.(check int) "request" 2 (C.get c "request");
  Alcotest.(check int) "reply" 3 (C.get c "reply");
  Alcotest.(check int) "absent" 0 (C.get c "nope");
  Alcotest.(check int) "total" 5 (C.total c);
  Alcotest.(check (list (pair string int)))
    "sorted bindings"
    [ ("reply", 3); ("request", 2) ]
    (C.bindings c)

let test_counter_negative_incr () =
  let c = C.create () in
  C.incr ~by:5 c "x";
  C.incr ~by:(-5) c "x";
  Alcotest.(check int) "zeroed" 0 (C.get c "x")

let qcheck_percentile_member =
  QCheck.Test.make ~name:"percentile returns an observed value" ~count:300
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_inclusive 100.0)) (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      let s = feed xs in
      List.mem (S.percentile s p) xs)

let qcheck_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p, pinned at the edges"
    ~count:300
    QCheck.(
      triple
        (list_of_size Gen.(1 -- 50) (float_bound_inclusive 100.0))
        (float_bound_inclusive 100.0) (float_bound_inclusive 100.0))
    (fun (xs, p1, p2) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      let s = feed xs in
      S.percentile s lo <= S.percentile s hi
      && S.percentile s 0.0 = S.min s
      && S.percentile s 100.0 = S.max s)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("empty summary", test_empty_summary);
      ("mean and variance", test_mean_variance);
      ("single observation", test_single_observation);
      ("percentiles on 1..100", test_percentiles);
      ("percentile then add", test_percentile_after_more_adds);
      ("percentile extremes p0/p100", test_percentile_extremes);
      ("empty percentile extremes", test_empty_percentile_extremes);
      ("percentile arg checked", test_percentile_bad_arg);
      ("welford matches naive", test_welford_against_naive);
      ("counter", test_counter);
      ("counter negative increments", test_counter_negative_incr);
    ]
  @ [
      QCheck_alcotest.to_alcotest qcheck_percentile_member;
      QCheck_alcotest.to_alcotest qcheck_percentile_monotone;
    ]
