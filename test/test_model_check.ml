(* Exhaustive small-scope verification: every message interleaving of a
   burst of simultaneous requests, for each quorum construction that fits
   in the state budget. Complements the randomized schedule sampling of
   the engine-based tests — here safety and deadlock-freedom hold for ALL
   schedules, not just the sampled ones. *)

module MC = Dmx_sim.Model_check
module DO = Dmx_core.Delay_optimal

module Check_do = MC.Make (struct
  include DO

  let copy_state = DO.Internal.copy_state
end)

module Check_ra = MC.Make (struct
  include Dmx_baselines.Ricart_agrawala

  let copy_state = Dmx_baselines.Ricart_agrawala.copy_state
end)

module Check_mk = MC.Make (struct
  include Dmx_baselines.Maekawa_me

  let copy_state = Dmx_baselines.Maekawa_me.copy_state
end)

let explore_do ?(flags = Fun.id) kind n requesters =
  let req_sets = Dmx_quorum.Builder.req_sets kind ~n in
  Check_do.explore ~n ~requesters (flags (DO.config req_sets))

let assert_clean label (o : MC.outcome) =
  Alcotest.(check bool) (label ^ ": space exhausted") false o.MC.truncated;
  Alcotest.(check int) (label ^ ": no violations") 0 o.MC.violations;
  Alcotest.(check int) (label ^ ": no stuck states") 0 o.MC.stuck_states;
  Alcotest.(check bool) (label ^ ": some schedule completes") true
    (o.MC.completed_schedules > 0)

let test_two_sites_grid () =
  let o = explore_do Dmx_quorum.Builder.Grid 2 [ 0; 1 ] in
  assert_clean "n=2 grid" o;
  Alcotest.(check bool) "hundreds of states" true (o.MC.distinct_states > 100)

let test_three_sites_star () =
  assert_clean "n=3 star" (explore_do Dmx_quorum.Builder.Star 3 [ 0; 1; 2 ])

let test_three_sites_grid () =
  let o = explore_do Dmx_quorum.Builder.Grid 3 [ 0; 1; 2 ] in
  assert_clean "n=3 grid" o;
  Alcotest.(check bool) "tens of thousands of states" true
    (o.MC.distinct_states > 10_000)

let test_three_sites_majority () =
  assert_clean "n=3 majority"
    (explore_do Dmx_quorum.Builder.Majority 3 [ 0; 1; 2 ])

let test_three_sites_tree () =
  assert_clean "n=3 tree" (explore_do Dmx_quorum.Builder.Tree 3 [ 0; 1; 2 ])

let test_partial_requesters () =
  (* only two of three request: the third still arbitrates *)
  assert_clean "n=3 grid, 2 requesters"
    (explore_do Dmx_quorum.Builder.Grid 3 [ 1; 2 ])

let test_single_requester () =
  let o = explore_do Dmx_quorum.Builder.Grid 3 [ 1 ] in
  assert_clean "n=3 single" o

let test_no_piggyback_variant () =
  assert_clean "n=3 grid, no piggyback"
    (explore_do
       ~flags:(fun c -> { c with DO.piggyback_next = false })
       Dmx_quorum.Builder.Grid 3 [ 0; 1; 2 ])

let test_terminal_state_unique () =
  (* confluence: every completing schedule drains to the same final state *)
  let o = explore_do Dmx_quorum.Builder.Grid 3 [ 0; 1; 2 ] in
  Alcotest.(check int) "single quiescent terminal state" 1
    o.MC.completed_schedules

let test_ricart_agrawala_checked () =
  let o = Check_ra.explore ~n:3 ~requesters:[ 0; 1; 2 ] () in
  assert_clean "ricart-agrawala n=3" o

let test_maekawa_checked () =
  let req_sets = Dmx_quorum.Builder.req_sets Dmx_quorum.Builder.Grid ~n:3 in
  let o =
    Check_mk.explore ~n:3 ~requesters:[ 0; 1; 2 ]
      { Dmx_baselines.Maekawa_me.req_sets }
  in
  assert_clean "maekawa n=3" o

let test_staggered_star () =
  (* request issuance interleaved with deliveries: strictly more schedules
     than the simultaneous burst *)
  let burst = explore_do Dmx_quorum.Builder.Star 3 [ 0; 1; 2 ] in
  let req_sets = Dmx_quorum.Builder.req_sets Dmx_quorum.Builder.Star ~n:3 in
  let o = Check_do.explore ~staggered:true ~n:3 ~requesters:[ 0; 1; 2 ] (DO.config req_sets) in
  assert_clean "n=3 star staggered" o;
  Alcotest.(check bool) "staggered space is larger" true
    (o.MC.distinct_states > burst.MC.distinct_states)

let test_staggered_tree () =
  let req_sets = Dmx_quorum.Builder.req_sets Dmx_quorum.Builder.Tree ~n:3 in
  let o =
    Check_do.explore ~staggered:true ~n:3 ~requesters:[ 0; 1; 2 ]
      (DO.config req_sets)
  in
  assert_clean "n=3 tree staggered" o

let test_staggered_grid_two_sites () =
  let req_sets = Dmx_quorum.Builder.req_sets Dmx_quorum.Builder.Grid ~n:2 in
  let o =
    Check_do.explore ~staggered:true ~n:2 ~requesters:[ 0; 1 ]
      (DO.config req_sets)
  in
  assert_clean "n=2 grid staggered" o

let test_loss_budget_safety () =
  (* Adversarial message loss: the checker may additionally drop up to
     [max_losses] channel-head messages at any point. Lossy schedules
     generally strand the run (the base protocol has no retransmission), so
     they count as stuck — but mutual exclusion must hold on every one. *)
  let req_sets = Dmx_quorum.Builder.req_sets Dmx_quorum.Builder.Grid ~n:2 in
  let o =
    Check_do.explore ~max_losses:2 ~n:2 ~requesters:[ 0; 1 ]
      (DO.config req_sets)
  in
  Alcotest.(check bool) "space exhausted" false o.MC.truncated;
  Alcotest.(check int) "safe under loss" 0 o.MC.violations;
  Alcotest.(check bool) "loss-free schedules still complete" true
    (o.MC.completed_schedules > 0);
  Alcotest.(check bool) "some lossy schedule strands" true
    (o.MC.stuck_states > 0);
  (* the lossless exploration is a strict subset *)
  let base = explore_do Dmx_quorum.Builder.Grid 2 [ 0; 1 ] in
  Alcotest.(check bool) "loss enlarges the space" true
    (o.MC.distinct_states > base.MC.distinct_states)

let test_loss_budget_star () =
  let req_sets = Dmx_quorum.Builder.req_sets Dmx_quorum.Builder.Star ~n:3 in
  let o =
    Check_do.explore ~max_losses:1 ~n:3 ~requesters:[ 0; 1; 2 ]
      (DO.config req_sets)
  in
  Alcotest.(check bool) "space exhausted" false o.MC.truncated;
  Alcotest.(check int) "safe under loss" 0 o.MC.violations

let test_loss_budget_maekawa () =
  let req_sets = Dmx_quorum.Builder.req_sets Dmx_quorum.Builder.Grid ~n:2 in
  let o =
    Check_mk.explore ~max_losses:1 ~n:2 ~requesters:[ 0; 1 ]
      { Dmx_baselines.Maekawa_me.req_sets }
  in
  Alcotest.(check bool) "space exhausted" false o.MC.truncated;
  Alcotest.(check int) "maekawa safe under loss" 0 o.MC.violations

let test_truncation_reported () =
  let req_sets = Dmx_quorum.Builder.req_sets Dmx_quorum.Builder.Grid ~n:3 in
  let o =
    Check_do.explore ~max_states:50 ~n:3 ~requesters:[ 0; 1; 2 ]
      (DO.config req_sets)
  in
  Alcotest.(check bool) "truncated flagged" true o.MC.truncated

let test_truncated_never_clean () =
  (* Regression: a state-budget cutoff proves nothing about the unexplored
     schedules, so [clean] must reject it even with zero violations and
     zero stuck states observed so far. *)
  let req_sets = Dmx_quorum.Builder.req_sets Dmx_quorum.Builder.Grid ~n:3 in
  let o =
    Check_do.explore ~max_states:50 ~n:3 ~requesters:[ 0; 1; 2 ]
      (DO.config req_sets)
  in
  Alcotest.(check int) "no violation observed in the prefix" 0 o.MC.violations;
  Alcotest.(check bool) "yet not a clean pass" false (MC.clean o);
  (* and an exhausted exploration is *)
  let full = explore_do Dmx_quorum.Builder.Grid 3 [ 0; 1; 2 ] in
  Alcotest.(check bool) "exhausted run is clean" true (MC.clean full)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("n=2 grid: all schedules", test_two_sites_grid);
      ("n=3 star: all schedules", test_three_sites_star);
      ("n=3 grid: all schedules", test_three_sites_grid);
      ("n=3 majority: all schedules", test_three_sites_majority);
      ("n=3 tree: all schedules", test_three_sites_tree);
      ("partial requesters", test_partial_requesters);
      ("single requester", test_single_requester);
      ("no-piggyback variant", test_no_piggyback_variant);
      ("terminal state unique", test_terminal_state_unique);
      ("ricart-agrawala checked", test_ricart_agrawala_checked);
      ("maekawa checked", test_maekawa_checked);
      ("staggered requests: star", test_staggered_star);
      ("staggered requests: tree", test_staggered_tree);
      ("staggered requests: grid n=2", test_staggered_grid_two_sites);
      ("loss budget: grid n=2 safe", test_loss_budget_safety);
      ("loss budget: star n=3 safe", test_loss_budget_star);
      ("loss budget: maekawa safe", test_loss_budget_maekawa);
      ("truncation reported", test_truncation_reported);
      ("truncated is never clean", test_truncated_never_clean);
    ]
