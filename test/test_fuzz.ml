(* Property-based schedule fuzzing with shrinking.

   Seeded random schedules (workload x delay model x protocol x quorum, and
   fault plans for the FT variant) run through the engine; the full trace
   is piped to the post-hoc Oracle. Any rejection is shrunk via
   Schedule.minimize to a minimal reproducer, persisted as a .dmxrepro file
   (re-executable with `dmx-sim replay`), and reported as a test failure.

   The harness also proves its own teeth: an intentionally broken protocol
   (enters the CS on the first reply instead of the full quorum) must be
   caught, shrunk, and its reproducer must round-trip through the file
   format and still fail.

   Case count defaults to a quick smoke; CI raises it via DMX_FUZZ_CASES
   and collects DMX_FUZZ_DIR/*.dmxrepro as artifacts on failure. *)

module E = Dmx_sim.Engine
module Net = Dmx_sim.Network
module W = Dmx_sim.Workload
module T = Dmx_sim.Trace
module O = Dmx_sim.Oracle
module Sch = Dmx_sim.Schedule
module P = Dmx_sim.Protocol
module Rng = Dmx_sim.Rng
module R = Dmx_baselines.Runner
module B = Dmx_quorum.Builder

let cases =
  match
    int_of_string_opt (try Sys.getenv "DMX_FUZZ_CASES" with Not_found -> "")
  with
  | Some c when c > 0 -> c
  | _ -> 30

let repro_dir =
  match Sys.getenv_opt "DMX_FUZZ_DIR" with Some d when d <> "" -> d | _ -> "fuzz-repro"

(* ---- schedule generator ---- *)

let quorum_algos = [ "delay-optimal"; "maekawa" ]

let algos =
  [|
    "delay-optimal";
    "ft-delay-optimal";
    "maekawa";
    "lamport";
    "ricart-agrawala";
    "singhal-dynamic";
    "suzuki-kasami";
    "singhal-heuristic";
    "raymond";
  |]

let pick_kind rng ~n kinds =
  let supported = List.filter (fun k -> B.supports k ~n) kinds in
  match supported with
  | [] -> B.Majority
  | ks -> List.nth ks (Rng.int rng (List.length ks))

let gen seed =
  let rng = Rng.create (9_000 + seed) in
  let algo = algos.(Rng.int rng (Array.length algos)) in
  let n = 5 + Rng.int rng 8 in
  let quorum =
    if List.mem algo quorum_algos then
      B.kind_name
        (pick_kind rng ~n [ B.Grid; B.Tree; B.Majority; B.Hqc; B.Star ])
    else if algo = "ft-delay-optimal" then
      (* constructions with a rebuild story, as in the fault soak *)
      B.kind_name (pick_kind rng ~n [ B.Tree; B.Majority; B.Hqc ])
    else ""
  in
  let delay =
    match Rng.int rng 3 with
    | 0 -> Net.Constant (0.5 +. Rng.float rng 1.0)
    | 1 ->
      let lo = 0.2 +. Rng.float rng 0.5 in
      Net.Uniform { lo; hi = lo +. 0.2 +. Rng.float rng 1.3 }
    | _ -> Net.Exponential { mean = 0.5 +. Rng.float rng 1.0 }
  in
  let workload =
    match Rng.int rng 3 with
    | 0 -> W.Saturated { contenders = 2 + Rng.int rng (n - 1) }
    | 1 -> W.Poisson { rate_per_site = 0.005 +. Rng.float rng 0.05 }
    | _ -> W.Burst { requesters = List.init n Fun.id; at = 0.0 }
  in
  let faulty = algo = "ft-delay-optimal" && Rng.bool rng in
  let faults, crashes, recoveries, detector, reliability =
    if not faulty then (Net.no_faults, [], [], E.Oracle 3.0, false)
    else begin
      let loss = Rng.float rng 0.06 in
      let dup = if Rng.bool rng then Rng.float rng 0.03 else 0.0 in
      let partitions =
        if Rng.bool rng then begin
          let from_t = 15.0 +. Rng.float rng 20.0 in
          let cut = 1 + Rng.int rng (n - 1) in
          [
            {
              Net.from_t;
              until = from_t +. 10.0 +. Rng.float rng 25.0;
              groups =
                [ List.init cut Fun.id; List.init (n - cut) (fun i -> cut + i) ];
            };
          ]
        end
        else []
      in
      let crashes, recoveries =
        if Rng.bool rng then begin
          let site = Rng.int rng n in
          let at = 15.0 +. Rng.float rng 25.0 in
          (* always recover: under suspicion semantics a permanently dead
             arbiter's tenure is unreclaimable by design *)
          ([ (at, site) ], [ (at +. 20.0 +. Rng.float rng 15.0, site) ])
        end
        else ([], [])
      in
      ( { Net.loss; duplication = dup; partitions; delay_spikes = [] },
        crashes,
        recoveries,
        E.Heartbeat { Dmx_sim.Detector.period = 2.0; timeout = 10.0 },
        true )
    end
  in
  {
    Sch.algo;
    quorum;
    seed = (100 * seed) + 7;
    n;
    execs = (if faulty then 40 else 30);
    warmup = 0;
    cs = 0.5 +. Rng.float rng 1.0;
    delay;
    workload;
    faults;
    crashes;
    recoveries;
    detector;
    reliability;
    stall = 2000.0;
  }

(* ---- oracle configuration per schedule ---- *)

let fault_free (s : Sch.t) = s.Sch.faults = Net.no_faults && s.Sch.crashes = []

let oracle_cfg (s : Sch.t) =
  let base = O.default ~n:s.Sch.n in
  if not (fault_free s) then begin
    (* fairness and bounds are fault-free notions: parked minority
       partitions are overtaken unboundedly, retransmissions are not the
       protocol's message cost. Crashes additionally break the FIFO check
       (recovered reliability layers reuse sequence numbers across epochs)
       and the custody automaton (recovery restores volatile possessions
       the oracle's fail-stop model already voided); duplication breaks
       FIFO too (duplicated copies take independent delays). Mutex and
       coterie intersection stay on for every run. *)
    let crashy = s.Sch.crashes <> [] in
    let dupy = s.Sch.faults.Net.duplication > 0.0 in
    { base with O.fifo = not (crashy || dupy); custody = not crashy }
  end
  else
    let k =
      match s.Sch.quorum with
      | "" -> s.Sch.n
      | q -> (
        match B.parse_kind q with
        | Ok kind -> (B.size_stats (B.req_sets kind ~n:s.Sch.n)).B.k_max
        | Error _ -> s.Sch.n)
    in
    let load =
      match s.Sch.workload with
      | W.Poisson { rate_per_site }
        when rate_per_site *. float_of_int s.Sch.n <= 0.1 ->
        O.Light
      | _ -> O.Heavy
    in
    {
      base with
      O.max_overtake = O.fairness_bound ~algo:s.Sch.algo ~n:s.Sch.n;
      bound_per_cs = O.expected_bound ~algo:s.Sch.algo ~n:s.Sch.n ~k load;
    }

(* ---- shrinking predicates ---- *)

let valid (s : Sch.t) =
  s.Sch.n >= 2
  &&
  match s.Sch.quorum with
  | "" -> true
  | q -> (
    match B.parse_kind q with
    | Ok k -> B.supports k ~n:s.Sch.n
    | Error _ -> false)

let fails ?extra (s : Sch.t) =
  match R.run_schedule ?extra s with
  | Error _ -> false
  | Ok (r, tr) ->
    r.E.violations > 0 || r.E.deadlocked
    ||
    let v = O.check_trace (oracle_cfg s) tr in
    v.O.violations <> [] && not v.O.truncated

let persist_reproducer seed minimal =
  if not (Sys.file_exists repro_dir) then Sys.mkdir repro_dir 0o755;
  let file =
    Filename.concat repro_dir (Printf.sprintf "fuzz-seed-%03d.dmxrepro" seed)
  in
  Sch.to_file minimal file;
  file

(* ---- the corpus ---- *)

(* Each case is an independent seeded schedule, so the corpus fans out on
   domains ([DMX_FUZZ_JOBS], default [Pool.default_jobs]). Workers return
   failure descriptions as data — Alcotest must only be poked from the
   main domain — and shrinking/persistence of rare failures also happens
   here, sequentially, to keep reproducer files and reports ordered. *)
let fuzz_jobs =
  match
    int_of_string_opt (try Sys.getenv "DMX_FUZZ_JOBS" with Not_found -> "")
  with
  | Some j when j >= 1 -> j
  | _ -> Dmx_sim.Pool.default_jobs ()

let test_fuzz_corpus () =
  let outcomes =
    Dmx_sim.Pool.run ~jobs:fuzz_jobs cases (fun i ->
        let seed = i + 1 in
        let s = gen seed in
        match R.run_schedule s with
        | Error e ->
          Some (seed, s, Printf.sprintf "seed %d (%s): %s" seed s.Sch.algo e, false)
        | Ok (r, tr) ->
          let v = O.check_trace (oracle_cfg s) tr in
          let engine_bad = r.E.violations > 0 || r.E.deadlocked in
          if engine_bad || not (O.ok v) then
            Some
              ( seed,
                s,
                (if engine_bad then
                   Printf.sprintf "engine: violations=%d deadlocked=%b"
                     r.E.violations r.E.deadlocked
                 else Format.asprintf "%a" O.pp_verdict v),
                true )
          else None)
  in
  Array.iter
    (function
      | None -> ()
      | Some (_, _, msg, false) -> Alcotest.failf "%s" msg
      | Some (seed, s, msg, true) ->
        let minimal = Sch.minimize ~valid ~fails:(fails ?extra:None) s in
        let file = persist_reproducer seed minimal in
        Alcotest.failf
          "seed %d (%s %s n=%d): %s@.reproducer: %s (re-run with `dmx-sim \
           replay %s`)"
          seed s.Sch.algo
          (if s.Sch.quorum = "" then "-" else s.Sch.quorum)
          s.Sch.n msg file file)
    outcomes

(* ---- an intentionally broken protocol: the harness must catch it ---- *)

(* Maekawa-style arbitration, except the requester enters the CS on the
   FIRST reply instead of waiting for its whole quorum — the classic
   quorum-protocol bug. Instrumented with custody events so the oracle's
   QUORUM check fires alongside the engine's online mutex check. *)
module Broken_proto = struct
  type config = int list array

  type message = Req | Rep | Rel

  type arbiter = { mutable locked_by : int option; queue : int Queue.t }

  type state = {
    quorum : int list;
    arb : arbiter;
    mutable got : int;
    mutable want : bool;
  }

  let name = "broken-first-reply"
  let describe _ = "intentionally broken: CS entry on the first reply"

  let message_kind = function
    | Req -> "request"
    | Rep -> "reply"
    | Rel -> "release"

  let pp_message ppf m = Format.pp_print_string ppf (message_kind m)

  let init (ctx : message P.ctx) req_sets =
    {
      quorum = req_sets.(ctx.P.self);
      arb = { locked_by = None; queue = Queue.create () };
      got = 0;
      want = false;
    }

  let grant (ctx : message P.ctx) st dst =
    st.arb.locked_by <- Some dst;
    ctx.P.trace_event (T.Grant { to_ = dst });
    ctx.P.send ~dst Rep

  let on_message (ctx : message P.ctx) st ~src = function
    | Req -> (
      match st.arb.locked_by with
      | None -> grant ctx st src
      | Some _ -> Queue.push src st.arb.queue)
    | Rep ->
      if st.want then begin
        ctx.P.trace_event (T.Acquire { arbiter = src });
        st.got <- st.got + 1;
        if st.got = 1 then ctx.P.enter_cs ()
      end
    | Rel ->
      if st.arb.locked_by = Some src then begin
        st.arb.locked_by <- None;
        match Queue.take_opt st.arb.queue with
        | Some next -> grant ctx st next
        | None -> ()
      end
      else begin
        let keep = Queue.create () in
        Queue.iter (fun s -> if s <> src then Queue.push s keep) st.arb.queue;
        Queue.clear st.arb.queue;
        Queue.transfer keep st.arb.queue
      end

  let request_cs (ctx : message P.ctx) st =
    st.want <- true;
    st.got <- 0;
    ctx.P.trace_event (T.Adopt_quorum st.quorum);
    List.iter (fun dst -> ctx.P.send ~dst Req) st.quorum

  let release_cs (ctx : message P.ctx) st =
    st.want <- false;
    List.iter (fun dst -> ctx.P.send ~dst Rel) st.quorum

  let on_timer _ _ _ = ()
  let on_failure _ _ _ = ()
  let on_recovery _ _ _ = ()
end

let broken_runner ~n =
  let req_sets = B.req_sets B.Grid ~n in
  let module M = E.Make (Broken_proto) in
  let run_traced ?trace_sink cfg = M.run ?trace_sink cfg req_sets in
  {
    R.name = "broken-first-reply";
    variant = "grid";
    run = (fun cfg -> run_traced cfg);
    run_traced;
  }

let extra = [ ("broken-first-reply", broken_runner) ]

let test_broken_protocol_caught () =
  let s =
    { (Sch.default ~algo:"broken-first-reply" ~n:6) with Sch.execs = 12; seed = 5 }
  in
  let fails s = fails ~extra s in
  Alcotest.(check bool) "the bug reproduces" true (fails s);
  let minimal = Sch.minimize ~valid ~fails s in
  Alcotest.(check bool) "the minimal schedule still fails" true (fails minimal);
  Alcotest.(check bool) "shrinking made progress" true
    (minimal.Sch.n < s.Sch.n
    || minimal.Sch.execs < s.Sch.execs
    || minimal.Sch.workload <> s.Sch.workload);
  (* the reproducer survives persistence: write, reparse, re-fail *)
  let file = Filename.temp_file "dmx-broken" ".dmxrepro" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Sch.to_file minimal file;
      match O.replay_file file with
      | Error e -> Alcotest.fail e
      | Ok s' ->
        Alcotest.(check bool) "file round-trip is exact" true (s' = minimal);
        Alcotest.(check bool) "replayed schedule still fails" true (fails s'))

let test_broken_protocol_oracle_verdict () =
  (* the oracle itself (not just the engine's online check) must flag the
     broken protocol: quorum coverage is violated at entry *)
  let s =
    { (Sch.default ~algo:"broken-first-reply" ~n:6) with Sch.execs = 12; seed = 5 }
  in
  match R.run_schedule ~extra s with
  | Error e -> Alcotest.fail e
  | Ok (_, tr) ->
    let v = O.check_trace (O.default ~n:s.Sch.n) tr in
    Alcotest.(check bool) "oracle rejects" false (O.ok v);
    Alcotest.(check bool) "QUORUM or MUTEX violation present" true
      (List.exists
         (fun (x : O.violation) ->
           let pre p =
             String.length x.O.what >= String.length p
             && String.sub x.O.what 0 (String.length p) = p
           in
           pre "QUORUM" || pre "MUTEX")
         v.O.violations)

let suite =
  [
    Alcotest.test_case
      (Printf.sprintf "corpus of %d seeded schedules" cases)
      `Slow test_fuzz_corpus;
    Alcotest.test_case "broken protocol caught, shrunk, replayable" `Quick
      test_broken_protocol_caught;
    Alcotest.test_case "broken protocol rejected by the oracle" `Quick
      test_broken_protocol_oracle_verdict;
  ]
