(* Cross-protocol safety and liveness: every algorithm, several universe
   sizes, workloads, delay models and seeds. The engine checks mutual
   exclusion on every CS entry, so a clean report IS the safety proof for
   that schedule; completing the execution quota is the liveness check. *)

module E = Dmx_sim.Engine
module H = Harness
module W = Dmx_sim.Workload
module Net = Dmx_sim.Network

let test_heavy_load_matrix () =
  List.iter
    (fun n ->
      List.iter
        (fun runner ->
          List.iter
            (fun seed -> ignore (H.run_clean runner (H.heavy ~seed ~execs:100 n)))
            [ 1; 42 ])
        (H.all_runners ~n))
    [ 4; 9; 13 ]

let test_random_delay_matrix () =
  List.iter
    (fun delay ->
      List.iter
        (fun runner ->
          List.iter
            (fun seed ->
              ignore (H.run_clean runner (H.heavy ~seed ~execs:100 ~delay 9)))
            [ 7; 21 ])
        (H.all_runners ~n:9))
    [
      Net.Uniform { lo = 0.2; hi = 1.8 };
      Net.Exponential { mean = 1.0 };
      Net.Shifted_exponential { base = 0.5; extra_mean = 0.5 };
    ]

let test_light_load_matrix () =
  List.iter
    (fun runner -> ignore (H.run_clean runner (H.light ~execs:40 9)))
    (H.all_runners ~n:9)

let test_burst_simultaneous_requests () =
  (* All sites request at the same instant: the adversarial case for the
     deadlock-avoidance machinery (everyone collides everywhere). *)
  List.iter
    (fun n ->
      List.iter
        (fun runner ->
          let cfg =
            {
              (E.default ~n) with
              workload = W.Burst { requesters = List.init n Fun.id; at = 0.0 };
              max_executions = n;
              warmup = 0;
              cs_duration = 0.5;
            }
          in
          let r = H.run_clean runner cfg in
          Alcotest.(check int)
            (Printf.sprintf "%s: every burst request served" runner.H.rname)
            n r.E.executions)
        (H.all_runners ~n))
    [ 2; 3; 5; 9 ]

let test_single_site_universe () =
  (* n=1 degenerates to a local lock; nothing should be sent. *)
  List.iter
    (fun runner ->
      let cfg = { (H.heavy ~execs:10 1) with warmup = 0 } in
      let r = H.run_clean runner cfg in
      Alcotest.(check int)
        (runner.H.rname ^ ": no messages for n=1")
        0 r.E.total_messages)
    (H.all_runners ~n:1)

let test_two_sites () =
  List.iter
    (fun runner -> ignore (H.run_clean runner (H.heavy ~execs:50 2)))
    (H.all_runners ~n:2)

let test_partial_contention () =
  (* only 3 of 9 sites compete *)
  List.iter
    (fun runner ->
      let cfg =
        {
          (H.heavy ~execs:60 9) with
          workload = W.Saturated { contenders = 3 };
        }
      in
      ignore (H.run_clean runner cfg))
    (H.all_runners ~n:9)

let test_fairness_under_saturation () =
  (* Quantified starvation-freedom: with every site contending equally,
     service must spread almost evenly (Jain index near 1). *)
  let n = 9 in
  List.iter
    (fun runner ->
      let r = H.run_clean runner (H.heavy ~execs:(n * 30) 9) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: fairness %.3f >= 0.9" runner.H.rname r.E.fairness)
        true
        (r.E.fairness >= 0.9);
      Alcotest.(check int) "per-site counts add up"
        r.E.executions
        (Array.fold_left ( + ) 0 r.E.per_site_executions))
    (H.all_runners ~n)

let test_fairness_single_contender () =
  let r = H.run_clean (H.delay_optimal ~n:9)
      { (H.heavy ~execs:30 9) with workload = W.Saturated { contenders = 1 } }
  in
  Alcotest.(check (float 1e-9)) "one site served evenly" 1.0 r.E.fairness;
  Alcotest.(check int) "all by site 0" r.E.executions r.E.per_site_executions.(0)

let test_determinism () =
  (* identical seeds: bit-identical metrics *)
  List.iter
    (fun runner ->
      let r1 = runner.H.run (H.heavy ~seed:9 ~execs:80 9) in
      let r2 = runner.H.run (H.heavy ~seed:9 ~execs:80 9) in
      Alcotest.(check int) (runner.H.rname ^ ": messages deterministic")
        r1.E.total_messages r2.E.total_messages;
      Alcotest.(check (float 0.0)) (runner.H.rname ^ ": sim time deterministic")
        r1.E.sim_time r2.E.sim_time;
      Alcotest.(check (float 0.0)) (runner.H.rname ^ ": sync delay deterministic")
        (Dmx_sim.Stats.Summary.mean r1.E.sync_delay)
        (Dmx_sim.Stats.Summary.mean r2.E.sync_delay))
    (H.all_runners ~n:9)

let test_delay_optimal_all_quorum_kinds () =
  (* the algorithm is quorum-independent: run it over every construction *)
  List.iter
    (fun (kind, n) ->
      let runner = H.delay_optimal_with kind ~n in
      ignore (H.run_clean runner (H.heavy ~execs:80 n));
      ignore
        (H.run_clean runner
           (H.heavy ~execs:80 ~delay:(Net.Uniform { lo = 0.5; hi = 1.5 }) n)))
    [
      (Dmx_quorum.Builder.Grid, 9);
      (Dmx_quorum.Builder.Fpp, 7);
      (Dmx_quorum.Builder.Fpp, 13);
      (Dmx_quorum.Builder.Tree, 7);
      (Dmx_quorum.Builder.Tree, 15);
      (Dmx_quorum.Builder.Majority, 8);
      (Dmx_quorum.Builder.Hqc, 9);
      (Dmx_quorum.Builder.Grid_set 4, 16);
      (Dmx_quorum.Builder.Rst 4, 16);
      (Dmx_quorum.Builder.Star, 9);
      (Dmx_quorum.Builder.All, 6);
    ]

let qcheck_safety_random_scenarios =
  (* random n, seed, CS duration, load shape — the main property test *)
  let gen =
    QCheck.Gen.(
      let* n = 2 -- 16 in
      let* seed = 0 -- 10_000 in
      let* cs10 = 1 -- 30 in
      let* contenders = 1 -- n in
      let* expo = bool in
      return (n, seed, float_of_int cs10 /. 10.0, contenders, expo))
  in
  let arb =
    QCheck.make
      ~print:(fun (n, seed, cs, c, e) ->
        Printf.sprintf "n=%d seed=%d cs=%.1f contenders=%d exp=%b" n seed cs c e)
      gen
  in
  QCheck.Test.make ~name:"random scenarios are safe and live (all protocols)"
    ~count:40 arb
    (fun (n, seed, cs_duration, contenders, expo) ->
      List.for_all
        (fun runner ->
          let cfg =
            {
              (E.default ~n) with
              seed;
              cs_duration;
              delay =
                (if expo then Net.Exponential { mean = 1.0 }
                 else Net.Constant 1.0);
              workload = W.Saturated { contenders };
              max_executions = 60;
              warmup = 5;
            }
          in
          let r = runner.H.run cfg in
          r.E.violations = 0 && (not r.E.deadlocked) && r.E.executions = 60)
        (H.all_runners ~n))

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("heavy load: all protocols, n in {4,9,13}", test_heavy_load_matrix);
      ("random delays: all protocols", test_random_delay_matrix);
      ("light load: all protocols", test_light_load_matrix);
      ("simultaneous burst", test_burst_simultaneous_requests);
      ("single-site universe", test_single_site_universe);
      ("two sites", test_two_sites);
      ("partial contention", test_partial_contention);
      ("fairness under saturation", test_fairness_under_saturation);
      ("fairness: single contender", test_fairness_single_contender);
      ("determinism", test_determinism);
      ("delay-optimal across quorum kinds", test_delay_optimal_all_quorum_kinds);
    ]
  @ [ QCheck_alcotest.to_alcotest qcheck_safety_random_scenarios ]
