(* The retry/ack reliability layer, exercised against a stub io that
   records sends and timer arms — the layer never sees a protocol ctx or
   an engine, only these capabilities (which is what lets the same code
   run over virtual time in the simulator and the wall clock in the
   networked runtime). *)

module Rel = Dmx_core.Reliable
module M = Dmx_core.Messages

let stub_io ?(now = 0.0) () =
  let sent = ref [] in
  let timers = ref [] in
  let io =
    {
      Rel.now = (fun () -> now);
      send = (fun ~dst msg -> sent := (dst, msg) :: !sent);
      set_timer = (fun ~delay ~tag -> timers := (delay, tag) :: !timers);
    }
  in
  (io, sent, timers)

let payload = M.Request { Dmx_sim.Timestamp.sn = 1; site = 0 }

let test_send_wraps_with_sequence () =
  let io, sent, timers = stub_io () in
  let r = Rel.create Rel.default ~n:3 ~self:0 ~io in
  Rel.send r ~dst:1 payload;
  Rel.send r ~dst:1 M.Fail;
  Rel.send r ~dst:2 payload;
  (match List.rev !sent with
  | [ (1, M.Data { seq = 0; base = 0; retx = false; payload = p; _ });
      (1, M.Data { seq = 1; base = 0; _ });
      (2, M.Data { seq = 0; _ })
    ] ->
    Alcotest.(check bool) "payload preserved" true (p = payload)
  | _ -> Alcotest.fail "expected per-peer sequences 0,1 and 0");
  (* one retransmission timer per peer, tag 2*peer *)
  Alcotest.(check (list (pair (float 1e-9) int)))
    "retx timers" [ (3.0, 2); (3.0, 4) ]
    (List.sort compare !timers);
  Alcotest.(check int) "in flight to 1" 2 (Rel.in_flight r 1)

let test_first_transmission_counts_as_payload () =
  Alcotest.(check string) "first" "request"
    (M.kind
       (M.Data
          { inc = 0.; dst_inc = 0.; seq = 0; base = 0; retx = false; payload }));
  Alcotest.(check string) "retx" "retx"
    (M.kind
       (M.Data
          { inc = 0.; dst_inc = 0.; seq = 0; base = 0; retx = true; payload }));
  Alcotest.(check string) "ack" "ack" (M.kind (M.Ack { of_inc = 0.; upto = 3 }))

let data ?(inc = 0.0) ?(dst_inc = 0.0) ?(base = 0) ?(retx = false) seq p =
  M.Data { inc; dst_inc; seq; base; retx; payload = p }

let test_in_order_delivery () =
  let io, _, _ = stub_io () in
  let r = Rel.create Rel.default ~n:3 ~self:1 ~io in
  (* seq 1 arrives before seq 0: buffered, then drained in order *)
  let i1 = Rel.on_message r ~src:0 (data 1 M.Fail) in
  Alcotest.(check (list string)) "gap buffered" []
    (List.map M.kind i1.Rel.deliveries);
  let i0 = Rel.on_message r ~src:0 (data 0 payload) in
  Alcotest.(check (list string)) "drained in order" [ "request"; "fail" ]
    (List.map M.kind i0.Rel.deliveries);
  Alcotest.(check bool) "no restart" false i0.Rel.restarted

let test_duplicate_suppression () =
  let io, _, _ = stub_io () in
  let r = Rel.create Rel.default ~n:3 ~self:1 ~io in
  let i = Rel.on_message r ~src:0 (data 0 payload) in
  Alcotest.(check int) "delivered once" 1 (List.length i.Rel.deliveries);
  let i = Rel.on_message r ~src:0 (data 0 payload) in
  Alcotest.(check int) "duplicate dropped" 0 (List.length i.Rel.deliveries);
  (* a retransmitted copy of a buffered gap message is not double-buffered *)
  ignore (Rel.on_message r ~src:0 (data 2 M.Fail));
  ignore (Rel.on_message r ~src:0 (data ~retx:true 2 M.Fail));
  let i = Rel.on_message r ~src:0 (data 1 payload) in
  Alcotest.(check int) "gap drain exact" 2 (List.length i.Rel.deliveries)

let test_ack_clears_backlog () =
  let io, _, _ = stub_io () in
  let r = Rel.create Rel.default ~n:3 ~self:0 ~io in
  Rel.send r ~dst:1 payload;
  Rel.send r ~dst:1 M.Fail;
  Rel.send r ~dst:1 M.Fail;
  Alcotest.(check int) "three unacked" 3 (Rel.in_flight r 1);
  ignore (Rel.on_message r ~src:1 (M.Ack { of_inc = 0.0; upto = 1 }));
  Alcotest.(check int) "cumulative ack" 1 (Rel.in_flight r 1);
  ignore (Rel.on_message r ~src:1 (M.Ack { of_inc = 0.0; upto = 2 }));
  Alcotest.(check int) "drained" 0 (Rel.in_flight r 1);
  (* an ack for a previous incarnation of us is ignored *)
  Rel.send r ~dst:1 M.Fail;
  ignore (Rel.on_message r ~src:1 (M.Ack { of_inc = -1.0; upto = 9 }));
  Alcotest.(check int) "stale-incarnation ack ignored" 1 (Rel.in_flight r 1)

let test_retransmit_with_backoff () =
  let io, sent, timers = stub_io () in
  let r = Rel.create Rel.default ~n:3 ~self:0 ~io in
  Rel.send r ~dst:1 payload;
  Rel.send r ~dst:1 M.Fail;
  sent := [];
  timers := [];
  Alcotest.(check bool) "our tag" true (Rel.on_timer r 2);
  (match List.rev !sent with
  | [ (1, M.Data { seq = 0; retx = true; _ });
      (1, M.Data { seq = 1; retx = true; _ })
    ] -> ()
  | _ -> Alcotest.fail "expected a block retransmission");
  Alcotest.(check (list (pair (float 1e-9) int)))
    "backed-off re-arm" [ (6.0, 2) ] !timers;
  (* not our tag: n = 3 claims tags 0..5 *)
  Alcotest.(check bool) "foreign tag" false (Rel.on_timer r 6)

let test_ack_progress_defers_retransmission () =
  let io, sent, timers = stub_io () in
  let r = Rel.create Rel.default ~n:3 ~self:0 ~io in
  Rel.send r ~dst:1 payload;
  Rel.send r ~dst:1 M.Fail;
  (* seq 0 acked before the deadline: seq 1 is young, not overdue *)
  ignore (Rel.on_message r ~src:1 (M.Ack { of_inc = 0.0; upto = 0 }));
  sent := [];
  timers := [];
  ignore (Rel.on_timer r 2);
  Alcotest.(check int) "no retransmission on a live path" 0
    (List.length !sent);
  Alcotest.(check (list (pair (float 1e-9) int)))
    "re-armed at base rto" [ (3.0, 2) ] !timers;
  (* no further progress: the next deadline really retransmits *)
  sent := [];
  ignore (Rel.on_timer r 2);
  (match !sent with
  | [ (1, M.Data { seq = 1; retx = true; _ }) ] -> ()
  | _ -> Alcotest.fail "expected seq 1 retransmitted once overdue")

let test_suspend_resume () =
  let io, sent, _ = stub_io () in
  let r = Rel.create Rel.default ~n:3 ~self:0 ~io in
  Rel.send r ~dst:1 payload;
  Rel.suspend r 1;
  sent := [];
  ignore (Rel.on_timer r 2);
  Alcotest.(check int) "no retx while suspended" 0 (List.length !sent);
  Rel.resume r 1;
  (match !sent with
  | [ (1, M.Data { retx = true; _ }) ] -> ()
  | _ -> Alcotest.fail "resume must retransmit the backlog");
  Alcotest.(check int) "still unacked" 1 (Rel.in_flight r 1)

let test_delayed_cumulative_ack () =
  let io, sent, timers = stub_io () in
  let r = Rel.create Rel.default ~n:3 ~self:1 ~io in
  ignore (Rel.on_message r ~src:0 (data 0 payload));
  ignore (Rel.on_message r ~src:0 (data 1 M.Fail));
  (* no ack on the wire yet, only the coalescing timer (tag 2*peer+1) *)
  Alcotest.(check int) "no eager ack" 0 (List.length !sent);
  Alcotest.(check (list (pair (float 1e-9) int))) "ack timer" [ (0.5, 1) ] !timers;
  ignore (Rel.on_timer r 1);
  (match !sent with
  | [ (0, M.Ack { upto = 1; _ }) ] -> ()
  | _ -> Alcotest.fail "one cumulative ack for the burst");
  (* nothing due: the timer fires empty *)
  sent := [];
  ignore (Rel.on_timer r 1);
  Alcotest.(check int) "no spurious ack" 0 (List.length !sent)

let test_incarnation_restart () =
  let io, _, _ = stub_io () in
  let r = Rel.create Rel.default ~n:3 ~self:1 ~io in
  (* first contact at incarnation 5 is NOT a restart (nothing to compare) *)
  let i = Rel.on_message r ~src:0 (data ~inc:5.0 0 payload) in
  Alcotest.(check bool) "first contact" false i.Rel.restarted;
  (* a larger incarnation is hard restart evidence; the stream re-bases *)
  let i = Rel.on_message r ~src:0 (data ~inc:9.0 ~base:3 3 M.Fail) in
  Alcotest.(check bool) "restart detected" true i.Rel.restarted;
  Alcotest.(check (list string)) "fresh stream delivers from its base"
    [ "fail" ]
    (List.map M.kind i.Rel.deliveries);
  (* stragglers from the dead incarnation are discarded *)
  let i = Rel.on_message r ~src:0 (data ~inc:5.0 1 payload) in
  Alcotest.(check bool) "no zombie restart" false i.Rel.restarted;
  Alcotest.(check int) "straggler dropped" 0 (List.length i.Rel.deliveries)

let test_stale_destination_dropped () =
  (* we restarted at t=10; a peer that has not yet heard our Hello keeps
     retransmitting mail addressed to our dead incarnation 0 *)
  let io, sent, timers = stub_io ~now:10.0 () in
  let r = Rel.create Rel.default ~n:3 ~self:1 ~io in
  let i = Rel.on_message r ~src:0 (data ~dst_inc:0.0 0 payload) in
  Alcotest.(check int) "dead-incarnation mail dropped" 0
    (List.length i.Rel.deliveries);
  Alcotest.(check int) "not acked" 0 (List.length !sent);
  Alcotest.(check int) "no ack timer" 0 (List.length !timers);
  (* first-contact mail (the peer never heard any incarnation of us) and
     current-incarnation mail are delivered *)
  let i =
    Rel.on_message r ~src:0 (data ~dst_inc:Float.neg_infinity 0 payload)
  in
  Alcotest.(check int) "first contact delivered" 1
    (List.length i.Rel.deliveries);
  let i = Rel.on_message r ~src:0 (data ~dst_inc:10.0 1 M.Fail) in
  Alcotest.(check int) "current incarnation delivered" 1
    (List.length i.Rel.deliveries)

let test_restart_evidence_purges_backlog () =
  let io, _, _ = stub_io () in
  let r = Rel.create Rel.default ~n:3 ~self:0 ~io in
  (* first contact is NOT a restart: mail sent before ever hearing from
     the peer must survive (purging it would strand the receiver, which
     still waits for those sequence numbers) *)
  Rel.send r ~dst:1 payload;
  ignore (Rel.on_message r ~src:1 (data ~inc:5.0 0 payload));
  Alcotest.(check int) "first contact keeps backlog" 1 (Rel.in_flight r 1);
  ignore (Rel.on_message r ~src:1 (M.Ack { of_inc = 0.0; upto = 0 }));
  Rel.send r ~dst:1 M.Fail;
  Alcotest.(check int) "backlog built" 1 (Rel.in_flight r 1);
  (* peer 1 reappears with a larger incarnation: our unacked mail was
     addressed to its dead state and must not be retransmitted to the
     fresh one *)
  let i = Rel.on_message r ~src:1 (data ~inc:9.0 1 payload) in
  Alcotest.(check bool) "restart seen" true i.Rel.restarted;
  Alcotest.(check int) "backlog voided" 0 (Rel.in_flight r 1)

let test_stats_counters () =
  let io, _, _ = stub_io () in
  let r = Rel.create Rel.default ~n:3 ~self:0 ~io in
  Alcotest.(check bool) "fresh layer all zero" true (Rel.stats r = Rel.no_stats);
  Alcotest.(check (list (pair string int))) "alist elides zeros" []
    (Rel.stats_alist r);
  (* two in flight, one deadline: a block retransmission of both *)
  Rel.send r ~dst:1 payload;
  Rel.send r ~dst:1 M.Fail;
  ignore (Rel.on_timer r 2);
  Alcotest.(check int) "retransmits" 2 (Rel.stats r).Rel.retransmits;
  (* a delivered frame, then its duplicate *)
  ignore (Rel.on_message r ~src:1 (data 0 payload));
  ignore (Rel.on_message r ~src:1 (data 0 payload));
  Alcotest.(check int) "past-seq duplicate" 1 (Rel.stats r).Rel.dup_drops;
  (* a retransmitted copy of a still-buffered gap frame *)
  ignore (Rel.on_message r ~src:1 (data 2 M.Fail));
  ignore (Rel.on_message r ~src:1 (data ~retx:true 2 M.Fail));
  Alcotest.(check int) "buffered duplicate" 2 (Rel.stats r).Rel.dup_drops;
  (* the coalesced ack goes out: peer 1's ack tag is 2*1+1 *)
  ignore (Rel.on_timer r 3);
  Alcotest.(check int) "acks sent" 1 (Rel.stats r).Rel.acks_sent;
  Alcotest.(check (option int)) "alist carries retransmits" (Some 2)
    (List.assoc_opt "reliable.retransmits" (Rel.stats_alist r))

let test_stats_stale_drops () =
  (* mail addressed to our dead incarnation (we restarted at t=10) *)
  let io, _, _ = stub_io ~now:10.0 () in
  let r = Rel.create Rel.default ~n:3 ~self:1 ~io in
  ignore (Rel.on_message r ~src:0 (data ~dst_inc:0.0 0 payload));
  Alcotest.(check int) "stale destination" 1 (Rel.stats r).Rel.stale_drops;
  (* a straggler from a source incarnation we already superseded *)
  ignore (Rel.on_message r ~src:0 (data ~inc:5.0 ~dst_inc:10.0 0 payload));
  ignore (Rel.on_message r ~src:0 (data ~inc:9.0 ~dst_inc:10.0 ~base:3 3 M.Fail));
  ignore (Rel.on_message r ~src:0 (data ~inc:5.0 ~dst_inc:10.0 1 payload));
  Alcotest.(check int) "zombie source" 2 (Rel.stats r).Rel.stale_drops

let test_rejects_bare_messages () =
  let io, _, _ = stub_io () in
  let r = Rel.create Rel.default ~n:3 ~self:0 ~io in
  Alcotest.(check bool) "not an envelope" true
    (try
       ignore (Rel.on_message r ~src:1 M.Fail);
       false
     with Invalid_argument _ -> true)

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("send wraps with per-peer sequence", test_send_wraps_with_sequence);
      ("message-kind accounting", test_first_transmission_counts_as_payload);
      ("in-order delivery across gaps", test_in_order_delivery);
      ("duplicate suppression", test_duplicate_suppression);
      ("cumulative ack clears backlog", test_ack_clears_backlog);
      ("block retransmit with backoff", test_retransmit_with_backoff);
      ( "ack progress defers retransmission",
        test_ack_progress_defers_retransmission );
      ("suspend/resume", test_suspend_resume);
      ("delayed cumulative ack", test_delayed_cumulative_ack);
      ("incarnation restart evidence", test_incarnation_restart);
      ("stale-destination mail dropped", test_stale_destination_dropped);
      ("restart evidence purges backlog", test_restart_evidence_purges_backlog);
      ("live stats counters", test_stats_counters);
      ("stale-drop accounting", test_stats_stale_drops);
      ("bare messages rejected", test_rejects_bare_messages);
    ]
