(* The simulation engine itself, exercised through a deliberately trivial
   (and a deliberately broken) protocol. *)

module E = Dmx_sim.Engine
module Proto = Dmx_sim.Protocol
module W = Dmx_sim.Workload

(* A correct centralized protocol: site 0 grants one permit at a time. *)
module Central = struct
  type config = unit
  type message = Req | Grant | Rel

  type state = {
    self : int;
    mutable busy : bool;  (* coordinator side *)
    mutable queue : int list;
    mutable failures_seen : int list;
  }

  let name = "central"
  let describe () = ""
  let message_kind = function Req -> "req" | Grant -> "grant" | Rel -> "rel"
  let pp_message ppf m = Format.pp_print_string ppf (message_kind m)

  let init (ctx : message Proto.ctx) () =
    { self = ctx.self; busy = false; queue = []; failures_seen = [] }

  let grant (ctx : message Proto.ctx) st dst =
    st.busy <- true;
    if dst = ctx.self then ctx.enter_cs () else ctx.send ~dst Grant

  let request_cs (ctx : message Proto.ctx) st =
    if ctx.self = 0 then begin
      if st.busy then st.queue <- st.queue @ [ 0 ] else grant ctx st 0
    end
    else ctx.send ~dst:0 Req

  let release_cs (ctx : message Proto.ctx) st =
    if ctx.self = 0 then begin
      st.busy <- false;
      match st.queue with
      | next :: rest ->
        st.queue <- rest;
        grant ctx st next
      | [] -> ()
    end
    else ctx.send ~dst:0 Rel

  let on_message (ctx : message Proto.ctx) st ~src = function
    | Req -> if st.busy then st.queue <- st.queue @ [ src ] else grant ctx st src
    | Grant -> ctx.enter_cs ()
    | Rel -> (
      st.busy <- false;
      match st.queue with
      | next :: rest ->
        st.queue <- rest;
        grant ctx st next
      | [] -> ())

  let on_timer _ _ _ = ()
  let on_failure _ st site = st.failures_seen <- site :: st.failures_seen
  let on_recovery _ _ _ = ()
end

(* A broken protocol: everyone enters immediately. The engine must detect
   the mutual exclusion violations rather than crash. *)
module Anarchy = struct
  type config = unit
  type message = unit
  type state = unit

  let name = "anarchy"
  let describe () = ""
  let message_kind () = "none"
  let pp_message ppf () = Format.pp_print_string ppf "()"
  let init _ () = ()
  let request_cs (ctx : message Proto.ctx) () = ctx.enter_cs ()
  let release_cs _ () = ()
  let on_message _ () ~src:_ () = ()
  let on_timer _ () _ = ()
  let on_failure _ () _ = ()
  let on_recovery _ () _ = ()
end

module EngC = E.Make (Central)
module EngA = E.Make (Anarchy)

let test_central_runs_clean () =
  let r = EngC.run { (E.default ~n:5) with max_executions = 100; warmup = 10 } () in
  Alcotest.(check int) "violations" 0 r.E.violations;
  Alcotest.(check int) "executions" 100 r.E.executions;
  Alcotest.(check bool) "no deadlock" false r.E.deadlocked

let test_violation_detection () =
  let n = 4 in
  let r =
    EngA.run
      {
        (E.default ~n) with
        workload = W.Burst { requesters = [ 0; 1; 2; 3 ]; at = 0.0 };
        max_executions = 10;
        warmup = 0;
        cs_duration = 5.0;
      }
      ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "violations detected (%d)" r.E.violations)
    true (r.E.violations > 0)

let test_throughput_accounting () =
  (* central coordinator, everything at site 0, zero-delay self messages:
     with one contender the cycle is exactly E. *)
  let r =
    EngC.run
      {
        (E.default ~n:3) with
        workload = W.Saturated { contenders = 1 };
        max_executions = 100;
        warmup = 10;
        cs_duration = 2.0;
      }
      ()
  in
  Alcotest.(check (float 0.01)) "throughput = 1/E" 0.5 r.E.throughput

let test_response_time_accounting () =
  (* remote single contender (site 1): request 1T + grant 1T, then CS. *)
  let r =
    EngC.run
      {
        (E.default ~n:3) with
        workload = W.Burst { requesters = [ 1 ]; at = 0.0 };
        max_executions = 2;
        warmup = 0;
        cs_duration = 1.0;
      }
      ()
  in
  Alcotest.(check int) "one execution" 1 r.E.executions;
  Alcotest.(check (float 1e-9)) "response = 2T" 2.0
    (Dmx_sim.Stats.Summary.mean r.E.response_time)

let test_message_counting_excludes_self () =
  let r =
    EngC.run
      {
        (E.default ~n:3) with
        workload = W.Saturated { contenders = 1 };
        (* only site 0 contends: all its traffic is self-delivered *)
        max_executions = 20;
        warmup = 0;
      }
      ()
  in
  Alcotest.(check int) "no network messages" 0 r.E.total_messages

let test_messages_by_kind () =
  let r =
    EngC.run
      {
        (E.default ~n:3) with
        workload = W.Burst { requesters = [ 1; 2 ]; at = 0.0 };
        max_executions = 3;
        warmup = 0;
      }
      ()
  in
  (* two requests, two grants, two releases -- the final release may be
     outstanding when the run stops, so allow 1 or 2 *)
  Alcotest.(check int) "req" 2 (List.assoc "req" r.E.messages_by_kind);
  Alcotest.(check int) "grant" 2 (List.assoc "grant" r.E.messages_by_kind)

let test_warmup_excluded () =
  let run warmup =
    EngC.run
      { (E.default ~n:4) with max_executions = 50; warmup; cs_duration = 1.0 }
      ()
  in
  let r0 = run 0 and r10 = run 10 in
  Alcotest.(check int) "quota independent of warmup" r0.E.executions
    r10.E.executions;
  (* steady-state rate: both windows cover 50 executions, so the per-CS
     rate must agree closely even though the windows differ *)
  Alcotest.(check bool)
    (Printf.sprintf "per-CS rate stable (%.2f vs %.2f)" r0.E.messages_per_cs
       r10.E.messages_per_cs)
    true
    (abs_float (r0.E.messages_per_cs -. r10.E.messages_per_cs) < 1.0);
  (* the warmed run ends later on the simulated clock *)
  Alcotest.(check bool) "warmup extends sim time" true
    (r10.E.sim_time > r0.E.sim_time)

let test_crash_notifies_survivors () =
  let seen = ref [] in
  let _ =
    EngC.run
      ~inspect:(fun site st ->
        if st.Central.failures_seen <> [] then
          seen := (site, st.Central.failures_seen) :: !seen)
      {
        (E.default ~n:4) with
        workload = W.Saturated { contenders = 1 };
        max_executions = 20;
        warmup = 0;
        crashes = [ (3.0, 3) ];
        detector = E.Oracle 2.0;
      }
      ()
  in
  (* sites 0,1,2 each learn site 3 died *)
  Alcotest.(check int) "three observers" 3 (List.length !seen);
  List.iter
    (fun (_, fs) -> Alcotest.(check (list int)) "saw site 3" [ 3 ] fs)
    !seen

let test_crashed_site_stops_participating () =
  (* crash the coordinator: remaining requests can never be served; the
     engine reports pending work rather than hanging (max_time bounds). *)
  let r =
    EngC.run
      {
        (E.default ~n:3) with
        workload = W.Burst { requesters = [ 1; 2 ]; at = 5.0 };
        max_executions = 5;
        warmup = 0;
        crashes = [ (1.0, 0) ];
        max_time = 100.0;
      }
      ()
  in
  Alcotest.(check int) "nothing executed" 0 r.E.executions;
  Alcotest.(check int) "both pending" 2 r.E.pending_at_end

let test_sync_delay_requires_waiter () =
  (* single contender: handoffs are never contended, so no sync samples *)
  let r =
    EngC.run
      {
        (E.default ~n:3) with
        workload = W.Saturated { contenders = 1 };
        max_executions = 30;
        warmup = 5;
      }
      ()
  in
  Alcotest.(check int) "no contended handoffs" 0
    (Dmx_sim.Stats.Summary.count r.E.sync_delay)

let test_trace_consistency () =
  (* structural sanity of the recorded trace: alternating enter/exit per
     the global CS, every receive preceded by a matching send count, times
     non-decreasing *)
  let module Trace = Dmx_sim.Trace in
  let trace = Trace.create ~enabled:true () in
  let _ =
    EngC.run ~trace_sink:trace
      { (E.default ~n:5) with max_executions = 40; warmup = 0 }
      ()
  in
  let entries = Trace.entries trace in
  let last_time = ref 0.0 in
  let in_cs = ref false in
  let sends = ref 0 and recvs = ref 0 in
  List.iter
    (fun e ->
      Alcotest.(check bool) "time monotone" true (e.Trace.time >= !last_time);
      last_time := e.Trace.time;
      match e.Trace.kind with
      | Trace.Enter_cs ->
        Alcotest.(check bool) "no nested CS" false !in_cs;
        in_cs := true
      | Trace.Exit_cs ->
        Alcotest.(check bool) "exit only from CS" true !in_cs;
        in_cs := false
      | Trace.Send _ -> incr sends
      | Trace.Receive _ -> incr recvs
      | _ -> ())
    entries;
  Alcotest.(check bool) "sends cover receives" true (!recvs <= !sends);
  Alcotest.(check bool) "messages flowed" true (!recvs > 0)

let test_poisson_rate_accuracy () =
  (* open-loop arrivals: over a long window the execution rate equals the
     offered rate when the system is far from saturation *)
  let rate = 0.01 in
  let n = 4 in
  let r =
    EngC.run
      {
        (E.default ~n) with
        workload = W.Poisson { rate_per_site = rate };
        max_executions = 400;
        warmup = 20;
        cs_duration = 0.1;
        max_time = 1.0e9;
      }
      ()
  in
  let offered = rate *. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.4f ~ offered %.4f" r.E.throughput offered)
    true
    (abs_float (r.E.throughput -. offered) /. offered < 0.15)

let test_bad_config_rejected () =
  List.iter
    (fun cfg ->
      Alcotest.(check bool) "rejected" true
        (try
           ignore (EngC.run cfg ());
           false
         with Invalid_argument _ -> true))
    [
      { (E.default ~n:0) with n = 0 };
      { (E.default ~n:3) with max_executions = 0 };
      { (E.default ~n:3) with warmup = -1 };
      { (E.default ~n:3) with crashes = [ (1.0, 99) ] };
    ]

let test_sparse_dense_fingerprint () =
  (* the sparse per-channel watermark table must be observationally
     IDENTICAL to the dense N x N matrix: same RNG draws, same delivery
     times, same trace, bit for bit. Run every baseline protocol both ways
     (random per-message delays so the watermarks actually matter) and
     compare full traces plus the report's aggregates. *)
  let module Trace = Dmx_sim.Trace in
  let module R = Dmx_baselines.Runner in
  let module Net = Dmx_sim.Network in
  let n = 9 in
  let base =
    {
      (E.default ~n) with
      max_executions = 40;
      warmup = 5;
      delay = Net.Uniform { lo = 0.5; hi = 1.5 };
    }
  in
  let runners =
    [
      R.delay_optimal ~n ();
      R.maekawa ~n ();
      R.lamport ~n;
      R.ricart_agrawala ~n;
      R.suzuki_kasami ~n;
      R.raymond ~n ();
    ]
  in
  (* a seeded fault plan drives the loss/duplication/spike and the
     crash-recovery [Network.recover] code paths, where the two channel
     representations differ most; the FT variant's reliability layer keeps
     the run live under them *)
  let faults =
    {
      Net.no_faults with
      Net.loss = 0.1;
      duplication = 0.05;
      delay_spikes = [ (5.0, 15.0, 3.0) ];
    }
  in
  let faulty =
    ( { base with E.faults; crashes = [ (20.0, 2) ]; recoveries = [ (45.0, 2) ] },
      R.ft_delay_optimal ~reliability:Dmx_core.Reliable.default ~n () )
  in
  let compare_runs label cfg (r : R.t) =
    let go dense =
      let sink = Trace.create ~enabled:true () in
      let rep = r.R.run_traced ~trace_sink:sink { cfg with E.dense_channels = dense } in
      (rep, Trace.entries sink)
    in
    let rep_s, tr_s = go false in
    let rep_d, tr_d = go true in
    let lbl what = Printf.sprintf "%s %s: %s" r.R.name label what in
    Alcotest.(check int) (lbl "trace length") (List.length tr_d)
      (List.length tr_s);
    List.iter2
      (fun (a : Trace.entry) (b : Trace.entry) ->
        if a <> b then
          Alcotest.failf "%s: traces diverge at t=%g site=%d"
            (lbl "entries") a.Trace.time a.Trace.site)
      tr_d tr_s;
    Alcotest.(check int) (lbl "messages") rep_d.E.total_messages
      rep_s.E.total_messages;
    Alcotest.(check int) (lbl "executions") rep_d.E.executions
      rep_s.E.executions;
    Alcotest.(check (float 0.0)) (lbl "sim time") rep_d.E.sim_time
      rep_s.E.sim_time;
    Alcotest.(check (float 0.0)) (lbl "throughput") rep_d.E.throughput
      rep_s.E.throughput;
    Alcotest.(check int) (lbl "violations") rep_d.E.violations
      rep_s.E.violations;
    Alcotest.(check bool) (lbl "per-site counts") true
      (rep_d.E.per_site_executions = rep_s.E.per_site_executions)
  in
  List.iter (fun r -> compare_runs "clean" base r) runners;
  let cfg, ft = faulty in
  compare_runs "faulty" cfg ft

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("central protocol baseline", test_central_runs_clean);
      ("violation detection", test_violation_detection);
      ("throughput accounting", test_throughput_accounting);
      ("response time accounting", test_response_time_accounting);
      ("self messages not counted", test_message_counting_excludes_self);
      ("messages by kind", test_messages_by_kind);
      ("warmup excluded from stats", test_warmup_excluded);
      ("crash notifies survivors", test_crash_notifies_survivors);
      ("crashed coordinator stops service", test_crashed_site_stops_participating);
      ("sync delay requires a waiter", test_sync_delay_requires_waiter);
      ("trace consistency", test_trace_consistency);
      ("poisson rate accuracy", test_poisson_rate_accuracy);
      ("bad config rejected", test_bad_config_rejected);
      ("sparse = dense channel fingerprint", test_sparse_dense_fingerprint);
    ]
