(* Dmx_sim.Pool: the deterministic domain fan-out.

   The contract under test is the one every --jobs flag relies on:
   results are collected by job index, so any job count produces exactly
   the sequential output — including full report and whole-trace
   fingerprints of real simulation runs. *)

module Pool = Dmx_sim.Pool
module E = Dmx_sim.Engine
module Net = Dmx_sim.Network
module S = Dmx_sim.Stats.Summary
module Sch = Dmx_sim.Schedule
module T = Dmx_sim.Trace
module R = Dmx_baselines.Runner

let test_run_ordering () =
  let r = Pool.run ~jobs:8 100 (fun i -> i * i) in
  Alcotest.(check (array int))
    "indexed results"
    (Array.init 100 (fun i -> i * i))
    r

let test_map_ordering () =
  let xs = List.init 57 string_of_int in
  Alcotest.(check (list string)) "positional" xs (Pool.map ~jobs:8 Fun.id xs)

let test_concat_map () =
  let xs = List.init 20 Fun.id in
  Alcotest.(check (list int))
    "flattened in order"
    (List.concat_map (fun i -> [ i; 10 * i ]) xs)
    (Pool.concat_map ~jobs:8 (fun i -> [ i; 10 * i ]) xs)

let test_more_jobs_than_work () =
  Alcotest.(check (array int))
    "jobs > count"
    [| 0; 2; 4 |]
    (Pool.run ~jobs:16 3 (fun i -> 2 * i))

let test_empty_and_single () =
  Alcotest.(check (array int)) "count=0" [||] (Pool.run ~jobs:8 0 Fun.id);
  Alcotest.(check (array int)) "count=1" [| 41 |]
    (Pool.run ~jobs:8 1 (fun i -> 41 + i))

exception Boom of int

let test_smallest_index_exception () =
  (* Several jobs fail; the caller must see the failure a sequential
     left-to-right run would have hit first. *)
  for jobs = 1 to 8 do
    match Pool.run ~jobs 50 (fun i -> if i mod 7 = 3 then raise (Boom i)) with
    | _ -> Alcotest.fail "expected Boom"
    | exception Boom i ->
      Alcotest.(check int)
        (Printf.sprintf "first failing index at jobs=%d" jobs)
        3 i
  done

let test_default_jobs_positive () =
  Alcotest.(check bool) "at least one" true (Pool.default_jobs () >= 1)

(* ---- determinism of real simulation runs across job counts ---- *)

let report_fp (r : E.report) =
  Printf.sprintf "%s execs=%d msgs=%d sync=%h sync99=%h resp=%h tput=%h \
                  viol=%d dead=%b retx=%d pending=%d"
    r.E.protocol r.E.executions r.E.total_messages (S.mean r.E.sync_delay)
    (S.percentile r.E.sync_delay 99.0)
    (S.mean r.E.response_time) r.E.throughput r.E.violations r.E.deadlocked
    r.E.retransmissions r.E.pending_at_end

let trace_fp tr =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e -> Buffer.add_string buf (Format.asprintf "%a\n" T.pp_entry e))
    (T.entries tr);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let scheds =
  List.map
    (fun (algo, quorum, n, seed) ->
      {
        (Sch.default ~algo ~n) with
        Sch.quorum;
        seed;
        execs = 30;
        cs = 0.7;
        delay = Net.Uniform { lo = 0.5; hi = 1.5 };
      })
    [
      ("delay-optimal", "grid", 9, 1101);
      ("ft-delay-optimal", "tree", 7, 1202);
      ("maekawa", "grid", 9, 1303);
      ("lamport", "", 8, 1404);
      ("suzuki-kasami", "", 8, 1707);
      ("raymond", "", 8, 1909);
    ]

let fingerprints ~jobs =
  Pool.map ~jobs
    (fun s ->
      match R.run_schedule s with
      | Error e -> Alcotest.fail e
      | Ok (r, tr) -> (report_fp r, trace_fp tr))
    scheds

let test_jobs_do_not_change_results () =
  let seq = fingerprints ~jobs:1 in
  let par = fingerprints ~jobs:8 in
  List.iteri
    (fun i ((r1, t1), (r8, t8)) ->
      let label = (List.nth scheds i).Sch.algo in
      Alcotest.(check string) (label ^ ": report fingerprint") r1 r8;
      Alcotest.(check string) (label ^ ": trace fingerprint") t1 t8)
    (List.combine seq par)

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("run collects by index", test_run_ordering);
      ("map is positional", test_map_ordering);
      ("concat_map flattens in order", test_concat_map);
      ("more jobs than work", test_more_jobs_than_work);
      ("empty and singleton", test_empty_and_single);
      ("smallest-index exception wins", test_smallest_index_exception);
      ("default_jobs positive", test_default_jobs_positive);
      ("jobs=1 and jobs=8 bit-identical", test_jobs_do_not_change_results);
    ]
