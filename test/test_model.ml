(* The analytic model (lib/model): formula bands, tolerance semantics,
   canary rejection of perturbed measurements, and golden quick-mode
   simulations re-checked against the paper's Section 5 closed forms. *)

module Mdl = Dmx_model.Model
module E = Dmx_sim.Engine
module Net = Dmx_sim.Network
module W = Dmx_sim.Workload
module R = Dmx_baselines.Runner
module B = Dmx_quorum.Builder

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let find_exp metric exps =
  match List.find_opt (fun e -> e.Mdl.metric = metric) exps with
  | Some e -> e
  | None ->
    Alcotest.fail
      (Printf.sprintf "no %s expectation emitted" (Mdl.metric_name metric))

let heavy_params ?(algorithm = "delay-optimal") ?(n = 25) ?(e = 2.0) () =
  Mdl.params ~algorithm ~n ~e ~t:1.0 ~load:Mdl.Heavy ~delay_shape:Mdl.Constant
    ()

(* ---- the closed forms themselves ---- *)

let test_message_bands_from_formulas () =
  (* n=25, grid K=9: every Table 1 family *)
  let band algorithm load =
    (find_exp Mdl.Msgs_per_cs
       (Mdl.expectations
          (Mdl.params ~algorithm ~n:25 ~e:2.0 ~t:1.0 ~load
             ~delay_shape:Mdl.Constant ())))
      .Mdl.band
  in
  let check name (b : Mdl.band) lo hi =
    Alcotest.(check (float 1e-6)) (name ^ " lo") lo b.Mdl.lo;
    Alcotest.(check (float 1e-6)) (name ^ " hi") hi b.Mdl.hi
  in
  check "lamport" (band "lamport" Mdl.Heavy) 72.0 72.0;
  check "ricart-agrawala" (band "ricart-agrawala" Mdl.Heavy) 48.0 48.0;
  check "singhal-dynamic" (band "singhal-dynamic" Mdl.Heavy) 24.0 48.0;
  check "maekawa heavy" (band "maekawa" Mdl.Heavy) 24.0 40.0;
  check "maekawa light" (band "maekawa" Mdl.Light) 24.0 24.0;
  check "delay-optimal light" (band "delay-optimal" Mdl.Light) 24.0 24.0;
  check "delay-optimal heavy" (band "delay-optimal" Mdl.Heavy) 40.0 48.0;
  check "suzuki-kasami" (band "suzuki-kasami" Mdl.Heavy) 0.0 25.0;
  (* raymond: O(log N) envelope, 4 log2 25 *)
  let r = band "raymond" Mdl.Heavy in
  Alcotest.(check (float 1e-6)) "raymond hi" (4.0 *. (log 25.0 /. log 2.0)) r.Mdl.hi

let test_k_computed_from_construction () =
  (* the model derives K from the coterie, never from a hand-typed value *)
  let k kind n = (Mdl.params ~kind ~algorithm:"delay-optimal" ~n ~e:1.0 ~t:1.0
                    ~load:Mdl.Light ~delay_shape:Mdl.Constant ()).Mdl.k in
  Alcotest.(check (float 1e-6)) "grid 25" 9.0 (k B.Grid 25);
  Alcotest.(check (float 1e-6)) "majority 25" 13.0 (k B.Majority 25);
  Alcotest.(check (float 1e-6)) "hqc 27" 8.0 (k B.Hqc 27)

let test_sync_and_throughput_bands () =
  let exps = Mdl.expectations (heavy_params ()) in
  let sync = find_exp Mdl.Sync_delay exps in
  Alcotest.(check (float 1e-6)) "T handoff lo" 1.0 sync.Mdl.band.Mdl.lo;
  Alcotest.(check (float 1e-6)) "T handoff hi" 1.0 sync.Mdl.band.Mdl.hi;
  let m = find_exp Mdl.Sync_delay (Mdl.expectations (heavy_params ~algorithm:"maekawa" ())) in
  Alcotest.(check (float 1e-6)) "maekawa 2T" 2.0 m.Mdl.band.Mdl.lo;
  let th = find_exp Mdl.Throughput exps in
  Alcotest.(check (float 1e-6)) "1/(E+2T)" (1.0 /. 4.0) th.Mdl.band.Mdl.lo;
  Alcotest.(check (float 1e-6)) "1/(E+T)" (1.0 /. 3.0) th.Mdl.band.Mdl.hi

let test_mm1 () =
  let m = Mdl.mm1 ~n:25 ~rate_per_site:0.01 ~e:1.0 ~t:1.0 in
  Alcotest.(check (float 1e-9)) "rho" 0.5 m.Mdl.rho;
  (match m.Mdl.response with
  | Some r -> Alcotest.(check (float 1e-9)) "2T + W" 4.0 r
  | None -> Alcotest.fail "steady state expected below the knee");
  let sat = Mdl.mm1 ~n:25 ~rate_per_site:0.02 ~e:1.0 ~t:1.0 in
  Alcotest.(check (float 1e-9)) "rho saturated" 1.0 sat.Mdl.rho;
  Alcotest.(check bool) "no steady state past the knee" true
    (sat.Mdl.response = None)

(* ---- tolerance semantics ---- *)

let test_tolerance_absolute_and_relative () =
  let exp_ tol =
    {
      Mdl.metric = Mdl.Msgs_per_cs;
      band = { Mdl.lo = 10.0; hi = 20.0 };
      tol;
      formula = "10..20";
      provenance = "unit";
    }
  in
  let ok tol v = (Mdl.check (exp_ tol) v).Mdl.ok in
  let abs = { Mdl.abs = 0.5; rel = 0.0 } in
  Alcotest.(check bool) "below - slack" false (ok abs 9.4);
  Alcotest.(check bool) "inside lo slack" true (ok abs 9.6);
  Alcotest.(check bool) "inside band" true (ok abs 15.0);
  Alcotest.(check bool) "inside hi slack" true (ok abs 20.4);
  Alcotest.(check bool) "above + slack" false (ok abs 20.6);
  (* relative slack scales with each bound: 10% of 10 below, of 20 above *)
  let rel = { Mdl.abs = 0.0; rel = 0.1 } in
  Alcotest.(check bool) "below rel slack" false (ok rel 8.9);
  Alcotest.(check bool) "within rel lo" true (ok rel 9.1);
  Alcotest.(check bool) "within rel hi" true (ok rel 21.9);
  Alcotest.(check bool) "above rel hi" false (ok rel 22.1)

(* ---- canary negatives: perturbed measurements must be rejected ---- *)

let good_measurement () =
  {
    Mdl.source = "canary";
    params = heavy_params ();
    msgs_per_cs = Some 41.3;
    sync_delay = Some 1.0;
    response_time = None;
    throughput = Some 0.333;
  }

let failures vs = List.filter (fun v -> not v.Mdl.ok) vs

let test_canary_clean_measurement_passes () =
  let vs = Mdl.check_measurement (good_measurement ()) in
  Alcotest.(check bool) "expectations emitted" true (List.length vs >= 3);
  Alcotest.(check int) "all pass" 0 (List.length (failures vs))

let test_canary_sync_at_2t_rejected () =
  (* a regression that loses the T-handoff (sync = 2T, Maekawa-like)
     must fail the sync expectation with a pointed message *)
  let vs =
    Mdl.check_measurement { (good_measurement ()) with sync_delay = Some 2.0 }
  in
  match failures vs with
  | [ v ] ->
    Alcotest.(check bool) "names the metric" true
      (contains v.Mdl.message "sync delay");
    Alcotest.(check bool) "says above band" true
      (contains v.Mdl.message "above the paper band");
    Alcotest.(check bool) "quantifies the excess" true
      (contains v.Mdl.message "off by")
  | l ->
    Alcotest.fail
      (Printf.sprintf "expected exactly the sync failure, got %d" (List.length l))

let test_canary_msgs_ten_percent_high_rejected () =
  let vs =
    Mdl.check_measurement
      { (good_measurement ()) with msgs_per_cs = Some (48.0 *. 1.1) }
  in
  match failures vs with
  | [ v ] ->
    Alcotest.(check bool) "names msgs/CS" true (contains v.Mdl.message "msgs/CS");
    Alcotest.(check bool) "cites the formula" true
      (contains v.Mdl.message "5(K-1)..6(K-1)")
  | l ->
    Alcotest.fail
      (Printf.sprintf "expected exactly the msgs failure, got %d" (List.length l))

let test_canary_throughput_collapse_rejected () =
  (* throughput falling to Maekawa's 1/(E+2T) = 0.25 is a real regression
     signal at E=2T and must not slip through the tolerance *)
  let vs =
    Mdl.check_measurement { (good_measurement ()) with throughput = Some 0.2 }
  in
  Alcotest.(check int) "rejected" 1 (List.length (failures vs))

(* ---- golden quick-mode simulations through the model ---- *)

let light ~n =
  {
    (E.default ~n) with
    seed = 42;
    cs_duration = 1.0;
    max_executions = 80;
    warmup = 5;
    workload = W.Poisson { rate_per_site = 0.0002 };
    max_time = 1.0e9;
  }

let heavy ?(cs = 2.0) ?(delay = Net.Constant 1.0) ~n () =
  {
    (E.default ~n) with
    seed = 42;
    cs_duration = cs;
    delay;
    max_executions = 150;
    warmup = 30;
  }

let assert_all_pass vs =
  List.iter
    (fun v -> if not v.Mdl.ok then Alcotest.fail v.Mdl.message)
    vs;
  Alcotest.(check bool) "some verdicts" true (vs <> [])

let golden ~source runner cfg =
  let r = runner.R.run cfg in
  assert_all_pass
    (Mdl.check_measurement (Mdl.of_report ~source ~cfg r))

let test_golden_table1_small () =
  (* T1 at n=9: the paper's headline rows, measured then model-checked *)
  List.iter
    (fun runner -> golden ~source:("T1 " ^ runner.R.name) runner (heavy ~n:9 ()))
    [ R.delay_optimal ~n:9 (); R.maekawa ~n:9 (); R.lamport ~n:9;
      R.ricart_agrawala ~n:9 ]

let test_golden_light_load () =
  (* E1: 3(K-1) messages, 2T response *)
  List.iter
    (fun n -> golden ~source:(Printf.sprintf "E1 N=%d" n)
        (R.delay_optimal ~n ()) (light ~n))
    [ 9; 16 ]

let test_golden_sync_delay_random () =
  (* E3: the T-vs-2T gap under exponential delays *)
  let cfg = heavy ~cs:1.0 ~delay:(Net.Exponential { mean = 1.0 }) ~n:9 () in
  golden ~source:"E3 delay-optimal" (R.delay_optimal ~n:9 ()) cfg;
  golden ~source:"E3 maekawa" (R.maekawa ~n:9 ()) cfg

let test_golden_throughput () =
  (* E4: heavy-load throughput at E=0.1T against 1/(E+2T)..1/(E+T) *)
  let cfg = { (heavy ~cs:0.1 ~n:9 ()) with max_executions = 300 } in
  golden ~source:"E4 delay-optimal" (R.delay_optimal ~n:9 ()) cfg;
  golden ~source:"E4 maekawa" (R.maekawa ~n:9 ()) cfg

let test_of_report_classifies_load () =
  (* the classifier keys on offered load rho = N * rate * (E+T) *)
  let m cfg =
    (Mdl.of_report ~source:"cls" ~cfg ((R.delay_optimal ~n:9 ()).R.run cfg))
      .Mdl.params.Mdl.load
  in
  (match m (light ~n:9) with
  | Mdl.Light -> ()
  | _ -> Alcotest.fail "rare poisson should classify as Light");
  (match m (heavy ~n:9 ()) with
  | Mdl.Heavy -> ()
  | _ -> Alcotest.fail "saturated should classify as Heavy");
  match
    m { (light ~n:9) with workload = W.Poisson { rate_per_site = 0.02 } }
  with
  | Mdl.Poisson r -> Alcotest.(check (float 1e-9)) "rate kept" 0.02 r
  | _ -> Alcotest.fail "mid-range poisson should stay Poisson"

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("message bands from formulas", test_message_bands_from_formulas);
      ("K computed from the construction", test_k_computed_from_construction);
      ("sync and throughput bands", test_sync_and_throughput_bands);
      ("M/M/1 waiting-time model", test_mm1);
      ("tolerance semantics", test_tolerance_absolute_and_relative);
      ("canary: clean measurement passes", test_canary_clean_measurement_passes);
      ("canary: sync at 2T rejected", test_canary_sync_at_2t_rejected);
      ("canary: msgs 10% above band rejected", test_canary_msgs_ten_percent_high_rejected);
      ("canary: throughput collapse rejected", test_canary_throughput_collapse_rejected);
      ("golden: Table 1 small", test_golden_table1_small);
      ("golden: E1 light load", test_golden_light_load);
      ("golden: E3 sync under random delays", test_golden_sync_delay_random);
      ("golden: E4 throughput", test_golden_throughput);
      ("of_report load classification", test_of_report_classifies_load);
    ]
