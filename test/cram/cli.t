The dmx-sim CLI is deterministic for a fixed seed, so its output can be
checked verbatim.

Quorum construction and validation:

  $ dmx-sim quorums --quorum tree --sites 15
  tree over 15 sites: VALID coterie assignment
  quorum size: min=4 max=4 mean=4.00
  minimal (no quorum contains another): true

  $ dmx-sim quorums --quorum grid --sites 9 --show
  grid over 9 sites: VALID coterie assignment
  quorum size: min=5 max=5 mean=5.00
  minimal (no quorum contains another): true
    req_set(0) = {0,1,2,3,6}
    req_set(1) = {0,1,2,4,7}
    req_set(2) = {0,1,2,5,8}
    req_set(3) = {0,3,4,5,6}
    req_set(4) = {1,3,4,5,7}
    req_set(5) = {2,3,4,5,8}
    req_set(6) = {0,3,6,7,8}
    req_set(7) = {1,4,6,7,8}
    req_set(8) = {2,5,6,7,8}

Unsupported sizes are reported, not mangled:

  $ dmx-sim quorums --quorum fpp --sites 10
  fpp does not support n=10
  [1]

A short deterministic simulation in CSV form:

  $ dmx-sim run -a delay-optimal --sites 9 --execs 100 --warmup 10 --csv
  algorithm,variant,n,executions,messages,msgs_per_cs,sync_mean,sync_p99,resp_mean,resp_p99,throughput,violations,deadlocked,pending,retx,unavail_windows,unavail_time
  delay-optimal,grid,9,100,1974,19.740,1.3400,2.0000,20.0200,25.0000,0.427350,0,false,8,0,0,0.0000

Maekawa under the same scenario pays the 2T handoff:

  $ dmx-sim run -a maekawa --sites 9 --execs 100 --warmup 10 --csv
  algorithm,variant,n,executions,messages,msgs_per_cs,sync_mean,sync_p99,resp_mean,resp_p99,throughput,violations,deadlocked,pending,retx,unavail_windows,unavail_time
  maekawa,grid,9,100,1603,16.030,2.0000,2.0000,26.0000,32.0000,0.333333,0,false,8,0,0,0.0000

Exact availability of the majority coterie:

  $ dmx-sim avail --quorum majority --sites 5
  availability of majority over 5 sites
     p(up) availability
      0.50       0.5000
      0.60       0.6826
      0.70       0.8369
      0.80       0.9421
      0.90       0.9914
      0.95       0.9988
      0.99       1.0000
      1.00       1.0000

A parameter sweep in CSV (deterministic too):

  $ dmx-sim sweep --axis n --values 4,9 --algos delay-optimal --execs 50 --warmup 5
  axis,value,algorithm,variant,n,executions,messages,msgs_per_cs,sync_mean,sync_p99,resp_mean,resp_p99,throughput,violations,deadlocked,pending,retx,unavail_windows,unavail_time
  n,4,delay-optimal,grid,4,50,503,10.060,1.0000,1.0000,7.0000,9.0000,0.500000,0,false,3,0,0,0.0000
  n,9,delay-optimal,grid,9,50,996,19.920,1.3400,2.0000,19.8400,27.0000,0.427350,0,false,8,0,0,0.0000

Parallel fan-out never changes results: the same sweep at --jobs 1 and
--jobs 8 is byte-identical (results are collected by job index, each run
is an independent seeded world):

  $ dmx-sim sweep --axis n --values 4,9,16 --algos delay-optimal,maekawa --execs 50 --warmup 5 --jobs 1 > sweep-j1.csv
  $ dmx-sim sweep --axis n --values 4,9,16 --algos delay-optimal,maekawa --execs 50 --warmup 5 --jobs 8 > sweep-j8.csv
  $ cmp sweep-j1.csv sweep-j8.csv

Replaying several reproducers at once keeps per-file output in argument
order, with headers:

  $ printf 'dmxrepro v1\nalgo delay-optimal\nquorum grid\nseed 5\nn 4\nexecs 5\ncs 0x1p+0\n' > a.dmxrepro && cp a.dmxrepro b.dmxrepro
  $ dmx-sim replay a.dmxrepro b.dmxrepro --quiet --jobs 2
  === a.dmxrepro ===
  trace OK: 222 entries, 5 CS executions, 61 messages
  === b.dmxrepro ===
  trace OK: 222 entries, 5 CS executions, 61 messages

The trace subcommand ends with a swimlane timeline:

  $ dmx-sim trace --sites 2 --execs 2 --load burst --limit 0 | head -4
  ... (46 more lines)
  t: 0.0 .. 6.0
  site   0 |...................................#############........................
  site   1 |...........................................................#############

The validate subcommand re-checks measurements against the paper's
Section 5 closed forms (lib/model).  A clean deterministic run passes
every band:

  $ dmx-sim run -a delay-optimal --sites 9 --execs 100 --warmup 10 --csv > good.csv
  $ dmx-sim validate good.csv
  pass good.csv:2 delay-optimal: msgs/CS = 19.740 within 5(K-1)..6(K-1) = 20.0..24.0 (§5.2, Table 1)
  pass good.csv:2 delay-optimal: sync delay = 1.340 within T..1.4T (E < 2T: some handoffs take the release path) (§5.2, Table 1)
  pass good.csv:2 delay-optimal: throughput = 0.427 within 1/(E+2T)..1/(E+T) = 0.333..0.500 (§5.2)
  model verdicts: 3 checked, 0 failed

A perturbed measurement -- sync delay forged to 2T, the Maekawa figure,
on a delay-optimal row -- is rejected with a pointed diagnostic and
exit code 2:

  $ sed 's/,1.3400,/,2.0000,/' good.csv > pert.csv
  $ dmx-sim validate pert.csv
  pass pert.csv:2 delay-optimal: msgs/CS = 19.740 within 5(K-1)..6(K-1) = 20.0..24.0 (§5.2, Table 1)
  FAIL pert.csv:2 delay-optimal: sync delay = 2.000 is above the paper band T..1.4T (E < 2T: some handoffs take the release path) (§5.2, Table 1): tolerated up to 1.512, off by 0.488
  pass pert.csv:2 delay-optimal: throughput = 0.427 within 1/(E+2T)..1/(E+T) = 0.333..0.500 (§5.2)
  model verdicts: 3 checked, 1 failed
  [2]

A bench snapshot with an unknown schema version, and a truncated one,
are both rejected cleanly (exit 1), never with an exception:

  $ printf '{ "schema": "dmx-bench/9" }' > bad.json
  $ dmx-sim validate bad.json
  bad.json: unknown schema version "dmx-bench/9" (this tool understands "dmx-bench/1")
  [1]
  $ printf '{ "schema": "dmx-bench/1", "quick": true, "jo' > trunc.json
  $ dmx-sim validate trunc.json
  trunc.json: not valid JSON: offset 45: unterminated string
  [1]
