The A3 asymptotics sweep is reachable by its EXPERIMENTS.md label (case
folded) as well as by its registry name. DMX_A3_MAX_N caps the tier list,
so this cram keeps to the N=1000 tier; wall-clock, events/sec and heap
figures are machine-dependent and are stripped before comparison.

  $ DMX_A3_MAX_N=1000 dmx-sim bench A3 --quick --validate --json bench.json > out.txt 2>&1
  $ echo "exit=$?"
  exit=0

The table's shape: one row per construction with N pinned to the tier and
K following the construction's law (2*sqrt(N)-1 grid, ~sqrt(N) FPP,
ceil(log2(N+1)) tree), every row passing all three band checks:

  $ grep '^== A3' out.txt
  == A3 (5.3): huge-N asymptotics, machine-checked (N up to 1000, 8 active sites) ==
  $ awk -F'|' 'NF>3 { gsub(/ /,"",$2); gsub(/ /,"",$3); gsub(/ /,"",$4); gsub(/ /,"",$9); if ($2 != "" && $2 != "construction") print $2, $3, $4, $9 }' out.txt
  grid 1000 63.0 3/3
  fpp 993 32.0 3/3
  tree 1000 10.0 3/3

Every measurement sits inside its Section 5 band (3 checks x 3
constructions at this tier):

  $ grep -c '  pass A3' out.txt
  9
  $ grep 'model verdicts' out.txt
  model verdicts: 9 checked, 0 failed

The bench snapshot it wrote is accepted by `dmx-sim validate` (figures
stripped for determinism):

  $ dmx-sim validate bench.json | sed -e 's/[0-9][0-9.]*s/Xs/g' -e 's/ [0-9]* events/ X events/' -e 's/[0-9.]* ev\/s/X ev\/s/' -e 's/peak heap [0-9]* words/peak heap X words/' | tr -s ' '
  schema dmx-bench/1, quick mode, 1 job(s), 1 experiment(s)
   asymptotics Xs X events X ev/s ok
   total Xs, peak heap X words, oracle rejected 0
  snapshot OK

A nonsense tier cap is refused rather than silently running nothing:

  $ DMX_A3_MAX_N=50 dmx-sim bench asymptotics --quick 2>&1 | grep FAILED
  [asymptotics FAILED: DMX_A3_MAX_N too small: the first tier is N=1000]
  FAILED experiments: asymptotics
