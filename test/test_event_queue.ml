(* Event queue: time order, deterministic tie-breaking, clock discipline. *)

module Eq = Dmx_sim.Event_queue

let drain q =
  let rec loop acc =
    match Eq.next q with
    | None -> List.rev acc
    | Some ev -> loop ((ev.Eq.time, ev.Eq.payload) :: acc)
  in
  loop []

let test_time_order () =
  let q = Eq.create () in
  Eq.schedule q ~time:3.0 "c";
  Eq.schedule q ~time:1.0 "a";
  Eq.schedule q ~time:2.0 "b";
  Alcotest.(check (list (pair (float 0.0) string)))
    "ordered" [ (1.0, "a"); (2.0, "b"); (3.0, "c") ] (drain q)

let test_tie_break_is_insertion_order () =
  let q = Eq.create () in
  List.iter (fun p -> Eq.schedule q ~time:1.0 p) [ "x"; "y"; "z" ];
  Alcotest.(check (list string))
    "fifo among equals" [ "x"; "y"; "z" ]
    (List.map snd (drain q))

let test_clock_advances () =
  let q = Eq.create () in
  Alcotest.(check (float 0.0)) "starts at 0" 0.0 (Eq.now q);
  Eq.schedule q ~time:5.0 ();
  ignore (Eq.next q);
  Alcotest.(check (float 0.0)) "now is 5" 5.0 (Eq.now q)

let test_no_scheduling_into_past () =
  let q = Eq.create () in
  Eq.schedule q ~time:5.0 ();
  ignore (Eq.next q);
  Alcotest.(check bool) "raises" true
    (try
       Eq.schedule q ~time:4.0 ();
       false
     with Invalid_argument _ -> true)

let test_schedule_at_now_ok () =
  let q = Eq.create () in
  Eq.schedule q ~time:5.0 "first";
  ignore (Eq.next q);
  Eq.schedule q ~time:5.0 "second";
  match Eq.next q with
  | Some { payload = "second"; time = 5.0; _ } -> ()
  | _ -> Alcotest.fail "expected second at t=5"

let test_rejects_nan () =
  let q = Eq.create () in
  Alcotest.(check bool) "nan rejected" true
    (try
       Eq.schedule q ~time:Float.nan ();
       false
     with Invalid_argument _ -> true)

let test_peek_time () =
  let q = Eq.create () in
  Alcotest.(check (option (float 0.0))) "empty" None (Eq.peek_time q);
  Eq.schedule q ~time:2.0 ();
  Eq.schedule q ~time:1.0 ();
  Alcotest.(check (option (float 0.0))) "min" (Some 1.0) (Eq.peek_time q)

let test_drop_if () =
  let q = Eq.create () in
  List.iteri (fun i p -> Eq.schedule q ~time:(float_of_int i) p) [ 0; 1; 2; 3; 4 ];
  Alcotest.(check int) "dropped" 2 (Eq.drop_if q (fun p -> p mod 2 = 1));
  Alcotest.(check (list int)) "evens" [ 0; 2; 4 ] (List.map snd (drain q))

let test_drop_if_preserves_tie_break () =
  (* Survivors of a drop keep their original insertion seq, so equal-time
     events still drain in insertion order — the engine depends on this
     when a crash purges a site's events mid-run. *)
  let q = Eq.create () in
  List.iter (fun p -> Eq.schedule q ~time:1.0 p) [ "a"; "b"; "c"; "d"; "e"; "f" ];
  Alcotest.(check int) "dropped" 2 (Eq.drop_if q (fun p -> p = "b" || p = "e"));
  Alcotest.(check (list string))
    "insertion order among equals survives the drop"
    [ "a"; "c"; "d"; "f" ]
    (List.map snd (drain q))

let test_drop_if_interleaves_late_inserts () =
  (* After a drop, new events at the same time still sort behind the
     surviving older ones. *)
  let q = Eq.create () in
  List.iter (fun p -> Eq.schedule q ~time:2.0 p) [ 10; 11; 12 ];
  ignore (Eq.drop_if q (fun p -> p = 11));
  Eq.schedule q ~time:2.0 13;
  Alcotest.(check (list int)) "old-then-new among equals" [ 10; 12; 13 ]
    (List.map snd (drain q))

let qcheck_drop_if_order =
  QCheck.Test.make ~name:"drop_if preserves (time, seq) order" ~count:300
    QCheck.(pair (list (float_bound_inclusive 100.0)) small_int)
    (fun (times, m) ->
      let q = Eq.create () in
      List.iteri (fun i t -> Eq.schedule q ~time:t (i, t)) times;
      let keep (i, _) = i mod (1 + m) <> 0 in
      let dropped = Eq.drop_if q (fun p -> not (keep p)) in
      let drained = drain q in
      let rec ordered = function
        | (t1, (i1, _)) :: ((t2, (i2, _)) :: _ as rest) ->
          (t1 < t2 || (t1 = t2 && i1 < i2)) && ordered rest
        | _ -> true
      in
      dropped + List.length drained = List.length times
      && List.for_all (fun (_, p) -> keep p) drained
      && ordered drained)

let test_length () =
  let q = Eq.create () in
  Alcotest.(check bool) "empty" true (Eq.is_empty q);
  Eq.schedule q ~time:1.0 ();
  Eq.schedule q ~time:2.0 ();
  Alcotest.(check int) "two" 2 (Eq.length q)

let qcheck_ordered_drain =
  QCheck.Test.make ~name:"events drain in (time, seq) order" ~count:300
    QCheck.(list (float_bound_inclusive 1000.0))
    (fun times ->
      let q = Eq.create () in
      List.iteri (fun i t -> Eq.schedule q ~time:t (i, t)) times;
      let drained = drain q in
      (* times non-decreasing, and among equal times the indices ascend *)
      let rec ok = function
        | (t1, (i1, _)) :: ((t2, (i2, _)) :: _ as rest) ->
          (t1 < t2 || (t1 = t2 && i1 < i2)) && ok rest
        | _ -> true
      in
      ok drained)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("time order", test_time_order);
      ("tie-break by insertion", test_tie_break_is_insertion_order);
      ("clock advances", test_clock_advances);
      ("no past scheduling", test_no_scheduling_into_past);
      ("schedule at current time", test_schedule_at_now_ok);
      ("rejects nan", test_rejects_nan);
      ("peek_time", test_peek_time);
      ("drop_if", test_drop_if);
      ("drop_if keeps tie-break", test_drop_if_preserves_tie_break);
      ("drop_if then insert at same time", test_drop_if_interleaves_late_inserts);
      ("length / is_empty", test_length);
    ]
  @ [
      QCheck_alcotest.to_alcotest qcheck_ordered_drain;
      QCheck_alcotest.to_alcotest qcheck_drop_if_order;
    ]
