(* Arrival processes. *)

module W = Dmx_sim.Workload
module Rng = Dmx_sim.Rng

let rng () = Rng.create 3

let test_poisson_initial () =
  let arr = W.initial_arrivals (W.Poisson { rate_per_site = 0.5 }) ~n:5 ~rng:(rng ()) in
  Alcotest.(check int) "one per site" 5 (List.length arr);
  List.iter
    (fun (t, s) ->
      Alcotest.(check bool) "future time" true (t >= 0.0);
      Alcotest.(check bool) "site in range" true (s >= 0 && s < 5))
    arr;
  Alcotest.(check (list int)) "each site once" [ 0; 1; 2; 3; 4 ]
    (List.sort compare (List.map snd arr))

let test_poisson_rate_validated () =
  Alcotest.(check bool) "rate 0 rejected" true
    (try
       ignore (W.initial_arrivals (W.Poisson { rate_per_site = 0.0 }) ~n:3 ~rng:(rng ()));
       false
     with Invalid_argument _ -> true)

let test_poisson_next () =
  match W.next_arrival (W.Poisson { rate_per_site = 2.0 }) ~site:1 ~now:10.0 ~rng:(rng ()) with
  | Some t -> Alcotest.(check bool) "after now" true (t > 10.0)
  | None -> Alcotest.fail "poisson never exhausts"

let test_saturated () =
  let w = W.Saturated { contenders = 3 } in
  let arr = W.initial_arrivals w ~n:5 ~rng:(rng ()) in
  Alcotest.(check (list (pair (float 0.0) int))) "three at t=0"
    [ (0.0, 0); (0.0, 1); (0.0, 2) ]
    (List.sort compare arr);
  Alcotest.(check bool) "closed loop" true (W.is_closed_loop w);
  Alcotest.(check (option (float 0.0))) "contender re-arrives now" (Some 7.0)
    (W.next_arrival w ~site:1 ~now:7.0 ~rng:(rng ()));
  Alcotest.(check (option (float 0.0))) "non-contender never" None
    (W.next_arrival w ~site:4 ~now:7.0 ~rng:(rng ()))

let test_saturated_bounds () =
  Alcotest.(check bool) "contenders > n rejected" true
    (try
       ignore (W.initial_arrivals (W.Saturated { contenders = 9 }) ~n:5 ~rng:(rng ()));
       false
     with Invalid_argument _ -> true)

let test_open_loop () =
  let w = W.Open_loop { active = 3; rate_per_site = 0.5 } in
  let arr = W.initial_arrivals w ~n:1_000_000 ~rng:(rng ()) in
  Alcotest.(check int) "one per active site" 3 (List.length arr);
  Alcotest.(check (list int)) "active prefix only" [ 0; 1; 2 ]
    (List.sort compare (List.map snd arr));
  Alcotest.(check bool) "open loop" false (W.is_closed_loop w);
  (match W.next_arrival w ~site:1 ~now:10.0 ~rng:(rng ()) with
  | Some t -> Alcotest.(check bool) "after now" true (t > 10.0)
  | None -> Alcotest.fail "open-loop never exhausts");
  Alcotest.(check bool) "rate validated" true
    (try
       ignore
         (W.initial_arrivals
            (W.Open_loop { active = 3; rate_per_site = 0.0 })
            ~n:5 ~rng:(rng ()));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "active > n rejected" true
    (try
       ignore (W.initial_arrivals w ~n:2 ~rng:(rng ()));
       false
     with Invalid_argument _ -> true)

let test_huge_n_eager_workloads_refused () =
  (* above [max_eager_sites] the per-site workloads would materialize every
     site and defeat the lazy machinery; they must refuse loudly *)
  let n = W.max_eager_sites + 1 in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let rejects w =
    try
      ignore (W.initial_arrivals w ~n ~rng:(rng ()));
      false
    with Invalid_argument m ->
      (* the error must point at the fix, not just say "no" *)
      contains m "open-loop" || contains m "contenders"
  in
  Alcotest.(check bool) "poisson refused" true
    (rejects (W.Poisson { rate_per_site = 0.1 }));
  Alcotest.(check bool) "saturated-all refused" true
    (rejects (W.Saturated { contenders = n }));
  (* the lazy-compatible forms still work at the same n *)
  Alcotest.(check int) "open-loop fine" 4
    (List.length
       (W.initial_arrivals
          (W.Open_loop { active = 4; rate_per_site = 0.1 })
          ~n ~rng:(rng ())));
  Alcotest.(check int) "small saturated fine" 4
    (List.length
       (W.initial_arrivals (W.Saturated { contenders = 4 }) ~n ~rng:(rng ())))

let test_burst () =
  let w = W.Burst { requesters = [ 2; 4 ]; at = 3.5 } in
  let arr = W.initial_arrivals w ~n:5 ~rng:(rng ()) in
  Alcotest.(check (list (pair (float 0.0) int))) "burst pair"
    [ (3.5, 2); (3.5, 4) ]
    (List.sort compare arr);
  Alcotest.(check bool) "open loop" false (W.is_closed_loop w);
  Alcotest.(check (option (float 0.0))) "one-shot" None
    (W.next_arrival w ~site:2 ~now:9.0 ~rng:(rng ()))

let test_burst_range_checked () =
  Alcotest.(check bool) "site out of range" true
    (try
       ignore (W.initial_arrivals (W.Burst { requesters = [ 7 ]; at = 0.0 }) ~n:5 ~rng:(rng ()));
       false
     with Invalid_argument _ -> true)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("poisson initial arrivals", test_poisson_initial);
      ("poisson validates rate", test_poisson_rate_validated);
      ("poisson next arrival", test_poisson_next);
      ("saturated workload", test_saturated);
      ("saturated validates contenders", test_saturated_bounds);
      ("burst workload", test_burst);
      ("burst validates sites", test_burst_range_checked);
      ("open-loop workload", test_open_loop);
      ("huge-n eager workloads refused", test_huge_n_eager_workloads_refused);
    ]
