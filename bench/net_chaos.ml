(* N2: live chaos soak — the real multi-process cluster over UDP with
   genuine datagram loss and duplication injected by the deterministic
   fault shim, timed end to end.

   Where N1 measures the runtime on a clean loopback, N2 measures what
   the reliability layer costs when the network actually misbehaves: the
   oracle still has to accept the merged trace, and the interesting
   numbers are the live retransmission volume, the injected-fault
   counts, and how much wall-clock the recovery machinery adds per CS
   entry. The fault schedule is a pure function of the seed, so the
   figures are comparable run over run. *)

module Cluster = Dmx_net.Cluster
module Chaos = Dmx_net.Chaos
module E = Dmx_sim.Engine

let run () =
  let quick = !Scenarios.quick in
  let n = if quick then 3 else 5 in
  let rounds = if quick then 5 else 15 in
  let loss = if quick then 0.10 else 0.20 in
  let cfg =
    {
      (Cluster.default ~n) with
      Cluster.protocol = "ft-delay-optimal";
      transport = "udp";
      chaos = { Chaos.no_faults with Chaos.loss; duplication = 0.05 };
      rounds;
      seed = 7;
      timeout = 180.0;
    }
  in
  match Cluster.run cfg with
  | Error e -> failwith ("cluster-chaos: " ^ e)
  | Ok o ->
    let r = o.Cluster.report in
    let totals = Cluster.live_totals o in
    let get k = match List.assoc_opt k totals with Some v -> v | None -> 0 in
    let sent = get "transport.sent" in
    let retx = get "reliable.retransmits" in
    Printf.printf
      "cluster-chaos: n=%d rounds=%d loss=%.2f dup=0.05 executions=%d \
       wall=%.2fs cs/sec=%.1f injected-lost=%d injected-dup=%d retx=%d \
       retx/sent=%.3f dup-drops=%d violations=%d oracle=%s\n%!"
      n rounds loss r.E.executions o.Cluster.wall_seconds
      (float_of_int r.E.executions /. o.Cluster.wall_seconds)
      (get "chaos.lost") (get "chaos.duplicated") retx
      (if sent > 0 then float_of_int retx /. float_of_int sent else 0.0)
      (get "reliable.dup_drops") r.E.violations
      (if Dmx_sim.Oracle.ok o.Cluster.verdict then "ok" else "REJECTED");
    if r.E.violations > 0 || not (Dmx_sim.Oracle.ok o.Cluster.verdict) then
      failwith "cluster-chaos: safety check failed";
    if get "chaos.lost" = 0 then
      failwith "cluster-chaos: the shim injected no loss — nothing was soaked";
    if retx = 0 then
      failwith "cluster-chaos: no retransmissions under 10%+ loss is implausible"
