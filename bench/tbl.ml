(* Plain-text table rendering for the experiment reports. ASCII only, so
   the output reads the same in logs, diffs and terminals. *)

type align = L | R

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with L -> s ^ fill | R -> fill ^ s

let rule widths =
  "+"
  ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
  ^ "+"

let row widths aligns cells =
  let cells =
    List.mapi
      (fun i c ->
        let w = List.nth widths i and a = List.nth aligns i in
        " " ^ pad a w c ^ " ")
      cells
  in
  "|" ^ String.concat "|" cells ^ "|"

let print ~title ?note ~headers rows =
  let aligns = List.map snd headers in
  let head = List.map fst headers in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc r -> max acc (String.length (List.nth r i)))
          (String.length h) rows)
      head
  in
  Printf.printf "\n== %s ==\n" title;
  (match note with Some n -> Printf.printf "%s\n" n | None -> ());
  print_endline (rule widths);
  print_endline (row widths aligns head);
  print_endline (rule widths);
  List.iter (fun r -> print_endline (row widths aligns r)) rows;
  print_endline (rule widths)

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x
let f4 x = Printf.sprintf "%.4f" x
let i x = string_of_int x
