(* Benchmark/experiment driver: regenerates every table and figure of the
   paper's evaluation (DESIGN.md §5). Run all:

     dune exec bench/main.exe

   or select experiments:

     dune exec bench/main.exe -- table1 sync-delay --quick
*)

let registry =
  [
    ("table1", ("Table 1: messages and sync delay across algorithms", Experiments.table1));
    ("light-load", ("E1: light load, 3(K-1) messages", Experiments.light_load));
    ("heavy-load", ("E2: heavy load, 5..6(K-1) messages", Experiments.heavy_load));
    ("sync-delay", ("E3: synchronization delay T vs 2T", Experiments.sync_delay));
    ("throughput", ("E4: heavy-load throughput ratio", Experiments.throughput));
    ("waiting-time", ("E5: heavy-load waiting time ratio", Experiments.waiting_time));
    ("load-sweep", ("E6: offered load sweep", Experiments.load_sweep));
    ("quorum-size", ("E7: quorum size by construction", Experiments.quorum_size));
    ("constructions", ("E11: delay-optimal across quorum constructions", Experiments.constructions));
    ("availability", ("E8: coterie availability", Experiments.availability));
    ("fault-tolerance", ("E9: crash injection and detector ablation", Experiments.fault_tolerance));
    ("replica-control", ("E10: read/write quorums for replica control", Experiments.replica_control));
    ("unreliable-network", ("E12: loss sweep and partition healing", Experiments.unreliable_network));
    ("model-check", ("MC: exhaustive small-scope schedule exploration", Experiments.model_check));
    ("ablation", ("A1/A2: design-choice ablations (piggyback, eager fails)", Experiments.ablation));
    ("micro", ("M1: substrate micro-benchmarks", Micro.run));
  ]

let usage () =
  print_endline "usage: main.exe [--quick] [--check] [EXPERIMENT...]";
  print_endline "experiments:";
  List.iter
    (fun (name, (desc, _)) -> Printf.printf "  %-16s %s\n" name desc)
    registry;
  print_endline "  all              run everything (default)"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  Scenarios.quick := quick;
  (* --check: oracle-verify every simulation run (slower; used by CI) *)
  if List.mem "--check" args then Dmx_baselines.Runner.always_check := true;
  let selected =
    List.filter (fun a -> a <> "--quick" && a <> "--check" && a <> "all") args
  in
  if List.mem "--help" selected || List.mem "-h" selected then usage ()
  else begin
    let unknown =
      List.filter (fun a -> not (List.mem_assoc a registry)) selected
    in
    if unknown <> [] then begin
      Printf.printf "unknown experiment(s): %s\n\n" (String.concat ", " unknown);
      usage ();
      exit 1
    end;
    let to_run = if selected = [] then List.map fst registry else selected in
    Printf.printf
      "dmx experiment suite - reproduction of Cao et al., ICDCS 1998%s\n"
      (if quick then " (quick mode)" else "");
    let t0 = Sys.time () in
    let failed = ref [] in
    List.iter
      (fun name ->
        let _, f = List.assoc name registry in
        let t = Sys.time () in
        (try
           f ();
           Printf.printf "[%s finished in %.1fs]\n%!" name (Sys.time () -. t)
         with Failure msg ->
           failed := name :: !failed;
           Printf.printf "[%s FAILED: %s]\n%!" name msg))
      to_run;
    Printf.printf "\nTotal: %.1fs\n" (Sys.time () -. t0);
    let oracle_rejected = !Dmx_baselines.Runner.check_failures in
    if oracle_rejected > 0 then
      Printf.printf "trace oracle rejected %d run(s)\n" oracle_rejected;
    if !failed <> [] then
      Printf.printf "FAILED experiments: %s\n"
        (String.concat ", " (List.rev !failed));
    if !failed <> [] || oracle_rejected > 0 then exit 1
  end
