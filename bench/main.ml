(* Benchmark/experiment driver: regenerates every table and figure of the
   paper's evaluation (DESIGN.md §5). Run all:

     dune exec bench/main.exe

   or select experiments:

     dune exec bench/main.exe -- table1 sync-delay --quick

   Flags: --quick (smaller quotas), --check (oracle-verify every run),
   --jobs N (parallel fan-out inside each experiment; output is
   bit-identical at any N), --json[=FILE] (write a BENCH_pr5.json perf
   snapshot; see PERFORMANCE.md), --validate[-out=FILE] (re-check the
   measured tables against the paper's Section 5 closed forms; exit 2
   on any band violation). *)

(* The cluster-smoke experiment re-executes this binary as the node
   image (see Dmx_net.Node.env_var); the trampoline must run first. *)
let () = Dmx_net.Node.run_as_child_if_requested ()
let () = Dmx_service.Snode.run_as_child_if_requested ()

let usage () =
  print_endline
    "usage: main.exe [--quick] [--check] [--jobs N] [--json[=FILE]] \
     [--validate] [--validate-out=FILE] [EXPERIMENT...]";
  print_endline "experiments:";
  Dmx_bench.Suite.print_experiments ();
  print_endline "  all              run everything (default)"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = ref false in
  let check = ref false in
  let jobs = ref (Dmx_sim.Pool.default_jobs ()) in
  let json = ref None in
  let validate = ref false in
  let validate_out = ref None in
  let selected = ref [] in
  let bad fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt in
  let jobs_of s =
    match int_of_string_opt s with
    | Some j when j >= 1 -> j
    | _ -> bad "--jobs expects a positive integer, got %S" s
  in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest -> quick := true; parse rest
    | "--check" :: rest -> check := true; parse rest
    | "--jobs" :: v :: rest -> jobs := jobs_of v; parse rest
    | [ "--jobs" ] -> bad "--jobs expects a value"
    | "--json" :: rest -> json := Some "BENCH_pr5.json"; parse rest
    | "--validate" :: rest -> validate := true; parse rest
    | ("--help" | "-h") :: _ -> usage (); exit 0
    | "all" :: rest -> parse rest
    | a :: rest ->
      (match String.index_opt a '=' with
      | Some i when String.length a > 14 && String.sub a 0 14 = "--validate-out" ->
        validate := true;
        validate_out := Some (String.sub a (i + 1) (String.length a - i - 1))
      | Some i when String.length a > 6 && String.sub a 0 6 = "--jobs" ->
        jobs := jobs_of (String.sub a (i + 1) (String.length a - i - 1))
      | Some i when String.length a > 6 && String.sub a 0 6 = "--json" ->
        json := Some (String.sub a (i + 1) (String.length a - i - 1))
      | _ -> selected := a :: !selected);
      parse rest
  in
  parse args;
  match Dmx_bench.Suite.resolve (List.rev !selected) with
  | Error unknown ->
    Printf.printf "unknown experiment(s): %s\n\n" (String.concat ", " unknown);
    usage ();
    exit 1
  | Ok to_run ->
    exit
      (Dmx_bench.Suite.run ~jobs:!jobs ?json:!json ~validate:!validate
         ?validate_out:!validate_out ~quick:!quick ~check:!check to_run)
