(* Experiment registry and driver, shared by the standalone bench
   executable (bench/main.exe) and the `dmx-sim bench` subcommand.

   Besides running experiments it records a machine-readable perf
   trajectory: wall-clock, simulator events processed and events/sec per
   experiment, plus peak heap, written as a BENCH_*.json snapshot so
   future changes have a baseline to regress against. *)

module R = Dmx_baselines.Runner

let registry =
  [
    ("table1", ("Table 1: messages and sync delay across algorithms", Experiments.table1));
    ("light-load", ("E1: light load, 3(K-1) messages", Experiments.light_load));
    ("heavy-load", ("E2: heavy load, 5..6(K-1) messages", Experiments.heavy_load));
    ("sync-delay", ("E3: synchronization delay T vs 2T", Experiments.sync_delay));
    ("throughput", ("E4: heavy-load throughput ratio", Experiments.throughput));
    ("waiting-time", ("E5: heavy-load waiting time ratio", Experiments.waiting_time));
    ("load-sweep", ("E6: offered load sweep", Experiments.load_sweep));
    ("quorum-size", ("E7: quorum size by construction", Experiments.quorum_size));
    ("constructions", ("E11: delay-optimal across quorum constructions", Experiments.constructions));
    ("availability", ("E8: coterie availability", Experiments.availability));
    ("fault-tolerance", ("E9: crash injection and detector ablation", Experiments.fault_tolerance));
    ("replica-control", ("E10: read/write quorums for replica control", Experiments.replica_control));
    ("unreliable-network", ("E12: loss sweep and partition healing", Experiments.unreliable_network));
    ("model-check", ("MC: exhaustive small-scope schedule exploration", Experiments.model_check));
    ("ablation", ("A1/A2: design-choice ablations (piggyback, eager fails)", Experiments.ablation));
    ("asymptotics", ("A3: huge-N sqrt(N)/log(N) scaling, machine-checked", Experiments.asymptotics));
    ("micro", ("M1: substrate micro-benchmarks", Micro.run));
    ("cluster-smoke", ("N1: real multi-process TCP cluster smoke", Net_smoke.run));
    ("cluster-chaos", ("N2: UDP cluster soak under injected loss", Net_chaos.run));
    ("lock-service", ("S1: sharded lock service under a client swarm", Service_swarm.run));
  ]

let names = List.map fst registry

(* Validate a selection; [] means everything, in registry order. The
   experiment labels used in EXPERIMENTS.md ("A3") are accepted as
   aliases. *)
let resolve selected =
  let canon a =
    match String.lowercase_ascii a with "a3" -> "asymptotics" | x -> x
  in
  let selected = List.map canon selected in
  let unknown = List.filter (fun a -> not (List.mem_assoc a registry)) selected in
  if unknown <> [] then Error unknown
  else Ok (if selected = [] then names else selected)

let print_experiments () =
  List.iter
    (fun (name, (desc, _)) -> Printf.printf "  %-16s %s\n" name desc)
    registry

type outcome = {
  name : string;
  wall_s : float;  (* wall clock, not CPU: parallel speedup must show *)
  events : int;  (* simulator events processed during this experiment *)
  ok : bool;
}

let write_json ~path ~quick ~jobs ~total_wall_s ~oracle_rejected outcomes =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"dmx-bench/1\",\n";
  add "  \"quick\": %b,\n" quick;
  add "  \"jobs\": %d,\n" jobs;
  add "  \"experiments\": [\n";
  List.iteri
    (fun i o ->
      let eps =
        if o.wall_s > 0.0 then float_of_int o.events /. o.wall_s else 0.0
      in
      add
        "    {\"name\": \"%s\", \"wall_s\": %.6f, \"events\": %d, \
         \"events_per_sec\": %.1f, \"ok\": %b}%s\n"
        o.name o.wall_s o.events eps o.ok
        (if i < List.length outcomes - 1 then "," else ""))
    outcomes;
  add "  ],\n";
  add "  \"total_wall_s\": %.6f,\n" total_wall_s;
  add "  \"peak_heap_words\": %d,\n" (Gc.quick_stat ()).Gc.top_heap_words;
  add "  \"oracle_rejected\": %d\n" oracle_rejected;
  add "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

(* Run [to_run] (pre-validated names) and return the exit code. *)
let run ?(jobs = Dmx_sim.Pool.default_jobs ()) ?json ?(validate = false)
    ?validate_out ~quick ~check to_run =
  Scenarios.quick := quick;
  Scenarios.jobs := max 1 jobs;
  if check then Atomic.set R.always_check true;
  if validate then begin
    Atomic.set Validate.enabled true;
    Validate.reset ()
  end;
  Printf.printf
    "dmx experiment suite - reproduction of Cao et al., ICDCS 1998%s\n"
    (if quick then " (quick mode)" else "");
  let t0 = Unix.gettimeofday () in
  let failed = ref [] in
  let outcomes = ref [] in
  List.iter
    (fun name ->
      let _, f = List.assoc name registry in
      let t = Unix.gettimeofday () in
      let e0 = Atomic.get Dmx_sim.Engine.events_total in
      let ok =
        try
          f ();
          true
        with Failure msg ->
          failed := name :: !failed;
          Printf.printf "[%s FAILED: %s]\n%!" name msg;
          false
      in
      let wall_s = Unix.gettimeofday () -. t in
      let events = Atomic.get Dmx_sim.Engine.events_total - e0 in
      if ok then Printf.printf "[%s finished in %.1fs]\n%!" name wall_s;
      outcomes := { name; wall_s; events; ok } :: !outcomes)
    to_run;
  let total_wall_s = Unix.gettimeofday () -. t0 in
  Printf.printf "\nTotal: %.1fs\n" total_wall_s;
  let oracle_rejected = Atomic.get R.check_failures in
  if oracle_rejected > 0 then
    Printf.printf "trace oracle rejected %d run(s)\n" oracle_rejected;
  if !failed <> [] then
    Printf.printf "FAILED experiments: %s\n"
      (String.concat ", " (List.rev !failed));
  (match json with
  | Some path ->
    write_json ~path ~quick ~jobs ~total_wall_s ~oracle_rejected
      (List.rev !outcomes);
    Printf.printf "wrote %s\n" path
  | None -> ());
  let model_failures =
    if validate then Validate.summarize ?out:validate_out () else 0
  in
  if !failed <> [] || oracle_rejected > 0 then 1
  else if model_failures > 0 then 2
  else 0
