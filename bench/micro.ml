(* M1: micro-benchmarks of the substrates (bechamel, OLS estimate of
   ns/run). These are not paper experiments; they document that the
   simulator core is fast enough for the parameter sweeps above. *)

open Bechamel
open Toolkit

let make_tests () =
  let rng = Dmx_sim.Rng.create 1 in
  let quorum name kind n =
    Test.make ~name:(Printf.sprintf "%s n=%d" name n)
      (Staged.stage (fun () ->
           ignore (Dmx_quorum.Builder.req_sets kind ~n : int list array)))
  in
  let event_queue_churn n =
    Test.make ~name:(Printf.sprintf "event-queue churn %d" n)
      (Staged.stage (fun () ->
           let q = Dmx_sim.Event_queue.create () in
           for i = 0 to n - 1 do
             Dmx_sim.Event_queue.schedule q
               ~time:(Dmx_sim.Rng.float rng 1000.0)
               i
           done;
           while not (Dmx_sim.Event_queue.is_empty q) do
             ignore (Dmx_sim.Event_queue.next q)
           done))
  in
  let event_queue_drop n =
    (* the engine's crash path: purge half the queue, then drain *)
    Test.make ~name:(Printf.sprintf "event-queue drop_if %d" n)
      (Staged.stage (fun () ->
           let q = Dmx_sim.Event_queue.create () in
           for i = 0 to n - 1 do
             Dmx_sim.Event_queue.schedule q
               ~time:(Dmx_sim.Rng.float rng 1000.0)
               i
           done;
           ignore (Dmx_sim.Event_queue.drop_if q (fun i -> i land 1 = 0));
           while not (Dmx_sim.Event_queue.is_empty q) do
             ignore (Dmx_sim.Event_queue.next q)
           done))
  in
  let sim_run n =
    let req_sets = Dmx_quorum.Builder.req_sets Grid ~n in
    let module M = Dmx_sim.Engine.Make (Dmx_core.Delay_optimal) in
    Test.make ~name:(Printf.sprintf "simulate 50 CS, n=%d" n)
      (Staged.stage (fun () ->
           ignore
             (M.run
                {
                  (Dmx_sim.Engine.default ~n) with
                  max_executions = 50;
                  warmup = 0;
                }
                (Dmx_core.Delay_optimal.config req_sets))))
  in
  Test.make_grouped ~name:"micro"
    [
      quorum "grid" Dmx_quorum.Builder.Grid 1024;
      quorum "tree" Dmx_quorum.Builder.Tree 1023;
      quorum "fpp" Dmx_quorum.Builder.Fpp 307;
      quorum "hqc" Dmx_quorum.Builder.Hqc 729;
      event_queue_churn 10_000;
      event_queue_drop 10_000;
      sim_run 25;
      sim_run 81;
    ]

let run () =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] (make_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> Printf.sprintf "%.0f" e
        | _ -> "?"
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "-"
      in
      rows := [ name; ns; r2 ] :: !rows)
    results;
  Tbl.print ~title:"M1: substrate micro-benchmarks (bechamel)"
    ~note:"OLS estimate of monotonic-clock ns per run."
    ~headers:[ ("benchmark", Tbl.L); ("ns/run", Tbl.R); ("r^2", Tbl.R) ]
    (List.sort compare !rows)
