(** Collection point for analytic-model checks during a bench run.

    Experiments record finished simulations (or pre-computed ratio
    checks) here as they run; [Suite.run ~validate:true] turns the
    collected entries into {!Dmx_model.Model.check} verdicts at the end
    and fails the run on any band violation. Recording is a no-op unless
    {!enabled} is set, so the default bench path pays nothing.

    Experiments fan rows out over worker domains ([Scenarios.par_map]),
    so the entry list is mutex-protected. *)

val enabled : bool Atomic.t
(** Set by the driver before experiments start. *)

val reset : unit -> unit
(** Drop all recorded entries (start of a validated run). *)

val record_report :
  source:string ->
  ?kind:Dmx_quorum.Builder.kind ->
  cfg:Dmx_sim.Engine.config ->
  Dmx_sim.Engine.report ->
  unit
(** Record a finished simulation; [source] names the table row, e.g.
    ["T1 delay-optimal heavy"]. No-op when validation is off. *)

val record_check : source:string -> Dmx_model.Model.expectation -> float -> unit
(** Record a derived value (e.g. a Maekawa/delay-optimal sync ratio)
    against an explicit expectation. No-op when validation is off. *)

val verdicts : unit -> Dmx_model.Model.verdict list
(** Evaluate every recorded entry, in recording order. *)

val summarize : ?out:string -> unit -> int
(** Print one line per verdict (and write the same report to [out] when
    given), then a pass/fail tally; returns the number of violations. *)
