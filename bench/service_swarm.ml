(* S1: the sharded lock service under a closed-loop client swarm.

   Three runs, each oracle-checked per shard:

   - scale: the deterministic simulator at a population the live driver
     would need minutes for — 16 shards, thousands of clients — as the
     perf trajectory for the service core (Host + Lease + protocol).
   - failover: a mid-run node kill and restart in the simulator; the
     dead node's sessions must re-home and every shard must still pass
     the oracle.
   - live: a small real multi-process swarm over localhost TCP, the
     end-to-end number (daemon startup, real sockets, driver-side
     percentiles).

   The latency figures reported are worst-shard percentiles: a single
   hot or slow shard is exactly what the sharding is supposed to
   prevent, so it is the number worth tracking. *)

module Swarm = Dmx_service.Swarm
module Sim_swarm = Dmx_service.Sim_swarm
module Summary = Dmx_sim.Stats.Summary

let worst_ms (o : Swarm.outcome) p =
  Array.fold_left
    (fun acc s -> Float.max acc (Summary.percentile s.Swarm.latency p *. 1e3))
    0.0 o.Swarm.per_shard

let totals (o : Swarm.outcome) =
  Array.fold_left
    (fun (g, e) s -> (g + s.Swarm.grants, e + s.Swarm.expiries))
    (0, 0) o.Swarm.per_shard

let report name (o : Swarm.outcome) =
  let grants, expiries = totals o in
  Printf.printf
    "lock-service %-8s shards=%d grants=%d expiries=%d rehomed=%d \
     worst-shard p50/p95/p99=%.1f/%.1f/%.1f ms wall=%.2fs oracle=%s\n%!"
    name
    (Array.length o.Swarm.per_shard)
    grants expiries o.Swarm.rehomed_sessions (worst_ms o 50.0)
    (worst_ms o 95.0) (worst_ms o 99.0) o.Swarm.wall_seconds
    (if Swarm.ok o then "ok" else "REJECTED");
  if not (Swarm.ok o) then failwith ("lock-service: oracle rejected " ^ name)

let run () =
  let quick = !Scenarios.quick in
  (* scale: virtual time, many shards, a large population *)
  let scale =
    {
      (Sim_swarm.default ~n:5) with
      Sim_swarm.shards = 16;
      clients = (if quick then 300 else 2000);
      rounds = 2;
      abandon = 0.05;
      lease = 0.5;
      seed = 42;
    }
  in
  (match Sim_swarm.run_named scale with
  | Error e -> failwith ("lock-service scale: " ^ e)
  | Ok o -> report "scale" o);
  (* failover: kill node 1 mid-run, restart it, expect re-homing *)
  let failover =
    {
      (Sim_swarm.default ~n:5) with
      Sim_swarm.shards = 8;
      clients = (if quick then 100 else 400);
      rounds = 4;
      think = 0.1;
      protocol = "ft-delay-optimal";
      lease = 0.4;
      seed = 7;
      kills = [ (0.15, 1) ];
      restarts = [ (1.0, 1) ];
    }
  in
  (match Sim_swarm.run_named failover with
  | Error e -> failwith ("lock-service failover: " ^ e)
  | Ok o ->
    report "failover" o;
    if o.Swarm.rehomed_sessions = 0 then
      failwith "lock-service failover: expected sessions to re-home");
  (* live: real daemons over localhost TCP *)
  let live =
    {
      (Swarm.default ~n:(if quick then 3 else 5)) with
      Swarm.clients = (if quick then 40 else 200);
      rounds = 2;
      timeout = 120.0;
    }
  in
  match Swarm.run live with
  | Error e -> failwith ("lock-service live: " ^ e)
  | Ok o -> report "live" o
