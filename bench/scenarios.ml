(* Shared experiment scenarios, all in units of the mean message delay T.
   Mirrors the loading regimes of the paper's Section 5. *)

module E = Dmx_sim.Engine
module W = Dmx_sim.Workload
module Net = Dmx_sim.Network
module S = Dmx_sim.Stats.Summary

(* Global knob set by --quick: fewer executions per run. Set once by the
   driver before any experiment starts; worker domains only read it (the
   Domain.spawn in Pool establishes the happens-before). *)
let quick = ref false
let execs base = if !quick then max 40 (base / 5) else base

(* Parallelism for the embarrassingly-parallel row fan-outs below; same
   set-once-then-read-only discipline as [quick]. Each row is an
   independent seeded simulation, and [Pool] collects results by index,
   so tables are byte-identical at any job count. *)
let jobs = ref 1
let par_map f xs = Dmx_sim.Pool.map ~jobs:!jobs f xs
let par_concat_map f xs = Dmx_sim.Pool.concat_map ~jobs:!jobs f xs

let heavy ?(seed = 42) ?(cs = 1.0) ?(delay = Net.Constant 1.0) ?(runs = 400) n =
  {
    (E.default ~n) with
    seed;
    cs_duration = cs;
    delay;
    max_executions = execs runs;
    warmup = 30;
  }

let light ?(seed = 42) ?(cs = 1.0) ?(runs = 100) n =
  {
    (E.default ~n) with
    seed;
    cs_duration = cs;
    max_executions = execs runs;
    warmup = 5;
    workload = W.Poisson { rate_per_site = 0.0002 };
    max_time = 1.0e9;
  }

let poisson ?(seed = 42) ?(cs = 1.0) ?(runs = 300) ~rate n =
  {
    (E.default ~n) with
    seed;
    cs_duration = cs;
    max_executions = execs runs;
    warmup = 20;
    workload = W.Poisson { rate_per_site = rate };
    max_time = 1.0e9;
  }

let mean = S.mean
let p50 s = S.percentile s 50.0

(* Grid quorum size for the formula columns. *)
let grid_k n =
  let g = Dmx_quorum.Grid.create ~n in
  Dmx_quorum.Grid.cols g + Dmx_quorum.Grid.rows g - 1
