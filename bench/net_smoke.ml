(* N1: networked-runtime smoke — a real multi-process cluster over
   localhost TCP, timed end to end.

   Unlike every other experiment this one leaves the simulator entirely:
   it spawns node processes (re-executing the current binary via the
   Dmx_net.Node trampoline), runs ft-delay-optimal over real sockets, and
   reports wall-clock throughput plus the oracle verdict on the merged
   live trace. Numbers are environment-dependent by nature; the point of
   benching it is a perf trajectory for the runtime itself (startup cost,
   per-CS latency on loopback), not a paper figure. *)

module Cluster = Dmx_net.Cluster
module E = Dmx_sim.Engine

let run () =
  let quick = !Scenarios.quick in
  let n = if quick then 3 else 5 in
  let rounds = if quick then 5 else 20 in
  let cfg =
    {
      (Cluster.default ~n) with
      Cluster.protocol = "ft-delay-optimal";
      rounds;
      timeout = 120.0;
    }
  in
  match Cluster.run cfg with
  | Error e -> failwith ("cluster-smoke: " ^ e)
  | Ok o ->
    let r = o.Cluster.report in
    Printf.printf
      "cluster-smoke: n=%d rounds=%d executions=%d messages=%d \
       per-cs=%.2f wall=%.2fs cs/sec=%.1f violations=%d oracle=%s\n%!"
      n rounds r.E.executions r.E.total_messages r.E.messages_per_cs
      o.Cluster.wall_seconds
      (float_of_int r.E.executions /. o.Cluster.wall_seconds)
      r.E.violations
      (if Dmx_sim.Oracle.ok o.Cluster.verdict then "ok" else "REJECTED");
    if r.E.violations > 0 || not (Dmx_sim.Oracle.ok o.Cluster.verdict) then
      failwith "cluster-smoke: safety check failed"
