module Model = Dmx_model.Model

let enabled = Atomic.make false

type entry =
  | Meas of Model.measurement
  | Direct of { source : string; expectation : Model.expectation; value : float }

let lock = Mutex.create ()
let entries : entry list ref = ref []
let push e = Mutex.protect lock (fun () -> entries := e :: !entries)
let reset () = Mutex.protect lock (fun () -> entries := [])

let record_report ~source ?kind ~cfg report =
  if Atomic.get enabled then
    push (Meas (Model.of_report ~source ?kind ~cfg report))

let record_check ~source expectation value =
  if Atomic.get enabled then push (Direct { source; expectation; value })

let verdicts () =
  let entries = Mutex.protect lock (fun () -> List.rev !entries) in
  List.concat_map
    (function
      | Meas m -> Model.check_measurement m
      | Direct { source; expectation; value } ->
        [ Model.check ~source expectation value ])
    entries

let summarize ?out () =
  let vs = verdicts () in
  let failed = List.filter (fun v -> not v.Model.ok) vs in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "\nanalytic-model validation (Section 5 closed forms)\n";
  List.iter
    (fun (v : Model.verdict) ->
      add "  %s %s\n" (if v.Model.ok then "pass" else "FAIL") v.Model.message)
    vs;
  if vs = [] then
    add "  no measurements recorded (validated experiments not selected?)\n";
  add "model verdicts: %d checked, %d failed\n" (List.length vs)
    (List.length failed);
  print_string (Buffer.contents buf);
  (match out with
  | Some path ->
    let oc = open_out path in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "wrote %s\n" path
  | None -> ());
  List.length failed
