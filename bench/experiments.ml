(* The experiment suite: one function per table/figure of the paper's
   evaluation (see DESIGN.md §5 for the index and EXPERIMENTS.md for the
   paper-vs-measured record). All simulations are deterministic. *)

module E = Dmx_sim.Engine
module Net = Dmx_sim.Network
module W = Dmx_sim.Workload
module R = Dmx_baselines.Runner
module B = Dmx_quorum.Builder
module Av = Dmx_quorum.Availability
module S = Dmx_sim.Stats.Summary
module Mdl = Dmx_model.Model
open Scenarios

let check (r : E.report) =
  if r.E.violations > 0 then
    failwith
      (Printf.sprintf "BUG: %s violated mutual exclusion %d times" r.E.protocol
         r.E.violations);
  if r.E.deadlocked then
    failwith (Printf.sprintf "BUG: %s deadlocked" r.E.protocol);
  r

(* ------------------------------------------------------------------ *)
(* E10: §7 replica control — read/write quorums                        *)
(* ------------------------------------------------------------------ *)

let replica_control () =
  let module RW = Dmx_quorum.Rw_quorum in
  let n = 25 in
  let trials = if !Scenarios.quick then 4_000 else 20_000 in
  let rows =
    par_map
      (fun scheme ->
        let t = RW.create scheme ~n in
        (match RW.validate t with Ok () -> () | Error e -> failwith e);
        let r80, w80 = RW.availability t ~p_up:0.8 ~trials ~seed:5 in
        let r95, w95 = RW.availability t ~p_up:0.95 ~trials ~seed:5 in
        [
          RW.scheme_name scheme;
          Tbl.f1 (RW.read_size t);
          Tbl.f1 (RW.write_size t);
          Tbl.f3 r80;
          Tbl.f3 w80;
          Tbl.f3 r95;
          Tbl.f3 w95;
        ])
      [ RW.Rowa; RW.Majority_rw; RW.Grid_rw; RW.Tree_rw ]
  in
  Tbl.print
    ~title:(Printf.sprintf "E10 (7): replica control with read/write quorums (N=%d)" n)
    ~note:
      "Section 7: 'the proposed idea can be used in replicated data \
       management, as long as the quorum being used supports replica \
       control.' Reads intersect every write quorum, so they are always \
       fresh; the table shows the read-cost/availability tradeoff each \
       scheme buys. Writes serialize through the delay-optimal mutex."
    ~headers:
      [
        ("scheme", Tbl.L);
        ("|R|", Tbl.R);
        ("|W|", Tbl.R);
        ("read@.8", Tbl.R);
        ("write@.8", Tbl.R);
        ("read@.95", Tbl.R);
        ("write@.95", Tbl.R);
      ]
    rows

(* ------------------------------------------------------------------ *)
(* MC: exhaustive small-scope model check                              *)
(* ------------------------------------------------------------------ *)

let model_check () =
  let module MC = Dmx_sim.Model_check in
  let module Check =
    MC.Make (struct
      include Dmx_core.Delay_optimal

      let copy_state = Dmx_core.Delay_optimal.Internal.copy_state
    end)
  in
  let row ?(staggered = false) (kind, n) =
    let req_sets = B.req_sets kind ~n in
    let o =
      Check.explore ~staggered ~n
        ~requesters:(List.init n Fun.id)
        (Dmx_core.Delay_optimal.config req_sets)
    in
    (* [clean] also rejects truncated explorations: a state-budget cutoff
       proved nothing and must not read as a pass. *)
    if not (MC.clean o) then
      failwith
        (Printf.sprintf
           "BUG: model check %s n=%d not clean (%d violations, %d stuck%s)"
           (B.kind_name kind) n o.MC.violations o.MC.stuck_states
           (if o.MC.truncated then ", truncated" else ""));
    [
      Printf.sprintf "%s n=%d%s" (B.kind_name kind) n
        (if staggered then " (staggered)" else "");
      Tbl.i o.MC.distinct_states;
      Tbl.i o.MC.violations;
      Tbl.i o.MC.stuck_states;
      Tbl.i o.MC.completed_schedules;
    ]
  in
  let rows =
    par_map
      (fun (staggered, kn) -> row ~staggered kn)
      [
        (false, (B.Grid, 2));
        (false, (B.Star, 3));
        (false, (B.Majority, 3));
        (false, (B.Tree, 3));
        (false, (B.Grid, 3));
        (true, (B.Tree, 3));
      ]
  in
  Tbl.print ~title:"MC: exhaustive schedule exploration (simultaneous requests)"
    ~note:
      "Every reachable interleaving of message deliveries and CS exits, \
       with per-channel FIFO preserved. Zero violations and zero stuck \
       states = mutual exclusion and deadlock-freedom hold for ALL \
       schedules at these sizes. 'staggered' additionally explores every \
       late-arrival schedule (request issuance interleaved with \
       deliveries)."
    ~headers:
      [
        ("configuration", Tbl.L);
        ("states", Tbl.R);
        ("violations", Tbl.R);
        ("deadlocks", Tbl.R);
        ("terminal", Tbl.R);
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E11: the algorithm across quorum constructions (§3.1, §5.3)         *)
(* ------------------------------------------------------------------ *)

let constructions () =
  let rows =
    par_concat_map
      (fun (kind, n) ->
        let runner = R.delay_optimal ~kind ~n () in
        let stats = B.size_stats (B.req_sets kind ~n) in
        let cfg_l = light ~runs:60 n in
        let cfg_h = heavy ~cs:2.0 ~runs:300 n in
        let l = check (runner.R.run cfg_l) in
        let h = check (runner.R.run cfg_h) in
        let src load = Printf.sprintf "E11 %s N=%d %s" (B.kind_name kind) n load in
        Validate.record_report ~source:(src "light") ~kind ~cfg:cfg_l l;
        Validate.record_report ~source:(src "heavy") ~kind ~cfg:cfg_h h;
        [
          [
            B.kind_name kind;
            Tbl.i n;
            Tbl.f1 stats.B.k_mean;
            Tbl.f1 l.E.messages_per_cs;
            Tbl.f1 h.E.messages_per_cs;
            Tbl.f2 (mean h.E.sync_delay);
          ];
        ])
      [
        (B.Grid, 13);
        (B.Fpp, 13);
        (B.Tree, 13);
        (B.Majority, 13);
        (B.Grid, 27);
        (B.Tree, 27);
        (B.Hqc, 27);
        (B.Majority, 27);
        (B.Grid_set 4, 27);
        (B.Rst 4, 27);
      ]
  in
  Tbl.print
    ~title:"E11 (3.1, 5.3): delay-optimal across quorum constructions"
    ~note:
      "'Our scheme is independent of the quorum being used. K is sqrt(N) \
       with Maekawa's construction and log N with Agrawal-El Abbadi's.' \
       Message cost scales with the construction's K while the sync delay \
       stays at T for every coterie."
    ~headers:
      [
        ("construction", Tbl.L);
        ("N", Tbl.R);
        ("K", Tbl.R);
        ("light msgs", Tbl.R);
        ("heavy msgs", Tbl.R);
        ("sync/T", Tbl.R);
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Ablations of the algorithm's design choices (DESIGN.md §3)          *)
(* ------------------------------------------------------------------ *)

let ablation () =
  let n = 25 in
  let run ?(piggyback_next = true) ?(eager_fails = true) cfg =
    let req_sets = B.req_sets B.Grid ~n in
    let module M = E.Make (Dmx_core.Delay_optimal) in
    M.run cfg (Dmx_core.Delay_optimal.config ~piggyback_next ~eager_fails req_sets)
  in
  (* piggybacked next-waiter hint: messages and delay with/without *)
  let rows =
    par_map
      (fun (label, piggyback_next) ->
        let r = run ~piggyback_next (heavy ~cs:1.0 ~runs:400 n) in
        [
          label;
          Tbl.f1 r.E.messages_per_cs;
          Tbl.f2 (mean r.E.sync_delay);
          Tbl.f3 (r.E.throughput);
        ])
      [ ("piggyback next (paper)", true); ("separate transfer", false) ]
  in
  Tbl.print ~title:"A1: piggybacking the next-waiter hint on grants (N=25, heavy)"
    ~note:
      "The paper piggybacks transfer(p, j) on grant replies so it rides for \
       free; sending it as its own message leaves delay intact but pays \
       roughly one extra message per grant."
    ~headers:
      [
        ("variant", Tbl.L);
        ("msgs/CS", Tbl.R);
        ("sync/T", Tbl.R);
        ("throughput", Tbl.R);
      ]
    rows;
  (* eager fails: the deadlock-freedom correction of DESIGN.md §3.7 *)
  let seeds = List.init (if !Scenarios.quick then 8 else 20) (fun i -> i + 1) in
  let stalled eager_fails =
    List.length
      (List.filter Fun.id
         (par_map
            (fun seed ->
           let cfg =
             {
               (heavy ~cs:0.5 ~runs:150 n) with
               seed;
               delay = Net.Exponential { mean = 1.0 };
               max_time = 20_000.0;
               warmup = 0;
             }
           in
              let r = run ~eager_fails cfg in
              r.E.deadlocked || r.E.executions < 150)
            seeds))
  in
  let rows =
    [
      [ "corrected (eager fails)"; Tbl.i (stalled true); Tbl.i (List.length seeds) ];
      [ "OCR-literal A.2 rules"; Tbl.i (stalled false); Tbl.i (List.length seeds) ];
    ]
  in
  Tbl.print ~title:"A2: the eager-fail discipline (exponential delays, per-seed outcome)"
    ~note:
      "Without a fail to a best waiter that ranks behind the lock (the \
       message the OCR dropped but §5.2 Case 1 counts), a waiting cycle \
       forms whose members never yield: runs deadlock. The corrected rule \
       never stalls."
    ~headers:[ ("variant", Tbl.L); ("stalled runs", Tbl.R); ("of", Tbl.R) ]
    rows

(* ------------------------------------------------------------------ *)
(* T1: Table 1 — message complexity and synchronization delay          *)
(* ------------------------------------------------------------------ *)

let table1 () =
  let n = 25 in
  let k1 = grid_k n - 1 in
  let theory =
    [
      ("lamport", (Printf.sprintf "3(N-1) = %d" (3 * (n - 1)), "T"));
      ("ricart-agrawala", (Printf.sprintf "2(N-1) = %d" (2 * (n - 1)), "T"));
      ( "singhal-dynamic",
        (Printf.sprintf "N-1..2(N-1) = %d..%d" (n - 1) (2 * (n - 1)), "T") );
      ("maekawa", (Printf.sprintf "3..5(K-1) = %d..%d" (3 * k1) (5 * k1), "2T"));
      ( "delay-optimal",
        (Printf.sprintf "3..6(K-1) = %d..%d" (3 * k1) (6 * k1), "T") );
      ("suzuki-kasami", (Printf.sprintf "0..N = 0..%d" n, "T"));
      ("singhal-heuristic", (Printf.sprintf "0..N = 0..%d" n, "T"));
      ("raymond", ("O(log N)", "O(log N) T"));
    ]
  in
  let rows =
    par_map
      (fun runner ->
        let cfg_l = light ~runs:80 n in
        let cfg_h = heavy ~cs:2.0 ~runs:300 n in
        let l = check (runner.R.run cfg_l) in
        let h = check (runner.R.run cfg_h) in
        Validate.record_report
          ~source:(Printf.sprintf "T1 %s light" runner.R.name)
          ~cfg:cfg_l l;
        Validate.record_report
          ~source:(Printf.sprintf "T1 %s heavy" runner.R.name)
          ~cfg:cfg_h h;
        let msgs_th, delay_th =
          match List.assoc_opt runner.R.name theory with
          | Some (m, d) -> (m, d)
          | None -> ("", "")
        in
        [
          runner.R.name;
          Tbl.f1 l.E.messages_per_cs;
          Tbl.f1 h.E.messages_per_cs;
          msgs_th;
          Tbl.f2 (mean h.E.sync_delay);
          delay_th;
        ])
      (R.all ~n)
  in
  Tbl.print
    ~title:(Printf.sprintf "Table 1: message complexity and sync delay (N=%d, grid K=%d)" n (grid_k n))
    ~note:
      "Measured on the simulator (constant delay T=1, CS=2T); light load = \
       rare Poisson arrivals, heavy = all sites saturated. Sync delay in \
       units of T."
    ~headers:
      [
        ("algorithm", Tbl.L);
        ("msgs/CS light", Tbl.R);
        ("msgs/CS heavy", Tbl.R);
        ("theory (msgs)", Tbl.L);
        ("sync delay", Tbl.R);
        ("theory (delay)", Tbl.L);
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E1: §5.1 light load — 3(K-1) messages, response 2T+E                *)
(* ------------------------------------------------------------------ *)

let light_load () =
  let rows =
    par_map
      (fun n ->
        let k1 = grid_k n - 1 in
        let cfg = light ~runs:80 n in
        let r = check ((R.delay_optimal ~n ()).R.run cfg) in
        Validate.record_report ~source:(Printf.sprintf "E1 N=%d" n) ~cfg r;
        [
          Tbl.i n;
          Tbl.i (k1 + 1);
          Tbl.f1 r.E.messages_per_cs;
          Tbl.i (3 * k1);
          Tbl.f2 (mean r.E.response_time);
          "2.00";
        ])
      [ 9; 16; 25; 49; 81; 121 ]
  in
  Tbl.print ~title:"E1 (5.1): delay-optimal under light load"
    ~note:
      "Paper: 3(K-1) messages per CS; response time 2T + E (E excluded \
       from the response column: request to entry = 2T)."
    ~headers:
      [
        ("N", Tbl.R);
        ("K", Tbl.R);
        ("msgs/CS", Tbl.R);
        ("3(K-1)", Tbl.R);
        ("response/T", Tbl.R);
        ("paper", Tbl.R);
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E2: §5.2 heavy load — 5(K-1)..6(K-1) messages                       *)
(* ------------------------------------------------------------------ *)

let heavy_load () =
  let rows =
    par_map
      (fun n ->
        let k1 = grid_k n - 1 in
        let r = check ((R.delay_optimal ~n ()).R.run (heavy ~runs:400 n)) in
        [
          Tbl.i n;
          Tbl.i (k1 + 1);
          Tbl.f1 r.E.messages_per_cs;
          Printf.sprintf "%d..%d" (5 * k1) (6 * k1);
          Tbl.f2 (r.E.messages_per_cs /. float_of_int k1);
        ])
      [ 9; 16; 25; 49; 81; 121 ]
  in
  Tbl.print ~title:"E2 (5.2): delay-optimal under heavy load"
    ~note:
      "Paper: 5(K-1) or 6(K-1) messages per CS depending on the contention \
       case mix. The last column is the measured multiple of (K-1)."
    ~headers:
      [
        ("N", Tbl.R);
        ("K", Tbl.R);
        ("msgs/CS", Tbl.R);
        ("paper band", Tbl.R);
        ("x(K-1)", Tbl.R);
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E3: sync delay T vs 2T across delay models                          *)
(* ------------------------------------------------------------------ *)

let sync_delay () =
  let n = 25 in
  let models =
    [
      ("constant", Net.Constant 1.0);
      ("uniform(0.5,1.5)", Net.Uniform { lo = 0.5; hi = 1.5 });
      ("exponential(1)", Net.Exponential { mean = 1.0 });
      ("shifted-exp(.5+.5)", Net.Shifted_exponential { base = 0.5; extra_mean = 0.5 });
    ]
  in
  let rows =
    par_map
      (fun ((mname, delay), cs) ->
        let cfg = heavy ~cs ~delay ~runs:400 n in
        let rd = check ((R.delay_optimal ~n ()).R.run cfg) in
        let rm = check ((R.maekawa ~n ()).R.run cfg) in
        let src who = Printf.sprintf "E3 %s E=%g %s" mname cs who in
        Validate.record_report ~source:(src "delay-optimal") ~cfg rd;
        Validate.record_report ~source:(src "maekawa") ~cfg rm;
        let shape =
          match delay with Net.Constant _ -> Mdl.Constant | _ -> Mdl.Random
        in
        (* under Constant delay the exact-2x ratio needs E >= 2T (below
           that some handoffs take the release path and dilute it) *)
        (match shape with
        | Mdl.Constant when cs < 2.0 -> ()
        | shape ->
          Validate.record_check ~source:(src "maekawa/proposed sync")
            (Mdl.sync_ratio ~t:1.0 shape)
            (mean rm.E.sync_delay /. mean rd.E.sync_delay));
        [
          mname;
          Tbl.f1 cs;
          Tbl.f2 (mean rd.E.sync_delay);
          Tbl.f2 (p50 rd.E.sync_delay);
          Tbl.f2 (mean rm.E.sync_delay);
          Tbl.f2 (mean rm.E.sync_delay /. mean rd.E.sync_delay);
        ])
      (List.concat_map (fun m -> List.map (fun cs -> (m, cs)) [ 1.0; 2.0 ]) models)
  in
  Tbl.print ~title:(Printf.sprintf "E3 (5.2): synchronization delay, T vs 2T (N=%d)" n)
    ~note:
      "Paper: the proposed algorithm hands the CS off in T; every \
       Maekawa-type algorithm needs 2T. Under random delays both inflate \
       (the handoff waits for a specific message, i.e. a max of samples), \
       but the 2x structural gap persists in the ratio."
    ~headers:
      [
        ("delay model", Tbl.L);
        ("E/T", Tbl.R);
        ("proposed mean", Tbl.R);
        ("proposed p50", Tbl.R);
        ("maekawa mean", Tbl.R);
        ("ratio", Tbl.R);
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E4/E5: throughput doubled, waiting time halved                      *)
(* ------------------------------------------------------------------ *)

let throughput () =
  let rows =
    par_map
      (fun n ->
        let cfg = heavy ~cs:0.1 ~runs:500 n in
        let rd = check ((R.delay_optimal ~n ()).R.run cfg) in
        let rm = check ((R.maekawa ~n ()).R.run cfg) in
        Validate.record_report
          ~source:(Printf.sprintf "E4 N=%d delay-optimal" n)
          ~cfg rd;
        Validate.record_report ~source:(Printf.sprintf "E4 N=%d maekawa" n) ~cfg
          rm;
        Validate.record_check
          ~source:(Printf.sprintf "E4 N=%d proposed/maekawa throughput" n)
          (Mdl.throughput_ratio ~e:0.1 ~t:1.0)
          (rd.E.throughput /. rm.E.throughput);
        [
          Tbl.i n;
          Tbl.f3 rd.E.throughput;
          Tbl.f3 rm.E.throughput;
          Tbl.f2 (rd.E.throughput /. rm.E.throughput);
          "(2T+E)/(T+E) = " ^ Tbl.f2 (2.1 /. 1.1);
        ])
      [ 9; 25; 49; 81 ]
  in
  Tbl.print ~title:"E4 (5.2): heavy-load throughput, proposed vs Maekawa (E=0.1T)"
    ~note:
      "Paper: 'at heavy loads, the rate of CS execution is doubled'. The \
       structural bound is (2T+E)/(T+E); small E approaches 2."
    ~headers:
      [
        ("N", Tbl.R);
        ("proposed /T", Tbl.R);
        ("maekawa /T", Tbl.R);
        ("ratio", Tbl.R);
        ("ideal", Tbl.L);
      ]
    rows

let waiting_time () =
  let rows =
    par_map
      (fun n ->
        let cfg = heavy ~cs:0.1 ~runs:500 n in
        let rd = check ((R.delay_optimal ~n ()).R.run cfg) in
        let rm = check ((R.maekawa ~n ()).R.run cfg) in
        [
          Tbl.i n;
          Tbl.f1 (mean rd.E.response_time);
          Tbl.f1 (mean rm.E.response_time);
          Tbl.f2 (mean rd.E.response_time /. mean rm.E.response_time);
        ])
      [ 9; 25; 49; 81 ]
  in
  Tbl.print ~title:"E5 (5.2): heavy-load waiting time, proposed vs Maekawa (E=0.1T)"
    ~note:
      "Paper: 'the waiting time of requests is nearly reduced to half \
       because the CS executions proceed with twice the rate'."
    ~headers:
      [
        ("N", Tbl.R);
        ("proposed wait/T", Tbl.R);
        ("maekawa wait/T", Tbl.R);
        ("ratio", Tbl.R);
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E6: light -> heavy load sweep                                       *)
(* ------------------------------------------------------------------ *)

let load_sweep () =
  let n = 25 in
  let k1 = grid_k n - 1 in
  let rows =
    par_map
      (fun rate ->
        let cfg = poisson ~rate ~runs:300 n in
        let r = check ((R.delay_optimal ~n ()).R.run cfg) in
        Validate.record_report ~source:(Printf.sprintf "E6 rate=%g" rate) ~cfg r;
        [
          Tbl.f4 rate;
          Tbl.f1 r.E.messages_per_cs;
          Tbl.f2 (r.E.messages_per_cs /. float_of_int k1);
          Tbl.f1 (mean r.E.response_time);
        ])
      [ 0.0005; 0.002; 0.005; 0.01; 0.02; 0.05; 0.1; 0.2 ]
  in
  Tbl.print
    ~title:
      (Printf.sprintf
         "E6: offered load sweep, delay-optimal (N=%d, K-1=%d, Poisson per site)"
         n k1)
    ~note:
      "Messages per CS climb from the light-load 3(K-1) toward the \
       heavy-load 5..6(K-1) band as contention rises; response time grows \
       with queueing."
    ~headers:
      [
        ("rate/site", Tbl.R);
        ("msgs/CS", Tbl.R);
        ("x(K-1)", Tbl.R);
        ("response/T", Tbl.R);
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E7: quorum size vs N per construction (§5.3, §6)                    *)
(* ------------------------------------------------------------------ *)

let quorum_size () =
  let sizes kind ns =
    List.map
      (fun n ->
        if B.supports kind ~n then
          let st = B.size_stats (B.req_sets kind ~n) in
          Printf.sprintf "%.1f" st.B.k_mean
        else "-")
      ns
  in
  let ns = [ 7; 9; 13; 16; 27; 31; 49; 57; 81; 121; 133 ] in
  let rows =
    List.map
      (fun (label, kind, formula) -> (label :: sizes kind ns) @ [ formula ])
      [
        ("grid", B.Grid, "2 sqrt(N) - 1");
        ("fpp (Maekawa)", B.Fpp, "~ sqrt(N)");
        ("tree (AE)", B.Tree, "log2(N+1)");
        ("hqc", B.Hqc, "N^0.63");
        ("grid-set g=4", B.Grid_set 4, "(N/g+1)/2*(2 sqrt g - 1)");
        ("rst g=4", B.Rst 4, "(g+1)/2*(2 sqrt(N/g) - 1)");
        ("majority", B.Majority, "(N+1)/2");
      ]
  in
  Tbl.print ~title:"E7 (5.3, 6): mean quorum size K by construction"
    ~note:"'-' marks universe sizes the construction does not support."
    ~headers:
      (("construction", Tbl.L)
      :: List.map (fun n -> (Printf.sprintf "N=%d" n, Tbl.R)) ns
      @ [ ("formula", Tbl.L) ])
    rows

(* ------------------------------------------------------------------ *)
(* E8: availability vs per-site up-probability (§6)                    *)
(* ------------------------------------------------------------------ *)

let availability () =
  let ps = [ 0.50; 0.70; 0.80; 0.90; 0.95; 0.99 ] in
  let trials = if !Scenarios.quick then 4_000 else 20_000 in
  let row (label, kind, n) =
    label
    :: Tbl.i n
    :: List.map (fun p -> Tbl.f3 (Av.estimate ~trials kind ~n ~p_up:p)) ps
  in
  let rows =
    par_map row
      [
        ("grid", B.Grid, 49);
        ("fpp", B.Fpp, 57);
        ("tree (AE)", B.Tree, 63);
        ("hqc", B.Hqc, 81);
        ("grid-set g=4", B.Grid_set 4, 64);
        ("rst g=4", B.Rst 4, 64);
        ("majority", B.Majority, 63);
        ("star (central)", B.Star, 63);
        ("all sites", B.All, 63);
      ]
  in
  Tbl.print ~title:"E8 (6): coterie availability vs per-site up-probability p"
    ~note:
      "Probability that some quorum is fully alive (exact where closed \
       forms exist, Monte Carlo otherwise). The fault-tolerant \
       constructions approach majority voting; Maekawa-style quorums decay \
       fastest; 'all sites' is the no-redundancy floor."
    ~headers:
      (("construction", Tbl.L) :: ("N", Tbl.R)
      :: List.map (fun p -> (Printf.sprintf "p=%.2f" p, Tbl.R)) ps)
    rows

(* ------------------------------------------------------------------ *)
(* E9: fault tolerance — crashes, recovery, detector ablation (§6)     *)
(* ------------------------------------------------------------------ *)

let fault_tolerance () =
  let n = 15 in
  let base kind crashes recoveries detection =
    {
      (E.default ~n) with
      seed = 11;
      cs_duration = 1.0;
      delay = Net.Uniform { lo = 0.5; hi = 1.5 };
      detector = E.Oracle detection;
      crashes;
      recoveries;
      max_executions = execs 300;
      warmup = 0;
      max_time = 1.0e6;
    }
    |> fun cfg -> check ((R.ft_delay_optimal ~kind ~n ()).R.run cfg)
  in
  let rows =
    par_map
      (fun (label, kind, crashes, recoveries) ->
        let r = base kind crashes recoveries 3.0 in
        [
          label;
          Tbl.i (List.length crashes);
          Tbl.i r.E.executions;
          Tbl.f1 r.E.messages_per_cs;
          Tbl.f2 (mean r.E.sync_delay);
          Tbl.i r.E.violations;
        ])
      [
        ("tree, no crash", B.Tree, [], []);
        ("tree, leaf dies", B.Tree, [ (25.0, 14) ], []);
        ("tree, root dies", B.Tree, [ (25.0, 0) ], []);
        ("tree, 3 crashes", B.Tree, [ (20.0, 0); (40.0, 4); (60.0, 9) ], []);
        ( "tree, root dies + rejoins",
          B.Tree,
          [ (25.0, 0) ],
          [ (80.0, 0) ] );
        ( "majority, 7 of 15 die",
          B.Majority,
          List.mapi
            (fun i s -> (20.0 +. (5.0 *. float_of_int i), s))
            [ 1; 3; 5; 7; 9; 11; 13 ],
          [] );
      ]
  in
  Tbl.print ~title:(Printf.sprintf "E9 (6): fault-tolerant delay-optimal under crash injection (N=%d)" n)
    ~note:
      "All runs complete their full execution quota: quorum reconstruction \
       (tree substitution / live majorities) plus the Section 6 cleanup \
       keep the system live through crashes, with zero safety violations; \
       a crashed site can also rejoin with fresh state (fail-stop \
       recovery). Detection latency 3.0 > max message delay 1.5."
    ~headers:
      [
        ("scenario", Tbl.L);
        ("crashes", Tbl.R);
        ("CS served", Tbl.R);
        ("msgs/CS", Tbl.R);
        ("sync/T", Tbl.R);
        ("violations", Tbl.R);
      ]
    rows;
  (* Ablation: what the detection-latency assumption buys. A detector
     faster than the network lets the cleanup race in-flight forwards. *)
  let ablate detection =
    let cfg =
      {
        (E.default ~n) with
        seed = 11;
        cs_duration = 1.0;
        delay = Net.Uniform { lo = 0.5; hi = 1.5 };
        detector = E.Oracle detection;
        crashes = [ (20.0, 0); (35.0, 4) ];
        max_executions = execs 300;
        warmup = 0;
        max_time = 1.0e6;
      }
    in
    (R.ft_delay_optimal ~kind:B.Tree ~n ()).R.run cfg
  in
  let rows =
    par_map
      (fun d ->
        let r = ablate d in
        [
          Tbl.f2 d;
          Tbl.i r.E.executions;
          Tbl.i r.E.violations;
          (if r.E.deadlocked then "yes" else "no");
        ])
      [ 0.1; 0.5; 1.0; 2.0; 3.0; 5.0 ]
  in
  Tbl.print ~title:"E9b: detector-latency ablation (crashes at t=20, t=35)"
    ~note:
      "The Section 6 recovery as written assumes failures are detected \
       after in-flight messages drain (detection > max delay = 1.5); a \
       faster detector can race a release that is still forwarding a \
       permission. Our implementation hardens the arbiter against that \
       race (it refuses to assign its lock to a known-dead site and \
       reclaims permissions forwarded to one — DESIGN.md 3), so every \
       latency below stays safe and live."
    ~headers:
      [
        ("detect delay", Tbl.R);
        ("CS served", Tbl.R);
        ("violations", Tbl.R);
        ("stalled", Tbl.L);
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E12: unreliable network — loss sweep and partition healing          *)
(* ------------------------------------------------------------------ *)

let unreliable_network () =
  (* hqc needs a power of 3; everyone else takes the odd default *)
  let default_n = 15 in
  let n_of_kind = function B.Hqc -> 9 | _ -> default_n in
  let losses = [ 0.0; 0.01; 0.05; 0.1 ] in
  (* Only safety is a hard invariant here: under heavy loss a run may
     time out short of its quota, which is the availability signal this
     experiment measures. *)
  let safe (r : E.report) =
    if r.E.violations > 0 then
      failwith
        (Printf.sprintf "BUG: %s violated mutual exclusion under faults"
           r.E.protocol);
    r
  in
  let hb = { Dmx_sim.Detector.period = 2.0; timeout = 12.0 } in
  (* rto above the worst-case round trip (1.5 out + 0.5 ack coalescing +
     1.5 back), so the loss-0 column shows zero spurious retransmissions *)
  let rel = { Dmx_core.Reliable.default with rto = 4.0 } in
  let run kind faults =
    let n = n_of_kind kind in
    let cfg =
      {
        (E.default ~n) with
        seed = 7;
        cs_duration = 1.0;
        delay = Net.Uniform { lo = 0.5; hi = 1.5 };
        detector = E.Heartbeat hb;
        faults;
        max_executions = execs 200;
        warmup = 0;
        max_time = 1.0e6;
      }
    in
    safe
      ((R.ft_delay_optimal ~reliability:rel ~trust_detector:false ~kind ~n ())
         .R.run cfg)
  in
  let quota = execs 200 in
  let rows =
    par_map
      (fun (label, kind) ->
        label
        :: List.concat_map
             (fun loss ->
               let r = run kind { Net.no_faults with Net.loss } in
               [
                 Printf.sprintf "%d/%d" r.E.executions quota;
                 Tbl.f1 r.E.messages_per_cs;
                 Tbl.i r.E.retransmissions;
               ])
             losses)
      [
        ("tree (AE)", B.Tree);
        ("hqc (N=9)", B.Hqc);
        ("grid-set g=3", B.Grid_set 3);
        ("majority", B.Majority);
      ]
  in
  Tbl.print
    ~title:
      (Printf.sprintf
         "E12: FT delay-optimal on an unreliable network (N=%d, heartbeat \
          detector %g/%g, retry/ack layer on)"
         default_n hb.Dmx_sim.Detector.period hb.Dmx_sim.Detector.timeout)
    ~note:
      "Per-message loss probability vs protocol availability: CS served out \
       of the quota, message cost per CS (acks and retransmissions \
       included), and retransmission count. The reliability layer masks \
       loss at the price of extra messages; safety (violations=0) holds \
       throughout."
    ~headers:
      (("construction", Tbl.L)
      :: List.concat_map
           (fun loss ->
             [
               (Printf.sprintf "CS@%g" loss, Tbl.R);
               ("msgs/CS", Tbl.R);
               ("retx", Tbl.R);
             ])
           losses)
    rows;
  (* Partition-and-heal: requests parked during the split must complete
     after it heals, and the unavailability windows are reported. *)
  let split =
    {
      Net.from_t = 30.0;
      until = 70.0;
      groups = [ [ 0; 1; 2; 3; 4; 5; 6 ]; [ 7; 8; 9; 10; 11; 12; 13; 14 ] ];
    }
  in
  let rows =
    par_map
      (fun (label, faults) ->
        let r = run B.Tree faults in
        [
          label;
          Printf.sprintf "%d/%d" r.E.executions quota;
          Tbl.i r.E.violations;
          Tbl.i (S.count r.E.unavailability);
          Tbl.f1 (S.total r.E.unavailability);
          Tbl.i r.E.retransmissions;
        ])
      [
        ("no faults", Net.no_faults);
        ("split 30..70", { Net.no_faults with Net.partitions = [ split ] });
        ( "split + 5% loss",
          { Net.no_faults with Net.partitions = [ split ]; loss = 0.05 } );
      ]
  in
  Tbl.print
    ~title:"E12b: partition heal — parked requests resume (tree coterie)"
    ~note:
      "During the split no quorum spans both halves, so minority-side \
       requests park (counted as unavailability windows); on heal the \
       reliability layer retransmits and every parked request completes. \
       The run still serves its full quota."
    ~headers:
      [
        ("scenario", Tbl.L);
        ("CS served", Tbl.R);
        ("violations", Tbl.R);
        ("unavail windows", Tbl.R);
        ("unavail time", Tbl.R);
        ("retx", Tbl.R);
      ]
    rows

(* ------------------------------------------------------------------ *)
(* A3: huge-N asymptotics — machine-checked sqrt(N)/log(N) scaling     *)
(* ------------------------------------------------------------------ *)

(* The paper's complexity claims are asymptotic: K = O(sqrt N) for grid and
   FPP coteries, O(log N) for the Agrawal-El Abbadi tree, with message cost
   3(K-1)..6(K-1) and sync delay ~T regardless of N. Small-N tables cannot
   distinguish sqrt(N) from N/2; this sweep runs the same protocol at
   N = 10^3..10^6 (lazy assignments, lazy site instantiation, sparse
   channels) and machine-checks every tier against the Section 5 bands with
   K measured from the live quorums. *)

let asymptotics () =
  let max_n =
    match Sys.getenv_opt "DMX_A3_MAX_N" with
    | Some s -> (
      match int_of_string_opt s with
      | Some v when v > 0 -> v
      | _ -> failwith "DMX_A3_MAX_N must be a positive integer")
    | None -> 1_000_000
  in
  (* (nominal tier, FPP universe): FPP needs N = q^2+q+1 with q prime, so
     its universes sit just under the round tiers (q = 31, 97, 313, 997). *)
  let tiers =
    List.filter
      (fun (nominal, _) -> nominal <= max_n)
      [ (1_000, 993); (10_000, 9_507); (100_000, 98_283); (1_000_000, 995_007) ]
  in
  if tiers = [] then
    failwith "DMX_A3_MAX_N too small: the first tier is N=1000";
  let kinds = [ B.Grid; B.Fpp; B.Tree ] in
  let active = 8 in
  let t_delay = 1.0 in
  let heavy_cs = 2.0 in
  let module M = E.Make (Dmx_core.Delay_optimal) in
  let word_mb w = float_of_int w *. float_of_int (Sys.word_size / 8) /. (1024.0 *. 1024.0) in
  let failures = ref [] in
  (* sequential on purpose: each 10^6-site row holds ~10^6 per-site RNG
     states, and running tiers side by side would multiply peak heap *)
  let rows =
    List.concat_map
      (fun (nominal, fpp_n) ->
        List.map
          (fun kind ->
            let n = match kind with B.Fpp -> fpp_n | _ -> nominal in
            if not (B.supports kind ~n) then
              failwith
                (Printf.sprintf "A3: %s does not support n=%d" (B.kind_name kind) n);
            let a = B.assignment kind ~n in
            (* K as the protocol will actually pay it: the mean quorum size
               over the sites that request. *)
            let k =
              let sum =
                List.fold_left
                  (fun acc s ->
                    acc + List.length (Dmx_quorum.Coterie.quorum_of a s))
                  0
                  (List.init active Fun.id)
              in
              float_of_int sum /. float_of_int active
            in
            let pcfg = Dmx_core.Delay_optimal.config_of_assignment a in
            let base =
              {
                (E.default ~n) with
                E.lazy_sites = true;
                delay = Net.Constant t_delay;
                max_time = 1.0e9;
              }
            in
            let cfg_l =
              {
                base with
                E.workload = W.Open_loop { active; rate_per_site = 5e-4 };
                cs_duration = 1.0;
                max_executions = execs 100;
                warmup = 5;
              }
            in
            let cfg_h =
              {
                base with
                E.workload = W.Saturated { contenders = active };
                cs_duration = heavy_cs;
                max_executions = execs 300;
                warmup = 30;
              }
            in
            let l = check (M.run cfg_l pcfg) in
            let h = check (M.run cfg_h pcfg) in
            let src load =
              Printf.sprintf "A3 %s N=%d %s" (B.kind_name kind) n load
            in
            let p ~e load =
              {
                Mdl.algorithm = "delay-optimal";
                n;
                k;
                e;
                t = t_delay;
                load;
                delay_shape = Mdl.Constant;
              }
            in
            let judge source exp value =
              Validate.record_check ~source exp value;
              Mdl.check ~source exp value
            in
            let verdicts =
              List.map
                (fun exp -> judge (src "light") exp l.E.messages_per_cs)
                (Mdl.asymptotic_expectations (p ~e:1.0 Mdl.Light))
              @ List.filter_map
                  (fun exp ->
                    match exp.Mdl.metric with
                    | Mdl.Msgs_per_cs ->
                      Some (judge (src "heavy") exp h.E.messages_per_cs)
                    | Mdl.Sync_delay ->
                      Some (judge (src "heavy") exp (mean h.E.sync_delay))
                    | _ -> None)
                  (Mdl.asymptotic_expectations (p ~e:heavy_cs Mdl.Heavy))
            in
            let bad = List.filter (fun v -> not v.Mdl.ok) verdicts in
            failures := !failures @ bad;
            [
              B.kind_name kind;
              Tbl.i n;
              Tbl.f1 k;
              Tbl.f1 l.E.messages_per_cs;
              Tbl.f1 h.E.messages_per_cs;
              Tbl.f2 (mean h.E.sync_delay /. t_delay);
              Tbl.f1 (word_mb (Gc.quick_stat ()).Gc.top_heap_words);
              Printf.sprintf "%d/%d" (List.length verdicts - List.length bad)
                (List.length verdicts);
            ])
          kinds)
      tiers
  in
  Tbl.print
    ~title:
      (Printf.sprintf
         "A3 (5.3): huge-N asymptotics, machine-checked (N up to %d, %d \
          active sites)"
         (fst (List.nth tiers (List.length tiers - 1)))
         active)
    ~note:
      "Lazy coteries + lazy site instantiation + sparse channels: memory \
       follows the active set, not N. K is measured from the live quorums; \
       each row is checked against 3(K-1) light, the 3(K-1)..6(K-1) heavy \
       envelope, and sync delay T..1.5T (Section 5 closed forms). 'heap' \
       is the process-wide peak after the row, so it is monotone across \
       rows; the last cell is the whole sweep's peak."
    ~headers:
      [
        ("construction", Tbl.L);
        ("N", Tbl.R);
        ("K", Tbl.R);
        ("light msgs", Tbl.R);
        ("heavy msgs", Tbl.R);
        ("sync/T", Tbl.R);
        ("heap MB", Tbl.R);
        ("bands", Tbl.R);
      ]
    rows;
  List.iter (fun v -> Printf.printf "  BAND MISS: %s\n" v.Mdl.message) !failures;
  if !failures <> [] then
    failwith
      (Printf.sprintf "A3: %d measurement(s) outside the Section 5 bands"
         (List.length !failures))
