(** Deterministic fan-out over OCaml 5 domains.

    Every simulation run is an independent, seeded world, so parameter
    sweeps are embarrassingly parallel.  [Pool] exploits that without
    giving up reproducibility: jobs are a {e fixed} list known up front,
    workers pull indices from a shared counter, and results land in an
    array slot keyed by job index.  Consumers therefore observe results
    in submission order — bit-identical to a sequential run — no matter
    how the domains were scheduled.

    There is deliberately no work stealing, no shared mutable state
    visible to jobs, and no ordering guarantee {e during} execution;
    only the collected output order is guaranteed.  Jobs must not
    communicate with each other and must confine side effects (stdout,
    global refs) to data they return, otherwise interleaving will show
    through.

    If a job raises, the exception with the {e smallest job index} is
    re-raised after all workers join — the same failure a sequential
    left-to-right run would have reported first. *)

val default_jobs : unit -> int
(** Parallelism used when [?jobs] is omitted:
    [Domain.recommended_domain_count ()] capped at 8 (beyond that the
    bench workloads are memory-bound and extra domains only add GC
    pressure).  Always at least 1. *)

val run : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [run ~jobs count f] evaluates [f i] for every [i] in
    [0 .. count - 1] on up to [jobs] domains and returns the results
    indexed by [i].  With [jobs <= 1] (or [count <= 1]) everything runs
    sequentially in the calling domain, in index order. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is a parallel [List.map f xs] with the ordering
    guarantee of {!run}: the result list matches [xs] positionally. *)

val concat_map : ?jobs:int -> ('a -> 'b list) -> 'a list -> 'b list
(** [concat_map ~jobs f xs] is a parallel [List.concat_map f xs],
    concatenated in the order of [xs]. *)
