type delay_model =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }
  | Shifted_exponential of { base : float; extra_mean : float }

let mean_delay = function
  | Constant d -> d
  | Uniform { lo; hi } -> (lo +. hi) /. 2.0
  | Exponential { mean } -> mean
  | Shifted_exponential { base; extra_mean } -> base +. extra_mean

let pp_delay_model ppf = function
  | Constant d -> Format.fprintf ppf "constant(%g)" d
  | Uniform { lo; hi } -> Format.fprintf ppf "uniform(%g,%g)" lo hi
  | Exponential { mean } -> Format.fprintf ppf "exponential(mean=%g)" mean
  | Shifted_exponential { base; extra_mean } ->
    Format.fprintf ppf "shifted-exp(base=%g,extra=%g)" base extra_mean

type partition = { from_t : float; until : float; groups : int list list }

type fault_plan = {
  loss : float;
  duplication : float;
  partitions : partition list;
  delay_spikes : (float * float * float) list;
}

let no_faults =
  { loss = 0.0; duplication = 0.0; partitions = []; delay_spikes = [] }

type drop_reason = [ `Down | `Partitioned | `Faulty ]
type verdict = Delivered of float list | Lost of drop_reason

type channel_repr = Dense | Sparse

(* FIFO watermarks per directed channel, keyed by [src * n + dst]. The dense
   form is the original N x N matrix (kept as the small-N reference and for
   the fingerprint tests); the sparse form creates an entry on first send,
   so memory follows touched links instead of N^2. A missing sparse entry
   reads as 0.0, exactly the dense initial value, so the two forms are
   observationally identical. *)
type channels = Dense_c of float array | Sparse_c of (int, float) Hashtbl.t

type t = {
  n : int;
  delay : delay_model;
  rng : Rng.t;
  faults : fault_plan;
  (* Dedicated generator for fault draws so enabling faults does not
     perturb the delay-sampling stream of fault-free components. *)
  fault_rng : Rng.t;
  (* group.(p).(site): partition-group index of [site] under partition [p];
     sites not listed in any group share the implicit "rest" group. *)
  part_groups : int array array;
  up : bool array;
  (* last_delivery: latest delivery time handed out per directed channel,
     used to enforce FIFO under random delays. *)
  last_delivery : channels;
}

let watermark t idx =
  match t.last_delivery with
  | Dense_c a -> a.(idx)
  | Sparse_c h -> ( match Hashtbl.find_opt h idx with Some v -> v | None -> 0.0)

let set_watermark t idx v =
  match t.last_delivery with
  | Dense_c a -> a.(idx) <- v
  | Sparse_c h -> Hashtbl.replace h idx v

let validate_faults ~n f =
  let bad fmt = Printf.ksprintf invalid_arg fmt in
  if not (f.loss >= 0.0 && f.loss < 1.0) then
    bad "Network.create: loss %g not in [0,1)" f.loss;
  if not (f.duplication >= 0.0 && f.duplication < 1.0) then
    bad "Network.create: duplication %g not in [0,1)" f.duplication;
  List.iter
    (fun p ->
      if not (p.from_t >= 0.0 && p.from_t < p.until) then
        bad "Network.create: partition window [%g,%g) is empty" p.from_t
          p.until;
      let seen = Array.make n false in
      List.iter
        (List.iter (fun s ->
             if s < 0 || s >= n then
               bad "Network.create: partition site %d out of range" s;
             if seen.(s) then
               bad "Network.create: partition groups overlap at site %d" s;
             seen.(s) <- true))
        p.groups)
    f.partitions;
  List.iter
    (fun (from_t, until, factor) ->
      if not (from_t >= 0.0 && from_t < until) then
        bad "Network.create: delay spike window [%g,%g) is empty" from_t until;
      if not (factor > 0.0) then
        bad "Network.create: delay spike factor %g must be positive" factor)
    f.delay_spikes

let create ?(channels = Sparse) ?(faults = no_faults) ?fault_rng ~n ~delay
    ~rng () =
  if n <= 0 then invalid_arg "Network.create: n must be positive";
  if channels = Dense && n > 16_384 then
    invalid_arg
      (Printf.sprintf
         "Network.create: dense channels allocate an N x N matrix; n=%d \
          needs the sparse representation" n);
  validate_faults ~n faults;
  let fault_rng =
    match fault_rng with Some r -> r | None -> Rng.create 0x5eed_fa17
  in
  let part_groups =
    List.map
      (fun p ->
        (* Unlisted sites fall into one implicit rest-group (index 0). *)
        let g = Array.make n 0 in
        List.iteri (fun i sites -> List.iter (fun s -> g.(s) <- i + 1) sites)
          p.groups;
        g)
      faults.partitions
    |> Array.of_list
  in
  {
    n;
    delay;
    rng;
    faults;
    fault_rng;
    part_groups;
    up = Array.make n true;
    last_delivery =
      (match channels with
      | Dense -> Dense_c (Array.make (n * n) 0.0)
      | Sparse -> Sparse_c (Hashtbl.create 64));
  }

let n t = t.n
let fault_plan t = t.faults

let sample t =
  match t.delay with
  | Constant d -> d
  | Uniform { lo; hi } -> Rng.uniform t.rng ~lo ~hi
  | Exponential { mean } -> Rng.exponential t.rng ~mean
  | Shifted_exponential { base; extra_mean } ->
    base +. Rng.exponential t.rng ~mean:extra_mean

let check_site t i name =
  if i < 0 || i >= t.n then
    invalid_arg (Printf.sprintf "Network.%s: site %d out of range" name i)

let partitioned t ~src ~dst ~now =
  let rec loop i parts =
    match parts with
    | [] -> false
    | p :: rest ->
      if now >= p.from_t && now < p.until then
        let g = t.part_groups.(i) in
        if g.(src) <> g.(dst) then true else loop (i + 1) rest
      else loop (i + 1) rest
  in
  loop 0 t.faults.partitions

let spike_factor t ~now =
  List.fold_left
    (fun acc (from_t, until, factor) ->
      if now >= from_t && now < until then acc *. factor else acc)
    1.0 t.faults.delay_spikes

let partition_edges t =
  List.concat_map
    (fun p ->
      (p.from_t, false)
      :: (if Float.is_finite p.until then [ (p.until, true) ] else []))
    t.faults.partitions

let deliver_one t ~idx ~now ~factor =
  let at = Float.max (now +. (sample t *. factor)) (watermark t idx) in
  set_watermark t idx at;
  at

let transmit t ~src ~dst ~now =
  check_site t src "transmit";
  check_site t dst "transmit";
  if not (t.up.(src) && t.up.(dst)) then Lost `Down
  else if partitioned t ~src ~dst ~now then Lost `Partitioned
  else if t.faults.loss > 0.0 && Rng.float t.fault_rng 1.0 < t.faults.loss then
    Lost `Faulty
  else begin
    let idx = (src * t.n) + dst in
    let factor = spike_factor t ~now in
    let first = deliver_one t ~idx ~now ~factor in
    if
      t.faults.duplication > 0.0
      && Rng.float t.fault_rng 1.0 < t.faults.duplication
    then Delivered [ first; deliver_one t ~idx ~now ~factor ]
    else Delivered [ first ]
  end

let delivery_time t ~src ~dst ~now =
  match transmit t ~src ~dst ~now with
  | Delivered (at :: _) -> Some at
  | Delivered [] -> None
  | Lost _ -> None

let crash t i =
  check_site t i "crash";
  t.up.(i) <- false

let recover t i =
  check_site t i "recover";
  t.up.(i) <- true;
  (* Channels restart empty: reset FIFO watermarks touching this site. *)
  (match t.last_delivery with
  | Dense_c a ->
    for j = 0 to t.n - 1 do
      a.((i * t.n) + j) <- 0.0;
      a.((j * t.n) + i) <- 0.0
    done
  | Sparse_c h ->
    let touching =
      Hashtbl.fold
        (fun idx _ acc ->
          if idx / t.n = i || idx mod t.n = i then idx :: acc else acc)
        h []
    in
    List.iter (Hashtbl.remove h) touching)

let is_up t i =
  check_site t i "is_up";
  t.up.(i)

let up_sites t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (if t.up.(i) then i :: acc else acc) in
  loop (t.n - 1) []
