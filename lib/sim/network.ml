type delay_model =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }
  | Shifted_exponential of { base : float; extra_mean : float }

let mean_delay = function
  | Constant d -> d
  | Uniform { lo; hi } -> (lo +. hi) /. 2.0
  | Exponential { mean } -> mean
  | Shifted_exponential { base; extra_mean } -> base +. extra_mean

let pp_delay_model ppf = function
  | Constant d -> Format.fprintf ppf "constant(%g)" d
  | Uniform { lo; hi } -> Format.fprintf ppf "uniform(%g,%g)" lo hi
  | Exponential { mean } -> Format.fprintf ppf "exponential(mean=%g)" mean
  | Shifted_exponential { base; extra_mean } ->
    Format.fprintf ppf "shifted-exp(base=%g,extra=%g)" base extra_mean

type t = {
  n : int;
  delay : delay_model;
  rng : Rng.t;
  up : bool array;
  (* last_delivery.(src * n + dst): latest delivery time handed out on that
     channel, used to enforce FIFO under random delays. *)
  last_delivery : float array;
}

let create ~n ~delay ~rng =
  if n <= 0 then invalid_arg "Network.create: n must be positive";
  { n; delay; rng; up = Array.make n true; last_delivery = Array.make (n * n) 0.0 }

let n t = t.n

let sample t =
  match t.delay with
  | Constant d -> d
  | Uniform { lo; hi } -> Rng.uniform t.rng ~lo ~hi
  | Exponential { mean } -> Rng.exponential t.rng ~mean
  | Shifted_exponential { base; extra_mean } ->
    base +. Rng.exponential t.rng ~mean:extra_mean

let check_site t i name =
  if i < 0 || i >= t.n then
    invalid_arg (Printf.sprintf "Network.%s: site %d out of range" name i)

let delivery_time t ~src ~dst ~now =
  check_site t src "delivery_time";
  check_site t dst "delivery_time";
  if not (t.up.(src) && t.up.(dst)) then None
  else begin
    let idx = (src * t.n) + dst in
    let at = Float.max (now +. sample t) t.last_delivery.(idx) in
    t.last_delivery.(idx) <- at;
    Some at
  end

let crash t i =
  check_site t i "crash";
  t.up.(i) <- false

let recover t i =
  check_site t i "recover";
  t.up.(i) <- true;
  (* Channels restart empty: reset FIFO watermarks touching this site. *)
  for j = 0 to t.n - 1 do
    t.last_delivery.((i * t.n) + j) <- 0.0;
    t.last_delivery.((j * t.n) + i) <- 0.0
  done

let is_up t i =
  check_site t i "is_up";
  t.up.(i)

let up_sites t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (if t.up.(i) then i :: acc else acc) in
  loop (t.n - 1) []
