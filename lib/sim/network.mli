(** Network model: message delays, FIFO channels, site crashes.

    Implements the system model of Section 2 of the paper: sites are fully
    connected, channels are reliable and FIFO, message delay is unpredictable
    but bounded, with mean delay [T]. Crash support (used by the Section 6
    fault-tolerance experiments) marks sites dead; messages to or from a dead
    site are silently dropped, as in a fail-stop model. *)

type delay_model =
  | Constant of float  (** every message takes exactly this long *)
  | Uniform of { lo : float; hi : float }  (** uniform in [lo, hi] *)
  | Exponential of { mean : float }  (** memoryless; heavy tail *)
  | Shifted_exponential of { base : float; extra_mean : float }
      (** a wire latency plus exponential queueing: [base + Exp(extra_mean)] *)

val mean_delay : delay_model -> float
(** The average message delay [T] of the model. *)

val pp_delay_model : Format.formatter -> delay_model -> unit

type t

val create : n:int -> delay:delay_model -> rng:Rng.t -> t
(** [create ~n ~delay ~rng] models a fully connected network of [n] sites.
    The generator is consumed for delay sampling; pass a dedicated split. *)

val n : t -> int

val delivery_time : t -> src:int -> dst:int -> now:float -> float option
(** Delivery timestamp for a message sent now, or [None] if either endpoint
    is crashed. Successive calls for the same (src, dst) pair return
    non-decreasing times, preserving the FIFO channel guarantee even under
    random per-message delays. *)

val crash : t -> int -> unit
(** Mark a site fail-stopped. Idempotent. *)

val recover : t -> int -> unit
(** Bring a crashed site back (its channels restart empty). *)

val is_up : t -> int -> bool
val up_sites : t -> int list
