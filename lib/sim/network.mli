(** Network model: message delays, FIFO channels, site crashes, and
    injected faults.

    Implements the system model of Section 2 of the paper: sites are fully
    connected, channels are FIFO, message delay is unpredictable but bounded,
    with mean delay [T]. Crash support (used by the Section 6 fault-tolerance
    experiments) marks sites dead; messages to or from a dead site are
    silently dropped, as in a fail-stop model.

    Beyond the paper's model, a seeded deterministic {!fault_plan} can
    subject every channel to message loss, duplication, scheduled network
    partitions, and delay spikes. Faults are drawn from a dedicated
    generator, so two runs with the same seeds inject the same faults. *)

type delay_model =
  | Constant of float  (** every message takes exactly this long *)
  | Uniform of { lo : float; hi : float }  (** uniform in [lo, hi] *)
  | Exponential of { mean : float }  (** memoryless; heavy tail *)
  | Shifted_exponential of { base : float; extra_mean : float }
      (** a wire latency plus exponential queueing: [base + Exp(extra_mean)] *)

val mean_delay : delay_model -> float
(** The average message delay [T] of the model. *)

val pp_delay_model : Format.formatter -> delay_model -> unit

type partition = { from_t : float; until : float; groups : int list list }
(** During [[from_t, until)] only sites within the same group can exchange
    messages. Sites not listed in any group form one implicit rest-group.
    An infinite [until] never heals. *)

type fault_plan = {
  loss : float;  (** per-message drop probability, in [0, 1) *)
  duplication : float;  (** per-message duplicate probability, in [0, 1) *)
  partitions : partition list;
  delay_spikes : (float * float * float) list;
      (** [(from_t, until, factor)]: delays sampled in the window are
          multiplied by [factor]; overlapping spikes compound. *)
}

val no_faults : fault_plan

type drop_reason = [ `Down | `Partitioned | `Faulty ]

type verdict =
  | Delivered of float list
      (** delivery timestamps: one per copy (duplication can yield two) *)
  | Lost of drop_reason

type t

type channel_repr =
  | Dense  (** the original N x N FIFO-watermark matrix — small N only *)
  | Sparse
      (** per-channel watermarks created on first send; memory follows
          touched links instead of N², enabling universes of 10⁶ sites.
          Observationally identical to [Dense]: a missing entry reads as the
          dense initial value, and the delay/fault RNG streams are untouched
          by the representation. *)

val create :
  ?channels:channel_repr -> ?faults:fault_plan -> ?fault_rng:Rng.t ->
  n:int -> delay:delay_model -> rng:Rng.t -> unit -> t
(** [create ~n ~delay ~rng ()] models a fully connected network of [n]
    sites. The generator is consumed for delay sampling; pass a dedicated
    split. [channels] defaults to [Sparse]; dense is refused above
    n = 16384 (the matrix would dominate memory). [faults] defaults to
    {!no_faults}; fault draws consume
    [fault_rng] (a fixed-seed generator when omitted), never [rng], so the
    delay stream is identical with and without faults.
    @raise Invalid_argument on malformed plans: probabilities outside
    [0, 1), empty windows, overlapping or out-of-range partition groups,
    non-positive spike factors. *)

val n : t -> int

val fault_plan : t -> fault_plan

val transmit : t -> src:int -> dst:int -> now:float -> verdict
(** Full fault-aware send: reports the delivery time of every surviving
    copy, or why the message was lost. Successive delivered copies on the
    same (src, dst) pair have non-decreasing times, preserving the FIFO
    channel guarantee even under random per-message delays. Lost messages
    do not advance the FIFO watermark. *)

val delivery_time : t -> src:int -> dst:int -> now:float -> float option
(** Compatibility wrapper over {!transmit}: the first surviving copy's
    delivery timestamp, or [None] if the message was lost for any reason
    (endpoint down, partition, or injected loss). Duplicate copies are
    dropped; use {!transmit} to schedule them. *)

val partition_edges : t -> (float * bool) list
(** Every scheduled partition boundary as [(time, is_heal)], split events
    first per partition. Infinite heals are omitted. *)

val crash : t -> int -> unit
(** Mark a site fail-stopped. Idempotent. *)

val recover : t -> int -> unit
(** Bring a crashed site back. Its channels restart empty: the per-pair
    FIFO delivery watermarks touching the site are reset, so the rejoined
    site's first messages are not artificially delayed behind pre-crash
    traffic. *)

val is_up : t -> int -> bool
val up_sites : t -> int list
