module type CHECKABLE = sig
  include Protocol.PROTOCOL

  val copy_state : state -> state
end

type outcome = {
  states_explored : int;
  distinct_states : int;
  violations : int;
  stuck_states : int;
  completed_schedules : int;
  truncated : bool;
}

let clean o =
  o.violations = 0 && o.stuck_states = 0 && (not o.truncated)
  && o.completed_schedules > 0

let pp_outcome ppf o =
  Format.fprintf ppf
    "explored=%d distinct=%d violations=%d stuck=%d completed=%d%s"
    o.states_explored o.distinct_states o.violations o.stuck_states
    o.completed_schedules
    (if o.truncated then " TRUNCATED" else "")

module Make (P : CHECKABLE) = struct
  (* A global configuration: per-site protocol state, per-channel FIFO
     queues (newest last), who is in the CS, who has completed. *)
  type node = {
    states : P.state array;
    channels : P.message list array;  (* index src*n + dst *)
    in_cs : int;  (* -1 when free *)
    served : bool array;
    pending_requests : bool array;  (* staggered requesters yet to issue *)
    losses : int;  (* messages dropped so far (bounded-loss adversary) *)
  }

  let copy_node node =
    {
      states = Array.map P.copy_state node.states;
      channels = Array.copy node.channels;
      in_cs = node.in_cs;
      served = Array.copy node.served;
      pending_requests = Array.copy node.pending_requests;
      losses = node.losses;
    }

  (* The context used while (re)executing protocol steps inside one node
     under construction; [cell] carries the mutable bits an action updates. *)
  type cell = {
    mutable cur : node;
    mutable entered : int list;  (* CS entries triggered by this action *)
  }

  let make_ctx ~n cell self : P.message Protocol.ctx =
    {
      Protocol.self;
      n;
      now = (fun () -> 0.0);
      send =
        (fun ~dst msg ->
          let idx = (self * n) + dst in
          cell.cur.channels.(idx) <- cell.cur.channels.(idx) @ [ msg ]);
      enter_cs = (fun () -> cell.entered <- self :: cell.entered);
      set_timer =
        (fun ~delay:_ ~tag:_ ->
          invalid_arg "Model_check: protocols with timers are not supported");
      rng = Rng.create 0;
      trace_note = ignore;
      trace_event = ignore;
      mark_parked = ignore;
    }

  (* Digest of a node for the visited set. Protocol states are pure data,
     so the polymorphic hash/equality are sound here. *)
  let digest node =
    ( node.states,
      node.channels,
      node.in_cs,
      node.served,
      node.pending_requests,
      node.losses )

  let explore ?(max_states = 2_000_000) ?(staggered = false) ?(max_losses = 0)
      ~n ~requesters pconfig =
    if max_losses < 0 then invalid_arg "Model_check.explore: max_losses";
    if requesters = [] then invalid_arg "Model_check.explore: no requesters";
    List.iter
      (fun s ->
        if s < 0 || s >= n then invalid_arg "Model_check.explore: requester")
      requesters;
    let visited = Hashtbl.create 4096 in
    let explored = ref 0 in
    let violations = ref 0 in
    let stuck = ref 0 in
    let completed = ref 0 in
    let truncated = ref false in
    (* initial node: init everyone, then all requests issued up front *)
    let init_node () =
      let cell =
        {
          cur =
            {
              states = [||];
              channels = Array.make (n * n) [];
              in_cs = -1;
              served = Array.make n true;
              pending_requests = Array.make n false;
              losses = 0;
            };
          entered = [];
        }
      in
      let states =
        Array.init n (fun self -> P.init (make_ctx ~n cell self) pconfig)
      in
      cell.cur <- { cell.cur with states };
      List.iter (fun s -> cell.cur.served.(s) <- false) requesters;
      if staggered then
        (* request issuance becomes an explorable action interleaved with
           deliveries, covering late-arrival schedules too *)
        List.iter (fun s -> cell.cur.pending_requests.(s) <- true) requesters
      else
        List.iter
          (fun s -> P.request_cs (make_ctx ~n cell s) cell.cur.states.(s))
          requesters;
      (* an immediate self-grant (n=1-style) may enter already *)
      (cell, cell.entered)
    in
    (* apply pending CS entries to a node, counting violations *)
    let absorb_entries cell =
      List.iter
        (fun site ->
          if cell.cur.in_cs >= 0 then incr violations
          else cell.cur <- { cell.cur with in_cs = site })
        (List.rev cell.entered);
      cell.entered <- []
    in
    let rec visit node =
      if !truncated then ()
      else begin
        let key = digest node in
        if not (Hashtbl.mem visited key) then begin
          Hashtbl.add visited key ();
          incr explored;
          if !explored >= max_states then truncated := true
          else begin
            (* enabled actions *)
            let any = ref false in
            (* deliver the head of any non-empty channel *)
            for idx = 0 to (n * n) - 1 do
              match node.channels.(idx) with
              | [] -> ()
              | msg :: rest ->
                any := true;
                let src = idx / n and dst = idx mod n in
                let cell = { cur = copy_node node; entered = [] } in
                cell.cur.channels.(idx) <- rest;
                P.on_message (make_ctx ~n cell dst) cell.cur.states.(dst) ~src
                  msg;
                absorb_entries cell;
                visit cell.cur;
                (* the adversary may instead drop the head, if it still has
                   loss budget; safety must hold on every such schedule *)
                if node.losses < max_losses then begin
                  let lossy = copy_node node in
                  lossy.channels.(idx) <- rest;
                  visit { lossy with losses = lossy.losses + 1 }
                end
            done;
            (* a staggered requester may issue its request now *)
            for site = 0 to n - 1 do
              if node.pending_requests.(site) then begin
                any := true;
                let cell = { cur = copy_node node; entered = [] } in
                cell.cur.pending_requests.(site) <- false;
                P.request_cs (make_ctx ~n cell site) cell.cur.states.(site);
                absorb_entries cell;
                visit cell.cur
              end
            done;
            (* the site in the CS may exit *)
            if node.in_cs >= 0 then begin
              any := true;
              let site = node.in_cs in
              let cell = { cur = copy_node node; entered = [] } in
              cell.cur <- { cell.cur with in_cs = -1 };
              cell.cur.served.(site) <- true;
              P.release_cs (make_ctx ~n cell site) cell.cur.states.(site);
              absorb_entries cell;
              visit cell.cur
            end;
            if not !any then begin
              (* terminal: no messages, nobody in CS *)
              if Array.for_all Fun.id node.served then incr completed
              else incr stuck
            end
          end
        end
      end
    in
    let cell, _ = init_node () in
    absorb_entries cell;
    visit cell.cur;
    {
      states_explored = !explored;
      distinct_states = Hashtbl.length visited;
      violations = !violations;
      stuck_states = !stuck;
      completed_schedules = !completed;
      truncated = !truncated;
    }
end
