(** Serializable run descriptors: the [.dmxrepro] replay format.

    A schedule is everything needed to re-execute a simulation bit-for-bit:
    algorithm and quorum construction (by name — resolution to a concrete
    runner lives above this library, in [Dmx_baselines.Runner]), the seed,
    and the full engine configuration including the fault plan. The fuzz
    harness generates schedules, runs them, and — when the {!Oracle}
    rejects a trace — {!shrink}s the schedule to a minimal reproducer that
    is persisted with {!to_file} and re-executed with [dmx-sim replay].

    The textual format is line-oriented ([key value...]); floats are
    written as C99 hex literals ([%h]) so parsing returns the exact bits
    that were serialized — replays are deterministic, not merely close. *)

type t = {
  algo : string;  (** runner name, e.g. "delay-optimal" *)
  quorum : string;  (** quorum construction name, [""] when not applicable *)
  seed : int;
  n : int;
  execs : int;  (** measured CS executions ([Engine.config.max_executions]) *)
  warmup : int;
  cs : float;
  delay : Network.delay_model;
  workload : Workload.t;
  faults : Network.fault_plan;
  crashes : (float * int) list;
  recoveries : (float * int) list;
  detector : Engine.detector;
  reliability : bool;  (** run the FT variant with its retry/ack layer *)
  stall : float;
}

val default : algo:string -> n:int -> t
(** Fault-free saturated run, seed 42, no warmup. *)

val to_engine_config : t -> Engine.config
(** Everything but the protocol choice, which the caller resolves from
    [algo]/[quorum]/[reliability]. *)

val to_string : t -> string
(** Canonical [.dmxrepro] text: fixed key order, one key per line, hex
    floats. [of_string (to_string t) = Ok t] for every [t]. The format is
    specified in [docs/dmxrepro.md]. *)

val of_string : string -> (t, string) result
(** Parse [.dmxrepro] text. Blank lines and [#] comments are skipped;
    unknown keys and a missing/non-positive [n] are errors. Omitted keys
    take {!default}'s values, with [n]-dependent defaults (the saturated
    workload's contender count) re-derived after parsing. *)

val to_file : t -> string -> unit
(** [to_file t path] writes {!to_string}[ t] to [path] (truncating). *)

val of_file : string -> (t, string) result
(** Read and {!of_string} a reproducer file; I/O errors become [Error]. *)

val shrink : t -> t list
(** Strictly-smaller candidate schedules, most aggressive first: fewer
    sites, fewer requests, fewer fault events, then delay jitter collapsed
    to its mean. Site-indexed components (workload, crashes, partitions)
    are re-clamped when [n] shrinks. *)

val minimize :
  ?max_attempts:int -> valid:(t -> bool) -> fails:(t -> bool) -> t -> t
(** Greedy shrinking: repeatedly replace the schedule by its first valid
    candidate that still [fails], until none does (a local minimum) or
    [max_attempts] (default 200) failing-run budget is spent. [fails]
    should run the schedule and report whether the bug reproduces. *)
