(** Lamport timestamps and request priorities.

    Every CS request carries a timestamp [(sn, site)]: a Lamport sequence
    number and the requester's site id. Following the paper (Section 3.1),
    the request with the smaller sequence number has higher priority; ties
    break toward the smaller site id. [compare] orders higher priority
    first, so timestamps drop into priority queues directly. *)

type t = { sn : int; site : int }

val compare : t -> t -> int
(** [compare a b < 0] iff [a] has higher priority than [b]. *)

val ( < ) : t -> t -> bool
(** Higher priority. *)

val ( > ) : t -> t -> bool
val equal : t -> t -> bool

val infinity : t
(** The paper's [(max, max)]: lower priority than every real request. Used
    as the "unlocked" value of an arbiter's [lock] variable. *)

val is_infinity : t -> bool
val pp : Format.formatter -> t -> unit

(** Per-site Lamport clock: assigns sequence numbers greater than any value
    sent, received, or observed at that site. *)
module Clock : sig
  type ts = t
  type t

  val create : unit -> t
  val copy : t -> t

  val next : t -> site:int -> ts
  (** Fresh timestamp for a new request from [site]; advances the clock. *)

  val observe : t -> ts -> unit
  (** Fold a received timestamp into the clock. *)

  val current : t -> int
end
