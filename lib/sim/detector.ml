type config = { period : float; timeout : float }

let default = { period = 2.0; timeout = 10.0 }

let validate c =
  if not (c.period > 0.0) then
    invalid_arg "Detector: heartbeat period must be positive";
  if not (c.timeout > c.period) then
    invalid_arg "Detector: timeout must exceed the heartbeat period"

let pp_config ppf c =
  Format.fprintf ppf "heartbeat(period=%g,timeout=%g)" c.period c.timeout

type t = {
  cfg : config;
  self : int;
  n : int;
  last_heard : float array;
  suspected : bool array;
}

let create cfg ~n ~self ~now =
  validate cfg;
  { cfg; self; n; last_heard = Array.make n now; suspected = Array.make n false }

let heartbeat t ~src ~now =
  t.last_heard.(src) <- now;
  if t.suspected.(src) then begin
    t.suspected.(src) <- false;
    true
  end
  else false

let sweep t ~now =
  let newly = ref [] in
  for src = t.n - 1 downto 0 do
    if
      src <> t.self
      && (not t.suspected.(src))
      && now -. t.last_heard.(src) > t.cfg.timeout
    then begin
      t.suspected.(src) <- true;
      newly := src :: !newly
    end
  done;
  !newly

let reset t ~now =
  Array.fill t.last_heard 0 t.n now;
  Array.fill t.suspected 0 t.n false

let suspected t src = t.suspected.(src)

let suspects t =
  let rec loop i acc =
    if i < 0 then acc
    else loop (i - 1) (if t.suspected.(i) then i :: acc else acc)
  in
  loop (t.n - 1) []
