type detector = Oracle of float | Heartbeat of Detector.config

type config = {
  n : int;
  seed : int;
  delay : Network.delay_model;
  cs_duration : float;
  workload : Workload.t;
  max_executions : int;
  max_time : float;
  warmup : int;
  crashes : (float * int) list;
  recoveries : (float * int) list;
  detector : detector;
  faults : Network.fault_plan;
  stall_timeout : float;
  trace : bool;
  lazy_sites : bool;
      (* instantiate a site's protocol state on first touch (its first
         arrival or delivery) instead of all n up front; requires the
         Oracle detector. Off by default: eager instantiation stays the
         reference behavior. *)
  dense_channels : bool;
      (* force the reference N x N FIFO-watermark matrix instead of the
         sparse per-channel table (small N only; for equivalence tests) *)
  obs : Dmx_obs.Registry.t option;
      (* metrics registry the run flushes its totals into (events, heap
         ops, executions, messages, per-kind counts). Flushed once at the
         end of the run — virtual time, so the registry contents are a
         pure function of the seed — never touched on the hot path. *)
}

let default ~n =
  {
    n;
    seed = 42;
    delay = Network.Constant 1.0;
    cs_duration = 0.5;
    workload = Workload.Saturated { contenders = n };
    max_executions = 200;
    max_time = 1.0e9;
    warmup = 20;
    crashes = [];
    recoveries = [];
    detector = Oracle 1.0;
    faults = Network.no_faults;
    stall_timeout = 2000.0;
    trace = false;
    lazy_sites = false;
    dense_channels = false;
    obs = None;
  }

type report = {
  protocol : string;
  params : string;
  n : int;
  executions : int;
  total_messages : int;
  messages_by_kind : (string * int) list;
  messages_per_cs : float;
  sync_delay : Stats.Summary.t;
  response_time : Stats.Summary.t;
  throughput : float;
  sim_time : float;
  mean_delay : float;
  violations : int;
  deadlocked : bool;
  pending_at_end : int;
  per_site_executions : int array;
  fairness : float;
  retransmissions : int;
  acks : int;
  detector_messages : int;
  suspicions : int;
  false_suspicions : int;
  unavailability : Stats.Summary.t;
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%s (%s): n=%d executions=%d@,\
     messages: total=%d per-cs=%.2f by-kind=[%s]@,\
     sync delay: %a@,\
     response time: %a@,\
     throughput=%.4f /T  fairness=%.3f  sim-time=%.1f  violations=%d%s pending=%d"
    r.protocol r.params r.n r.executions r.total_messages r.messages_per_cs
    (String.concat "; "
       (List.map (fun (k, v) -> Printf.sprintf "%s:%d" k v) r.messages_by_kind))
    Stats.Summary.pp r.sync_delay Stats.Summary.pp r.response_time
    (r.throughput *. r.mean_delay)
    r.fairness r.sim_time r.violations
    (if r.deadlocked then " DEADLOCK" else "")
    r.pending_at_end;
  (* Fault/robustness line only when something happened, so fault-free runs
     print exactly as before. *)
  if
    r.retransmissions > 0 || r.acks > 0 || r.detector_messages > 0
    || r.suspicions > 0
    || Stats.Summary.count r.unavailability > 0
  then
    Format.fprintf ppf
      "@,faults: retx=%d acks=%d heartbeats=%d suspicions=%d (false=%d) \
       unavail-windows=%d unavail-time=%.1f"
      r.retransmissions r.acks r.detector_messages r.suspicions
      r.false_suspicions
      (Stats.Summary.count r.unavailability)
      (Stats.Summary.total r.unavailability);
  Format.fprintf ppf "@]"

(* Cumulative count of events processed by every [run] in this process,
   across all protocol instantiations and domains.  Bench drivers read
   deltas around an experiment to report events/sec; the counter is
   deliberately process-global (and atomic) so parallel workers all
   contribute. *)
let events_total : int Atomic.t = Atomic.make 0

module Make (P : Protocol.PROTOCOL) = struct
  type ev =
    | Deliver of { src : int; dst : int; msg : P.message; self_msg : bool }
    | Timer of { site : int; tag : int }
    | Arrival of { site : int }
    | Cs_exit of { site : int }
    | Crash_ev of { site : int }
    | Recover_ev of { site : int }
    | Detect of { observer : int; failed : int }
    | Detect_recovery of { observer : int; recovered : int }
    (* Housekeeping events: failure-detector plumbing and engine timers.
       They never count toward quiescence detection. *)
    | Heartbeat_tick of { site : int }
    | Heartbeat_arrive of { src : int; dst : int }
    | Partition_edge of { heal : bool }
    | Watchdog

  let housekeeping = function
    | Heartbeat_tick _ | Heartbeat_arrive _ | Partition_edge _ | Watchdog ->
      true
    | Deliver _ | Timer _ | Arrival _ | Cs_exit _ | Crash_ev _ | Recover_ev _
    | Detect _ | Detect_recovery _ ->
      false

  type sim = {
    cfg : config;
    q : ev Event_queue.t;
    net : Network.t;
    trace : Trace.t;
    counters : Stats.Counter.t;
    sync_delay : Stats.Summary.t;
    response_time : Stats.Summary.t;
    unavail : Stats.Summary.t;  (* durations of no-live-quorum park windows *)
    request_time : float array;  (* issue time of outstanding request, or nan *)
    parked_since : float array;  (* start of the site's park window, or nan *)
    backlog : int array;  (* application requests queued behind an active one *)
    site_execs : int array;  (* post-warmup CS completions per site *)
    detectors : Detector.t array;  (* empty in Oracle mode *)
    wl_rng : Rng.t;
    watchdog_armed : bool;
    mutable outstanding : int;  (* sites waiting for the CS *)
    mutable in_cs : int;  (* current CS holder, -1 if none *)
    mutable executions : int;  (* completed CS executions, including warmup *)
    mutable messages : int;  (* post-warmup network messages *)
    mutable detector_msgs : int;  (* heartbeats sent, whole run *)
    mutable suspicions : int;
    mutable false_suspicions : int;
    mutable live_events : int;  (* scheduled non-housekeeping events *)
    mutable last_progress : float;  (* time of last non-housekeeping event *)
    mutable forced_deadlock : bool;
    mutable last_exit : float;
    mutable waiting_at_exit : bool;
    mutable had_exit : bool;
    mutable violations : int;
    mutable warmup_time : float;
    mutable stop : bool;
  }

  let warmed sim = sim.executions >= sim.cfg.warmup

  let target sim = sim.cfg.warmup + sim.cfg.max_executions

  let sched_live sim ~time ev =
    Event_queue.schedule sim.q ~time ev;
    sim.live_events <- sim.live_events + 1

  (* Builds one site's context; mutual recursion with event handling is
     broken by routing everything through the queue. Contexts are closures
     over [sim] only — building one has no side effects, so lazy-site mode
     can defer it to the site's first touch. *)
  let make_ctx sim site_rngs self =
    let now () = Event_queue.now sim.q in
          let send ~dst msg =
            if dst = self then begin
              (* Rendering the payload is pure allocation when tracing is
                 off, and send is the hottest path in the engine — guard
                 every [asprintf] behind [Trace.enabled]. *)
              if Trace.enabled sim.trace then
                Trace.record sim.trace ~time:(now ()) ~site:self
                  (Trace.Send
                     { dst; msg = Format.asprintf "%a" P.pp_message msg });
              sched_live sim ~time:(now ())
                (Deliver { src = self; dst = self; msg; self_msg = true })
            end
            else begin
              match Network.transmit sim.net ~src:self ~dst ~now:(now ()) with
              | Network.Lost `Down ->
                if Trace.enabled sim.trace then
                  Trace.record sim.trace ~time:(now ()) ~site:self
                    (Trace.Note
                       (Format.asprintf "drop (crashed endpoint) -> %d : %a" dst
                          P.pp_message msg))
              | Network.Lost ((`Partitioned | `Faulty) as reason) ->
                (* The send happened and is charged; the network ate it. *)
                if warmed sim then begin
                  sim.messages <- sim.messages + 1;
                  Stats.Counter.incr sim.counters (P.message_kind msg)
                end;
                Trace.record sim.trace ~time:(now ()) ~site:self
                  (Trace.Drop
                     {
                       dst;
                       reason =
                         (match reason with
                         | `Partitioned -> "partition"
                         | `Faulty -> "loss");
                     })
              | Network.Delivered ats ->
                if warmed sim then begin
                  sim.messages <- sim.messages + 1;
                  Stats.Counter.incr sim.counters (P.message_kind msg)
                end;
                if Trace.enabled sim.trace then
                  Trace.record sim.trace ~time:(now ()) ~site:self
                    (Trace.Send
                       { dst; msg = Format.asprintf "%a" P.pp_message msg });
                List.iteri
                  (fun i at ->
                    if i > 0 then
                      Trace.record sim.trace ~time:(now ()) ~site:self
                        (Trace.Duplicate { dst });
                    sched_live sim ~time:at
                      (Deliver { src = self; dst; msg; self_msg = false }))
                  ats
            end
          in
          let enter_cs () =
            let t = now () in
            if Float.is_nan sim.request_time.(self) then begin
              sim.violations <- sim.violations + 1;
              Trace.record sim.trace ~time:t ~site:self
                (Trace.Note "VIOLATION: CS entry without outstanding request")
            end
            else begin
              if sim.in_cs >= 0 then begin
                sim.violations <- sim.violations + 1;
                Trace.record sim.trace ~time:t ~site:self
                  (Trace.Note
                     (Printf.sprintf "VIOLATION: CS entry while site %d is in CS"
                        sim.in_cs))
              end;
              Trace.record sim.trace ~time:t ~site:self Trace.Enter_cs;
              if warmed sim then begin
                Stats.Summary.add sim.response_time (t -. sim.request_time.(self));
                if sim.had_exit && sim.waiting_at_exit then
                  Stats.Summary.add sim.sync_delay (t -. sim.last_exit)
              end;
              sim.request_time.(self) <- Float.nan;
              sim.outstanding <- sim.outstanding - 1;
              sim.in_cs <- self;
              sched_live sim
                ~time:(t +. sim.cfg.cs_duration)
                (Cs_exit { site = self })
            end
          in
          let set_timer ~delay ~tag =
            sched_live sim
              ~time:(now () +. delay)
              (Timer { site = self; tag })
          in
          let trace_note s =
            Trace.record sim.trace ~time:(now ()) ~site:self (Trace.Note s)
          in
          let trace_event k =
            Trace.record sim.trace ~time:(now ()) ~site:self k
          in
          let mark_parked parked =
            let t = now () in
            if parked then begin
              if Float.is_nan sim.parked_since.(self) then
                sim.parked_since.(self) <- t
            end
            else if not (Float.is_nan sim.parked_since.(self)) then begin
              Stats.Summary.add sim.unavail (t -. sim.parked_since.(self));
              sim.parked_since.(self) <- Float.nan
            end
          in
          {
            Protocol.self;
            n = sim.cfg.n;
            now;
            send;
            enter_cs;
            set_timer;
    rng = site_rngs.(self);
      trace_note;
      trace_event;
      mark_parked;
    }

  (* [ctx_of]/[state_of] below are accessors that instantiate on demand in
     lazy-site mode; in the default eager mode everything already exists. *)

  let issue_request sim ctx_of state_of site =
    sim.request_time.(site) <- Event_queue.now sim.q;
    sim.outstanding <- sim.outstanding + 1;
    Trace.record sim.trace ~time:(Event_queue.now sim.q) ~site Trace.Request;
    P.request_cs (ctx_of site) (state_of site)

  let handle_arrival sim ctx_of state_of site =
    (* Open-loop sources immediately schedule the site's next arrival. *)
    (match sim.cfg.workload with
    | Workload.Poisson _ | Workload.Open_loop _ ->
      (match
         Workload.next_arrival sim.cfg.workload ~site
           ~now:(Event_queue.now sim.q) ~rng:sim.wl_rng
       with
      | Some at when at <= sim.cfg.max_time ->
        sched_live sim ~time:at (Arrival { site })
      | Some _ | None -> ())
    | Workload.Saturated _ | Workload.Think _ | Workload.Burst _ -> ());
    if Network.is_up sim.net site then begin
      if Float.is_nan sim.request_time.(site) && sim.in_cs <> site then
        issue_request sim ctx_of state_of site
      else sim.backlog.(site) <- sim.backlog.(site) + 1
    end

  let handle_cs_exit sim ctx_of state_of site =
    if sim.in_cs = site then sim.in_cs <- -1;
    Trace.record sim.trace ~time:(Event_queue.now sim.q) ~site Trace.Exit_cs;
    sim.executions <- sim.executions + 1;
    if sim.executions > sim.cfg.warmup then
      sim.site_execs.(site) <- sim.site_execs.(site) + 1;
    if sim.executions = sim.cfg.warmup then begin
      sim.warmup_time <- Event_queue.now sim.q;
      sim.messages <- 0;
      (* per-kind counters restart with the measurement window *)
      List.iter
        (fun (k, v) -> Stats.Counter.incr ~by:(-v) sim.counters k)
        (Stats.Counter.bindings sim.counters)
    end;
    sim.had_exit <- true;
    sim.last_exit <- Event_queue.now sim.q;
    sim.waiting_at_exit <- sim.outstanding > 0;
    P.release_cs (ctx_of site) (state_of site);
    if sim.executions >= target sim then sim.stop <- true
    else begin
      (* Application layer: serve the local backlog, or re-request in the
         closed-loop (saturated) workload. *)
      if sim.backlog.(site) > 0 then begin
        sim.backlog.(site) <- sim.backlog.(site) - 1;
        issue_request sim ctx_of state_of site
      end
      else if Workload.is_closed_loop sim.cfg.workload then
        match
          Workload.next_arrival sim.cfg.workload ~site
            ~now:(Event_queue.now sim.q) ~rng:sim.wl_rng
        with
        | Some at -> sched_live sim ~time:at (Arrival { site })
        | None -> ()
    end

  let close_park_window sim site ~at =
    if not (Float.is_nan sim.parked_since.(site)) then begin
      Stats.Summary.add sim.unavail (at -. sim.parked_since.(site));
      sim.parked_since.(site) <- Float.nan
    end

  let handle_crash sim site =
    Network.crash sim.net site;
    Trace.record sim.trace ~time:(Event_queue.now sim.q) ~site Trace.Crash;
    (* In-flight messages to the dead site are lost; its timers and pending
       CS exit die with it. *)
    let dropped =
      Event_queue.drop_if sim.q (function
        | Deliver { dst; _ } -> dst = site
        | Timer { site = s; _ } -> s = site
        | Cs_exit { site = s } -> s = site
        | Arrival _ | Crash_ev _ | Recover_ev _ | Detect _ | Detect_recovery _
        | Heartbeat_tick _ | Heartbeat_arrive _ | Partition_edge _ | Watchdog
          ->
          false)
    in
    sim.live_events <- sim.live_events - dropped;
    if sim.in_cs = site then sim.in_cs <- -1;
    if not (Float.is_nan sim.request_time.(site)) then begin
      sim.request_time.(site) <- Float.nan;
      sim.outstanding <- sim.outstanding - 1
    end;
    close_park_window sim site ~at:(Event_queue.now sim.q);
    sim.backlog.(site) <- 0;
    match sim.cfg.detector with
    | Oracle d ->
      List.iter
        (fun observer ->
          if observer <> site then
            sched_live sim
              ~time:(Event_queue.now sim.q +. d)
              (Detect { observer; failed = site }))
        (Network.up_sites sim.net)
    | Heartbeat _ ->
      (* survivors find out when the site's heartbeats time out *)
      ()

  let run ?trace_sink ?inspect (cfg : config) pcfg =
    if cfg.n <= 0 then invalid_arg "Engine.run: n must be positive";
    if cfg.warmup < 0 || cfg.max_executions <= 0 then
      invalid_arg "Engine.run: bad execution counts";
    if not (cfg.stall_timeout > 0.0) then
      invalid_arg "Engine.run: stall_timeout must be positive";
    (match (cfg.lazy_sites, cfg.detector) with
    | true, Heartbeat _ ->
      (* every site heartbeats every other site — inherently O(N^2) and it
         would instantiate the whole universe anyway *)
      invalid_arg "Engine.run: lazy_sites requires the Oracle detector"
    | _ -> ());
    let master_rng = Rng.create cfg.seed in
    let net_rng = Rng.split master_rng in
    let site_rngs = Array.init cfg.n (fun _ -> Rng.split master_rng) in
    let wl_rng = Rng.split master_rng in
    (* Split last so fault-free components see the exact same streams as
       before faults existed. *)
    let fault_rng = Rng.split master_rng in
    let trace =
      match trace_sink with
      | Some t -> t
      | None -> Trace.create ~enabled:cfg.trace ()
    in
    let hb_cfg = match cfg.detector with Oracle _ -> None | Heartbeat c -> Some c in
    let sim =
      {
        cfg;
        q = Event_queue.create ();
        net =
          Network.create
            ~channels:(if cfg.dense_channels then Network.Dense else Network.Sparse)
            ~faults:cfg.faults ~fault_rng ~n:cfg.n ~delay:cfg.delay
            ~rng:net_rng ();
        trace;
        counters = Stats.Counter.create ();
        sync_delay = Stats.Summary.create ();
        response_time = Stats.Summary.create ();
        unavail = Stats.Summary.create ();
        request_time = Array.make cfg.n Float.nan;
        parked_since = Array.make cfg.n Float.nan;
        backlog = Array.make cfg.n 0;
        site_execs = Array.make cfg.n 0;
        detectors =
          (match hb_cfg with
          | None -> [||]
          | Some c ->
            Array.init cfg.n (fun self ->
                Detector.create c ~n:cfg.n ~self ~now:0.0));
        wl_rng;
        watchdog_armed =
          (match cfg.detector with Heartbeat _ -> true | Oracle _ -> false)
          || cfg.faults <> Network.no_faults;
        outstanding = 0;
        in_cs = -1;
        executions = 0;
        messages = 0;
        detector_msgs = 0;
        suspicions = 0;
        false_suspicions = 0;
        live_events = 0;
        last_progress = 0.0;
        forced_deadlock = false;
        last_exit = 0.0;
        waiting_at_exit = false;
        had_exit = false;
        violations = 0;
        warmup_time = 0.0;
        stop = false;
      }
    in
    let ctxs = Array.make cfg.n None in
    let states = Array.make cfg.n None in
    let ctx_of site =
      match ctxs.(site) with
      | Some c -> c
      | None ->
        let c = make_ctx sim site_rngs site in
        ctxs.(site) <- Some c;
        c
    in
    let state_of site =
      match states.(site) with
      | Some st -> st
      | None ->
        let st = P.init (ctx_of site) pcfg in
        states.(site) <- Some st;
        st
    in
    if not cfg.lazy_sites then begin
      (* Reference order: every context first, then every init (init may
         send messages; context creation never does). *)
      for site = 0 to cfg.n - 1 do
        ignore (ctx_of site)
      done;
      for site = 0 to cfg.n - 1 do
        ignore (state_of site)
      done
    end;
    List.iter
      (fun (time, site) ->
        sched_live sim ~time (Arrival { site }))
      (Workload.initial_arrivals cfg.workload ~n:cfg.n ~rng:sim.wl_rng);
    List.iter
      (fun (time, site) ->
        if site < 0 || site >= cfg.n then invalid_arg "Engine: crash site";
        sched_live sim ~time (Crash_ev { site }))
      cfg.crashes;
    List.iter
      (fun (time, site) ->
        if site < 0 || site >= cfg.n then invalid_arg "Engine: recovery site";
        sched_live sim ~time (Recover_ev { site }))
      cfg.recoveries;
    (match hb_cfg with
    | Some c ->
      (* Stagger first ticks so heartbeats don't fire in lockstep bursts. *)
      for site = 0 to cfg.n - 1 do
        Event_queue.schedule sim.q
          ~time:(c.Detector.period *. (1.0 +. (float_of_int site /. float_of_int cfg.n)))
          (Heartbeat_tick { site })
      done
    | None -> ());
    List.iter
      (fun (time, heal) ->
        if time <= cfg.max_time then
          Event_queue.schedule sim.q ~time (Partition_edge { heal }))
      (Network.partition_edges sim.net);
    if sim.watchdog_armed then
      Event_queue.schedule sim.q ~time:cfg.stall_timeout Watchdog;
    let deliver src dst msg self_msg =
      if Network.is_up sim.net dst then begin
        if (not self_msg) && Trace.enabled sim.trace then
          Trace.record sim.trace
            ~time:(Event_queue.now sim.q)
            ~site:dst
            (Trace.Receive { src; msg = Format.asprintf "%a" P.pp_message msg });
        P.on_message (ctx_of dst) (state_of dst) ~src msg
      end
    in
    let handle_heartbeat_tick site time =
      if Network.is_up sim.net site then begin
        let c = Option.get hb_cfg in
        for dst = 0 to cfg.n - 1 do
          if dst <> site then begin
            sim.detector_msgs <- sim.detector_msgs + 1;
            match Network.transmit sim.net ~src:site ~dst ~now:time with
            | Network.Delivered ats ->
              List.iter
                (fun at ->
                  Event_queue.schedule sim.q ~time:at
                    (Heartbeat_arrive { src = site; dst }))
                ats
            | Network.Lost _ -> ()
          end
        done;
        let newly = Detector.sweep sim.detectors.(site) ~now:time in
        List.iter
          (fun failed ->
            sim.suspicions <- sim.suspicions + 1;
            if Network.is_up sim.net failed then
              sim.false_suspicions <- sim.false_suspicions + 1;
            Trace.record sim.trace ~time ~site (Trace.Suspect failed);
            P.on_failure (ctx_of site) (state_of site) failed)
          newly;
        Event_queue.schedule sim.q
          ~time:(time +. c.Detector.period)
          (Heartbeat_tick { site })
      end
      (* a crashed site's tick chain dies; Recover_ev restarts it *)
    in
    let handle_heartbeat_arrive src dst time =
      if Network.is_up sim.net dst then begin
        let trust = Detector.heartbeat sim.detectors.(dst) ~src ~now:time in
        if trust then begin
          Trace.record sim.trace ~time ~site:dst (Trace.Trust src);
          P.on_recovery (ctx_of dst) (state_of dst) src
        end
      end
    in
    let handle_watchdog time =
      if
        sim.outstanding > 0
        && time -. sim.last_progress >= sim.cfg.stall_timeout
      then begin
        (* No substantive event for a full stall window while requests are
           outstanding: the run is wedged (e.g. permanent partition). *)
        sim.forced_deadlock <- true;
        sim.stop <- true
      end
      else if sim.live_events = 0 && sim.outstanding = 0 then
        (* Only housekeeping remains and nobody wants the CS: quiesce. *)
        sim.stop <- true
      else
        Event_queue.schedule sim.q
          ~time:(time +. sim.cfg.stall_timeout)
          Watchdog
    in
    let processed = ref 0 in
    let rec loop () =
      if (not sim.stop) && Event_queue.now sim.q <= cfg.max_time then
        match Event_queue.next sim.q with
        | None -> ()
        | Some { payload; time; _ } ->
          if time > cfg.max_time then ()
          else begin
            incr processed;
            if not (housekeeping payload) then begin
              sim.live_events <- sim.live_events - 1;
              sim.last_progress <- time
            end;
            (match payload with
            | Deliver { src; dst; msg; self_msg } -> deliver src dst msg self_msg
            | Timer { site; tag } ->
              if Network.is_up sim.net site then begin
                Trace.record sim.trace ~time ~site (Trace.Timer tag);
                P.on_timer (ctx_of site) (state_of site) tag
              end
            | Arrival { site } -> handle_arrival sim ctx_of state_of site
            | Cs_exit { site } -> handle_cs_exit sim ctx_of state_of site
            | Crash_ev { site } -> handle_crash sim site
            | Recover_ev { site } ->
              if not (Network.is_up sim.net site) then begin
                Network.recover sim.net site;
                Trace.record sim.trace ~time ~site Trace.Recover;
                (* fail-stop recovery: the site rejoins with FRESH protocol
                   state (its old volatile state died with it) *)
                states.(site) <- Some (P.init (ctx_of site) pcfg);
                (* Restart its workload source, which died with it. Under the
                   oracle the first arrival waits until every survivor has
                   processed the recovery notification — otherwise its
                   request lands on arbiters that still flag it dead and is
                   dropped. Heartbeat mode needs no guard: trust is earned
                   per observer, and the reliability layer's incarnation
                   numbers revalidate the site on first contact. *)
                let resume =
                  match sim.cfg.detector with
                  | Oracle d -> time +. (2.0 *. d)
                  | Heartbeat _ -> time
                in
                (match
                   Workload.next_arrival sim.cfg.workload ~site ~now:resume
                     ~rng:sim.wl_rng
                 with
                | Some at when at <= cfg.max_time ->
                  sched_live sim
                    ~time:(Float.max at resume)
                    (Arrival { site })
                | Some _ | None -> ());
                match sim.cfg.detector with
                | Oracle d ->
                  List.iter
                    (fun observer ->
                      if observer <> site then
                        sched_live sim
                          ~time:(Event_queue.now sim.q +. d)
                          (Detect_recovery { observer; recovered = site }))
                    (Network.up_sites sim.net)
                | Heartbeat c ->
                  (* fresh detector state; tick chain restarts *)
                  Detector.reset sim.detectors.(site) ~now:time;
                  Event_queue.schedule sim.q
                    ~time:(time +. c.Detector.period)
                    (Heartbeat_tick { site })
              end
            | Detect { observer; failed } ->
              if Network.is_up sim.net observer then
                P.on_failure (ctx_of observer) (state_of observer) failed
            | Detect_recovery { observer; recovered } ->
              if Network.is_up sim.net observer then
                P.on_recovery (ctx_of observer) (state_of observer) recovered
            | Heartbeat_tick { site } -> handle_heartbeat_tick site time
            | Heartbeat_arrive { src; dst } -> handle_heartbeat_arrive src dst time
            | Partition_edge { heal } ->
              Trace.record sim.trace ~time ~site:(-1) (Trace.Partition { heal })
            | Watchdog -> handle_watchdog time);
            loop ()
          end
    in
    loop ();
    ignore (Atomic.fetch_and_add events_total !processed);
    (match cfg.obs with
    | None -> ()
    | Some reg ->
      let module O = Dmx_obs in
      let c name v = O.Metric.Counter.add (O.Registry.counter reg name) v in
      c "engine.events" !processed;
      c "engine.heap.push" (Event_queue.pushes sim.q);
      c "engine.heap.pop" (Event_queue.pops sim.q);
      O.Metric.Gauge.set (O.Registry.gauge reg "engine.heap.peak")
        (max (Event_queue.peak sim.q)
           (O.Metric.Gauge.get (O.Registry.gauge reg "engine.heap.peak")));
      c "engine.executions" (max 0 (sim.executions - cfg.warmup));
      c "engine.messages" sim.messages;
      List.iter
        (fun (k, v) ->
          if v > 0 then
            O.Metric.Counter.add
              (O.Registry.counter reg "engine.messages.kind"
                 ~labels:[ ("kind", k) ])
              v)
        (Stats.Counter.bindings sim.counters));
    (match inspect with
    | Some f ->
      Array.iteri
        (fun site st -> match st with Some st -> f site st | None -> ())
        states
    | None -> ());
    let sim_time = Event_queue.now sim.q in
    for site = 0 to cfg.n - 1 do
      close_park_window sim site ~at:sim_time
    done;
    let deadlocked =
      sim.forced_deadlock
      || (Event_queue.is_empty sim.q && sim.outstanding > 0 && not sim.stop)
    in
    let executions = max 0 (sim.executions - cfg.warmup) in
    let window = sim_time -. sim.warmup_time in
    (* Jain's fairness index over sites that completed at least one CS:
       (sum x)^2 / (n * sum x^2); 1.0 = perfectly even service. *)
    let fairness =
      let xs =
        Array.to_list sim.site_execs
        |> List.filter (fun x -> x > 0)
        |> List.map float_of_int
      in
      match xs with
      | [] -> 1.0
      | xs ->
        let sum = List.fold_left ( +. ) 0.0 xs in
        let sq = List.fold_left (fun a x -> a +. (x *. x)) 0.0 xs in
        sum *. sum /. (float_of_int (List.length xs) *. sq)
    in
    {
      protocol = P.name;
      params = P.describe pcfg;
      n = cfg.n;
      executions;
      total_messages = sim.messages;
      messages_by_kind =
        List.filter (fun (_, v) -> v > 0) (Stats.Counter.bindings sim.counters);
      messages_per_cs =
        (if executions = 0 then 0.0
         else float_of_int sim.messages /. float_of_int executions);
      sync_delay = sim.sync_delay;
      response_time = sim.response_time;
      throughput =
        (if window > 0.0 then float_of_int executions /. window else 0.0);
      sim_time;
      mean_delay = Network.mean_delay cfg.delay;
      violations = sim.violations;
      deadlocked;
      pending_at_end = sim.outstanding;
      per_site_executions = Array.copy sim.site_execs;
      fairness;
      retransmissions = Stats.Counter.get sim.counters "retx";
      acks = Stats.Counter.get sim.counters "ack";
      detector_messages = sim.detector_msgs;
      suspicions = sim.suspicions;
      false_suspicions = sim.false_suspicions;
      unavailability = sim.unavail;
    }
end
