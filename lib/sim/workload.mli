(** Critical-section request arrival processes.

    The paper analyzes two loading regimes: {e light load} (demand is rare,
    requests hardly ever contend) and {e heavy load} (there is always a
    site waiting for the CS). [Poisson] sweeps between them via the arrival
    rate; [Saturated] is the paper's heavy-load regime in its purest form;
    [Burst] issues simultaneous requests, the adversarial case for deadlock
    handling. *)

type t =
  | Poisson of { rate_per_site : float }
      (** Each site independently generates requests with exponential
          inter-arrival times of mean [1 /. rate_per_site]. Arrivals at a
          busy site queue locally (a site executes its CS requests
          sequentially, Section 2). *)
  | Open_loop of { active : int; rate_per_site : float }
      (** Poisson arrivals at the first [active] sites only; the other
          [n - active] sites never request and are never instantiated. This
          is the huge-N workload: memory follows the active set, so the
          asymptotics sweeps run the same offered load against universes of
          10⁶ sites. *)
  | Saturated of { contenders : int }
      (** The first [contenders] sites re-request immediately after each
          release: the system never idles. *)
  | Think of { contenders : int; mean_think : float }
      (** Closed-loop interactive population: the first [contenders] sites
          cycle request [->] CS [->] exponential think time of mean
          [mean_think] [->] request again. This is the client-swarm model
          (each site stands for one client of the lock service); between
          [Saturated] (think [->] 0) and light load (think [->] inf) it
          sweeps the classic machine-repairman curve. *)
  | Burst of { requesters : int list; at : float }
      (** Each listed site issues exactly one request at time [at]. *)

val max_eager_sites : int
(** Workloads that touch every site up front ([Poisson], and [Saturated]
    with that many contenders) are refused above this universe size —
    they would materialize all N sites and defeat the lazy machinery. *)

val pp : Format.formatter -> t -> unit

val initial_arrivals : t -> n:int -> rng:Rng.t -> (float * int) list
(** Arrival events to prime the event queue with: (time, site) pairs. *)

val next_arrival : t -> site:int -> now:float -> rng:Rng.t -> float option
(** Time of the site's next arrival after one fires ([Poisson]) or after a
    release completes ([Saturated]); [None] when the source is exhausted
    ([Burst]). *)

val is_closed_loop : t -> bool
(** True when new arrivals are triggered by releases (Saturated) rather
    than by elapsed time (Poisson). *)
