module Summary = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float; (* Welford's online sum of squared deviations *)
    mutable min : float;
    mutable max : float;
    mutable samples : float array;
    mutable n_samples : int;
    mutable sorted : bool;
  }

  let create () =
    {
      count = 0;
      mean = 0.0;
      m2 = 0.0;
      min = infinity;
      max = neg_infinity;
      samples = [||];
      n_samples = 0;
      sorted = true;
    }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    if t.n_samples = Array.length t.samples then begin
      let cap = if t.n_samples = 0 then 64 else 2 * t.n_samples in
      let bigger = Array.make cap 0.0 in
      Array.blit t.samples 0 bigger 0 t.n_samples;
      t.samples <- bigger
    end;
    t.samples.(t.n_samples) <- x;
    t.n_samples <- t.n_samples + 1;
    t.sorted <- false

  let count t = t.count
  let mean t = if t.count = 0 then 0.0 else t.mean
  let total t = if t.count = 0 then 0.0 else t.mean *. float_of_int t.count

  let variance t =
    if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)

  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max

  let ensure_sorted t =
    if not t.sorted then begin
      let live = Array.sub t.samples 0 t.n_samples in
      Array.sort Float.compare live;
      Array.blit live 0 t.samples 0 t.n_samples;
      t.sorted <- true
    end

  (* Rank selection is shared with the lib/obs histogram readout
     (Dmx_obs.Quantile), so "p99" means the same thing whether it is read
     exactly here or at bucket resolution from a metrics snapshot. *)
  let percentile t p =
    if t.n_samples = 0 then 0.0
    else begin
      if p < 0.0 || p > 100.0 then invalid_arg "Summary.percentile";
      ensure_sorted t;
      Dmx_obs.Quantile.percentile_sorted t.samples t.n_samples p
    end

  let pp ppf t =
    if t.count = 0 then Format.fprintf ppf "n=0"
    else
      Format.fprintf ppf "n=%d mean=%.4f sd=%.4f min=%.4f p50=%.4f p99=%.4f max=%.4f"
        t.count (mean t) (stddev t) t.min (percentile t 50.0)
        (percentile t 99.0) t.max
end

module Counter = struct
  type t = (string, int ref) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let incr ?(by = 1) t key =
    match Hashtbl.find_opt t key with
    | Some r -> r := !r + by
    | None -> Hashtbl.add t key (ref by)

  let get t key = match Hashtbl.find_opt t key with Some r -> !r | None -> 0
  let total t = Hashtbl.fold (fun _ r acc -> acc + !r) t 0

  let bindings t =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let pp ppf t =
    let pp_one ppf (k, v) = Format.fprintf ppf "%s=%d" k v in
    Format.fprintf ppf "@[<h>%a@]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ") pp_one)
      (bindings t)
end
