(** Protocol interface between the simulation engine and a distributed
    mutual exclusion algorithm.

    A protocol is a per-site state machine driven by four stimuli: an
    application request for the CS, message delivery, timer expiry, and
    failure-detector notifications. The engine owns time, the network and
    the CS itself; the protocol signals readiness through [ctx.enter_cs]
    and is told to relinquish through [release_cs] when the application
    leaves the CS. *)

type site_id = int

(** Capabilities the engine hands to every protocol callback. A context is
    bound to one site; [send] routes through the simulated network (messages
    to self are delivered locally at the current instant and are not counted
    as network messages, matching the paper's (K-1) message counts). *)
type 'msg ctx = {
  self : site_id;
  n : int;  (** number of sites in the system *)
  now : unit -> float;
  send : dst:site_id -> 'msg -> unit;
  enter_cs : unit -> unit;
      (** The protocol has collected all permissions; the engine checks the
          mutual exclusion invariant and starts the CS. *)
  set_timer : delay:float -> tag:int -> unit;
  rng : Rng.t;  (** per-site deterministic stream *)
  trace_note : string -> unit;
  trace_event : Trace.kind -> unit;
      (** Structured trace hook for the semantic permission events
          ({!Trace.Acquire}, {!Trace.Cede}, ...) the post-hoc {!Oracle}
          checks. A no-op outside the tracing engine; protocols call it
          unconditionally. *)
  mark_parked : bool -> unit;
      (** Graceful-degradation accounting: [mark_parked true] tells the
          engine this site's outstanding request cannot currently make
          progress (no live quorum); [mark_parked false] ends the window.
          The engine aggregates the windows as unavailability time. *)
}

module type PROTOCOL = sig
  type config
  (** Static per-run parameters (e.g. the coterie), shared by all sites. *)

  type state
  (** Per-site protocol state. *)

  type message

  val name : string
  val describe : config -> string

  val message_kind : message -> string
  (** Coarse message class for per-kind counting ("request", "reply", ...).
      Piggybacked combinations count as one message of a combined kind, as
      in the paper's analysis. *)

  val pp_message : Format.formatter -> message -> unit

  val init : message ctx -> config -> state

  val on_message : message ctx -> state -> src:site_id -> message -> unit

  val request_cs : message ctx -> state -> unit
  (** The application at this site wants the CS. The engine guarantees the
      site has no outstanding request and is not in the CS. *)

  val release_cs : message ctx -> state -> unit
  (** The application finished its CS execution (paper step C). *)

  val on_timer : message ctx -> state -> int -> unit

  val on_failure : message ctx -> state -> site_id -> unit
  (** The failure detector reports that a site crashed. Non-fault-tolerant
      protocols may ignore this. *)

  val on_recovery : message ctx -> state -> site_id -> unit
  (** The failure detector reports that a crashed site rejoined with a
      fresh state (fail-stop recovery). Non-fault-tolerant protocols may
      ignore this. *)
end
