type 'a event = { time : float; seq : int; payload : 'a }

type 'a t = {
  heap : 'a event Heap.t;
  mutable next_seq : int;
  mutable clock : float;
  mutable pops : int;
  mutable peak : int;  (* high-water heap length, for the obs registry *)
}

let compare_events a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () =
  {
    heap = Heap.create ~cmp:compare_events ();
    next_seq = 0;
    clock = 0.0;
    pops = 0;
    peak = 0;
  }

let schedule t ~time payload =
  if not (Float.is_finite time) then
    invalid_arg "Event_queue.schedule: non-finite time";
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Event_queue.schedule: time %g is before now %g" time
         t.clock);
  Heap.add t.heap { time; seq = t.next_seq; payload };
  t.next_seq <- t.next_seq + 1;
  let len = Heap.length t.heap in
  if len > t.peak then t.peak <- len

let next t =
  match Heap.pop t.heap with
  | None -> None
  | Some ev ->
    t.clock <- ev.time;
    t.pops <- t.pops + 1;
    Some ev

let peek_time t = Option.map (fun ev -> ev.time) (Heap.peek t.heap)
let is_empty t = Heap.is_empty t.heap
let length t = Heap.length t.heap
let now t = t.clock
let pushes t = t.next_seq
let pops t = t.pops
let peak t = t.peak
let drop_if t p =
  let before = Heap.length t.heap in
  Heap.filter_in_place t.heap (fun ev -> not (p ev.payload));
  before - Heap.length t.heap
