type t = { sn : int; site : int }

let compare a b =
  let c = Int.compare a.sn b.sn in
  if c <> 0 then c else Int.compare a.site b.site

let ( < ) a b = compare a b < 0
let ( > ) a b = compare a b > 0
let equal a b = compare a b = 0
let infinity = { sn = max_int; site = max_int }
let is_infinity t = equal t infinity

let pp ppf t =
  if is_infinity t then Format.pp_print_string ppf "(max,max)"
  else Format.fprintf ppf "(%d,%d)" t.sn t.site

module Clock = struct
  type ts = t
  type t = { mutable counter : int }

  let create () = { counter = 0 }
  let copy t = { counter = t.counter }

  let next t ~site =
    t.counter <- t.counter + 1;
    { sn = t.counter; site }

  let observe t (ts : ts) =
    if (not (is_infinity ts)) && Stdlib.( > ) ts.sn t.counter then
      t.counter <- ts.sn

  let current t = t.counter
end
