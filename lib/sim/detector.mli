(** Heartbeat/timeout failure detector.

    Each site periodically sends heartbeats to every other site and suspects
    a peer it has not heard from within [timeout]. Unlike the fail-stop
    oracle of [Engine.Oracle], this detector is {e unreliable}: message loss,
    partitions, and delay spikes can produce false suspicions, and a later
    heartbeat revokes them (a suspect/trust transition, in the terminology
    of Chandra–Toueg style eventually-perfect detectors).

    The module only tracks timing state; the engine owns heartbeat
    transmission and delivers suspicion/trust transitions to protocols as
    [on_failure] / [on_recovery] callbacks. *)

type config = { period : float; timeout : float }

val default : config
(** period = 2.0, timeout = 10.0 — conservative for the default
    uniform(0.5, 1.5) delay model. *)

val pp_config : Format.formatter -> config -> unit

type t

val create : config -> n:int -> self:int -> now:float -> t
(** A detector at site [self] observing [n] sites; all peers start trusted
    with [last_heard = now].
    @raise Invalid_argument unless [0 < period < timeout]. *)

val heartbeat : t -> src:int -> now:float -> bool
(** Record a heartbeat (or any message) from [src]. Returns [true] when this
    revokes a standing suspicion — a trust transition. *)

val sweep : t -> now:float -> int list
(** Check every peer's deadline; newly suspected sites, in ascending
    order. Already-suspected peers are not re-reported. *)

val reset : t -> now:float -> unit
(** Forget everything (used when the observing site restarts): all peers
    trusted, deadlines restarted at [now]. *)

val suspected : t -> int -> bool
val suspects : t -> int list
