(* xoshiro256++ (Blackman & Vigna) seeded via splitmix64. Both algorithms
   are implemented verbatim from the reference C sources; all arithmetic is
   on int64 with wraparound, which OCaml's Int64 provides natively. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let int64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  (* Seed a fresh splitmix64 chain from the parent's next output; this is the
     standard technique for deriving statistically independent streams. *)
  let state = ref (int64 t) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's native positive int range; the
     modulo bias is < 2^-40 for every bound used in this repo. *)
  let x = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  x mod bound

let float t bound =
  (* 53 random mantissa bits, scaled. *)
  let x = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  x /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L
let uniform t ~lo ~hi = lo +. float t (hi -. lo)

let exponential t ~mean =
  let u = float t 1.0 in
  (* u = 0 would give infinity; nudge it into (0,1]. *)
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
