(** Post-hoc trace oracle: global invariants of a completed run.

    The engine checks mutual exclusion online; everything else the paper
    claims is a {e whole-trace} property. This module replays a run's
    {!Trace} stream and validates:

    - {e mutex}: no two CS tenures overlap (Enter/Exit/Crash pairing);
    - {e quorum consistency}: every instrumented CS entry holds the
      permission of {e each} member of the quorum the site adopted for that
      request ([Adopt_quorum]/[Acquire]/[Cede]/[Forward] custody events),
      and all concurrently adopted quorums pairwise intersect (the coterie
      property, preserved across fault-tolerant quorum rebuilds);
    - {e permission conservation}: an arbiter's permission is held by at
      most one live site at a time — no loss or duplication across
      grant/transfer chains ([Grant] while held, [Acquire] while held by
      another, [Forward] without possession are violations; a crash voids
      the dead site's possessions);
    - {e per-channel FIFO}: receives on each (src, dst) channel appear in
      send order, allowing the gaps (loss, crashed endpoints) and adjacent
      stutters (duplication) fault injection produces;
    - {e timestamp-order fairness} (optional): no pending request is
      overtaken by younger requests more than [max_overtake] times;
    - {e message bounds} (optional): total traced messages per CS execution
      stay under [bound_per_cs] — e.g. the paper's 3(K-1) at light load.

    Uninstrumented protocols (no custody events in the trace) degrade
    gracefully: custody and quorum checks are vacuous, mutex/FIFO/fairness
    still apply. A truncated trace proves nothing; the oracle refuses to
    pass it (see {!ok}). *)

type config = {
  n : int;
  fifo : bool;
      (** enable the per-channel FIFO check. Disable on runs with crashes
          or duplication: a recovered site's reliability layer restarts its
          sequence numbers, so textually identical messages recur across
          epochs, and duplicated copies take independent delays — neither
          is an ordering bug the checker can tell apart from one. *)
  custody : bool;
      (** enable the permission-conservation (and per-entry quorum
          coverage) checks. Disable on runs with crashes: the oracle's
          fail-stop model voids a dead site's possessions, but the engine
          recovers sites with their volatile state intact, so post-recovery
          transfers would be flagged spuriously. Coterie intersection stays
          active either way. *)
  max_overtake : int option;
      (** fairness bound; [None] disables (mandatory under faults, where
          parked minority-partition requests are overtaken unboundedly) *)
  bound_per_cs : float option;
      (** messages-per-CS ceiling; [None] disables (only meaningful on
          fault-free runs — retransmissions are not the protocol's cost) *)
}

val default : n:int -> config
(** FIFO and custody on, fairness and bounds off. *)

type violation = { time : float; site : int; what : string }
(** One invariant breach: when, at which site, and a human-readable
    description of what went wrong. *)

type verdict = {
  violations : violation list;  (** chronological; empty = clean *)
  entries_checked : int;
  cs_entries : int;  (** completed CS executions observed *)
  messages : int;  (** network (non-self) sends observed *)
  truncated : bool;  (** input trace was incomplete; nothing was checked *)
}

val ok : verdict -> bool
(** No violations {e and} the trace was complete. *)

val pp_violation : Format.formatter -> violation -> unit
(** One-line rendering: time, site, description. *)

val pp_verdict : Format.formatter -> verdict -> unit
(** Summary line plus one {!pp_violation} line per breach. *)

val check : config -> Trace.entry list -> truncated:bool -> verdict
(** Validate a chronological entry list against every enabled invariant.
    Pass [~truncated:true] when the collector dropped entries — the
    verdict is then marked {!verdict.truncated} and {!ok} rejects it,
    since absence of violations in a partial trace proves nothing. *)

val check_trace : config -> Trace.t -> verdict
(** [check] on the collector's entries, honoring its truncation flag. *)

type load = Light | Heavy

val expected_bound : algo:string -> n:int -> k:int -> load -> float option
(** Tolerant messages-per-CS upper bound for a fault-free run of the named
    algorithm: the paper's count (3(K-1) light / 5-6(K-1) heavy for the
    quorum protocols, 3(N-1) Lamport, 2(N-1) Ricart-Agrawala, N token
    broadcast, O(log N) Raymond) plus slack for transients and deadlock-
    resolution traffic. [None] when the algorithm has no table entry. *)

val fairness_bound : algo:string -> n:int -> int option
(** Overtake budget for {!config.max_overtake} on fault-free runs. *)

val replay_file : string -> (Schedule.t, string) result
(** Parse a [.dmxrepro] reproducer (alias of {!Schedule.of_file}); the CLI
    [replay] command re-executes it. *)
