(* Deterministic domain fan-out: fixed job list, results keyed by index.

   The design invariant is that callers can never observe scheduling.
   Workers race only on [next] (an atomic ticket counter) and each
   writes a distinct slot of [results]; [Domain.join] publishes those
   writes to the caller, so no other synchronization is needed. *)

let default_jobs () = max 1 (min 8 (Domain.recommended_domain_count ()))

let run ?jobs count f =
  let jobs = match jobs with None -> default_jobs () | Some j -> max 1 j in
  let workers = min jobs count in
  if workers <= 1 then Array.init count f
  else begin
    let results = Array.make count None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < count then begin
          let r =
            match f i with
            | v -> Ok v
            | exception e -> Error (e, Printexc.get_raw_backtrace ())
          in
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    (* The calling domain is worker zero; spawn the rest. *)
    let domains = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    (* Re-raise the lowest-index failure: identical to what a
       sequential left-to-right run would have reported first. *)
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | _ -> ())
      results;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error _) | None -> assert false)
      results
  end

let map ?jobs f xs =
  let arr = Array.of_list xs in
  Array.to_list (run ?jobs (Array.length arr) (fun i -> f arr.(i)))

let concat_map ?jobs f xs = List.concat (map ?jobs f xs)
