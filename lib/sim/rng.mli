(** Deterministic pseudo-random number generation.

    A from-scratch implementation of the xoshiro256++ generator seeded
    through splitmix64. Simulations must be bit-reproducible across runs,
    machines and OCaml releases, so we do not rely on [Stdlib.Random]
    (whose algorithm changed between OCaml versions). Each simulated site
    gets its own independent stream derived from the master seed, so adding
    randomness consumption at one site never perturbs another site's
    stream. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. Equal seeds yield
    identical streams. *)

val split : t -> t
(** [split t] derives a new generator whose future output is independent of
    [t]'s. Used to give each site and each workload source its own stream. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean (inverse-CDF method). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)
