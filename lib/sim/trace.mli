(** Structured execution traces.

    When enabled, the engine records one entry per simulation action
    (message send/receive, CS entry/exit, timer, crash). Traces are the main
    debugging aid for protocol state machines and are also consumed by tests
    that assert ordering properties (e.g. "no reply is ever forwarded after
    the arbiter re-granted the lock"). Disabled collectors cost one branch
    per record call. *)

type kind =
  | Send of { dst : int; msg : string }
  | Receive of { src : int; msg : string }
  | Enter_cs
  | Exit_cs
  | Timer of int
  | Crash
  | Recover
  | Drop of { dst : int; reason : string }
      (** a message the fault plan lost; [site] is the sender *)
  | Duplicate of { dst : int }
      (** an extra copy the fault plan injected; [site] is the sender *)
  | Partition of { heal : bool }  (** recorded with [site = -1] *)
  | Suspect of int  (** [site]'s detector started suspecting the argument *)
  | Trust of int  (** [site]'s detector revoked a suspicion *)
  | Note of string
  | Request
      (** the application issued a CS request at [site] (engine-recorded) *)
  | Adopt_quorum of int list
      (** [site] will contact this quorum for its current/next requests;
          re-recorded on every request and after an FT quorum rebuild *)
  | Acquire of { arbiter : int }
      (** [site] took possession of [arbiter]'s permission (a wanted reply) *)
  | Cede of { arbiter : int }
      (** [site] gave [arbiter]'s permission back (yield or plain release) *)
  | Forward of { arbiter : int; to_ : int }
      (** [site] handed [arbiter]'s permission directly to [to_] on exit
          (the delay-optimal transfer) *)
  | Grant of { to_ : int }
      (** arbiter [site] granted its own permission to [to_] *)

type entry = { time : float; site : int; kind : kind }

type t

val create : ?enabled:bool -> ?capacity:int -> unit -> t
(** [capacity] bounds memory: older entries are discarded once exceeded
    (default 1_000_000). *)

val enabled : t -> bool
val record : t -> time:float -> site:int -> kind -> unit
val entries : t -> entry list
(** Chronological order. *)

val length : t -> int

val truncated : t -> bool
(** True once capacity trimming has discarded entries: the stream is no
    longer a complete record of the run, so whole-run analyses (e.g. the
    {!Oracle}) must not draw conclusions from it. *)

val clear : t -> unit
val pp_entry : Format.formatter -> entry -> unit
val dump : Format.formatter -> t -> unit

val timeline : ?width:int -> t -> n:int -> string
(** ASCII swimlane view of the CS schedule: one row per site, time
    discretized into [width] columns; ['#'] marks the site inside the CS,
    ['X'] marks it crashed, ['.'] idle/waiting. Useful for eyeballing
    handoffs and failover gaps:

    {v
    t: 0.0 .. 41.3
    site  0 |..##....##....X
    site  1 |.....##.....##.
    v} *)
