type t =
  | Poisson of { rate_per_site : float }
  | Open_loop of { active : int; rate_per_site : float }
  | Saturated of { contenders : int }
  | Think of { contenders : int; mean_think : float }
  | Burst of { requesters : int list; at : float }

(* Ceiling on workloads that instantiate an arrival per site up front
   ([Poisson]) or re-request from every site ([Saturated] with contenders =
   n). At huge N these would defeat the point of lazy sites and sparse
   channels: use [Open_loop] (or explicit small contender counts) there. *)
let max_eager_sites = 65_536

let pp ppf = function
  | Poisson { rate_per_site } ->
    Format.fprintf ppf "poisson(rate=%g/site)" rate_per_site
  | Open_loop { active; rate_per_site } ->
    Format.fprintf ppf "open-loop(%d active, rate=%g/site)" active
      rate_per_site
  | Saturated { contenders } -> Format.fprintf ppf "saturated(%d)" contenders
  | Think { contenders; mean_think } ->
    Format.fprintf ppf "think(%d clients, mean=%g)" contenders mean_think
  | Burst { requesters; at } ->
    Format.fprintf ppf "burst(%d sites at t=%g)" (List.length requesters) at

let initial_arrivals t ~n ~rng =
  match t with
  | Poisson { rate_per_site } ->
    if rate_per_site <= 0.0 then invalid_arg "Workload: rate must be positive";
    if n > max_eager_sites then
      invalid_arg
        (Printf.sprintf
           "Workload: poisson would instantiate an arrival at every one of \
            %d sites; use open-loop(active,rate) above %d sites" n
           max_eager_sites);
    List.init n (fun site ->
        (Rng.exponential rng ~mean:(1.0 /. rate_per_site), site))
  | Open_loop { active; rate_per_site } ->
    if rate_per_site <= 0.0 then invalid_arg "Workload: rate must be positive";
    if active <= 0 || active > n then
      invalid_arg "Workload: active sites out of range";
    List.init active (fun site ->
        (Rng.exponential rng ~mean:(1.0 /. rate_per_site), site))
  | Saturated { contenders } ->
    if contenders <= 0 || contenders > n then
      invalid_arg "Workload: contenders out of range";
    if contenders > max_eager_sites then
      invalid_arg
        (Printf.sprintf
           "Workload: saturated would keep %d sites re-requesting forever; \
            cap contenders at %d and leave the rest of the universe passive"
           contenders max_eager_sites);
    List.init contenders (fun site -> (0.0, site))
  | Think { contenders; mean_think } ->
    if mean_think <= 0.0 then invalid_arg "Workload: think time must be positive";
    if contenders <= 0 || contenders > n then
      invalid_arg "Workload: contenders out of range";
    if contenders > max_eager_sites then
      invalid_arg
        (Printf.sprintf
           "Workload: think would keep %d sites cycling forever; cap \
            contenders at %d and leave the rest of the universe passive"
           contenders max_eager_sites);
    List.init contenders (fun site ->
        (Rng.exponential rng ~mean:mean_think, site))
  | Burst { requesters; at } ->
    List.iter
      (fun s ->
        if s < 0 || s >= n then invalid_arg "Workload: burst site out of range")
      requesters;
    List.map (fun site -> (at, site)) requesters

let next_arrival t ~site ~now ~rng =
  match t with
  | Poisson { rate_per_site } | Open_loop { rate_per_site; _ } ->
    Some (now +. Rng.exponential rng ~mean:(1.0 /. rate_per_site))
  | Saturated { contenders } -> if site < contenders then Some now else None
  | Think { contenders; mean_think } ->
    if site < contenders then Some (now +. Rng.exponential rng ~mean:mean_think)
    else None
  | Burst _ -> None

let is_closed_loop = function
  | Saturated _ | Think _ -> true
  | Poisson _ | Open_loop _ | Burst _ -> false
