type t =
  | Poisson of { rate_per_site : float }
  | Saturated of { contenders : int }
  | Burst of { requesters : int list; at : float }

let pp ppf = function
  | Poisson { rate_per_site } ->
    Format.fprintf ppf "poisson(rate=%g/site)" rate_per_site
  | Saturated { contenders } -> Format.fprintf ppf "saturated(%d)" contenders
  | Burst { requesters; at } ->
    Format.fprintf ppf "burst(%d sites at t=%g)" (List.length requesters) at

let initial_arrivals t ~n ~rng =
  match t with
  | Poisson { rate_per_site } ->
    if rate_per_site <= 0.0 then invalid_arg "Workload: rate must be positive";
    List.init n (fun site ->
        (Rng.exponential rng ~mean:(1.0 /. rate_per_site), site))
  | Saturated { contenders } ->
    if contenders <= 0 || contenders > n then
      invalid_arg "Workload: contenders out of range";
    List.init contenders (fun site -> (0.0, site))
  | Burst { requesters; at } ->
    List.iter
      (fun s ->
        if s < 0 || s >= n then invalid_arg "Workload: burst site out of range")
      requesters;
    List.map (fun site -> (at, site)) requesters

let next_arrival t ~site ~now ~rng =
  match t with
  | Poisson { rate_per_site } ->
    Some (now +. Rng.exponential rng ~mean:(1.0 /. rate_per_site))
  | Saturated { contenders } -> if site < contenders then Some now else None
  | Burst _ -> None

let is_closed_loop = function
  | Saturated _ -> true
  | Poisson _ | Burst _ -> false
