(** Statistics collection: running moments, percentile samples, counters.

    Used by the engine to report messages per CS execution, synchronization
    delay, response time, waiting time and throughput — the quantities the
    paper's Section 5 analysis derives in closed form. *)

(** {1 Running summary of a stream of observations} *)

module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0.0 when empty. *)

  val total : t -> float
  (** Sum of all observations; 0.0 when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; 0.0 with fewer than two observations. *)

  val stddev : t -> float
  val min : t -> float
  (** +inf when empty. *)

  val max : t -> float
  (** -inf when empty. *)

  val percentile : t -> float -> float
  (** [percentile t p] with [p] in [0,100], nearest-rank over all retained
      observations. The summary retains every observation (simulations here
      produce at most a few hundred thousand), so this is exact. 0.0 when
      empty. *)

  val pp : Format.formatter -> t -> unit
end

(** {1 String-keyed counters} *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : ?by:int -> t -> string -> unit
  val get : t -> string -> int
  val total : t -> int
  val bindings : t -> (string * int) list
  (** Sorted by key. *)

  val pp : Format.formatter -> t -> unit
end
