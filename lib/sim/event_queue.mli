(** Time-ordered event queue for the discrete-event simulator.

    Events are ordered by (time, insertion sequence number): simultaneous
    events fire in insertion order, which makes every simulation run fully
    deterministic for a given seed regardless of floating-point tie
    patterns. *)

type 'a t

type 'a event = { time : float; seq : int; payload : 'a }

val create : unit -> 'a t

val schedule : 'a t -> time:float -> 'a -> unit
(** Enqueue a payload to fire at [time]. [time] must be finite and not less
    than the last popped time (no scheduling into the past).
    @raise Invalid_argument otherwise. *)

val next : 'a t -> 'a event option
(** Remove and return the earliest event. *)

val peek_time : 'a t -> float option
(** Firing time of the earliest pending event. *)

val is_empty : 'a t -> bool
val length : 'a t -> int

val now : 'a t -> float
(** Time of the last popped event, 0.0 initially. *)

val pushes : 'a t -> int
(** Total events ever scheduled. *)

val pops : 'a t -> int
(** Total events ever popped via {!next}. *)

val peak : 'a t -> int
(** High-water heap length — the engine flushes these three into its
    metrics registry ([engine.heap.*]) at the end of a run. *)

val drop_if : 'a t -> ('a -> bool) -> int
(** Remove pending events whose payload satisfies the predicate (used for
    crash injection: dropping in-flight messages to a dead site). Returns
    how many events were dropped. *)
