(** Exhaustive schedule exploration for small configurations.

    The simulation engine samples one schedule per seed; this module
    explores {e every} reachable interleaving of message deliveries and CS
    exits (respecting per-channel FIFO order) for a bounded scenario —
    each listed site issues exactly one CS request — and checks:

    - {e safety}: no state has two sites in the CS;
    - {e liveness}: every terminal state (no messages in flight, CS free)
      has served all requesters;

    i.e. a small-scope model check of the protocol, complementing the
    randomized property tests. State explosion is tamed by memoizing
    visited global states (protocol states are pure data, so structural
    hashing works); a [max_states] bound guards runaway exploration.

    Protocols must provide a deep-copy (executions branch), must not use
    timers, and must be deterministic (the per-site RNG is fixed). *)

module type CHECKABLE = sig
  include Protocol.PROTOCOL

  val copy_state : state -> state
end

type outcome = {
  states_explored : int;
  distinct_states : int;
  violations : int;  (** schedules reaching a double-entry (must be 0) *)
  stuck_states : int;
      (** terminal states with unserved requesters (deadlocks; must be 0) *)
  completed_schedules : int;  (** terminal states where everyone was served *)
  truncated : bool;  (** hit [max_states] before exhausting the space *)
}

val pp_outcome : Format.formatter -> outcome -> unit

val clean : outcome -> bool
(** A pass with teeth: no violations, no stuck states, at least one
    completed schedule, {e and} the space was exhausted. A truncated
    exploration proves nothing about the unexplored schedules, so it is
    never a clean pass — callers must report it distinctly. *)

module Make (P : CHECKABLE) : sig
  val explore :
    ?max_states:int ->
    ?staggered:bool ->
    ?max_losses:int ->
    n:int ->
    requesters:int list ->
    P.config ->
    outcome
  (** [explore ~n ~requesters config]: all requesters issue their single
      request before any message is delivered (the paper's worst case —
      simultaneous requests), then every delivery/exit interleaving is
      explored. With [staggered:true] the request issuances themselves
      become explorable actions, additionally covering every late-arrival
      schedule (a strictly larger space). With [max_losses > 0] (default 0)
      the adversary may additionally {e drop} up to that many channel-head
      messages anywhere in the schedule: safety must survive every bounded
      loss pattern, though lossy schedules naturally count as stuck rather
      than completed (a protocol without retransmission cannot be live
      under loss). Default [max_states] is 2_000_000. *)
end
