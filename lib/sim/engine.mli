(** Discrete-event simulation engine.

    [Make (P)] runs protocol [P] over the Section-2 system model and
    measures what the paper's Section 5 derives analytically:

    - {e messages per CS execution}, total and by message kind;
    - {e synchronization delay}: time between a CS exit and the next CS
      entry, recorded only for contended handoffs (some site was already
      waiting when the exit happened) — exactly the paper's definition;
    - {e response time}: request issue to CS entry;
    - {e throughput}: CS executions per unit of simulated time.

    The engine also {e checks} mutual exclusion on every entry and flags
    deadlock (event queue drained while requests are outstanding, or no
    substantive event for a whole [stall_timeout] while requests are
    outstanding), so every simulation doubles as a safety/liveness test.

    Failure detection comes in two flavours: the fail-stop {!Oracle} of the
    paper's Section 6 (every survivor reliably learns of a crash after a
    fixed latency) and an unreliable {!Heartbeat} detector built from
    periodic heartbeats over the same faulty network as the protocol's own
    messages — so loss, partitions, and delay spikes can produce {e false}
    suspicions, delivered to the protocol through the same
    [on_failure]/[on_recovery] callbacks. *)

type detector =
  | Oracle of float
      (** fail-stop oracle: every surviving site learns of a crash this
          long after it happens (and of a recovery likewise) *)
  | Heartbeat of Detector.config
      (** per-site heartbeat/timeout detectors; see {!Detector} *)

type config = {
  n : int;  (** number of sites *)
  seed : int;
  delay : Network.delay_model;  (** message delay; its mean is the paper's T *)
  cs_duration : float;  (** CS execution time E *)
  workload : Workload.t;
  max_executions : int;  (** stop after this many completed CS executions *)
  max_time : float;  (** hard stop on simulated time *)
  warmup : int;
      (** executions excluded from all statistics (steady-state measurement
          under heavy load) *)
  crashes : (float * int) list;  (** (time, site) fail-stop injections *)
  recoveries : (float * int) list;
      (** (time, site) rejoin injections: the site comes back with fresh
          protocol state *)
  detector : detector;
  faults : Network.fault_plan;  (** injected message loss/duplication/... *)
  stall_timeout : float;
      (** watchdog horizon, armed only when faults are injected or the
          heartbeat detector runs (otherwise queue exhaustion detects
          deadlock as before): a run with outstanding requests but no
          substantive event for this long is declared deadlocked; a run
          with nothing outstanding and nothing substantive pending stops
          cleanly *)
  trace : bool;  (** record a full event trace *)
  lazy_sites : bool;
      (** instantiate a site's context and protocol state only when an event
          first touches it — the huge-N mode. Requires the [Oracle] detector
          (heartbeats would touch all N sites) and a workload whose active
          set is small. Off, every site is built up front in the reference
          order, so existing seeds reproduce bit-identically. *)
  dense_channels : bool;
      (** force the O(N²) per-channel watermark matrix instead of the sparse
          hashtable. Same observable behavior either way (see {!Network});
          kept as a cross-check knob for the fingerprint tests. Refused
          above n = 16384. *)
  obs : Dmx_obs.Registry.t option;
      (** metrics registry the run flushes into when the run ends:
          [engine.events], [engine.heap.push]/[pop]/[peak],
          [engine.executions], [engine.messages] and the per-kind
          [engine.messages.kind{kind=...}] family. Flushing happens under
          virtual time, so a seeded run's registry snapshot is
          bit-reproducible (see docs/observability.md). [None] (the
          default) records nothing and costs nothing. *)
}

val default : n:int -> config
(** Constant delay 1.0 (so times are in units of T), E = 0.5, saturated
    workload with all sites contending, 200 executions, 20 warmup,
    seed 42, oracle detector with latency 1.0, no crashes, no faults,
    stall_timeout 2000. *)

type report = {
  protocol : string;
  params : string;
  n : int;
  executions : int;  (** completed CS executions after warmup *)
  total_messages : int;  (** sent after warmup, self-messages excluded *)
  messages_by_kind : (string * int) list;
  messages_per_cs : float;
  sync_delay : Stats.Summary.t;
  response_time : Stats.Summary.t;
  throughput : float;
  sim_time : float;  (** simulated time at stop *)
  mean_delay : float;  (** the model's T, for normalizing *)
  violations : int;  (** mutual exclusion violations observed (must be 0) *)
  deadlocked : bool;
  pending_at_end : int;  (** requests never granted (0 unless deadlocked/crashed) *)
  per_site_executions : int array;  (** post-warmup CS completions per site *)
  fairness : float;
      (** Jain's index over sites that entered at least once: 1.0 = every
          such site was served equally often — the quantified form of the
          paper's starvation-freedom theorem *)
  retransmissions : int;
      (** post-warmup "retx" messages (reliability-layer re-sends) *)
  acks : int;  (** post-warmup "ack" messages *)
  detector_messages : int;  (** heartbeats sent over the whole run *)
  suspicions : int;  (** suspect transitions across all detectors *)
  false_suspicions : int;  (** suspicions of a site that was in fact up *)
  unavailability : Stats.Summary.t;
      (** durations of graceful-degradation windows: a site held an
          application request but no live quorum existed
          (see [Protocol.ctx.mark_parked]) *)
}

val pp_report : Format.formatter -> report -> unit

val events_total : int Atomic.t
(** Cumulative number of simulator events processed by every run in this
    process, across all protocol instantiations and all domains.  Bench
    drivers snapshot it before/after an experiment to derive events/sec;
    it is never reset. *)

module Make (P : Protocol.PROTOCOL) : sig
  val run :
    ?trace_sink:Trace.t ->
    ?inspect:(int -> P.state -> unit) ->
    config ->
    P.config ->
    report
  (** Run one simulation. [trace_sink], when given, receives the execution
      trace (the [config.trace] flag is ignored in that case). [inspect] is
      called with each site's final protocol state before returning — the
      white-box hook used by tests and debugging. *)
end
