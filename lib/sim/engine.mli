(** Discrete-event simulation engine.

    [Make (P)] runs protocol [P] over the Section-2 system model and
    measures what the paper's Section 5 derives analytically:

    - {e messages per CS execution}, total and by message kind;
    - {e synchronization delay}: time between a CS exit and the next CS
      entry, recorded only for contended handoffs (some site was already
      waiting when the exit happened) — exactly the paper's definition;
    - {e response time}: request issue to CS entry;
    - {e throughput}: CS executions per unit of simulated time.

    The engine also {e checks} mutual exclusion on every entry and flags
    deadlock (event queue drained while requests are outstanding), so every
    simulation doubles as a safety/liveness test. *)

type config = {
  n : int;  (** number of sites *)
  seed : int;
  delay : Network.delay_model;  (** message delay; its mean is the paper's T *)
  cs_duration : float;  (** CS execution time E *)
  workload : Workload.t;
  max_executions : int;  (** stop after this many completed CS executions *)
  max_time : float;  (** hard stop on simulated time *)
  warmup : int;
      (** executions excluded from all statistics (steady-state measurement
          under heavy load) *)
  crashes : (float * int) list;  (** (time, site) fail-stop injections *)
  recoveries : (float * int) list;
      (** (time, site) rejoin injections: the site comes back with fresh
          protocol state; survivors learn of it after [detection_delay] *)
  detection_delay : float;
      (** failure-detector latency: every surviving site learns of a crash
          this long after it happens *)
  trace : bool;  (** record a full event trace *)
}

val default : n:int -> config
(** Constant delay 1.0 (so times are in units of T), E = 0.5, saturated
    workload with all sites contending, 200 executions, 20 warmup,
    seed 42, no crashes. *)

type report = {
  protocol : string;
  params : string;
  n : int;
  executions : int;  (** completed CS executions after warmup *)
  total_messages : int;  (** sent after warmup, self-messages excluded *)
  messages_by_kind : (string * int) list;
  messages_per_cs : float;
  sync_delay : Stats.Summary.t;
  response_time : Stats.Summary.t;
  throughput : float;
  sim_time : float;  (** simulated time at stop *)
  mean_delay : float;  (** the model's T, for normalizing *)
  violations : int;  (** mutual exclusion violations observed (must be 0) *)
  deadlocked : bool;
  pending_at_end : int;  (** requests never granted (0 unless deadlocked/crashed) *)
  per_site_executions : int array;  (** post-warmup CS completions per site *)
  fairness : float;
      (** Jain's index over sites that entered at least once: 1.0 = every
          such site was served equally often — the quantified form of the
          paper's starvation-freedom theorem *)
}

val pp_report : Format.formatter -> report -> unit

module Make (P : Protocol.PROTOCOL) : sig
  val run :
    ?trace_sink:Trace.t ->
    ?inspect:(int -> P.state -> unit) ->
    config ->
    P.config ->
    report
  (** Run one simulation. [trace_sink], when given, receives the execution
      trace (the [config.trace] flag is ignored in that case). [inspect] is
      called with each site's final protocol state before returning — the
      white-box hook used by tests and debugging. *)
end
