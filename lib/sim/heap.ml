type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~cmp () = { cmp; data = [||]; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

let grow t x =
  let new_cap = if Array.length t.data = 0 then 16 else 2 * Array.length t.data in
  let data = Array.make new_cap x in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < t.size && t.cmp t.data.(l) t.data.(i) < 0 then l else i in
  let smallest =
    if r < t.size && t.cmp t.data.(r) t.data.(smallest) < 0 then r else smallest
  in
  if smallest <> i then begin
    swap t i smallest;
    sift_down t smallest
  end

let add t x =
  if t.size = Array.length t.data then grow t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0)

let peek_exn t =
  if t.size = 0 then invalid_arg "Heap.peek_exn: empty heap";
  t.data.(0)

let pop_exn t =
  if t.size = 0 then invalid_arg "Heap.pop_exn: empty heap";
  let root = t.data.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.data.(0) <- t.data.(t.size);
    sift_down t 0
  end;
  (* Release the reference so the GC can reclaim popped elements. *)
  t.data.(t.size) <- root;
  root

let pop t = if t.size = 0 then None else Some (pop_exn t)

let clear t =
  t.data <- [||];
  t.size <- 0

let to_list t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (t.data.(i) :: acc) in
  loop (t.size - 1) []

let filter_in_place t keep =
  (* In-place: compact survivors to the front of [data], then restore the
     heap invariant bottom-up (Floyd heapify).  O(n) and allocation-free,
     versus the previous to_list/filter/re-add round trip.  The comparator
     is total (event queues break time ties by insertion seq), so the
     resulting heap's pop order is deterministic either way. *)
  let j = ref 0 in
  for i = 0 to t.size - 1 do
    if keep t.data.(i) then begin
      if !j <> i then t.data.(!j) <- t.data.(i);
      incr j
    end
  done;
  let old_size = t.size in
  t.size <- !j;
  if t.size = 0 then t.data <- [||]
  else begin
    (* Release dropped references so the GC can reclaim them. *)
    for i = t.size to old_size - 1 do
      t.data.(i) <- t.data.(0)
    done;
    for i = (t.size / 2) - 1 downto 0 do
      sift_down t i
    done
  end

let exists t p =
  let rec loop i = i < t.size && (p t.data.(i) || loop (i + 1)) in
  loop 0
