(* A self-contained, serializable description of one simulation run. See
   schedule.mli for the format; floats are written as hex literals so a
   file round-trips bit-exactly. *)

type t = {
  algo : string;
  quorum : string;
  seed : int;
  n : int;
  execs : int;
  warmup : int;
  cs : float;
  delay : Network.delay_model;
  workload : Workload.t;
  faults : Network.fault_plan;
  crashes : (float * int) list;
  recoveries : (float * int) list;
  detector : Engine.detector;
  reliability : bool;
  stall : float;
}

let default ~algo ~n =
  {
    algo;
    quorum = "";
    seed = 42;
    n;
    execs = 50;
    warmup = 0;
    cs = 1.0;
    delay = Network.Constant 1.0;
    workload = Workload.Saturated { contenders = n };
    faults = Network.no_faults;
    crashes = [];
    recoveries = [];
    detector = Engine.Oracle 3.0;
    reliability = false;
    stall = 2000.0;
  }

let to_engine_config t =
  {
    (Engine.default ~n:t.n) with
    Engine.seed = t.seed;
    max_executions = t.execs;
    warmup = t.warmup;
    cs_duration = t.cs;
    delay = t.delay;
    workload = t.workload;
    faults = t.faults;
    crashes = t.crashes;
    recoveries = t.recoveries;
    detector = t.detector;
    stall_timeout = t.stall;
    max_time = 1.0e9;
  }

(* ---- serialization ---- *)

(* %h round-trips every finite float exactly; infinities need a spelling
   float_of_string accepts. *)
let fstr x =
  if x = infinity then "inf"
  else if x = neg_infinity then "-inf"
  else Printf.sprintf "%h" x

let ilist xs = String.concat "," (List.map string_of_int xs)

let to_string t =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "dmxrepro v1";
  line "algo %s" t.algo;
  line "quorum %s" (if t.quorum = "" then "-" else t.quorum);
  line "seed %d" t.seed;
  line "n %d" t.n;
  line "execs %d" t.execs;
  line "warmup %d" t.warmup;
  line "cs %s" (fstr t.cs);
  (match t.delay with
  | Network.Constant d -> line "delay constant %s" (fstr d)
  | Network.Uniform { lo; hi } -> line "delay uniform %s %s" (fstr lo) (fstr hi)
  | Network.Exponential { mean } -> line "delay exp %s" (fstr mean)
  | Network.Shifted_exponential { base; extra_mean } ->
    line "delay shifted %s %s" (fstr base) (fstr extra_mean));
  (match t.workload with
  | Workload.Poisson { rate_per_site } ->
    line "workload poisson %s" (fstr rate_per_site)
  | Workload.Open_loop { active; rate_per_site } ->
    line "workload open-loop %d %s" active (fstr rate_per_site)
  | Workload.Saturated { contenders } -> line "workload saturated %d" contenders
  | Workload.Think { contenders; mean_think } ->
    line "workload think %d %s" contenders (fstr mean_think)
  | Workload.Burst { requesters; at } ->
    line "workload burst %s %s" (fstr at)
      (if requesters = [] then "-" else ilist requesters));
  if t.faults.Network.loss > 0.0 then
    line "loss %s" (fstr t.faults.Network.loss);
  if t.faults.Network.duplication > 0.0 then
    line "dup %s" (fstr t.faults.Network.duplication);
  List.iter
    (fun (p : Network.partition) ->
      line "partition %s %s %s" (fstr p.Network.from_t) (fstr p.Network.until)
        (String.concat "|" (List.map ilist p.Network.groups)))
    t.faults.Network.partitions;
  List.iter
    (fun (from_t, until, factor) ->
      line "spike %s %s %s" (fstr from_t) (fstr until) (fstr factor))
    t.faults.Network.delay_spikes;
  List.iter (fun (at, s) -> line "crash %s %d" (fstr at) s) t.crashes;
  List.iter (fun (at, s) -> line "recover %s %d" (fstr at) s) t.recoveries;
  (match t.detector with
  | Engine.Oracle d -> line "detector oracle %s" (fstr d)
  | Engine.Heartbeat c ->
    line "detector heartbeat %s %s" (fstr c.Detector.period)
      (fstr c.Detector.timeout));
  line "reliability %b" t.reliability;
  line "stall %s" (fstr t.stall);
  Buffer.contents b

let of_string s =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let float_of s =
    match float_of_string_opt s with
    | Some f -> Ok f
    | None -> err "bad float %S" s
  in
  let int_of s =
    match int_of_string_opt s with
    | Some i -> Ok i
    | None -> err "bad int %S" s
  in
  let ints_of s =
    try
      Ok
        (List.map
           (fun x ->
             match int_of_string_opt x with Some v -> v | None -> raise Exit)
           (String.split_on_char ',' s))
    with Exit -> err "bad int list %S" s
  in
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  match lines with
  | [] -> Error "empty schedule"
  | header :: rest ->
    let* () =
      if header = "dmxrepro v1" then Ok ()
      else err "bad header %S (expected \"dmxrepro v1\")" header
    in
    let rec fold acc = function
      | [] -> Ok acc
      | l :: rest ->
        let* acc =
          match String.split_on_char ' ' l with
          | [ "algo"; a ] -> Ok { acc with algo = a }
          | [ "quorum"; q ] ->
            Ok { acc with quorum = (if q = "-" then "" else q) }
          | [ "seed"; v ] ->
            let* v = int_of v in
            Ok { acc with seed = v }
          | [ "n"; v ] ->
            let* v = int_of v in
            Ok { acc with n = v }
          | [ "execs"; v ] ->
            let* v = int_of v in
            Ok { acc with execs = v }
          | [ "warmup"; v ] ->
            let* v = int_of v in
            Ok { acc with warmup = v }
          | [ "cs"; v ] ->
            let* v = float_of v in
            Ok { acc with cs = v }
          | [ "delay"; "constant"; d ] ->
            let* d = float_of d in
            Ok { acc with delay = Network.Constant d }
          | [ "delay"; "uniform"; lo; hi ] ->
            let* lo = float_of lo in
            let* hi = float_of hi in
            Ok { acc with delay = Network.Uniform { lo; hi } }
          | [ "delay"; "exp"; m ] ->
            let* mean = float_of m in
            Ok { acc with delay = Network.Exponential { mean } }
          | [ "delay"; "shifted"; b; m ] ->
            let* base = float_of b in
            let* extra_mean = float_of m in
            Ok
              { acc with delay = Network.Shifted_exponential { base; extra_mean } }
          | [ "workload"; "poisson"; r ] ->
            let* rate_per_site = float_of r in
            Ok { acc with workload = Workload.Poisson { rate_per_site } }
          | [ "workload"; "open-loop"; a; r ] ->
            let* active = int_of a in
            let* rate_per_site = float_of r in
            Ok { acc with workload = Workload.Open_loop { active; rate_per_site } }
          | [ "workload"; "saturated"; c ] ->
            let* contenders = int_of c in
            Ok { acc with workload = Workload.Saturated { contenders } }
          | [ "workload"; "think"; c; m ] ->
            let* contenders = int_of c in
            let* mean_think = float_of m in
            Ok { acc with workload = Workload.Think { contenders; mean_think } }
          | [ "workload"; "burst"; at; rs ] ->
            let* at = float_of at in
            let* requesters = if rs = "-" then Ok [] else ints_of rs in
            Ok { acc with workload = Workload.Burst { requesters; at } }
          | [ "loss"; v ] ->
            let* loss = float_of v in
            Ok { acc with faults = { acc.faults with Network.loss } }
          | [ "dup"; v ] ->
            let* duplication = float_of v in
            Ok { acc with faults = { acc.faults with Network.duplication } }
          | [ "partition"; from_s; until_s; groups_s ] ->
            let* from_t = float_of from_s in
            let* until = float_of until_s in
            let* groups =
              List.fold_left
                (fun acc g ->
                  let* acc = acc in
                  let* g = ints_of g in
                  Ok (g :: acc))
                (Ok [])
                (String.split_on_char '|' groups_s)
            in
            let p = { Network.from_t; until; groups = List.rev groups } in
            Ok
              {
                acc with
                faults =
                  {
                    acc.faults with
                    Network.partitions = acc.faults.Network.partitions @ [ p ];
                  };
              }
          | [ "spike"; f; u; k ] ->
            let* from_t = float_of f in
            let* until = float_of u in
            let* factor = float_of k in
            Ok
              {
                acc with
                faults =
                  {
                    acc.faults with
                    Network.delay_spikes =
                      acc.faults.Network.delay_spikes @ [ (from_t, until, factor) ];
                  };
              }
          | [ "crash"; at; s ] ->
            let* at = float_of at in
            let* s = int_of s in
            Ok { acc with crashes = acc.crashes @ [ (at, s) ] }
          | [ "recover"; at; s ] ->
            let* at = float_of at in
            let* s = int_of s in
            Ok { acc with recoveries = acc.recoveries @ [ (at, s) ] }
          | [ "detector"; "oracle"; d ] ->
            let* d = float_of d in
            Ok { acc with detector = Engine.Oracle d }
          | [ "detector"; "heartbeat"; p; tmo ] ->
            let* period = float_of p in
            let* timeout = float_of tmo in
            Ok { acc with detector = Engine.Heartbeat { Detector.period; timeout } }
          | [ "reliability"; v ] -> (
            match bool_of_string_opt v with
            | Some reliability -> Ok { acc with reliability }
            | None -> err "bad bool %S" v)
          | [ "stall"; v ] ->
            let* stall = float_of v in
            Ok { acc with stall }
          | _ -> err "bad schedule line %S" l
        in
        fold acc rest
    in
    let* t = fold (default ~algo:"delay-optimal" ~n:0) rest in
    if t.n <= 0 then err "schedule missing n"
    else
      (* The fold seeds n-dependent defaults with n = 0; re-derive them now
         that n is known, so a file that omits `workload` means "saturated,
         all sites" exactly as [default ~n] would. At huge N that implicit
         default would instantiate every site, so refuse it loudly instead
         of letting Workload's guard fire deep inside the run. *)
      match t.workload with
      | Workload.Saturated { contenders } when contenders <= 0 ->
        if t.n > Workload.max_eager_sites then
          err
            "schedule has n = %d but no explicit workload: the implied \
             \"saturated, all %d sites\" would instantiate every site; add a \
             `workload open-loop <active> <rate>` or `workload saturated \
             <contenders>` line with at most %d active sites"
            t.n t.n Workload.max_eager_sites
        else Ok { t with workload = Workload.Saturated { contenders = t.n } }
      | _ -> Ok t

let to_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let of_file path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | s -> of_string s

(* ---- shrinking ---- *)

(* Clamp every site reference after [n] changed; drop fault-plan entries
   that no longer make sense. *)
let restrict_n t n =
  let keep_site s = s >= 0 && s < n in
  let workload =
    match t.workload with
    | Workload.Poisson _ as w -> w
    | Workload.Open_loop { active; rate_per_site } ->
      Workload.Open_loop { active = max 1 (min active n); rate_per_site }
    | Workload.Saturated { contenders } ->
      Workload.Saturated { contenders = max 2 (min contenders n) }
    | Workload.Think { contenders; mean_think } ->
      Workload.Think { contenders = max 2 (min contenders n); mean_think }
    | Workload.Burst { requesters; at } ->
      let requesters = List.filter keep_site requesters in
      Workload.Burst
        { requesters = (if requesters = [] then [ 0 ] else requesters); at }
  in
  let partitions =
    List.filter_map
      (fun (p : Network.partition) ->
        let groups =
          List.filter (fun g -> g <> [])
            (List.map (List.filter keep_site) p.Network.groups)
        in
        if groups = [] then None else Some { p with Network.groups })
      t.faults.Network.partitions
  in
  {
    t with
    n;
    workload;
    faults = { t.faults with Network.partitions };
    crashes = List.filter (fun (_, s) -> keep_site s) t.crashes;
    recoveries = List.filter (fun (_, s) -> keep_site s) t.recoveries;
  }

let drop_nth n xs = List.filteri (fun i _ -> i <> n) xs

(* Candidate simplifications, most aggressive first: fewer sites, fewer
   requests, fewer fault events, then less delay jitter. Every candidate is
   strictly "smaller" in a well-founded sense, so greedy minimization
   terminates. *)
let shrink t =
  let cands = ref [] in
  let add c = cands := c :: !cands in
  (* delay jitter last (emitted first, reversed below) *)
  (match t.delay with
  | Network.Constant _ -> ()
  | d -> add { t with delay = Network.Constant (Network.mean_delay d) });
  if t.warmup > 0 then add { t with warmup = 0 };
  (* fault events *)
  List.iteri
    (fun i _ -> add { t with crashes = drop_nth i t.crashes; recoveries = [] })
    t.crashes;
  if t.crashes = [] && t.recoveries <> [] then add { t with recoveries = [] };
  List.iteri
    (fun i _ ->
      add
        {
          t with
          faults =
            {
              t.faults with
              Network.delay_spikes = drop_nth i t.faults.Network.delay_spikes;
            };
        })
    t.faults.Network.delay_spikes;
  List.iteri
    (fun i _ ->
      add
        {
          t with
          faults =
            {
              t.faults with
              Network.partitions = drop_nth i t.faults.Network.partitions;
            };
        })
    t.faults.Network.partitions;
  if t.faults.Network.duplication > 0.0 then
    add { t with faults = { t.faults with Network.duplication = 0.0 } };
  if t.faults.Network.loss > 0.0 then
    add { t with faults = { t.faults with Network.loss = 0.0 } };
  if t.faults <> Network.no_faults then
    add { t with faults = Network.no_faults };
  (* fewer requests *)
  (match t.workload with
  | Workload.Saturated { contenders } when contenders > 2 ->
    add { t with workload = Workload.Saturated { contenders = contenders / 2 } }
  | Workload.Think { contenders; mean_think } when contenders > 2 ->
    add
      { t with workload = Workload.Think { contenders = contenders / 2; mean_think } }
  | Workload.Burst { requesters; at } when List.length requesters > 2 ->
    let keep = List.filteri (fun i _ -> i mod 2 = 0) requesters in
    add { t with workload = Workload.Burst { requesters = keep; at } }
  | _ -> ());
  if t.execs > 4 then add { t with execs = max 4 (t.execs / 2) };
  (* fewer sites *)
  if t.n > 3 then add (restrict_n t (t.n - 1));
  if t.n > 5 then add (restrict_n t (t.n / 2));
  !cands

let minimize ?(max_attempts = 200) ~valid ~fails t =
  let attempts = ref 0 in
  let try_cand c = valid c && (incr attempts; fails c) in
  let rec go t =
    if !attempts >= max_attempts then t
    else
      match List.find_opt try_cand (shrink t) with
      | Some smaller -> go smaller
      | None -> t
  in
  go t
