type kind =
  | Send of { dst : int; msg : string }
  | Receive of { src : int; msg : string }
  | Enter_cs
  | Exit_cs
  | Timer of int
  | Crash
  | Recover
  | Drop of { dst : int; reason : string }
  | Duplicate of { dst : int }
  | Partition of { heal : bool }
  | Suspect of int
  | Trust of int
  | Note of string
  (* Semantic protocol events, recorded by instrumented protocols through
     [Protocol.ctx.trace_event]; the post-hoc {!Oracle} consumes them. *)
  | Request
  | Adopt_quorum of int list
  | Acquire of { arbiter : int }
  | Cede of { arbiter : int }
  | Forward of { arbiter : int; to_ : int }
  | Grant of { to_ : int }

type entry = { time : float; site : int; kind : kind }

type t = {
  enabled : bool;
  capacity : int;
  mutable entries : entry list; (* newest first *)
  mutable length : int;
  mutable truncated : bool;
}

let create ?(enabled = false) ?(capacity = 1_000_000) () =
  { enabled; capacity; entries = []; length = 0; truncated = false }

let enabled t = t.enabled

let record t ~time ~site kind =
  if t.enabled then begin
    t.entries <- { time; site; kind } :: t.entries;
    t.length <- t.length + 1;
    if t.length > t.capacity then begin
      (* Drop the oldest half; amortizes the O(n) rebuild. *)
      let keep = t.capacity / 2 in
      t.entries <- List.filteri (fun i _ -> i < keep) t.entries;
      t.length <- keep;
      t.truncated <- true
    end
  end

let entries t = List.rev t.entries
let length t = t.length
let truncated t = t.truncated

let clear t =
  t.entries <- [];
  t.length <- 0;
  t.truncated <- false

let pp_kind ppf = function
  | Send { dst; msg } -> Format.fprintf ppf "send -> %d : %s" dst msg
  | Receive { src; msg } -> Format.fprintf ppf "recv <- %d : %s" src msg
  | Enter_cs -> Format.pp_print_string ppf "ENTER CS"
  | Exit_cs -> Format.pp_print_string ppf "EXIT CS"
  | Timer tag -> Format.fprintf ppf "timer %d" tag
  | Crash -> Format.pp_print_string ppf "CRASH"
  | Recover -> Format.pp_print_string ppf "RECOVER"
  | Drop { dst; reason } -> Format.fprintf ppf "DROP -> %d (%s)" dst reason
  | Duplicate { dst } -> Format.fprintf ppf "DUP -> %d" dst
  | Partition { heal } ->
    Format.pp_print_string ppf
      (if heal then "PARTITION HEAL" else "PARTITION SPLIT")
  | Suspect s -> Format.fprintf ppf "suspect %d" s
  | Trust s -> Format.fprintf ppf "trust %d" s
  | Note s -> Format.pp_print_string ppf s
  | Request -> Format.pp_print_string ppf "REQUEST"
  | Adopt_quorum q ->
    Format.fprintf ppf "adopt quorum {%s}"
      (String.concat "," (List.map string_of_int q))
  | Acquire { arbiter } -> Format.fprintf ppf "acquire perm(%d)" arbiter
  | Cede { arbiter } -> Format.fprintf ppf "cede perm(%d)" arbiter
  | Forward { arbiter; to_ } ->
    Format.fprintf ppf "forward perm(%d) -> %d" arbiter to_
  | Grant { to_ } -> Format.fprintf ppf "grant perm -> %d" to_

let pp_entry ppf e =
  Format.fprintf ppf "[%10.4f] site %3d  %a" e.time e.site pp_kind e.kind

let dump ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) (entries t)

let timeline ?(width = 72) t ~n =
  let es = entries t in
  let t_max =
    List.fold_left (fun acc e -> Float.max acc e.time) 1e-9 es
  in
  let col time =
    Stdlib.min (width - 1)
      (int_of_float (time /. t_max *. float_of_int (width - 1)))
  in
  let lanes = Array.init n (fun _ -> Bytes.make width '.') in
  let fill site a b ch =
    if site >= 0 && site < n then
      for c = col a to col b do
        Bytes.set lanes.(site) c ch
      done
  in
  (* CS intervals per site: pair Enter with the following Exit *)
  let open_at = Array.make n None in
  List.iter
    (fun e ->
      match e.kind with
      | Enter_cs -> if e.site < n then open_at.(e.site) <- Some e.time
      | Exit_cs ->
        if e.site < n then begin
          (match open_at.(e.site) with
          | Some start -> fill e.site start e.time '#'
          | None -> ());
          open_at.(e.site) <- None
        end
      | Crash -> fill e.site e.time t_max 'X'
      | Send _ | Receive _ | Timer _ | Recover | Drop _ | Duplicate _
      | Partition _ | Suspect _ | Trust _ | Note _ | Request
      | Adopt_quorum _ | Acquire _ | Cede _ | Forward _ | Grant _ -> ())
    es;
  Array.iteri
    (fun site o ->
      match o with Some start -> fill site start t_max '#' | None -> ())
    open_at;
  let buf = Buffer.create ((n + 1) * (width + 16)) in
  Buffer.add_string buf (Printf.sprintf "t: 0.0 .. %.1f\n" t_max);
  Array.iteri
    (fun site lane ->
      Buffer.add_string buf
        (Printf.sprintf "site %3d |%s\n" site (Bytes.to_string lane)))
    lanes;
  Buffer.contents buf
