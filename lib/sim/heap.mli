(** Growable binary min-heap parameterized by an ordering function.

    The simulator's event queue and several protocol-internal priority
    queues are built on this structure. Operations are the textbook
    O(log n); the backing array doubles on demand. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> unit -> 'a t
(** [create ~cmp ()] is an empty heap ordered by [cmp] (smallest first). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit
(** Insert an element. *)

val peek : 'a t -> 'a option
(** Smallest element, if any, without removing it. *)

val peek_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit
(** Remove all elements (O(1), releases references). *)

val to_list : 'a t -> 'a list
(** Snapshot of the contents in unspecified order. *)

val filter_in_place : 'a t -> ('a -> bool) -> unit
(** Keep only elements satisfying the predicate, restoring heap order. *)

val exists : 'a t -> ('a -> bool) -> bool
(** Does any element satisfy the predicate? *)
