(* Post-hoc trace checker: replays a completed run's trace and validates
   the paper's global invariants. See oracle.mli for the catalogue. *)

type config = {
  n : int;
  fifo : bool;
  custody : bool;
  max_overtake : int option;
  bound_per_cs : float option;
}

let default ~n =
  { n; fifo = true; custody = true; max_overtake = None; bound_per_cs = None }

type violation = { time : float; site : int; what : string }

type verdict = {
  violations : violation list;
  entries_checked : int;
  cs_entries : int;
  messages : int;
  truncated : bool;
}

let ok v = v.violations = [] && not v.truncated

let pp_violation ppf v =
  Format.fprintf ppf "[%10.4f] site %3d  %s" v.time v.site v.what

let pp_verdict ppf v =
  if v.truncated then
    Format.fprintf ppf
      "trace truncated after %d entries: invariants not checkable"
      v.entries_checked
  else if v.violations = [] then
    Format.fprintf ppf "trace OK: %d entries, %d CS executions, %d messages"
      v.entries_checked v.cs_entries v.messages
  else begin
    Format.fprintf ppf "trace REJECTED: %d violation(s)@,"
      (List.length v.violations);
    Format.pp_print_list pp_violation ppf v.violations
  end

let set_to_string xs =
  "{" ^ String.concat "," (List.map string_of_int (List.sort compare xs)) ^ "}"

(* ---- per-channel FIFO ---- *)

(* Channels are FIFO per (src, dst): receives must appear in send order.
   Losses and crashes make gaps (a send with no receive) and duplication
   makes stutters (the same send received twice, adjacently by the
   network's watermark rule); both are legal. An out-of-order receive is
   not. The match is greedy on the message's printed form: for each
   receive, in order, accept a repeat of the previous matched send or scan
   forward to the next send with the same text. *)
let check_fifo ~push sends recvs =
  let sends = Array.of_list sends in
  let cursor = ref 0 in
  let last = ref None in
  List.iter
    (fun (rt, rsite, msg) ->
      let matched_dup =
        match !last with Some (_, m) when m = msg -> true | _ -> false
      in
      let rec scan i =
        if i >= Array.length sends then None
        else
          let st, smsg = sends.(i) in
          if smsg = msg then Some (i, st) else scan (i + 1)
      in
      match scan !cursor with
      | Some (i, st) ->
        cursor := i + 1;
        last := Some (st, msg);
        if st > rt +. 1e-9 then
          push
            {
              time = rt;
              site = rsite;
              what =
                Printf.sprintf "FIFO: %S received before it was sent (%.4f)"
                  msg st;
            }
      | None ->
        if not matched_dup then
          push
            {
              time = rt;
              site = rsite;
              what =
                Printf.sprintf
                  "FIFO: received %S out of channel order (no unconsumed \
                   matching send)"
                  msg;
            })
    recvs

let check (cfg : config) (entries : Trace.entry list) ~truncated =
  let violations = ref [] in
  let push v = violations := v :: !violations in
  let n = cfg.n in
  if truncated then
    {
      violations = [];
      entries_checked = List.length entries;
      cs_entries = 0;
      messages = 0;
      truncated = true;
    }
  else begin
    (* mutex *)
    let in_cs = ref [] in
    (* permission custody: holder.(a) = site currently possessing arbiter
       a's permission, if any *)
    let holder = Array.make n None in
    (* quorum adopted by each site's latest request *)
    let adopted = Array.make n None in
    (* fairness: issue time of each site's outstanding request, and how
       often a younger request entered the CS before it *)
    let pending = Array.make n Float.nan in
    let overtaken = Array.make n 0 in
    (* channels for the FIFO check *)
    let sends : (int * int, (float * string) list ref) Hashtbl.t =
      Hashtbl.create 64
    in
    let recvs : (int * int, (float * int * string) list ref) Hashtbl.t =
      Hashtbl.create 64
    in
    let channel tbl key =
      match Hashtbl.find_opt tbl key with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.add tbl key l;
        l
    in
    let cs_entries = ref 0 in
    let messages = ref 0 in
    let count = ref 0 in
    List.iter
      (fun (e : Trace.entry) ->
        incr count;
        let time = e.Trace.time and site = e.Trace.site in
        match e.Trace.kind with
        | Trace.Enter_cs ->
          List.iter
            (fun other ->
              push
                {
                  time;
                  site;
                  what =
                    Printf.sprintf "MUTEX: CS entry while site %d is in the CS"
                      other;
                })
            !in_cs;
          in_cs := site :: !in_cs;
          (match adopted.(site) with
          | Some q when cfg.custody ->
            let missing =
              List.filter (fun a -> holder.(a) <> Some site) q
            in
            if missing <> [] then
              push
                {
                  time;
                  site;
                  what =
                    Printf.sprintf
                      "QUORUM: CS entry without permissions %s of quorum %s"
                      (set_to_string missing) (set_to_string q);
                }
          | _ -> ());
          (match cfg.max_overtake with
          | Some bound ->
            if not (Float.is_nan pending.(site)) then
              for s = 0 to n - 1 do
                if
                  s <> site
                  && (not (Float.is_nan pending.(s)))
                  && pending.(s) < pending.(site)
                then begin
                  overtaken.(s) <- overtaken.(s) + 1;
                  if overtaken.(s) = bound + 1 then
                    push
                      {
                        time;
                        site = s;
                        what =
                          Printf.sprintf
                            "FAIRNESS: request pending since %.4f overtaken \
                             %d times (bound %d)"
                            pending.(s)
                            overtaken.(s) bound;
                      }
                end
              done
          | None -> ());
          pending.(site) <- Float.nan;
          overtaken.(site) <- 0
        | Trace.Exit_cs ->
          incr cs_entries;
          in_cs := List.filter (fun s -> s <> site) !in_cs
        | Trace.Request -> pending.(site) <- time
        | Trace.Adopt_quorum q ->
          List.iter
            (fun a ->
              if a < 0 || a >= n then
                push
                  {
                    time;
                    site;
                    what = Printf.sprintf "QUORUM: adopted out-of-range arbiter %d" a;
                  })
            q;
          for s = 0 to n - 1 do
            match adopted.(s) with
            | Some q' when s <> site ->
              if not (List.exists (fun a -> List.mem a q') q) then
                push
                  {
                    time;
                    site;
                    what =
                      Printf.sprintf
                        "COTERIE: quorum %s of site %d and quorum %s of site \
                         %d do not intersect"
                        (set_to_string q) site (set_to_string q') s;
                  }
            | _ -> ()
          done;
          adopted.(site) <- Some q
        | Trace.Acquire { arbiter } when arbiter >= 0 && arbiter < n ->
          (match holder.(arbiter) with
          | Some other when other <> site && cfg.custody ->
            push
              {
                time;
                site;
                what =
                  Printf.sprintf
                    "CUSTODY: acquired permission of %d while site %d still \
                     holds it"
                    arbiter other;
              }
          | _ -> ());
          holder.(arbiter) <- Some site
        | Trace.Acquire _ -> ()
        | Trace.Cede { arbiter } ->
          if arbiter >= 0 && arbiter < n && holder.(arbiter) = Some site then
            holder.(arbiter) <- None
        | Trace.Forward { arbiter; to_ } ->
          if arbiter >= 0 && arbiter < n then begin
            (match holder.(arbiter) with
            | Some h when h = site -> ()
            | _ when not cfg.custody -> ()
            | _ ->
              push
                {
                  time;
                  site;
                  what =
                    Printf.sprintf
                      "CUSTODY: forwarded permission of %d to %d without \
                       holding it"
                      arbiter to_;
                });
            holder.(arbiter) <- None
          end
        | Trace.Grant { to_ } ->
          if site >= 0 && site < n then begin
            match holder.(site) with
            | Some h when cfg.custody ->
              push
                {
                  time;
                  site;
                  what =
                    Printf.sprintf
                      "CUSTODY: arbiter granted its permission to %d while \
                       site %d still holds it"
                      to_ h;
                }
            | _ -> ()
          end
        | Trace.Send { dst; msg } ->
          if dst <> site then begin
            incr messages;
            let l = channel sends (site, dst) in
            l := (time, msg) :: !l
          end
        | Trace.Receive { src; msg } ->
          if src <> site then begin
            let l = channel recvs (src, site) in
            l := (time, site, msg) :: !l
          end
        | Trace.Crash ->
          (* fail-stop: volatile possession dies with the site, and so does
             any authority memory of its arbiter role *)
          in_cs := List.filter (fun s -> s <> site) !in_cs;
          for a = 0 to n - 1 do
            if holder.(a) = Some site then holder.(a) <- None
          done;
          if site >= 0 && site < n then begin
            holder.(site) <- None;
            adopted.(site) <- None;
            pending.(site) <- Float.nan;
            overtaken.(site) <- 0
          end
        | Trace.Recover | Trace.Timer _ | Trace.Drop _ | Trace.Duplicate _
        | Trace.Partition _ | Trace.Suspect _ | Trace.Trust _ | Trace.Note _
          ->
          ())
      entries;
    if cfg.fifo then
      Hashtbl.iter
        (fun key recvd ->
          let sent =
            match Hashtbl.find_opt sends key with
            | Some l -> List.rev !l
            | None -> []
          in
          check_fifo ~push sent (List.rev !recvd))
        recvs;
    (match cfg.bound_per_cs with
    | Some bound when !cs_entries > 0 ->
      let per_cs = float_of_int !messages /. float_of_int !cs_entries in
      if per_cs > bound then
        push
          {
            time = 0.0;
            site = -1;
            what =
              Printf.sprintf
                "BOUND: %.2f messages per CS exceeds the expected %.2f \
                 (%d messages / %d executions)"
                per_cs bound !messages !cs_entries;
          }
    | _ -> ());
    {
      violations =
        List.sort (fun a b -> compare (a.time, a.site) (b.time, b.site))
          !violations;
      entries_checked = !count;
      cs_entries = !cs_entries;
      messages = !messages;
      truncated = false;
    }
  end

let check_trace cfg trace =
  check cfg (Trace.entries trace) ~truncated:(Trace.truncated trace)

(* ---- expected per-protocol message bounds ---- *)

type load = Light | Heavy

(* Upper bounds on messages per CS execution, tolerance included: the
   paper's asymptotic counts plus slack for startup transients, deadlock-
   resolution traffic (inquire/fail/yield) and the measurement including
   the pre-steady-state prefix. Only meaningful on fault-free runs. *)
let expected_bound ~algo ~n ~k load =
  let nf = float_of_int n and kf = float_of_int k in
  let lg = log (float_of_int (max 2 n)) /. log 2.0 in
  match (algo, load) with
  | "delay-optimal", Light | "ft-delay-optimal", Light ->
    (* 3(K-1): request, reply, release *)
    Some ((3.2 *. (kf -. 1.0)) +. 4.0)
  | "delay-optimal", Heavy | "ft-delay-optimal", Heavy ->
    (* 5..6(K-1) with transfers, inquires, fails and yields *)
    Some ((6.5 *. (kf -. 1.0)) +. 6.0)
  | "maekawa", Light -> Some ((3.2 *. (kf -. 1.0)) +. 4.0)
  | "maekawa", Heavy -> Some ((6.0 *. (kf -. 1.0)) +. 6.0)
  (* The broadcast baselines pay their full per-request cost up front, so
     requests still pending when the run ends inflate the per-CS average
     well past the steady-state count (3(N-1), 2(N-1), N, ...): the
     multipliers carry ~30% headroom for that. *)
  | "lamport", _ -> Some ((3.6 *. (nf -. 1.0)) +. 6.0)
  | "ricart-agrawala", _ -> Some ((2.6 *. (nf -. 1.0)) +. 6.0)
  | "suzuki-kasami", _ -> Some ((1.5 *. nf) +. 6.0)
  | "singhal-dynamic", _ ->
    (* O(N) broadcast-like under heavy load, with request-set growth
       transients pushing past N; measured ~1.9N at n=9 saturated *)
    Some ((2.5 *. nf) +. 6.0)
  | "singhal-heuristic", _ -> Some ((2.6 *. nf) +. 8.0)
  | "raymond", _ ->
    (* ~4 messages per hop on the default balanced binary tree *)
    Some ((5.0 *. (lg +. 1.0)) +. 8.0)
  | _ -> None

(* How many times a pending request may be overtaken by younger requests
   before the oracle calls starvation. Timestamp-priority protocols resolve
   ties in bounded in-flight windows; token protocols serve in structural
   (tree/queue) order, where "younger first" is routine but still bounded
   by the structure size. Calibrated against the fault-free fuzz corpus. *)
let fairness_bound ~algo ~n =
  match algo with
  | "delay-optimal" | "ft-delay-optimal" | "maekawa" | "lamport"
  | "ricart-agrawala" ->
    Some ((4 * n) + 12)
  | "suzuki-kasami" | "singhal-dynamic" | "singhal-heuristic" ->
    Some ((6 * n) + 16)
  | _ -> None

let replay_file = Schedule.of_file
