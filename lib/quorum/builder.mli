(** Uniform front door to all quorum constructions.

    The paper's algorithm "is independent of the quorum being used"
    (Section 3.1); protocols take a request-set assignment ([int list
    array]) and never care where it came from. This module names each
    construction, builds assignments, validates them, and reports size
    statistics for the Section 5.3 / Section 6 comparisons. *)

type kind =
  | Grid  (** Maekawa-like grid, K ≈ 2√N − 1, any N *)
  | Fpp  (** projective plane, K ≈ √N, N = q²+q+1, q prime *)
  | Tree  (** Agrawal–El Abbadi, K = ⌈log₂(N+1)⌉ failure-free *)
  | Majority  (** K = ⌈(N+1)/2⌉ *)
  | Hqc  (** hierarchical 2-of-3, K = N^0.63, N = 3^k *)
  | Grid_set of int  (** majority over groups of given size, grid inside *)
  | Rst of int  (** grid over groups of given size, majority inside *)
  | Star  (** centralized: every quorum = {0, i}; K ≤ 2, delay-optimal but a
              single point of failure — the degenerate baseline *)
  | All  (** the full site set: unanimous consent, K = N *)

val kind_name : kind -> string
val pp_kind : Format.formatter -> kind -> unit
val parse_kind : string -> (kind, string) result
(** Inverse of {!kind_name}; group sizes as ["grid-set:4"], ["rst:4"]. *)

val all_kinds : group:int -> kind list
(** One of each construction, using [group] for the two grouped schemes. *)

val supports : kind -> n:int -> bool
(** Does the construction exist for this universe size? *)

val req_sets : kind -> n:int -> int list array
(** Request-set assignment for every site.
    @raise Invalid_argument when [supports kind ~n] is false. *)

val assignment : kind -> n:int -> Coterie.assignment
(** Lazy equivalent of {!req_sets}: builds the construction's O(1)
    structural handle once and generates each site's quorum on demand, so
    huge-N universes never materialize all [n] request sets. Site-for-site
    equal to {!req_sets} for every construction.
    @raise Invalid_argument when [supports kind ~n] is false. *)

val quorum_of : kind -> n:int -> int -> Coterie.quorum
(** [quorum_of kind ~n i] is site [i]'s request set, generated on demand. *)

val has_live_quorum : kind -> n:int -> up:bool array -> bool
(** Availability oracle: does a fully-live quorum exist in the coterie? *)

type size_stats = { k_min : int; k_max : int; k_mean : float }

val size_stats : int list array -> size_stats

(** Quorum-size statistics without materializing: exact (every site) when
    [n <= max_exact] (default 4096), a deterministic stride sample above. *)
val assignment_stats : ?max_exact:int -> Coterie.assignment -> size_stats
val validate : n:int -> int list array -> (unit, string) result
(** Checks the Intersection Property over all distinct request sets, and
    that every set is non-empty and in range. Minimality is reported
    separately by {!minimal} since several practical constructions
    (ragged grids) violate it harmlessly. *)

val minimal : n:int -> int list array -> bool
