(* Tree availability: A(s) for the subtree rooted at s.
   Live(s) = root up ∧ (left live ∨ right live ∨ s is a leaf)
           ∨ root down ∧ left live ∧ right live  — with empty subtrees
   vacuously live, mirroring Tree_quorum.quorum. *)
let tree_exact ~n ~p_up =
  let rec avail s =
    let l = (2 * s) + 1 and r = (2 * s) + 2 in
    if l >= n then p_up (* leaf: must be up *)
    else if r >= n then avail l (* single child: pass through (alive or dead) *)
    else begin
      let al = avail l and ar = avail r in
      let either = al +. ar -. (al *. ar) in
      (p_up *. either) +. ((1.0 -. p_up) *. al *. ar)
    end
  in
  avail 0

let exact kind ~n ~p_up =
  match (kind : Builder.kind) with
  | Majority -> Some (Majority.availability ~n ~p_up)
  | Hqc -> Some (Hqc.availability (Hqc.create ~n) ~p_up)
  | Tree -> Some (tree_exact ~n ~p_up)
  | Star -> Some p_up (* site 0 must be up; {0,i} needs i too, but the
                         coterie contains quorum {0} via i=0 *)
  | All -> Some (p_up ** float_of_int n)
  | Grid | Fpp | Grid_set _ | Rst _ -> None

let monte_carlo kind ~n ~p_up ~trials ~seed =
  if trials <= 0 then invalid_arg "Availability.monte_carlo: trials";
  let rng = Dmx_sim.Rng.create seed in
  let up = Array.make n true in
  let hits = ref 0 in
  for _ = 1 to trials do
    for i = 0 to n - 1 do
      up.(i) <- Dmx_sim.Rng.float rng 1.0 < p_up
    done;
    if Builder.has_live_quorum kind ~n ~up then incr hits
  done;
  float_of_int !hits /. float_of_int trials

let estimate ?(trials = 20_000) ?(seed = 7) kind ~n ~p_up =
  match exact kind ~n ~p_up with
  | Some a -> a
  | None -> monte_carlo kind ~n ~p_up ~trials ~seed
