type kind =
  | Grid
  | Fpp
  | Tree
  | Majority
  | Hqc
  | Grid_set of int
  | Rst of int
  | Star
  | All

let kind_name = function
  | Grid -> "grid"
  | Fpp -> "fpp"
  | Tree -> "tree"
  | Majority -> "majority"
  | Hqc -> "hqc"
  | Grid_set g -> Printf.sprintf "grid-set:%d" g
  | Rst g -> Printf.sprintf "rst:%d" g
  | Star -> "star"
  | All -> "all"

let pp_kind ppf k = Format.pp_print_string ppf (kind_name k)

let parse_kind s =
  let group_arg prefix =
    let plen = String.length prefix in
    if String.length s > plen && String.sub s 0 plen = prefix then
      int_of_string_opt (String.sub s plen (String.length s - plen))
    else None
  in
  match s with
  | "grid" -> Ok Grid
  | "fpp" -> Ok Fpp
  | "tree" -> Ok Tree
  | "majority" -> Ok Majority
  | "hqc" -> Ok Hqc
  | "star" -> Ok Star
  | "all" -> Ok All
  | _ ->
    (match group_arg "grid-set:" with
    | Some g -> Ok (Grid_set g)
    | None ->
      (match group_arg "rst:" with
      | Some g -> Ok (Rst g)
      | None ->
        Error
          (Printf.sprintf
             "unknown quorum kind %S (expected grid|fpp|tree|majority|hqc|\
              grid-set:<g>|rst:<g>|star|all)" s)))

let all_kinds ~group =
  [ Grid; Fpp; Tree; Majority; Hqc; Grid_set group; Rst group; Star; All ]

let is_power_of_3 n =
  let rec loop v = if v = n then true else if v > n then false else loop (3 * v) in
  n >= 3 && loop 3

let supports kind ~n =
  n > 0
  &&
  match kind with
  | Grid | Tree | Majority | Star | All -> true
  | Fpp -> Fpp.order_for n <> None
  | Hqc -> is_power_of_3 n
  | Grid_set g | Rst g -> g >= 1 && g <= n

let req_sets kind ~n =
  if not (supports kind ~n) then
    invalid_arg
      (Printf.sprintf "Builder.req_sets: %s does not support n=%d"
         (kind_name kind) n);
  match kind with
  | Grid -> Grid.req_sets ~n
  | Fpp -> Fpp.req_sets ~n
  | Tree -> Tree_quorum.req_sets ~n
  | Majority -> Majority.req_sets ~n
  | Hqc -> Hqc.req_sets ~n
  | Grid_set g -> Grid_set.req_sets ~n ~group:g
  | Rst g -> Rst.req_sets ~n ~group:g
  | Star -> Array.init n (fun i -> Coterie.normalize_quorum [ 0; i ])
  | All -> Array.init n (fun _ -> List.init n Fun.id)

(* Lazy assignments: each construction already derives req_set(i) from a
   tiny structural handle (grid shape, tree arity, GF(q) coordinates), so we
   build that handle once and generate quorums on demand. Only [All] pays
   O(n) per site — its quorum IS the universe. *)
let assignment kind ~n =
  if not (supports kind ~n) then
    invalid_arg
      (Printf.sprintf "Builder.assignment: %s does not support n=%d"
         (kind_name kind) n);
  match kind with
  | Grid ->
    let t = Grid.create ~n in
    Coterie.assignment ~n (Grid.req_set t)
  | Fpp -> Fpp.assignment ~n
  | Tree ->
    let t = Tree_quorum.create ~n in
    Coterie.assignment ~n (Tree_quorum.req_set t)
  | Majority -> Coterie.assignment ~n (Majority.req_set ~n)
  | Hqc ->
    let t = Hqc.create ~n in
    Coterie.assignment ~n (Hqc.req_set t)
  | Grid_set g ->
    let t = Grid_set.create ~n ~group:g in
    Coterie.assignment ~n (Grid_set.req_set t)
  | Rst g ->
    let t = Rst.create ~n ~group:g in
    Coterie.assignment ~n (Rst.req_set t)
  | Star -> Coterie.assignment ~n (fun i -> Coterie.normalize_quorum [ 0; i ])
  | All -> Coterie.assignment ~n (fun _ -> List.init n Fun.id)

let quorum_of kind ~n site = Coterie.quorum_of (assignment kind ~n) site

let has_live_quorum kind ~n ~up =
  match kind with
  | Grid -> Grid.has_live_quorum (Grid.create ~n) ~up
  | Fpp -> Fpp.has_live_quorum (Fpp.create ~n) ~up
  | Tree -> Tree_quorum.has_live_quorum (Tree_quorum.create ~n) ~up
  | Majority -> Majority.has_live_quorum ~n ~up
  | Hqc -> Hqc.has_live_quorum (Hqc.create ~n) ~up
  | Grid_set g -> Grid_set.has_live_quorum (Grid_set.create ~n ~group:g) ~up
  | Rst g -> Rst.has_live_quorum (Rst.create ~n ~group:g) ~up
  | Star -> up.(0)
  | All -> Array.for_all Fun.id up

type size_stats = { k_min : int; k_max : int; k_mean : float }

let size_stats req_sets =
  let sizes = Array.map List.length req_sets in
  let n = Array.length sizes in
  if n = 0 then { k_min = 0; k_max = 0; k_mean = 0.0 }
  else
    {
      k_min = Array.fold_left min max_int sizes;
      k_max = Array.fold_left max 0 sizes;
      k_mean =
        float_of_int (Array.fold_left ( + ) 0 sizes) /. float_of_int n;
    }

(* Size statistics straight off a lazy assignment. Below [max_exact] sites
   this walks every site and agrees exactly with [size_stats] on the
   materialized array; above it, a deterministic stride sample keeps the
   cost bounded at huge N (k_mean is then an estimate; k_min/k_max are over
   the sample). *)
let assignment_stats ?(max_exact = 4096) a =
  let n = Coterie.assignment_size a in
  if n = 0 then { k_min = 0; k_max = 0; k_mean = 0.0 }
  else begin
    let step = if n <= max_exact then 1 else n / max_exact in
    let k_min = ref max_int and k_max = ref 0 and sum = ref 0 and cnt = ref 0 in
    let i = ref 0 in
    while !i < n do
      let k = List.length (Coterie.quorum_of a !i) in
      if k < !k_min then k_min := k;
      if k > !k_max then k_max := k;
      sum := !sum + k;
      incr cnt;
      i := !i + step
    done;
    {
      k_min = !k_min;
      k_max = !k_max;
      k_mean = float_of_int !sum /. float_of_int !cnt;
    }
  end

let validate ~n req_sets =
  if Array.length req_sets <> n then Error "wrong number of request sets"
  else begin
    let bad = ref None in
    Array.iteri
      (fun i q ->
        if !bad = None then begin
          if q = [] then bad := Some (Printf.sprintf "req_set(%d) is empty" i);
          List.iter
            (fun s ->
              if (s < 0 || s >= n) && !bad = None then
                bad := Some (Printf.sprintf "req_set(%d) contains %d" i s))
            q
        end)
      req_sets;
    match !bad with
    | Some e -> Error e
    | None ->
      let t = Coterie.assignment_of_req_sets ~n req_sets in
      if Coterie.intersecting t then Ok ()
      else Error "intersection property violated"
  end

let minimal ~n req_sets =
  Coterie.minimal (Coterie.assignment_of_req_sets ~n req_sets)
