(** Read/write quorums for replica control (paper Section 7: "the proposed
    idea can be used in replicated data management, as long as the quorum
    being used supports replica control").

    Replica control needs two families: write quorums that pairwise
    intersect (so the mutex/version order is total — this is where the
    delay-optimal algorithm plugs in) and read quorums that intersect every
    write quorum (so a read always sees the newest committed version).
    Reads may then be much cheaper than writes. *)

type scheme =
  | Rowa  (** read-one / write-all: cheapest reads, fragile writes *)
  | Majority_rw  (** r + w > N with w a majority: balanced *)
  | Grid_rw  (** read = one row, write = row + column: O(√N) both ways *)
  | Tree_rw  (** both sides use Agrawal–El Abbadi tree quorums *)

val scheme_name : scheme -> string

type t = private {
  n : int;
  reads : int list array;  (** read quorum used by each site *)
  writes : int list array;  (** write quorum used by each site *)
  read_oracle : bool array -> bool;
  write_oracle : bool array -> bool;
}

val create : scheme -> n:int -> t

val validate : t -> (unit, string) result
(** Checks write-write and read-write intersection over all assigned
    quorums. *)

val read_size : t -> float
val write_size : t -> float
(** Mean quorum sizes. *)

val read_available : t -> up:bool array -> bool
val write_available : t -> up:bool array -> bool
(** Does some read (resp. write) quorum of the scheme's full family consist
    of live sites? (For majority this is any r/w live sites, not just the
    per-site windows; for grid/tree, the construction's whole coterie.) *)

val availability :
  t -> p_up:float -> trials:int -> seed:int -> float * float
(** Monte-Carlo (read, write) availability under iid site failures. *)
