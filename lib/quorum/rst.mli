(** Rangarajan–Setia–Tripathi quorums (reference [11] of the paper): the
    dual of {!Grid_set} — a {e Maekawa-like grid over the groups} at the
    upper level and {e majority voting inside each subgroup} at the lower
    level.

    A quorum selects a grid quorum of groups (the home group's row and
    column in the group grid) and, inside every selected group, a majority
    of that group's members. Two quorums share a group (grid quorums
    intersect) and within it their majorities intersect. Quorum size
    ≈ ⌈(G+1)/2⌉ · (2√(N/G) − 1), which the paper quotes as
    ((G+1)/2)·√(N/G). A minority of any subgroup can fail with no recovery
    action needed. *)

type t

val create : n:int -> group:int -> t
val n : t -> int
val groups : t -> int
val quorum_size_estimate : t -> int
val req_set : t -> int -> int list
val req_sets : n:int -> group:int -> int list array
val has_live_quorum : t -> up:bool array -> bool
