type scheme = Rowa | Majority_rw | Grid_rw | Tree_rw

let scheme_name = function
  | Rowa -> "rowa"
  | Majority_rw -> "majority-rw"
  | Grid_rw -> "grid-rw"
  | Tree_rw -> "tree-rw"

type t = {
  n : int;
  reads : int list array;
  writes : int list array;
  read_oracle : bool array -> bool;
  write_oracle : bool array -> bool;
}

let window ~n ~len start =
  Coterie.normalize_quorum (List.init len (fun k -> (start + k) mod n))

let count_live up = Array.fold_left (fun a b -> if b then a + 1 else a) 0 up

let create scheme ~n =
  if n <= 0 then invalid_arg "Rw_quorum.create: n must be positive";
  match scheme with
  | Rowa ->
    {
      n;
      reads = Array.init n (fun s -> [ s ]);
      writes = Array.init n (fun _ -> List.init n Fun.id);
      read_oracle = (fun up -> count_live up >= 1);
      write_oracle = (fun up -> count_live up = n);
    }
  | Majority_rw ->
    let w = (n / 2) + 1 in
    let r = n + 1 - w in
    {
      n;
      reads = Array.init n (window ~n ~len:r);
      writes = Array.init n (window ~n ~len:w);
      (* ANY r (resp. w) live sites form a quorum, not just the windows *)
      read_oracle = (fun up -> count_live up >= r);
      write_oracle = (fun up -> count_live up >= w);
    }
  | Grid_rw ->
    let g = Grid.create ~n in
    let cols = Grid.cols g in
    let full_row r = ((r + 1) * cols) - 1 < n in
    let row_members r = List.init cols (fun j -> (r * cols) + j) in
    let reads =
      Array.init n (fun s ->
          let r, _ = Grid.position g s in
          (* sites in a partial last row read a full row instead, keeping
             the read-write intersection argument valid on ragged grids *)
          if full_row r then row_members r else row_members 0)
    in
    let any_full_row up =
      let rec loop r =
        r * cols < n
        && ((full_row r
            && List.for_all (fun s -> up.(s)) (row_members r))
           || loop (r + 1))
      in
      loop 0
    in
    {
      n;
      reads;
      writes = Grid.req_sets ~n;
      read_oracle = any_full_row;
      write_oracle = (fun up -> Grid.has_live_quorum g ~up);
    }
  | Tree_rw ->
    let sets = Tree_quorum.req_sets ~n in
    let tree = Tree_quorum.create ~n in
    let oracle up = Tree_quorum.has_live_quorum tree ~up in
    {
      n;
      reads = Array.map Fun.id sets;
      writes = sets;
      read_oracle = oracle;
      write_oracle = oracle;
    }

let validate t =
  let inter a b = Coterie.quorum_inter a b <> [] in
  let bad = ref None in
  Array.iteri
    (fun i w ->
      Array.iteri
        (fun j w' ->
          if !bad = None && not (inter w w') then
            bad := Some (Printf.sprintf "write(%d) and write(%d) disjoint" i j))
        t.writes;
      Array.iteri
        (fun j r ->
          if !bad = None && not (inter r w) then
            bad := Some (Printf.sprintf "read(%d) and write(%d) disjoint" j i))
        t.reads)
    t.writes;
  match !bad with Some e -> Error e | None -> Ok ()

let mean_size sets =
  let total = Array.fold_left (fun acc q -> acc + List.length q) 0 sets in
  float_of_int total /. float_of_int (Array.length sets)

let read_size t = mean_size t.reads
let write_size t = mean_size t.writes

let read_available t ~up = t.read_oracle up
let write_available t ~up = t.write_oracle up

let availability t ~p_up ~trials ~seed =
  if trials <= 0 then invalid_arg "Rw_quorum.availability: trials";
  let rng = Dmx_sim.Rng.create seed in
  let up = Array.make t.n true in
  let r_hits = ref 0 and w_hits = ref 0 in
  for _ = 1 to trials do
    for i = 0 to t.n - 1 do
      up.(i) <- Dmx_sim.Rng.float rng 1.0 < p_up
    done;
    if read_available t ~up then incr r_hits;
    if write_available t ~up then incr w_hits
  done;
  ( float_of_int !r_hits /. float_of_int trials,
    float_of_int !w_hits /. float_of_int trials )
