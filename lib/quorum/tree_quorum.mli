(** Agrawal–El Abbadi tree quorums (reference [1] of the paper).

    The N sites are the nodes of a complete binary tree (array layout,
    node 0 = root). A quorum is any root-to-leaf path; when a node on the
    path has failed it is replaced by {e two} paths, one through each of
    its children down to leaves. Quorum size is ⌈log₂(N+1)⌉ with no
    failures and degrades gracefully toward ⌈(N+1)/2⌉ (the leaf majority)
    under failures; availability is the best of the constructions in this
    repo for small K. *)

type t

val create : n:int -> t
val depth : t -> int

val req_set : t -> int -> int list
(** All-sites-up quorum through the given site: the path from the root down
    to the site, extended from the site to its leftmost leaf. *)

val req_sets : n:int -> int list array

val quorum : t -> available:(int -> bool) -> int list option
(** The Agrawal–El Abbadi recursive construction under failures: [None]
    when no live quorum exists (e.g. both children of a dead node are
    unobtainable). Prefers left children, so the result is deterministic. *)

val quorum_avoiding : t -> avoid:int list -> int list option
(** Convenience wrapper of {!quorum}: treat [avoid] as failed. *)

val quorum_family : t -> int list list
(** The full recursive quorum family: paths where each node is either taken
    or replaced by both child-subtree quorums. Exponential in depth —
    intended for validating the intersection property on small n. *)

val has_live_quorum : t -> up:bool array -> bool
