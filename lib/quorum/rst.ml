type t = { n : int; group : int; n_groups : int; group_grid : Grid.t }

let create ~n ~group =
  if n <= 0 then invalid_arg "Rst.create: n must be positive";
  if group < 1 || group > n then invalid_arg "Rst.create: bad group size";
  let n_groups = (n + group - 1) / group in
  { n; group; n_groups; group_grid = Grid.create ~n:n_groups }

let n t = t.n
let groups t = t.n_groups
let group_of t s = s / t.group

let group_members t g =
  let lo = g * t.group in
  let hi = min t.n (lo + t.group) in
  List.init (hi - lo) (fun k -> lo + k)

let subgroup_majority t g =
  (List.length (group_members t g) / 2) + 1

(* Majority of group [g], anchored to include [anchor] when it belongs. *)
let inner_majority t g anchor =
  let members = Array.of_list (group_members t g) in
  let size = Array.length members in
  let m = (size / 2) + 1 in
  let start =
    match Array.find_index (fun s -> s = anchor) members with
    | Some i -> i
    | None -> 0
  in
  List.init m (fun k -> members.((start + k) mod size))

let quorum_size_estimate t =
  let per_group = (t.group / 2) + 1 in
  (Grid.cols t.group_grid + Grid.rows t.group_grid - 1) * per_group

let req_set t s =
  if s < 0 || s >= t.n then invalid_arg "Rst.req_set: site out of range";
  let home = group_of t s in
  let chosen_groups = Grid.req_set t.group_grid home in
  Coterie.normalize_quorum
    (List.concat_map (fun g -> inner_majority t g s) chosen_groups)

let req_sets ~n ~group =
  let t = create ~n ~group in
  Array.init n (req_set t)

let has_live_quorum t ~up =
  if Array.length up <> t.n then invalid_arg "Rst.has_live_quorum";
  let group_ok g =
    let members = group_members t g in
    let alive = List.length (List.filter (fun s -> up.(s)) members) in
    alive >= subgroup_majority t g
  in
  let ok = Array.init t.n_groups group_ok in
  Grid.has_live_quorum t.group_grid ~up:ok
