(** Hierarchical Quorum Consensus (Kumar; reference [4] of the paper).

    Sites are the leaves of a multilevel tree; a quorum is formed by
    recursively assembling majorities: at each internal node, take quorums
    from a majority of its children. With the classic ternary hierarchy
    (branching 3 at every level, majority 2-of-3), the quorum size is
    2^levels = N^(log₃ 2) ≈ N^0.63 — between Maekawa's √N and majority's
    N/2, with availability close to majority's.

    Arbitrary branching vectors are supported; [create ~n] picks the pure
    ternary hierarchy and therefore requires N = 3^k. *)

type t

val create : n:int -> t
(** Ternary hierarchy. @raise Invalid_argument unless [n] is a power of 3. *)

val create_branching : int list -> t
(** [create_branching [b1; ...; bk]] builds a hierarchy with [bi] children
    at level i; N = b1 * ... * bk. Each [bi] must be ≥ 1. *)

val n : t -> int
val quorum_size : t -> int
(** Size of every quorum: Π ⌈(bi+1)/2⌉. *)

val req_set : t -> int -> int list
(** Canonical quorum containing the given site. *)

val req_sets : n:int -> int list array
val has_live_quorum : t -> up:bool array -> bool
val availability : t -> p_up:float -> float
(** Exact, by the level recursion on majority-of-children. *)
