(** Maekawa-style grid quorums.

    Sites are arranged in a near-square grid; the quorum of a site is its
    full row plus its full column, giving K = r + c - 1 ≈ 2√N - 1. Any two
    quorums intersect because one's row crosses the other's column. This is
    the simple, always-constructible variant of Maekawa's √N idea; the
    projective-plane construction in {!Fpp} achieves K ≈ √N exactly when
    the plane exists. Non-square N leaves the last row partial; intersection
    still holds because when both crossing cells are missing the two sites
    share the partial row itself. *)

type t

val create : n:int -> t
val rows : t -> int
val cols : t -> int
val position : t -> int -> int * int
(** (row, column) of a site. *)

val req_set : t -> int -> int list
(** The row-plus-column quorum of a site, sorted, including the site. *)

val req_sets : n:int -> int list array
(** All request sets at once. *)

val has_live_quorum : t -> up:bool array -> bool
(** Does any site's quorum consist entirely of live sites? (Availability
    oracle for Monte Carlo experiments.) *)
