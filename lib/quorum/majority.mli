(** Majority voting quorums (Thomas; reference [18] of the paper).

    Any ⌈(N+1)/2⌉ sites form a quorum: two majorities always share a site.
    Message complexity is O(N) but availability is the maximum possible for
    a symmetric scheme, which is why the paper uses majority voting as the
    high-resiliency end of the tradeoff spectrum. *)

val quorum_size : n:int -> int
(** ⌈(N+1)/2⌉; for even N, N/2 + 1. *)

val req_set : n:int -> int -> int list
(** Canonical majority for a site: the window [i, i+m) modulo N, so request
    sets are spread evenly instead of all hammering sites 0..m-1. *)

val req_sets : n:int -> int list array

val is_quorum : n:int -> int list -> bool
val has_live_quorum : n:int -> up:bool array -> bool
val availability : n:int -> p_up:float -> float
(** Exact: probability at least ⌈(N+1)/2⌉ of N iid sites are up. *)
