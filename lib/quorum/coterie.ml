type quorum = int list
type t = { n : int; quorums : quorum list }

let normalize_quorum q = List.sort_uniq Int.compare q

let make ~n qs =
  if n <= 0 then invalid_arg "Coterie.make: n must be positive";
  let check q =
    if q = [] then invalid_arg "Coterie.make: empty quorum";
    List.iter
      (fun s ->
        if s < 0 || s >= n then
          invalid_arg (Printf.sprintf "Coterie.make: site %d outside [0,%d)" s n))
      q
  in
  let qs = List.map normalize_quorum qs in
  List.iter check qs;
  (* Drop duplicate quorums while keeping first-seen order. *)
  let seen = Hashtbl.create 16 in
  let qs =
    List.filter
      (fun q ->
        if Hashtbl.mem seen q then false
        else begin
          Hashtbl.add seen q ();
          true
        end)
      qs
  in
  { n; quorums = qs }

let quorums t = t.quorums
let universe_size t = t.n

let rec quorum_mem x = function
  | [] -> false
  | y :: rest -> if y = x then true else if y > x then false else quorum_mem x rest

let rec quorum_inter a b =
  match (a, b) with
  | [], _ | _, [] -> []
  | x :: a', y :: b' ->
    if x = y then x :: quorum_inter a' b'
    else if x < y then quorum_inter a' b
    else quorum_inter a b'

let rec quorum_subset a b =
  match (a, b) with
  | [], _ -> true
  | _, [] -> false
  | x :: a', y :: b' ->
    if x = y then quorum_subset a' b'
    else if x > y then quorum_subset a b'
    else false

let pairwise p l =
  let rec loop = function
    | [] -> true
    | x :: rest -> List.for_all (p x) rest && loop rest
  in
  loop l

let intersecting t =
  pairwise (fun g h -> quorum_inter g h <> []) t.quorums

let minimal t =
  pairwise
    (fun g h -> not (quorum_subset g h || quorum_subset h g))
    t.quorums

let is_coterie t =
  t.quorums <> []
  && List.for_all (fun q -> q <> []) t.quorums
  && intersecting t && minimal t

let dominates c d =
  c.quorums <> d.quorums
  && List.for_all
       (fun h -> List.exists (fun g -> quorum_subset g h) c.quorums)
       d.quorums

let assignment_of_req_sets ~n req_sets =
  make ~n (Array.to_list req_sets)

(* Lazy request-set assignments: one quorum per site, generated on demand.
   This is the huge-N interface — nothing here is proportional to n. *)

type assignment = { univ : int; gen : int -> quorum }

let assignment ~n gen =
  if n < 0 then invalid_arg "Coterie.assignment: n must be non-negative";
  { univ = n; gen }

let of_req_sets req_sets =
  let n = Array.length req_sets in
  { univ = n; gen = (fun i -> req_sets.(i)) }

let quorum_of a site =
  if site < 0 || site >= a.univ then
    invalid_arg
      (Printf.sprintf "Coterie.quorum_of: site %d outside [0,%d)" site a.univ);
  a.gen site

let assignment_size a = a.univ

let materialize a =
  assignment_of_req_sets ~n:a.univ (Array.init a.univ a.gen)

let to_req_sets a = Array.init a.univ a.gen

let pp_quorum ppf q =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int q))

let pp ppf t =
  Format.fprintf ppf "@[<v>coterie over %d sites:@,%a@]" t.n
    (Format.pp_print_list pp_quorum)
    t.quorums
