(* Points and lines of PG(2,q) are the normalized nonzero triples over GF(q):
   (1,a,b), (0,1,a), (0,0,1). A point lies on a line iff their dot product is
   0 mod q. Both families are enumerated in the same canonical order, so the
   plane is self-dual under the identity map. *)

let is_prime q =
  q >= 2
  &&
  let rec loop d = d * d > q || (q mod d <> 0 && loop (d + 1)) in
  loop 2

let order_for n =
  (* Solve q^2 + q + 1 = n for integer prime q. *)
  let rec search q =
    let v = (q * q) + q + 1 in
    if v > n then None else if v = n && is_prime q then Some q else search (q + 1)
  in
  search 1

let supported_sizes ~max =
  let rec loop q acc =
    let v = (q * q) + q + 1 in
    if v > max then List.rev acc
    else loop (q + 1) (if is_prime q then v :: acc else acc)
  in
  loop 2 []

type t = {
  n : int;
  q : int;
  points : (int * int * int) array;
  lines_by_index : int list array;  (* line index -> member point indices *)
  line_of_point : int array;  (* canonical line through each point *)
}

let normalized_triples q =
  let acc = ref [] in
  for a = q - 1 downto 0 do
    for b = q - 1 downto 0 do
      acc := (1, a, b) :: !acc
    done
  done;
  for a = q - 1 downto 0 do
    acc := (0, 1, a) :: !acc
  done;
  acc := (0, 0, 1) :: !acc;
  Array.of_list (List.rev !acc)

let dot q (a1, a2, a3) (b1, b2, b3) = ((a1 * b1) + (a2 * b2) + (a3 * b3)) mod q

let create ~n =
  match order_for n with
  | None ->
    invalid_arg
      (Printf.sprintf
         "Fpp.create: %d is not q^2+q+1 for a prime q (try sizes %s)" n
         (String.concat ", "
            (List.map string_of_int (supported_sizes ~max:200))))
  | Some q ->
    let points = normalized_triples q in
    assert (Array.length points = n);
    let lines_by_index =
      Array.map
        (fun line ->
          let members = ref [] in
          Array.iteri
            (fun i p -> if dot q p line = 0 then members := i :: !members)
            points;
          List.rev !members)
        points
    in
    let line_of_point = Array.make n (-1) in
    Array.iteri
      (fun li members ->
        List.iter
          (fun p -> if line_of_point.(p) < 0 then line_of_point.(p) <- li)
          members)
      lines_by_index;
    { n; q; points; lines_by_index; line_of_point }

let order t = t.q
let lines t = Array.to_list t.lines_by_index

let req_set t s =
  if s < 0 || s >= t.n then invalid_arg "Fpp.req_set: site out of range";
  t.lines_by_index.(t.line_of_point.(s))

let req_sets ~n =
  let t = create ~n in
  Array.init n (req_set t)

let has_live_quorum t ~up =
  if Array.length up <> t.n then invalid_arg "Fpp.has_live_quorum";
  Array.exists (fun line -> List.for_all (fun p -> up.(p)) line) t.lines_by_index
