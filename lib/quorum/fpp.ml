(* Points and lines of PG(2,q) are the normalized nonzero triples over GF(q):
   (1,a,b), (0,1,a), (0,0,1). A point lies on a line iff their dot product is
   0 mod q. Both families are enumerated in the same canonical order, so the
   plane is self-dual under the identity map. *)

let is_prime q =
  q >= 2
  &&
  let rec loop d = d * d > q || (q mod d <> 0 && loop (d + 1)) in
  loop 2

let order_for n =
  (* Solve q^2 + q + 1 = n for integer prime q. *)
  let rec search q =
    let v = (q * q) + q + 1 in
    if v > n then None else if v = n && is_prime q then Some q else search (q + 1)
  in
  search 1

let supported_sizes ~max =
  let rec loop q acc =
    let v = (q * q) + q + 1 in
    if v > max then List.rev acc
    else loop (q + 1) (if is_prime q then v :: acc else acc)
  in
  loop 2 []

type t = {
  n : int;
  q : int;
  points : (int * int * int) array;
  lines_by_index : int list array;  (* line index -> member point indices *)
  line_of_point : int array;  (* canonical line through each point *)
}

let normalized_triples q =
  let acc = ref [] in
  for a = q - 1 downto 0 do
    for b = q - 1 downto 0 do
      acc := (1, a, b) :: !acc
    done
  done;
  for a = q - 1 downto 0 do
    acc := (0, 1, a) :: !acc
  done;
  acc := (0, 0, 1) :: !acc;
  Array.of_list (List.rev !acc)

let dot q (a1, a2, a3) (b1, b2, b3) = ((a1 * b1) + (a2 * b2) + (a3 * b3)) mod q

let create ~n =
  match order_for n with
  | None ->
    invalid_arg
      (Printf.sprintf
         "Fpp.create: %d is not q^2+q+1 for a prime q (try sizes %s)" n
         (String.concat ", "
            (List.map string_of_int (supported_sizes ~max:200))))
  | Some q ->
    let points = normalized_triples q in
    assert (Array.length points = n);
    let lines_by_index =
      Array.map
        (fun line ->
          let members = ref [] in
          Array.iteri
            (fun i p -> if dot q p line = 0 then members := i :: !members)
            points;
          List.rev !members)
        points
    in
    let line_of_point = Array.make n (-1) in
    Array.iteri
      (fun li members ->
        List.iter
          (fun p -> if line_of_point.(p) < 0 then line_of_point.(p) <- li)
          members)
      lines_by_index;
    { n; q; points; lines_by_index; line_of_point }

let order t = t.q
let lines t = Array.to_list t.lines_by_index

let req_set t s =
  if s < 0 || s >= t.n then invalid_arg "Fpp.req_set: site out of range";
  t.lines_by_index.(t.line_of_point.(s))

let req_sets ~n =
  let t = create ~n in
  Array.init n (req_set t)

(* --- Algebraic per-site path (huge N) ---

   [create] scans all N lines against all N points (O(N·√N) work and O(N·√N)
   memory), which is fine as a small-N reference but hopeless at N = 10^6.
   The lazy path below reproduces [req_set] exactly — same canonical
   (minimum-index) line, same ascending member order — in O(q) time and
   memory per site, straight from the GF(q) arithmetic.

   Point/line indexing follows [normalized_triples]: index i < q² encodes
   (1, q−1−i/q, q−1−i mod q); q² ≤ i < q²+q encodes (0, 1, q−1−(i−q²));
   i = q²+q is (0,0,1). The canonical line of a point is the lowest-index
   line through it, which by that ordering is the line (1, q−1, b) when one
   exists (i.e. when p₃ ≠ 0), else (1, a, q−1), else (0, 1, q−1). *)

let rec powmod b e m =
  if e = 0 then 1
  else
    let h = powmod b (e / 2) m in
    let h2 = h * h mod m in
    if e land 1 = 1 then h2 * b mod m else h2

(* Fermat inverse; q is prime and x is nonzero mod q at every call site. *)
let inv x q = powmod (x mod q) (q - 2) q
let neg x q = (q - (x mod q)) mod q

let point_of_index q i =
  if i < q * q then (1, q - 1 - (i / q), q - 1 - (i mod q))
  else if i < (q * q) + q then (0, 1, q - 1 - (i - (q * q)))
  else (0, 0, 1)

let index_of_point q (p1, p2, p3) =
  if p1 = 1 then ((q - 1 - p2) * q) + (q - 1 - p3)
  else if p2 = 1 then (q * q) + (q - 1 - p3)
  else (q * q) + q

let canonical_line q (p1, p2, p3) =
  if p3 <> 0 then (1, q - 1, neg (p1 + ((q - 1) * p2)) q * inv p3 q mod q)
  else if p2 <> 0 then (1, neg p1 q * inv p2 q mod q, q - 1)
  else (0, 1, q - 1)

(* Members of a canonical line in ascending point-index order. Canonical
   lines always have l2 ≠ 0 or l3 ≠ 0, so the two-way split is total. *)
let line_members q (l1, l2, l3) =
  let part1 =
    if l3 <> 0 then
      let i3 = inv l3 q in
      List.init q (fun k ->
          let x = q - 1 - k in
          index_of_point q (1, x, neg (l1 + (x * l2)) q * i3 mod q))
    else
      let x0 = neg l1 q * inv l2 q mod q in
      List.init q (fun k -> index_of_point q (1, x0, q - 1 - k))
  in
  let part2 =
    if l3 <> 0 then [ index_of_point q (0, 1, neg l2 q * inv l3 q mod q) ]
    else []
  in
  let part3 = if l3 = 0 then [ (q * q) + q ] else [] in
  part1 @ part2 @ part3

let req_set_of_order ~q s =
  line_members q (canonical_line q (point_of_index q s))

let assignment ~n =
  match order_for n with
  | None ->
    invalid_arg
      (Printf.sprintf "Fpp.assignment: %d is not q^2+q+1 for a prime q" n)
  | Some q -> Coterie.assignment ~n (fun s -> req_set_of_order ~q s)

let has_live_quorum t ~up =
  if Array.length up <> t.n then invalid_arg "Fpp.has_live_quorum";
  Array.exists (fun line -> List.for_all (fun p -> up.(p)) line) t.lines_by_index
