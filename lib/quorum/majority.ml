let quorum_size ~n =
  if n <= 0 then invalid_arg "Majority.quorum_size";
  (n / 2) + 1

let req_set ~n i =
  if i < 0 || i >= n then invalid_arg "Majority.req_set: site out of range";
  let m = quorum_size ~n in
  Coterie.normalize_quorum (List.init m (fun k -> (i + k) mod n))

let req_sets ~n = Array.init n (req_set ~n)

let is_quorum ~n q =
  let q = Coterie.normalize_quorum q in
  List.length q >= quorum_size ~n
  && List.for_all (fun s -> s >= 0 && s < n) q

let has_live_quorum ~n ~up =
  if Array.length up <> n then invalid_arg "Majority.has_live_quorum";
  let alive = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 up in
  alive >= quorum_size ~n

let availability ~n ~p_up =
  (* Binomial tail computed with incremental term updates to avoid
     factorial overflow. *)
  if p_up < 0.0 || p_up > 1.0 then invalid_arg "Majority.availability";
  let m = quorum_size ~n in
  let q = 1.0 -. p_up in
  (* term_k = C(n,k) p^k q^(n-k); start at k=0 and walk up. *)
  let total = ref 0.0 in
  let term = ref (q ** float_of_int n) in
  for k = 0 to n do
    if k >= m then total := !total +. !term;
    if k < n then begin
      let ratio =
        float_of_int (n - k) /. float_of_int (k + 1) *. (p_up /. q)
      in
      term := !term *. ratio
    end
  done;
  if q = 0.0 then (if m <= n then 1.0 else 0.0) else Float.min 1.0 !total
