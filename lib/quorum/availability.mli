(** Quorum availability under independent site failures (Section 6).

    Availability = probability that at least one quorum of the coterie is
    entirely alive when each site is independently up with probability
    [p_up]. This is the quantity behind the paper's resiliency claims for
    the fault-tolerant constructions; experiment E8 plots it for every
    construction in the repo. *)

val exact : Builder.kind -> n:int -> p_up:float -> float option
(** Closed-form/exact recursion where one is known: [Majority], [Hqc],
    [Tree] (subtree recursion), [Star], [All]. [None] for the rest. *)

val monte_carlo :
  Builder.kind -> n:int -> p_up:float -> trials:int -> seed:int -> float
(** Generic estimate via the construction's live-quorum oracle. *)

val estimate :
  ?trials:int -> ?seed:int -> Builder.kind -> n:int -> p_up:float -> float
(** [exact] if available, otherwise [monte_carlo] (default 20_000 trials,
    seed 7). *)
