(** Finite-projective-plane quorums (Maekawa's √N construction).

    For a prime q, the projective plane PG(2,q) has N = q² + q + 1 points
    and equally many lines; every line carries q + 1 ≈ √N points and any
    two lines meet in exactly one point. Using points as sites and lines as
    quorums yields Maekawa's optimal symmetric coterie: K = √N (up to the
    +1), every site appears in exactly K quorums, and all quorums pairwise
    intersect in exactly one site.

    Only prime orders are supported (prime-power fields would need GF(p^k)
    arithmetic for a vanishing set of extra sizes); use {!Grid} for other
    N. *)

val order_for : int -> int option
(** [order_for n] is [Some q] when [n = q² + q + 1] for a prime [q]. *)

val supported_sizes : max:int -> int list
(** All n ≤ max for which the construction applies: 7, 13, 21, 31, 57, 133,
    183, ... *)

type t

val create : n:int -> t
(** @raise Invalid_argument when {!order_for} [n] is [None]. *)

val order : t -> int
val lines : t -> int list list
(** All N lines (the full coterie). *)

val req_set : t -> int -> int list
(** A canonical line through the given point: the request set of that
    site. Every returned line contains the site. *)

val req_sets : n:int -> int list array

val assignment : n:int -> Coterie.assignment
(** Lazy equivalent of {!req_sets}: site [i]'s canonical line is computed
    algebraically from the GF(q) coordinates in O(√N) time and memory,
    without materializing the plane. Agrees with {!req_set} site-for-site.
    @raise Invalid_argument when {!order_for} [n] is [None]. *)

val req_set_of_order : q:int -> int -> int list
(** The algebraic kernel behind {!assignment}, for a known prime order. *)

val has_live_quorum : t -> up:bool array -> bool
