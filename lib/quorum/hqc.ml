type t = { n : int; branching : int list }

let create_branching branching =
  if branching = [] then invalid_arg "Hqc.create_branching: empty";
  List.iter
    (fun b -> if b < 1 then invalid_arg "Hqc.create_branching: branch < 1")
    branching;
  { n = List.fold_left ( * ) 1 branching; branching }

let create ~n =
  let rec levels n acc =
    if n = 1 then Some acc
    else if n mod 3 = 0 then levels (n / 3) (3 :: acc)
    else None
  in
  match levels n [] with
  | Some branching when branching <> [] -> { n; branching }
  | _ ->
    invalid_arg
      (Printf.sprintf "Hqc.create: %d is not a power of 3 (>= 3); use \
                       create_branching for other shapes" n)

let n t = t.n

let majority_of b = (b / 2) + 1

let quorum_size t =
  List.fold_left (fun acc b -> acc * majority_of b) 1 t.branching

(* Quorum containing leaf [i], assembled by taking at every level the child
   holding [i] plus the cyclically-next children to complete the majority;
   other chosen children contribute their canonical (first-leaf) quorums. *)
let req_set t i =
  if i < 0 || i >= t.n then invalid_arg "Hqc.req_set: site out of range";
  let rec go branching lo size i =
    match branching with
    | [] -> [ lo ]
    | b :: rest ->
      let child_size = size / b in
      let ci = (i - lo) / child_size in
      let m = majority_of b in
      let chosen = List.init m (fun k -> (ci + k) mod b) in
      List.concat_map
        (fun c ->
          let child_lo = lo + (c * child_size) in
          let anchor = if c = ci then i else child_lo in
          go rest child_lo child_size anchor)
        chosen
  in
  Coterie.normalize_quorum (go t.branching 0 t.n i)

let req_sets ~n =
  let t = create ~n in
  Array.init n (req_set t)

let has_live_quorum t ~up =
  if Array.length up <> t.n then invalid_arg "Hqc.has_live_quorum";
  let rec live branching lo size =
    match branching with
    | [] -> up.(lo)
    | b :: rest ->
      let child_size = size / b in
      let alive = ref 0 in
      for c = 0 to b - 1 do
        if live rest (lo + (c * child_size)) child_size then incr alive
      done;
      !alive >= majority_of b
  in
  live t.branching 0 t.n

let binomial_tail ~trials ~at_least ~p =
  let q = 1.0 -. p in
  if q <= 0.0 then if at_least <= trials then 1.0 else 0.0
  else begin
    let total = ref 0.0 in
    let term = ref (q ** float_of_int trials) in
    for k = 0 to trials do
      if k >= at_least then total := !total +. !term;
      if k < trials then
        term :=
          !term *. (float_of_int (trials - k) /. float_of_int (k + 1)) *. (p /. q)
    done;
    Float.min 1.0 !total
  end

let availability t ~p_up =
  if p_up < 0.0 || p_up > 1.0 then invalid_arg "Hqc.availability";
  (* Bottom-up: a leaf is available with probability p_up; a level-ℓ node is
     available iff a majority of its children are. *)
  List.fold_left
    (fun child_avail b ->
      binomial_tail ~trials:b ~at_least:(majority_of b) ~p:child_avail)
    p_up
    (List.rev t.branching)
