(** Grid-set quorums (Cheung–Ammar–Ahamad style; reference [2] of the
    paper): two levels, {e majority voting over groups} at the upper level
    for resiliency and a {e Maekawa-like grid inside each group} at the
    lower level to cut messages.

    A quorum selects a majority of the site groups and, inside every
    selected group, a full grid quorum over that group's members. Two
    quorums share at least one group (majorities intersect) and inside the
    shared group their grid quorums intersect, so the Intersection Property
    holds. Quorum size ≈ ⌈(N/G+1)/2⌉ · (2√G − 1), where G is the group
    size. A whole minority of groups can fail without any recovery
    action. *)

type t

val create : n:int -> group:int -> t
(** Sites [0..n-1] are split into ⌈n/G⌉ groups of [group] consecutive
    sites (the last group may be smaller).
    @raise Invalid_argument if [group] is not in [1, n]. *)

val n : t -> int
val groups : t -> int
val quorum_size_estimate : t -> int
val req_set : t -> int -> int list
val req_sets : n:int -> group:int -> int list array
val has_live_quorum : t -> up:bool array -> bool
