type t = { n : int }

let create ~n =
  if n <= 0 then invalid_arg "Tree_quorum.create: n must be positive";
  { n }

let left s = (2 * s) + 1
let right s = (2 * s) + 2
let exists t s = s < t.n

let depth t =
  let rec loop s d = if exists t s then loop (left s) (d + 1) else d in
  loop 0 0

(* Path from the root to [s] in the array-encoded binary tree. *)
let path_to_root t s =
  if s < 0 || s >= t.n then invalid_arg "Tree_quorum: site out of range";
  let rec up s acc = if s = 0 then 0 :: acc else up ((s - 1) / 2) (s :: acc) in
  up s []

let rec descend_leftmost t s acc =
  if exists t (left s) then descend_leftmost t (left s) (left s :: acc)
  else acc

let req_set t s =
  let prefix = path_to_root t s in
  Coterie.normalize_quorum (descend_leftmost t s prefix)

let req_sets ~n =
  let t = create ~n in
  Array.init n (req_set t)

(* GetQuorum(T): if the root is up, root :: quorum of either subtree; if the
   root is down, quorums of BOTH subtrees. A node with a single child (the
   array-complete tree's ragged edge) must continue through that child —
   terminating there would create quorums disjoint from the child's own
   substitutions. A dead leaf yields failure. *)
let quorum t ~available =
  let rec get s =
    let l = left s and r = right s in
    if available s then
      if not (exists t l) then Some [ s ]
      else if not (exists t r) then Option.map (fun q -> s :: q) (get l)
      else begin
        match get l with
        | Some q -> Some (s :: q)
        | None ->
          (match get r with Some q -> Some (s :: q) | None -> None)
      end
    else if not (exists t l) then None
    else if not (exists t r) then get l
    else begin
      match (get l, get r) with
      | Some a, Some b -> Some (a @ b)
      | _ -> None
    end
  in
  Option.map Coterie.normalize_quorum (get 0)

let quorum_avoiding t ~avoid =
  quorum t ~available:(fun s -> not (List.mem s avoid))

let quorum_family t =
  let rec family s =
    let l = left s and r = right s in
    if not (exists t l) then [ [ s ] ]
    else if not (exists t r) then
      let ls = family l in
      List.map (fun q -> s :: q) ls @ ls
    else begin
      let ls = family l and rs = family r in
      let through = List.map (fun q -> s :: q) (ls @ rs) in
      let substituted =
        List.concat_map (fun a -> List.map (fun b -> a @ b) rs) ls
      in
      through @ substituted
    end
  in
  List.sort_uniq compare (List.map Coterie.normalize_quorum (family 0))

let has_live_quorum t ~up =
  if Array.length up <> t.n then invalid_arg "Tree_quorum.has_live_quorum";
  quorum t ~available:(fun s -> up.(s)) <> None
