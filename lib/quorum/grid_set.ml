type t = { n : int; group : int; n_groups : int }

let create ~n ~group =
  if n <= 0 then invalid_arg "Grid_set.create: n must be positive";
  if group < 1 || group > n then invalid_arg "Grid_set.create: bad group size";
  { n; group; n_groups = (n + group - 1) / group }

let n t = t.n
let groups t = t.n_groups

let group_of t s = s / t.group
let group_members t g =
  let lo = g * t.group in
  let hi = min t.n (lo + t.group) in
  List.init (hi - lo) (fun k -> lo + k)

let majority t = (t.n_groups / 2) + 1

(* Grid quorum inside one group, through [anchor] (a member of the group). *)
let inner_quorum t g anchor =
  let members = Array.of_list (group_members t g) in
  let size = Array.length members in
  let grid = Grid.create ~n:size in
  let local =
    let rec find i = if members.(i) = anchor then i else find (i + 1) in
    find 0
  in
  List.map (fun k -> members.(k)) (Grid.req_set grid local)

let quorum_size_estimate t =
  let g_grid = Grid.create ~n:t.group in
  majority t * (Grid.cols g_grid + Grid.rows g_grid - 1)

let req_set t s =
  if s < 0 || s >= t.n then invalid_arg "Grid_set.req_set: site out of range";
  let home = group_of t s in
  let m = majority t in
  let chosen = List.init m (fun k -> (home + k) mod t.n_groups) in
  let pick g =
    let anchor = if g = home then s else g * t.group in
    inner_quorum t g anchor
  in
  Coterie.normalize_quorum (List.concat_map pick chosen)

let req_sets ~n ~group =
  let t = create ~n ~group in
  Array.init n (req_set t)

let has_live_quorum t ~up =
  if Array.length up <> t.n then invalid_arg "Grid_set.has_live_quorum";
  (* Available iff a majority of groups each contain a live grid quorum. *)
  let group_ok g =
    let members = Array.of_list (group_members t g) in
    let grid = Grid.create ~n:(Array.length members) in
    let local_up = Array.map (fun s -> up.(s)) members in
    Grid.has_live_quorum grid ~up:local_up
  in
  let ok = ref 0 in
  for g = 0 to t.n_groups - 1 do
    if group_ok g then incr ok
  done;
  !ok >= majority t
