(** Coteries and quorums (paper Section 2).

    A coterie [C] under a universe of [n] sites is a set of quorums
    satisfying: every quorum is a non-empty subset of the universe;
    {e Intersection} — any two quorums share a site (this is what yields
    mutual exclusion); {e Minimality} — no quorum contains another (an
    efficiency condition, not needed for safety).

    The mutual exclusion algorithms consume a coterie as a {e request-set
    assignment}: one quorum per site ([req_set(i)]). This module holds the
    explicit representation and the validation predicates used throughout
    the test suite; the construction algorithms live in sibling modules. *)

type quorum = int list
(** Sorted, duplicate-free site ids. *)

type t = private { n : int; quorums : quorum list }

val make : n:int -> int list list -> t
(** Normalizes (sorts, dedups) the given quorums.
    @raise Invalid_argument if a quorum is empty or mentions a site outside
    [0, n). *)

val quorums : t -> quorum list
val universe_size : t -> int

val intersecting : t -> bool
(** Pairwise Intersection Property. *)

val minimal : t -> bool
(** Minimality Property: no quorum is a subset of another. *)

val is_coterie : t -> bool
(** Both properties, plus non-emptiness. *)

val dominates : t -> t -> bool
(** [dominates c d]: coterie [c] dominates [d] — they differ and every
    quorum of [d] contains some quorum of [c]. Non-dominated coteries give
    strictly better availability. *)

val assignment_of_req_sets : n:int -> int list array -> t
(** View a request-set assignment as the coterie of its distinct quorums. *)

type assignment
(** A lazy request-set assignment over [n] sites: site [i]'s quorum is
    generated on demand from the construction's structure (grid row/column,
    tree paths, FPP lines) instead of materializing all [n] quorums. This is
    the huge-N interface — memory is proportional to the quorums actually
    requested, never to [n]. The materialized {!t} stays as the small-N
    reference representation. *)

val assignment : n:int -> (int -> quorum) -> assignment
(** [assignment ~n gen] wraps a generator. [gen i] must return a normalized
    (sorted, duplicate-free) quorum for every [i] in [0, n); it is only ever
    called with in-range sites. *)

val of_req_sets : quorum array -> assignment
(** A lazy view of an already-materialized assignment (small-N reference). *)

val quorum_of : assignment -> int -> quorum
(** [quorum_of a i] is site [i]'s request set, generated on demand.
    @raise Invalid_argument if [i] is outside [0, n). *)

val assignment_size : assignment -> int
(** The universe size [n]. *)

val materialize : assignment -> t
(** Force every quorum and build the explicit coterie — small N only. *)

val to_req_sets : assignment -> quorum array
(** Force every quorum into the array form the algorithms consume —
    small N only. *)

val quorum_mem : int -> quorum -> bool
val quorum_inter : quorum -> quorum -> quorum
val quorum_subset : quorum -> quorum -> bool
val normalize_quorum : int list -> quorum

val pp : Format.formatter -> t -> unit
val pp_quorum : Format.formatter -> quorum -> unit
