(* Ragged grids stay correct without special-casing: for sites A=(ra,ca) and
   B=(rb,cb), cell (ra,cb) or (rb,ca) exists unless both ra and rb are the
   partial last row — in which case the two quorums share that whole row. *)

type t = { n : int; rows : int; cols : int }

let create ~n =
  if n <= 0 then invalid_arg "Grid.create: n must be positive";
  let cols = int_of_float (ceil (sqrt (float_of_int n))) in
  let rows = (n + cols - 1) / cols in
  { n; rows; cols }

let rows t = t.rows
let cols t = t.cols

let position t s =
  if s < 0 || s >= t.n then invalid_arg "Grid.position: site out of range";
  (s / t.cols, s mod t.cols)

let req_set t s =
  let r, c = position t s in
  let row =
    List.filter (fun x -> x < t.n)
      (List.init t.cols (fun j -> (r * t.cols) + j))
  in
  let col =
    List.filter (fun x -> x < t.n)
      (List.init t.rows (fun i -> (i * t.cols) + c))
  in
  Coterie.normalize_quorum (row @ col)

let req_sets ~n =
  let t = create ~n in
  Array.init n (req_set t)

let row_alive t ~up r =
  let len = min t.cols (t.n - (r * t.cols)) in
  let rec loop j = j >= len || (up.((r * t.cols) + j) && loop (j + 1)) in
  len > 0 && loop 0

let col_alive t ~up c =
  let rec loop i =
    let s = (i * t.cols) + c in
    i >= t.rows || s >= t.n || (up.(s) && loop (i + 1))
  in
  c < t.cols && loop 0

let has_live_quorum t ~up =
  if Array.length up <> t.n then invalid_arg "Grid.has_live_quorum";
  (* A live quorum exists iff some site's full row and column are live;
     equivalently some live row r and live column c with cell (r,c) present. *)
  let live_rows = List.filter (row_alive t ~up) (List.init t.rows Fun.id) in
  let live_cols = List.filter (col_alive t ~up) (List.init t.cols Fun.id) in
  List.exists
    (fun r ->
      List.exists (fun c -> (r * t.cols) + c < t.n) live_cols)
    live_rows
