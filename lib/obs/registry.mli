(** A named collection of instruments.

    Handles are resolved once, at setup time ([counter], [gauge],
    [histogram] are get-or-create, so calling with the same name and
    labels again returns the same cell — that is what a "labeled family"
    is: one name, many label values, each resolving to its own cell).
    The record path then touches only the cell. [snapshot] copies every
    cell under the registry mutex into a canonical {!Snapshot.t}, so
    readers (the scrape listener thread, the supervisor) never race
    writers over structured state — cells are ints, and the snapshot is
    fresh immutable data.

    Registries are plain values, not process globals: the live daemons
    create one per process (what [--metrics-port] serves), while the sim
    twin creates one per run so a seeded run's snapshot is a pure
    function of the seed. *)

type t

val create : unit -> t

val counter : ?labels:(string * string) list -> t -> string -> Metric.Counter.t
(** Get-or-create. Raises [Invalid_argument] if [(name, labels)] is
    already registered as a different instrument kind. *)

val gauge : ?labels:(string * string) list -> t -> string -> Metric.Gauge.t
val histogram : ?labels:(string * string) list -> t -> string -> Metric.Histogram.t

val attach_counter :
  ?labels:(string * string) list -> t -> string -> Metric.Counter.t -> unit
(** Bind an existing cell (one owned by a protocol layer such as
    [Dmx_core.Reliable]) under a name. Raises [Invalid_argument] if the
    key is already bound to a different cell or kind. Re-attaching the
    same cell is a no-op. *)

val attach_gauge :
  ?labels:(string * string) list -> t -> string -> Metric.Gauge.t -> unit

val attach_histogram :
  ?labels:(string * string) list -> t -> string -> Metric.Histogram.t -> unit

val probe : ?labels:(string * string) list -> t -> string -> (unit -> int) -> unit
(** Register a counter series whose value is polled at snapshot time —
    for sources that keep their own totals (transport stats structs).
    The closure runs only on the snapshot path, never on a record path.
    Raises [Invalid_argument] on a duplicate key. *)

val gauge_probe :
  ?labels:(string * string) list -> t -> string -> (unit -> int) -> unit
(** Like {!probe} but snapshots as a gauge (queue depth, in-flight). *)

val snapshot : t -> Snapshot.t
val names : t -> string list
(** Registered names, sorted, deduplicated across label sets. *)
