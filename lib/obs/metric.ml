module Counter = struct
  type t = int Atomic.t

  let create () = Atomic.make 0
  let incr t = ignore (Atomic.fetch_and_add t 1)
  let add t n = ignore (Atomic.fetch_and_add t n)
  let get t = Atomic.get t
end

module Gauge = struct
  type t = int Atomic.t

  let create () = Atomic.make 0
  let set t v = Atomic.set t v
  let add t n = ignore (Atomic.fetch_and_add t n)
  let get t = Atomic.get t
end

module Histogram = struct
  type t = {
    buckets : int array;
    mutable count : int;
    mutable sum : int;
    mutable max : int;
  }

  let buckets = 64

  let create () = { buckets = Array.make buckets 0; count = 0; sum = 0; max = 0 }

  (* Bit-length by tail recursion: ints stay unboxed, nothing allocates. *)
  let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1)

  let bucket_of v =
    if v <= 0 then 0
    else
      let b = bits 0 v in
      if b > buckets - 1 then buckets - 1 else b

  let observe t v =
    let b = bucket_of v in
    t.buckets.(b) <- t.buckets.(b) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum + v;
    if v > t.max then t.max <- v

  let observe_s t dt = observe t (int_of_float (dt *. 1e6))
  let count t = t.count
  let sum t = t.sum
  let max t = t.max
  let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count
  let bucket_counts t = Array.copy t.buckets

  let bucket_upper i =
    if i <= 0 then 0
    else if i >= Sys.int_size - 1 then Stdlib.max_int
    else (1 lsl i) - 1

  let quantile t p =
    if t.count = 0 then (
      ignore (Quantile.nearest_rank ~count:1 p) (* still validate p *);
      0)
    else begin
      let rank = Quantile.nearest_rank ~count:t.count p in
      let b = ref 0 and seen = ref 0 in
      while !seen + t.buckets.(!b) <= rank do
        seen := !seen + t.buckets.(!b);
        incr b
      done;
      Stdlib.min (bucket_upper !b) t.max
    end
end
