let schema_version = "dmx-metrics/1"

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let prom_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label v))
           labels)
    ^ "}"

(* [le] bounds plus extra label pairs, rendered together *)
let prom_labels_le labels le =
  let le = ("le", le) in
  prom_labels (labels @ [ le ])

let prometheus (snap : Snapshot.t) =
  let b = Buffer.create 1024 in
  let typed = Hashtbl.create 16 in
  let type_line name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.add typed name ();
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun (s : Snapshot.series) ->
      let name = sanitize s.name in
      match s.value with
      | Snapshot.Counter v ->
        type_line name "counter";
        Buffer.add_string b
          (Printf.sprintf "%s%s %d\n" name (prom_labels s.labels) v)
      | Snapshot.Gauge v ->
        type_line name "gauge";
        Buffer.add_string b
          (Printf.sprintf "%s%s %d\n" name (prom_labels s.labels) v)
      | Snapshot.Histogram h ->
        type_line name "histogram";
        let cum = ref 0 in
        Array.iteri
          (fun i n ->
            if n > 0 || i = 0 then begin
              cum := !cum + n;
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" name
                   (prom_labels_le s.labels
                      (string_of_int (Metric.Histogram.bucket_upper i)))
                   !cum)
            end
            else cum := !cum + n)
          h.buckets;
        Buffer.add_string b
          (Printf.sprintf "%s_bucket%s %d\n" name
             (prom_labels_le s.labels "+Inf") h.count);
        Buffer.add_string b
          (Printf.sprintf "%s_sum%s %d\n" name (prom_labels s.labels) h.sum);
        Buffer.add_string b
          (Printf.sprintf "%s_count%s %d\n" name (prom_labels s.labels)
             h.count))
    snap;
  Buffer.contents b

let json_string v =
  let b = Buffer.create (String.length v + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    v;
  Buffer.add_char b '"';
  Buffer.contents b

let json (snap : Snapshot.t) =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\n  \"schema\": %s,\n  \"series\": [\n"
       (json_string schema_version));
  let labels_json labels =
    "{"
    ^ String.concat ", "
        (List.map
           (fun (k, v) -> json_string k ^ ": " ^ json_string v)
           labels)
    ^ "}"
  in
  List.iteri
    (fun i (s : Snapshot.series) ->
      if i > 0 then Buffer.add_string b ",\n";
      let common =
        Printf.sprintf "\"name\": %s, \"labels\": %s" (json_string s.name)
          (labels_json s.labels)
      in
      (match s.value with
      | Snapshot.Counter v ->
        Buffer.add_string b
          (Printf.sprintf "    {%s, \"kind\": \"counter\", \"value\": %d}"
             common v)
      | Snapshot.Gauge v ->
        Buffer.add_string b
          (Printf.sprintf "    {%s, \"kind\": \"gauge\", \"value\": %d}"
             common v)
      | Snapshot.Histogram h ->
        let buckets =
          h.buckets |> Array.to_list |> List.map string_of_int
          |> String.concat ", "
        in
        Buffer.add_string b
          (Printf.sprintf
             "    {%s, \"kind\": \"histogram\", \"count\": %d, \"sum\": %d, \
              \"max\": %d, \"p50\": %d, \"p90\": %d, \"p99\": %d, \
              \"buckets\": [%s]}"
             common h.count h.sum h.max
             (Snapshot.quantile h 50.0)
             (Snapshot.quantile h 90.0)
             (Snapshot.quantile h 99.0)
             buckets));
      ())
    snap;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b
