type instrument =
  | Counter of Metric.Counter.t
  | Gauge of Metric.Gauge.t
  | Histogram of Metric.Histogram.t
  | Probe of (unit -> int)
  | Gauge_probe of (unit -> int)

type key = { name : string; labels : (string * string) list }
type t = { mu : Mutex.t; table : (key, instrument) Hashtbl.t }

let create () = { mu = Mutex.create (); table = Hashtbl.create 64 }

let key name labels =
  { name; labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"
  | Probe _ | Gauge_probe _ -> "probe"

let mismatch k existing wanted =
  invalid_arg
    (Printf.sprintf "Obs.Registry: %s already registered as a %s, not a %s"
       k.name (kind_name existing) wanted)

let counter ?(labels = []) t name =
  let k = key name labels in
  locked t (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some (Counter c) -> c
      | Some i -> mismatch k i "counter"
      | None ->
        let c = Metric.Counter.create () in
        Hashtbl.add t.table k (Counter c);
        c)

let gauge ?(labels = []) t name =
  let k = key name labels in
  locked t (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some (Gauge g) -> g
      | Some i -> mismatch k i "gauge"
      | None ->
        let g = Metric.Gauge.create () in
        Hashtbl.add t.table k (Gauge g);
        g)

let histogram ?(labels = []) t name =
  let k = key name labels in
  locked t (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some (Histogram h) -> h
      | Some i -> mismatch k i "histogram"
      | None ->
        let h = Metric.Histogram.create () in
        Hashtbl.add t.table k (Histogram h);
        h)

let attach ?(labels = []) t name inst ~same =
  let k = key name labels in
  locked t (fun () ->
      match Hashtbl.find_opt t.table k with
      | None -> Hashtbl.add t.table k inst
      | Some existing ->
        if not (same existing) then
          invalid_arg
            (Printf.sprintf
               "Obs.Registry: %s already bound to a different instrument"
               k.name))

let attach_counter ?labels t name c =
  attach ?labels t name (Counter c) ~same:(function
    | Counter c' -> c' == c
    | _ -> false)

let attach_gauge ?labels t name g =
  attach ?labels t name (Gauge g) ~same:(function
    | Gauge g' -> g' == g
    | _ -> false)

let attach_histogram ?labels t name h =
  attach ?labels t name (Histogram h) ~same:(function
    | Histogram h' -> h' == h
    | _ -> false)

let add_probe ?(labels = []) t name inst =
  let k = key name labels in
  locked t (fun () ->
      if Hashtbl.mem t.table k then
        invalid_arg
          (Printf.sprintf "Obs.Registry: duplicate probe %s" k.name)
      else Hashtbl.add t.table k inst)

let probe ?labels t name f = add_probe ?labels t name (Probe f)
let gauge_probe ?labels t name f = add_probe ?labels t name (Gauge_probe f)

let capture = function
  | Counter c -> Snapshot.Counter (Metric.Counter.get c)
  | Gauge g -> Snapshot.Gauge (Metric.Gauge.get g)
  | Probe f -> Snapshot.Counter (f ())
  | Gauge_probe f -> Snapshot.Gauge (f ())
  | Histogram h ->
    Snapshot.Histogram
      {
        Snapshot.buckets = Metric.Histogram.bucket_counts h;
        count = Metric.Histogram.count h;
        sum = Metric.Histogram.sum h;
        max = Metric.Histogram.max h;
      }

let snapshot t =
  locked t (fun () ->
      Hashtbl.fold
        (fun k inst acc ->
          Snapshot.series ~name:k.name ~labels:k.labels (capture inst) :: acc)
        t.table [])
  |> Snapshot.normalize

let names t =
  locked t (fun () -> Hashtbl.fold (fun k _ acc -> k.name :: acc) t.table [])
  |> List.sort_uniq String.compare
