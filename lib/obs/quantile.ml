let nearest_rank ~count p =
  if p < 0.0 || p > 100.0 then invalid_arg "Quantile.nearest_rank";
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int count)) - 1 in
  if rank < 0 then 0 else if rank > count - 1 then count - 1 else rank

let percentile_sorted a n p =
  if n = 0 then 0.0 else a.(nearest_rank ~count:n p)
