(** Nearest-rank quantile selection, shared by every percentile readout in
    the repo: [Dmx_sim.Stats.Summary.percentile] (exact, over retained
    samples) and [Metric.Histogram] (bucketed) both defer to the same rank
    formula so the two readouts agree on what "p99" means. *)

val nearest_rank : count:int -> float -> int
(** [nearest_rank ~count p] is the 0-based index of the nearest-rank
    p-th percentile in a sorted population of [count] observations:
    [ceil (p/100 * count) - 1], clamped to [\[0, count-1\]].
    Raises [Invalid_argument] unless [0 <= p <= 100]. [count] must be
    positive. *)

val percentile_sorted : float array -> int -> float -> float
(** [percentile_sorted a n p] reads the nearest-rank p-th percentile from
    the first [n] elements of the sorted array [a]; 0.0 when [n = 0]. *)
