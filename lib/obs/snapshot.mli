(** Immutable captures of a registry: plain data, safe to ship across the
    wire, merge across a fleet, diff across time, and compare for
    bit-identical equality in determinism tests.

    A snapshot is a list of series sorted by [(name, labels)] — the order
    is canonical, so two registries holding the same values always render
    the same snapshot, byte for byte. *)

type hdata = { buckets : int array; count : int; sum : int; max : int }

type value =
  | Counter of int
  | Gauge of int
  | Histogram of hdata

type series = { name : string; labels : (string * string) list; value : value }

type t = series list
(** Sorted by [(name, labels)]; labels themselves sorted by key. *)

val empty : t

val series : name:string -> labels:(string * string) list -> value -> series
(** Canonicalizes (sorts) the labels. *)

val normalize : series list -> t
(** Sort into canonical order. Raises [Invalid_argument] on duplicate
    [(name, labels)] keys. *)

val merge : t -> t -> t
(** Pointwise union: counters and gauges add, histograms add bucketwise
    ([max] is the max of maxes). Series present on one side only pass
    through. Associative and commutative (the qcheck suite checks this).
    Raises [Invalid_argument] when the same key carries different
    instrument kinds. *)

val merge_all : t list -> t

val diff : older:t -> newer:t -> t
(** Pointwise [newer - older] — the rate source for the [top] view.
    Counters and gauges subtract; histograms subtract bucketwise, keeping
    [newer]'s max (maxes do not subtract). Series absent from [older]
    pass through unchanged. *)

val find : ?labels:(string * string) list -> t -> string -> value option
val get : ?labels:(string * string) list -> t -> string -> int
(** The scalar reading of a series: counter/gauge value, histogram count.
    0 when absent. *)

val quantile : hdata -> float -> int
(** Same readout as {!Metric.Histogram.quantile}, over shipped data. *)

val to_alist : t -> (string * int) list
(** One scalar per series, labels rendered into the key
    ([name{k=v}]; plain [name] when unlabeled), histograms contributing
    their count. Zero-valued entries are dropped — this is the shape the
    cluster supervisor's "live counters" line prints. *)

val sum_matching : prefix:string -> t -> int
(** Sum of scalar readings of every series whose name starts with
    [prefix]. *)
