(** Instrument cells: the mutable state behind every registered metric.

    All three instruments are allocation-free on the record path — an
    observation is one or two int stores (counters and gauges use
    [Atomic.t], so concurrent writers — e.g. a transport reader thread and
    the node main loop — never lose increments). Cells are plain values:
    they can be created standalone (a protocol layer that must stay
    registry-agnostic, like [Dmx_core.Reliable], owns its cells directly)
    and bound to names later via {!Registry.attach_counter} and friends. *)

(** Monotonic counter. *)
module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  (** Negative deltas are permitted (the engine's warmup reset uses them);
      exporters still treat the cell as cumulative. *)

  val get : t -> int
end

(** Instantaneous value (queue depth, in-flight count, heap size). *)
module Gauge : sig
  type t

  val create : unit -> t
  val set : t -> int -> unit
  val add : t -> int -> unit
  val get : t -> int
end

(** Fixed-bucket log2 histogram over non-negative ints.

    Bucket [0] counts observations [<= 0]; bucket [i >= 1] counts
    observations [v] with [2^(i-1) <= v < 2^i] (i.e. [i] is the bit-length
    of [v]), capped at bucket {!buckets}[-1]. Count, sum and max are exact;
    quantiles are bucket-resolution (within a factor of 2), with the top
    rank clamped to the exact max. The record path is single-writer: one
    thread observes, any thread may read (reads of individual int fields
    never tear).

    Convention: latency histograms in this repo record integer
    microseconds ([observe_s] converts from seconds). *)
module Histogram : sig
  type t

  val buckets : int
  (** Number of buckets (64: one underflow bucket plus one per bit). *)

  val create : unit -> t
  val observe : t -> int -> unit
  val observe_s : t -> float -> unit
  (** [observe_s h dt] records [dt] seconds as integer microseconds. *)

  val count : t -> int
  val sum : t -> int
  val max : t -> int
  (** 0 when empty. *)

  val mean : t -> float
  (** 0.0 when empty. *)

  val bucket_counts : t -> int array
  (** A copy of the bucket array. *)

  val bucket_of : int -> int
  (** The bucket index an observation lands in. *)

  val bucket_upper : int -> int
  (** Inclusive upper bound of bucket [i]: 0 for bucket 0, [2^i - 1]
      otherwise (capped for the last bucket). *)

  val quantile : t -> float -> int
  (** Nearest-rank quantile (same rank formula as
      [Dmx_sim.Stats.Summary.percentile], via {!Quantile.nearest_rank}),
      read at bucket resolution: the reported value is the containing
      bucket's upper bound, clamped to the exact {!max}. 0 when empty.
      Raises [Invalid_argument] unless [0 <= p <= 100]. *)
end
