type hdata = { buckets : int array; count : int; sum : int; max : int }

type value =
  | Counter of int
  | Gauge of int
  | Histogram of hdata

type series = { name : string; labels : (string * string) list; value : value }
type t = series list

let empty : t = []

let compare_labels = List.compare (fun (a, _) (b, _) -> String.compare a b)

let compare_key a b =
  match String.compare a.name b.name with
  | 0 -> (
    match compare_labels a.labels b.labels with
    | 0 ->
      List.compare
        (fun (_, x) (_, y) -> String.compare x y)
        a.labels b.labels
    | c -> c)
  | c -> c

let series ~name ~labels value =
  let labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  { name; labels; value }

let normalize l =
  let l = List.map (fun s -> series ~name:s.name ~labels:s.labels s.value) l in
  let l = List.sort compare_key l in
  let rec dup = function
    | a :: (b :: _ as rest) ->
      if compare_key a b = 0 then
        invalid_arg (Printf.sprintf "Obs.Snapshot: duplicate series %s" a.name)
      else dup rest
    | _ -> ()
  in
  dup l;
  l

let add_values name a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge x, Gauge y -> Gauge (x + y)
  | Histogram x, Histogram y ->
    Histogram
      {
        buckets = Array.map2 ( + ) x.buckets y.buckets;
        count = x.count + y.count;
        sum = x.sum + y.sum;
        max = Stdlib.max x.max y.max;
      }
  | _ ->
    invalid_arg (Printf.sprintf "Obs.Snapshot.merge: kind mismatch on %s" name)

let sub_values name newer older =
  match (newer, older) with
  | Counter x, Counter y -> Counter (x - y)
  | Gauge x, Gauge y -> Gauge (x - y)
  | Histogram x, Histogram y ->
    Histogram
      {
        buckets = Array.map2 ( - ) x.buckets y.buckets;
        count = x.count - y.count;
        sum = x.sum - y.sum;
        max = x.max;
      }
  | _ ->
    invalid_arg (Printf.sprintf "Obs.Snapshot.diff: kind mismatch on %s" name)

(* Sorted-merge of two canonical snapshots with [combine] on key hits. *)
let rec zip combine a b =
  match (a, b) with
  | [], l | l, [] -> l
  | x :: xs, y :: ys -> (
    match compare_key x y with
    | 0 -> { x with value = combine x.name x.value y.value } :: zip combine xs ys
    | c when c < 0 -> x :: zip combine xs (y :: ys)
    | _ -> y :: zip combine (x :: xs) ys)

let merge a b = zip add_values a b
let merge_all = List.fold_left merge []

let diff ~older ~newer =
  (* series only in [older] are dropped: a vanished series has no rate *)
  let rec go n o =
    match (n, o) with
    | [], _ -> []
    | l, [] -> l
    | x :: xs, y :: ys -> (
      match compare_key x y with
      | 0 -> { x with value = sub_values x.name x.value y.value } :: go xs ys
      | c when c < 0 -> x :: go xs (y :: ys)
      | _ -> go (x :: xs) ys)
  in
  go newer older

let find ?(labels = []) t name =
  let key = series ~name ~labels (Counter 0) in
  List.find_opt (fun s -> compare_key s key = 0) t
  |> Option.map (fun s -> s.value)

let scalar = function
  | Counter v | Gauge v -> v
  | Histogram h -> h.count

let get ?labels t name =
  match find ?labels t name with None -> 0 | Some v -> scalar v

let quantile (h : hdata) p =
  if h.count = 0 then (
    ignore (Quantile.nearest_rank ~count:1 p);
    0)
  else begin
    let rank = Quantile.nearest_rank ~count:h.count p in
    let b = ref 0 and seen = ref 0 in
    while !seen + h.buckets.(!b) <= rank do
      seen := !seen + h.buckets.(!b);
      incr b
    done;
    Stdlib.min (Metric.Histogram.bucket_upper !b) h.max
  end

let label_suffix = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
    ^ "}"

let to_alist t =
  List.filter_map
    (fun s ->
      let v = scalar s.value in
      if v = 0 then None else Some (s.name ^ label_suffix s.labels, v))
    t

let sum_matching ~prefix t =
  let n = String.length prefix in
  List.fold_left
    (fun acc s ->
      if String.length s.name >= n && String.sub s.name 0 n = prefix then
        acc + scalar s.value
      else acc)
    0 t
