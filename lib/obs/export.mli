(** Render a snapshot for external consumers.

    Two formats, both deterministic (canonical series order, fixed number
    formatting) so golden tests and the sim twin's bit-reproducibility
    check can compare exports byte for byte:

    - {!prometheus}: the Prometheus text exposition format. Dotted
      instrument names are sanitized ([.] becomes [_]); histograms render
      as native Prometheus histograms (cumulative [_bucket{le="..."}]
      series over the log2 bucket bounds, plus [_sum] and [_count]).
    - {!json}: a self-describing JSON document ([dmx-metrics/1]) carrying
      every series with its kind, labels, and — for histograms — the raw
      bucket array plus the p50/p90/p99/max readouts. *)

val schema_version : string
(** ["dmx-metrics/1"], the [schema] field of the JSON export. *)

val sanitize : string -> string
(** Prometheus metric-name sanitization: every character outside
    [\[A-Za-z0-9_:\]] becomes [_]. *)

val prometheus : Snapshot.t -> string
val json : Snapshot.t -> string
