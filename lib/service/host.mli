(** Per-node lock-service logic, shared by the live daemon and the
    deterministic simulator.

    A host is one node's slice of the whole service: for each of the
    [shards] independent protocol instances it holds that instance's
    per-site state (under the {!Shard_map} rotation of site ids) and the
    {!Dmx_core.Lease} machine that adapts client sessions to the
    instance's single critical section. Client control frames
    ([Open_session]/[Acquire]/[Release_lock]/[Renew]) come in through
    the event functions below; lease outcomes ([Grant]/[Deny]/[Expire])
    and inter-node shard traffic ([Sproto]) go out through the {!caps}
    capabilities — the host itself never touches a socket, a clock, or
    a timer wheel, which is precisely what lets {!Snode} run it on the
    wall clock and {!Sim_swarm} on virtual time, byte-for-byte the same
    code.

    Trace entries are kept {e per shard}, in the shard's own rotated
    site-id space, so each shard's merged log looks to the unmodified
    {!Dmx_sim.Oracle} like a self-contained [n]-site system. *)

(** What the host needs from its surroundings. All times share one
    base: the wall clock in the daemon, virtual time in the simulator. *)
type caps = {
  now : unit -> float;
  send_shard : shard:int -> dst_node:int -> string -> unit;
      (** deliver an encoded protocol message to a peer node (wrapped in
          a [Sproto] frame on the live path) *)
  send_client : Dmx_net.Wire.frame -> unit;
      (** emit a [Grant]/[Deny]/[Expire] toward the session gateway *)
  set_timer : shard:int -> tag:int -> delay:float -> unit;
      (** one-shot timer, routed back through {!Make.on_timer} with the
          same [shard] and [tag]. Protocol timers use the protocol's own
          tags; lease timers use {!Dmx_core.Lease.timer_tag}. *)
}

module Make (P : Dmx_sim.Protocol.PROTOCOL) : sig
  type codec = {
    encode : P.message -> string;
    decode : string -> (P.message, string) result;
  }

  type t

  val create :
    caps:caps ->
    codec:codec ->
    self:int ->
    n:int ->
    shards:int ->
    lease:Dmx_core.Lease.config ->
    seed:int ->
    pconfig:(shard:int -> P.config) ->
    t
  (** [self] is this node's id in [0, n). [pconfig] builds each shard's
      protocol configuration (in site-id space, so usually the same
      coterie for every shard — the rotation happens underneath).
      @raise Invalid_argument on a bad [self] or [shards] < 1. *)

  (** {2 Client-session events} *)

  val open_session : t -> session:int -> inc:float -> unit
  (** Bind (or re-bind) a session. A repeat with the same or a smaller
      incarnation is a no-op; a {e larger} incarnation voids everything
      the previous incarnation queued or held — the client demonstrably
      restarted, so its stale lease must not run out the clock. *)

  val acquire : t -> session:int -> lock:string -> req:int -> unit
  (** Queue for [lock]. Unknown sessions get [Deny "no-session"] (the
      client re-opens and retries); duplicates are idempotent. *)

  val release : t -> session:int -> lock:string -> req:int -> unit
  (** Give a lease back, or withdraw a queued acquire. Stale releases
      (already expired) are ignored; unknown sessions too. *)

  val renew : t -> session:int -> lock:string -> req:int -> unit
  (** Slide the lease deadline; answered with [Grant], or [Expire] when
      the lease is already gone. *)

  val void_session : t -> session:int -> unit
  (** Forget the session entirely and free everything it queued or held
      — the gateway knows the client is gone (connection owner died). *)

  (** {2 Network and timer events} *)

  val on_sproto : t -> shard:int -> src_node:int -> string -> unit
  (** A peer node's protocol message for [shard]; undecodable payloads
      are traced and dropped, out-of-range shards ignored. *)

  val on_timer : t -> shard:int -> tag:int -> unit
  val on_node_failure : t -> node:int -> unit
  (** Forward a suspected peer-node failure to every shard's protocol
      instance (translated into each shard's site-id space). *)

  val on_node_recovery : t -> node:int -> unit

  val tick : t -> unit
  (** Deliver pending protocol self-sends and any enter-CS the protocol
      signalled; call once per event-loop turn, like the node daemon's
      self-queue drain. *)

  (** {2 Output and introspection} *)

  val drain_traces : t -> (int * Dmx_sim.Trace.entry list) list
  (** Per-shard trace entries accumulated since the previous drain, in
      shard order, oldest first. *)

  val sent : t -> int
  (** Inter-node protocol messages sent (self-sends excluded), summed
      over shards. *)

  val received : t -> int
  val shard_count : t -> int
  val session_count : t -> int

  val kinds_alist : t -> (string * int) list
  (** Per-kind protocol send counts, as the node daemon reports them. *)

  val lease_stats : t -> (string * int) list
  (** Lease counters summed over shards (["lease.grants"], ...), plus
      ["service.denies"] when any request was denied. *)

  val fold_states : t -> ('a -> P.state -> 'a) -> 'a -> 'a
  (** Fold over the per-shard protocol states — live-counter extraction
      (e.g. {!Dmx_core.Reliable.stats_alist}) without exposing the shard
      array. *)

  val attach_obs :
    ?proto:
      (P.state -> labels:(string * string) list -> Dmx_obs.Registry.t -> unit) ->
    t ->
    Dmx_obs.Registry.t ->
    unit
  (** Bind the host into a metrics registry: every shard's lease cells
      ({!Dmx_core.Lease.attach}, labelled [("shard", i)]), probes for
      [service.sent]/[service.received]/[service.denies], a
      [service.sessions] gauge probe, and live [service.messages.kind]
      counters. [proto] (default: nothing) binds protocol-owned cells
      under the same per-shard labels — e.g.
      {!Dmx_core.Reliable.attach}. *)
end
