(* The deterministic twin of the live swarm driver: the same Host logic
   and the same client state machines, but on virtual time with a
   seeded RNG driving think times, abandon decisions and link
   latencies. Two runs with the same config produce the same traces,
   the same verdicts and the same percentiles — which makes the lock
   service fuzzable and every failure replayable from its seed. *)

module Trace = Dmx_sim.Trace
module Summary = Dmx_sim.Stats.Summary
module Rng = Dmx_sim.Rng
module Heap = Dmx_sim.Heap
module B = Dmx_quorum.Builder
module Wire = Dmx_net.Wire

type config = {
  n : int;
  shards : int;
  clients : int;
  locks : int;  (* 0 = one per client *)
  rounds : int;
  think : float;
  hold : float;
  lease : float;
  max_batch : int;
  abandon : float;
  protocol : string;
  quorum : B.kind;
  seed : int;
  kills : (float * int) list;
  restarts : (float * int) list;
  latency : float;  (* mean one-way link latency, seconds *)
  detect_delay : float;  (* failure-notification lag at peers *)
  rto : float;
  max_time : float;  (* virtual-time failsafe *)
}

let default ~n =
  {
    n;
    shards = 4;
    clients = 64;
    locks = 0;
    rounds = 3;
    think = 0.05;
    hold = 0.002;
    lease = 2.0;
    max_batch = 8;
    abandon = 0.0;
    protocol = "ft-delay-optimal";
    quorum = B.Tree;
    seed = 42;
    kills = [];
    restarts = [];
    latency = 0.001;
    detect_delay = 0.05;
    rto = 0.05;
    max_time = 600.0;
  }

let validate (cfg : config) =
  if cfg.n < 2 then Error "sim-swarm: need at least 2 nodes"
  else if cfg.shards < 1 then Error "sim-swarm: shards must be >= 1"
  else if cfg.clients < 1 then Error "sim-swarm: clients must be >= 1"
  else if cfg.rounds < 1 then Error "sim-swarm: rounds must be >= 1"
  else if cfg.think < 0.0 || cfg.hold < 0.0 then
    Error "sim-swarm: think/hold must be non-negative"
  else if cfg.lease <= 0.0 then Error "sim-swarm: lease must be positive"
  else if cfg.abandon < 0.0 || cfg.abandon > 1.0 then
    Error "sim-swarm: abandon must be a probability"
  else if cfg.latency <= 0.0 then Error "sim-swarm: latency must be positive"
  else if
    not (List.mem cfg.protocol [ "delay-optimal"; "ft-delay-optimal" ])
  then Error (Printf.sprintf "sim-swarm: unknown protocol %S" cfg.protocol)
  else if not (B.supports cfg.quorum ~n:cfg.n) then
    Error
      (Format.asprintf "sim-swarm: quorum %a does not support n=%d" B.pp_kind
         cfg.quorum cfg.n)
  else if
    List.exists (fun (_, s) -> s < 0 || s >= cfg.n) (cfg.kills @ cfg.restarts)
  then Error "sim-swarm: kill/restart node out of range"
  else if List.length cfg.kills >= cfg.n then
    Error "sim-swarm: cannot kill every node"
  else Ok ()

(* client state machines, as in the live driver *)
type phase =
  | Thinking
  | Waiting of { sent_at : float; mutable last_try : float }
  | Holding of { release_at : float }
  | Draining
  | Done

type client = {
  id : int;
  lock : string;
  shard : int;
  mutable node : int;
  mutable inc : float;
  mutable opened : bool;
  mutable phase : phase;
  mutable round : int;
  mutable req : int;
}

module Run (P : Dmx_sim.Protocol.PROTOCOL) = struct
  module H = Host.Make (P)

  type ev =
    | To_node of { node : int; frame : Wire.frame }
    | To_driver of Wire.frame
    | Timer of { node : int; gen : int; shard : int; tag : int }
    | Wakeup of { client : int; what : wake }
    | Kill of int
    | Restart of int
    | Notify of { node : int; about : int; up : bool }

  and wake = Start | Retry | Release | Renew | Failsafe

  type sched = { at : float; seq : int; ev : ev }

  let run (cfg : config) ~(codec : H.codec) ?(live_stats = fun _ -> [])
      ?(attach_obs = fun _ ~labels:_ _ -> ())
      (pconfig : shard:int -> P.config) =
    match validate cfg with
    | Error _ as e -> e
    | Ok () ->
      let locks = if cfg.locks < 1 then cfg.clients else cfg.locks in
      let now = ref 0.0 in
      let rng = Rng.create cfg.seed in
      let heap =
        Heap.create
          ~cmp:(fun a b ->
            let c = Float.compare a.at b.at in
            if c <> 0 then c else Int.compare a.seq b.seq)
          ()
      in
      let seq = ref 0 in
      let sched ~at ev =
        incr seq;
        Heap.add heap { at = Float.max at !now; seq = !seq; ev }
      in
      (* per-directed-channel FIFO, like the TCP live path: a later
         frame never overtakes an earlier one. the driver is channel
         endpoint [n]. *)
      let last_delivery = Hashtbl.create 64 in
      let link ~src ~dst =
        let lat = Rng.exponential rng ~mean:cfg.latency in
        let floor =
          Option.value ~default:0.0 (Hashtbl.find_opt last_delivery (src, dst))
        in
        let at = Float.max (!now +. lat) floor in
        Hashtbl.replace last_delivery (src, dst) at;
        at
      in
      let alive = Array.make cfg.n true in
      let gens = Array.make cfg.n 0 in
      (* newest batch first; concatenated in arrival order at the end.
         order matters beyond the final time-sort: self-send chains carry
         identical virtual timestamps, and the stable sort preserves
         whatever relative order we accumulate here *)
      let shard_batches = Array.make cfg.shards [] in
      let push_batch shard es =
        if es <> [] then shard_batches.(shard) <- es :: shard_batches.(shard)
      in
      let acquires = Array.make cfg.shards 0 in
      let grants = Array.make cfg.shards 0 in
      let expiries = Array.make cfg.shards 0 in
      let latency = Array.init cfg.shards (fun _ -> Summary.create ()) in
      let rehomed = ref 0 in
      let completed = ref 0 in
      (* the twin of the live driver's registry: same series names, same
         histogram buckets, but every observation is virtual time — so a
         seeded run's snapshot is a pure function of the config *)
      let obs = Dmx_obs.Registry.create () in
      let acq_hist =
        Array.init cfg.shards (fun shard ->
            Dmx_obs.Registry.histogram obs
              ~labels:[ ("shard", string_of_int shard) ]
              "swarm.acquire_latency")
      in
      for shard = 0 to cfg.shards - 1 do
        let labels = [ ("shard", string_of_int shard) ] in
        Dmx_obs.Registry.probe obs ~labels "swarm.acquires" (fun () ->
            acquires.(shard));
        Dmx_obs.Registry.probe obs ~labels "swarm.grants" (fun () ->
            grants.(shard));
        Dmx_obs.Registry.probe obs ~labels "swarm.expiries" (fun () ->
            expiries.(shard))
      done;
      Dmx_obs.Registry.probe obs "swarm.rehomed_sessions" (fun () -> !rehomed);
      Dmx_obs.Registry.probe obs "swarm.completed_clients" (fun () ->
          !completed);
      let node_regs = Array.init cfg.n (fun _ -> Dmx_obs.Registry.create ()) in
      let make_host node =
        let caps =
          {
            Host.now = (fun () -> !now);
            send_shard =
              (fun ~shard ~dst_node payload ->
                sched ~at:(link ~src:node ~dst:dst_node)
                  (To_node
                     {
                       node = dst_node;
                       frame =
                         Wire.Sproto { shard; src = node; dst = dst_node; payload };
                     }));
            send_client =
              (fun frame ->
                sched ~at:(link ~src:node ~dst:cfg.n) (To_driver frame));
            set_timer =
              (fun ~shard ~tag ~delay ->
                sched ~at:(!now +. delay)
                  (Timer { node; gen = gens.(node); shard; tag }));
          }
        in
        let host =
          H.create ~caps ~codec ~self:node ~n:cfg.n ~shards:cfg.shards
            ~lease:
              { Dmx_core.Lease.duration = cfg.lease; max_batch = cfg.max_batch }
            ~seed:(cfg.seed + node) ~pconfig
        in
        (* fresh registry per incarnation, like a restarted daemon *)
        let reg = Dmx_obs.Registry.create () in
        H.attach_obs ~proto:attach_obs host reg;
        node_regs.(node) <- reg;
        host
      in
      let hosts = Array.init cfg.n (fun node -> make_host node) in
      let collect_traces node =
        List.iter
          (fun (shard, es) -> push_batch shard es)
          (H.drain_traces hosts.(node))
      in
      let clients =
        Array.init cfg.clients (fun id ->
            let lock = Printf.sprintf "lock-%d" (id mod locks) in
            {
              id;
              lock;
              shard = Shard_map.shard_of_lock ~shards:cfg.shards lock;
              node = id mod cfg.n;
              inc = 1.0;
              opened = false;
              phase = Thinking;
              round = 0;
              req = 0;
            })
      in
      let think_delay () =
        if cfg.think <= 0.0 then 0.0 else Rng.exponential rng ~mean:cfg.think
      in
      let retry_interval = Float.max (4.0 *. cfg.rto) (8.0 *. cfg.latency) in
      let wake ~at c what = sched ~at (Wakeup { client = c.id; what }) in
      let to_node c frame = sched ~at:(link ~src:cfg.n ~dst:c.node) (To_node { node = c.node; frame }) in
      let send_open c =
        to_node c (Wire.Open_session { session = c.id; inc = c.inc });
        c.opened <- true
      in
      let send_acquire c =
        if not c.opened then send_open c;
        to_node c (Wire.Acquire { session = c.id; lock = c.lock; req = c.req })
      in
      let complete_round c =
        c.round <- c.round + 1;
        if c.round >= cfg.rounds then begin
          c.phase <- Done;
          incr completed
        end
        else begin
          c.phase <- Thinking;
          wake ~at:(!now +. think_delay ()) c Start
        end
      in
      let start_round c =
        if c.phase = Thinking then begin
          c.req <- c.round + 1;
          acquires.(c.shard) <- acquires.(c.shard) + 1;
          c.phase <- Waiting { sent_at = !now; last_try = !now };
          send_acquire c;
          wake ~at:(!now +. retry_interval) c Retry
        end
      in
      let next_live node =
        let rec go k step =
          if step > cfg.n then node
          else if alive.(k) then k
          else go ((k + 1) mod cfg.n) (step + 1)
        in
        go ((node + 1) mod cfg.n) 0
      in
      let driver_frame frame =
        match frame with
        | Wire.Grant { session; req; _ }
          when session >= 0 && session < cfg.clients -> (
          let c = clients.(session) in
          match c.phase with
          | Waiting { sent_at; _ } when req = c.req ->
            grants.(c.shard) <- grants.(c.shard) + 1;
            Summary.add latency.(c.shard) (!now -. sent_at);
            Dmx_obs.Metric.Histogram.observe_s acq_hist.(c.shard)
              (!now -. sent_at);
            if cfg.abandon > 0.0 && Rng.float rng 1.0 < cfg.abandon then begin
              c.phase <- Draining;
              wake ~at:(!now +. (2.0 *. cfg.lease) +. 1.0) c Failsafe
            end
            else begin
              let release_at = !now +. cfg.hold in
              c.phase <- Holding { release_at };
              wake ~at:release_at c Release;
              if cfg.hold > cfg.lease /. 2.0 then
                wake ~at:(!now +. (cfg.lease /. 2.0)) c Renew
            end
          | _ -> ())
        | Wire.Expire { session; req; _ }
          when session >= 0 && session < cfg.clients -> (
          let c = clients.(session) in
          match c.phase with
          | (Holding _ | Draining) when req = c.req ->
            expiries.(c.shard) <- expiries.(c.shard) + 1;
            complete_round c
          | _ -> ())
        | Wire.Deny { session; req; reason; _ }
          when session >= 0 && session < cfg.clients -> (
          let c = clients.(session) in
          match c.phase with
          | Waiting w when req = c.req && reason = "no-session" ->
            c.opened <- false;
            w.last_try <- !now;
            send_acquire c
          | _ -> ())
        | _ -> ()
      in
      let node_frame node frame =
        if alive.(node) then begin
          let host = hosts.(node) in
          (match frame with
          | Wire.Sproto { shard; src; payload; _ } ->
            H.on_sproto host ~shard ~src_node:src payload
          | Wire.Open_session { session; inc } ->
            H.open_session host ~session ~inc
          | Wire.Acquire { session; lock; req } ->
            H.acquire host ~session ~lock ~req
          | Wire.Release_lock { session; lock; req } ->
            H.release host ~session ~lock ~req
          | Wire.Renew { session; lock; req } -> H.renew host ~session ~lock ~req
          | _ -> ());
          H.tick host
        end
      in
      let kill_node site =
        if alive.(site) then begin
          collect_traces site;
          alive.(site) <- false;
          gens.(site) <- gens.(site) + 1;
          for shard = 0 to cfg.shards - 1 do
            push_batch shard
              [
                {
                  Trace.time = !now;
                  site = Shard_map.site_of_node ~shard ~n:cfg.n site;
                  kind = Trace.Crash;
                };
              ]
          done;
          for peer = 0 to cfg.n - 1 do
            if peer <> site && alive.(peer) then
              sched
                ~at:(!now +. cfg.detect_delay)
                (Notify { node = peer; about = site; up = false })
          done;
          Array.iter
            (fun c ->
              if c.node = site && c.phase <> Done then begin
                incr rehomed;
                c.node <- next_live site;
                c.opened <- false;
                c.inc <- c.inc +. 1.0;
                match c.phase with
                | Waiting w ->
                  w.last_try <- !now;
                  send_acquire c
                | Holding _ | Draining ->
                  expiries.(c.shard) <- expiries.(c.shard) + 1;
                  complete_round c
                | Thinking | Done -> ()
              end)
            clients
        end
      in
      let restart_node site =
        if not alive.(site) then begin
          alive.(site) <- true;
          hosts.(site) <- make_host site;
          H.tick hosts.(site);
          for shard = 0 to cfg.shards - 1 do
            push_batch shard
              [
                {
                  Trace.time = !now;
                  site = Shard_map.site_of_node ~shard ~n:cfg.n site;
                  kind = Trace.Recover;
                };
              ]
          done;
          for peer = 0 to cfg.n - 1 do
            if peer <> site && alive.(peer) then
              sched
                ~at:(!now +. cfg.detect_delay)
                (Notify { node = peer; about = site; up = true })
          done
        end
      in
      let wakeup cid what =
        let c = clients.(cid) in
        match (what, c.phase) with
        | Start, Thinking -> start_round c
        | Retry, Waiting wt ->
          if !now -. wt.last_try >= retry_interval -. 1e-9 then begin
            wt.last_try <- !now;
            send_acquire c
          end;
          wake ~at:(!now +. retry_interval) c Retry
        | Release, Holding _ ->
          to_node c
            (Wire.Release_lock { session = c.id; lock = c.lock; req = c.req });
          complete_round c
        | Renew, Holding { release_at } ->
          if release_at > !now then begin
            to_node c (Wire.Renew { session = c.id; lock = c.lock; req = c.req });
            wake ~at:(!now +. (cfg.lease /. 2.0)) c Renew
          end
        | Failsafe, Draining ->
          expiries.(c.shard) <- expiries.(c.shard) + 1;
          complete_round c
        | _ -> ()
      in
      (* seed the schedule *)
      Array.iter (fun c -> wake ~at:(think_delay ()) c Start) clients;
      List.iter (fun (t, site) -> sched ~at:t (Kill site)) cfg.kills;
      List.iter (fun (t, site) -> sched ~at:t (Restart site)) cfg.restarts;
      (* the deterministic main loop *)
      let stuck = ref false in
      while (not !stuck) && !completed < cfg.clients && !now <= cfg.max_time do
        match Heap.pop heap with
        | None -> stuck := true
        | Some { at; ev; _ } -> (
          now := at;
          match ev with
          | To_node { node; frame } -> node_frame node frame
          | To_driver frame -> driver_frame frame
          | Timer { node; gen; shard; tag } ->
            if alive.(node) && gens.(node) = gen then begin
              H.on_timer hosts.(node) ~shard ~tag;
              H.tick hosts.(node)
            end
          | Wakeup { client; what } -> wakeup client what
          | Kill site -> kill_node site
          | Restart site -> restart_node site
          | Notify { node; about; up } ->
            if alive.(node) then begin
              (if up then H.on_node_recovery hosts.(node) ~node:about
               else H.on_node_failure hosts.(node) ~node:about);
              H.tick hosts.(node)
            end)
      done;
      if !completed < cfg.clients then
        Error
          (Printf.sprintf
             "sim-swarm: %s with %d/%d clients finished at t=%.3f"
             (if !stuck then "no events left" else "virtual-time limit hit")
             !completed cfg.clients !now)
      else begin
        let live_stats_arr = Array.make cfg.n [] in
        let snapshots = Array.make cfg.n Dmx_obs.Snapshot.empty in
        Array.iteri
          (fun node host ->
            if alive.(node) then begin
              collect_traces node;
              live_stats_arr.(node) <-
                H.lease_stats host
                @ H.fold_states host (fun acc st -> acc @ live_stats st) [];
              snapshots.(node) <- Dmx_obs.Registry.snapshot node_regs.(node)
            end)
          hosts;
        let per_shard =
          Swarm.distil ~n:cfg.n ~crashy:(cfg.kills <> []) ~lossy:false
            ~acquires ~grants ~expiries ~latency
            ~entries:
              (Array.map (fun bs -> List.concat (List.rev bs)) shard_batches)
        in
        Ok
          {
            Swarm.per_shard;
            wall_seconds = !now;
            completed_clients = !completed;
            rehomed_sessions = !rehomed;
            live_stats = live_stats_arr;
            snapshots;
            driver_snapshot = Dmx_obs.Registry.snapshot obs;
          }
      end
end

let run_named (cfg : config) =
  match cfg.protocol with
  | "delay-optimal" ->
    let module R = Run (Dmx_core.Delay_optimal) in
    R.run cfg
      ~codec:{ R.H.encode = Wire.encode_message; decode = Wire.decode_message }
      (fun ~shard:_ ->
        Dmx_core.Delay_optimal.config (B.req_sets cfg.quorum ~n:cfg.n))
  | "ft-delay-optimal" ->
    let module R = Run (Dmx_core.Ft_delay_optimal) in
    let reliability =
      {
        Dmx_core.Reliable.rto = cfg.rto;
        backoff = 2.0;
        rto_max = 16.0 *. cfg.rto;
        ack_delay = 0.1 *. cfg.rto;
      }
    in
    R.run cfg
      ~codec:{ R.H.encode = Wire.encode_message; decode = Wire.decode_message }
      ~live_stats:(fun st ->
        match Dmx_core.Ft_delay_optimal.Internal.reliable st with
        | Some r -> Dmx_core.Reliable.stats_alist r
        | None -> [])
      ~attach_obs:(fun st ~labels reg ->
        match Dmx_core.Ft_delay_optimal.Internal.reliable st with
        | Some r -> Dmx_core.Reliable.attach ~labels r reg
        | None -> ())
      (fun ~shard:_ ->
        Dmx_core.Ft_delay_optimal.config_of_kind ~reliability
          ~trust_detector:false cfg.quorum ~n:cfg.n ~broadcast:false)
  | p -> Error (Printf.sprintf "sim-swarm: unknown protocol %S" p)
