(** The live lock-service daemon: one process hosting a node's slice of
    every shard over a real transport.

    Mirrors the single-protocol node daemon ({!Dmx_net.Node}) — same
    transports, chaos shim, heartbeats, re-exec trampoline, supervisor
    silence failsafe and trace streaming — but it dispatches the
    session/lease control frames into a {!Host} and streams each
    shard's trace as [Strace] frames, so the swarm driver can run the
    unmodified oracle per shard. All client traffic arrives multiplexed
    over the driver's link (peer id [n]); responses go back the same
    way. *)

(** Everything a daemon process needs to come up, delivered through the
    {!env_var} trampoline by the swarm driver. *)
type spec = {
  site : int;
  n : int;
  node_ports : int array;  (** listen port of every node, index = id *)
  supervisor_port : int;  (** the swarm driver's port (peer id [n]) *)
  protocol : string;  (** ["delay-optimal"] or ["ft-delay-optimal"] *)
  quorum : string;  (** a {!Dmx_quorum.Builder.parse_kind} spelling *)
  shards : int;
  lease : float;  (** lease duration, seconds *)
  max_batch : int;  (** leases served per protocol CS tenure *)
  seed : int;
  epoch : float;  (** cluster time zero (absolute [gettimeofday]) *)
  hb_period : float;
  hb_timeout : float;
  rto : float;  (** reliability-layer base retransmission timeout *)
  max_seconds : float;  (** failsafe wall-clock limit *)
  transport : string;  (** a {!Dmx_net.Transports.create} name *)
  chaos : Dmx_net.Chaos.plan;
  metrics_port : int;
      (** serve the daemon's metrics registry over HTTP
          ({!Dmx_net.Scrape}) on this loopback port; [0] disables *)
}

val spec_to_string : spec -> string
val spec_of_string : string -> (spec, string) result

val env_var : string
(** [DMX_SERVICE_SPEC]; the service twin of {!Dmx_net.Node.env_var}. *)

val run_as_child_if_requested : unit -> unit
(** Check {!env_var}; when present, run the daemon to completion and
    [exit]. Must be called before the host executable does anything
    else (alongside {!Dmx_net.Node.run_as_child_if_requested}). *)

(** Run the daemon for a specific protocol. *)
module Run (P : Dmx_sim.Protocol.PROTOCOL) : sig
  module H : module type of Host.Make (P)

  val run :
    spec ->
    codec:H.codec ->
    ?live_stats:(P.state -> (string * int) list) ->
    ?attach_obs:
      (P.state -> labels:(string * string) list -> Dmx_obs.Registry.t -> unit) ->
    (shard:int -> P.config) ->
    unit
  (** Blocks until the driver's [Shutdown], driver silence beyond 30 s,
      or [spec.max_seconds]. [live_stats] extracts per-shard protocol
      counters for the final [Metrics] frame; [attach_obs] binds
      protocol-owned metric cells into the daemon's registry under
      per-shard labels (see {!Host.Make.attach_obs}), which feeds the
      [spec.metrics_port] scrape endpoint and the final
      {!Dmx_net.Wire.frame.Metrics_v2}. *)
end

val run_named : spec -> (unit, string) result
(** Resolve [spec.protocol]/[spec.quorum] exactly as
    {!Dmx_net.Node.run_named} does and run the daemon. *)
