(** The closed-loop client-swarm driver for the sharded lock service.

    Spawns [n] {!Snode} daemons over a real transport, runs a
    population of client state machines (think → acquire → hold →
    release/abandon, for a fixed number of rounds each) with every
    session multiplexed over the driver's single endpoint, optionally
    kills and restarts daemons mid-run — re-homing the dead node's
    sessions onto live nodes with fresh incarnations — and finally
    merges each shard's streamed trace and runs the unmodified
    {!Dmx_sim.Oracle} on it, per shard.

    Acquire latency is measured driver-side, from the first [Acquire]
    send to the matching [Grant], so failover cost (retries, session
    re-homing after a kill) is part of the distribution, exactly as a
    client would experience it. *)

module Summary = Dmx_sim.Stats.Summary
module Oracle = Dmx_sim.Oracle
module B = Dmx_quorum.Builder
module Chaos = Dmx_net.Chaos

type config = {
  n : int;  (** node count (>= 2) *)
  shards : int;  (** independent protocol instances *)
  clients : int;  (** closed-loop client population *)
  locks : int;  (** distinct lock names; [0] means one per client *)
  rounds : int;  (** acquire/release cycles per client *)
  think : float;  (** mean think time between rounds (exponential) *)
  hold : float;  (** hold time once granted, seconds *)
  lease : float;  (** lease duration handed to the daemons *)
  max_batch : int;  (** grants served per protocol CS tenure *)
  abandon : float;
      (** probability a granted client "crashes": never releases or
          renews, leaving cleanup to lease expiry *)
  protocol : string;  (** ["delay-optimal"] or ["ft-delay-optimal"] *)
  quorum : B.kind;
  seed : int;  (** drives think times and abandon decisions *)
  kills : (float * int) list;  (** (seconds after start, node) SIGKILLs *)
  restarts : (float * int) list;
      (** (seconds, node); each needs an earlier kill of the same node *)
  log_dir : string option;  (** daemon stderr logs, when given *)
  timeout : float;  (** overall failsafe, seconds *)
  hb_period : float;
  hb_timeout : float;
  rto : float;
  transport : string;  (** a {!Dmx_net.Transports} name *)
  chaos : Chaos.plan;  (** [n] and zero [seed] are filled in *)
  hello_timeout : float;  (** startup phase limit *)
  metrics_base_port : int;
      (** daemon [site] serves its metrics registry over HTTP on
          [metrics_base_port + site] ({!Dmx_net.Scrape}); [0] disables *)
}

val default : n:int -> config
(** 4 shards, 64 clients x 3 rounds, 50 ms mean think, 2 ms hold, 2 s
    lease, no kills, no chaos, TCP. *)

val validate : config -> (unit, string) result

(** Per-shard distillation: driver-side counters, the acquire-latency
    summary, and the oracle's verdict over the merged trace (expressed
    in the shard's rotated site-id space). *)
type shard_outcome = {
  shard : int;
  acquires : int;  (** rounds started (first [Acquire] sends) *)
  grants : int;  (** [Grant]s matched to a waiting request *)
  expiries : int;
      (** rounds ended by lease expiry rather than release — abandons,
          kills, and lost frames all land here *)
  latency : Summary.t;  (** acquire-to-grant, seconds *)
  verdict : Oracle.verdict;
  occupancy_violations : int;  (** independent shard-local CS overlap scan *)
  trace_entries : int;
}

type outcome = {
  per_shard : shard_outcome array;
  wall_seconds : float;
  completed_clients : int;
  rehomed_sessions : int;  (** sessions moved off killed nodes *)
  live_stats : (string * int) list array;
      (** each node's final [Metrics] counters (lease, protocol,
          transport, chaos); empty for nodes that died without one *)
  snapshots : Dmx_obs.Snapshot.t array;
      (** each node's final registry snapshot ([Metrics_v2]);
          {!Dmx_obs.Snapshot.empty} for nodes that died without one *)
  driver_snapshot : Dmx_obs.Snapshot.t;
      (** the driver's own registry: per-shard
          [swarm.acquire_latency{shard=i}] histograms (observed
          driver-side, so failover cost is in the distribution) plus
          [swarm.acquires]/[swarm.grants]/[swarm.expiries] counters *)
}

val merged_snapshot : outcome -> Dmx_obs.Snapshot.t
(** {!Dmx_obs.Snapshot.merge_all} over every node's snapshot (the
    driver's own snapshot is {e not} folded in — it measures the client
    side, not the fleet). *)

val distil :
  n:int ->
  crashy:bool ->
  lossy:bool ->
  acquires:int array ->
  grants:int array ->
  expiries:int array ->
  latency:Summary.t array ->
  entries:Dmx_sim.Trace.entry list array ->
  shard_outcome array
(** Shared verdict construction (also used by {!Sim_swarm}): sort each
    shard's merged trace by time, run the oracle — FIFO off when
    [crashy] or [lossy], custody off when [crashy], exactly as the
    cluster supervisor relaxes it — plus an independent shard-local
    occupancy scan. All arrays are indexed by shard. *)

val run : config -> (outcome, string) result
(** Run the swarm to completion. [Error] covers validation failures,
    daemons dying before hello, and the overall timeout; daemons are
    killed and the transport closed on every path. *)

val shard_ok : shard_outcome -> bool
(** Clean oracle verdict and zero occupancy violations. *)

val ok : outcome -> bool
(** Every shard is {!shard_ok}. *)

val live_totals : outcome -> (string * int) list
(** Sum of all nodes' final counters, sorted by key — rendered from
    {!merged_snapshot} when any node shipped a [Metrics_v2] snapshot,
    falling back to the legacy per-node alist fold otherwise. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** The per-shard table (counts + p50/p95/p99 in ms), totals, live
    counters, and any violations in full. *)
