(** The deterministic virtual-time twin of the live {!Swarm} driver.

    Runs the {e same} {!Host} logic and the same client state machines
    as the live driver, but on a single event heap with a seeded RNG
    driving think times, abandon decisions and per-frame link latencies
    (channel-FIFO, like the TCP path). Node kills discard the host
    (fresh state on restart, stale timers fenced by a generation
    counter) and notify peers after [detect_delay], mirroring the live
    failure detector. Two runs with the same config are identical —
    traces, verdicts, percentiles — so the service is fuzzable and any
    failure replays from its seed. Results come back as
    {!Swarm.outcome} ([wall_seconds] is virtual time). *)

module B = Dmx_quorum.Builder

type config = {
  n : int;
  shards : int;
  clients : int;
  locks : int;  (** distinct lock names; [0] means one per client *)
  rounds : int;
  think : float;  (** mean think time (exponential) *)
  hold : float;
  lease : float;
  max_batch : int;
  abandon : float;  (** P(granted client vanishes without releasing) *)
  protocol : string;  (** ["delay-optimal"] or ["ft-delay-optimal"] *)
  quorum : B.kind;
  seed : int;  (** the whole run is a function of this *)
  kills : (float * int) list;  (** (virtual seconds, node) *)
  restarts : (float * int) list;
  latency : float;  (** mean one-way link latency, seconds *)
  detect_delay : float;  (** peer failure/recovery notification lag *)
  rto : float;  (** reliability-layer base RTO (ft protocol) *)
  max_time : float;  (** virtual-time failsafe *)
}

val default : n:int -> config
(** 4 shards, 64 clients x 3 rounds, 1 ms links, 50 ms detection. *)

val validate : config -> (unit, string) result

(** Instantiated per protocol; {!run_named} covers the named ones. *)
module Run (P : Dmx_sim.Protocol.PROTOCOL) : sig
  module H : module type of Host.Make (P)

  val run :
    config ->
    codec:H.codec ->
    ?live_stats:(P.state -> (string * int) list) ->
    ?attach_obs:
      (P.state -> labels:(string * string) list -> Dmx_obs.Registry.t -> unit) ->
    (shard:int -> P.config) ->
    (Swarm.outcome, string) result
  (** [attach_obs] binds protocol-owned metric cells under per-shard
      labels, exactly as in {!Snode.Run.run} — here into per-host
      registries recorded under virtual time, so the outcome's
      [snapshots] and [driver_snapshot] are a pure function of the
      config (the determinism suite checks bit-identity across runs). *)
end

val run_named : config -> (Swarm.outcome, string) result
(** Resolve [protocol]/[quorum] exactly as {!Snode.run_named} does and
    run the simulation. *)
