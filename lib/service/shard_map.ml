(* Lock-namespace sharding: lock name -> shard by FNV-1a, and the
   per-shard rotation that spreads each shard's protocol sites over the
   node set so no node is the quorum hot spot of every shard at once. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let hash lock =
  let h = ref fnv_offset in
  String.iter
    (fun ch ->
      h := Int64.logxor !h (Int64.of_int (Char.code ch));
      h := Int64.mul !h fnv_prime)
    lock;
  (* fold to a non-negative int: truncate to the native width, then
     clear the sign bit *)
  Int64.to_int !h land max_int

let shard_of_lock ~shards lock =
  if shards < 1 then invalid_arg "Shard_map: shards must be >= 1";
  hash lock mod shards

let node_of_site ~shard ~n site =
  if site < 0 || site >= n then invalid_arg "Shard_map: site out of range";
  (site + shard) mod n

let site_of_node ~shard ~n node =
  if node < 0 || node >= n then invalid_arg "Shard_map: node out of range";
  ((node - shard) mod n + n) mod n
