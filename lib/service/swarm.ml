(* The client-swarm driver: spawn n service daemons, run a closed-loop
   population of clients against the sharded lock namespace, optionally
   kill and restart daemons mid-run, and distil each shard's merged
   trace through the unmodified oracle.

   The driver is both supervisor and session gateway: every client
   session is multiplexed over the driver's single transport endpoint
   (peer id n), so 10k logical clients cost one connection per node,
   not 10k sockets. Clients are tiny state machines driven off one
   wakeup heap — think, acquire, hold (renewing if the hold outlives
   half a lease), release or abandon, repeat. *)

module Trace = Dmx_sim.Trace
module Oracle = Dmx_sim.Oracle
module Summary = Dmx_sim.Stats.Summary
module Rng = Dmx_sim.Rng
module B = Dmx_quorum.Builder
module Wire = Dmx_net.Wire
module Transport_sig = Dmx_net.Transport_sig
module Transports = Dmx_net.Transports
module Chaos = Dmx_net.Chaos
module Spawn = Dmx_net.Spawn

type config = {
  n : int;
  shards : int;
  clients : int;
  locks : int;
  rounds : int;
  think : float;
  hold : float;
  lease : float;
  max_batch : int;
  abandon : float;
  protocol : string;
  quorum : B.kind;
  seed : int;
  kills : (float * int) list;
  restarts : (float * int) list;
  log_dir : string option;
  timeout : float;
  hb_period : float;
  hb_timeout : float;
  rto : float;
  transport : string;
  chaos : Chaos.plan;
  hello_timeout : float;
  metrics_base_port : int;  (* daemon [site] scrapes on base + site; 0 = off *)
}

let default ~n =
  {
    n;
    shards = 4;
    clients = 64;
    locks = 0;
    rounds = 3;
    think = 0.05;
    hold = 0.002;
    lease = 2.0;
    max_batch = 8;
    abandon = 0.0;
    protocol = "ft-delay-optimal";
    quorum = B.Tree;
    seed = 42;
    kills = [];
    restarts = [];
    log_dir = None;
    timeout = 120.0;
    hb_period = 0.1;
    hb_timeout = 1.0;
    rto = 0.25;
    transport = "tcp";
    chaos = Chaos.no_faults;
    hello_timeout = 10.0;
    metrics_base_port = 0;
  }

type shard_outcome = {
  shard : int;
  acquires : int;
  grants : int;
  expiries : int;
  latency : Summary.t;
  verdict : Oracle.verdict;
  occupancy_violations : int;
  trace_entries : int;
}

type outcome = {
  per_shard : shard_outcome array;
  wall_seconds : float;
  completed_clients : int;
  rehomed_sessions : int;
  live_stats : (string * int) list array;
  snapshots : Dmx_obs.Snapshot.t array;
  driver_snapshot : Dmx_obs.Snapshot.t;
}

let merged_snapshot o = Dmx_obs.Snapshot.merge_all (Array.to_list o.snapshots)

(* ---- client state machines ---- *)

type phase =
  | Thinking
  | Waiting of { sent_at : float; mutable last_try : float }
  | Holding of { release_at : float }
  | Draining  (* abandoned hold: silent until Expire (or the failsafe) *)
  | Done

type client = {
  id : int;  (* doubles as the session id *)
  lock : string;
  shard : int;
  mutable node : int;
  mutable inc : float;
  mutable opened : bool;  (* Open_session sent to the current node *)
  mutable phase : phase;
  mutable round : int;  (* completed rounds *)
  mutable req : int;  (* current round's request id *)
}

type what = Start | Retry | Release | Renew | Failsafe

type wakeup = { at : float; client : int; what : what; seq : int }

(* ---- validation ---- *)

let validate (cfg : config) =
  if cfg.n < 2 then Error "swarm: need at least 2 nodes"
  else if cfg.shards < 1 then Error "swarm: shards must be >= 1"
  else if cfg.clients < 1 then Error "swarm: clients must be >= 1"
  else if cfg.rounds < 1 then Error "swarm: rounds must be >= 1"
  else if cfg.think < 0.0 || cfg.hold < 0.0 then
    Error "swarm: think/hold must be non-negative"
  else if cfg.lease <= 0.0 then Error "swarm: lease must be positive"
  else if cfg.abandon < 0.0 || cfg.abandon > 1.0 then
    Error "swarm: abandon must be a probability"
  else if
    not (List.mem cfg.protocol [ "delay-optimal"; "ft-delay-optimal" ])
  then Error (Printf.sprintf "swarm: unknown protocol %S" cfg.protocol)
  else if not (B.supports cfg.quorum ~n:cfg.n) then
    Error
      (Format.asprintf "swarm: quorum %a does not support n=%d" B.pp_kind
         cfg.quorum cfg.n)
  else if
    List.exists (fun (_, s) -> s < 0 || s >= cfg.n) (cfg.kills @ cfg.restarts)
  then Error "swarm: kill/restart node out of range"
  else if
    List.exists
      (fun (rt, s) ->
        not (List.exists (fun (kt, ks) -> ks = s && kt < rt) cfg.kills))
      cfg.restarts
  then Error "swarm: every restart needs an earlier kill of the same node"
  else if List.length cfg.kills >= cfg.n then
    Error "swarm: cannot kill every node"
  else if not (List.mem cfg.transport Transports.names) then
    Error
      (Printf.sprintf "swarm: unknown transport %S (want %s)" cfg.transport
         (String.concat " or " Transports.names))
  else if not (cfg.hello_timeout > 0.0) then
    Error "swarm: hello_timeout must be positive"
  else
    match Chaos.validate { cfg.chaos with Chaos.n = cfg.n } with
    | () -> Ok ()
    | exception Invalid_argument e -> Error ("swarm: " ^ e)

(* ---- per-shard occupancy, in the shard's site-id space ---- *)

let scan_occupancy n entries =
  let occ = Dmx_runtime.Occupancy.create () in
  let in_cs = Array.make n false in
  List.iter
    (fun (e : Trace.entry) ->
      let site = e.Trace.site in
      match e.Trace.kind with
      | Trace.Enter_cs ->
        Dmx_runtime.Occupancy.enter occ;
        in_cs.(site) <- true
      | Trace.Exit_cs ->
        if in_cs.(site) then begin
          Dmx_runtime.Occupancy.exit occ;
          in_cs.(site) <- false
        end
      | Trace.Crash ->
        if in_cs.(site) then begin
          Dmx_runtime.Occupancy.exit occ;
          in_cs.(site) <- false
        end
      | _ -> ())
    entries;
  Dmx_runtime.Occupancy.violations occ

(* Shared by the live driver and the virtual-time simulator: sort each
   shard's merged trace, run the oracle (with the same relaxations the
   cluster supervisor applies on crashy/lossy runs) and the independent
   occupancy scan. *)
let distil ~n ~crashy ~lossy ~acquires ~grants ~expiries ~latency ~entries =
  Array.init (Array.length entries) (fun shard ->
      let es =
        List.stable_sort
          (fun (a : Trace.entry) b -> Float.compare a.Trace.time b.Trace.time)
          entries.(shard)
      in
      let verdict =
        Oracle.check
          {
            (Oracle.default ~n) with
            Oracle.fifo = not (crashy || lossy);
            custody = not crashy;
          }
          es ~truncated:false
      in
      {
        shard;
        acquires = acquires.(shard);
        grants = grants.(shard);
        expiries = expiries.(shard);
        latency = latency.(shard);
        verdict;
        occupancy_violations = scan_occupancy n es;
        trace_entries = List.length es;
      })

(* ---- the driver ---- *)

let run (cfg : config) =
  match validate cfg with
  | Error _ as e -> e
  | Ok () -> (
    let started_wall = Unix.gettimeofday () in
    let epoch = started_wall in
    let locks = if cfg.locks < 1 then cfg.clients else cfg.locks in
    let ports = Spawn.alloc_ports (cfg.n + 1) in
    let sup_port = List.nth ports cfg.n in
    let node_ports = Array.of_list (List.filteri (fun i _ -> i < cfg.n) ports) in
    let plan =
      {
        cfg.chaos with
        Chaos.n = cfg.n;
        seed = (if cfg.chaos.Chaos.seed = 0 then cfg.seed else cfg.chaos.Chaos.seed);
      }
    in
    let spec_of site =
      {
        Snode.site;
        n = cfg.n;
        node_ports;
        supervisor_port = sup_port;
        protocol = cfg.protocol;
        quorum = Format.asprintf "%a" B.pp_kind cfg.quorum;
        shards = cfg.shards;
        lease = cfg.lease;
        max_batch = cfg.max_batch;
        seed = cfg.seed;
        epoch;
        hb_period = cfg.hb_period;
        hb_timeout = cfg.hb_timeout;
        rto = cfg.rto;
        max_seconds = cfg.timeout +. 30.0;
        transport = cfg.transport;
        chaos = plan;
        metrics_port =
          (if cfg.metrics_base_port = 0 then 0
           else cfg.metrics_base_port + site);
      }
    in
    let spawn site =
      Spawn.child ~log_dir:cfg.log_dir
        ~log_name:(Printf.sprintf "snode-%d.log" site)
        ~env_var:Snode.env_var
        ~spec:(Snode.spec_to_string (spec_of site))
    in
    let transport =
      Transports.create_exn cfg.transport
        {
          Transport_sig.self = cfg.n;
          listen_port = sup_port;
          peers =
            List.init cfg.n (fun i ->
                (i, Unix.ADDR_INET (Unix.inet_addr_loopback, node_ports.(i))));
          hb_period = cfg.hb_period;
          hb_timeout = cfg.hb_timeout;
          watch = [];
          hello_inc = epoch;
        }
    in
    let pids = Array.make cfg.n None in
    let cleanup () =
      Array.iter (Option.iter Spawn.kill_quietly) pids;
      Array.fill pids 0 cfg.n None;
      transport.close ()
    in
    try
      Array.iteri (fun site _ -> pids.(site) <- Some (spawn site)) pids;
      let now () = Unix.gettimeofday () -. epoch in
      let rng = Rng.create cfg.seed in
      let alive = Array.make cfg.n true in
      (* driver-side books *)
      let hello_inc = Array.make cfg.n Float.nan in
      (* newest batch first; concatenated in arrival order at the end so
         entries that share a timestamp keep their within-batch order
         through the final stable time-sort *)
      let shard_batches = Array.make cfg.shards [] in
      let push_batch shard es =
        if es <> [] then shard_batches.(shard) <- es :: shard_batches.(shard)
      in
      let live_stats = Array.make cfg.n [] in
      let snapshots = Array.make cfg.n Dmx_obs.Snapshot.empty in
      let acquires = Array.make cfg.shards 0 in
      let grants = Array.make cfg.shards 0 in
      let expiries = Array.make cfg.shards 0 in
      let latency = Array.init cfg.shards (fun _ -> Summary.create ()) in
      let rehomed = ref 0 in
      let completed = ref 0 in
      (* the driver's own registry: per-shard acquire-to-grant latency
         histograms (observed where [Summary.add] runs, so failover cost
         lands in both readouts) plus probes over the round counters *)
      let obs = Dmx_obs.Registry.create () in
      let acq_hist =
        Array.init cfg.shards (fun shard ->
            Dmx_obs.Registry.histogram obs
              ~labels:[ ("shard", string_of_int shard) ]
              "swarm.acquire_latency")
      in
      for shard = 0 to cfg.shards - 1 do
        let labels = [ ("shard", string_of_int shard) ] in
        Dmx_obs.Registry.probe obs ~labels "swarm.acquires" (fun () ->
            acquires.(shard));
        Dmx_obs.Registry.probe obs ~labels "swarm.grants" (fun () ->
            grants.(shard));
        Dmx_obs.Registry.probe obs ~labels "swarm.expiries" (fun () ->
            expiries.(shard))
      done;
      Dmx_obs.Registry.probe obs "swarm.rehomed_sessions" (fun () -> !rehomed);
      Dmx_obs.Registry.probe obs "swarm.completed_clients" (fun () ->
          !completed);
      (* clients *)
      let clients =
        Array.init cfg.clients (fun id ->
            let lock = Printf.sprintf "lock-%d" (id mod locks) in
            {
              id;
              lock;
              shard = Shard_map.shard_of_lock ~shards:cfg.shards lock;
              node = id mod cfg.n;
              inc = epoch;
              opened = false;
              phase = Thinking;
              round = 0;
              req = 0;
            })
      in
      let wakeups =
        Dmx_sim.Heap.create
          ~cmp:(fun a b ->
            let c = Float.compare a.at b.at in
            if c <> 0 then c else Int.compare a.seq b.seq)
          ()
      in
      let wseq = ref 0 in
      let wake ~at client what =
        incr wseq;
        Dmx_sim.Heap.add wakeups { at; client = client.id; what; seq = !wseq }
      in
      let think_delay () =
        if cfg.think <= 0.0 then 0.0 else Rng.exponential rng ~mean:cfg.think
      in
      let retry_interval = Float.max 0.25 (2.0 *. cfg.rto) in
      let send_open c =
        transport.send ~dst:c.node
          (Wire.Open_session { session = c.id; inc = c.inc });
        c.opened <- true
      in
      let send_acquire c =
        if not c.opened then send_open c;
        transport.send ~dst:c.node
          (Wire.Acquire { session = c.id; lock = c.lock; req = c.req })
      in
      let complete_round c =
        c.round <- c.round + 1;
        if c.round >= cfg.rounds then begin
          c.phase <- Done;
          incr completed
        end
        else begin
          c.phase <- Thinking;
          wake ~at:(now () +. think_delay ()) c Start
        end
      in
      let start_round c =
        if c.phase = Thinking then begin
          c.req <- c.round + 1;
          acquires.(c.shard) <- acquires.(c.shard) + 1;
          let t = now () in
          c.phase <- Waiting { sent_at = t; last_try = t };
          send_acquire c;
          wake ~at:(t +. retry_interval) c Retry
        end
      in
      let next_live node =
        let rec go k step =
          if step > cfg.n then node
          else if alive.(k) then k
          else go ((k + 1) mod cfg.n) (step + 1)
        in
        go ((node + 1) mod cfg.n) 0
      in
      (* frame handling *)
      let handle_frame frame =
        match frame with
        | Wire.Hello { site; inc } when site >= 0 && site < cfg.n ->
          let newer =
            Float.is_nan hello_inc.(site) || inc > hello_inc.(site)
          in
          if newer then hello_inc.(site) <- inc
        | Wire.Strace { shard; entries; _ }
          when shard >= 0 && shard < cfg.shards ->
          push_batch shard entries
        | Wire.Metrics { site; reliable; _ } when site >= 0 && site < cfg.n ->
          live_stats.(site) <- reliable
        | Wire.Metrics_v2 { site; snapshot } when site >= 0 && site < cfg.n ->
          snapshots.(site) <- snapshot
        | Wire.Grant { session; req; deadline = _; _ }
          when session >= 0 && session < cfg.clients -> (
          let c = clients.(session) in
          match c.phase with
          | Waiting { sent_at; _ } when req = c.req ->
            grants.(c.shard) <- grants.(c.shard) + 1;
            Summary.add latency.(c.shard) (now () -. sent_at);
            Dmx_obs.Metric.Histogram.observe_s acq_hist.(c.shard)
              (now () -. sent_at);
            if cfg.abandon > 0.0 && Rng.float rng 1.0 < cfg.abandon then
              (* simulate a client crash while holding: no release, no
                 renewal — the lease must clean up after us *)
              c.phase <- Draining
            else begin
              let release_at = now () +. cfg.hold in
              c.phase <- Holding { release_at };
              wake ~at:release_at c Release;
              if cfg.hold > cfg.lease /. 2.0 then
                wake ~at:(now () +. (cfg.lease /. 2.0)) c Renew
            end;
            if c.phase = Draining then
              wake ~at:(now () +. (2.0 *. cfg.lease) +. 1.0) c Failsafe
          | _ -> ()  (* renewal ack, duplicate, or stale grant *))
        | Wire.Expire { session; req; _ }
          when session >= 0 && session < cfg.clients -> (
          let c = clients.(session) in
          match c.phase with
          | (Holding _ | Draining) when req = c.req ->
            expiries.(c.shard) <- expiries.(c.shard) + 1;
            complete_round c
          | _ -> ()  (* stale: the round already moved on *))
        | Wire.Deny { session; req; reason; _ }
          when session >= 0 && session < cfg.clients -> (
          let c = clients.(session) in
          match c.phase with
          | Waiting w when req = c.req ->
            if reason = "no-session" then begin
              (* the node lost (or never had) the session: re-introduce
                 it and retry on the spot *)
              c.opened <- false;
              w.last_try <- now ();
              send_acquire c
            end
          | _ -> ())
        | _ -> ()
      in
      let drain () =
        let rec go () =
          match transport.poll () with
          | Some (Transport_sig.Frame { frame; _ }) ->
            handle_frame frame;
            go ()
          | Some (Transport_sig.Peer_down _ | Transport_sig.Peer_up _) -> go ()
          | None -> ()
        in
        go ()
      in
      (* phase 1: hello, with startup-death detection *)
      let hello_deadline = Float.min cfg.hello_timeout cfg.timeout in
      let startup_death = ref None in
      let check_startup_deaths () =
        Array.iteri
          (fun site pid ->
            match pid with
            | Some pid when Float.is_nan hello_inc.(site) -> (
              match Unix.waitpid [ WNOHANG ] pid with
              | 0, _ -> ()
              | _, status ->
                pids.(site) <- None;
                let what =
                  match status with
                  | Unix.WEXITED c -> Printf.sprintf "exited with code %d" c
                  | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
                  | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s
                in
                if !startup_death = None then
                  startup_death := Some (site, what)
              | exception _ -> ())
            | _ -> ())
          pids
      in
      while
        Array.exists Float.is_nan hello_inc
        && !startup_death = None
        && now () < hello_deadline
      do
        drain ();
        check_startup_deaths ();
        Unix.sleepf 0.005
      done;
      (match !startup_death with
      | Some (site, what) ->
        failwith
          (Printf.sprintf "snode %d died before saying hello (%s)" site what)
      | None -> ());
      if Array.exists Float.is_nan hello_inc then begin
        let missing =
          Array.to_list
            (Array.mapi (fun s inc -> (s, Float.is_nan inc)) hello_inc)
          |> List.filter_map (fun (s, m) ->
                 if m then Some (string_of_int s) else None)
        in
        failwith
          (Printf.sprintf "timeout: snode(s) %s never said hello within %.1fs"
             (String.concat "," missing) cfg.hello_timeout)
      end;
      (* phase 2: the swarm, with the kill/restart schedule *)
      let t0 = now () in
      Array.iter (fun c -> wake ~at:(t0 +. think_delay ()) c Start) clients;
      let pending_kills = ref (List.sort compare cfg.kills) in
      let pending_restarts = ref (List.sort compare cfg.restarts) in
      let last_hb = ref Float.neg_infinity in
      let kill_node site =
        (match pids.(site) with
        | Some pid ->
          Spawn.kill_quietly pid;
          pids.(site) <- None
        | None -> ());
        alive.(site) <- false;
        hello_inc.(site) <- Float.nan;
        for shard = 0 to cfg.shards - 1 do
          push_batch shard
            [
              {
                Trace.time = now ();
                site = Shard_map.site_of_node ~shard ~n:cfg.n site;
                kind = Trace.Crash;
              };
            ]
        done;
        (* re-home every session bound to the dead node: queued acquires
           restart on a live node (the latency clock keeps running, so
           failover cost shows up in the percentiles); holds are void —
           the lease dies with the node's shard instance *)
        Array.iter
          (fun c ->
            if c.node = site && c.phase <> Done then begin
              incr rehomed;
              c.node <- next_live site;
              c.opened <- false;
              c.inc <- Unix.gettimeofday ();
              match c.phase with
              | Waiting w ->
                w.last_try <- now ();
                send_acquire c
              | Holding _ | Draining ->
                expiries.(c.shard) <- expiries.(c.shard) + 1;
                complete_round c
              | Thinking | Done -> ()
            end)
          clients
      in
      let restart_node site =
        if not alive.(site) then begin
          pids.(site) <- Some (spawn site);
          alive.(site) <- true;
          for shard = 0 to cfg.shards - 1 do
            push_batch shard
              [
                {
                  Trace.time = now ();
                  site = Shard_map.site_of_node ~shard ~n:cfg.n site;
                  kind = Trace.Recover;
                };
              ]
          done
        end
      in
      let handle_wakeup w =
        let c = clients.(w.client) in
        match (w.what, c.phase) with
        | Start, Thinking -> start_round c
        | Retry, Waiting wt ->
          if now () -. wt.last_try >= retry_interval -. 1e-6 then begin
            wt.last_try <- now ();
            send_acquire c
          end;
          wake ~at:(now () +. retry_interval) c Retry
        | Release, Holding { release_at } when now () >= release_at -. 1e-6 ->
          transport.send ~dst:c.node
            (Wire.Release_lock { session = c.id; lock = c.lock; req = c.req });
          complete_round c
        | Renew, Holding { release_at } ->
          if release_at > now () then begin
            transport.send ~dst:c.node
              (Wire.Renew { session = c.id; lock = c.lock; req = c.req });
            wake ~at:(now () +. (cfg.lease /. 2.0)) c Renew
          end
        | Failsafe, Draining ->
          (* the Expire frame was lost (or the node died without one):
             the hold is certainly gone by now *)
          expiries.(c.shard) <- expiries.(c.shard) + 1;
          complete_round c
        | _ -> ()
      in
      while !completed < cfg.clients && now () < cfg.timeout do
        drain ();
        if now () -. !last_hb >= 0.5 then begin
          last_hb := now ();
          (* keepalive: the daemons exit on driver silence *)
          Array.iteri
            (fun site live ->
              if live then
                transport.send ~dst:site
                  (Wire.Heartbeat { site = cfg.n; time = now () }))
            alive
        end;
        let rel = now () -. t0 in
        (match !pending_kills with
        | (t, site) :: rest when rel >= t ->
          pending_kills := rest;
          kill_node site
        | _ -> ());
        (match !pending_restarts with
        | (t, site) :: rest when rel >= t ->
          pending_restarts := rest;
          restart_node site
        | _ -> ());
        let rec fire () =
          match Dmx_sim.Heap.peek wakeups with
          | Some w when w.at <= now () ->
            ignore (Dmx_sim.Heap.pop wakeups);
            handle_wakeup w;
            fire ()
          | Some _ | None -> ()
        in
        fire ();
        Unix.sleepf 0.0005
      done;
      if !completed < cfg.clients then
        failwith
          (Printf.sprintf "timeout: %d/%d clients finished" !completed
             cfg.clients);
      (* phase 3: shutdown, final Strace/Metrics drain, reap *)
      transport.broadcast Wire.Shutdown;
      let shutdowns_left = ref 2 in
      let next_shutdown = ref (Unix.gettimeofday () +. 0.2) in
      let grace = Unix.gettimeofday () +. 5.0 in
      let all_reaped () =
        Array.for_all
          (function
            | None -> true
            | Some pid -> (
              match Unix.waitpid [ WNOHANG ] pid with
              | 0, _ -> false
              | _ -> true
              | exception _ -> true))
          pids
      in
      let reaped = ref false in
      while (not !reaped) && Unix.gettimeofday () < grace do
        drain ();
        if !shutdowns_left > 0 && Unix.gettimeofday () >= !next_shutdown
        then begin
          decr shutdowns_left;
          next_shutdown := Unix.gettimeofday () +. 0.2;
          transport.broadcast Wire.Shutdown
        end;
        if all_reaped () then reaped := true else Unix.sleepf 0.01
      done;
      Array.iter (Option.iter Spawn.kill_quietly) pids;
      Array.fill pids 0 cfg.n None;
      Unix.sleepf 0.05;
      drain ();
      transport.close ();
      (* per-shard verdicts over the merged, time-sorted traces *)
      let per_shard =
        distil ~n:cfg.n ~crashy:(cfg.kills <> [])
          ~lossy:(not (Chaos.is_trivial plan))
          ~acquires ~grants ~expiries ~latency
          ~entries:
            (Array.map (fun bs -> List.concat (List.rev bs)) shard_batches)
      in
      Ok
        {
          per_shard;
          wall_seconds = Unix.gettimeofday () -. started_wall;
          completed_clients = !completed;
          rehomed_sessions = !rehomed;
          live_stats;
          snapshots;
          driver_snapshot = Dmx_obs.Registry.snapshot obs;
        }
    with
    | Failure msg ->
      cleanup ();
      Error ("swarm: " ^ msg)
    | e ->
      cleanup ();
      Error ("swarm: " ^ Printexc.to_string e))

(* ---- reporting ---- *)

let shard_ok s = Oracle.ok s.verdict && s.occupancy_violations = 0
let ok o = Array.for_all shard_ok o.per_shard

let live_totals o =
  match merged_snapshot o with
  | [] ->
    (* no node shipped a Metrics_v2 snapshot (old daemon, or all died
       before the final drain): fall back to the legacy alist fold *)
    Array.fold_left
      (fun acc site_stats ->
        List.fold_left
          (fun acc (k, v) ->
            (k, v + Option.value ~default:0 (List.assoc_opt k acc))
            :: List.remove_assoc k acc)
          acc site_stats)
      [] o.live_stats
    |> List.sort compare
  | merged -> Dmx_obs.Snapshot.to_alist merged

let pp_outcome ppf o =
  Format.fprintf ppf
    "shard  acquires  grants  expiries  p50(ms)  p95(ms)  p99(ms)  oracle@.";
  Array.iter
    (fun s ->
      let p q = 1000.0 *. Summary.percentile s.latency q in
      Format.fprintf ppf "%5d  %8d  %6d  %8d  %7.2f  %7.2f  %7.2f  %s@."
        s.shard s.acquires s.grants s.expiries (p 50.0) (p 95.0) (p 99.0)
        (if shard_ok s then "ok" else "VIOLATION"))
    o.per_shard;
  let total f = Array.fold_left (fun a s -> a + f s) 0 o.per_shard in
  Format.fprintf ppf
    "total: %d acquires, %d grants, %d expiries over %d shards; %d clients, \
     %d re-homed; wall %.2fs@."
    (total (fun s -> s.acquires))
    (total (fun s -> s.grants))
    (total (fun s -> s.expiries))
    (Array.length o.per_shard) o.completed_clients o.rehomed_sessions
    o.wall_seconds;
  (match live_totals o with
  | [] -> ()
  | totals ->
    Format.fprintf ppf "live counters:";
    List.iter (fun (k, v) -> Format.fprintf ppf " %s=%d" k v) totals;
    Format.fprintf ppf "@.");
  Array.iter
    (fun s ->
      if not (shard_ok s) then
        Format.fprintf ppf "shard %d: occupancy=%d %a@." s.shard
          s.occupancy_violations Oracle.pp_verdict s.verdict)
    o.per_shard
