(** Lock-namespace sharding.

    The service turns one mutual-exclusion protocol into a lock
    {e namespace} by hashing every lock name onto one of [shards]
    independent protocol instances. Each shard runs its own coterie over
    all [n] service nodes, but under a per-shard {e rotation} of site
    ids, so the structurally loaded positions of a coterie (the root of
    a tree quorum, the busy column of a grid) land on a different node
    for each shard — quorum load spreads over the node set instead of
    hammering node 0 in every shard.

    Everything here is pure arithmetic shared by the live daemon, the
    driver, and the deterministic simulator: all three must agree on
    where a lock lives and which node plays which site. *)

val hash : string -> int
(** 64-bit FNV-1a of the lock name, folded to a non-negative OCaml int.
    Stable across runs and processes (no randomized seeding) — the
    shard of a lock is part of the service's wire-visible contract. *)

val shard_of_lock : shards:int -> string -> int
(** The shard arbitrating this lock name.
    @raise Invalid_argument when [shards < 1]. *)

val node_of_site : shard:int -> n:int -> int -> int
(** The node that plays protocol site [site] of [shard]: rotation by
    [shard] modulo [n].
    @raise Invalid_argument when the site is outside [0, n). *)

val site_of_node : shard:int -> n:int -> int -> int
(** Inverse of {!node_of_site}: which protocol site of [shard] the given
    node plays.
    @raise Invalid_argument when the node is outside [0, n). *)
