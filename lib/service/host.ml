(* Per-node service logic, shared verbatim by the live daemon (Snode)
   and the deterministic simulator (Sim_swarm).

   One host owns this node's slice of every shard: a protocol instance
   (one per shard, over rotated site ids — see Shard_map) plus the
   Lease machine that adapts client sessions to the protocol's single
   CS. The host never touches a socket or a clock directly; everything
   flows through the [caps] record, so the same code runs on the wall
   clock over UDP and on virtual time inside a test. *)

module Proto = Dmx_sim.Protocol
module Trace = Dmx_sim.Trace
module Lease = Dmx_core.Lease

type caps = {
  now : unit -> float;
  send_shard : shard:int -> dst_node:int -> string -> unit;
  send_client : Dmx_net.Wire.frame -> unit;
  set_timer : shard:int -> tag:int -> delay:float -> unit;
}

module Make (P : Proto.PROTOCOL) = struct
  type codec = {
    encode : P.message -> string;
    decode : string -> (P.message, string) result;
  }

  type shard_state = {
    index : int;
    my_site : int;  (* this node's site id inside the shard's rotation *)
    pctx : P.message Proto.ctx;
    pstate : P.state;
    lease : Lease.t;
    selfq : P.message Queue.t;
    pending_enter : bool ref;  (* shared with the ctx's enter_cs closure *)
    traces : Trace.entry Queue.t;
  }

  type t = {
    caps : caps;
    codec : codec;
    self : int;
    n : int;
    mutable shards : shard_state array;
    sessions : (int, float) Hashtbl.t;  (* session -> incarnation *)
    locks : (int * int, string) Hashtbl.t;  (* (session, req) -> lock *)
    kinds : (string, int) Hashtbl.t;
    mutable sent : int;
    mutable received : int;
    mutable denies : int;
    mutable obs : Dmx_obs.Registry.t option;  (* set by [attach_obs] *)
  }

  let count_kind t k =
    Hashtbl.replace t.kinds k
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.kinds k));
    match t.obs with
    | None -> ()
    | Some reg ->
      Dmx_obs.Metric.Counter.incr
        (Dmx_obs.Registry.counter reg "service.messages.kind"
           ~labels:[ ("kind", k) ])

  let render msg = Format.asprintf "%a" P.pp_message msg

  (* Traces are per shard, in the shard's own site-id space: each shard's
     merged log must look to the oracle like a self-contained n-site
     system. *)
  let trace t sh kind =
    Queue.push
      { Trace.time = t.caps.now (); site = sh.my_site; kind }
      sh.traces

  let create ~caps ~codec ~self ~n ~shards ~lease ~seed ~pconfig =
    if shards < 1 then invalid_arg "Host: shards must be >= 1";
    if self < 0 || self >= n then invalid_arg "Host: self out of range";
    let t =
      {
        caps;
        codec;
        self;
        n;
        shards = [||];
        sessions = Hashtbl.create 64;
        locks = Hashtbl.create 64;
        kinds = Hashtbl.create 8;
        sent = 0;
        received = 0;
        denies = 0;
        obs = None;
      }
    in
    let make_shard index =
      let my_site = Shard_map.site_of_node ~shard:index ~n self in
      let selfq = Queue.create () in
      let traces = Queue.create () in
      let pending_enter = ref false in
      let push_trace kind =
        Queue.push { Trace.time = caps.now (); site = my_site; kind } traces
      in
      let pctx : P.message Proto.ctx =
        {
          Proto.self = my_site;
          n;
          now = caps.now;
          send =
            (fun ~dst msg ->
              push_trace (Trace.Send { dst; msg = render msg });
              if dst = my_site then Queue.push msg selfq
              else begin
                t.sent <- t.sent + 1;
                count_kind t (P.message_kind msg);
                caps.send_shard ~shard:index
                  ~dst_node:(Shard_map.node_of_site ~shard:index ~n dst)
                  (codec.encode msg)
              end);
          enter_cs = (fun () -> pending_enter := true);
          set_timer =
            (fun ~delay ~tag -> caps.set_timer ~shard:index ~tag ~delay);
          rng = Dmx_sim.Rng.create (seed + (index * 7919) + self + 1);
          trace_note = (fun s -> push_trace (Trace.Note s));
          trace_event = push_trace;
          mark_parked =
            (fun p ->
              push_trace (Trace.Note (if p then "parked" else "unparked")));
        }
      in
      let pstate = P.init pctx (pconfig ~shard:index) in
      let lease_io =
        {
          Lease.now = caps.now;
          set_timer =
            (fun ~delay ->
              caps.set_timer ~shard:index ~tag:Lease.timer_tag ~delay);
        }
      in
      {
        index;
        my_site;
        pctx;
        pstate;
        lease = Lease.create lease ~io:lease_io;
        selfq;
        pending_enter;
        traces;
      }
    in
    t.shards <- Array.init shards make_shard;
    t

  let lock_of t ~session ~req =
    Option.value ~default:"?" (Hashtbl.find_opt t.locks (session, req))

  let rec perform t sh (actions : Lease.action list) =
    List.iter
      (function
        | Lease.Grant { session; req; deadline } ->
          t.caps.send_client
            (Dmx_net.Wire.Grant
               { session; lock = lock_of t ~session ~req; req; deadline })
        | Lease.Expire { session; req } ->
          let lock = lock_of t ~session ~req in
          Hashtbl.remove t.locks (session, req);
          t.caps.send_client (Dmx_net.Wire.Expire { session; lock; req })
        | Lease.Request_cs ->
          trace t sh Trace.Request;
          P.request_cs sh.pctx sh.pstate
        | Lease.Release_cs ->
          trace t sh Trace.Exit_cs;
          P.release_cs sh.pctx sh.pstate)
      actions;
    (* a request issued above can be granted synchronously (e.g. an idle
       local arbiter replies from this very node), so observe any
       enter_cs the protocol signalled while we were inside perform *)
    settle t sh

  and settle t sh =
    if !(sh.pending_enter) then begin
      sh.pending_enter := false;
      trace t sh Trace.Enter_cs;
      perform t sh (Lease.granted sh.lease)
    end

  let shard_of_lock t lock =
    Shard_map.shard_of_lock ~shards:(Array.length t.shards) lock

  let deny t ~session ~lock ~req ~reason =
    t.denies <- t.denies + 1;
    t.caps.send_client (Dmx_net.Wire.Deny { session; lock; req; reason })

  let drop_session_locks t ~session =
    let stale =
      Hashtbl.fold
        (fun (s, r) _ acc -> if s = session then (s, r) :: acc else acc)
        t.locks []
    in
    List.iter (Hashtbl.remove t.locks) stale

  let open_session t ~session ~inc =
    match Hashtbl.find_opt t.sessions session with
    | Some inc' when inc' >= inc -> ()  (* duplicate or stale open *)
    | prior ->
      Hashtbl.replace t.sessions session inc;
      (* a larger incarnation is hard evidence the old client is gone:
         free anything it still queues or holds, in every shard *)
      if prior <> None then begin
        drop_session_locks t ~session;
        Array.iter
          (fun sh -> perform t sh (Lease.void_session sh.lease ~session))
          t.shards
      end

  let acquire t ~session ~lock ~req =
    if not (Hashtbl.mem t.sessions session) then
      deny t ~session ~lock ~req ~reason:"no-session"
    else begin
      let sh = t.shards.(shard_of_lock t lock) in
      Hashtbl.replace t.locks (session, req) lock;
      perform t sh (Lease.acquire sh.lease ~session ~req)
    end

  let release t ~session ~lock ~req =
    if Hashtbl.mem t.sessions session then begin
      let sh = t.shards.(shard_of_lock t lock) in
      Hashtbl.remove t.locks (session, req);
      perform t sh (Lease.release sh.lease ~session ~req)
    end

  let renew t ~session ~lock ~req =
    if not (Hashtbl.mem t.sessions session) then
      deny t ~session ~lock ~req ~reason:"no-session"
    else begin
      let sh = t.shards.(shard_of_lock t lock) in
      perform t sh (Lease.renew sh.lease ~session ~req)
    end

  let void_session t ~session =
    Hashtbl.remove t.sessions session;
    drop_session_locks t ~session;
    Array.iter
      (fun sh -> perform t sh (Lease.void_session sh.lease ~session))
      t.shards

  let on_sproto t ~shard ~src_node payload =
    if shard >= 0 && shard < Array.length t.shards then begin
      let sh = t.shards.(shard) in
      match t.codec.decode payload with
      | Ok msg ->
        t.received <- t.received + 1;
        let src = Shard_map.site_of_node ~shard ~n:t.n src_node in
        trace t sh (Trace.Receive { src; msg = render msg });
        P.on_message sh.pctx sh.pstate ~src msg;
        settle t sh
      | Error e ->
        trace t sh
          (Trace.Note
             (Printf.sprintf "undecodable shard message from %d: %s" src_node
                e))
    end

  let on_timer t ~shard ~tag =
    if shard >= 0 && shard < Array.length t.shards then begin
      let sh = t.shards.(shard) in
      if tag = Lease.timer_tag then perform t sh (Lease.on_timer sh.lease)
      else begin
        trace t sh (Trace.Timer tag);
        P.on_timer sh.pctx sh.pstate tag;
        settle t sh
      end
    end

  let on_node_failure t ~node =
    if node <> t.self && node >= 0 && node < t.n then
      Array.iter
        (fun sh ->
          let site = Shard_map.site_of_node ~shard:sh.index ~n:t.n node in
          trace t sh (Trace.Suspect site);
          P.on_failure sh.pctx sh.pstate site;
          settle t sh)
        t.shards

  let on_node_recovery t ~node =
    if node <> t.self && node >= 0 && node < t.n then
      Array.iter
        (fun sh ->
          let site = Shard_map.site_of_node ~shard:sh.index ~n:t.n node in
          trace t sh (Trace.Trust site);
          P.on_recovery sh.pctx sh.pstate site;
          settle t sh)
        t.shards

  (* Self-sends are delivered at the next turn of the owning loop, as in
     the engine and the node daemon. *)
  let tick t =
    Array.iter
      (fun sh ->
        while not (Queue.is_empty sh.selfq) do
          let msg = Queue.pop sh.selfq in
          P.on_message sh.pctx sh.pstate ~src:sh.my_site msg
        done;
        settle t sh)
      t.shards

  let drain_traces t =
    Array.fold_left
      (fun acc sh ->
        if Queue.is_empty sh.traces then acc
        else begin
          let entries = List.of_seq (Queue.to_seq sh.traces) in
          Queue.clear sh.traces;
          (sh.index, entries) :: acc
        end)
      [] t.shards
    |> List.rev

  let sent t = t.sent
  let received t = t.received
  let shard_count t = Array.length t.shards
  let session_count t = Hashtbl.length t.sessions

  let kinds_alist t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.kinds []

  let lease_stats t =
    let add acc alist =
      List.fold_left
        (fun acc (k, v) ->
          (k, v + Option.value ~default:0 (List.assoc_opt k acc))
          :: List.remove_assoc k acc)
        acc alist
    in
    let base =
      Array.fold_left
        (fun acc sh -> add acc (Lease.stats_alist sh.lease))
        [] t.shards
    in
    (if t.denies > 0 then [ ("service.denies", t.denies) ] else [])
    @ List.sort compare base

  let fold_states t f acc =
    Array.fold_left (fun acc sh -> f acc sh.pstate) acc t.shards

  (* Bind every shard's lease cells (labelled by shard index) plus the
     host-level counters into a registry; [proto] lets the caller bind
     protocol-owned cells too — e.g. Reliable.attach — under the same
     per-shard labels. *)
  let attach_obs ?(proto = fun _ ~labels:_ _ -> ()) t reg =
    Array.iter
      (fun sh ->
        let labels = [ ("shard", string_of_int sh.index) ] in
        Lease.attach ~labels sh.lease reg;
        proto sh.pstate ~labels reg)
      t.shards;
    Dmx_obs.Registry.probe reg "service.sent" (fun () -> t.sent);
    Dmx_obs.Registry.probe reg "service.received" (fun () -> t.received);
    Dmx_obs.Registry.probe reg "service.denies" (fun () -> t.denies);
    Dmx_obs.Registry.gauge_probe reg "service.sessions" (fun () ->
        Hashtbl.length t.sessions);
    t.obs <- Some reg
end
