(* The live service daemon: one process hosting this node's slice of
   every shard, over the same transports, chaos shim, heartbeat and
   trampoline machinery as the single-protocol node daemon (lib/net's
   Node) — but speaking the session/lease control frames and running a
   Host instead of one protocol instance. *)

module Trace = Dmx_sim.Trace
module B = Dmx_quorum.Builder
module Wire = Dmx_net.Wire
module Transport_sig = Dmx_net.Transport_sig
module Transports = Dmx_net.Transports
module Chaos = Dmx_net.Chaos

type spec = {
  site : int;
  n : int;
  node_ports : int array;
  supervisor_port : int;
  protocol : string;
  quorum : string;
  shards : int;
  lease : float;  (* lease duration, seconds *)
  max_batch : int;
  seed : int;
  epoch : float;
  hb_period : float;
  hb_timeout : float;
  rto : float;
  max_seconds : float;
  transport : string;
  chaos : Chaos.plan;
  metrics_port : int;  (* 0 = no scrape listener *)
}

let env_var = "DMX_SERVICE_SPEC"

let spec_to_string s =
  Printf.sprintf
    "site=%d n=%d ports=%s sup=%d proto=%s quorum=%s shards=%d lease=%h \
     batch=%d seed=%d epoch=%h hb=%h hbto=%h rto=%h max=%h trans=%s chaos=%s \
     mport=%d"
    s.site s.n
    (String.concat ","
       (Array.to_list (Array.map string_of_int s.node_ports)))
    s.supervisor_port s.protocol s.quorum s.shards s.lease s.max_batch s.seed
    s.epoch s.hb_period s.hb_timeout s.rto s.max_seconds s.transport
    (Chaos.plan_to_string s.chaos)
    s.metrics_port

let spec_of_string str =
  try
    let kv =
      String.split_on_char ' ' str
      |> List.filter (fun s -> s <> "")
      |> List.map (fun s ->
             match String.index_opt s '=' with
             | Some i ->
               ( String.sub s 0 i,
                 String.sub s (i + 1) (String.length s - i - 1) )
             | None -> failwith ("bad field " ^ s))
    in
    let get k =
      match List.assoc_opt k kv with
      | Some v -> v
      | None -> failwith ("missing field " ^ k)
    in
    let geti k = int_of_string (get k) in
    let getf k = float_of_string (get k) in
    Ok
      {
        site = geti "site";
        n = geti "n";
        node_ports =
          get "ports" |> String.split_on_char ','
          |> List.map int_of_string |> Array.of_list;
        supervisor_port = geti "sup";
        protocol = get "proto";
        quorum = get "quorum";
        shards = geti "shards";
        lease = getf "lease";
        max_batch = geti "batch";
        seed = geti "seed";
        epoch = getf "epoch";
        hb_period = getf "hb";
        hb_timeout = getf "hbto";
        rto = getf "rto";
        max_seconds = getf "max";
        transport = get "trans";
        chaos = Chaos.plan_of_string (get "chaos");
        metrics_port =
          (match List.assoc_opt "mport" kv with
          | Some p -> int_of_string p
          | None -> 0);
      }
  with e ->
    Error (Printf.sprintf "bad service spec %S: %s" str (Printexc.to_string e))

let supervisor_silence_limit = 30.0

let debug =
  match Sys.getenv_opt "DMX_NET_DEBUG" with Some "1" -> true | _ -> false

let dbg fmt =
  if debug then Printf.eprintf (fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

module Run (P : Dmx_sim.Protocol.PROTOCOL) = struct
  module H = Host.Make (P)

  type timer = { at : float; shard : int; tag : int; seq : int }

  let run (spec : spec) ~(codec : H.codec) ?(live_stats = fun _ -> [])
      ?(attach_obs = fun _ ~labels:_ _ -> ()) (pconfig : shard:int -> P.config)
      =
    let now () = Unix.gettimeofday () -. spec.epoch in
    let started = now () in
    let hello_inc = Unix.gettimeofday () in
    let peer_list =
      List.filter_map
        (fun j ->
          if j = spec.site then None
          else
            Some
              ( j,
                Unix.ADDR_INET (Unix.inet_addr_loopback, spec.node_ports.(j))
              ))
        (List.init spec.n Fun.id)
      @ [
          ( spec.n,
            Unix.ADDR_INET (Unix.inet_addr_loopback, spec.supervisor_port) );
        ]
    in
    let raw =
      Transports.create_exn spec.transport
        {
          Transport_sig.self = spec.site;
          listen_port = spec.node_ports.(spec.site);
          peers = peer_list;
          hb_period = spec.hb_period;
          hb_timeout = spec.hb_timeout;
          watch =
            List.init spec.n Fun.id |> List.filter (fun j -> j <> spec.site);
          hello_inc;
        }
    in
    let shim =
      if Chaos.is_trivial spec.chaos then None
      else
        Some
          (Chaos.create spec.chaos ~self:spec.site
             ~peers:(List.map fst peer_list) ~inner:raw)
    in
    let transport =
      match shim with Some c -> Chaos.handle c | None -> raw
    in
    (* timers: protocol and lease timers of every shard in one heap *)
    let timer_seq = ref 0 in
    let timers =
      Dmx_sim.Heap.create
        ~cmp:(fun a b ->
          let c = Float.compare a.at b.at in
          if c <> 0 then c else Int.compare a.seq b.seq)
        ()
    in
    let caps =
      {
        Host.now;
        send_shard =
          (fun ~shard ~dst_node payload ->
            transport.send ~dst:dst_node
              (Wire.Sproto { shard; src = spec.site; dst = dst_node; payload }));
        send_client = (fun frame -> transport.send ~dst:spec.n frame);
        set_timer =
          (fun ~shard ~tag ~delay ->
            incr timer_seq;
            Dmx_sim.Heap.add timers
              { at = now () +. delay; shard; tag; seq = !timer_seq });
      }
    in
    let host =
      H.create ~caps ~codec ~self:spec.site ~n:spec.n ~shards:spec.shards
        ~lease:{ Dmx_core.Lease.duration = spec.lease; max_batch = spec.max_batch }
        ~seed:spec.seed ~pconfig
    in
    (* one registry per daemon: lease cells per shard, protocol cells via
       [attach_obs], transport/chaos probes — served on [metrics_port]
       and shipped in the final Metrics_v2 frame *)
    let reg = Dmx_obs.Registry.create () in
    H.attach_obs ~proto:attach_obs host reg;
    Transport_sig.register_obs reg ~prefix:"transport" transport;
    (match shim with Some c -> Chaos.register_obs reg c | None -> ());
    let scrape =
      if spec.metrics_port > 0 then
        Some
          (Dmx_net.Scrape.start ~port:spec.metrics_port (fun () ->
               Dmx_obs.Registry.snapshot reg))
      else None
    in
    (* trace streaming: per-shard Strace frames, chunked so a batch fits
       a UDP datagram like the node daemon's 96-entry chunks *)
    let last_flush = ref (now ()) in
    let flush_traces () =
      List.iter
        (fun (shard, entries) ->
          let rec chunks = function
            | [] -> ()
            | es ->
              let rec take k acc = function
                | rest when k = 0 -> (List.rev acc, rest)
                | [] -> (List.rev acc, [])
                | e :: rest -> take (k - 1) (e :: acc) rest
              in
              let batch, rest = take 96 [] es in
              transport.send ~dst:spec.n
                (Wire.Strace { shard; site = spec.site; entries = batch });
              chunks rest
          in
          chunks entries)
        (H.drain_traces host);
      last_flush := now ()
    in
    let driver_seen = ref false in
    let last_super_contact = ref (now ()) in
    let last_hb = ref Float.neg_infinity in
    let shutdown = ref false in
    let metrics () =
      let reliable =
        H.lease_stats host
        @ H.fold_states host (fun acc st -> acc @ live_stats st) []
        @ (match shim with Some c -> Chaos.stats_alist c | None -> [])
        @ Transport_sig.stats_alist ~prefix:"transport" (transport.stats ())
      in
      let executions =
        Option.value ~default:0
          (List.assoc_opt "lease.grants" (H.lease_stats host))
      in
      transport.send ~dst:spec.n
        (Wire.Metrics
           {
             site = spec.site;
             executions;
             sent = H.sent host;
             received = H.received host;
             kinds = H.kinds_alist host;
             reliable;
           });
      transport.send ~dst:spec.n
        (Wire.Metrics_v2
           { site = spec.site; snapshot = Dmx_obs.Registry.snapshot reg })
    in
    while
      (not !shutdown)
      && now () -. !last_super_contact < supervisor_silence_limit
      && now () -. started < spec.max_seconds
    do
      if spec.hb_period > 0.0 && now () -. !last_hb >= spec.hb_period then begin
        last_hb := now ();
        transport.broadcast (Wire.Heartbeat { site = spec.site; time = now () });
        (* keep re-introducing ourselves until the driver speaks: on a
           datagram transport the first Hello can simply be lost *)
        if not !driver_seen then
          transport.send ~dst:spec.n
            (Wire.Hello { site = spec.site; inc = hello_inc })
      end;
      (* due timers *)
      let rec fire_timers () =
        match Dmx_sim.Heap.peek timers with
        | Some tm when tm.at <= now () ->
          ignore (Dmx_sim.Heap.pop timers);
          H.on_timer host ~shard:tm.shard ~tag:tm.tag;
          fire_timers ()
        | Some _ | None -> ()
      in
      fire_timers ();
      H.tick host;
      (* network events *)
      let driver_frame () =
        driver_seen := true;
        last_super_contact := now ()
      in
      let rec drain () =
        match transport.poll () with
        | None -> ()
        | Some ev ->
          (match ev with
          | Transport_sig.Frame { src; frame } ->
            if src = spec.n then last_super_contact := now ();
            (match frame with
            | Wire.Sproto { shard; src = src_node; payload; _ } ->
              H.on_sproto host ~shard ~src_node payload
            | Wire.Open_session { session; inc } ->
              driver_frame ();
              H.open_session host ~session ~inc
            | Wire.Acquire { session; lock; req } ->
              driver_frame ();
              H.acquire host ~session ~lock ~req
            | Wire.Release_lock { session; lock; req } ->
              driver_frame ();
              H.release host ~session ~lock ~req
            | Wire.Renew { session; lock; req } ->
              driver_frame ();
              H.renew host ~session ~lock ~req
            | Wire.Shutdown ->
              driver_frame ();
              dbg "snode %d: shutdown at %.3f" spec.site (now ());
              shutdown := true
            | Wire.Workload _ ->
              (* the swarm driver has no use for it, but answering the
                 cluster supervisor's keepalive idiom is harmless *)
              last_super_contact := now ()
            | Wire.Hello _ | Wire.Heartbeat _ | Wire.Proto _
            | Wire.Trace_batch _ | Wire.Metrics _ | Wire.Metrics_v2 _
            | Wire.Grant _ | Wire.Deny _ | Wire.Expire _ | Wire.Strace _ ->
              ())
          | Transport_sig.Peer_down s -> H.on_node_failure host ~node:s
          | Transport_sig.Peer_up s -> H.on_node_recovery host ~node:s);
          drain ()
      in
      drain ();
      H.tick host;
      if now () -. !last_flush > 0.2 then flush_traces ();
      Unix.sleepf 0.0002
    done;
    dbg "snode %d: exiting at %.3f (shutdown=%b)" spec.site (now ()) !shutdown;
    flush_traces ();
    metrics ();
    (* let the final frames drain before tearing the sockets down *)
    Unix.sleepf 0.1;
    (match scrape with Some s -> Dmx_net.Scrape.stop s | None -> ());
    transport.close ()
end

let run_named (spec : spec) =
  match B.parse_kind spec.quorum with
  | Error e -> Error e
  | Ok kind -> (
    let n = spec.n in
    if spec.site < 0 || spec.site >= n then Error "site out of range"
    else if Array.length spec.node_ports <> n then Error "ports/n mismatch"
    else if spec.shards < 1 then Error "shards must be >= 1"
    else if not (B.supports kind ~n) then
      Error
        (Format.asprintf "quorum %a does not support n=%d" B.pp_kind kind n)
    else
      match spec.protocol with
      | "delay-optimal" ->
        let module R = Run (Dmx_core.Delay_optimal) in
        R.run spec
          ~codec:
            {
              R.H.encode = Wire.encode_message;
              decode = Wire.decode_message;
            }
          (fun ~shard:_ -> Dmx_core.Delay_optimal.config (B.req_sets kind ~n));
        Ok ()
      | "ft-delay-optimal" ->
        let module R = Run (Dmx_core.Ft_delay_optimal) in
        let reliability =
          {
            Dmx_core.Reliable.rto = spec.rto;
            backoff = 2.0;
            rto_max = 16.0 *. spec.rto;
            ack_delay = 0.1 *. spec.rto;
          }
        in
        R.run spec
          ~codec:
            {
              R.H.encode = Wire.encode_message;
              decode = Wire.decode_message;
            }
          ~live_stats:(fun st ->
            match Dmx_core.Ft_delay_optimal.Internal.reliable st with
            | Some r -> Dmx_core.Reliable.stats_alist r
            | None -> [])
          ~attach_obs:(fun st ~labels reg ->
            match Dmx_core.Ft_delay_optimal.Internal.reliable st with
            | Some r -> Dmx_core.Reliable.attach ~labels r reg
            | None -> ())
          (fun ~shard:_ ->
            Dmx_core.Ft_delay_optimal.config_of_kind ~reliability
              ~trust_detector:false kind ~n ~broadcast:false);
        Ok ()
      | p -> Error (Printf.sprintf "unknown protocol %S" p))

let run_as_child_if_requested () =
  match Sys.getenv_opt env_var with
  | None -> ()
  | Some s -> (
    match spec_of_string s with
    | Error e ->
      prerr_endline e;
      exit 2
    | Ok spec -> (
      match run_named spec with
      | Ok () -> exit 0
      | Error e ->
        prerr_endline e;
        exit 2))
