(** Typed reader/validator for [BENCH_*.json] perf snapshots.

    The bench driver writes snapshots with schema tag [dmx-bench/1]
    (field reference in PERFORMANCE.md). [dmx-sim validate FILE.json]
    uses this module to re-check a snapshot: the schema version must be
    known, required fields must be present with the right types (a clean
    [Error], never an exception), unknown fields are reported as
    warnings (forward compatibility), and the recorded numbers must be
    internally consistent. *)

val schema_version : string
(** ["dmx-bench/1"]. *)

type experiment = {
  name : string;
  wall_s : float;
  events : int;
  events_per_sec : float;
  ok : bool;
}

type t = {
  schema : string;
  quick : bool;
  jobs : int;
  experiments : experiment list;
  total_wall_s : float;
  peak_heap_words : int;
  oracle_rejected : int;
}

val parse : string -> (t * string list, string) result
(** [parse contents] returns the snapshot plus a list of warnings (one
    per unknown field, e.g. ["unknown field \"foo\" (ignored)"]).
    Errors name what went wrong and where: bad JSON (with byte offset,
    covering truncated/corrupt files), an unknown [schema] version, a
    missing required field, or a field of the wrong type. The [schema]
    field is checked first so a version mismatch is reported as such
    rather than as a cascade of shape errors. *)

val consistency : t -> string list
(** Internal-consistency audit of a parsed snapshot; empty = clean.
    Reports experiments flagged [ok = false], a positive
    [oracle_rejected] count, negative counters/durations, and
    [events_per_sec] that disagrees with [events / wall_s] by more than
    2% (guarding the derived field the bench-diff tooling keys on). *)

val pp : Format.formatter -> t -> unit
(** One-line-per-experiment human summary. *)
