(* The paper's Section 5 closed forms as executable tolerance bands.
   See model.mli for the contract; EXPERIMENTS.md §V1 records the
   calibration (every band passes the seeded suite in both quick and full
   modes with daylight to spare, while the canary perturbations fail). *)

module B = Dmx_quorum.Builder
module E = Dmx_sim.Engine
module Net = Dmx_sim.Network
module W = Dmx_sim.Workload
module S = Dmx_sim.Stats.Summary

type load = Light | Heavy | Poisson of float
type delay_shape = Constant | Random

type params = {
  algorithm : string;
  n : int;
  k : float;
  e : float;
  t : float;
  load : load;
  delay_shape : delay_shape;
}

let quorum_based = function
  | "delay-optimal" | "ft-delay-optimal" | "maekawa" -> true
  | _ -> false

let params ?(kind = B.Grid) ~algorithm ~n ~e ~t ~load ~delay_shape () =
  let k =
    if quorum_based algorithm && B.supports kind ~n then
      (* lazy + sampled above 4096 sites: exact below, and never O(N·K)
         memory, so this is safe to call at N = 10^6 *)
      (B.assignment_stats (B.assignment kind ~n)).B.k_mean
    else 0.0
  in
  { algorithm; n; k; e; t; load; delay_shape }

type band = { lo : float; hi : float }
type tolerance = { abs : float; rel : float }

let default_tolerance = { abs = 0.75; rel = 0.08 }

type metric = Msgs_per_cs | Sync_delay | Response_time | Throughput | Ratio of string

let metric_name = function
  | Msgs_per_cs -> "msgs/CS"
  | Sync_delay -> "sync delay"
  | Response_time -> "response"
  | Throughput -> "throughput"
  | Ratio what -> "ratio " ^ what

type expectation = {
  metric : metric;
  band : band;
  tol : tolerance;
  formula : string;
  provenance : string;
}

let expect ?(tol = default_tolerance) metric ~lo ~hi ~formula ~provenance =
  { metric; band = { lo; hi }; tol; formula; provenance }

(* ---- per-algorithm message bands (Table 1) ---- *)

let log2 x = log x /. log 2.0

(* Returns (lo, hi, formula) for messages per CS, or None when the model
   has nothing to claim for this algorithm. *)
let msgs_band p =
  let nf = float_of_int p.n in
  let k1 = p.k -. 1.0 in
  match (p.algorithm, p.load) with
  | "lamport", _ ->
    Some (3.0 *. (nf -. 1.0), 3.0 *. (nf -. 1.0),
          Printf.sprintf "3(N-1) = %g" (3.0 *. (nf -. 1.0)))
  | "ricart-agrawala", _ ->
    Some (2.0 *. (nf -. 1.0), 2.0 *. (nf -. 1.0),
          Printf.sprintf "2(N-1) = %g" (2.0 *. (nf -. 1.0)))
  | "singhal-dynamic", _ ->
    Some (nf -. 1.0, 2.0 *. (nf -. 1.0),
          Printf.sprintf "N-1..2(N-1) = %g..%g" (nf -. 1.0) (2.0 *. (nf -. 1.0)))
  | ("suzuki-kasami" | "singhal-heuristic"), _ ->
    Some (0.0, nf, Printf.sprintf "0..N = 0..%g" nf)
  | ("raymond" | "raymond-chain"), _ ->
    (* O(log N) average over the token tree; 4·log2 N upper envelope *)
    Some (0.0, 4.0 *. log2 nf, Printf.sprintf "O(log N) <= 4 log2 N = %.1f" (4.0 *. log2 nf))
  | ("delay-optimal" | "ft-delay-optimal"), Light ->
    Some (3.0 *. k1, 3.0 *. k1, Printf.sprintf "3(K-1) = %.1f" (3.0 *. k1))
  | ("delay-optimal" | "ft-delay-optimal"), Heavy ->
    (* §5.2 Cases 1/2: request, fail, transfer, reply, release = 5(K-1),
       plus inquire/yield pushing toward 6(K-1) *)
    Some (5.0 *. k1, 6.0 *. k1,
          Printf.sprintf "5(K-1)..6(K-1) = %.1f..%.1f" (5.0 *. k1) (6.0 *. k1))
  | "maekawa", Light ->
    Some (3.0 *. k1, 3.0 *. k1, Printf.sprintf "3(K-1) = %.1f" (3.0 *. k1))
  | "maekawa", Heavy ->
    Some (3.0 *. k1, 5.0 *. k1,
          Printf.sprintf "3(K-1)..5(K-1) = %.1f..%.1f" (3.0 *. k1) (5.0 *. k1))
  | _ -> None

(* ---- synchronization delay (§5.2, Table 1) ---- *)

let sync_band p =
  let t = p.t in
  match (p.algorithm, p.delay_shape) with
  | ("delay-optimal" | "ft-delay-optimal"), Constant ->
    (* the headline claim: handoff in one hop. With E < 2T a transfer is
       not always set up before the exit and a residual fraction of
       handoffs falls back to the release path (measured <= ~1.4T). *)
    if p.e >= 2.0 *. t then Some (t, t, "T")
    else Some (t, 1.4 *. t, "T..1.4T (E < 2T: some handoffs take the release path)")
  | ("delay-optimal" | "ft-delay-optimal"), Random ->
    Some (0.9 *. t, 2.5 *. t, "~T (order statistics inflate the mean)")
  | "maekawa", Constant -> Some (2.0 *. t, 2.0 *. t, "2T")
  | "maekawa", Random -> Some (1.8 *. t, 3.3 *. t, "~2T (inflated by order statistics)")
  | ("lamport" | "ricart-agrawala" | "singhal-dynamic"), Constant ->
    Some (t, t, "T")
  | ("suzuki-kasami" | "singhal-heuristic"), Constant -> Some (t, t, "T")
  | ("raymond" | "raymond-chain"), Constant ->
    Some (t, log2 (float_of_int p.n) *. t,
          Printf.sprintf "T..(log2 N)T = %.1fT..%.1fT" 1.0 (log2 (float_of_int p.n)))
  | _, Random -> None
  | _, Constant -> None

(* ---- light-load response (§5.1) ---- *)

let response_band p =
  let t = p.t in
  match p.algorithm with
  | "suzuki-kasami" ->
    (* broadcast finds the holder in one hop; the holder re-enters free *)
    Some (0.0, 2.0 *. t, "0..2T (token may already be held)")
  | "raymond" | "raymond-chain" ->
    (* the request climbs toward the token holder and the token walks
       back: up to 2 log2(N) tree hops each taking T *)
    let hi = 4.0 *. log2 (float_of_int p.n) *. t in
    Some (0.0, hi,
          Printf.sprintf "0..4(log2 N)T = 0..%.1fT (request and token walk the tree)" hi)
  | "singhal-heuristic" ->
    (* the heuristic request set can miss an idle token holder entirely,
       leaving the request parked until unrelated traffic finds it — no
       closed-form light-load bound to hold the algorithm to *)
    None
  | _ -> Some (2.0 *. t, 2.0 *. t, "2T (request out, permission back)")

(* ---- heavy-load throughput (§5.2) ---- *)

let throughput_band p =
  match p.algorithm with
  | "delay-optimal" | "ft-delay-optimal" ->
    (* between Maekawa's cycle bound and the T-handoff pipeline bound *)
    Some (1.0 /. (p.e +. (2.0 *. p.t)), 1.0 /. (p.e +. p.t),
          Printf.sprintf "1/(E+2T)..1/(E+T) = %.3f..%.3f"
            (1.0 /. (p.e +. (2.0 *. p.t))) (1.0 /. (p.e +. p.t)))
  | "maekawa" ->
    Some (1.0 /. (p.e +. (2.0 *. p.t)), 1.0 /. (p.e +. (2.0 *. p.t)),
          Printf.sprintf "1/(E+2T) = %.3f" (1.0 /. (p.e +. (2.0 *. p.t))))
  | _ -> None

(* ---- M/M/1 waiting-time model for the load sweep (E6) ---- *)

type mm1 = { rho : float; response : float option }

let mm1_knee = 0.85

let mm1 ~n ~rate_per_site ~e ~t =
  let lambda = float_of_int n *. rate_per_site in
  let mu = 1.0 /. (e +. t) in
  let rho = lambda /. mu in
  let response =
    if rho >= mm1_knee then None
    else Some ((2.0 *. t) +. (lambda /. (mu *. (mu -. lambda))))
  in
  { rho; response }

(* E6 row bands: messages migrate from the §5.1 count to the §5.2 band as
   rho crosses the knee; response follows the M/M/1 waiting time below it
   and leaves the light-load regime above it. *)
let poisson_expectations p rate =
  let k1 = p.k -. 1.0 in
  let m = mm1 ~n:p.n ~rate_per_site:rate ~e:p.e ~t:p.t in
  let msgs =
    if m.rho < 0.3 then
      expect Msgs_per_cs ~lo:(3.0 *. k1) ~hi:(4.0 *. k1)
        ~formula:(Printf.sprintf "rho=%.2f: 3(K-1)..4(K-1) = %.1f..%.1f" m.rho (3.0 *. k1) (4.0 *. k1))
        ~provenance:"\xc2\xa75.1"
    else if m.rho < 1.0 then
      expect Msgs_per_cs ~lo:(3.0 *. k1) ~hi:(6.0 *. k1)
        ~formula:(Printf.sprintf "rho=%.2f: 3(K-1)..6(K-1) = %.1f..%.1f" m.rho (3.0 *. k1) (6.0 *. k1))
        ~provenance:"\xc2\xa75.1-\xc2\xa75.2"
    else
      expect Msgs_per_cs ~lo:(4.5 *. k1) ~hi:(6.0 *. k1)
        ~formula:(Printf.sprintf "rho=%.2f: saturated, 5(K-1)..6(K-1) = %.1f..%.1f" m.rho (5.0 *. k1) (6.0 *. k1))
        ~provenance:"\xc2\xa75.2"
  in
  let resp =
    match m.response with
    | Some r ->
      (* the M/M/1 fit is good to ~10% below the knee; allow 30% + slack *)
      expect Response_time ~tol:{ abs = 0.6; rel = 0.3 } ~lo:(2.0 *. p.t) ~hi:r
        ~formula:
          (Printf.sprintf "M/M/1: 2T + L/(mu(mu-L)) = %.2f at rho=%.2f" r m.rho)
        ~provenance:"E6 (M/M/1)"
    | None ->
      expect Response_time ~lo:(4.0 *. p.t) ~hi:infinity
        ~formula:
          (Printf.sprintf "rho=%.2f >= %.2f: past the knee, queueing dominates"
             m.rho mm1_knee)
        ~provenance:"E6 (M/M/1)"
  in
  [ msgs; resp ]

(* ---- assembling expectations ---- *)

let expectations p =
  match p.load with
  | Poisson rate when quorum_based p.algorithm -> poisson_expectations p rate
  | Poisson _ -> []
  | Light ->
    let msgs =
      match msgs_band p with
      | Some (lo, hi, formula) ->
        [ expect Msgs_per_cs ~lo ~hi ~formula ~provenance:"\xc2\xa75.1, Table 1" ]
      | None -> []
    in
    let resp =
      match response_band p with
      | Some (lo, hi, formula) ->
        [ expect ~tol:{ abs = 0.35; rel = 0.0 } Response_time ~lo ~hi ~formula
            ~provenance:"\xc2\xa75.1" ]
      | None -> []
    in
    msgs @ resp
  | Heavy ->
    let msgs =
      match msgs_band p with
      | Some (lo, hi, formula) ->
        [ expect Msgs_per_cs ~lo ~hi ~formula ~provenance:"\xc2\xa75.2, Table 1" ]
      | None -> []
    in
    let sync =
      match sync_band p with
      | Some (lo, hi, formula) ->
        [ expect ~tol:{ abs = 0.1; rel = 0.08 } Sync_delay ~lo ~hi ~formula
            ~provenance:"\xc2\xa75.2, Table 1" ]
      | None -> []
    in
    let tput =
      match (p.delay_shape, throughput_band p) with
      | Constant, Some (lo, hi, formula) ->
        [ expect ~tol:{ abs = 0.01; rel = 0.05 } Throughput ~lo ~hi ~formula
            ~provenance:"\xc2\xa75.2" ]
      | _ -> []
    in
    msgs @ sync @ tput

(* ---- huge-N asymptotics (A3) ---- *)

(* At N = 10^5..10^6 the fixed-contender workloads sit between §5.1's pure
   light load and §5.2's all-N saturation, so the envelopes are the union of
   the two regimes rather than either endpoint. What A3 actually verifies is
   the K-scaling: K itself is measured from the live quorums (√N for grid and
   FPP, log N for trees), so a construction whose quorums stopped shrinking
   with the paper's law would blow straight through 3(K-1)..6(K-1). *)
let asymptotic_expectations p =
  let k1 = p.k -. 1.0 in
  match p.load with
  | Light | Poisson _ ->
    [ expect ~tol:{ abs = 0.75; rel = 0.05 } Msgs_per_cs ~lo:(3.0 *. k1)
        ~hi:(3.0 *. k1)
        ~formula:(Printf.sprintf "3(K-1) = %.1f at N=%d" (3.0 *. k1) p.n)
        ~provenance:"\xc2\xa75.1 asymptotics" ]
  | Heavy ->
    [ expect ~tol:{ abs = 0.75; rel = 0.05 } Msgs_per_cs ~lo:(3.0 *. k1)
        ~hi:(6.0 *. k1)
        ~formula:
          (Printf.sprintf "3(K-1)..6(K-1) = %.1f..%.1f at N=%d" (3.0 *. k1)
             (6.0 *. k1) p.n)
        ~provenance:"\xc2\xa75.1-\xc2\xa75.2 asymptotics";
      expect ~tol:{ abs = 0.1; rel = 0.08 } Sync_delay ~lo:p.t
        ~hi:(1.5 *. p.t)
        ~formula:"T..1.5T (contenders \xe2\x89\xaa N: some handoffs take the release path)"
        ~provenance:"\xc2\xa75.2 asymptotics" ]

let sync_ratio ~t shape =
  ignore t;
  match shape with
  | Constant ->
    expect ~tol:{ abs = 0.0; rel = 0.1 } (Ratio "sync maekawa/proposed")
      ~lo:2.0 ~hi:2.0 ~formula:"2T / T = 2" ~provenance:"\xc2\xa75.2"
  | Random ->
    expect ~tol:{ abs = 0.05; rel = 0.0 } (Ratio "sync maekawa/proposed")
      ~lo:1.3 ~hi:2.3
      ~formula:"structural 2-hop vs 1-hop gap persists: 1.3..2.3"
      ~provenance:"\xc2\xa75.2 (E3)"

let throughput_ratio ~e ~t =
  let ideal = ((2.0 *. t) +. e) /. (t +. e) in
  expect ~tol:{ abs = 0.05; rel = 0.0 } (Ratio "throughput proposed/maekawa")
    ~lo:1.3 ~hi:ideal
    ~formula:(Printf.sprintf "1.3..(2T+E)/(T+E) = 1.3..%.2f" ideal)
    ~provenance:"\xc2\xa75.2"

(* ---- checking ---- *)

type verdict = {
  source : string;
  expectation : expectation;
  value : float;
  ok : bool;
  message : string;
}

let check ?(source = "") ?tol exp value =
  let tol = match tol with Some t -> t | None -> exp.tol in
  let slack bound = Float.max tol.abs (tol.rel *. Float.abs bound) in
  let lo = exp.band.lo -. slack exp.band.lo in
  let hi =
    if exp.band.hi = infinity then infinity else exp.band.hi +. slack exp.band.hi
  in
  let ok = value >= lo && value <= hi in
  let name = metric_name exp.metric in
  let message =
    if ok then
      Printf.sprintf "%s%s = %.3f within %s (%s)"
        (if source = "" then "" else source ^ ": ")
        name value exp.formula exp.provenance
    else
      let side, bound, excess =
        if value < lo then ("below", lo, lo -. value)
        else ("above", hi, value -. hi)
      in
      Printf.sprintf
        "%s%s = %.3f is %s the paper band %s (%s): tolerated %s %.3f, off by \
         %.3f"
        (if source = "" then "" else source ^ ": ")
        name value side exp.formula exp.provenance
        (if side = "below" then "down to" else "up to")
        bound excess
  in
  { source; expectation = exp; value; ok; message }

(* ---- measurements ---- *)

type measurement = {
  source : string;
  params : params;
  msgs_per_cs : float option;
  sync_delay : float option;
  response_time : float option;
  throughput : float option;
}

let classify_load ~n ~e ~t = function
  | W.Saturated _ | W.Burst _ -> Heavy
  | W.Think { contenders; mean_think } ->
    (* machine-repairman: each client cycles think -> service, so the
       offered rate is contenders / (think + service) *)
    let rho =
      float_of_int contenders *. (e +. t) /. (mean_think +. e +. t)
    in
    if rho <= 0.05 then Light
    else if rho >= 1.0 then Heavy
    else Poisson (1.0 /. (mean_think +. e +. t))
  | W.Poisson { rate_per_site } ->
    let rho = float_of_int n *. rate_per_site *. (e +. t) in
    if rho <= 0.05 then Light else Poisson rate_per_site
  | W.Open_loop { active; rate_per_site } ->
    (* only the active set offers load; the other n - active sites exist
       solely to blow up K = f(N) *)
    let rho = float_of_int active *. rate_per_site *. (e +. t) in
    if rho <= 0.05 then Light else Poisson rate_per_site

let of_report ~source ?kind ~(cfg : E.config) (r : E.report) =
  let t = Net.mean_delay cfg.E.delay in
  let e = cfg.E.cs_duration in
  let load = classify_load ~n:cfg.E.n ~e ~t cfg.E.workload in
  let delay_shape =
    match cfg.E.delay with Net.Constant _ -> Constant | _ -> Random
  in
  let p =
    params ?kind ~algorithm:r.E.protocol ~n:cfg.E.n ~e ~t ~load ~delay_shape ()
  in
  {
    source;
    params = p;
    msgs_per_cs = Some r.E.messages_per_cs;
    (* contended handoffs are rare at light load: nothing to average *)
    sync_delay = (match load with Light -> None | _ -> Some (S.mean r.E.sync_delay));
    (* heavy-load response is queue-depth-dominated; §5 pins it only at
       light load, and E6's M/M/1 model covers the Poisson middle *)
    response_time =
      (match load with
      | Heavy -> None
      | Light | Poisson _ -> Some (S.mean r.E.response_time));
    throughput = (match load with Heavy -> Some r.E.throughput | _ -> None);
  }

let check_measurement m =
  let value_of = function
    | Msgs_per_cs -> m.msgs_per_cs
    | Sync_delay -> m.sync_delay
    | Response_time -> m.response_time
    | Throughput -> m.throughput
    | Ratio _ -> None
  in
  List.filter_map
    (fun exp ->
      match value_of exp.metric with
      | Some v -> Some (check ~source:m.source exp v)
      | None -> None)
    (expectations m.params)
