(** Symbolic evaluation of the paper's Section 5 closed forms.

    EXPERIMENTS.md compares measured tables against the paper's analysis
    by eye; this module turns the same closed forms into machine-checkable
    tolerance bands. From [(N, K, E, T, load, algorithm)] it derives the
    expected message count per CS execution for every Table 1 algorithm,
    the synchronization-delay and light-load-response expectations (T vs
    Maekawa's 2T; response 2T), the heavy-load throughput bounds
    [1/(E+T)] vs [1/(E+2T)], and an M/M/1 waiting-time model that
    predicts where the E6 load sweep leaves the light-load regime.

    Every band is produced by a formula, never by a recorded measurement,
    so a protocol regression that shifts a metric out of its paper band
    fails {!check} no matter what the last benchmark happened to print. *)

(** {1 Parameters} *)

type load =
  | Light  (** arrival rate so low that contention is negligible (§5.1) *)
  | Heavy  (** every site saturated: a new request on each exit (§5.2) *)
  | Poisson of float
      (** per-site Poisson arrival rate, between the two regimes (E6) *)

type delay_shape =
  | Constant  (** the paper's own setting: every hop takes exactly T *)
  | Random
      (** random per-message delays with mean T; handoffs wait for one
          specific message, so delay expectations widen (see E3) *)

type params = {
  algorithm : string;  (** runner name, e.g. ["delay-optimal"] *)
  n : int;  (** number of sites *)
  k : float;  (** mean quorum size K (ignored by non-quorum algorithms) *)
  e : float;  (** CS execution time E, in absolute units *)
  t : float;  (** mean message delay T, in absolute units *)
  load : load;
  delay_shape : delay_shape;
}

val params :
  ?kind:Dmx_quorum.Builder.kind ->
  algorithm:string ->
  n:int ->
  e:float ->
  t:float ->
  load:load ->
  delay_shape:delay_shape ->
  unit ->
  params
(** Convenience constructor: [k] is computed from the quorum construction
    ([kind], default [Grid]) via {!Dmx_quorum.Builder.size_stats} — the
    model never trusts a hand-entered K. *)

(** {1 Expectations: formula-derived tolerance bands} *)

type band = { lo : float; hi : float }
(** Inclusive closed-form band, before tolerance. [hi] may be infinite. *)

type tolerance = { abs : float; rel : float }
(** A value [v] passes band [b] under tolerance [tol] when
    [b.lo - slack <= v <= b.hi + slack] with
    [slack = max tol.abs (tol.rel *. |bound|)] per side. *)

val default_tolerance : tolerance
(** [{ abs = 0.75; rel = 0.08 }] — wide enough for seeded simulation
    noise at quick-mode quotas, narrow enough that e.g. a 2T handoff
    reported where T is promised still fails by a factor of ~1.8. *)

type metric =
  | Msgs_per_cs
  | Sync_delay
  | Response_time
  | Throughput
  | Ratio of string  (** derived cross-algorithm check, e.g. "sync maekawa/proposed" *)

val metric_name : metric -> string

type expectation = {
  metric : metric;
  band : band;
  tol : tolerance;
  formula : string;  (** human-readable instantiated formula, e.g. "3(K-1) = 24" *)
  provenance : string;  (** paper section the formula comes from, e.g. "§5.1" *)
}

val expectations : params -> expectation list
(** Every band the model can claim for this parameter point. Message
    bands cover all eight Table 1 families (Lamport 3(N−1),
    Ricart–Agrawala 2(N−1), Singhal dynamic N−1..2(N−1), Maekawa
    3(K−1)..5(K−1), delay-optimal 3(K−1)..6(K−1), Suzuki–Kasami and
    Singhal heuristic 0..N, Raymond O(log N)). Sync-delay and throughput
    bands are only emitted where the analysis pins them down (heavy load;
    throughput additionally needs [Constant] delays). [Poisson] loads go
    through the {!mm1} queueing model instead. *)

val asymptotic_expectations : params -> expectation list
(** The huge-N bands checked by benchmark A3. At [Light]/[Poisson] load:
    messages exactly 3(K−1); at [Heavy] (a fixed contender set dwarfed by
    N): the 3(K−1)..6(K−1) envelope spanning §5.1–§5.2, plus sync delay
    T..1.5T. [p.k] must come from the live quorums (see
    {!Dmx_quorum.Builder.assignment_stats}), which is what makes these
    checks verify the √N (grid, FPP) and log N (tree) scaling laws. *)

val sync_ratio : t:float -> delay_shape -> expectation
(** Band for [maekawa sync / delay-optimal sync]: exactly 2 under
    [Constant] delays (§5.2's T vs 2T), persisting as a structural
    1.3..2.3 factor under [Random] delays (both sides wait on order
    statistics, see E3). [t] only documents the setting. *)

val throughput_ratio : e:float -> t:float -> expectation
(** Band for [delay-optimal throughput / maekawa throughput] at heavy
    load: the §5.2 structural bound (2T+E)/(T+E), approached from below
    as N grows; the floor is 1.3. *)

(** {1 The M/M/1 waiting-time model for the load sweep (E6)} *)

type mm1 = {
  rho : float;  (** offered load: N·rate·(E+T) against service rate 1/(E+T) *)
  response : float option;
      (** predicted mean request→entry time [2T + λ/(μ(μ−λ))] where
          [μ = 1/(E+T)]; [None] at or beyond the knee ([rho >= 0.85])
          where the open-loop queue has no steady state *)
}

val mm1 : n:int -> rate_per_site:float -> e:float -> t:float -> mm1

(** {1 Checking} *)

type verdict = {
  source : string;  (** which table/row produced the value *)
  expectation : expectation;
  value : float;
  ok : bool;
  message : string;
      (** one line: pass = "source metric = v within formula";
          fail = pointed diagnostic naming band, tolerance and excess *)
}

val check : ?source:string -> ?tol:tolerance -> expectation -> float -> verdict
(** [check exp v]: is [v] inside [exp.band] widened by the tolerance
    ([tol] overrides [exp.tol])? Never raises. *)

(** {1 Measurements} *)

type measurement = {
  source : string;
  params : params;
  msgs_per_cs : float option;
  sync_delay : float option;
  response_time : float option;
  throughput : float option;
}

val of_report :
  source:string ->
  ?kind:Dmx_quorum.Builder.kind ->
  cfg:Dmx_sim.Engine.config ->
  Dmx_sim.Engine.report ->
  measurement
(** Derive a measurement from a finished simulation: [load] is classified
    from the workload (Saturated/Burst → Heavy; Poisson → Light when the
    offered load N·rate·(E+T) is under 5%, else [Poisson rate]),
    [delay_shape] from the delay model, [T] from its mean, [E] from the
    config, [K] from [kind] (default [Grid]). Sync delay is dropped at
    light load (too few contended handoffs to average), response time at
    heavy load (queueing-dominated, not pinned by §5). *)

val check_measurement : measurement -> verdict list
(** {!expectations} of the measurement's parameters, checked against every
    metric the measurement carries. *)
