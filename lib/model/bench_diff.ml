type verdict = {
  name : string;
  old_eps : float;
  new_eps : float;
  ratio : float;
  regressed : bool;
}

type report = {
  verdicts : verdict list;
  skipped : string list;
  only_old : string list;
  only_new : string list;
  regressions : int;
}

let compare ?(threshold = 0.10) (old_ : Snapshot.t) (new_ : Snapshot.t) =
  let find name exps =
    List.find_opt (fun (e : Snapshot.experiment) -> e.name = name) exps
  in
  let verdicts = ref [] in
  let skipped = ref [] in
  let only_old = ref [] in
  List.iter
    (fun (o : Snapshot.experiment) ->
      match find o.name new_.experiments with
      | None -> only_old := o.name :: !only_old
      | Some n ->
        if o.events = 0 || n.events = 0 then skipped := o.name :: !skipped
        else
          let ratio =
            if o.events_per_sec > 0.0 then n.events_per_sec /. o.events_per_sec
            else Float.infinity
          in
          verdicts :=
            {
              name = o.name;
              old_eps = o.events_per_sec;
              new_eps = n.events_per_sec;
              ratio;
              regressed = ratio < 1.0 -. threshold;
            }
            :: !verdicts)
    old_.experiments;
  let only_new =
    List.filter_map
      (fun (n : Snapshot.experiment) ->
        if find n.name old_.experiments = None then Some n.name else None)
      new_.experiments
  in
  let verdicts = List.rev !verdicts in
  {
    verdicts;
    skipped = List.rev !skipped;
    only_old = List.rev !only_old;
    only_new;
    regressions =
      List.length (List.filter (fun v -> v.regressed) verdicts);
  }

let pp_report ppf r =
  List.iter
    (fun v ->
      Format.fprintf ppf "%-24s %10.0f -> %10.0f ev/s  (x%.2f)  %s@." v.name
        v.old_eps v.new_eps v.ratio
        (if v.regressed then "REGRESSED" else "ok"))
    r.verdicts;
  (match r.skipped with
  | [] -> ()
  | l ->
    Format.fprintf ppf "skipped (zero events): %s@." (String.concat ", " l));
  (match r.only_old with
  | [] -> ()
  | l -> Format.fprintf ppf "only in old snapshot: %s@." (String.concat ", " l));
  (match r.only_new with
  | [] -> ()
  | l -> Format.fprintf ppf "only in new snapshot: %s@." (String.concat ", " l));
  Format.fprintf ppf "%d experiment(s) compared, %d regression(s)@."
    (List.length r.verdicts) r.regressions
