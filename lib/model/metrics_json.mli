(** Reader for the [dmx-metrics/1] JSON export ({!Dmx_obs.Export.json}).

    The inverse of the exporter, for consumers on the far side of a
    scrape: [dmx-sim top] polls a daemon's [/metrics.json] endpoint and
    needs the snapshot back as structured data to diff against the
    previous poll. Total like the other readers in this library — bad
    JSON, a wrong [schema] tag, missing fields and type mismatches all
    come back as a positioned [Error], never an exception. *)

val parse : string -> (Dmx_obs.Snapshot.t, string) result
(** Parse an export back into a canonical snapshot. Histogram series
    rebuild from the raw [buckets]/[count]/[sum]/[max] fields (the
    derived [p50]/[p90]/[p99] readouts are ignored — they re-derive).
    Duplicate [(name, labels)] keys are an error. *)
