(** The bench-diff CI ratchet: compare two [dmx-bench/1] perf snapshots
    ({!Snapshot}) experiment by experiment and flag throughput
    regressions.

    The keyed figure is [events_per_sec]; an experiment regresses when
    the new reading falls more than [threshold] (default 10%) below the
    old one. Experiments with zero events on either side carry no
    throughput signal (model checks, availability tables) and are
    skipped; experiments present on only one side are reported but never
    fail the ratchet — the suite is allowed to grow. *)

type verdict = {
  name : string;
  old_eps : float;
  new_eps : float;
  ratio : float;  (** [new_eps /. old_eps] *)
  regressed : bool;
}

type report = {
  verdicts : verdict list;  (** experiments present in both snapshots *)
  skipped : string list;  (** zero-event experiments, no throughput signal *)
  only_old : string list;  (** dropped from the new snapshot *)
  only_new : string list;  (** added by the new snapshot *)
  regressions : int;
}

val compare : ?threshold:float -> Snapshot.t -> Snapshot.t -> report
(** [compare old_snapshot new_snapshot]. [threshold] is a fraction in
    (0, 1); default [0.10]. *)

val pp_report : Format.formatter -> report -> unit
(** One line per verdict ([ok]/[REGRESSED] with the ratio), then the
    skip/only-one-side notes and the regression count. *)
