module Snap = Dmx_obs.Snapshot

let field name = function
  | Json.Obj fields -> (
    match List.assoc_opt name fields with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" name))
  | _ -> Error (Printf.sprintf "expected an object around field %S" name)

let as_string what = function
  | Json.String s -> Ok s
  | _ -> Error (Printf.sprintf "%s: expected a string" what)

let as_int what = function
  | Json.Number f when Float.is_integer f -> Ok (int_of_float f)
  | _ -> Error (Printf.sprintf "%s: expected an integer" what)

let as_list what = function
  | Json.List l -> Ok l
  | _ -> Error (Printf.sprintf "%s: expected a list" what)

let ( let* ) = Result.bind

let labels_of = function
  | Json.Obj fields ->
    List.fold_left
      (fun acc (k, v) ->
        let* acc = acc in
        let* v = as_string (Printf.sprintf "label %S" k) v in
        Ok ((k, v) :: acc))
      (Ok []) fields
    |> Result.map List.rev
  | _ -> Error "labels: expected an object"

let series_of j =
  let* name = Result.bind (field "name" j) (as_string "name") in
  let* labels = Result.bind (field "labels" j) labels_of in
  let* kind = Result.bind (field "kind" j) (as_string "kind") in
  let* value =
    match kind with
    | "counter" ->
      let* v = Result.bind (field "value" j) (as_int "value") in
      Ok (Snap.Counter v)
    | "gauge" ->
      let* v = Result.bind (field "value" j) (as_int "value") in
      Ok (Snap.Gauge v)
    | "histogram" ->
      let* count = Result.bind (field "count" j) (as_int "count") in
      let* sum = Result.bind (field "sum" j) (as_int "sum") in
      let* max = Result.bind (field "max" j) (as_int "max") in
      let* raw = Result.bind (field "buckets" j) (as_list "buckets") in
      let* buckets =
        List.fold_left
          (fun acc b ->
            let* acc = acc in
            let* b = as_int "bucket" b in
            Ok (b :: acc))
          (Ok []) raw
        |> Result.map (fun l -> Array.of_list (List.rev l))
      in
      Ok (Snap.Histogram { buckets; count; sum; max })
    | k -> Error (Printf.sprintf "series %S: unknown kind %S" name k)
  in
  Ok (Snap.series ~name ~labels value)

let parse s =
  let* j = Json.parse s in
  let* schema = Result.bind (field "schema" j) (as_string "schema") in
  if schema <> Dmx_obs.Export.schema_version then
    Error
      (Printf.sprintf "unknown schema %S (want %S)" schema
         Dmx_obs.Export.schema_version)
  else
    let* raw = Result.bind (field "series" j) (as_list "series") in
    let* series =
      List.fold_left
        (fun acc sj ->
          let* acc = acc in
          let* s = series_of sj in
          Ok (s :: acc))
        (Ok []) raw
      |> Result.map List.rev
    in
    match Snap.normalize series with
    | snap -> Ok snap
    | exception Invalid_argument e -> Error e
