let schema_version = "dmx-bench/1"

type experiment = {
  name : string;
  wall_s : float;
  events : int;
  events_per_sec : float;
  ok : bool;
}

type t = {
  schema : string;
  quick : bool;
  jobs : int;
  experiments : experiment list;
  total_wall_s : float;
  peak_heap_words : int;
  oracle_rejected : int;
}

(* Field accessors over a parsed object: every failure is a structured
   Error naming the field and the shape mismatch. *)

let field ~where fields name =
  match List.assoc_opt name fields with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing field %S" where name)

let as_string ~where name = function
  | Json.String s -> Ok s
  | _ -> Error (Printf.sprintf "%s: field %S must be a string" where name)

let as_bool ~where name = function
  | Json.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "%s: field %S must be a boolean" where name)

let as_number ~where name = function
  | Json.Number f -> Ok f
  | _ -> Error (Printf.sprintf "%s: field %S must be a number" where name)

let as_int ~where name v =
  match as_number ~where name v with
  | Error _ as e -> e
  | Ok f ->
    if Float.is_integer f then Ok (int_of_float f)
    else Error (Printf.sprintf "%s: field %S must be an integer" where name)

let ( let* ) = Result.bind

let get fields ~where name conv =
  let* v = field ~where fields name in
  conv ~where name v

let warn_unknown ~where ~known fields warnings =
  List.iter
    (fun (k, _) ->
      if not (List.mem k known) then
        warnings := Printf.sprintf "%s: unknown field %S (ignored)" where k :: !warnings)
    fields

let experiment_of_json ~index warnings = function
  | Json.Obj fields ->
    let where = Printf.sprintf "experiments[%d]" index in
    let known = [ "name"; "wall_s"; "events"; "events_per_sec"; "ok" ] in
    warn_unknown ~where ~known fields warnings;
    let* name = get fields ~where "name" as_string in
    let where = Printf.sprintf "experiments[%d] (%s)" index name in
    let* wall_s = get fields ~where "wall_s" as_number in
    let* events = get fields ~where "events" as_int in
    let* events_per_sec = get fields ~where "events_per_sec" as_number in
    let* ok = get fields ~where "ok" as_bool in
    Ok { name; wall_s; events; events_per_sec; ok }
  | _ -> Error (Printf.sprintf "experiments[%d]: must be an object" index)

let rec map_result f i = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f i x in
    let* ys = map_result f (i + 1) rest in
    Ok (y :: ys)

let parse contents =
  let* json =
    Result.map_error (fun e -> "not valid JSON: " ^ e) (Json.parse contents)
  in
  match json with
  | Json.Obj fields ->
    let where = "snapshot" in
    (* schema first: an unknown version must be reported as a version
       mismatch, not as a pile of shape errors against the wrong schema *)
    let* schema = get fields ~where "schema" as_string in
    if schema <> schema_version then
      Error
        (Printf.sprintf
           "unknown schema version %S (this tool understands %S)" schema
           schema_version)
    else begin
      let warnings = ref [] in
      let known =
        [
          "schema"; "quick"; "jobs"; "experiments"; "total_wall_s";
          "peak_heap_words"; "oracle_rejected";
        ]
      in
      warn_unknown ~where ~known fields warnings;
      let* quick = get fields ~where "quick" as_bool in
      let* jobs = get fields ~where "jobs" as_int in
      let* exps = field ~where fields "experiments" in
      let* experiments =
        match exps with
        | Json.List items -> map_result (fun i x -> experiment_of_json ~index:i warnings x) 0 items
        | _ -> Error "snapshot: field \"experiments\" must be an array"
      in
      let* total_wall_s = get fields ~where "total_wall_s" as_number in
      let* peak_heap_words = get fields ~where "peak_heap_words" as_int in
      let* oracle_rejected = get fields ~where "oracle_rejected" as_int in
      Ok
        ( { schema; quick; jobs; experiments; total_wall_s; peak_heap_words;
            oracle_rejected },
          List.rev !warnings )
    end
  | _ -> Error "snapshot: top-level value must be an object"

let consistency t =
  let issues = ref [] in
  let add fmt = Printf.ksprintf (fun m -> issues := m :: !issues) fmt in
  if t.jobs < 1 then add "jobs = %d (must be >= 1)" t.jobs;
  if t.total_wall_s < 0.0 then add "total_wall_s = %g is negative" t.total_wall_s;
  if t.peak_heap_words < 0 then add "peak_heap_words is negative";
  if t.oracle_rejected < 0 then add "oracle_rejected is negative"
  else if t.oracle_rejected > 0 then
    add "oracle rejected %d run(s) in this snapshot" t.oracle_rejected;
  List.iter
    (fun e ->
      if not e.ok then add "experiment %s recorded ok = false" e.name;
      if e.wall_s < 0.0 then add "experiment %s: wall_s is negative" e.name;
      if e.events < 0 then add "experiment %s: events is negative" e.name;
      if e.wall_s > 0.0 then begin
        let derived = float_of_int e.events /. e.wall_s in
        let err =
          if derived = 0.0 then Float.abs e.events_per_sec
          else Float.abs (e.events_per_sec -. derived) /. derived
        in
        (* events_per_sec is printed at 0.1 resolution; 2% covers that
           rounding at any realistic rate *)
        if err > 0.02 && Float.abs (e.events_per_sec -. derived) > 1.0 then
          add "experiment %s: events_per_sec %.1f disagrees with events/wall_s = %.1f"
            e.name e.events_per_sec derived
      end)
    t.experiments;
  List.rev !issues

let pp ppf t =
  Format.fprintf ppf "schema %s, %s mode, %d job(s), %d experiment(s)@."
    t.schema
    (if t.quick then "quick" else "full")
    t.jobs (List.length t.experiments);
  List.iter
    (fun e ->
      Format.fprintf ppf "  %-18s %8.2fs %12d events %12.0f ev/s %s@." e.name
        e.wall_s e.events e.events_per_sec
        (if e.ok then "ok" else "FAILED"))
    t.experiments;
  Format.fprintf ppf "  total %.2fs, peak heap %d words, oracle rejected %d@."
    t.total_wall_s t.peak_heap_words t.oracle_rejected
