(* Recursive-descent JSON, total: every malformed input becomes a
   positioned Error. Scope: the dmx-bench/1 snapshots our own bench
   driver writes, so \uXXXX escapes are decoded only as far as the
   snapshot format needs (they never appear in practice). *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> error (Printf.sprintf "expected %C, got %C" c d)
    | None -> error (Printf.sprintf "expected %C, got end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else error (Printf.sprintf "bad literal (expected %s)" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | None -> error "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            if !pos + 4 > n then error "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | None -> error "bad \\u escape"
            | Some code ->
              pos := !pos + 4;
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else
                (* out-of-ASCII escapes never occur in snapshots; keep
                   the information without a full UTF-8 encoder *)
                Buffer.add_string buf (Printf.sprintf "\\u%s" hex))
          | c -> error (Printf.sprintf "bad escape \\%C" c)));
        go ()
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Number f
    | None ->
      pos := start;
      error (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | Some c -> error (Printf.sprintf "expected ',' or '}', got %C" c)
          | None -> error "unterminated object"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | Some c -> error (Printf.sprintf "expected ',' or ']', got %C" c)
          | None -> error "unterminated array"
        in
        elements ();
        List (List.rev !items)
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "offset %d: %s" at msg)

let rec pp ppf = function
  | Null -> Format.pp_print_string ppf "null"
  | Bool b -> Format.pp_print_bool ppf b
  | Number f -> Format.fprintf ppf "%g" f
  | String st -> Format.fprintf ppf "%S" st
  | List xs ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun p () -> Format.pp_print_char p ',') pp)
      xs
  | Obj fields ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun p () -> Format.pp_print_char p ',')
         (fun p (k, v) -> Format.fprintf p "%S:%a" k pp v))
      fields
