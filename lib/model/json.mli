(** Minimal JSON reader for the [dmx-bench/1] snapshot files.

    The repository deliberately has no JSON dependency; the bench writer
    emits snapshots by hand and this module reads them back totally:
    every parse either returns a value or a positioned error — truncated
    input, trailing garbage, malformed literals and bad escapes are all
    rejected, never raised through. Numbers are kept as floats (the
    snapshot schema has no value outside the float-exact range). *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** field order preserved; duplicates kept *)

val parse : string -> (t, string) result
(** Whole-input parse: leading/trailing whitespace allowed, anything else
    after the top-level value is an error. Error messages carry the byte
    offset, e.g. ["offset 132: unterminated string"]. *)

val pp : Format.formatter -> t -> unit
(** Debug printer (compact JSON). *)
