type t = {
  occupancy : int Atomic.t;
  violations : int Atomic.t;
  max_occupancy : int Atomic.t;
}

let create () =
  {
    occupancy = Atomic.make 0;
    violations = Atomic.make 0;
    max_occupancy = Atomic.make 0;
  }

let enter t =
  let occ = 1 + Atomic.fetch_and_add t.occupancy 1 in
  if occ > 1 then Atomic.incr t.violations;
  let rec bump () =
    let m = Atomic.get t.max_occupancy in
    if occ > m && not (Atomic.compare_and_set t.max_occupancy m occ) then
      bump ()
  in
  bump ()

let exit t = ignore (Atomic.fetch_and_add t.occupancy (-1))
let current t = Atomic.get t.occupancy
let violations t = Atomic.get t.violations
let max_occupancy t = Atomic.get t.max_occupancy
