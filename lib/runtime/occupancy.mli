(** Atomic critical-section occupancy checker, shared by every live
    runtime.

    The simulator checks mutual exclusion inside the engine; real
    executions (the in-process domain runtime {!Live} and the networked
    runtime [Dmx_net]) share this counter instead, so both report
    [violations] and [max_occupancy] with identical semantics: a violation
    is counted on every CS entry that observes another tenure already
    open, and [max_occupancy] is the high-water mark of simultaneous
    tenures. All operations are lock-free and safe from any domain or
    thread. *)

type t

val create : unit -> t

val enter : t -> unit
(** A site entered the CS. Counts a violation when some other tenure is
    already open and updates the high-water mark. *)

val exit : t -> unit
(** A site left the CS (normal exit, or a crash voiding its tenure — the
    caller decides when a crash terminates an open tenure). *)

val current : t -> int
(** Tenures currently open. *)

val violations : t -> int
(** CS entries that overlapped another tenure (must end at 0). *)

val max_occupancy : t -> int
(** Highest simultaneous occupancy observed (must end at 1 for any run
    with at least one CS execution). *)
