type config = {
  n : int;
  rounds_per_site : int;
  cs_duration : float;
  min_delay : float;
  max_delay : float;
  seed : int;
  crashes : (float * int) list;
  detection_delay : float;
}

let default ~n =
  {
    n;
    rounds_per_site = 10;
    cs_duration = 0.001;
    min_delay = 0.0002;
    max_delay = 0.0012;
    seed = 42;
    crashes = [];
    detection_delay = 0.005;
  }

type report = {
  executions : int;
  violations : int;
  max_occupancy : int;
  messages : int;
  wall_seconds : float;
  per_site : int array;
}

let pp_report ppf r =
  Format.fprintf ppf
    "live: executions=%d violations=%d max-occupancy=%d messages=%d wall=%.3fs"
    r.executions r.violations r.max_occupancy r.messages r.wall_seconds

(* A tiny thread-safe FIFO; consumers poll (no Condition.timedwait in the
   stdlib), which is fine at the sub-millisecond scales used here. *)
module Mailbox = struct
  type 'a t = { lock : Mutex.t; q : 'a Queue.t }

  let create () = { lock = Mutex.create (); q = Queue.create () }

  let push t x =
    Mutex.lock t.lock;
    Queue.push x t.q;
    Mutex.unlock t.lock

  let pop t =
    Mutex.lock t.lock;
    let x = if Queue.is_empty t.q then None else Some (Queue.pop t.q) in
    Mutex.unlock t.lock;
    x
end

module Make (P : Dmx_sim.Protocol.PROTOCOL) = struct
  type parcel = { deliver_at : float; seq : int; src : int; dst : int; msg : P.message }

  let run (cfg : config) pconfig =
    if cfg.n <= 0 then invalid_arg "Live.run: n must be positive";
    if cfg.min_delay < 0.0 || cfg.max_delay < cfg.min_delay then
      invalid_arg "Live.run: bad delay bounds";
    List.iter
      (fun (_, s) ->
        if s < 0 || s >= cfg.n then invalid_arg "Live.run: crash site")
      cfg.crashes;
    let start = Unix.gettimeofday () in
    let now () = Unix.gettimeofday () -. start in
    let stop = Atomic.make false in
    let dead = Array.init cfg.n (fun _ -> Atomic.make false) in
    (* safety: CS occupancy, violations, and the high-water mark (shared
       with the networked runtime, so both report identically) *)
    let occ = Occupancy.create () in
    let messages = Atomic.make 0 in
    let per_site = Array.init cfg.n (fun _ -> Atomic.make 0) in
    let force_exit = Atomic.make false in
    let mailboxes = Array.init cfg.n (fun _ -> Mailbox.create ()) in
    (* postman state: messages in flight, ordered by delivery deadline *)
    let post_lock = Mutex.create () in
    let in_flight =
      Dmx_sim.Heap.create
        ~cmp:(fun a b ->
          let c = Float.compare a.deliver_at b.deliver_at in
          if c <> 0 then c else Int.compare a.seq b.seq)
        ()
    in
    let post_seq = ref 0 in
    let watermark = Array.make (cfg.n * cfg.n) 0.0 in
    let delay_rng = Dmx_sim.Rng.create cfg.seed in
    let detector_state =
      List.map (fun (t, s) -> (t, s, ref false)) cfg.crashes
    in
    let post src dst msg =
      if Atomic.get dead.(src) || Atomic.get dead.(dst) then ()
      else begin
      Mutex.lock post_lock;
      let delay =
        Dmx_sim.Rng.uniform delay_rng ~lo:cfg.min_delay ~hi:cfg.max_delay
      in
      let idx = (src * cfg.n) + dst in
      let at = Float.max (now () +. delay) watermark.(idx) in
      watermark.(idx) <- at;
      incr post_seq;
      Dmx_sim.Heap.add in_flight
        { deliver_at = at; seq = !post_seq; src; dst; msg };
      Mutex.unlock post_lock
      end
    in
    let postman () =
      let rec loop () =
        Mutex.lock post_lock;
        let due = ref [] in
        let rec drain () =
          match Dmx_sim.Heap.peek in_flight with
          | Some p when p.deliver_at <= now () ->
            ignore (Dmx_sim.Heap.pop in_flight);
            due := p :: !due;
            drain ()
          | Some _ | None -> ()
        in
        drain ();
        let empty = Dmx_sim.Heap.is_empty in_flight in
        Mutex.unlock post_lock;
        List.iter
          (fun p ->
            if not (Atomic.get dead.(p.dst)) then begin
              Atomic.incr messages;
              Mailbox.push mailboxes.(p.dst) (`Msg (p.src, p.msg))
            end)
          (List.rev !due);
        (* failure detector: tell survivors about crashes, once, after the
           detection latency *)
        List.iter
          (fun (t, victim, notified) ->
            if (not !notified) && now () >= t +. cfg.detection_delay then begin
              notified := true;
              for s = 0 to cfg.n - 1 do
                if s <> victim && not (Atomic.get dead.(s)) then
                  Mailbox.push mailboxes.(s) (`Failed victim)
              done
            end)
          detector_state;
        if Atomic.get force_exit || (Atomic.get stop && empty && !due = [])
        then ()
        else begin
          Unix.sleepf 0.0001;
          loop ()
        end
      in
      loop ()
    in
    (* per-site worker: drives the protocol state machine *)
    let site_worker self =
      let pending_enter = ref false in
      let ctx : P.message Dmx_sim.Protocol.ctx =
        {
          self;
          n = cfg.n;
          now;
          send =
            (fun ~dst msg ->
              if dst = self then Mailbox.push mailboxes.(self) (`Msg (self, msg))
              else post self dst msg);
          enter_cs = (fun () -> pending_enter := true);
          set_timer =
            (fun ~delay:_ ~tag:_ ->
              invalid_arg "Live: protocols with timers are not supported");
          rng = Dmx_sim.Rng.create (cfg.seed + self + 1);
          trace_note = ignore;
          trace_event = ignore;
          mark_parked = ignore;
        }
      in
      let state = P.init ctx pconfig in
      let completed = ref 0 in
      let in_cs = ref false in
      let cs_deadline = ref 0.0 in
      let my_crash = List.assoc_opt self (List.map (fun (t, s) -> (s, t)) cfg.crashes) in
      P.request_cs ctx state;
      let rec loop () =
        (* fail-stop: this site's domain dies at its scheduled time *)
        (match my_crash with
        | Some t when now () >= t && not (Atomic.get dead.(self)) ->
          if !in_cs then Occupancy.exit occ;
          Atomic.set dead.(self) true
        | _ -> ());
        if Atomic.get dead.(self) then () (* exit the worker *)
        else begin
        (* leave the CS once its duration elapsed *)
        if !in_cs && now () >= !cs_deadline then begin
          Occupancy.exit occ;
          in_cs := false;
          P.release_cs ctx state;
          incr completed;
          Atomic.incr per_site.(self);
          if !completed < cfg.rounds_per_site then P.request_cs ctx state
        end;
        (* absorb a granted entry *)
        if !pending_enter then begin
          pending_enter := false;
          Occupancy.enter occ;
          in_cs := true;
          cs_deadline := now () +. cfg.cs_duration
        end;
        (* serve the mailbox *)
        (match Mailbox.pop mailboxes.(self) with
        | Some (`Msg (src, msg)) -> P.on_message ctx state ~src msg
        | Some (`Failed victim) -> P.on_failure ctx state victim
        | None -> Unix.sleepf 0.00005);
        if
          Atomic.get force_exit
          || (Atomic.get stop && !completed >= cfg.rounds_per_site
             && not !in_cs)
        then () (* keep arbitrating until everyone is done, then exit *)
        else loop ()
        end
      in
      loop ()
    in
    let postman_d = Domain.spawn postman in
    let workers = Array.init cfg.n (fun s -> Domain.spawn (fun () -> site_worker s)) in
    (* orchestrator: wait until every surviving site finished its rounds
       (crashed sites' remaining rounds are waived); a hard wall-clock
       bound guards against a protocol that cannot make progress *)
    let deadline = Unix.gettimeofday () +. 60.0 in
    let rec wait () =
      let done_ =
        Array.for_all Fun.id
          (Array.init cfg.n (fun s ->
               Atomic.get per_site.(s) >= cfg.rounds_per_site
               || Atomic.get dead.(s)))
      in
      if (not done_) && Unix.gettimeofday () < deadline then begin
        Unix.sleepf 0.001;
        wait ()
      end
    in
    wait ();
    Atomic.set stop true;
    (* give stragglers a moment to notice, then force the exit *)
    Unix.sleepf 0.25;
    Atomic.set force_exit true;
    Array.iter Domain.join workers;
    Domain.join postman_d;
    {
      executions = Array.fold_left (fun a c -> a + Atomic.get c) 0 per_site;
      violations = Occupancy.violations occ;
      max_occupancy = Occupancy.max_occupancy occ;
      messages = Atomic.get messages;
      wall_seconds = Unix.gettimeofday () -. start;
      per_site = Array.map Atomic.get per_site;
    }
end
