(** Live execution of a protocol on OCaml 5 domains.

    The simulator ({!Dmx_sim.Engine}) runs protocols in virtual time; this
    runtime runs the {e same} protocol modules ({!Dmx_sim.Protocol.PROTOCOL})
    over real parallelism: one domain per site plus a postman domain that
    delivers messages after genuine wall-clock delays (per-channel FIFO
    preserved, like the model in the paper's Section 2). Mutual exclusion
    is checked with an atomic occupancy counter, so a violation is caught
    the instant two sites overlap in the critical section.

    This is a demonstration runtime — timing is real and therefore
    non-deterministic; use the simulator for measurements and this module
    to show the algorithm surviving true concurrency. Protocols that use
    timers are not supported. *)

type config = {
  n : int;  (** number of sites = number of worker domains *)
  rounds_per_site : int;  (** each site acquires the CS this many times *)
  cs_duration : float;  (** seconds spent inside the CS *)
  min_delay : float;  (** per-message delay lower bound, seconds *)
  max_delay : float;  (** upper bound (uniform in [min, max]) *)
  seed : int;  (** seeds the delay sampler *)
  crashes : (float * int) list;
      (** (seconds-from-start, site): the site's domain fail-stops — its
          mailbox goes dark and its in-flight channels are cut; survivors
          get [on_failure] callbacks after [detection_delay]. A crashed
          site's remaining rounds are waived. *)
  detection_delay : float;  (** failure-detector latency, seconds *)
}

val default : n:int -> config
(** 10 rounds/site, 1 ms CS, 0.2–1.2 ms delays, no crashes, 5 ms
    detection. *)

type report = {
  executions : int;
      (** CS executions completed (= rounds_per_site x surviving sites,
          plus whatever crashed sites finished before dying) *)
  violations : int;  (** overlapping CS occupancies observed (must be 0) *)
  max_occupancy : int;  (** highest simultaneous occupancy seen (must be 1) *)
  messages : int;  (** network messages delivered *)
  wall_seconds : float;
  per_site : int array;
}

val pp_report : Format.formatter -> report -> unit

module Make (P : Dmx_sim.Protocol.PROTOCOL) : sig
  val run : config -> P.config -> report
  (** Blocks until every site has completed its rounds. *)
end
