(* Lease state machine for one shard of the lock service, on one node.

   The machine sits between client sessions and a PROTOCOL instance: it
   queues client acquires, asks the protocol for the shard's CS exactly
   when the queue becomes non-empty, and while the protocol holds the CS
   it hands out one time-bounded lease at a time. It never touches the
   protocol or the network directly — every consequence of an event is
   returned as an [action] list for the host to perform, and all clock
   access goes through the [io] capabilities (mirroring Reliable.io), so
   the same machine runs on engine virtual time and on the wall clock. *)

type io = {
  now : unit -> float;
  set_timer : delay:float -> unit;
}

type config = {
  duration : float;
  max_batch : int;
}

let default = { duration = 2.0; max_batch = 8 }

let timer_tag = 1_000_000_000

type action =
  | Grant of { session : int; req : int; deadline : float }
  | Expire of { session : int; req : int }
  | Request_cs
  | Release_cs

type hold = {
  h_session : int;
  h_req : int;
  mutable deadline : float;
}

type stats = {
  grants : int;
  renewals : int;
  expiries : int;
  voided : int;
  tenures : int;
}

type t = {
  cfg : config;
  io : io;
  (* waiting (session, req) pairs, FIFO *)
  q : (int * int) Queue.t;
  mutable requested : bool;  (* protocol request outstanding *)
  mutable in_cs : bool;  (* protocol-level tenure *)
  mutable holder : hold option;
  mutable served : int;  (* holds granted within the current tenure *)
  mutable timer_armed : bool;
  (* lib/obs cells, so a host can [attach] them to its metrics registry *)
  grants : Dmx_obs.Metric.Counter.t;
  renewals : Dmx_obs.Metric.Counter.t;
  expiries : Dmx_obs.Metric.Counter.t;
  voided : Dmx_obs.Metric.Counter.t;
  tenures : Dmx_obs.Metric.Counter.t;
}

let create cfg ~io =
  if cfg.duration <= 0.0 then invalid_arg "Lease: duration must be positive";
  if cfg.max_batch < 1 then invalid_arg "Lease: max_batch must be >= 1";
  {
    cfg;
    io;
    q = Queue.create ();
    requested = false;
    in_cs = false;
    holder = None;
    served = 0;
    timer_armed = false;
    grants = Dmx_obs.Metric.Counter.create ();
    renewals = Dmx_obs.Metric.Counter.create ();
    expiries = Dmx_obs.Metric.Counter.create ();
    voided = Dmx_obs.Metric.Counter.create ();
    tenures = Dmx_obs.Metric.Counter.create ();
  }

let holder t = Option.map (fun h -> (h.h_session, h.h_req)) t.holder
let queue_length t = Queue.length t.q
let in_cs t = t.in_cs
let requested t = t.requested

let stats t =
  {
    grants = Dmx_obs.Metric.Counter.get t.grants;
    renewals = Dmx_obs.Metric.Counter.get t.renewals;
    expiries = Dmx_obs.Metric.Counter.get t.expiries;
    voided = Dmx_obs.Metric.Counter.get t.voided;
    tenures = Dmx_obs.Metric.Counter.get t.tenures;
  }

let attach ?labels t reg =
  Dmx_obs.Registry.attach_counter ?labels reg "lease.grants" t.grants;
  Dmx_obs.Registry.attach_counter ?labels reg "lease.renewals" t.renewals;
  Dmx_obs.Registry.attach_counter ?labels reg "lease.expiries" t.expiries;
  Dmx_obs.Registry.attach_counter ?labels reg "lease.voided" t.voided;
  Dmx_obs.Registry.attach_counter ?labels reg "lease.tenures" t.tenures;
  Dmx_obs.Registry.gauge_probe ?labels reg "lease.queue_depth" (fun () ->
      Queue.length t.q)

let stats_alist t =
  let st = stats t in
  List.filter
    (fun (_, v) -> v > 0)
    [
      ("lease.grants", st.grants);
      ("lease.renewals", st.renewals);
      ("lease.expiries", st.expiries);
      ("lease.voided", st.voided);
      ("lease.tenures", st.tenures);
    ]

let arm t delay =
  if not t.timer_armed then begin
    t.timer_armed <- true;
    t.io.set_timer ~delay:(Float.max delay 0.0)
  end

let grant_next t =
  let session, req = Queue.pop t.q in
  let deadline = t.io.now () +. t.cfg.duration in
  t.holder <- Some { h_session = session; h_req = req; deadline };
  t.served <- t.served + 1;
  Dmx_obs.Metric.Counter.incr t.grants;
  arm t t.cfg.duration;
  Grant { session; req; deadline }

(* Re-establish the invariant after any event: while in the CS with no
   current hold, either grant the next waiting client (bounded per tenure
   by [max_batch], so one busy node cannot monopolize the shard) or give
   the CS back; outside the CS, a non-empty queue demands a request. *)
let rec step t =
  if t.in_cs && t.holder = None then
    if (not (Queue.is_empty t.q)) && t.served < t.cfg.max_batch then begin
      (* bind first: [::] evaluates right to left, and [step] must see
         the hold [grant_next] installs *)
      let g = grant_next t in
      g :: step t
    end
    else begin
      t.in_cs <- false;
      t.served <- 0;
      Release_cs :: step t
    end
  else if
    (not t.in_cs) && (not t.requested) && not (Queue.is_empty t.q)
  then begin
    t.requested <- true;
    [ Request_cs ]
  end
  else []

let acquire t ~session ~req =
  match t.holder with
  | Some h when h.h_session = session && h.h_req = req ->
    (* idempotent re-acquire from the current holder: the original Grant
       was lost in flight (datagram transports) — re-ack it unchanged *)
    [ Grant { session; req; deadline = h.deadline } ]
  | _ ->
    if Queue.fold (fun acc (s, r) -> acc || (s = session && r = req)) false t.q
    then [] (* duplicate of a queued acquire: still waiting, say nothing *)
    else begin
      Queue.push (session, req) t.q;
      step t
    end

let release t ~session ~req =
  match t.holder with
  | Some h when h.h_session = session && h.h_req = req ->
    t.holder <- None;
    step t
  | _ ->
    (* Not the current hold: either a stale release that lost the race
       with expiry (ignore — the client already got its Expire), or a
       waiting client withdrawing its queued request. *)
    let kept = Queue.create () in
    Queue.iter
      (fun (s, r) -> if not (s = session && r = req) then Queue.push (s, r) kept)
      t.q;
    Queue.clear t.q;
    Queue.transfer kept t.q;
    step t

let renew t ~session ~req =
  match t.holder with
  | Some h when h.h_session = session && h.h_req = req ->
    h.deadline <- t.io.now () +. t.cfg.duration;
    Dmx_obs.Metric.Counter.incr t.renewals;
    (* the armed timer fires at the old deadline, observes the pushed-out
       one, and re-arms — exactly one timer in flight per hold chain *)
    [ Grant { session; req; deadline = h.deadline } ]
  | _ ->
    (* too late: the lease is gone (expired or superseded) *)
    [ Expire { session; req } ]

let granted t =
  t.in_cs <- true;
  t.requested <- false;
  t.served <- 0;
  Dmx_obs.Metric.Counter.incr t.tenures;
  step t

let void_session t ~session =
  let kept = Queue.create () in
  let dropped = ref 0 in
  Queue.iter
    (fun (s, r) ->
      if s = session then incr dropped else Queue.push (s, r) kept)
    t.q;
  Queue.clear t.q;
  Queue.transfer kept t.q;
  let freed =
    match t.holder with
    | Some h when h.h_session = session ->
      t.holder <- None;
      incr dropped;
      true
    | _ -> false
  in
  ignore freed;
  Dmx_obs.Metric.Counter.add t.voided !dropped;
  step t

let on_timer t =
  t.timer_armed <- false;
  match t.holder with
  | None -> []
  | Some h ->
    let now = t.io.now () in
    if now >= h.deadline -. 1e-9 then begin
      t.holder <- None;
      Dmx_obs.Metric.Counter.incr t.expiries;
      Expire { session = h.h_session; req = h.h_req } :: step t
    end
    else begin
      arm t (h.deadline -. now);
      []
    end
