(** The delay-optimal quorum-based mutual exclusion algorithm (Section 3).

    Each site plays two roles. As a {e requester} it collects permissions
    ([reply]) from every member of its request set; as an {e arbiter} it
    grants its single permission to one request at a time ([lock]),
    queueing the rest by priority. The paper's key idea: when the arbiter
    is already locked, it does not wait for the holder's [release] —
    instead it sends the holder a [transfer] naming the best waiter, and
    the holder {e forwards the permission directly} to that waiter when it
    exits the CS. The CS-exit-to-next-entry path is then one message
    ([reply]) instead of two ([release]; [reply]), cutting synchronization
    delay from 2T to the optimal T while message complexity stays
    3(K−1) under light load and 5(K−1)–6(K−1) under heavy load.

    Deadlock is avoided exactly as in Maekawa's algorithm: arbiters
    [inquire] lower-priority lock holders (piggybacked on the transfer),
    holders that have [fail]ed elsewhere [yield], and priorities are
    Lamport timestamps, so a waiting cycle always contains an arbiter that
    preempts. See DESIGN.md §3 for the OCR reconstruction notes. *)

type config = {
  assignment : Dmx_quorum.Coterie.assignment;
      (** one request set (quorum) per site, materialized or lazy, e.g. from
          {!Dmx_quorum.Builder}; each site's quorum is looked up exactly
          once, at [init] *)
  k_hint : float;
      (** mean quorum size, for {!describe} only — computed by the
          constructors, exact for materialized assignments and sampled for
          lazy ones *)
  piggyback_next : bool;
      (** piggyback a transfer naming the runner-up on direct grants (steps
          A.4 / release(max)); ablation knob — benchmark [ablation] shows
          what it buys *)
  eager_fails : bool;
      (** the corrected fail discipline of DESIGN.md §3.7: also fail a best
          waiter that ranks behind the lock, and re-check at every lock
          reassignment. Disabling reverts to the OCR-literal A.2 rules,
          which deadlock under message reordering — kept as an ablation to
          demonstrate exactly that. *)
}

val config :
  ?piggyback_next:bool -> ?eager_fails:bool -> int list array -> config
(** [config req_sets] with both flags defaulting to [true] (the correct,
    fully-optimized algorithm). *)

val config_of_assignment :
  ?piggyback_next:bool -> ?eager_fails:bool ->
  Dmx_quorum.Coterie.assignment -> config
(** Same, from a lazy assignment: nothing proportional to N is ever built,
    which is what makes universes of 10^6 sites runnable. *)

include
  Dmx_sim.Protocol.PROTOCOL
    with type config := config
     and type message = Messages.t

(** White-box access for the unit test suite. *)
module Internal : sig
  val lock : state -> Dmx_sim.Timestamp.t
  (** The arbiter-side lock, [Timestamp.infinity] when free. *)

  val req_queue : state -> Dmx_sim.Timestamp.t list
  val inquired : state -> bool
  val request : state -> Dmx_sim.Timestamp.t option
  val replied_from : state -> int list
  val failed : state -> bool
  val in_cs : state -> bool
  val tran_stack : state -> (int * Dmx_sim.Timestamp.t) list
  (** (arbiter, target) pairs, newest first. *)

  val inq_queue : state -> int list
  val quorum : state -> int list
  val set_quorum : state -> int list -> unit
  (** Used by the fault-tolerant variant when it reconstructs quorums. *)

  val copy_state : state -> state
  (** Deep copy, used by the model checker to branch executions. *)

  val mark_alive : state -> int -> unit
  (** Clear the arbiter's dead flag for a recovered site (the FT variant's
      rejoin path). *)

  val handle_site_failure :
    Messages.t Dmx_sim.Protocol.ctx ->
    state ->
    failed_site:int ->
    rebuild:(self:int -> avoid:(int -> bool) -> int list option) ->
    unit
  (** Section 6 recovery actions (requester re-quorum + arbiter cleanup);
      exposed here so {!Ft_delay_optimal} and the tests share one
      implementation. *)

  val abandon_request : Messages.t Dmx_sim.Protocol.ctx -> state -> unit
  (** Withdraw the outstanding request without reissuing: yield held
      permissions, clear transfer/inquire state. No-op when idle or inside
      the CS. Used when the request must park (no live quorum). *)

  val abandon_and_rerequest :
    Messages.t Dmx_sim.Protocol.ctx -> state -> int list -> unit
  (** [abandon_request], then adopt the given quorum and issue a fresh
      request with a new timestamp. *)

  val purge_stale_tenure :
    Messages.t Dmx_sim.Protocol.ctx -> state -> site:int -> unit
  (** Arbiter-side Section 6 cleanup alone (cases 1–3) for a site whose
      volatile state is provably gone — e.g. it reappeared with a larger
      reliability-layer incarnation. Unlike [handle_site_failure] it does
      not flag the site dead, so its fresh requests are served. *)
end
