module Ts = Dmx_sim.Timestamp

type t = { mutable entries : Ts.t list (* ascending = highest priority first *) }

let create () = { entries = [] }
let copy t = { entries = t.entries }
let is_empty t = t.entries = []
let length t = List.length t.entries

let insert t ts =
  (* One entry per site, keeping the one with the larger sequence number: a
     site's re-issued request supersedes its old one, and a stale re-enqueue
     of an old request (e.g. an out-of-order yield resolving after the site
     already re-requested) must never clobber the newer entry. *)
  let newer_exists =
    List.exists
      (fun (e : Ts.t) -> e.site = ts.Ts.site && e.sn >= ts.Ts.sn)
      t.entries
  in
  if not newer_exists then begin
    let without =
      List.filter (fun (e : Ts.t) -> e.site <> ts.Ts.site) t.entries
    in
    let rec ins = function
      | [] -> [ ts ]
      | e :: rest as l -> if Ts.compare ts e < 0 then ts :: l else e :: ins rest
    in
    t.entries <- ins without
  end

let head t = match t.entries with [] -> None | e :: _ -> Some e

let pop t =
  match t.entries with
  | [] -> None
  | e :: rest ->
    t.entries <- rest;
    Some e

let remove_site t site =
  let before = List.length t.entries in
  t.entries <- List.filter (fun (e : Ts.t) -> e.site <> site) t.entries;
  List.length t.entries < before

let remove_ts t ts =
  let before = List.length t.entries in
  t.entries <- List.filter (fun e -> not (Ts.equal e ts)) t.entries;
  List.length t.entries < before

let mem_site t site = List.exists (fun (e : Ts.t) -> e.site = site) t.entries
let find_site t site = List.find_opt (fun (e : Ts.t) -> e.site = site) t.entries
let to_list t = t.entries
let clear t = t.entries <- []
