(** A retry/ack reliability layer ("TCP-lite") for protocol messages.

    The base algorithm assumes the paper's Section-2 model: reliable FIFO
    channels. Under an unreliable network (message loss, duplication,
    partitions) that assumption is restored here, per peer:

    - every outgoing message is wrapped in a {!Messages.Data} envelope with
      a monotone per-peer sequence number;
    - the receiver delivers strictly in order, buffering gaps, suppressing
      duplicates, and acknowledging cumulatively with a delayed
      {!Messages.Ack} (one ack covers a burst);
    - unacknowledged messages are retransmitted as a block on an
      exponential-backoff timer, capped at [rto_max]. A deadline that
      observes ack progress since it was armed re-arms at the base [rto]
      instead of retransmitting: under pipelined traffic the backlog is
      mostly young messages the block timer has no individual deadline
      for, and a flowing ack stream proves the path is alive;
    - retransmission to a suspected peer can be {!suspend}ed and
      {!resume}d on a trust transition, so a partition does not generate
      unbounded traffic;
    - each site stamps an {e incarnation number} (its init time) on every
      envelope. A receiver adopts a strictly larger incarnation, restarting
      the peer's stream at the envelope's [base] — and reports it, giving
      the fault-tolerant layer hard evidence that the peer lost its state
      (as opposed to an unreliable detector hint). Within an incarnation
      sequence numbers never reset, so in-flight pre-restart messages
      cannot corrupt the fresh stream;
    - envelopes also carry the sender's last known incarnation of the
      {e destination}. A restarted site drops mail addressed to its dead
      predecessor — without this, a peer's retransmissions could resurrect
      a pre-crash conversation inside the fresh protocol state, which
      restarts its Lamport clock and may be reusing the very timestamps
      that conversation names. Symmetrically, restart evidence for a peer
      voids our own retransmission backlog to it.

    The layer claims timer tags [0 .. 2n-1] of the host protocol.

    It is {e time-source agnostic}: all clock and timer access goes through
    the {!io} capabilities captured at {!create}. The simulator passes
    engine virtual time (via {!io_of_ctx}); the networked runtime
    ({!Dmx_net}) passes the wall clock — the same layer, unchanged, in both
    worlds. *)

type io = {
  now : unit -> float;
      (** time source — engine virtual time or the wall clock; only read
          once, at {!create}, to stamp the incarnation number *)
  send : dst:int -> Messages.t -> unit;  (** the unreliable channel below *)
  set_timer : delay:float -> tag:int -> unit;
      (** one-shot timer in the same time base as [now]; expiries are fed
          back through {!on_timer} *)
}

val io_of_ctx : Messages.t Dmx_sim.Protocol.ctx -> io
(** The simulator binding: virtual-time [now], engine [send] and
    [set_timer]. *)

type config = {
  rto : float;  (** initial retransmission timeout *)
  backoff : float;  (** multiplier applied per retransmission round, >= 1 *)
  rto_max : float;  (** backoff ceiling *)
  ack_delay : float;  (** ack coalescing window *)
}

val default : config
(** rto = 3, backoff = 2, rto_max = 30, ack_delay = 0.5 — in units of the
    mean message delay T (rto comfortably above one round trip). *)

type t

val create : config -> n:int -> self:int -> io:io -> t
(** [io.now ()] at creation becomes this site's incarnation number, so the
    time source must be monotone across restarts of the same site (both
    engine virtual time and the wall clock qualify).
    @raise Invalid_argument on a nonsensical config. *)

type incoming = {
  restarted : bool;
      (** the sender provably lost its state since we last heard from it:
          its incarnation number grew *)
  deliveries : Messages.t list;  (** in-order payloads to hand up *)
}

val send : t -> dst:int -> Messages.t -> unit
(** Wrap and transmit through [io.send]; arms the retransmission timer
    unless [dst] is suspended. Not for self-sends (those bypass the
    network). *)

val on_message : t -> src:int -> Messages.t -> incoming
(** Feed a received [Data] or [Ack].
    @raise Invalid_argument on any other constructor. *)

val on_timer : t -> int -> bool
(** [false] if the tag is outside the layer's range (not ours). *)

val suspend : t -> int -> unit
(** Stop retransmitting to the peer (it is suspected down/unreachable).
    Unacknowledged messages are retained. *)

val resume : t -> int -> unit
(** The peer is trusted again: immediately retransmit its backlog with a
    fresh timeout. *)

val in_flight : t -> int -> int
(** Unacknowledged message count toward the peer (test/debug hook). *)

(** {2 Live counters} — what the layer actually did, for cluster reports
    and the [Metrics] control frame. *)

type stats = {
  retransmits : int;  (** envelopes resent by the block timer or {!resume} *)
  acks_sent : int;  (** cumulative [Ack]s emitted *)
  dup_drops : int;
      (** received [Data] suppressed as already-delivered or
          already-buffered *)
  stale_drops : int;
      (** received [Data] discarded for incarnation reasons: a dead
          sender's straggler, or mail addressed to this site's dead
          predecessor *)
}

val no_stats : stats

val stats : t -> stats

val stats_alist : t -> (string * int) list
(** Nonzero counters as [("reliable.retransmits", v); ...] pairs, ready
    for a metrics frame. *)

val attach : ?labels:(string * string) list -> t -> Dmx_obs.Registry.t -> unit
(** Bind the layer's counter cells into a metrics registry under the
    [reliable.*] names (with [labels] distinguishing instances — e.g.
    [("shard", "3")] when a host runs one layer per shard). The registry
    then sees live values with no polling: the cells registered are the
    very ints the hot path increments. *)
