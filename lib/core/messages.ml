(** Control messages of the delay-optimal algorithm (paper Section 3.1).

    The seven message types of the paper map onto six constructors because
    an [inquire] is always piggybacked with a [transfer] (Section 3.2), so
    the pair travels as one [Transfer] with the [inquire] flag — and is
    counted as one message, as in the paper's analysis. A [Reply] may carry
    a piggybacked transfer ([next]) when an arbiter grants and immediately
    names the following waiter (step A.4 and the release path). *)

module Ts = Dmx_sim.Timestamp

type t =
  | Request of Ts.t  (** request(sn, i): asking for the receiver's permission *)
  | Reply of { arbiter : int; for_req : Ts.t; next : Ts.t option }
      (** grants [arbiter]'s permission to the request [for_req]; sent by
          the arbiter itself or forwarded by an exiting CS holder on the
          arbiter's behalf. [next], when present, is a piggybacked
          transfer: the receiver must forward [arbiter]'s permission to
          [next] when it exits the CS. *)
  | Release of { of_req : Ts.t; forwarded_to : Ts.t option }
      (** release(i, x): the sender exited the CS executed for its request
          [of_req]. [Some x] means the sender already forwarded this
          arbiter's permission to the site of [x]; [None] is the paper's
          [release(i, max)]. [of_req] lets the arbiter pair the release
          with the right lock tenure: because permissions travel through
          proxies, a forwardee's release can overtake the forwarder's on a
          different channel (the FIFO guarantee is only per channel). *)
  | Transfer of { target : Ts.t; inquire : bool }
      (** transfer(target, j) from arbiter j to its current permission
          holder: forward a reply to [target] upon exiting the CS. When
          [inquire] is set, the arbiter simultaneously asks whether the
          holder can still win (inquire(j), piggybacked). *)
  | Fail  (** the sending arbiter serves a higher-priority request *)
  | Yield of { of_req : Ts.t }
      (** the sender gives the (receiving) arbiter's permission, granted to
          its request [of_req], back *)
  | Failure_note of int
      (** failure(i) broadcast of Section 6: the given site has crashed.
          Only used by the fault-tolerant variant. *)
  | Hello
      (** stream announcement of the reliability layer: carries no protocol
          content, but travels in a [Data] envelope so its incarnation
          number reaches every peer — a (re)joining site broadcasts it so
          arbiters outside its new quorum still learn of the restart *)
  | Data of {
      inc : float;
      dst_inc : float;
      seq : int;
      base : int;
      retx : bool;
      payload : t;
    }
      (** reliability envelope (Reliable layer): [payload] is the [seq]-th
          message of the sender's incarnation [inc]; [dst_inc] is the
          sender's last known incarnation of the destination
          ([neg_infinity] before first contact) — a restarted receiver uses
          it to discard mail addressed to its dead predecessor; [base] is
          the sender's oldest unacknowledged sequence number, letting a
          fresh receiver join the stream mid-flight; [retx] marks a
          retransmission. *)
  | Ack of { of_inc : float; upto : int }
      (** cumulative acknowledgement: every [Data] of incarnation [of_inc]
          with sequence number <= [upto] arrived *)

let rec kind = function
  | Request _ -> "request"
  | Reply { next = None; _ } -> "reply"
  | Reply { next = Some _; _ } -> "reply+transfer"
  | Release _ -> "release"
  | Transfer { inquire = false; _ } -> "transfer"
  | Transfer { inquire = true; _ } -> "inquire+transfer"
  | Fail -> "fail"
  | Yield _ -> "yield"
  | Failure_note _ -> "failure"
  | Hello -> "hello"
  (* First transmissions are accounted as their payload (the envelope is
     bookkeeping, not an extra message of the paper's analysis); re-sends
     and acks are the reliability layer's own overhead. *)
  | Data { retx = false; payload; _ } -> kind payload
  | Data { retx = true; _ } -> "retx"
  | Ack _ -> "ack"

let rec pp ppf = function
  | Request ts -> Format.fprintf ppf "request%a" Ts.pp ts
  | Reply { arbiter; for_req; next = None } ->
    Format.fprintf ppf "reply(%d)@%a" arbiter Ts.pp for_req
  | Reply { arbiter; for_req; next = Some p } ->
    Format.fprintf ppf "reply(%d)@%a+transfer%a" arbiter Ts.pp for_req Ts.pp p
  | Release { of_req; forwarded_to = None } ->
    Format.fprintf ppf "release(%a,max)" Ts.pp of_req
  | Release { of_req; forwarded_to = Some x } ->
    Format.fprintf ppf "release(%a,->%a)" Ts.pp of_req Ts.pp x
  | Transfer { target; inquire } ->
    Format.fprintf ppf "%stransfer%a"
      (if inquire then "inquire+" else "")
      Ts.pp target
  | Fail -> Format.pp_print_string ppf "fail"
  | Yield { of_req } -> Format.fprintf ppf "yield(%a)" Ts.pp of_req
  | Failure_note i -> Format.fprintf ppf "failure(%d)" i
  | Hello -> Format.pp_print_string ppf "hello"
  | Data { seq; retx; payload; _ } ->
    Format.fprintf ppf "%s#%d:%a" (if retx then "retx" else "seq") seq pp
      payload
  | Ack { upto; _ } -> Format.fprintf ppf "ack<=%d" upto
