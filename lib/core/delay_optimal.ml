module Ts = Dmx_sim.Timestamp
module Proto = Dmx_sim.Protocol
module Ct = Dmx_quorum.Coterie

type config = {
  assignment : Ct.assignment;
  k_hint : float;
  piggyback_next : bool;
  eager_fails : bool;
}

let config ?(piggyback_next = true) ?(eager_fails = true) req_sets =
  let sizes = Array.map List.length req_sets in
  let n = Array.length sizes in
  let k_hint =
    if n = 0 then 0.0
    else float_of_int (Array.fold_left ( + ) 0 sizes) /. float_of_int n
  in
  { assignment = Ct.of_req_sets req_sets; k_hint; piggyback_next; eager_fails }

let config_of_assignment ?(piggyback_next = true) ?(eager_fails = true) a =
  let k_hint = (Dmx_quorum.Builder.assignment_stats a).Dmx_quorum.Builder.k_mean in
  { assignment = a; k_hint; piggyback_next; eager_fails }

type message = Messages.t

(* Because permissions travel through proxies, a release or yield from the
   next holder can overtake, on its own channel, the release that makes it
   the holder. Such actions are stashed (one slot per site — sites run one
   request at a time) and applied the moment the lock catches up. *)
type pending_action = Released of Ts.t option | Yielded

(* Per-site protocol state is sparse: every per-peer map below is a
   hashtable keyed by site id rather than an N-slot array, so a site's
   memory follows the peers it actually talks to (its quorum plus its
   requesters — O(K)) instead of the universe size. At N = 10^6 the old
   arrays were 4 x 8 MB per instantiated site. *)
type state = {
  self : int;
  piggyback_next : bool;
  eager_fails : bool;
  mutable quorum : int list;
  clock : Ts.Clock.t;
  (* requester role *)
  mutable req : Ts.t option;  (* outstanding request, None when idle *)
  replied : (int, unit) Hashtbl.t;  (* arbiters whose permission is held *)
  mutable failed : bool;  (* received a fail or sent a yield this round *)
  mutable in_cs : bool;
  mutable tran_stack : (int * Ts.t) list;  (* (arbiter, target), newest first *)
  mutable inq_queue : int list;  (* arbiters with a deferred inquire *)
  (* arbiter role *)
  mutable lock : Ts.t;  (* request holding this site's permission *)
  queue : Ts_queue.t;  (* waiting requests, best first *)
  mutable inquired : bool;  (* inquire outstanding for the current lock *)
  fail_noted : (int, unit) Hashtbl.t;
      (* sites whose queued request was already failed, so they will yield
         if inquired elsewhere; never fail a request twice *)
  pending : (int, Ts.t * pending_action) Hashtbl.t;  (* keyed by site *)
  dead : (int, unit) Hashtbl.t;
      (* set by the Section 6 recovery only; the arbiter must never assign
         its lock to (or queue) a request from a crashed site — in-flight
         releases can otherwise hand the permission to the dead *)
}

let name = "delay-optimal"

let describe (c : config) = Printf.sprintf "K=%.1f" c.k_hint

let message_kind = Messages.kind
let pp_message = Messages.pp

let init (ctx : message Proto.ctx) (c : config) =
  if Ct.assignment_size c.assignment <> ctx.n then
    invalid_arg "Delay_optimal.init: req_sets size mismatch";
  {
    self = ctx.self;
    piggyback_next = c.piggyback_next;
    eager_fails = c.eager_fails;
    quorum = Ct.quorum_of c.assignment ctx.self;
    clock = Ts.Clock.create ();
    req = None;
    replied = Hashtbl.create 8;
    failed = false;
    in_cs = false;
    tran_stack = [];
    inq_queue = [];
    lock = Ts.infinity;
    queue = Ts_queue.create ();
    inquired = false;
    fail_noted = Hashtbl.create 8;
    pending = Hashtbl.create 8;
    dead = Hashtbl.create 8;
  }

(* ------------------------------------------------------------------ *)
(* Requester role                                                      *)
(* ------------------------------------------------------------------ *)

let all_replied st = List.for_all (Hashtbl.mem st.replied) st.quorum

let check_enter (ctx : message Proto.ctx) st =
  if st.req <> None && (not st.in_cs) && all_replied st then begin
    st.in_cs <- true;
    st.failed <- false;
    st.inq_queue <- [];
    ctx.enter_cs ()
  end

(* Give [arbiter]'s permission back (the yield of step A.3); any transfers
   that arbiter asked of us become void. *)
let send_yield (ctx : message Proto.ctx) st arbiter =
  match st.req with
  | None -> ()
  | Some own ->
    if Hashtbl.mem st.replied arbiter then
      ctx.trace_event (Dmx_sim.Trace.Cede { arbiter });
    Hashtbl.remove st.replied arbiter;
    st.failed <- true;
    st.tran_stack <- List.filter (fun (a, _) -> a <> arbiter) st.tran_stack;
    ctx.send ~dst:arbiter (Messages.Yield { of_req = own })

(* Step A.3. An inquire is answered with a yield only when we hold that
   arbiter's permission but have already lost somewhere (failed); once we
   hold every permission the exit-time release answers it implicitly, and
   before the reply arrives the inquire waits in inq_queue. *)
let process_inquire (ctx : message Proto.ctx) st arbiter =
  if st.req <> None && (not st.in_cs) && not (all_replied st) then begin
    if Hashtbl.mem st.replied arbiter && st.failed then send_yield ctx st arbiter
    else if not (List.mem arbiter st.inq_queue) then
      st.inq_queue <- arbiter :: st.inq_queue
  end

(* Step A.7. *)
let on_fail (ctx : message Proto.ctx) st ~arbiter =
  ignore arbiter;
  if st.req <> None && (not st.in_cs) && not (all_replied st) then begin
    st.failed <- true;
    let pending = st.inq_queue in
    st.inq_queue <- [];
    List.iter (process_inquire ctx st) pending
  end

(* Step A.6 (with the req_queue -> inq_queue OCR fix, DESIGN.md §3.1). *)
let on_reply (ctx : message Proto.ctx) st ~arbiter ~for_req ~next =
  let current = match st.req with Some own -> Ts.equal own for_req | None -> false in
  if (not current) || not (List.mem arbiter st.quorum) then begin
    (* A permission we no longer want (failure recovery abandoned the
       request, or the quorum was rebuilt without this arbiter): hand it
       straight back so the arbiter can re-grant. *)
    st.inq_queue <- List.filter (fun a -> a <> arbiter) st.inq_queue;
    ctx.send ~dst:arbiter
      (Messages.Release { of_req = for_req; forwarded_to = None })
  end
  else begin
    if not (Hashtbl.mem st.replied arbiter) then
      ctx.trace_event (Dmx_sim.Trace.Acquire { arbiter });
    Hashtbl.replace st.replied arbiter ();
    (match next with
    | Some target -> st.tran_stack <- (arbiter, target) :: st.tran_stack
    | None -> ());
    if List.mem arbiter st.inq_queue then begin
      st.inq_queue <- List.filter (fun a -> a <> arbiter) st.inq_queue;
      process_inquire ctx st arbiter
    end;
    check_enter ctx st
  end

(* Step A.5: a transfer only binds a site that actually holds the
   arbiter's permission; stale ones are dropped. The piggybacked inquire is
   processed (or deferred) regardless. *)
let on_transfer (ctx : message Proto.ctx) st ~src ~target ~inquire =
  if st.req <> None && Hashtbl.mem st.replied src then
    st.tran_stack <- (src, target) :: st.tran_stack;
  if inquire then process_inquire ctx st src

(* Step A.1. *)
let request_cs (ctx : message Proto.ctx) st =
  assert (st.req = None && not st.in_cs);
  let ts = Ts.Clock.next st.clock ~site:st.self in
  st.req <- Some ts;
  st.failed <- false;
  Hashtbl.reset st.replied;
  st.tran_stack <- [];
  st.inq_queue <- [];
  ctx.trace_event (Dmx_sim.Trace.Adopt_quorum st.quorum);
  List.iter (fun j -> ctx.send ~dst:j (Messages.Request ts)) st.quorum

(* Step C. Honor the newest transfer per arbiter (LIFO with same-sender
   pruning), then tell every arbiter whether its permission was forwarded
   and to whom. All permissions are relinquished here, so [replied] is
   cleared now — not at the next request — which makes late transfers
   harmless (DESIGN.md §3.2). *)
let release_cs (ctx : message Proto.ctx) st =
  assert st.in_cs;
  let own = match st.req with Some own -> own | None -> assert false in
  st.in_cs <- false;
  st.req <- None;
  let honored = Hashtbl.create 8 in
  List.iter
    (fun (arbiter, target) ->
      if not (Hashtbl.mem honored arbiter) then begin
        Hashtbl.add honored arbiter target;
        ctx.trace_event
          (Dmx_sim.Trace.Forward { arbiter; to_ = target.Ts.site });
        ctx.send ~dst:target.Ts.site
          (Messages.Reply { arbiter; for_req = target; next = None })
      end)
    st.tran_stack;
  st.tran_stack <- [];
  List.iter
    (fun j ->
      if not (Hashtbl.mem honored j) then
        ctx.trace_event (Dmx_sim.Trace.Cede { arbiter = j });
      ctx.send ~dst:j
        (Messages.Release
           { of_req = own; forwarded_to = Hashtbl.find_opt honored j }))
    st.quorum;
  Hashtbl.reset st.replied;
  st.failed <- false;
  st.inq_queue <- []

(* ------------------------------------------------------------------ *)
(* Arbiter role                                                        *)
(* ------------------------------------------------------------------ *)

(* Ask the current holder to forward the permission to [target] when it
   exits, inquiring (once per lock tenure) iff [target] outranks the
   holder. *)
let send_transfer (ctx : message Proto.ctx) st target =
  let want_inquire = Ts.(target < st.lock) && not st.inquired in
  if want_inquire then st.inquired <- true;
  ctx.send ~dst:st.lock.Ts.site
    (Messages.Transfer { target; inquire = want_inquire })

(* A queued request that ranks behind the current lock must know it may
   lose (it yields elsewhere only when [failed] is set); sent at most once
   per queue residence. Deadlock-freedom depends on this: a waiting cycle
   always contains a site holding one permission while ranking behind
   another lock, and the fail is what makes it yield when inquired. *)
let note_fail (ctx : message Proto.ctx) st (entry : Ts.t) =
  if not (Hashtbl.mem st.fail_noted entry.Ts.site) then begin
    Hashtbl.replace st.fail_noted entry.Ts.site ();
    ctx.send ~dst:entry.Ts.site Messages.Fail
  end

(* Re-establish the head-vs-lock discipline after any lock reassignment:
   a head outranking the new holder triggers the (single) inquire; a head
   ranking behind it gets its fail. *)
let enforce_head_rule (ctx : message Proto.ctx) st =
  if st.eager_fails then begin
    match Ts_queue.head st.queue with
    | Some h when Ts.(h > st.lock) -> note_fail ctx st h
    | Some _ | None -> ()
  end

let take_pending st (ts : Ts.t) =
  match Hashtbl.find_opt st.pending ts.Ts.site with
  | Some (pts, action) when Ts.equal pts ts ->
    Hashtbl.remove st.pending ts.Ts.site;
    Some action
  | _ -> None

(* Point the lock at [ts] and run [announce] — unless that request already
   finished (its release/yield overtook us), in which case the stashed
   action replaces the tenure on the spot. *)
let rec assign_lock (ctx : message Proto.ctx) st ts ~announce =
  st.lock <- ts;
  st.inquired <- false;
  Hashtbl.remove st.fail_noted ts.Ts.site;
  match take_pending st ts with
  | None -> announce ()
  | Some (Released forwarded_to) -> apply_release ctx st ~forwarded_to
  | Some Yielded ->
    Ts_queue.insert st.queue ts;
    grant_next ctx st

(* Grant the best waiting request directly, piggybacking a transfer naming
   the runner-up (steps A.4 and the release(max) path). *)
and grant_next (ctx : message Proto.ctx) st =
  match Ts_queue.pop st.queue with
  | Some best when Hashtbl.mem st.dead best.Ts.site -> grant_next ctx st
  | Some best ->
    assign_lock ctx st best ~announce:(fun () ->
        let next =
          if st.piggyback_next then Ts_queue.head st.queue else None
        in
        ctx.trace_event (Dmx_sim.Trace.Grant { to_ = best.Ts.site });
        ctx.send ~dst:best.Ts.site
          (Messages.Reply { arbiter = ctx.self; for_req = best; next });
        (* without the piggyback the holder still needs to learn who is
           next, by a separate transfer message *)
        if not st.piggyback_next then begin
          match Ts_queue.head st.queue with
          | Some h -> send_transfer ctx st h
          | None -> ()
        end;
        enforce_head_rule ctx st)
  | None ->
    st.lock <- Ts.infinity;
    st.inquired <- false

(* The receiving side of a release (step C.2, DESIGN.md §3.6). *)
and apply_release (ctx : message Proto.ctx) st ~forwarded_to =
  match forwarded_to with
  | Some x when not (Hashtbl.mem st.dead x.Ts.site) ->
    (* The exiting holder already forwarded our permission to [x]. Remove
       exactly that request from the queue (x may have re-requested). A
       target found neither queued nor stashed has been purged since the
       transfer was issued (restart evidence arriving while this release
       sat in the reliability layer's reorder buffer): the conveyed
       permission went to the target's dead incarnation, so the tenure is
       void and the permission is reclaimed — re-instating it would park
       the lock on a request nobody will ever release. *)
    let queued = Ts_queue.remove_ts st.queue x in
    let stashed =
      match Hashtbl.find_opt st.pending x.Ts.site with
      | Some (pts, _) -> Ts.equal pts x
      | None -> false
    in
    if queued || stashed then
      assign_lock ctx st x ~announce:(fun () ->
          (match Ts_queue.head st.queue with
          | Some h -> send_transfer ctx st h
          | None -> ());
          enforce_head_rule ctx st)
    else grant_next ctx st
  | Some _ (* forwarded to a site that died: reclaim the permission *)
  | None ->
    grant_next ctx st

(* Step A.2, all six cases unified (DESIGN.md §3.5). A newcomer that became
   the best waiter is announced to the holder by a transfer (plus the
   inquire when it outranks the holder); it is failed when it ranks behind
   the lock (the paper's §5.2 Case 1 flow), and the waiter it superseded is
   failed as well. A newcomer that is not the best waiter just fails. *)
let on_request (ctx : message Proto.ctx) st ~src ts =
  Ts.Clock.observe st.clock ts;
  (* Note: a stashed action from this site's PREVIOUS request must survive
     the arrival of its next request — the stash resolves precisely when
     the old holder's release assigns the lock to that previous request. *)
  if Hashtbl.mem st.dead src then () (* a last gasp from a crashed site *)
  else if Ts.is_infinity st.lock then
    assign_lock ctx st ts ~announce:(fun () ->
        ctx.trace_event (Dmx_sim.Trace.Grant { to_ = src });
        ctx.send ~dst:src
          (Messages.Reply { arbiter = ctx.self; for_req = ts; next = None }))
  else begin
    let old_head = Ts_queue.head st.queue in
    Ts_queue.insert st.queue ts;
    Hashtbl.remove st.fail_noted src;
    match Ts_queue.head st.queue with
    | Some h when Ts.equal h ts ->
      (match old_head with
      | Some prev when prev.Ts.site <> src -> note_fail ctx st prev
      | Some _ | None -> ());
      if st.eager_fails && Ts.(ts > st.lock) then note_fail ctx st ts;
      send_transfer ctx st ts
    | Some _ | None -> note_fail ctx st ts
  end

(* Step A.4: the holder gives the permission back; its request rejoins the
   queue and the best waiter is granted with a piggybacked transfer. An
   out-of-order yield (for a tenure we have not assigned yet) is stashed. *)
let on_yield (ctx : message Proto.ctx) st ~src ~of_req =
  if Ts.equal st.lock of_req then begin
    Ts_queue.insert st.queue st.lock;
    grant_next ctx st
  end
  else if not (Ts.is_infinity st.lock) then
    Hashtbl.replace st.pending src (of_req, Yielded)

let on_release (ctx : message Proto.ctx) st ~src ~of_req ~forwarded_to =
  if Ts.equal st.lock of_req then apply_release ctx st ~forwarded_to
  else if not (Ts.is_infinity st.lock) then
    Hashtbl.replace st.pending src (of_req, Released forwarded_to)

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let on_message (ctx : message Proto.ctx) st ~src (msg : message) =
  match msg with
  | Messages.Request ts -> on_request ctx st ~src ts
  | Messages.Reply { arbiter; for_req; next } ->
    on_reply ctx st ~arbiter ~for_req ~next
  | Messages.Release { of_req; forwarded_to } ->
    on_release ctx st ~src ~of_req ~forwarded_to
  | Messages.Transfer { target; inquire } ->
    on_transfer ctx st ~src ~target ~inquire
  | Messages.Fail -> on_fail ctx st ~arbiter:src
  | Messages.Yield { of_req } -> on_yield ctx st ~src ~of_req
  | Messages.Failure_note _ -> ()
  (* Reliability envelopes are unwrapped by the FT layer before dispatch;
     the base protocol never sees them. Hello carries no protocol content
     (its Data envelope spread the sender's incarnation, which is all). *)
  | Messages.Data _ | Messages.Ack _ | Messages.Hello -> ()

let on_timer _ctx _st _tag = ()
let on_failure _ctx _st _site = ()

(* Base protocol ignores recoveries; the FT wrapper clears the dead flag
   so the arbiter accepts the rejoined site's requests again. *)
let on_recovery _ctx _st _site = ()

let mark_alive st site = Hashtbl.remove st.dead site

(* ------------------------------------------------------------------ *)
(* Section 6 failure recovery, shared with the fault-tolerant variant  *)
(* ------------------------------------------------------------------ *)

(* Abandon the outstanding request without reissuing (graceful
   degradation: no live quorum exists, so the request parks at the FT
   layer). Held permissions go back so the arbiters can serve others.
   Arbiters we have no reply from get an explicit withdraw instead: they
   may have locked their tenure on this request already — e.g. a holder
   forwarded the permission to us and crashed before the transfer got
   through — and without the withdraw that tenure waits forever for a
   release from a site that never received anything. An arbiter that
   merely queued the request stashes the withdraw and resolves it when
   the lock reaches it; one that never heard of us ignores it. Should a
   stale conveyance still arrive later, on_reply's not-current branch
   hands it straight back, so the permission is never duplicated. *)
let abandon_request (ctx : message Proto.ctx) st =
  if st.req <> None && not st.in_cs then begin
    let own = match st.req with Some o -> o | None -> assert false in
    List.iter
      (fun k ->
        if Hashtbl.mem st.replied k then send_yield ctx st k
        else
          ctx.send ~dst:k
            (Messages.Release { of_req = own; forwarded_to = None }))
      st.quorum;
    st.tran_stack <- [];
    st.inq_queue <- [];
    st.failed <- false;
    st.req <- None
  end

let abandon_and_rerequest (ctx : message Proto.ctx) st new_quorum =
  abandon_request ctx st;
  st.quorum <- new_quorum;
  request_cs ctx st

(* Arbiter-side cleanup — the three cases of Section 6 — for a site whose
   volatile state is provably gone: its queued request, transfers naming
   it, deferred inquires from it, and any lock tenure it held are void.
   Shared by the oracle crash path (handle_site_failure) and the
   restart-evidence path of the FT wrapper (a peer reappearing with a
   larger incarnation number). *)
let purge_stale_tenure (ctx : message Proto.ctx) st ~site =
  (* Case 1: the site's request is queued. If it was the best waiter, the
     holder was told to forward to it — re-point the holder at the new
     best waiter. *)
  let was_head =
    match Ts_queue.head st.queue with
    | Some h -> h.Ts.site = site
    | None -> false
  in
  let removed = Ts_queue.remove_site st.queue site in
  Hashtbl.remove st.fail_noted site;
  Hashtbl.remove st.pending site;
  if removed && was_head && not (Ts.is_infinity st.lock) then begin
    (match Ts_queue.head st.queue with
    | Some h -> send_transfer ctx st h
    | None -> ());
    enforce_head_rule ctx st
  end;
  (* Case 2: transfers naming the site are void, and so are deferred
     inquires from it. *)
  st.tran_stack <-
    List.filter (fun (_, tgt) -> tgt.Ts.site <> site) st.tran_stack;
  st.inq_queue <- List.filter (fun a -> a <> site) st.inq_queue;
  (* Case 3: the site holds our permission: reclaim and re-grant. *)
  if st.lock.Ts.site = site then grant_next ctx st

let handle_site_failure (ctx : message Proto.ctx) st ~failed_site ~rebuild =
  Hashtbl.replace st.dead failed_site ();
  (* Requester side: a quorum containing the dead site can never be
     assembled; release what we hold, pick a new quorum, and re-request
     with a fresh timestamp. A site inside the CS keeps going — its exit
     releases normally (messages to the dead arbiter are simply lost). *)
  if List.mem failed_site st.quorum && not st.in_cs then begin
    match rebuild ~self:st.self ~avoid:(fun s -> s = failed_site) with
    | Some q ->
      if st.req <> None then abandon_and_rerequest ctx st q
      else st.quorum <- q
    | None ->
      ctx.trace_note "failure: no quorum can be rebuilt";
      abandon_request ctx st
  end;
  (* Arbiter side: the dead flag is already up, so grant_next skips any
     in-flight requests from the corpse. *)
  purge_stale_tenure ctx st ~site:failed_site

module Internal = struct
  let lock st = st.lock
  let req_queue st = Ts_queue.to_list st.queue
  let inquired st = st.inquired
  let request st = st.req

  let replied_from st =
    Hashtbl.fold (fun k () acc -> k :: acc) st.replied []
    |> List.sort Int.compare

  let failed st = st.failed
  let in_cs st = st.in_cs
  let tran_stack st = st.tran_stack
  let inq_queue st = st.inq_queue
  let quorum st = st.quorum
  let set_quorum st q = st.quorum <- q
  let mark_alive = mark_alive

  let copy_state st =
    {
      st with
      replied = Hashtbl.copy st.replied;
      queue = Ts_queue.copy st.queue;
      fail_noted = Hashtbl.copy st.fail_noted;
      pending = Hashtbl.copy st.pending;
      dead = Hashtbl.copy st.dead;
      clock = Ts.Clock.copy st.clock;
    }

  let handle_site_failure = handle_site_failure
  let abandon_request = abandon_request
  let abandon_and_rerequest = abandon_and_rerequest
  let purge_stale_tenure = purge_stale_tenure
end
