module Proto = Dmx_sim.Protocol

(* The layer is time-source agnostic: it never reads a global clock, only
   the capabilities captured here. The simulator hands it engine virtual
   time; the networked runtime (Dmx_net) hands it the wall clock. *)
type io = {
  now : unit -> float;
  send : dst:int -> Messages.t -> unit;
  set_timer : delay:float -> tag:int -> unit;
}

let io_of_ctx (ctx : Messages.t Proto.ctx) =
  {
    now = ctx.Proto.now;
    send = (fun ~dst msg -> ctx.Proto.send ~dst msg);
    set_timer = (fun ~delay ~tag -> ctx.Proto.set_timer ~delay ~tag);
  }

type config = {
  rto : float;
  backoff : float;
  rto_max : float;
  ack_delay : float;
}

let default = { rto = 3.0; backoff = 2.0; rto_max = 30.0; ack_delay = 0.5 }

let validate c =
  if not (c.rto > 0.0) then invalid_arg "Reliable: rto must be positive";
  if not (c.backoff >= 1.0) then invalid_arg "Reliable: backoff must be >= 1";
  if not (c.rto_max >= c.rto) then invalid_arg "Reliable: rto_max < rto";
  if not (c.ack_delay > 0.0) then
    invalid_arg "Reliable: ack_delay must be positive"

(* Sender side of one peer's stream. [unacked] is oldest-first; everything
   in it is retransmitted as a block when the timer fires. *)
type tx = {
  mutable next_seq : int;
  mutable unacked : (int * Messages.t) list;
  mutable rto : float;
  mutable timer_armed : bool;
  mutable suspended : bool;
  mutable progressed : bool;
      (* an ack advanced the stream since the timer was armed: the path is
         alive, so a firing deadline re-arms instead of retransmitting the
         (mostly young) backlog *)
}

(* Receiver side of one peer's stream. [inc] is the peer's last known
   incarnation (neg_infinity before first contact); [buffer] holds
   out-of-order arrivals, sorted by sequence number. *)
type rx = {
  mutable inc : float;
  mutable expected : int;
  mutable buffer : (int * Messages.t) list;
  mutable ack_due : bool;
  mutable ack_armed : bool;
}

type stats = {
  retransmits : int;
  acks_sent : int;
  dup_drops : int;
  stale_drops : int;
}

let no_stats = { retransmits = 0; acks_sent = 0; dup_drops = 0; stale_drops = 0 }

(* The counters are lib/obs cells rather than plain ints so a runtime can
   bind them into its metrics registry ([attach]) and have the scrape
   endpoint see live values with no polling glue; the record path is the
   same single int store either way. *)
type t = {
  cfg : config;
  self : int;
  n : int;
  io : io;
  inc : float;  (* this site's incarnation: its init time *)
  txs : tx array;
  rxs : rx array;
  c_retransmits : Dmx_obs.Metric.Counter.t;
  c_acks_sent : Dmx_obs.Metric.Counter.t;
  c_dup_drops : Dmx_obs.Metric.Counter.t;
  c_stale_drops : Dmx_obs.Metric.Counter.t;
}

type incoming = { restarted : bool; deliveries : Messages.t list }

let create cfg ~n ~self ~io =
  validate cfg;
  {
    cfg;
    self;
    n;
    io;
    inc = io.now ();
    txs =
      Array.init n (fun _ ->
          {
            next_seq = 0;
            unacked = [];
            rto = cfg.rto;
            timer_armed = false;
            suspended = false;
            progressed = false;
          });
    rxs =
      Array.init n (fun _ ->
          {
            inc = Float.neg_infinity;
            expected = 0;
            buffer = [];
            ack_due = false;
            ack_armed = false;
          });
    c_retransmits = Dmx_obs.Metric.Counter.create ();
    c_acks_sent = Dmx_obs.Metric.Counter.create ();
    c_dup_drops = Dmx_obs.Metric.Counter.create ();
    c_stale_drops = Dmx_obs.Metric.Counter.create ();
  }

let stats t =
  {
    retransmits = Dmx_obs.Metric.Counter.get t.c_retransmits;
    acks_sent = Dmx_obs.Metric.Counter.get t.c_acks_sent;
    dup_drops = Dmx_obs.Metric.Counter.get t.c_dup_drops;
    stale_drops = Dmx_obs.Metric.Counter.get t.c_stale_drops;
  }

let attach ?labels t reg =
  Dmx_obs.Registry.attach_counter ?labels reg "reliable.retransmits"
    t.c_retransmits;
  Dmx_obs.Registry.attach_counter ?labels reg "reliable.acks_sent"
    t.c_acks_sent;
  Dmx_obs.Registry.attach_counter ?labels reg "reliable.dup_drops"
    t.c_dup_drops;
  Dmx_obs.Registry.attach_counter ?labels reg "reliable.stale_drops"
    t.c_stale_drops

let stats_alist t =
  let st = stats t in
  List.filter
    (fun (_, v) -> v > 0)
    [
      ("reliable.retransmits", st.retransmits);
      ("reliable.acks_sent", st.acks_sent);
      ("reliable.dup_drops", st.dup_drops);
      ("reliable.stale_drops", st.stale_drops);
    ]

let retx_tag peer = 2 * peer
let ack_tag peer = (2 * peer) + 1
let owns_tag t tag = tag >= 0 && tag < 2 * t.n

let arm_retx t peer =
  let x = t.txs.(peer) in
  if not x.timer_armed then begin
    x.timer_armed <- true;
    x.progressed <- false;
    t.io.set_timer ~delay:x.rto ~tag:(retx_tag peer)
  end

let send t ~dst payload =
  let x = t.txs.(dst) in
  let seq = x.next_seq in
  x.next_seq <- seq + 1;
  x.unacked <- x.unacked @ [ (seq, payload) ];
  let base = fst (List.hd x.unacked) in
  t.io.send ~dst
    (Messages.Data
       {
         inc = t.inc;
         dst_inc = t.rxs.(dst).inc;
         seq;
         base;
         retx = false;
         payload;
       });
  if not x.suspended then arm_retx t dst

let mark_ack_due t peer =
  let r = t.rxs.(peer) in
  r.ack_due <- true;
  if not r.ack_armed then begin
    r.ack_armed <- true;
    t.io.set_timer ~delay:t.cfg.ack_delay ~tag:(ack_tag peer)
  end

let resend_all t peer =
  let x = t.txs.(peer) in
  match x.unacked with
  | [] -> ()
  | (base, _) :: _ ->
    List.iter
      (fun (seq, payload) ->
        Dmx_obs.Metric.Counter.incr t.c_retransmits;
        t.io.send ~dst:peer
          (Messages.Data
             {
               inc = t.inc;
               dst_inc = t.rxs.(peer).inc;
               seq;
               base;
               retx = true;
               payload;
             }))
      x.unacked

let on_timer t tag =
  if not (owns_tag t tag) then false
  else begin
    let peer = tag / 2 in
    if tag land 1 = 0 then begin
      (* retransmission deadline *)
      let x = t.txs.(peer) in
      x.timer_armed <- false;
      if x.unacked <> [] && not x.suspended then
        if x.progressed then begin
          (* acks flowed during the window, so nothing here is overdue yet:
             restart the deadline rather than flooding the live path *)
          x.rto <- t.cfg.rto;
          arm_retx t peer
        end
        else begin
          resend_all t peer;
          x.rto <- Float.min (x.rto *. t.cfg.backoff) t.cfg.rto_max;
          arm_retx t peer
        end
    end
    else begin
      (* delayed-ack deadline: one cumulative ack covers every Data that
         arrived during the coalescing window *)
      let r = t.rxs.(peer) in
      r.ack_armed <- false;
      if r.ack_due then begin
        r.ack_due <- false;
        Dmx_obs.Metric.Counter.incr t.c_acks_sent;
        t.io.send ~dst:peer
          (Messages.Ack { of_inc = r.inc; upto = r.expected - 1 })
      end
    end;
    true
  end

let rec insert_sorted seq payload = function
  | [] -> [ (seq, payload) ]
  | (s, _) :: _ as l when seq < s -> (seq, payload) :: l
  | ((s, _) as hd) :: rest ->
    if s = seq then hd :: rest (* duplicate of a buffered message *)
    else hd :: insert_sorted seq payload rest

let on_message t ~src msg =
  match msg with
  | Messages.Ack { of_inc; upto } ->
    if of_inc = t.inc then begin
      let x = t.txs.(src) in
      let before = List.length x.unacked in
      x.unacked <- List.filter (fun (s, _) -> s > upto) x.unacked;
      if List.length x.unacked < before then x.progressed <- true;
      (* stream drained: the path works, restart backoff from scratch *)
      if x.unacked = [] then x.rto <- t.cfg.rto
    end;
    { restarted = false; deliveries = [] }
  | Messages.Data d ->
    let r = t.rxs.(src) in
    if d.inc < r.inc then begin
      Dmx_obs.Metric.Counter.incr t.c_stale_drops;
      { restarted = false; deliveries = [] }
    end
      (* straggler from a previous incarnation of [src]: discard *)
    else if d.dst_inc < t.inc && not (Float.equal d.dst_inc Float.neg_infinity)
    then begin
      Dmx_obs.Metric.Counter.incr t.c_stale_drops;
      { restarted = false; deliveries = [] }
    end
      (* mail addressed to a previous incarnation of THIS site: its state
         died with the crash, so delivering it here would let the restarted
         protocol mistake a pre-crash conversation (whose restarted Lamport
         timestamps it may be reusing) for its own. Drop without acking;
         the sender purges its backlog once our Hello reaches it. *)
    else begin
      let restarted =
        d.inc > r.inc && not (Float.equal r.inc Float.neg_infinity)
      in
      if d.inc > r.inc then begin
        (* new incarnation: join its stream at the sender's declared base *)
        r.inc <- d.inc;
        r.expected <- d.base;
        r.buffer <- [];
        r.ack_due <- false;
        if restarted then begin
          (* the peer provably lost its state (first contact is NOT a
             restart): void our backlog to it — that mail was addressed to
             the incarnation that died *)
          let x = t.txs.(src) in
          x.unacked <- [];
          x.rto <- t.cfg.rto
        end
      end;
      let deliveries = ref [] in
      if d.seq < r.expected then
        (* duplicate; the ack below re-tells the sender *)
        Dmx_obs.Metric.Counter.incr t.c_dup_drops
      else if d.seq = r.expected then begin
        deliveries := [ d.payload ];
        r.expected <- r.expected + 1;
        let rec drain () =
          match r.buffer with
          | (s, payload) :: rest when s = r.expected ->
            r.buffer <- rest;
            deliveries := payload :: !deliveries;
            r.expected <- r.expected + 1;
            drain ()
          | _ -> ()
        in
        drain ()
      end
      else if List.mem_assoc d.seq r.buffer then
        (* duplicate of a buffered out-of-order message *)
        Dmx_obs.Metric.Counter.incr t.c_dup_drops
      else r.buffer <- insert_sorted d.seq d.payload r.buffer;
      mark_ack_due t src;
      { restarted; deliveries = List.rev !deliveries }
    end
  | _ -> invalid_arg "Reliable.on_message: not a Data/Ack message"

let suspend t peer = t.txs.(peer).suspended <- true

let resume t peer =
  let x = t.txs.(peer) in
  if x.suspended then begin
    x.suspended <- false;
    if x.unacked <> [] then begin
      (* don't wait out a backed-off timer: the peer is reachable again *)
      x.rto <- t.cfg.rto;
      resend_all t peer;
      arm_retx t peer
    end
  end

let in_flight t peer = List.length t.txs.(peer).unacked
