(** Fault-tolerant delay-optimal mutual exclusion (paper Section 6).

    Wraps {!Delay_optimal} with the failure machinery the paper sketches:
    when a site learns (from the failure detector, or from a [failure(i)]
    broadcast) that a site crashed, it (a) as a requester whose quorum
    contains the dead site: releases the permissions it gathered, runs the
    quorum construction algorithm again avoiding dead sites, and re-issues
    its request; (b) as an arbiter: drops the dead site's queued request
    (re-pointing the pending transfer), voids transfers naming it, and
    reclaims its own permission if the dead site was holding it.

    Beyond the paper's fail-stop sketch, this variant survives an
    {e unreliable network}:

    - with [reliability = Some _], every peer message travels through the
      {!Reliable} retry/ack layer, restoring the Section-2 reliable-FIFO
      assumption under loss, duplication, and reordering;
    - with [trust_detector = false] (for heartbeat-style detectors whose
      suspicions can be wrong), a suspicion triggers only requester-side
      reactions — re-quorum around the suspect, pause retransmissions.
      Arbiter-side cleanup (which can break mutual exclusion when applied
      on a false suspicion) waits for hard evidence: the suspect
      reappearing with a larger {!Reliable} incarnation number;
    - when no live quorum can be rebuilt the outstanding request {e parks}
      (withdrawn, reported as an unavailability window via
      [ctx.mark_parked]) and automatically retries on the next recovery,
      trust transition, or restart evidence — e.g. when a partition heals.

    {b Model requirement}: with the trusted (oracle) detector, recovery is
    safe when the failure detection latency exceeds the maximum in-flight
    message delay, so that a release forwarded by a crashing site is
    processed before the crash is acted upon. Use a bounded delay model
    ([Constant]/[Uniform]) and a larger detection latency; EXPERIMENTS.md
    E9 demonstrates both the safe and the violated configuration. *)

type config = {
  base : Delay_optimal.config;
  rebuild : self:int -> avoid:(int -> bool) -> int list option;
      (** Quorum reconstruction avoiding failed sites, e.g.
          {!Dmx_quorum.Tree_quorum.quorum} restricted to live sites. [None]
          when no live quorum exists — the request then parks until one
          reappears. *)
  broadcast_failures : bool;
      (** Re-broadcast a [failure(i)] note on first detection (the paper's
          dissemination); with the simulator's oracle detector this is
          redundant but exercises the paper's message path. *)
  reliability : Reliable.config option;
      (** [Some cfg] wraps every peer message in the {!Reliable} retry/ack
          layer. Required for correct operation under a lossy
          {!Dmx_sim.Network.fault_plan}; [None] preserves the original
          bare-channel behavior (and keeps the protocol usable on runtimes
          without timers). *)
  trust_detector : bool;
      (** [true] (oracle): failure notifications are ground truth; run the
          full Section 6 recovery including arbiter-side lock reclaim.
          [false] (heartbeat): treat notifications as suspicions; only
          requester-side reactions, arbiter cleanup waits for restart
          evidence. *)
}

val config_of_kind :
  ?reliability:Reliable.config ->
  ?trust_detector:bool ->
  Dmx_quorum.Builder.kind ->
  n:int ->
  broadcast:bool ->
  config
(** Convenience: initial request sets and a rebuild function for the given
    construction. Rebuilding is construction-aware for [Tree] (path
    substitution) and [Majority]/[Grid_set]/[Rst] (live-member windows);
    other kinds fall back to retrying the static set without the dead site
    when it still intersects every other quorum. [reliability] defaults to
    [None] (bare channels), [trust_detector] to [true] (oracle). *)

include
  Dmx_sim.Protocol.PROTOCOL
    with type config := config
     and type message = Messages.t

module Internal : sig
  val base_state : state -> Delay_optimal.state

  val known_dead : state -> int list
  (** Sites flagged dead by trusted-detector notifications, ascending. *)

  val suspects : state -> int list
  (** Sites currently suspected (untrusted-detector mode), ascending. *)

  val parked : state -> bool
  (** The outstanding request is parked for lack of a live quorum. *)

  val reliable : state -> Reliable.t option
  (** The reliability layer, when enabled. *)
end
