(** Fault-tolerant delay-optimal mutual exclusion (paper Section 6).

    Wraps {!Delay_optimal} with the failure machinery the paper sketches:
    when a site learns (from the failure detector, or from a [failure(i)]
    broadcast) that a site crashed, it (a) as a requester whose quorum
    contains the dead site: releases the permissions it gathered, runs the
    quorum construction algorithm again avoiding dead sites, and re-issues
    its request; (b) as an arbiter: drops the dead site's queued request
    (re-pointing the pending transfer), voids transfers naming it, and
    reclaims its own permission if the dead site was holding it.

    {b Model requirement}: recovery is safe when the failure detection
    latency exceeds the maximum in-flight message delay, so that a release
    forwarded by a crashing site is processed before the crash is acted
    upon. Use a bounded delay model ([Constant]/[Uniform]) and a larger
    [detection_delay]; EXPERIMENTS.md E9 demonstrates both the safe and
    the violated configuration. *)

type config = {
  base : Delay_optimal.config;
  rebuild : self:int -> avoid:(int -> bool) -> int list option;
      (** Quorum reconstruction avoiding failed sites, e.g.
          {!Dmx_quorum.Tree_quorum.quorum} restricted to live sites. [None]
          when no live quorum exists — the request is then abandoned. *)
  broadcast_failures : bool;
      (** Re-broadcast a [failure(i)] note on first detection (the paper's
          dissemination); with the simulator's oracle detector this is
          redundant but exercises the paper's message path. *)
}

val config_of_kind :
  Dmx_quorum.Builder.kind -> n:int -> broadcast:bool -> config
(** Convenience: initial request sets and a rebuild function for the given
    construction. Rebuilding is construction-aware for [Tree] (path
    substitution) and [Majority]/[Grid_set]/[Rst] (live-member windows);
    other kinds fall back to retrying the static set without the dead site
    when it still intersects every other quorum. *)

include
  Dmx_sim.Protocol.PROTOCOL
    with type config := config
     and type message = Messages.t

module Internal : sig
  val base_state : state -> Delay_optimal.state
  val known_dead : state -> int list
end
