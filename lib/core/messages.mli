(** Control messages of the delay-optimal algorithm (paper Section 3.1).

    The seven paper message types map onto six constructors: an [inquire]
    is always piggybacked with a [transfer] (Section 3.2), so the pair
    travels as one [Transfer] with the [inquire] flag and is counted as one
    message, as in the paper's analysis. [Reply], [Release] and [Yield]
    additionally carry the request timestamp they concern — see DESIGN.md
    §3.8 for why the proxy-forwarding optimization makes that necessary. *)

type t =
  | Request of Dmx_sim.Timestamp.t
      (** request(sn, i): asking for the receiver's permission *)
  | Reply of {
      arbiter : int;
      for_req : Dmx_sim.Timestamp.t;
      next : Dmx_sim.Timestamp.t option;
    }
      (** grants [arbiter]'s permission to the request [for_req]; sent by
          the arbiter itself or forwarded by an exiting CS holder on its
          behalf. [next], when present, is a piggybacked transfer. *)
  | Release of {
      of_req : Dmx_sim.Timestamp.t;
      forwarded_to : Dmx_sim.Timestamp.t option;
    }
      (** release(i, x): the sender exited the CS held for [of_req];
          [Some x] means it already forwarded this arbiter's permission to
          [x]'s site, [None] is the paper's release(i, max) *)
  | Transfer of { target : Dmx_sim.Timestamp.t; inquire : bool }
      (** transfer(target, j) to the current holder: forward the permission
          to [target] on exit; [inquire] piggybacks the preemption probe *)
  | Fail  (** the sending arbiter serves a higher-priority request *)
  | Yield of { of_req : Dmx_sim.Timestamp.t }
      (** the sender returns the receiving arbiter's permission, which it
          held for its request [of_req] *)
  | Failure_note of int
      (** failure(i) broadcast of Section 6 (fault-tolerant variant only) *)
  | Hello
      (** reliability-layer stream announcement: no protocol content, but
          the [Data] envelope around it spreads the sender's incarnation
          number, giving every peer restart evidence after a rejoin *)
  | Data of {
      inc : float;
      dst_inc : float;
      seq : int;
      base : int;
      retx : bool;
      payload : t;
    }
      (** reliability envelope (see {!Reliable}): [payload] is message
          number [seq] of the sender's incarnation [inc]; [dst_inc] is the
          sender's last known incarnation of the destination
          ([neg_infinity] before first contact), letting a restarted
          receiver discard mail addressed to its dead predecessor; [base]
          is the sender's oldest unacknowledged sequence number; [retx]
          marks a retransmission *)
  | Ack of { of_inc : float; upto : int }
      (** cumulative acknowledgement of every [Data] with [seq <= upto] in
          incarnation [of_inc] *)

val kind : t -> string
(** Coarse message class for per-kind accounting; piggybacked combinations
    count once ("inquire+transfer", "reply+transfer"). A first-transmission
    [Data] envelope counts as its payload's kind; retransmissions count as
    "retx" and acknowledgements as "ack". *)

val pp : Format.formatter -> t -> unit
