(** Arbiter request queue: a tiny priority queue of request timestamps,
    highest priority (smallest timestamp) first.

    Queues hold at most one entry per site (a site has at most one
    outstanding request, Section 2) and are short (bounded by the number of
    sites whose quorum contains this arbiter), so a sorted list keeps the
    code obviously correct; removal by site id is needed by the release
    path and the Section 6 failure cleanup. *)

type t

val create : unit -> t
val copy : t -> t
val is_empty : t -> bool
val length : t -> int

val insert : t -> Dmx_sim.Timestamp.t -> unit
(** At most one entry per site, keeping the newest (largest sequence
    number): a re-issued request supersedes the old one, while a stale
    re-enqueue of an already-superseded request is dropped. *)

val head : t -> Dmx_sim.Timestamp.t option
(** Highest-priority entry, not removed. *)

val pop : t -> Dmx_sim.Timestamp.t option
val remove_site : t -> int -> bool
(** Remove the entry of the given site; returns whether one was present. *)

val remove_ts : t -> Dmx_sim.Timestamp.t -> bool
(** Remove exactly this timestamp's entry; a newer request from the same
    site is left alone. *)

val mem_site : t -> int -> bool
val find_site : t -> int -> Dmx_sim.Timestamp.t option
val to_list : t -> Dmx_sim.Timestamp.t list
(** Priority order. *)

val clear : t -> unit
