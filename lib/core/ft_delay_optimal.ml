module Ts = Dmx_sim.Timestamp
module Proto = Dmx_sim.Protocol
module Internal_do = Delay_optimal.Internal

type config = {
  base : Delay_optimal.config;
  rebuild : self:int -> avoid:(int -> bool) -> int list option;
  broadcast_failures : bool;
  reliability : Reliable.config option;
  trust_detector : bool;
}

type message = Messages.t

type state = {
  base : Delay_optimal.state;
  cfg : config;
  dead : bool array;  (* trusted-detector verdicts (oracle) *)
  suspected : bool array;  (* unreliable-detector hints *)
  rel : Reliable.t option;
  rctx : message Proto.ctx;  (* ctx with sends routed through [rel] *)
  want_cs : bool ref;  (* application request accepted, CS not yet entered *)
  mutable parked : bool;  (* request withdrawn: no live quorum exists *)
}

let name = "ft-delay-optimal"
let describe (c : config) = Delay_optimal.describe c.base
let message_kind = Messages.kind
let pp_message = Messages.pp

(* The base protocol keeps sending through the plain [ctx]; this wrapper
   reroutes its peer sends through the reliability layer (self-sends never
   touch the network) and intercepts CS entry to maintain [want_cs]. *)
let make_rctx (ctx : message Proto.ctx) rel want_cs =
  {
    ctx with
    Proto.send =
      (fun ~dst msg ->
        match rel with
        | Some r when dst <> ctx.Proto.self -> Reliable.send r ~dst msg
        | _ -> ctx.Proto.send ~dst msg);
    enter_cs =
      (fun () ->
        want_cs := false;
        ctx.Proto.enter_cs ());
  }

let init (ctx : message Proto.ctx) (c : config) =
  let rel =
    Option.map
      (fun rc ->
        Reliable.create rc ~n:ctx.Proto.n ~self:ctx.Proto.self
          ~io:(Reliable.io_of_ctx ctx))
      c.reliability
  in
  let want_cs = ref false in
  let rctx = make_rctx ctx rel want_cs in
  (* Announce this incarnation to everyone. After a restart the Hello's
     envelope is the hard evidence arbiters outside the new quorum need to
     purge the site's pre-crash lock tenure (see on_restart_evidence). *)
  Option.iter
    (fun r ->
      for dst = 0 to ctx.Proto.n - 1 do
        if dst <> ctx.Proto.self then Reliable.send r ~dst Messages.Hello
      done)
    rel;
  {
    base = Delay_optimal.init rctx c.base;
    cfg = c;
    dead = Array.make ctx.Proto.n false;
    suspected = Array.make ctx.Proto.n false;
    rel;
    rctx;
    want_cs;
    parked = false;
  }

let unavailable st s = st.dead.(s) || st.suspected.(s)

let rebuild_avoiding_unavailable st ~self ~avoid =
  st.cfg.rebuild ~self ~avoid:(fun s -> unavailable st s || avoid s)

let park (ctx : message Proto.ctx) st =
  if not st.parked then begin
    st.parked <- true;
    ctx.Proto.mark_parked true;
    ctx.Proto.trace_note "ft: no live quorum; request parked until heal"
  end

(* A parked request retries the moment some rebuild succeeds — called on
   every recovery/trust transition and on restart evidence. *)
let try_unpark (ctx : message Proto.ctx) st =
  if st.parked then begin
    match
      rebuild_avoiding_unavailable st ~self:ctx.Proto.self
        ~avoid:(fun _ -> false)
    with
    | Some q ->
      st.parked <- false;
      ctx.Proto.mark_parked false;
      ctx.Proto.trace_note "ft: live quorum restored; retrying parked request";
      Internal_do.set_quorum st.base q;
      Delay_optimal.request_cs st.rctx st.base
    | None -> ()
  end

(* If a failure-triggered rebuild abandoned the outstanding request for
   lack of a live quorum, degrade gracefully instead of losing it. *)
let park_if_abandoned (ctx : message Proto.ctx) st =
  if
    !(st.want_cs)
    && Internal_do.request st.base = None
    && not (Internal_do.in_cs st.base)
  then park ctx st

(* Trusted-detector path: the oracle's verdicts are ground truth, so the
   full Section 6 recovery runs — including the arbiter-side cleanup that
   reclaims the dead site's lock tenure. *)
let note_failure (ctx : message Proto.ctx) st site =
  if site <> ctx.Proto.self && not st.dead.(site) then begin
    st.dead.(site) <- true;
    Option.iter (fun r -> Reliable.suspend r site) st.rel;
    if st.cfg.broadcast_failures then
      for other = 0 to ctx.Proto.n - 1 do
        if other <> ctx.Proto.self && other <> site then
          st.rctx.Proto.send ~dst:other (Messages.Failure_note site)
      done;
    Internal_do.handle_site_failure st.rctx st.base ~failed_site:site
      ~rebuild:(rebuild_avoiding_unavailable st);
    park_if_abandoned ctx st
  end

(* Unreliable-detector path: a suspicion may be false (the site is merely
   partitioned away, or its heartbeats were lost), so only requester-side
   actions run. Reclaiming an arbiter lock or dropping a queued request on
   a false suspicion could admit two sites to the CS — that cleanup waits
   for hard evidence (a larger incarnation number, see on_message). *)
let note_suspicion (ctx : message Proto.ctx) st site =
  if site <> ctx.Proto.self && not st.suspected.(site) then begin
    st.suspected.(site) <- true;
    Option.iter (fun r -> Reliable.suspend r site) st.rel;
    if
      Internal_do.request st.base <> None
      && (not (Internal_do.in_cs st.base))
      && List.mem site (Internal_do.quorum st.base)
    then begin
      match
        rebuild_avoiding_unavailable st ~self:ctx.Proto.self
          ~avoid:(fun _ -> false)
      with
      | Some q -> Internal_do.abandon_and_rerequest st.rctx st.base q
      | None ->
        Internal_do.abandon_request st.rctx st.base;
        park ctx st
    end
  end

let request_cs (ctx : message Proto.ctx) st =
  st.want_cs := true;
  (* The paper rebuilds on failure detection; a site that was idle at
     detection time refreshes its quorum lazily, here. *)
  let quorum = Internal_do.quorum st.base in
  if List.exists (unavailable st) quorum then begin
    match
      rebuild_avoiding_unavailable st ~self:ctx.Proto.self
        ~avoid:(fun _ -> false)
    with
    | Some q ->
      Internal_do.set_quorum st.base q;
      Delay_optimal.request_cs st.rctx st.base
    | None -> park ctx st
  end
  else Delay_optimal.request_cs st.rctx st.base

let release_cs (_ctx : message Proto.ctx) st =
  Delay_optimal.release_cs st.rctx st.base

let on_failure ctx st site =
  if st.cfg.trust_detector then note_failure ctx st site
  else note_suspicion ctx st site

(* Fail-stop recovery (Section 6's "a recovery scheme increases the failure
   resiliency"): the rejoined site restarts with fresh state, so survivors
   simply forget it was dead — its requests are accepted again and future
   quorum rebuilds may route through it. Because all rebuilt quorums come
   from the same coterie family, quorums chosen while the site was dead
   still intersect quorums chosen through it afterwards, so no
   stop-the-world resynchronization is needed. Under the heartbeat
   detector this doubles as the trust transition that revokes a (possibly
   false) suspicion. *)
let on_recovery (ctx : message Proto.ctx) st site =
  if site <> ctx.Proto.self then begin
    if st.dead.(site) then begin
      st.dead.(site) <- false;
      Internal_do.mark_alive st.base site
    end;
    st.suspected.(site) <- false;
    Option.iter (fun r -> Reliable.resume r site) st.rel;
    try_unpark ctx st
  end

let dispatch_payload (ctx : message Proto.ctx) st ~src (msg : message) =
  match msg with
  | Messages.Failure_note site -> on_failure ctx st site
  | msg -> Delay_optimal.on_message st.rctx st.base ~src msg

(* A peer reappearing with a larger incarnation number provably lost its
   volatile state: run the arbiter-side Section 6 cleanup (safe even under
   an untrusted detector — this is evidence, not a hint), void any
   permission we hold from its previous life by restarting our own
   request round, and treat the contact as a liveness proof. *)
let on_restart_evidence (ctx : message Proto.ctx) st src =
  if st.dead.(src) then begin
    st.dead.(src) <- false;
    Internal_do.mark_alive st.base src
  end;
  st.suspected.(src) <- false;
  Option.iter (fun r -> Reliable.resume r src) st.rel;
  Internal_do.purge_stale_tenure st.rctx st.base ~site:src;
  if
    Internal_do.request st.base <> None
    && (not (Internal_do.in_cs st.base))
    && List.mem src (Internal_do.quorum st.base)
  then
    Internal_do.abandon_and_rerequest st.rctx st.base
      (Internal_do.quorum st.base);
  try_unpark ctx st

let on_message (ctx : message Proto.ctx) st ~src (msg : message) =
  match (msg, st.rel) with
  | (Messages.Data _ | Messages.Ack _), Some r ->
    let { Reliable.restarted; deliveries } = Reliable.on_message r ~src msg in
    if restarted then on_restart_evidence ctx st src;
    List.iter (fun m -> dispatch_payload ctx st ~src m) deliveries
  | (Messages.Data _ | Messages.Ack _), None ->
    (* reliability disabled here: a stray envelope is dropped *)
    ()
  | msg, _ -> dispatch_payload ctx st ~src msg

let on_timer _ctx st tag =
  match st.rel with
  | Some r -> ignore (Reliable.on_timer r tag : bool)
  | None -> ()

let config_of_kind ?reliability ?(trust_detector = true) kind ~n ~broadcast =
  let req_sets = Dmx_quorum.Builder.req_sets kind ~n in
  let rebuild =
    match (kind : Dmx_quorum.Builder.kind) with
    | Tree ->
      let tree = Dmx_quorum.Tree_quorum.create ~n in
      fun ~self:_ ~avoid ->
        Dmx_quorum.Tree_quorum.quorum tree ~available:(fun s -> not (avoid s))
    | Majority ->
      let m = Dmx_quorum.Majority.quorum_size ~n in
      fun ~self ~avoid ->
        (* Any m live sites form a majority; start the window at self for
           the same load spreading as the static assignment. *)
        let live =
          List.filter
            (fun s -> not (avoid s))
            (List.init n (fun k -> (self + k) mod n))
        in
        if List.length live >= m then
          Some
            (Dmx_quorum.Coterie.normalize_quorum
               (List.filteri (fun i _ -> i < m) live))
        else None
    | Grid | Fpp | Hqc | Grid_set _ | Rst _ | Star | All ->
      fun ~self:_ ~avoid ->
        (* Generic fallback: any fully-live quorum of the coterie serves any
           requester (quorums need not contain their user). *)
        Array.find_opt
          (fun q -> List.for_all (fun s -> not (avoid s)) q)
          req_sets
  in
  {
    base = Delay_optimal.config req_sets;
    rebuild;
    broadcast_failures = broadcast;
    reliability;
    trust_detector;
  }

module Internal = struct
  let base_state st = st.base

  let known_dead st =
    List.filter (fun s -> st.dead.(s)) (List.init (Array.length st.dead) Fun.id)

  let suspects st =
    List.filter
      (fun s -> st.suspected.(s))
      (List.init (Array.length st.suspected) Fun.id)

  let parked st = st.parked
  let reliable st = st.rel
end
