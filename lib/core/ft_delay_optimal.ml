module Ts = Dmx_sim.Timestamp
module Proto = Dmx_sim.Protocol

type config = {
  base : Delay_optimal.config;
  rebuild : self:int -> avoid:(int -> bool) -> int list option;
  broadcast_failures : bool;
}

type message = Messages.t

type state = {
  base : Delay_optimal.state;
  cfg : config;
  dead : bool array;
}

let name = "ft-delay-optimal"
let describe (c : config) = Delay_optimal.describe c.base
let message_kind = Messages.kind
let pp_message = Messages.pp

let init (ctx : message Proto.ctx) (c : config) =
  { base = Delay_optimal.init ctx c.base; cfg = c; dead = Array.make ctx.n false }

let rebuild_avoiding_dead st ~self ~avoid =
  st.cfg.rebuild ~self ~avoid:(fun s -> st.dead.(s) || avoid s)

let note_failure (ctx : message Proto.ctx) st site =
  if site <> ctx.self && not st.dead.(site) then begin
    st.dead.(site) <- true;
    if st.cfg.broadcast_failures then
      for other = 0 to ctx.n - 1 do
        if other <> ctx.self && other <> site then
          ctx.send ~dst:other (Messages.Failure_note site)
      done;
    Delay_optimal.Internal.handle_site_failure ctx st.base ~failed_site:site
      ~rebuild:(rebuild_avoiding_dead st)
  end

let request_cs (ctx : message Proto.ctx) st =
  (* The paper rebuilds on failure detection; a site that was idle at
     detection time refreshes its quorum lazily, here. *)
  let quorum = Delay_optimal.Internal.quorum st.base in
  if List.exists (fun s -> st.dead.(s)) quorum then begin
    match rebuild_avoiding_dead st ~self:ctx.self ~avoid:(fun _ -> false) with
    | Some q -> Delay_optimal.Internal.set_quorum st.base q
    | None -> ctx.trace_note "ft: no live quorum available; request will hang"
  end;
  Delay_optimal.request_cs ctx st.base

let release_cs (ctx : message Proto.ctx) st = Delay_optimal.release_cs ctx st.base

let on_message (ctx : message Proto.ctx) st ~src (msg : message) =
  match msg with
  | Messages.Failure_note site -> note_failure ctx st site
  | _ -> Delay_optimal.on_message ctx st.base ~src msg

let on_timer _ctx _st _tag = ()
let on_failure ctx st site = note_failure ctx st site

(* Fail-stop recovery (Section 6's "a recovery scheme increases the failure
   resiliency"): the rejoined site restarts with fresh state, so survivors
   simply forget it was dead — its requests are accepted again and future
   quorum rebuilds may route through it. Because all rebuilt quorums come
   from the same coterie family, quorums chosen while the site was dead
   still intersect quorums chosen through it afterwards, so no
   stop-the-world resynchronization is needed. *)
let on_recovery (ctx : message Proto.ctx) st site =
  if site <> ctx.self && st.dead.(site) then begin
    st.dead.(site) <- false;
    Delay_optimal.Internal.mark_alive st.base site
  end

let config_of_kind kind ~n ~broadcast =
  let req_sets = Dmx_quorum.Builder.req_sets kind ~n in
  let rebuild =
    match (kind : Dmx_quorum.Builder.kind) with
    | Tree ->
      let tree = Dmx_quorum.Tree_quorum.create ~n in
      fun ~self:_ ~avoid ->
        Dmx_quorum.Tree_quorum.quorum tree ~available:(fun s -> not (avoid s))
    | Majority ->
      let m = Dmx_quorum.Majority.quorum_size ~n in
      fun ~self ~avoid ->
        (* Any m live sites form a majority; start the window at self for
           the same load spreading as the static assignment. *)
        let live =
          List.filter
            (fun s -> not (avoid s))
            (List.init n (fun k -> (self + k) mod n))
        in
        if List.length live >= m then
          Some
            (Dmx_quorum.Coterie.normalize_quorum
               (List.filteri (fun i _ -> i < m) live))
        else None
    | Grid | Fpp | Hqc | Grid_set _ | Rst _ | Star | All ->
      fun ~self:_ ~avoid ->
        (* Generic fallback: any fully-live quorum of the coterie serves any
           requester (quorums need not contain their user). *)
        Array.find_opt
          (fun q -> List.for_all (fun s -> not (avoid s)) q)
          req_sets
  in
  { base = Delay_optimal.config req_sets; rebuild; broadcast_failures = broadcast }

module Internal = struct
  let base_state st = st.base

  let known_dead st =
    List.filter (fun s -> st.dead.(s)) (List.init (Array.length st.dead) Fun.id)
end
