(** Lease state machine: one shard of the lock service, on one node.

    The lock service ({!Dmx_service}) arbitrates each shard with an
    unmodified mutual-exclusion protocol whose participants are the
    {e service nodes}, not the clients. This machine is the adapter
    between the two worlds. It queues client acquires, asks the protocol
    for the shard's critical section exactly when the queue becomes
    non-empty, and — while the protocol holds the CS — hands out one
    time-bounded {e lease} at a time. A client that crashes or is
    partitioned away simply stops renewing; the lease expires and the
    shard moves on, so no client failure can wedge a shard.

    The machine is deliberately inert: it never touches the protocol, a
    socket, or a trace buffer. Every consequence of an event comes back
    as an {!action} list for the host to perform, and all clock access
    goes through the {!io} capabilities captured at {!create} — the same
    pattern as {!Reliable.io}, and for the same reason: the simulator
    passes engine virtual time, the live node daemon passes the wall
    clock, and the machine cannot tell the difference.

    Renewal is sliding-window: each {!renew} pushes the deadline to
    [now + duration]. Expiry uses a single timer chain per hold: the
    timer armed at grant time fires at the {e original} deadline,
    observes any pushed-out one, and re-arms — at most one timer is in
    flight per hold, regardless of renewal rate. *)

type io = {
  now : unit -> float;  (** time source: virtual time or the wall clock *)
  set_timer : delay:float -> unit;
      (** one-shot timer in the same time base as [now]; the host routes
          expiry back through {!on_timer}. The machine arms at most one
          timer per hold chain. *)
}

type config = {
  duration : float;  (** lease length; a renewal restarts this window *)
  max_batch : int;
      (** holds served within a single protocol CS tenure before the node
          releases and re-requests, so one node's local queue cannot
          monopolize the shard against other nodes' waiting clients *)
}

val default : config
(** duration = 2 s, max_batch = 8. *)

val timer_tag : int
(** The timer tag a host should use when routing this machine's timers
    through a shared [set_timer ~tag] facility — far outside the range
    any protocol (or {!Reliable}, which claims [0 .. 2n-1]) uses. *)

(** What the host must do, in order. [Grant]/[Expire] go to the named
    client session; [Request_cs]/[Release_cs] go to the shard's protocol
    instance (bracketed by the host's [Request]/[Exit_cs] trace entries,
    so the unmodified oracle checks the merged shard trace). *)
type action =
  | Grant of { session : int; req : int; deadline : float }
      (** the lease: the client holds the lock until [deadline] unless it
          renews; doubles as the renewal acknowledgement and as the
          re-ack for an idempotent duplicate acquire *)
  | Expire of { session : int; req : int }
      (** the hold ended without a release: deadline passed, or a renewal
          arrived too late *)
  | Request_cs  (** ask the shard's protocol instance for the CS *)
  | Release_cs  (** give the shard's CS back to the protocol *)

type t

val create : config -> io:io -> t
(** @raise Invalid_argument on a non-positive duration or batch. *)

val acquire : t -> session:int -> req:int -> action list
(** A client wants the shard's lock. [req] is the client's request id,
    echoed verbatim in the eventual [Grant]/[Expire] so the client can
    match responses across retries and re-homes. Duplicates are
    idempotent (datagram transports retry): a re-acquire of the current
    hold is re-acked with the unchanged [Grant], a re-acquire of a queued
    request says nothing. *)

val release : t -> session:int -> req:int -> action list
(** The client is done. A release that does not match the current hold is
    either a queued client withdrawing (the entry is dropped) or a stale
    release that lost the race with expiry (ignored — the client already
    got its [Expire]); neither can disturb a later hold. *)

val renew : t -> session:int -> req:int -> action list
(** Slide the current hold's deadline out to [now + duration]; answered
    with a fresh [Grant]. A renewal for anything but the current hold
    gets [Expire] — the client learns it renewed too late. *)

val granted : t -> action list
(** The shard's protocol instance entered the CS (the host observed
    [enter_cs]): grant the head of the queue. *)

val void_session : t -> session:int -> action list
(** Hard evidence the session's client lost its state (restart with a
    larger incarnation, or the session's connection owner died): drop its
    queued acquires and free its hold immediately — a dead client's lease
    must not run out its clock when we know it is dead. *)

val on_timer : t -> action list
(** The lease timer fired: expire the hold if its (possibly renewed)
    deadline has truly passed, otherwise re-arm for the remainder. *)

(** {2 Introspection} *)

val holder : t -> (int * int) option
(** Current [(session, req)] hold, if any. *)

val queue_length : t -> int
val in_cs : t -> bool
(** Is the node inside the shard's protocol-level CS tenure? *)

val requested : t -> bool
(** Is a protocol request outstanding? *)

(** {2 Counters} — for the swarm report and the [Metrics] frame. *)

type stats = {
  grants : int;  (** leases handed out (renewal re-grants excluded) *)
  renewals : int;
  expiries : int;  (** holds ended by the clock, not by a release *)
  voided : int;  (** queue entries and holds dropped by {!void_session} *)
  tenures : int;  (** protocol CS tenures entered *)
}

val stats : t -> stats

val stats_alist : t -> (string * int) list
(** Nonzero counters as [("lease.grants", v); ...] pairs. *)

val attach : ?labels:(string * string) list -> t -> Dmx_obs.Registry.t -> unit
(** Bind the machine's counter cells into a metrics registry under the
    [lease.*] names, plus a [lease.queue_depth] gauge probe (polled at
    snapshot time). [labels] distinguishes shards: [("shard", "3")]. *)
