let names = [ "tcp"; "udp" ]

let create name cfg =
  match name with
  | "tcp" ->
    Ok (Transport_sig.handle (module Transport) (Transport.create cfg))
  | "udp" -> Ok (Transport_sig.handle (module Udp) (Udp.create cfg))
  | other ->
    Error
      (Printf.sprintf "unknown transport %S (expected %s)" other
         (String.concat " or " names))

let create_exn name cfg =
  match create name cfg with
  | Ok h -> h
  | Error e -> invalid_arg e
