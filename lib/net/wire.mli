(** Versioned binary wire codec for the networked runtime.

    Everything that crosses a socket is a {e frame}: a 4-byte big-endian
    length prefix followed by a payload whose first byte is the codec
    {!version} and whose second byte is the frame tag. Protocol messages
    travel opaquely inside {!frame.Proto} (encoded by a per-protocol codec
    such as {!encode_message} for {!Dmx_core.Messages.t}), so the framing
    layer works for any [Dmx_sim.Protocol.PROTOCOL]. Trace entries cross
    the wire in the {e existing} {!Dmx_sim.Trace} representation, which is
    what lets the cluster supervisor merge per-site logs and run the same
    {!Dmx_sim.Oracle} on a real execution as on a simulated one.

    Version negotiation is deliberately minimal (see docs/wire.md): the
    version byte leads every payload, {!decode} rejects any version other
    than its own, and a transport that receives such a frame closes the
    connection — a mixed-version cluster fails fast instead of
    misinterpreting bytes. Decoding is total: any truncated, trailing or
    corrupt input yields [Error], never an exception or a garbage value. *)

val version : int
(** Current codec version (1). *)

val max_frame : int
(** Upper bound on an accepted payload length (16 MiB); a length prefix
    above it is treated as corruption, not an allocation request. *)

(** One wire frame. [site] fields identify the {e sender}. *)
type frame =
  | Hello of { site : int; inc : float }
      (** first frame on every connection: who is speaking, and its
          incarnation number (wall-clock init time) *)
  | Heartbeat of { site : int; time : float }
      (** liveness beacon, also the failure-detector input *)
  | Proto of { src : int; dst : int; payload : string }
      (** a protocol message, encoded by the protocol's own codec *)
  | Workload of { rounds : int; cs_duration : float; since : float }
      (** supervisor [->] node: run this many CS entries, holding the CS
          this long (seconds). [since] is the supervisor's wall-clock
          workload start — the shared epoch that anchors chaos partition
          and delay-spike windows on every node, including restarts. *)
  | Trace_batch of { site : int; entries : Dmx_sim.Trace.entry list }
      (** node [->] supervisor: a chunk of the site's event log *)
  | Metrics of {
      site : int;
      executions : int;
      sent : int;
      received : int;
      kinds : (string * int) list;  (** per-kind network send counts *)
      reliable : (string * int) list;
          (** live reliability/transport/chaos counters
              (["reliable.retransmits"], ["transport.sent"],
              ["chaos.lost"], ...); empty when none apply *)
    }  (** node [->] supervisor: the site finished its workload *)
  | Shutdown  (** supervisor [->] node: flush and exit *)
  | Open_session of { session : int; inc : float }
      (** client [->] node: bind (or re-bind, after a re-home) the
          session to this connection. [inc] is the session's incarnation;
          a larger one voids any state left by the smaller (the stale
          client demonstrably restarted — see {!Dmx_core.Lease}) *)
  | Acquire of { session : int; lock : string; req : int }
      (** client [->] node: queue for [lock]'s shard. [req] is echoed in
          the response, so retries over datagrams are idempotent *)
  | Release_lock of { session : int; lock : string; req : int }
      (** client [->] node: give the lease back (or withdraw a queued
          acquire) *)
  | Renew of { session : int; lock : string; req : int }
      (** client [->] node: slide the lease deadline out; answered with a
          fresh {!frame.Grant}, or {!frame.Expire} if the lease is gone *)
  | Grant of { session : int; lock : string; req : int; deadline : float }
      (** node [->] client: the lease — hold [lock] until [deadline]
          (node clock) unless renewed *)
  | Deny of { session : int; lock : string; req : int; reason : string }
      (** node [->] client: the request cannot even be queued (unknown
          session, superseded incarnation, no live quorum) *)
  | Expire of { session : int; lock : string; req : int }
      (** node [->] client: the hold ended without a release — the
          deadline passed, or a renewal arrived too late *)
  | Sproto of { shard : int; src : int; dst : int; payload : string }
      (** node [<->] node: a protocol message of one shard's coterie;
          {!frame.Proto} with a shard id, demultiplexed to that shard's
          protocol instance *)
  | Strace of { shard : int; site : int; entries : Dmx_sim.Trace.entry list }
      (** node [->] supervisor: {!frame.Trace_batch} with a shard id, so
          the supervisor can run the unmodified oracle per shard *)
  | Metrics_v2 of { site : int; snapshot : Dmx_obs.Snapshot.t }
      (** node [->] supervisor: the node's full metrics-registry snapshot
          (every counter, gauge and histogram the daemon serves on its
          [--metrics-port] scrape endpoint). Supersedes the hard-coded
          counter struct of {!frame.Metrics} — supervisors aggregate these
          with [Dmx_obs.Snapshot.merge] to get fleet totals. The decoder
          re-canonicalizes series order, so snapshot equality is
          wire-transport independent. *)

val encode : frame -> string
(** Payload bytes (version byte included, length prefix excluded). *)

val decode : string -> (frame, string) result
(** Inverse of {!encode}; [Error] explains the rejection (bad version,
    bad tag, truncation, trailing bytes). *)

(** {2 Protocol message codec for {!Dmx_core.Messages.t}} *)

val encode_message : Dmx_core.Messages.t -> string
(** Binary encoding of every constructor, including the recursive
    reliability envelope [Data]. *)

val decode_message : string -> (Dmx_core.Messages.t, string) result
(** Inverse of {!encode_message}; total, like {!decode}. *)

(** {2 Framed IO on file descriptors} *)

val write_frame : Unix.file_descr -> frame -> unit
(** Length-prefix + payload, written fully (loops on short writes).
    @raise Unix.Unix_error as [Unix.write] does — callers treat any
    failure as a dead connection. *)

val read_frame : Unix.file_descr -> (frame, string) result
(** Blocking read of exactly one frame. [Error] on EOF, a corrupt length
    prefix, or a payload {!decode} rejects. *)

val write_frame_count : Unix.file_descr -> frame -> int
(** {!write_frame}, returning the bytes put on the wire (length prefix
    included) — the transports' byte counters read this. *)

val read_frame_count : Unix.file_descr -> (frame * int, string) result
(** {!read_frame}, with the bytes consumed from the wire. *)
