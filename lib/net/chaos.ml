(* Deterministic seeded fault shim over any transport handle.

   Mirrors [Dmx_sim.Network]'s fault model — per-link loss, duplication,
   reorder (bounded holdback), delay-spike windows, partition schedules —
   but against real processes. The one divergence: the sim multiplies a
   sampled delay by a spike factor; a real transport has no sampled delay
   to scale, so a spike here holds frames for [extra] wall-clock seconds.

   Determinism: the fate of the k-th frame on directed link (src, dst) is
   a pure splitmix64 hash of (seed, salt, src, dst, k) — independent of
   wall-clock time and frame content — so two runs with the same seed
   make identical loss/duplication/reorder decisions even though real
   scheduling differs. Partition and spike windows are wall-clock
   intervals anchored at the cluster-wide workload epoch ([set_zero],
   distributed in the Workload frame), the closest a live run gets.

   Links touching the supervisor (either endpoint >= n) are exempt:
   chaos is for the protocol, not for the control plane that collects
   the evidence. *)

type partition = { from_t : float; until : float; groups : int list list }

type plan = {
  seed : int;
  n : int;
  loss : float;
  duplication : float;
  reorder : float;
  reorder_hold : int;
  delay_spikes : (float * float * float) list;
  partitions : partition list;
}

let no_faults =
  {
    seed = 0;
    n = 0;
    loss = 0.0;
    duplication = 0.0;
    reorder = 0.0;
    reorder_hold = 3;
    delay_spikes = [];
    partitions = [];
  }

let is_trivial p =
  p.loss = 0.0 && p.duplication = 0.0 && p.reorder = 0.0
  && p.delay_spikes = [] && p.partitions = []

let validate p =
  let prob what v =
    if not (v >= 0.0 && v < 1.0) then
      invalid_arg (Printf.sprintf "chaos: %s %g outside [0, 1)" what v)
  in
  prob "loss" p.loss;
  prob "duplication" p.duplication;
  prob "reorder" p.reorder;
  if p.reorder_hold < 1 then invalid_arg "chaos: reorder_hold < 1";
  List.iter
    (fun (f, u, extra) ->
      if u <= f then invalid_arg "chaos: empty delay-spike window";
      if extra <= 0.0 then invalid_arg "chaos: non-positive spike delay")
    p.delay_spikes;
  List.iter
    (fun { from_t; until; groups } ->
      if until <= from_t then invalid_arg "chaos: empty partition window";
      let seen = Hashtbl.create 8 in
      List.iter
        (List.iter (fun s ->
             if s < 0 || (p.n > 0 && s >= p.n) then
               invalid_arg (Printf.sprintf "chaos: partition site %d out of range" s);
             if Hashtbl.mem seen s then
               invalid_arg (Printf.sprintf "chaos: site %d in two partition groups" s);
             Hashtbl.replace seen s ()))
        groups)
    p.partitions

(* ---- pure per-frame fault decisions ---- *)

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let fold h v =
  mix64 (Int64.logxor h (Int64.mul (Int64.of_int v) 0x9e3779b97f4a7c15L))

(* 53 uniform bits in [0, 1) *)
let uniform h =
  Int64.to_float (Int64.logand h 0x1F_FFFF_FFFF_FFFFL) /. 9007199254740992.0

let draw plan ~salt ~src ~dst k =
  let h = mix64 (Int64.of_int (plan.seed + 0x5851f42d)) in
  let h = fold h salt in
  let h = fold h src in
  let h = fold h dst in
  let h = fold h k in
  uniform h

type decision = { lose : bool; duplicate : bool; reorder : bool }

let decision plan ~src ~dst k =
  {
    lose = draw plan ~salt:1 ~src ~dst k < plan.loss;
    duplicate = draw plan ~salt:2 ~src ~dst k < plan.duplication;
    reorder = draw plan ~salt:3 ~src ~dst k < plan.reorder;
  }

(* ---- time windows ---- *)

let group_of groups site =
  let rec go i = function
    | [] -> 0 (* implicit rest-group *)
    | g :: rest -> if List.mem site g then i else go (i + 1) rest
  in
  go 1 groups

let partitioned plan ~at ~src ~dst =
  List.exists
    (fun { from_t; until; groups } ->
      at >= from_t && at < until && group_of groups src <> group_of groups dst)
    plan.partitions

let spike_extra plan ~at =
  List.fold_left
    (fun acc (f, u, extra) -> if at >= f && at < u then acc +. extra else acc)
    0.0 plan.delay_spikes

(* ---- the shim ---- *)

type held = {
  h_dst : int;
  h_frame : Wire.frame;
  release_k : int;  (* flush when the link's send counter reaches this *)
  deadline : float;  (* ... or when the clock does, on an idle link *)
}

type t = {
  plan : plan;
  self : int;
  peers : int list;
  inner : Transport_sig.handle;
  lock : Mutex.t;
  counters : (int, int) Hashtbl.t;  (* dst -> frames offered on that link *)
  mutable zero : float option;  (* wall-clock anchor of window time 0 *)
  mutable delayed : (float * int * Wire.frame) list;  (* due, dst, frame *)
  mutable held : held list;
  lost : int Atomic.t;
  duplicated : int Atomic.t;
  reordered : int Atomic.t;
  delayed_n : int Atomic.t;
  dropped_partition : int Atomic.t;
}

let create plan ~self ~peers ~inner =
  validate plan;
  {
    plan;
    self;
    peers;
    inner;
    lock = Mutex.create ();
    counters = Hashtbl.create 8;
    zero = None;
    delayed = [];
    held = [];
    lost = Atomic.make 0;
    duplicated = Atomic.make 0;
    reordered = Atomic.make 0;
    delayed_n = Atomic.make 0;
    dropped_partition = Atomic.make 0;
  }

let set_zero t epoch =
  Mutex.lock t.lock;
  t.zero <- Some epoch;
  Mutex.unlock t.lock

(* window-relative time; negative (windows inactive) until the epoch is
   known *)
let rel_now t now = match t.zero with Some z -> now -. z | None -> -1.0

let exempt t dst = t.plan.n > 0 && (dst >= t.plan.n || t.self >= t.plan.n)

(* Flush every delayed frame that is due and every held frame whose link
   counter or deadline has passed. Called under [t.lock]. *)
let flush_due_locked t now =
  let due, still =
    List.partition (fun (d, _, _) -> now >= d) t.delayed
  in
  t.delayed <- still;
  let ready, kept =
    List.partition
      (fun h ->
        let k = try Hashtbl.find t.counters h.h_dst with Not_found -> 0 in
        k >= h.release_k || now >= h.deadline)
      t.held
  in
  t.held <- kept;
  List.iter (fun (_, dst, f) -> t.inner.send ~dst f) due;
  List.iter (fun h -> t.inner.send ~dst:h.h_dst h.h_frame) ready

let send_one_locked t now dst frame =
  if exempt t dst then t.inner.send ~dst frame
  else begin
    let k = try Hashtbl.find t.counters dst with Not_found -> 0 in
    Hashtbl.replace t.counters dst (k + 1);
    let at = rel_now t now in
    if partitioned t.plan ~at ~src:t.self ~dst then
      Atomic.incr t.dropped_partition
    else begin
      let d = decision t.plan ~src:t.self ~dst k in
      if d.lose then Atomic.incr t.lost
      else begin
        let extra = spike_extra t.plan ~at in
        let emit f =
          if extra > 0.0 then begin
            Atomic.incr t.delayed_n;
            t.delayed <- t.delayed @ [ (now +. extra, dst, f) ]
          end
          else t.inner.send ~dst f
        in
        if d.reorder then begin
          Atomic.incr t.reordered;
          t.held <-
            t.held
            @ [
                {
                  h_dst = dst;
                  h_frame = frame;
                  release_k = k + 1 + t.plan.reorder_hold;
                  deadline = now +. 0.25;
                };
              ]
        end
        else emit frame;
        if d.duplicate then begin
          Atomic.incr t.duplicated;
          emit frame
        end
      end
    end
  end

let send t ~dst frame =
  let now = Unix.gettimeofday () in
  Mutex.lock t.lock;
  flush_due_locked t now;
  send_one_locked t now dst frame;
  Mutex.unlock t.lock

let poll t =
  let now = Unix.gettimeofday () in
  Mutex.lock t.lock;
  flush_due_locked t now;
  Mutex.unlock t.lock;
  t.inner.poll ()

let stats_alist t =
  List.filter
    (fun (_, v) -> v > 0)
    [
      ("chaos.lost", Atomic.get t.lost);
      ("chaos.duplicated", Atomic.get t.duplicated);
      ("chaos.reordered", Atomic.get t.reordered);
      ("chaos.delayed", Atomic.get t.delayed_n);
      ("chaos.partition_dropped", Atomic.get t.dropped_partition);
    ]

let register_obs ?labels reg t =
  let p name a = Dmx_obs.Registry.probe ?labels reg name (fun () -> Atomic.get a) in
  p "chaos.lost" t.lost;
  p "chaos.duplicated" t.duplicated;
  p "chaos.reordered" t.reordered;
  p "chaos.delayed" t.delayed_n;
  p "chaos.partition_dropped" t.dropped_partition

(* per-link decisions require per-destination sends, so broadcast fans
   out through the shim rather than the inner broadcast *)
let broadcast t frame =
  let now = Unix.gettimeofday () in
  Mutex.lock t.lock;
  flush_due_locked t now;
  List.iter (fun dst -> send_one_locked t now dst frame) t.peers;
  Mutex.unlock t.lock

let handle t =
  {
    Transport_sig.send = (fun ~dst frame -> send t ~dst frame);
    broadcast = (fun frame -> broadcast t frame);
    poll = (fun () -> poll t);
    stats = (fun () -> t.inner.stats ());
    close = (fun () -> t.inner.close ());
  }

(* ---- compact plan (de)serialization ----

   Travels inside the single-line DMX_NODE_SPEC environment trampoline,
   so: no spaces, no '='. Fields are ';'-separated; floats are hex
   (lossless); window bounds use '~' because hex floats contain '-'.

     loss:0x1.9...p-3;dup:0x1p-5;reorder:0;hold:3;seed:42;n:5;
     spike:0x1p-1~0x1.8p0~0x1p-2;part:0,1|2,3,4@0x1p0~0x1p1 *)

let plan_to_string p =
  let b = Buffer.create 64 in
  let sep () = if Buffer.length b > 0 then Buffer.add_char b ';' in
  let f fmt = Printf.ksprintf (fun s -> sep (); Buffer.add_string b s) fmt in
  f "seed:%d" p.seed;
  f "n:%d" p.n;
  f "hold:%d" p.reorder_hold;
  if p.loss > 0.0 then f "loss:%h" p.loss;
  if p.duplication > 0.0 then f "dup:%h" p.duplication;
  if p.reorder > 0.0 then f "reorder:%h" p.reorder;
  List.iter (fun (fr, u, e) -> f "spike:%h~%h~%h" fr u e) p.delay_spikes;
  List.iter
    (fun { from_t; until; groups } ->
      f "part:%s@%h~%h"
        (String.concat "|"
           (List.map
              (fun g -> String.concat "," (List.map string_of_int g))
              groups))
        from_t until)
    p.partitions;
  Buffer.contents b

let plan_of_string s =
  let fail what = invalid_arg (Printf.sprintf "chaos plan: bad %s" what) in
  let float_of x =
    match float_of_string_opt x with Some v -> v | None -> fail "float"
  in
  let int_of x =
    match int_of_string_opt x with Some v -> v | None -> fail "int"
  in
  let fields =
    String.split_on_char ';' s |> List.filter (fun x -> x <> "")
  in
  List.fold_left
    (fun p field ->
      match String.index_opt field ':' with
      | None -> fail "field"
      | Some i ->
        let key = String.sub field 0 i in
        let v = String.sub field (i + 1) (String.length field - i - 1) in
        (match key with
        | "seed" -> { p with seed = int_of v }
        | "n" -> { p with n = int_of v }
        | "hold" -> { p with reorder_hold = int_of v }
        | "loss" -> { p with loss = float_of v }
        | "dup" -> { p with duplication = float_of v }
        | "reorder" -> { p with reorder = float_of v }
        | "spike" -> (
          match String.split_on_char '~' v with
          | [ f; u; e ] ->
            {
              p with
              delay_spikes =
                p.delay_spikes @ [ (float_of f, float_of u, float_of e) ];
            }
          | _ -> fail "spike")
        | "part" -> (
          match String.index_opt v '@' with
          | None -> fail "partition"
          | Some j ->
            let gs = String.sub v 0 j in
            let window = String.sub v (j + 1) (String.length v - j - 1) in
            let from_t, until =
              match String.split_on_char '~' window with
              | [ f; u ] -> (float_of f, float_of u)
              | _ -> fail "partition window"
            in
            let groups =
              String.split_on_char '|' gs
              |> List.filter (fun g -> g <> "")
              |> List.map (fun g ->
                     String.split_on_char ',' g
                     |> List.filter (fun x -> x <> "")
                     |> List.map int_of)
            in
            { p with partitions = p.partitions @ [ { from_t; until; groups } ] })
        | _ -> fail ("key " ^ key)))
    no_faults fields
