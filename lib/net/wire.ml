module M = Dmx_core.Messages
module Ts = Dmx_sim.Timestamp
module Trace = Dmx_sim.Trace

let version = 1
let max_frame = 16 * 1024 * 1024

(* ---- encoding primitives ---- *)

let w8 b v = Buffer.add_uint8 b (v land 0xff)
let w64 b v = Buffer.add_int64_be b v
let wint b v = w64 b (Int64.of_int v)
let wf64 b v = w64 b (Int64.bits_of_float v)
let wbool b v = w8 b (if v then 1 else 0)

let wstr b s =
  Buffer.add_int32_be b (Int32.of_int (String.length s));
  Buffer.add_string b s

(* ---- decoding primitives ----

   A cursor over the payload; every reader bounds-checks and raises [Bad],
   caught once at the [decode] boundary, so corruption can never escape as
   an exception or out-of-range access. *)

exception Bad of string

type cursor = { s : string; mutable pos : int }

let need c k =
  if c.pos + k > String.length c.s || c.pos + k < c.pos then
    raise (Bad "truncated frame")

let r8 c =
  need c 1;
  let v = String.get_uint8 c.s c.pos in
  c.pos <- c.pos + 1;
  v

let r64 c =
  need c 8;
  let v = String.get_int64_be c.s c.pos in
  c.pos <- c.pos + 8;
  v

let rint c = Int64.to_int (r64 c)
let rf64 c = Int64.float_of_bits (r64 c)

let rbool c =
  match r8 c with
  | 0 -> false
  | 1 -> true
  | v -> raise (Bad (Printf.sprintf "bad boolean byte %d" v))

let rstr c =
  need c 4;
  let n = Int32.to_int (String.get_int32_be c.s c.pos) in
  c.pos <- c.pos + 4;
  if n < 0 then raise (Bad "negative string length");
  need c n;
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let finished c what =
  if c.pos <> String.length c.s then
    raise (Bad (Printf.sprintf "%d trailing byte(s) after %s"
                  (String.length c.s - c.pos) what))

(* ---- Dmx_core.Messages.t ---- *)

let wts b (ts : Ts.t) =
  wint b ts.Ts.sn;
  wint b ts.Ts.site

let rts c =
  let sn = rint c in
  let site = rint c in
  { Ts.sn; site }

let wopt w b = function
  | None -> w8 b 0
  | Some v ->
    w8 b 1;
    w b v

let ropt r c = match r8 c with
  | 0 -> None
  | 1 -> Some (r c)
  | v -> raise (Bad (Printf.sprintf "bad option byte %d" v))

let rec wmsg b (m : M.t) =
  match m with
  | M.Request ts ->
    w8 b 0;
    wts b ts
  | M.Reply { arbiter; for_req; next } ->
    w8 b 1;
    wint b arbiter;
    wts b for_req;
    wopt wts b next
  | M.Release { of_req; forwarded_to } ->
    w8 b 2;
    wts b of_req;
    wopt wts b forwarded_to
  | M.Transfer { target; inquire } ->
    w8 b 3;
    wts b target;
    wbool b inquire
  | M.Fail -> w8 b 4
  | M.Yield { of_req } ->
    w8 b 5;
    wts b of_req
  | M.Failure_note site ->
    w8 b 6;
    wint b site
  | M.Hello -> w8 b 7
  | M.Data { inc; dst_inc; seq; base; retx; payload } ->
    w8 b 8;
    wf64 b inc;
    wf64 b dst_inc;
    wint b seq;
    wint b base;
    wbool b retx;
    wmsg b payload
  | M.Ack { of_inc; upto } ->
    w8 b 9;
    wf64 b of_inc;
    wint b upto

let rec rmsg c : M.t =
  match r8 c with
  | 0 -> M.Request (rts c)
  | 1 ->
    let arbiter = rint c in
    let for_req = rts c in
    let next = ropt rts c in
    M.Reply { arbiter; for_req; next }
  | 2 ->
    let of_req = rts c in
    let forwarded_to = ropt rts c in
    M.Release { of_req; forwarded_to }
  | 3 ->
    let target = rts c in
    let inquire = rbool c in
    M.Transfer { target; inquire }
  | 4 -> M.Fail
  | 5 -> M.Yield { of_req = rts c }
  | 6 -> M.Failure_note (rint c)
  | 7 -> M.Hello
  | 8 ->
    let inc = rf64 c in
    let dst_inc = rf64 c in
    let seq = rint c in
    let base = rint c in
    let retx = rbool c in
    let payload = rmsg c in
    M.Data { inc; dst_inc; seq; base; retx; payload }
  | 9 ->
    let of_inc = rf64 c in
    let upto = rint c in
    M.Ack { of_inc; upto }
  | t -> raise (Bad (Printf.sprintf "bad message tag %d" t))

let encode_message m =
  let b = Buffer.create 32 in
  wmsg b m;
  Buffer.contents b

let decode_message s =
  match
    let c = { s; pos = 0 } in
    let m = rmsg c in
    finished c "message";
    m
  with
  | m -> Ok m
  | exception Bad e -> Error e

(* ---- Dmx_sim.Trace entries ---- *)

let wkind b (k : Trace.kind) =
  match k with
  | Trace.Send { dst; msg } ->
    w8 b 0;
    wint b dst;
    wstr b msg
  | Trace.Receive { src; msg } ->
    w8 b 1;
    wint b src;
    wstr b msg
  | Trace.Enter_cs -> w8 b 2
  | Trace.Exit_cs -> w8 b 3
  | Trace.Timer tag ->
    w8 b 4;
    wint b tag
  | Trace.Crash -> w8 b 5
  | Trace.Recover -> w8 b 6
  | Trace.Drop { dst; reason } ->
    w8 b 7;
    wint b dst;
    wstr b reason
  | Trace.Duplicate { dst } ->
    w8 b 8;
    wint b dst
  | Trace.Partition { heal } ->
    w8 b 9;
    wbool b heal
  | Trace.Suspect s ->
    w8 b 10;
    wint b s
  | Trace.Trust s ->
    w8 b 11;
    wint b s
  | Trace.Note s ->
    w8 b 12;
    wstr b s
  | Trace.Request -> w8 b 13
  | Trace.Adopt_quorum q ->
    w8 b 14;
    wint b (List.length q);
    List.iter (wint b) q
  | Trace.Acquire { arbiter } ->
    w8 b 15;
    wint b arbiter
  | Trace.Cede { arbiter } ->
    w8 b 16;
    wint b arbiter
  | Trace.Forward { arbiter; to_ } ->
    w8 b 17;
    wint b arbiter;
    wint b to_
  | Trace.Grant { to_ } ->
    w8 b 18;
    wint b to_

let rkind c : Trace.kind =
  match r8 c with
  | 0 ->
    let dst = rint c in
    let msg = rstr c in
    Trace.Send { dst; msg }
  | 1 ->
    let src = rint c in
    let msg = rstr c in
    Trace.Receive { src; msg }
  | 2 -> Trace.Enter_cs
  | 3 -> Trace.Exit_cs
  | 4 -> Trace.Timer (rint c)
  | 5 -> Trace.Crash
  | 6 -> Trace.Recover
  | 7 ->
    let dst = rint c in
    let reason = rstr c in
    Trace.Drop { dst; reason }
  | 8 -> Trace.Duplicate { dst = rint c }
  | 9 -> Trace.Partition { heal = rbool c }
  | 10 -> Trace.Suspect (rint c)
  | 11 -> Trace.Trust (rint c)
  | 12 -> Trace.Note (rstr c)
  | 13 -> Trace.Request
  | 14 ->
    let n = rint c in
    if n < 0 || n > 1_000_000 then raise (Bad "bad quorum length");
    Trace.Adopt_quorum (List.init n (fun _ -> rint c))
  | 15 -> Trace.Acquire { arbiter = rint c }
  | 16 -> Trace.Cede { arbiter = rint c }
  | 17 ->
    let arbiter = rint c in
    let to_ = rint c in
    Trace.Forward { arbiter; to_ }
  | 18 -> Trace.Grant { to_ = rint c }
  | t -> raise (Bad (Printf.sprintf "bad trace-kind tag %d" t))

let wentry b (e : Trace.entry) =
  wf64 b e.Trace.time;
  wint b e.Trace.site;
  wkind b e.Trace.kind

let rentry c =
  let time = rf64 c in
  let site = rint c in
  let kind = rkind c in
  { Trace.time; site; kind }

(* ---- frames ---- *)

type frame =
  | Hello of { site : int; inc : float }
  | Heartbeat of { site : int; time : float }
  | Proto of { src : int; dst : int; payload : string }
  | Workload of { rounds : int; cs_duration : float; since : float }
  | Trace_batch of { site : int; entries : Trace.entry list }
  | Metrics of {
      site : int;
      executions : int;
      sent : int;
      received : int;
      kinds : (string * int) list;
      reliable : (string * int) list;
    }
  | Shutdown
  (* ---- lock-service frames (sessions, leases, shards) ---- *)
  | Open_session of { session : int; inc : float }
  | Acquire of { session : int; lock : string; req : int }
  | Release_lock of { session : int; lock : string; req : int }
  | Renew of { session : int; lock : string; req : int }
  | Grant of { session : int; lock : string; req : int; deadline : float }
  | Deny of { session : int; lock : string; req : int; reason : string }
  | Expire of { session : int; lock : string; req : int }
  | Sproto of { shard : int; src : int; dst : int; payload : string }
  | Strace of { shard : int; site : int; entries : Trace.entry list }
  | Metrics_v2 of { site : int; snapshot : Dmx_obs.Snapshot.t }

(* ---- Dmx_obs.Snapshot series ---- *)

let wseries b (s : Dmx_obs.Snapshot.series) =
  wstr b s.Dmx_obs.Snapshot.name;
  wint b (List.length s.labels);
  List.iter
    (fun (k, v) ->
      wstr b k;
      wstr b v)
    s.labels;
  match s.value with
  | Dmx_obs.Snapshot.Counter v ->
    w8 b 0;
    wint b v
  | Dmx_obs.Snapshot.Gauge v ->
    w8 b 1;
    wint b v
  | Dmx_obs.Snapshot.Histogram h ->
    w8 b 2;
    wint b (Array.length h.buckets);
    Array.iter (wint b) h.buckets;
    wint b h.count;
    wint b h.sum;
    wint b h.max

let rseries c =
  let name = rstr c in
  let n = rint c in
  if n < 0 || n > 64 then raise (Bad "bad label count");
  let labels =
    List.init n (fun _ ->
        let k = rstr c in
        let v = rstr c in
        (k, v))
  in
  let value =
    match r8 c with
    | 0 -> Dmx_obs.Snapshot.Counter (rint c)
    | 1 -> Dmx_obs.Snapshot.Gauge (rint c)
    | 2 ->
      let nb = rint c in
      if nb < 0 || nb > 1024 then raise (Bad "bad bucket count");
      let buckets = Array.init nb (fun _ -> rint c) in
      let count = rint c in
      let sum = rint c in
      let max = rint c in
      Dmx_obs.Snapshot.Histogram { buckets; count; sum; max }
    | t -> raise (Bad (Printf.sprintf "bad series kind %d" t))
  in
  Dmx_obs.Snapshot.series ~name ~labels value

let encode frame =
  let b = Buffer.create 64 in
  w8 b version;
  (match frame with
  | Hello { site; inc } ->
    w8 b 0;
    wint b site;
    wf64 b inc
  | Heartbeat { site; time } ->
    w8 b 1;
    wint b site;
    wf64 b time
  | Proto { src; dst; payload } ->
    w8 b 2;
    wint b src;
    wint b dst;
    wstr b payload
  | Workload { rounds; cs_duration; since } ->
    w8 b 3;
    wint b rounds;
    wf64 b cs_duration;
    wf64 b since
  | Trace_batch { site; entries } ->
    w8 b 4;
    wint b site;
    wint b (List.length entries);
    List.iter (wentry b) entries
  | Metrics { site; executions; sent; received; kinds; reliable } ->
    w8 b 5;
    wint b site;
    wint b executions;
    wint b sent;
    wint b received;
    wint b (List.length kinds);
    List.iter
      (fun (k, v) ->
        wstr b k;
        wint b v)
      kinds;
    wint b (List.length reliable);
    List.iter
      (fun (k, v) ->
        wstr b k;
        wint b v)
      reliable
  | Shutdown -> w8 b 6
  | Open_session { session; inc } ->
    w8 b 7;
    wint b session;
    wf64 b inc
  | Acquire { session; lock; req } ->
    w8 b 8;
    wint b session;
    wstr b lock;
    wint b req
  | Release_lock { session; lock; req } ->
    w8 b 9;
    wint b session;
    wstr b lock;
    wint b req
  | Renew { session; lock; req } ->
    w8 b 10;
    wint b session;
    wstr b lock;
    wint b req
  | Grant { session; lock; req; deadline } ->
    w8 b 11;
    wint b session;
    wstr b lock;
    wint b req;
    wf64 b deadline
  | Deny { session; lock; req; reason } ->
    w8 b 12;
    wint b session;
    wstr b lock;
    wint b req;
    wstr b reason
  | Expire { session; lock; req } ->
    w8 b 13;
    wint b session;
    wstr b lock;
    wint b req
  | Sproto { shard; src; dst; payload } ->
    w8 b 14;
    wint b shard;
    wint b src;
    wint b dst;
    wstr b payload
  | Strace { shard; site; entries } ->
    w8 b 15;
    wint b shard;
    wint b site;
    wint b (List.length entries);
    List.iter (wentry b) entries
  | Metrics_v2 { site; snapshot } ->
    w8 b 16;
    wint b site;
    wint b (List.length snapshot);
    List.iter (wseries b) snapshot);
  Buffer.contents b

let decode s =
  match
    let c = { s; pos = 0 } in
    let v = r8 c in
    if v <> version then
      raise (Bad (Printf.sprintf "version %d, expected %d" v version));
    let frame =
      match r8 c with
      | 0 ->
        let site = rint c in
        let inc = rf64 c in
        Hello { site; inc }
      | 1 ->
        let site = rint c in
        let time = rf64 c in
        Heartbeat { site; time }
      | 2 ->
        let src = rint c in
        let dst = rint c in
        let payload = rstr c in
        Proto { src; dst; payload }
      | 3 ->
        let rounds = rint c in
        let cs_duration = rf64 c in
        let since = rf64 c in
        Workload { rounds; cs_duration; since }
      | 4 ->
        let site = rint c in
        let n = rint c in
        if n < 0 || n > 10_000_000 then raise (Bad "bad batch length");
        let entries = List.init n (fun _ -> rentry c) in
        Trace_batch { site; entries }
      | 5 ->
        let site = rint c in
        let executions = rint c in
        let sent = rint c in
        let received = rint c in
        let n = rint c in
        if n < 0 || n > 1_000_000 then raise (Bad "bad kind-count length");
        let kinds =
          List.init n (fun _ ->
              let k = rstr c in
              let v = rint c in
              (k, v))
        in
        let m = rint c in
        if m < 0 || m > 1_000_000 then raise (Bad "bad reliable-count length");
        let reliable =
          List.init m (fun _ ->
              let k = rstr c in
              let v = rint c in
              (k, v))
        in
        Metrics { site; executions; sent; received; kinds; reliable }
      | 6 -> Shutdown
      | 7 ->
        let session = rint c in
        let inc = rf64 c in
        Open_session { session; inc }
      | 8 ->
        let session = rint c in
        let lock = rstr c in
        let req = rint c in
        Acquire { session; lock; req }
      | 9 ->
        let session = rint c in
        let lock = rstr c in
        let req = rint c in
        Release_lock { session; lock; req }
      | 10 ->
        let session = rint c in
        let lock = rstr c in
        let req = rint c in
        Renew { session; lock; req }
      | 11 ->
        let session = rint c in
        let lock = rstr c in
        let req = rint c in
        let deadline = rf64 c in
        Grant { session; lock; req; deadline }
      | 12 ->
        let session = rint c in
        let lock = rstr c in
        let req = rint c in
        let reason = rstr c in
        Deny { session; lock; req; reason }
      | 13 ->
        let session = rint c in
        let lock = rstr c in
        let req = rint c in
        Expire { session; lock; req }
      | 14 ->
        let shard = rint c in
        let src = rint c in
        let dst = rint c in
        let payload = rstr c in
        Sproto { shard; src; dst; payload }
      | 15 ->
        let shard = rint c in
        let site = rint c in
        let n = rint c in
        if n < 0 || n > 10_000_000 then raise (Bad "bad batch length");
        let entries = List.init n (fun _ -> rentry c) in
        Strace { shard; site; entries }
      | 16 ->
        let site = rint c in
        let n = rint c in
        if n < 0 || n > 1_000_000 then raise (Bad "bad series count");
        let raw = List.init n (fun _ -> rseries c) in
        (* re-canonicalize: order is a property of snapshots, not the wire *)
        let snapshot = Dmx_obs.Snapshot.normalize raw in
        Metrics_v2 { site; snapshot }
      | t -> raise (Bad (Printf.sprintf "bad frame tag %d" t))
    in
    finished c "frame";
    frame
  with
  | frame -> Ok frame
  | exception Bad e -> Error e

(* ---- framed fd IO ---- *)

let write_all fd bytes =
  let len = Bytes.length bytes in
  let rec go off =
    if off < len then
      let n = Unix.write fd bytes off (len - off) in
      go (off + n)
  in
  go 0

let write_frame_count fd frame =
  let payload = encode frame in
  let len = String.length payload in
  let out = Bytes.create (4 + len) in
  Bytes.set_int32_be out 0 (Int32.of_int len);
  Bytes.blit_string payload 0 out 4 len;
  write_all fd out;
  4 + len

let write_frame fd frame = ignore (write_frame_count fd frame)

(* Reads exactly [len] bytes; [None] on EOF (clean close mid-read is also
   just EOF for our purposes). *)
let read_exact fd len =
  let buf = Bytes.create len in
  let rec go off =
    if off = len then Some buf
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> None
      | n -> go (off + n)
  in
  go 0

let read_frame_count fd =
  match read_exact fd 4 with
  | None -> Error "eof"
  | Some hdr ->
    let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if len < 0 || len > max_frame then
      Error (Printf.sprintf "bad frame length %d" len)
    else (
      match read_exact fd len with
      | None -> Error "eof inside frame"
      | Some payload ->
        Result.map
          (fun frame -> (frame, 4 + len))
          (decode (Bytes.unsafe_to_string payload)))

let read_frame fd = Result.map fst (read_frame_count fd)
