(** HTTP scrape endpoint for metrics registries.

    A daemon started with [--metrics-port P] runs one of these: a
    loopback listener serving

    - [GET /metrics] — {!Dmx_obs.Export.prometheus} text, and
    - [GET /metrics.json] — {!Dmx_obs.Export.json},

    each response rendered from a {e fresh} snapshot taken when the
    request arrives, so scrapes never observe a half-updated registry
    (snapshot isolation is {!Dmx_obs.Registry.snapshot}'s contract).
    Deliberately tiny: HTTP/1.0, no keep-alive, one short-lived thread
    per connection, no dependencies beyond [Unix] — the consumers are
    [curl], Prometheus, and [dmx-sim top]. *)

type t

val start : port:int -> (unit -> Dmx_obs.Snapshot.t) -> t
(** Bind the loopback listener and start serving. [port = 0] picks an
    ephemeral port — read it back with {!port} (used by tests).
    @raise Unix.Unix_error if the port cannot be bound. *)

val port : t -> int
(** The bound port (useful when {!start} was given port 0). *)

val stop : t -> unit
(** Close the listener and join the acceptor thread. Idempotent. *)

val http_get :
  ?host:string -> port:int -> string -> (int * string, string) result
(** Blocking one-shot HTTP GET of [path]; [Ok (status, body)] on any
    parseable response. The client half of the scrape loop — used by
    [dmx-sim top], the metrics-smoke CI probe, and the tests. *)
