(* UDP datagram transport: one frame per datagram, no length prefix — the
   datagram boundary is the frame boundary; the payload is exactly what
   [Wire.encode] produced (version byte first). Loss, duplication and
   reordering are genuinely possible here, which is the point: the
   retry/ack layer ([Dmx_core.Reliable]) has to earn its keep. *)

(* Largest payload a UDP/IPv4 datagram can carry (65535 - 8 - 20). *)
let max_datagram = 65507

type peer = {
  id : int;
  lock : Mutex.t;  (* guards [fd] *)
  mutable fd : Unix.file_descr option;
  addr : Unix.sockaddr;
}

type t = {
  cfg : Transport_sig.config;
  recv_fd : Unix.file_descr;
  peers : peer list;
  book : Transport_sig.Peers.t;
  stop : bool Atomic.t;
  sent : int Atomic.t;
  received : int Atomic.t;
  oversize : int Atomic.t;
  undecodable : int Atomic.t;
  bytes_sent : int Atomic.t;
  bytes_received : int Atomic.t;
  mutable reader : Thread.t option;
}

let poll t = Transport_sig.Peers.poll t.book

(* ---- sending: per-peer connected sockets, opened lazily ---- *)

let peer_fd p =
  Mutex.lock p.lock;
  let fd =
    match p.fd with
    | Some fd -> Some fd
    | None -> (
      match
        let fd = Unix.socket PF_INET SOCK_DGRAM 0 in
        (try Unix.connect fd p.addr
         with e ->
           (try Unix.close fd with _ -> ());
           raise e);
        fd
      with
      | fd ->
        p.fd <- Some fd;
        Some fd
      | exception _ -> None)
  in
  Mutex.unlock p.lock;
  fd

let send_to_peer t p frame =
  let payload = Wire.encode frame in
  let len = String.length payload in
  if len > max_datagram then Atomic.incr t.oversize
  else
    match peer_fd p with
    | None -> ()
    | Some fd -> (
      (* connected socket: plain [write] is a datagram send; any error
         (ICMP port unreachable surfacing as ECONNREFUSED, ...) is just
         loss — the reliability layer retries *)
      match Unix.write_substring fd payload 0 len with
      | _ ->
        Atomic.incr t.sent;
        ignore (Atomic.fetch_and_add t.bytes_sent len)
      | exception _ -> ())

let send t ~dst frame =
  match List.find_opt (fun p -> p.id = dst) t.peers with
  | Some p -> send_to_peer t p frame
  | None -> ()

let broadcast t frame = List.iter (fun p -> send_to_peer t p frame) t.peers

let stats t =
  {
    Transport_sig.frames_sent = Atomic.get t.sent;
    frames_received = Atomic.get t.received;
    oversize_dropped = Atomic.get t.oversize;
    undecodable = Atomic.get t.undecodable;
    bytes_sent = Atomic.get t.bytes_sent;
    bytes_received = Atomic.get t.bytes_received;
    connects = 0;
    silences = Transport_sig.Peers.silences t.book;
  }

(* ---- receiving: one reader thread over the bound socket ---- *)

let reader t =
  let buf = Bytes.create (max_datagram + 1) in
  while not (Atomic.get t.stop) do
    match Unix.select [ t.recv_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.recvfrom t.recv_fd buf 0 (Bytes.length buf) [] with
      | 0, _ -> ()
      | n, _ -> (
        match Wire.decode (Bytes.sub_string buf 0 n) with
        | Error _ -> Atomic.incr t.undecodable
        | Ok frame ->
          Atomic.incr t.received;
          ignore (Atomic.fetch_and_add t.bytes_received n);
          let src = Transport_sig.frame_src frame in
          Transport_sig.Peers.heard t.book src;
          Transport_sig.Peers.push t.book (Frame { src; frame }))
      | exception _ -> if not (Atomic.get t.stop) then Unix.sleepf 0.01)
    | exception _ -> if not (Atomic.get t.stop) then Unix.sleepf 0.01
  done

(* ---- lifecycle ---- *)

let create (cfg : Transport_sig.config) =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let recv_fd = Unix.socket PF_INET SOCK_DGRAM 0 in
  Unix.setsockopt recv_fd SO_REUSEADDR true;
  (* a node drains its socket between protocol steps; buffer bursts
     (quorum-wide broadcasts x retransmits) rather than dropping them at
     the kernel on top of the loss we inject on purpose *)
  (try Unix.setsockopt_int recv_fd SO_RCVBUF (4 * 1024 * 1024)
   with _ -> ());
  (try
     Unix.bind recv_fd (ADDR_INET (Unix.inet_addr_loopback, cfg.listen_port))
   with e ->
     (try Unix.close recv_fd with _ -> ());
     raise e);
  let t =
    {
      cfg;
      recv_fd;
      peers =
        List.map
          (fun (id, addr) ->
            { id; lock = Mutex.create (); fd = None; addr })
          cfg.peers;
      book = Transport_sig.Peers.create cfg;
      stop = Atomic.make false;
      sent = Atomic.make 0;
      received = Atomic.make 0;
      oversize = Atomic.make 0;
      undecodable = Atomic.make 0;
      bytes_sent = Atomic.make 0;
      bytes_received = Atomic.make 0;
      reader = None;
    }
  in
  t.reader <- Some (Thread.create (fun () -> reader t) ());
  t

let close t =
  if not (Atomic.exchange t.stop true) then begin
    (match t.reader with
    | Some th -> ( try Thread.join th with _ -> ())
    | None -> ());
    (try Unix.close t.recv_fd with _ -> ());
    List.iter
      (fun p ->
        Mutex.lock p.lock;
        (match p.fd with
        | Some fd ->
          (try Unix.close fd with _ -> ());
          p.fd <- None
        | None -> ());
        Mutex.unlock p.lock)
      t.peers
  end
