(** Cluster supervisor: spawn [n] local node processes, drive a workload,
    optionally kill and restart sites mid-run, and distil the merged
    per-site traces into the same artifacts a simulation produces.

    The supervisor re-executes its own binary as the node image (see
    {!Node.env_var}), so [run] works from the CLI, the test runner, and
    the bench runner alike. Ports are allocated fresh from the kernel for
    every run; everything binds the loopback interface.

    The outcome carries a genuine {!Dmx_sim.Engine.report} — executions,
    per-kind message counts, synchronization delay, response time,
    fairness, the lot — reconstructed from the merged trace and the nodes'
    own counters, so the existing report/CSV printers apply unchanged. The
    merged trace is also scanned with the {!Dmx_runtime.Occupancy} checker
    and validated by {!Dmx_sim.Oracle} (FIFO and custody checks relax on
    runs with kills, exactly as the simulator's replay path does). *)

type config = {
  n : int;
  protocol : string;  (** ["delay-optimal"] or ["ft-delay-optimal"] *)
  quorum : Dmx_quorum.Builder.kind;
  rounds : int;  (** CS entries each site must complete *)
  cs_duration : float;  (** seconds inside the CS *)
  seed : int;
  kills : (float * int) list;
      (** (seconds after workload start, site): SIGKILL the node process *)
  restarts : (float * int) list;
      (** (seconds after workload start, site): respawn a killed site on
          its old port with fresh state *)
  log_dir : string option;  (** per-node stderr logs, when given *)
  timeout : float;  (** hard wall-clock bound on the whole run *)
  hb_period : float;
  hb_timeout : float;
  rto : float;  (** nodes' reliability-layer base timeout *)
  transport : string;  (** a {!Transports.create} name: ["tcp"]/["udp"] *)
  chaos : Chaos.plan;
      (** fault plan injected at every node ({!Chaos.no_faults} runs
          bare); [n] is filled in from the config, and a zero [seed]
          inherits [config.seed] *)
  hello_timeout : float;
      (** seconds allowed for {e all} nodes to say hello; a node that
          cannot bind its port or dies on startup fails the run by name
          instead of wedging it *)
  ports : int list option;
      (** fixed ports ([n] node ports then the supervisor's) instead of
          kernel-allocated ones — test hook for bind-failure injection *)
  metrics_base_port : int;
      (** when nonzero, node [i] serves its metrics registry over HTTP on
          loopback port [metrics_base_port + i] ({!Scrape}); [0] (the
          default) starts no listeners *)
}

val default : n:int -> config
(** ft-delay-optimal over tree quorums, 20 rounds, 1 ms CS, no kills,
    60 s timeout, 100 ms heartbeats with a 1 s suspicion timeout, TCP
    transport, no chaos, 10 s hello deadline. *)

type outcome = {
  report : Dmx_sim.Engine.report;
  verdict : Dmx_sim.Oracle.verdict;
  entries : Dmx_sim.Trace.entry list;  (** merged, time-sorted *)
  wall_seconds : float;
  live_stats : (string * int) list array;
      (** per-site live counters from the final [Metrics] frames:
          reliability-layer retransmits/acks/dup-drops, chaos injections,
          transport totals (a killed site reports nothing) *)
  snapshots : Dmx_obs.Snapshot.t array;
      (** per-site metrics-registry snapshots from the final
          {!Wire.frame.Metrics_v2} frames — the same registries the nodes
          serve on their [--metrics-port] scrape endpoints (empty for a
          site that reported nothing) *)
}

val merged_snapshot : outcome -> Dmx_obs.Snapshot.t
(** All sites' snapshots summed with {!Dmx_obs.Snapshot.merge} — fleet
    totals for every series. *)

val run : config -> (outcome, string) result
(** [Error] on a bad configuration, a node that cannot come up, or the
    timeout expiring; every child process is reaped on all paths. *)

val live_totals : outcome -> (string * int) list
(** Nonzero fleet totals as [(name, value)] pairs, rendered from
    {!merged_snapshot} (falling back to summing {!outcome.live_stats}
    when no site shipped a snapshot). *)

val pp_outcome : Format.formatter -> outcome -> unit
(** The engine report, the occupancy line, aggregated live counters, and
    the oracle verdict. *)
