(** TCP transport with per-peer connection management.

    One transport instance serves one participant (a node or the cluster
    supervisor). It listens for inbound connections, maintains one
    {e outbound} connection to every configured peer — dialled eagerly and
    redialled with exponential backoff after any failure — and runs a
    heartbeat loop whose silence-based failure detector feeds
    {!event.Peer_down}/{!event.Peer_up} events to the owner (which turns
    them into [on_failure]/[on_recovery] protocol calls and
    suspect/trust trace events).

    Connections are {e unidirectional}: the dialler writes, the acceptor
    reads. Every outbound connection opens with a {!Wire.frame.Hello}
    identifying the sender; frames sent while a peer is unreachable are
    buffered (bounded, oldest dropped first) and flushed in order on
    reconnect, so a node that comes up a beat late still receives the
    protocol traffic addressed to it. Loss beyond the buffer bound is the
    business of the retry/ack layer ({!Dmx_core.Reliable}), exactly as on
    a real deployment.

    All callbacks into the owner happen via {!poll} on the owner's own
    thread; internal threads only move bytes. *)

type event =
  | Frame of { src : int; frame : Wire.frame }
      (** [src] is the sending site as identified by its [Hello] (or the
          frame's own source field); [-1] when the sender never said hello. *)
  | Peer_down of int
      (** heartbeat silence exceeded [hb_timeout] — suspicion, not truth *)
  | Peer_up of int  (** a suspected peer was heard from again *)

type config = {
  self : int;  (** this participant's site id ([n] for the supervisor) *)
  listen_port : int;
  peers : (int * Unix.sockaddr) list;  (** outbound dial targets *)
  hb_period : float;  (** heartbeat interval; [0.] disables the loop *)
  hb_timeout : float;  (** silence before a watched peer is suspected *)
  watch : int list;  (** peer ids subject to failure detection *)
  hello_inc : float;
      (** incarnation number stamped on every outbound [Hello]; a restarted
          node uses a fresh (larger) value so the supervisor can tell a new
          life from a reconnect of the old one *)
}

type t

val create : config -> t
(** Binds the listen socket (with [SO_REUSEADDR], so a restarted node can
    rebind its old port immediately), then starts the acceptor, dialler,
    and heartbeat threads.
    @raise Unix.Unix_error if the port cannot be bound. *)

val send : t -> dst:int -> Wire.frame -> unit
(** Enqueue or write one frame to a configured peer. Never blocks on a
    dead peer and never raises on connection failure — the frame is
    buffered for the redial. Sending to an unknown [dst] is a silent
    no-op (the peer may not have been configured on purpose, e.g. a
    supervisor without a fixed address). *)

val broadcast : t -> Wire.frame -> unit
(** {!send} to every configured peer. *)

val poll : t -> event option
(** Dequeue the next event, if any; the owner's main loop interleaves
    this with protocol timers. Never blocks. *)

val close : t -> unit
(** Stop all threads and close every socket. Idempotent. *)
