(** TCP stream transport: the default {!Transport_sig.S} implementation.

    One transport instance serves one participant (a node or the cluster
    supervisor). It listens for inbound connections and maintains one
    {e outbound} connection to every configured peer — dialled eagerly and
    redialled with exponential backoff after any failure.

    Connections are {e unidirectional}: the dialler writes, the acceptor
    reads. Every outbound connection opens with a {!Wire.frame.Hello}
    identifying the sender; frames sent while a peer is unreachable are
    buffered (bounded, oldest dropped first) and flushed in order on
    reconnect, so a node that comes up a beat late still receives the
    protocol traffic addressed to it. Loss beyond the buffer bound is the
    business of the retry/ack layer ({!Dmx_core.Reliable}), exactly as on
    a real deployment.

    Heartbeat {e emission} is the owner's job (see {!Transport_sig});
    this module only detects silence, inside {!poll}. All callbacks into
    the owner happen via {!poll} on the owner's own thread; internal
    threads only move bytes. *)

type event = Transport_sig.event =
  | Frame of { src : int; frame : Wire.frame }
  | Peer_down of int
  | Peer_up of int

type config = Transport_sig.config = {
  self : int;
  listen_port : int;
  peers : (int * Unix.sockaddr) list;
  hb_period : float;
  hb_timeout : float;
  watch : int list;
  hello_inc : float;
}

type t

val create : config -> t
(** Binds the listen socket (with [SO_REUSEADDR], so a restarted node can
    rebind its old port immediately), then starts the acceptor and
    dialler threads.
    @raise Unix.Unix_error if the port cannot be bound. *)

val send : t -> dst:int -> Wire.frame -> unit
val broadcast : t -> Wire.frame -> unit
val poll : t -> event option
val stats : t -> Transport_sig.stats
val close : t -> unit
