module Proto = Dmx_sim.Protocol
module Trace = Dmx_sim.Trace
module B = Dmx_quorum.Builder

type spec = {
  site : int;
  n : int;
  node_ports : int array;
  supervisor_port : int;
  protocol : string;
  quorum : string;
  seed : int;
  epoch : float;
  hb_period : float;
  hb_timeout : float;
  rto : float;
  max_seconds : float;
  transport : string;
  chaos : Chaos.plan;
  metrics_port : int;  (* 0 = no scrape listener *)
}

let env_var = "DMX_NODE_SPEC"

let spec_to_string s =
  Printf.sprintf
    "site=%d n=%d ports=%s sup=%d proto=%s quorum=%s seed=%d epoch=%h \
     hb=%h hbto=%h rto=%h max=%h trans=%s chaos=%s mport=%d"
    s.site s.n
    (String.concat ","
       (Array.to_list (Array.map string_of_int s.node_ports)))
    s.supervisor_port s.protocol s.quorum s.seed s.epoch s.hb_period
    s.hb_timeout s.rto s.max_seconds s.transport
    (Chaos.plan_to_string s.chaos)
    s.metrics_port

let spec_of_string str =
  try
    let kv =
      String.split_on_char ' ' str
      |> List.filter (fun s -> s <> "")
      |> List.map (fun s ->
             match String.index_opt s '=' with
             | Some i ->
               ( String.sub s 0 i,
                 String.sub s (i + 1) (String.length s - i - 1) )
             | None -> failwith ("bad field " ^ s))
    in
    let get k =
      match List.assoc_opt k kv with
      | Some v -> v
      | None -> failwith ("missing field " ^ k)
    in
    let geti k = int_of_string (get k) in
    let getf k = float_of_string (get k) in
    Ok
      {
        site = geti "site";
        n = geti "n";
        node_ports =
          get "ports" |> String.split_on_char ','
          |> List.map int_of_string |> Array.of_list;
        supervisor_port = geti "sup";
        protocol = get "proto";
        quorum = get "quorum";
        seed = geti "seed";
        epoch = getf "epoch";
        hb_period = getf "hb";
        hb_timeout = getf "hbto";
        rto = getf "rto";
        max_seconds = getf "max";
        transport =
          (match List.assoc_opt "trans" kv with Some t -> t | None -> "tcp");
        chaos =
          (match List.assoc_opt "chaos" kv with
          | Some c -> Chaos.plan_of_string c
          | None -> Chaos.no_faults);
        metrics_port =
          (match List.assoc_opt "mport" kv with
          | Some p -> int_of_string p
          | None -> 0);
      }
  with e -> Error (Printf.sprintf "bad node spec %S: %s" str (Printexc.to_string e))

(* How long a node outlives a silent supervisor before giving up: a
   crashed/wedged supervisor must not leave orphan daemons behind. *)
let supervisor_silence_limit = 30.0

let debug =
  match Sys.getenv_opt "DMX_NET_DEBUG" with Some "1" -> true | _ -> false

let dbg fmt =
  if debug then Printf.eprintf (fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

module Make (P : Proto.PROTOCOL) = struct
  type codec = {
    encode : P.message -> string;
    decode : string -> (P.message, string) result;
  }

  type timer = { at : float; tag : int; seq : int }

  let run (spec : spec) ~codec ?(live_stats = fun _ -> [])
      ?(attach_obs = fun _ _ -> ()) (pconfig : P.config) =
    let now () = Unix.gettimeofday () -. spec.epoch in
    let started = now () in
    let hello_inc = Unix.gettimeofday () in
    let peer_list =
      List.filter_map
        (fun j ->
          if j = spec.site then None
          else
            Some
              ( j,
                Unix.ADDR_INET (Unix.inet_addr_loopback, spec.node_ports.(j))
              ))
        (List.init spec.n Fun.id)
      @ [
          ( spec.n,
            Unix.ADDR_INET (Unix.inet_addr_loopback, spec.supervisor_port) );
        ]
    in
    let raw =
      Transports.create_exn spec.transport
        {
          Transport_sig.self = spec.site;
          listen_port = spec.node_ports.(spec.site);
          peers = peer_list;
          hb_period = spec.hb_period;
          hb_timeout = spec.hb_timeout;
          watch =
            List.init spec.n Fun.id |> List.filter (fun j -> j <> spec.site);
          hello_inc;
        }
    in
    (* every outbound frame — protocol traffic and heartbeats alike — goes
       through the chaos shim when a fault plan is in force *)
    let shim =
      if Chaos.is_trivial spec.chaos then None
      else
        Some
          (Chaos.create spec.chaos ~self:spec.site
             ~peers:(List.map fst peer_list) ~inner:raw)
    in
    let transport =
      match shim with Some c -> Chaos.handle c | None -> raw
    in
    (* one metrics registry per node process: the scrape endpoint, the
       Metrics_v2 frame, and the old Metrics frame all read from it *)
    let reg = Dmx_obs.Registry.create () in
    Transport_sig.register_obs reg ~prefix:"transport" transport;
    (match shim with Some c -> Chaos.register_obs reg c | None -> ());
    (* trace buffer, streamed to the supervisor in bounded batches (a
       batch must fit a UDP datagram) *)
    let trace_buf : Trace.entry Queue.t = Queue.create () in
    let last_flush = ref (now ()) in
    let flush_traces () =
      while not (Queue.is_empty trace_buf) do
        let entries = ref [] in
        while (not (Queue.is_empty trace_buf)) && List.length !entries < 96 do
          entries := Queue.pop trace_buf :: !entries
        done;
        transport.send ~dst:spec.n
          (Wire.Trace_batch { site = spec.site; entries = List.rev !entries })
      done;
      last_flush := now ()
    in
    let trace kind =
      Queue.push { Trace.time = now (); site = spec.site; kind } trace_buf
    in
    let render msg = Format.asprintf "%a" P.pp_message msg in
    (* metrics, mirroring the engine's counting: network sends only. The
       Hashtbl feeds the legacy Metrics frame; the registry counters feed
       the scrape endpoint and Metrics_v2. *)
    let sent = ref 0 in
    let received = ref 0 in
    let c_sent = Dmx_obs.Registry.counter reg "node.sent" in
    let c_received = Dmx_obs.Registry.counter reg "node.received" in
    let c_exec = Dmx_obs.Registry.counter reg "node.executions" in
    let kinds : (string, int) Hashtbl.t = Hashtbl.create 8 in
    let count_kind k =
      Hashtbl.replace kinds k
        (1 + Option.value ~default:0 (Hashtbl.find_opt kinds k));
      Dmx_obs.Metric.Counter.incr
        (Dmx_obs.Registry.counter reg "node.messages.kind"
           ~labels:[ ("kind", k) ])
    in
    (* timers *)
    let timer_seq = ref 0 in
    let timers =
      Dmx_sim.Heap.create
        ~cmp:(fun a b ->
          let c = Float.compare a.at b.at in
          if c <> 0 then c else Int.compare a.seq b.seq)
        ()
    in
    (* self-sends bypass the network, as in the engine: traced as a Send,
       delivered at the next loop turn, no Receive entry, not counted *)
    let selfq : P.message Queue.t = Queue.create () in
    let pending_enter = ref false in
    let ctx : P.message Proto.ctx =
      {
        Proto.self = spec.site;
        n = spec.n;
        now;
        send =
          (fun ~dst msg ->
            trace (Trace.Send { dst; msg = render msg });
            if dst = spec.site then Queue.push msg selfq
            else begin
              incr sent;
              Dmx_obs.Metric.Counter.incr c_sent;
              count_kind (P.message_kind msg);
              transport.send ~dst
                (Wire.Proto
                   { src = spec.site; dst; payload = codec.encode msg })
            end);
        enter_cs = (fun () -> pending_enter := true);
        set_timer =
          (fun ~delay ~tag ->
            incr timer_seq;
            Dmx_sim.Heap.add timers
              { at = now () +. delay; tag; seq = !timer_seq });
        rng = Dmx_sim.Rng.create (spec.seed + spec.site + 1);
        trace_note = (fun s -> trace (Trace.Note s));
        trace_event = (fun k -> trace k);
        mark_parked =
          (fun p -> trace (Trace.Note (if p then "parked" else "unparked")));
      }
    in
    let state = P.init ctx pconfig in
    attach_obs state reg;
    let scrape =
      if spec.metrics_port > 0 then
        Some
          (Scrape.start ~port:spec.metrics_port (fun () ->
               Dmx_obs.Registry.snapshot reg))
      else None
    in
    (* workload state machine *)
    let workload = ref None in
    let completed = ref 0 in
    let requested = ref false in
    let in_cs = ref false in
    let cs_deadline = ref 0.0 in
    let metrics_sent = ref false in
    let last_super_contact = ref (now ()) in
    let last_hb = ref Float.neg_infinity in
    let shutdown = ref false in
    while
      (not !shutdown)
      && now () -. !last_super_contact < supervisor_silence_limit
      && now () -. started < spec.max_seconds
    do
      (* 0. heartbeat + Hello emission — the owner's job, through the
         (possibly chaos-wrapped) handle, so injected faults starve the
         peers' failure detectors exactly as a hostile network would *)
      if spec.hb_period > 0.0 && now () -. !last_hb >= spec.hb_period then begin
        last_hb := now ();
        transport.broadcast (Wire.Heartbeat { site = spec.site; time = now () });
        (* keep re-introducing ourselves until the workload arrives: on a
           datagram transport the first Hello can simply be lost *)
        if !workload = None then
          transport.send ~dst:spec.n
            (Wire.Hello { site = spec.site; inc = hello_inc })
      end;
      (* 1. due timers *)
      let rec fire_timers () =
        match Dmx_sim.Heap.peek timers with
        | Some t when t.at <= now () ->
          ignore (Dmx_sim.Heap.pop timers);
          trace (Trace.Timer t.tag);
          P.on_timer ctx state t.tag;
          fire_timers ()
        | Some _ | None -> ()
      in
      fire_timers ();
      (* 2. self-deliveries *)
      while not (Queue.is_empty selfq) do
        P.on_message ctx state ~src:spec.site (Queue.pop selfq)
      done;
      (* 3. network events *)
      let rec drain () =
        match transport.poll () with
        | None -> ()
        | Some ev ->
          (match ev with
          | Transport_sig.Frame { src; frame } ->
            if src = spec.n then last_super_contact := now ();
            (match frame with
            | Wire.Proto { src = psrc; payload; _ } -> (
              match codec.decode payload with
              | Ok msg ->
                incr received;
                Dmx_obs.Metric.Counter.incr c_received;
                trace (Trace.Receive { src = psrc; msg = render msg });
                P.on_message ctx state ~src:psrc msg
              | Error e ->
                trace (Trace.Note (Printf.sprintf "undecodable message from %d: %s" psrc e)))
            | Wire.Workload { rounds; cs_duration; since } ->
              (* anonymous, but only the supervisor sends it *)
              last_super_contact := now ();
              dbg "node %d: workload rounds=%d" spec.site rounds;
              (match shim with
              | Some c -> Chaos.set_zero c (spec.epoch +. since)
              | None -> ());
              if !workload = None then workload := Some (rounds, cs_duration)
            | Wire.Shutdown ->
              last_super_contact := now ();
              dbg "node %d: shutdown at %.3f" spec.site (now ());
              shutdown := true
            | Wire.Hello _ | Wire.Heartbeat _ | Wire.Trace_batch _
            | Wire.Metrics _ | Wire.Metrics_v2 _ ->
              ()
            (* lock-service frames: a single-protocol node is not a
               service host — see Dmx_service.Snode for the daemon that
               speaks these *)
            | Wire.Open_session _ | Wire.Acquire _ | Wire.Release_lock _
            | Wire.Renew _ | Wire.Grant _ | Wire.Deny _ | Wire.Expire _
            | Wire.Sproto _ | Wire.Strace _ ->
              ())
          | Transport_sig.Peer_down s ->
            trace (Trace.Suspect s);
            P.on_failure ctx state s
          | Transport_sig.Peer_up s ->
            trace (Trace.Trust s);
            P.on_recovery ctx state s);
          drain ()
      in
      drain ();
      (* 4. workload machine (engine-style Request/Enter/Exit bracketing) *)
      (match !workload with
      | None -> ()
      | Some (rounds, cs_duration) ->
        if !pending_enter then begin
          pending_enter := false;
          trace Trace.Enter_cs;
          in_cs := true;
          cs_deadline := now () +. cs_duration
        end;
        if !in_cs && now () >= !cs_deadline then begin
          trace Trace.Exit_cs;
          in_cs := false;
          incr completed;
          Dmx_obs.Metric.Counter.incr c_exec;
          requested := false;
          P.release_cs ctx state
        end;
        if (not !requested) && (not !in_cs) && !completed < rounds then begin
          requested := true;
          trace Trace.Request;
          P.request_cs ctx state
        end;
        if !completed >= rounds && not !metrics_sent then begin
          metrics_sent := true;
          let reliable =
            live_stats state
            @ (match shim with Some c -> Chaos.stats_alist c | None -> [])
            @ Transport_sig.stats_alist ~prefix:"transport" (transport.stats ())
          in
          transport.send ~dst:spec.n
            (Wire.Metrics
               {
                 site = spec.site;
                 executions = !completed;
                 sent = !sent;
                 received = !received;
                 kinds = Hashtbl.fold (fun k v acc -> (k, v) :: acc) kinds [];
                 reliable;
               });
          (* the full registry rides alongside: what the supervisor
             aggregates is exactly what the scrape endpoint serves *)
          transport.send ~dst:spec.n
            (Wire.Metrics_v2
               {
                 site = spec.site;
                 snapshot = Dmx_obs.Registry.snapshot reg;
               })
        end);
      (* 5. stream the trace *)
      if Queue.length trace_buf >= 256 || now () -. !last_flush > 0.2 then
        flush_traces ();
      Unix.sleepf 0.0002
    done;
    dbg "node %d: exiting at %.3f (shutdown=%b contact_age=%.3f)" spec.site
      (now ()) !shutdown
      (now () -. !last_super_contact);
    flush_traces ();
    (* let the final batch drain before tearing the sockets down *)
    Unix.sleepf 0.1;
    (match scrape with Some s -> Scrape.stop s | None -> ());
    transport.close ()
end

let run_named (spec : spec) =
  match B.parse_kind spec.quorum with
  | Error e -> Error e
  | Ok kind -> (
    let n = spec.n in
    if spec.site < 0 || spec.site >= n then Error "site out of range"
    else if Array.length spec.node_ports <> n then Error "ports/n mismatch"
    else if not (B.supports kind ~n) then
      Error
        (Format.asprintf "quorum %a does not support n=%d" B.pp_kind kind n)
    else
      match spec.protocol with
      | "delay-optimal" ->
        let module N = Make (Dmx_core.Delay_optimal) in
        N.run spec
          ~codec:
            {
              N.encode = Wire.encode_message;
              decode = Wire.decode_message;
            }
          (Dmx_core.Delay_optimal.config (B.req_sets kind ~n));
        Ok ()
      | "ft-delay-optimal" ->
        let module N = Make (Dmx_core.Ft_delay_optimal) in
        let reliability =
          {
            Dmx_core.Reliable.rto = spec.rto;
            backoff = 2.0;
            rto_max = 16.0 *. spec.rto;
            ack_delay = 0.1 *. spec.rto;
          }
        in
        N.run spec
          ~codec:
            {
              N.encode = Wire.encode_message;
              decode = Wire.decode_message;
            }
          ~live_stats:(fun st ->
            match Dmx_core.Ft_delay_optimal.Internal.reliable st with
            | Some r -> Dmx_core.Reliable.stats_alist r
            | None -> [])
          ~attach_obs:(fun st reg ->
            match Dmx_core.Ft_delay_optimal.Internal.reliable st with
            | Some r -> Dmx_core.Reliable.attach r reg
            | None -> ())
          (Dmx_core.Ft_delay_optimal.config_of_kind ~reliability
             ~trust_detector:false kind ~n ~broadcast:false);
        Ok ()
      | p -> Error (Printf.sprintf "unknown protocol %S" p))

let run_as_child_if_requested () =
  match Sys.getenv_opt env_var with
  | None -> ()
  | Some s -> (
    match spec_of_string s with
    | Error e ->
      prerr_endline e;
      exit 2
    | Ok spec -> (
      match run_named spec with
      | Ok () -> exit 0
      | Error e ->
        prerr_endline e;
        exit 2))
