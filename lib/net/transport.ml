type event =
  | Frame of { src : int; frame : Wire.frame }
  | Peer_down of int
  | Peer_up of int

type config = {
  self : int;
  listen_port : int;
  peers : (int * Unix.sockaddr) list;
  hb_period : float;
  hb_timeout : float;
  watch : int list;
  hello_inc : float;
}

(* Frames buffered per unreachable peer; beyond this the oldest are
   dropped — the retry/ack layer recovers, as it would from real loss. *)
let max_pending = 4096

type peer = {
  id : int;
  addr : Unix.sockaddr;
  lock : Mutex.t;  (** guards [fd] and [pending] *)
  mutable fd : Unix.file_descr option;
  pending : Wire.frame Queue.t;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  peers : peer list;
  events : event Queue.t;
  events_lock : Mutex.t;
  stop : bool Atomic.t;
  last_heard : (int, float) Hashtbl.t;  (** guarded by [events_lock] *)
  suspected : (int, bool) Hashtbl.t;  (** guarded by [events_lock] *)
  mutable threads : Thread.t list;
  mutable reader_fds : Unix.file_descr list;  (** guarded by [events_lock] *)
}

let push_event t ev =
  Mutex.lock t.events_lock;
  Queue.push ev t.events;
  Mutex.unlock t.events_lock

let poll t =
  Mutex.lock t.events_lock;
  let ev = if Queue.is_empty t.events then None else Some (Queue.pop t.events) in
  Mutex.unlock t.events_lock;
  ev

let heard t src =
  if src >= 0 then begin
    Mutex.lock t.events_lock;
    Hashtbl.replace t.last_heard src (Unix.gettimeofday ());
    let was_suspected =
      match Hashtbl.find_opt t.suspected src with Some b -> b | None -> false
    in
    if was_suspected then begin
      Hashtbl.replace t.suspected src false;
      Queue.push (Peer_up src) t.events
    end;
    Mutex.unlock t.events_lock
  end

(* ---- sending ---- *)

let enqueue_pending p frame =
  Queue.push frame p.pending;
  while Queue.length p.pending > max_pending do
    ignore (Queue.pop p.pending)
  done

let send_to_peer p frame =
  Mutex.lock p.lock;
  (match p.fd with
  | Some fd -> (
    try Wire.write_frame fd frame
    with _ ->
      (try Unix.close fd with _ -> ());
      p.fd <- None;
      enqueue_pending p frame)
  | None -> enqueue_pending p frame);
  Mutex.unlock p.lock

let send t ~dst frame =
  match List.find_opt (fun p -> p.id = dst) t.peers with
  | Some p -> send_to_peer p frame
  | None -> ()

let broadcast t frame = List.iter (fun p -> send_to_peer p frame) t.peers

(* ---- dialler: one thread per peer keeps the outbound connection alive ---- *)

let dial t p =
  let backoff = ref 0.05 in
  while not (Atomic.get t.stop) do
    let connected = Mutex.lock p.lock; p.fd <> None |> fun c -> Mutex.unlock p.lock; c in
    if connected then Unix.sleepf 0.05
    else begin
      match
        let fd = Unix.socket PF_INET SOCK_STREAM 0 in
        (try
           Unix.connect fd p.addr;
           Unix.setsockopt fd TCP_NODELAY true;
           Wire.write_frame fd
             (Wire.Hello { site = t.cfg.self; inc = t.cfg.hello_inc });
           fd
         with e ->
           (try Unix.close fd with _ -> ());
           raise e)
      with
      | fd ->
        backoff := 0.05;
        Mutex.lock p.lock;
        (* flush everything buffered while the peer was unreachable *)
        (try
           while not (Queue.is_empty p.pending) do
             Wire.write_frame fd (Queue.peek p.pending);
             ignore (Queue.pop p.pending)
           done;
           p.fd <- Some fd
         with _ -> ( try Unix.close fd with _ -> ()));
        Mutex.unlock p.lock
      | exception _ ->
        Unix.sleepf !backoff;
        backoff := Float.min (2.0 *. !backoff) 1.0
    end
  done;
  Mutex.lock p.lock;
  (match p.fd with
  | Some fd ->
    (try Unix.close fd with _ -> ());
    p.fd <- None
  | None -> ());
  Mutex.unlock p.lock

(* ---- acceptor and per-connection readers ---- *)

let reader t fd =
  (* the connection's sender identity, learnt from its Hello (or any frame
     carrying a source field) *)
  let src = ref (-1) in
  let rec loop () =
    if Atomic.get t.stop then ()
    else
      match (try Wire.read_frame fd with _ -> Error "connection error") with
      | Error _ -> ()
      | Ok frame ->
        (match frame with
        | Wire.Hello { site; _ }
        | Wire.Heartbeat { site; _ }
        | Wire.Trace_batch { site; _ }
        | Wire.Metrics { site; _ } ->
          src := site
        | Wire.Proto { src = s; _ } -> src := s
        | Wire.Workload _ | Wire.Shutdown -> ());
        heard t !src;
        push_event t (Frame { src = !src; frame });
        loop ()
  in
  loop ();
  try Unix.close fd with _ -> ()

let acceptor t =
  (* select-with-timeout before accept so [close] can join this thread:
     closing a listening socket does not portably wake a blocked accept *)
  while not (Atomic.get t.stop) do
    match Unix.select [ t.listen_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept t.listen_fd with
      | fd, _ ->
        Unix.setsockopt fd TCP_NODELAY true;
        Mutex.lock t.events_lock;
        t.reader_fds <- fd :: t.reader_fds;
        Mutex.unlock t.events_lock;
        ignore (Thread.create (fun () -> reader t fd) ())
      | exception _ -> if not (Atomic.get t.stop) then Unix.sleepf 0.01)
    | exception _ -> if not (Atomic.get t.stop) then Unix.sleepf 0.01
  done

(* ---- heartbeat + silence-based failure detection ---- *)

let heartbeat t =
  let started = Unix.gettimeofday () in
  while not (Atomic.get t.stop) do
    let now = Unix.gettimeofday () in
    broadcast t (Wire.Heartbeat { site = t.cfg.self; time = now });
    Mutex.lock t.events_lock;
    List.iter
      (fun id ->
        let last =
          match Hashtbl.find_opt t.last_heard id with
          | Some ts -> ts
          | None -> started (* grace period from transport start *)
        in
        let suspected =
          match Hashtbl.find_opt t.suspected id with
          | Some b -> b
          | None -> false
        in
        if (not suspected) && now -. last > t.cfg.hb_timeout then begin
          Hashtbl.replace t.suspected id true;
          Queue.push (Peer_down id) t.events
        end)
      t.cfg.watch;
    Mutex.unlock t.events_lock;
    Unix.sleepf t.cfg.hb_period
  done

(* ---- lifecycle ---- *)

let create cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt listen_fd SO_REUSEADDR true;
  (try
     Unix.bind listen_fd
       (ADDR_INET (Unix.inet_addr_loopback, cfg.listen_port));
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with _ -> ());
     raise e);
  let t =
    {
      cfg;
      listen_fd;
      peers =
        List.map
          (fun (id, addr) ->
            {
              id;
              addr;
              lock = Mutex.create ();
              fd = None;
              pending = Queue.create ();
            })
          cfg.peers;
      events = Queue.create ();
      events_lock = Mutex.create ();
      stop = Atomic.make false;
      last_heard = Hashtbl.create 16;
      suspected = Hashtbl.create 16;
      threads = [];
      reader_fds = [];
    }
  in
  let threads =
    Thread.create (fun () -> acceptor t) ()
    :: List.map (fun p -> Thread.create (fun () -> dial t p) ()) t.peers
  in
  let threads =
    if cfg.hb_period > 0.0 then
      Thread.create (fun () -> heartbeat t) () :: threads
    else threads
  in
  t.threads <- threads;
  t

let close t =
  if not (Atomic.exchange t.stop true) then begin
    (try Unix.close t.listen_fd with _ -> ());
    Mutex.lock t.events_lock;
    let readers = t.reader_fds in
    t.reader_fds <- [];
    Mutex.unlock t.events_lock;
    List.iter (fun fd -> try Unix.close fd with _ -> ()) readers;
    List.iter
      (fun p ->
        Mutex.lock p.lock;
        (match p.fd with
        | Some fd ->
          (try Unix.close fd with _ -> ());
          p.fd <- None
        | None -> ());
        Mutex.unlock p.lock)
      t.peers;
    List.iter (fun th -> try Thread.join th with _ -> ()) t.threads
  end
