type event = Transport_sig.event =
  | Frame of { src : int; frame : Wire.frame }
  | Peer_down of int
  | Peer_up of int

type config = Transport_sig.config = {
  self : int;
  listen_port : int;
  peers : (int * Unix.sockaddr) list;
  hb_period : float;
  hb_timeout : float;
  watch : int list;
  hello_inc : float;
}

(* Frames buffered per unreachable peer; beyond this the oldest are
   dropped — the retry/ack layer recovers, as it would from real loss. *)
let max_pending = 4096

type peer = {
  id : int;
  addr : Unix.sockaddr;
  lock : Mutex.t;  (** guards [fd] and [pending] *)
  mutable fd : Unix.file_descr option;
  pending : Wire.frame Queue.t;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  peers : peer list;
  book : Transport_sig.Peers.t;
  stop : bool Atomic.t;
  sent : int Atomic.t;
  received : int Atomic.t;
  undecodable : int Atomic.t;
  bytes_sent : int Atomic.t;
  bytes_received : int Atomic.t;
  connects : int Atomic.t;
  mutable threads : Thread.t list;
  reader_lock : Mutex.t;
  mutable reader_fds : Unix.file_descr list;  (** guarded by [reader_lock] *)
}

let poll t = Transport_sig.Peers.poll t.book

(* ---- sending ---- *)

let enqueue_pending p frame =
  Queue.push frame p.pending;
  while Queue.length p.pending > max_pending do
    ignore (Queue.pop p.pending)
  done

let send_to_peer t p frame =
  Mutex.lock p.lock;
  (match p.fd with
  | Some fd -> (
    try
      let n = Wire.write_frame_count fd frame in
      ignore (Atomic.fetch_and_add t.bytes_sent n);
      Atomic.incr t.sent
    with _ ->
      (try Unix.close fd with _ -> ());
      p.fd <- None;
      enqueue_pending p frame)
  | None -> enqueue_pending p frame);
  Mutex.unlock p.lock

let send t ~dst frame =
  match List.find_opt (fun p -> p.id = dst) t.peers with
  | Some p -> send_to_peer t p frame
  | None -> ()

let broadcast t frame = List.iter (fun p -> send_to_peer t p frame) t.peers

let stats t =
  {
    Transport_sig.frames_sent = Atomic.get t.sent;
    frames_received = Atomic.get t.received;
    oversize_dropped = 0;
    undecodable = Atomic.get t.undecodable;
    bytes_sent = Atomic.get t.bytes_sent;
    bytes_received = Atomic.get t.bytes_received;
    connects = Atomic.get t.connects;
    silences = Transport_sig.Peers.silences t.book;
  }

(* ---- dialler: one thread per peer keeps the outbound connection alive ---- *)

let dial t p =
  let backoff = ref 0.05 in
  while not (Atomic.get t.stop) do
    let connected = Mutex.lock p.lock; p.fd <> None |> fun c -> Mutex.unlock p.lock; c in
    if connected then Unix.sleepf 0.05
    else begin
      match
        let fd = Unix.socket PF_INET SOCK_STREAM 0 in
        (try
           Unix.connect fd p.addr;
           Unix.setsockopt fd TCP_NODELAY true;
           Wire.write_frame fd
             (Wire.Hello { site = t.cfg.self; inc = t.cfg.hello_inc });
           fd
         with e ->
           (try Unix.close fd with _ -> ());
           raise e)
      with
      | fd ->
        backoff := 0.05;
        Atomic.incr t.connects;
        Mutex.lock p.lock;
        (* flush everything buffered while the peer was unreachable *)
        (try
           while not (Queue.is_empty p.pending) do
             let n = Wire.write_frame_count fd (Queue.peek p.pending) in
             ignore (Atomic.fetch_and_add t.bytes_sent n);
             ignore (Queue.pop p.pending);
             Atomic.incr t.sent
           done;
           p.fd <- Some fd
         with _ -> ( try Unix.close fd with _ -> ()));
        Mutex.unlock p.lock
      | exception _ ->
        Unix.sleepf !backoff;
        backoff := Float.min (2.0 *. !backoff) 1.0
    end
  done;
  Mutex.lock p.lock;
  (match p.fd with
  | Some fd ->
    (try Unix.close fd with _ -> ());
    p.fd <- None
  | None -> ());
  Mutex.unlock p.lock

(* ---- acceptor and per-connection readers ---- *)

let reader t fd =
  (* the connection's sender identity, learnt from its Hello (or any frame
     carrying a source field) *)
  let src = ref (-1) in
  let rec loop () =
    if Atomic.get t.stop then ()
    else
      match
        (try Wire.read_frame_count fd with _ -> Error "connection error")
      with
      | Error _ -> ()
      | Ok (frame, n) ->
        (match Transport_sig.frame_src frame with
        | -1 -> ()
        | s -> src := s);
        Atomic.incr t.received;
        ignore (Atomic.fetch_and_add t.bytes_received n);
        Transport_sig.Peers.heard t.book !src;
        Transport_sig.Peers.push t.book (Frame { src = !src; frame });
        loop ()
  in
  loop ();
  try Unix.close fd with _ -> ()

let acceptor t =
  (* select-with-timeout before accept so [close] can join this thread:
     closing a listening socket does not portably wake a blocked accept *)
  while not (Atomic.get t.stop) do
    match Unix.select [ t.listen_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept t.listen_fd with
      | fd, _ ->
        Unix.setsockopt fd TCP_NODELAY true;
        Mutex.lock t.reader_lock;
        t.reader_fds <- fd :: t.reader_fds;
        Mutex.unlock t.reader_lock;
        ignore (Thread.create (fun () -> reader t fd) ())
      | exception _ -> if not (Atomic.get t.stop) then Unix.sleepf 0.01)
    | exception _ -> if not (Atomic.get t.stop) then Unix.sleepf 0.01
  done

(* ---- lifecycle ---- *)

let create cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt listen_fd SO_REUSEADDR true;
  (try
     Unix.bind listen_fd
       (ADDR_INET (Unix.inet_addr_loopback, cfg.listen_port));
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with _ -> ());
     raise e);
  let t =
    {
      cfg;
      listen_fd;
      peers =
        List.map
          (fun (id, addr) ->
            {
              id;
              addr;
              lock = Mutex.create ();
              fd = None;
              pending = Queue.create ();
            })
          cfg.peers;
      book = Transport_sig.Peers.create cfg;
      stop = Atomic.make false;
      sent = Atomic.make 0;
      received = Atomic.make 0;
      undecodable = Atomic.make 0;
      bytes_sent = Atomic.make 0;
      bytes_received = Atomic.make 0;
      connects = Atomic.make 0;
      threads = [];
      reader_lock = Mutex.create ();
      reader_fds = [];
    }
  in
  t.threads <-
    Thread.create (fun () -> acceptor t) ()
    :: List.map (fun p -> Thread.create (fun () -> dial t p) ()) t.peers;
  t

let close t =
  if not (Atomic.exchange t.stop true) then begin
    (try Unix.close t.listen_fd with _ -> ());
    Mutex.lock t.reader_lock;
    let readers = t.reader_fds in
    t.reader_fds <- [];
    Mutex.unlock t.reader_lock;
    List.iter (fun fd -> try Unix.close fd with _ -> ()) readers;
    List.iter
      (fun p ->
        Mutex.lock p.lock;
        (match p.fd with
        | Some fd ->
          (try Unix.close fd with _ -> ());
          p.fd <- None
        | None -> ());
        Mutex.unlock p.lock)
      t.peers;
    List.iter (fun th -> try Thread.join th with _ -> ()) t.threads
  end
