(** UDP datagram transport: a {!Transport_sig.S} implementation where
    loss, duplication and reordering are real.

    Framing is trivial by design: {e one datagram carries exactly one}
    {!Wire.frame} payload (version byte first, no length prefix — the
    datagram boundary is the frame boundary). Sends go out on per-peer
    {e connected} datagram sockets opened lazily; a single reader thread
    drains the bound receive socket, decodes each datagram in isolation
    (an undecodable one is counted and dropped, never fatal), and feeds
    the shared event queue. A frame whose encoding exceeds
    {!max_datagram} is refused at send time and counted in
    [stats.oversize_dropped] — senders must chunk (the node daemon chunks
    its trace batches for exactly this reason).

    Delivery failure is silent loss, as on a real network: recovering is
    the business of {!Dmx_core.Reliable}, and heartbeat-silence detection
    (in [poll], see {!Transport_sig}) is what notices a peer that went
    quiet. *)

val max_datagram : int
(** Largest payload accepted for a single send (65507 = the UDP/IPv4
    maximum). *)

type t

val create : Transport_sig.config -> t
(** Binds the receive socket (with a large [SO_RCVBUF]) and starts the
    reader thread.
    @raise Unix.Unix_error if the port cannot be bound. *)

val send : t -> dst:int -> Wire.frame -> unit
val broadcast : t -> Wire.frame -> unit
val poll : t -> Transport_sig.event option
val stats : t -> Transport_sig.stats
val close : t -> unit
