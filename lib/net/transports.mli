(** Transport registry: name → packed {!Transport_sig.handle}. The node
    daemon and cluster supervisor select their transport here, which is
    what keeps them implementation-agnostic. *)

val names : string list
(** Recognised names: ["tcp"], ["udp"]. *)

val create : string -> Transport_sig.config -> (Transport_sig.handle, string) result
(** [Error] on an unknown name.
    @raise Unix.Unix_error if the transport's port cannot be bound. *)

val create_exn : string -> Transport_sig.config -> Transport_sig.handle
(** @raise Invalid_argument on an unknown name. *)
