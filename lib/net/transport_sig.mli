(** The transport abstraction of the networked runtime.

    A transport moves {!Wire.frame}s between a fixed set of peers and
    feeds the owner a single event stream: inbound frames, plus
    {!event.Peer_down}/{!event.Peer_up} transitions from heartbeat-silence
    failure detection. The node daemon and the cluster supervisor program
    against the first-class {!handle}, so any implementation of {!S} —
    TCP streams ({!Transport}), UDP datagrams ({!Udp}), or either wrapped
    in the {!Chaos} fault shim — slots in without touching them.

    Division of labour, identical for every implementation:

    - {e delivery} is the transport's: reader threads move bytes and push
      {!event.Frame}s; [poll] never blocks;
    - {e failure detection} is the transport's: a frame from a peer
      refreshes its liveness, and [poll] scans the watched peers for
      heartbeat silence at most once per [hb_period];
    - {e heartbeat emission} is the owner's: the owning loop broadcasts
      {!Wire.frame.Heartbeat} every [hb_period] through its (possibly
      chaos-wrapped) handle, so injected loss, partitions and delays
      starve the failure detector exactly as a hostile network would —
      this is what makes detector robustness testable end to end. *)

type event =
  | Frame of { src : int; frame : Wire.frame }
      (** [src] is the sending site as identified by the frame itself (or,
          on TCP, the connection's [Hello]); [-1] when unknown. *)
  | Peer_down of int
      (** heartbeat silence exceeded [hb_timeout] — suspicion, not truth *)
  | Peer_up of int  (** a suspected peer was heard from again *)

type config = {
  self : int;  (** this participant's site id ([n] for the supervisor) *)
  listen_port : int;
  peers : (int * Unix.sockaddr) list;  (** send targets *)
  hb_period : float;
      (** heartbeat cadence: the owner emits at this period, and [poll]
          runs the silence scan at most this often; [0.] disables
          detection *)
  hb_timeout : float;  (** silence before a watched peer is suspected *)
  watch : int list;  (** peer ids subject to failure detection *)
  hello_inc : float;
      (** incarnation number stamped on outbound [Hello]s; a restarted
          node uses a fresh (larger) value so the supervisor can tell a
          new life from a reconnect of the old one *)
}

(** Transport-level delivery counters (protocol-blind; the reliability
    layer keeps its own, see {!Dmx_core.Reliable.stats}). *)
type stats = {
  frames_sent : int;  (** frames actually handed to the kernel *)
  frames_received : int;  (** frames decoded and delivered to the owner *)
  oversize_dropped : int;
      (** sends refused by a size guard (UDP datagram bound) *)
  undecodable : int;  (** inbound payloads {!Wire.decode} rejected *)
  bytes_sent : int;  (** wire bytes out (frame payloads + any framing) *)
  bytes_received : int;  (** wire bytes in, decoded frames only *)
  connects : int;  (** successful outbound connection establishments
                       (TCP dials; 0 on datagram transports) *)
  silences : int;  (** heartbeat-silence [Peer_down] transitions ever
                       signalled by the failure detector *)
}

val no_stats : stats

val stats_alist : prefix:string -> stats -> (string * int) list
(** Nonzero counters as [(prefix ^ ".sent", v); ...] pairs, ready for the
    {!Wire.frame.Metrics} [reliable] list. *)

(** What a transport implementation provides. *)
module type S = sig
  type t

  val create : config -> t
  (** Binds the listen socket and starts the reader machinery.
      @raise Unix.Unix_error if the port cannot be bound. *)

  val send : t -> dst:int -> Wire.frame -> unit
  (** Best-effort, never blocks on a dead peer, never raises on delivery
      failure. Unknown [dst] is a silent no-op. *)

  val broadcast : t -> Wire.frame -> unit
  (** {!send} to every configured peer. *)

  val poll : t -> event option
  (** Dequeue the next event, if any; also runs the time-gated
      heartbeat-silence scan. Never blocks. *)

  val stats : t -> stats

  val close : t -> unit
  (** Stop all threads and close every socket. Idempotent. *)
end

(** A transport instance with its type packed away — what the node daemon
    and cluster supervisor actually hold. *)
type handle = {
  send : dst:int -> Wire.frame -> unit;
  broadcast : Wire.frame -> unit;
  poll : unit -> event option;
  stats : unit -> stats;
  close : unit -> unit;
}

val handle : (module S with type t = 'a) -> 'a -> handle
(** Pack a concrete transport into a {!handle}. *)

val register_obs :
  ?labels:(string * string) list ->
  Dmx_obs.Registry.t ->
  prefix:string ->
  handle ->
  unit
(** Register every field of the handle's {!stats} as counter probes named
    [prefix ^ ".sent"], [".received"], [".oversize"], [".undecodable"],
    [".bytes_sent"], [".bytes_received"], [".connects"], [".silences"].
    Probes are polled only at snapshot time — nothing is added to the
    transport's hot path. *)

(** Shared implementation helper: the event queue plus heartbeat-silence
    bookkeeping every transport embeds. Not for transport owners. *)
module Peers : sig
  type t

  val create : config -> t
  val push : t -> event -> unit

  val heard : t -> int -> unit
  (** A frame arrived from the given site: refresh liveness, emit
      [Peer_up] if it was suspected. Negative ids are ignored. *)

  val poll : t -> event option
  (** Drain one event; runs the silence scan at most once per
      [hb_period]. *)

  val silences : t -> int
  (** Total [Peer_down] transitions ever signalled. *)
end

val frame_src : Wire.frame -> int
(** The sending site a frame itself names; [-1] for anonymous frames
    ([Workload], [Shutdown], and the session control frames, whose
    client senders are not sites). *)
