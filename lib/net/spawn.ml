(* Child-process plumbing shared by the cluster supervisor and the
   lock-service swarm driver: kernel-allocated loopback ports, re-exec
   of the current binary with a spec in an environment variable, and
   quiet SIGKILL+reap teardown. *)

let alloc_ports k =
  let fds =
    List.init k (fun _ ->
        let fd = Unix.socket PF_INET SOCK_STREAM 0 in
        Unix.setsockopt fd SO_REUSEADDR true;
        Unix.bind fd (ADDR_INET (Unix.inet_addr_loopback, 0));
        fd)
  in
  let ports =
    List.map
      (fun fd ->
        match Unix.getsockname fd with
        | ADDR_INET (_, p) -> p
        | _ -> assert false)
      fds
  in
  List.iter Unix.close fds;
  ports

let child ~log_dir ~log_name ~env_var ~spec =
  let exe = Sys.executable_name in
  let prefix = env_var ^ "=" in
  let plen = String.length prefix in
  let env =
    Array.append
      (Array.of_seq
         (Seq.filter
            (fun kv ->
              not (String.length kv >= plen && String.sub kv 0 plen = prefix))
            (Array.to_seq (Unix.environment ()))))
      [| prefix ^ spec |]
  in
  let devnull = Unix.openfile "/dev/null" [ O_RDWR ] 0 in
  let errfd =
    match log_dir with
    | None -> devnull
    | Some d ->
      Unix.openfile (Filename.concat d log_name)
        [ O_WRONLY; O_CREAT; O_APPEND ]
        0o644
  in
  let pid = Unix.create_process_env exe [| exe |] env devnull devnull errfd in
  Unix.close devnull;
  if errfd <> devnull then Unix.close errfd;
  pid

let kill_quietly pid =
  (try Unix.kill pid Sys.sigkill with _ -> ());
  try ignore (Unix.waitpid [] pid) with _ -> ()
