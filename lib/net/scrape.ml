(* Minimal HTTP scrape endpoint for metrics registries.

   One listener thread accepts loopback connections and serves each on a
   short-lived thread: read the request line, take a fresh registry
   snapshot, write the rendering, close. No keep-alive, no chunking, no
   header parsing beyond draining them — the clients are `curl`,
   Prometheus, and `dmx-sim top`, all of which speak HTTP/1.0 happily.
   Rendering is [Dmx_obs.Export], so what a scrape returns is byte-for-
   byte what the exporter golden tests pin. *)

type t = {
  fd : Unix.file_descr;
  port : int;
  stop : bool Atomic.t;
  mutable thread : Thread.t option;
}

let read_request fd =
  (* request line, then drain headers until the blank line; bounded so a
     hostile client cannot hold the handler forever *)
  let buf = Buffer.create 256 in
  let b = Bytes.create 1 in
  let rec line limit =
    if limit = 0 then ()
    else
      match Unix.read fd b 0 1 with
      | 0 -> ()
      | _ ->
        let c = Bytes.get b 0 in
        if c = '\n' then ()
        else begin
          if c <> '\r' then Buffer.add_char buf c;
          line (limit - 1)
        end
  in
  line 2048;
  let request = Buffer.contents buf in
  let rec drain guard =
    if guard = 0 then ()
    else begin
      Buffer.clear buf;
      line 2048;
      if Buffer.length buf > 0 then drain (guard - 1)
    end
  in
  drain 64;
  request

let write_all fd s =
  let n = String.length s in
  let pos = ref 0 in
  while !pos < n do
    pos := !pos + Unix.write_substring fd s !pos (n - !pos)
  done

let respond fd ~status ~content_type body =
  write_all fd
    (Printf.sprintf
       "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
        close\r\n\r\n%s"
       status content_type (String.length body) body)

let serve_one snapshot fd =
  (try
     let request = read_request fd in
     match String.split_on_char ' ' request with
     | [ "GET"; "/metrics"; _ ] | [ "GET"; "/metrics" ] ->
       respond fd ~status:"200 OK" ~content_type:"text/plain; version=0.0.4"
         (Dmx_obs.Export.prometheus (snapshot ()))
     | [ "GET"; "/metrics.json"; _ ] | [ "GET"; "/metrics.json" ] ->
       respond fd ~status:"200 OK" ~content_type:"application/json"
         (Dmx_obs.Export.json (snapshot ()))
     | _ -> respond fd ~status:"404 Not Found" ~content_type:"text/plain" "not found\n"
   with _ -> ());
  try Unix.close fd with _ -> ()

let acceptor t snapshot =
  while not (Atomic.get t.stop) do
    match Unix.select [ t.fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept t.fd with
      | fd, _ -> ignore (Thread.create (fun () -> serve_one snapshot fd) ())
      | exception _ -> if not (Atomic.get t.stop) then Unix.sleepf 0.01)
    | exception _ -> if not (Atomic.get t.stop) then Unix.sleepf 0.01
  done

let start ~port snapshot =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt fd SO_REUSEADDR true;
  (try
     Unix.bind fd (ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen fd 16
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  let port =
    match Unix.getsockname fd with
    | ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t = { fd; port; stop = Atomic.make false; thread = None } in
  t.thread <- Some (Thread.create (fun () -> acceptor t snapshot) ());
  t

let port t = t.port

let stop t =
  if not (Atomic.exchange t.stop true) then begin
    (try Unix.close t.fd with _ -> ());
    match t.thread with
    | Some th -> ( try Thread.join th with _ -> ())
    | None -> ()
  end

(* ---- client side, for `dmx-sim top`, tests, and CI probes ---- *)

let find_header_end s =
  let n = String.length s in
  let rec go i =
    if i + 3 >= n then None
    else if
      s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then Some (i + 4)
    else go (i + 1)
  in
  go 0

let http_get ?(host = "127.0.0.1") ~port path =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      try
        Unix.connect fd (ADDR_INET (Unix.inet_addr_of_string host, port));
        write_all fd
          (Printf.sprintf "GET %s HTTP/1.0\r\nHost: %s\r\n\r\n" path host);
        let buf = Buffer.create 4096 in
        let chunk = Bytes.create 4096 in
        let rec slurp () =
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
            Buffer.add_subbytes buf chunk 0 n;
            slurp ()
        in
        slurp ();
        let raw = Buffer.contents buf in
        (* split status line + headers from the body *)
        match (String.index_opt raw ' ', find_header_end raw) with
        | Some sp, Some body_at ->
          let code =
            try
              int_of_string
                (String.sub raw (sp + 1)
                   (min 3 (String.length raw - sp - 1)))
            with _ -> 0
          in
          Ok (code, String.sub raw body_at (String.length raw - body_at))
        | _ -> Error "malformed HTTP response"
      with
      | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
      | e -> Error (Printexc.to_string e))
