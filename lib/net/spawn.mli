(** Child-process plumbing shared by the cluster supervisor and the
    lock-service swarm driver.

    Both supervisors run local daemons by re-executing their own binary
    with a serialized spec in an environment variable (the trampoline
    idiom — see {!Node.env_var} and [Dmx_service.Snode]), which lets the
    CLI, the test runner and the bench runner all serve as the daemon
    image without a separate executable. *)

val alloc_ports : int -> int list
(** [alloc_ports k] asks the kernel for [k] distinct free loopback
    ports (bind port 0, read back, close). The usual race — another
    process grabbing a port between close and the daemon's bind — is
    accepted; supervisors surface the resulting bind failure by name
    through their hello-phase startup-death check. *)

val child :
  log_dir:string option ->
  log_name:string ->
  env_var:string ->
  spec:string ->
  int
(** Spawn the current binary with [env_var=spec] in its environment
    (replacing any inherited binding), stdin/stdout on [/dev/null], and
    stderr appended to [log_dir/log_name] when a log directory is
    given. Returns the pid. *)

val kill_quietly : int -> unit
(** SIGKILL and reap, ignoring all errors — the teardown path must
    never throw. *)
