(** One networked protocol site: a single-threaded event loop driving any
    [Dmx_sim.Protocol.PROTOCOL] over a {!Transport_sig.handle} (TCP or
    UDP, optionally wrapped in the {!Chaos} fault shim).

    The loop mirrors the simulation engine's contract exactly — same
    callback discipline, same trace conventions (a [Send] entry for every
    send including self-sends, a [Receive] for network deliveries only,
    engine-style [Request]/[Enter_cs]/[Exit_cs] bracketing, suspect/trust
    entries from the failure detector) and the same rendered message
    strings — so the supervisor can merge per-site logs and run the
    unmodified {!Dmx_sim.Oracle} on a real execution.

    Time is the wall clock, measured from a cluster-wide [epoch] chosen by
    the supervisor and passed through the {!spec}, so entries from
    different processes sort on a common axis and a restarted site's
    incarnation numbers stay monotone. *)

(** Everything a node process needs to come up, normally delivered by the
    cluster supervisor through the {!env_var} trampoline. *)
type spec = {
  site : int;
  n : int;
  node_ports : int array;  (** listen port of every site, index = site id *)
  supervisor_port : int;
  protocol : string;  (** ["delay-optimal"] or ["ft-delay-optimal"] *)
  quorum : string;  (** a {!Dmx_quorum.Builder.parse_kind} spelling *)
  seed : int;
  epoch : float;  (** cluster time zero (absolute [gettimeofday] value) *)
  hb_period : float;
  hb_timeout : float;
  rto : float;  (** reliability-layer base retransmission timeout *)
  max_seconds : float;  (** failsafe wall-clock limit on the whole life *)
  transport : string;  (** a {!Transports.create} name: ["tcp"]/["udp"] *)
  chaos : Chaos.plan;  (** fault plan; {!Chaos.no_faults} runs bare *)
  metrics_port : int;
      (** serve the node's metrics registry over HTTP ({!Scrape}) on this
          loopback port; [0] disables the listener *)
}

val spec_to_string : spec -> string
val spec_of_string : string -> (spec, string) result

val env_var : string
(** [DMX_NODE_SPEC]. When set, the process is a cluster-spawned node: the
    supervisor re-executes its own binary with this variable holding a
    {!spec_to_string}, which lets any host executable (the CLI, the test
    runner, the bench runner) serve as the node image. *)

val run_as_child_if_requested : unit -> unit
(** Check {!env_var}; when present, run the node to completion and [exit]
    (0 on a clean shutdown, 2 on a bad spec). Must be called before the
    host executable does anything else. *)

(** Run a specific protocol; [codec] turns its messages into wire bytes. *)
module Make (P : Dmx_sim.Protocol.PROTOCOL) : sig
  type codec = {
    encode : P.message -> string;
    decode : string -> (P.message, string) result;
  }

  val run :
    spec ->
    codec:codec ->
    ?live_stats:(P.state -> (string * int) list) ->
    ?attach_obs:(P.state -> Dmx_obs.Registry.t -> unit) ->
    P.config ->
    unit
  (** Blocks until the supervisor's [Shutdown], supervisor silence beyond
      30 s, or [spec.max_seconds] — whichever comes first. [live_stats]
      (default: none) extracts protocol-level live counters — e.g.
      {!Dmx_core.Reliable.stats_alist} — included in the final [Metrics]
      frame alongside chaos and transport counters.

      The node keeps one {!Dmx_obs.Registry} for its whole life:
      transport/chaos stats are registered as probes, protocol sends and
      receives are counted live, and [attach_obs] (default: nothing)
      lets the protocol bind its own cells — e.g.
      {!Dmx_core.Reliable.attach}. The registry feeds the
      [spec.metrics_port] scrape endpoint and the final
      {!Wire.frame.Metrics_v2} frame. *)
end

val run_named : spec -> (unit, string) result
(** Resolve [spec.protocol]/[spec.quorum] and run: ["delay-optimal"] on
    bare channels, ["ft-delay-optimal"] with the {!Dmx_core.Reliable}
    retry/ack layer (wall-clock timeouts scaled from [spec.rto]) and the
    suspicion-safe [trust_detector = false] recovery mode, both over the
    {!Wire.encode_message} codec. *)
