(** Deterministic seeded fault shim over any transport handle.

    Wraps a {!Transport_sig.handle} and subjects every {e outbound} frame
    to per-link loss, duplication, reorder (bounded holdback), delay
    spikes, and partition schedules — the same fault model as
    {!Dmx_sim.Network.fault_plan}, but against real processes. (Each
    node faults its own sends; with every node wrapped, every directed
    link is covered.) Inbound frames pass through untouched.

    {b Determinism.} The fate of the k-th frame offered on directed link
    (src, dst) is a {e pure} splitmix64 hash of (seed, src, dst, k),
    independent of wall-clock time and frame content — so two runs with
    the same seed make identical loss/duplication/reorder decisions even
    though real scheduling differs; {!decision} exposes the function for
    tests. Partition and delay-spike windows are wall-clock intervals
    relative to the cluster-wide workload epoch, distributed in the
    [Workload] frame and anchored via {!set_zero}; until the epoch is
    known the windows are inactive.

    {b Exemptions.} Links with either endpoint [>= plan.n] (the cluster
    supervisor) are exempt: chaos is for the protocol, not for the
    control plane that collects the evidence.

    The sim's spike [factor] multiplies a sampled delay; a real transport
    has no sampled delay, so a spike here holds frames for [extra]
    wall-clock seconds instead. *)

type partition = { from_t : float; until : float; groups : int list list }
(** As in {!Dmx_sim.Network.partition}: during [[from_t, until)] only
    sites in the same group exchange frames; unlisted sites form one
    implicit rest-group. Times are workload-epoch-relative seconds. *)

type plan = {
  seed : int;  (** fault-decision seed *)
  n : int;  (** site count; links touching ids [>= n] are exempt *)
  loss : float;  (** per-frame drop probability, in [0, 1) *)
  duplication : float;  (** per-frame duplicate probability, in [0, 1) *)
  reorder : float;  (** per-frame holdback probability, in [0, 1) *)
  reorder_hold : int;
      (** a held frame is released after this many subsequent frames on
          its link (or after 0.25 s on an idle link) *)
  delay_spikes : (float * float * float) list;
      (** [(from_t, until, extra)]: frames sent in the window are held
          [extra] seconds; overlapping spikes add *)
  partitions : partition list;
}

val no_faults : plan
val is_trivial : plan -> bool
(** [true] iff the plan injects nothing (schedule-free and all
    probabilities zero) — callers skip wrapping entirely. *)

val validate : plan -> unit
(** @raise Invalid_argument on malformed plans: probabilities outside
    [0, 1), empty windows, out-of-range or overlapping partition
    groups. *)

type decision = { lose : bool; duplicate : bool; reorder : bool }

val decision : plan -> src:int -> dst:int -> int -> decision
(** The pure fault decision for the k-th frame on (src, dst). *)

type t

val create : plan -> self:int -> peers:int list -> inner:Transport_sig.handle -> t
(** [peers] are the destinations a broadcast fans out to (per-link
    decisions require per-destination sends).
    @raise Invalid_argument as {!validate}. *)

val handle : t -> Transport_sig.handle
(** The wrapped handle the owner uses in place of [inner]. [stats] and
    [close] delegate to the inner transport; chaos's own counters are
    {!stats_alist}. *)

val set_zero : t -> float -> unit
(** Anchor partition/spike windows: wall-clock time of workload-epoch 0. *)

val stats_alist : t -> (string * int) list
(** Nonzero injected-fault counters, [("chaos.lost", v); ...] — ready for
    the [Metrics] frame's [reliable] list. *)

val register_obs :
  ?labels:(string * string) list -> Dmx_obs.Registry.t -> t -> unit
(** Register the injected-fault counters as registry probes under the
    [chaos.*] names {!stats_alist} uses (zeros included — a scrape shows
    the series exists even before the first injected fault). *)

(** {2 Plan transport} — compact single-token encoding (no spaces, no
    ['=']) so a plan rides the [DMX_NODE_SPEC] environment trampoline. *)

val plan_to_string : plan -> string

val plan_of_string : string -> plan
(** @raise Invalid_argument on malformed input. *)
